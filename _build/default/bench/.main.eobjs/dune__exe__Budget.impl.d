bench/budget.ml: Ixp List Report Router
