bench/bufferpool.ml: Array Iproute Ixp Packet Printf Report Router Sim Workload
