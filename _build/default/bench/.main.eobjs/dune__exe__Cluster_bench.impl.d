bench/cluster_bench.ml: Cluster Packet Printf Report Router Sim Workload
