bench/dramdirect.ml: Report Router
