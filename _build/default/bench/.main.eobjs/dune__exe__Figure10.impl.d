bench/figure10.ml: Float List Report Router Sim
