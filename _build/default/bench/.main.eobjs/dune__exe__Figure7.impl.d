bench/figure7.ml: List Report Router Sim
