bench/figure9.ml: List Printf Report Router Sim
