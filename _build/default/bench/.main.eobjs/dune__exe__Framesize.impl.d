bench/framesize.ml: List Packet Report Router Sim
