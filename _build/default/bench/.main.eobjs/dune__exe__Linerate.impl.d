bench/linerate.ml: Array Iproute List Packet Printf Report Router Sim Workload
