bench/main.mli:
