bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Instance Iproute Ixp List Measure Packet Report Router Sim Staged Test Time Toolkit
