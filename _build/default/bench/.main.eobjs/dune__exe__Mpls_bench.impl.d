bench/mpls_bench.ml: Report Router
