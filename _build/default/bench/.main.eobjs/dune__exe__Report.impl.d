bench/report.ml: Format Sim
