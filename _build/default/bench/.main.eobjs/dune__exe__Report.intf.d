bench/report.mli: Format Sim
