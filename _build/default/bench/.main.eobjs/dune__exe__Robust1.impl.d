bench/robust1.ml: Array Forwarders Iproute Ixp List Packet Printf Report Router Sim String Workload
