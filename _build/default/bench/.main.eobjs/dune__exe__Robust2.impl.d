bench/robust2.ml: Float List Report Router Sim
