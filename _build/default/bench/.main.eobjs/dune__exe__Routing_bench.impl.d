bench/routing_bench.ml: Control Iproute List Packet Printf Report Router Sim String Workload
