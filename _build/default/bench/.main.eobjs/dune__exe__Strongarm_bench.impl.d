bench/strongarm_bench.ml: Iproute List Packet Printf Report Router Sim String Workload
