bench/table1.ml: Report Router
