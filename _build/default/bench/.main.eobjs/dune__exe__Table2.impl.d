bench/table2.ml: Int64 Iproute Packet Report Router Sim
