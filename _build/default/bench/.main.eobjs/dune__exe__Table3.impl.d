bench/table3.ml: Int64 Ixp List Printf Report Sim
