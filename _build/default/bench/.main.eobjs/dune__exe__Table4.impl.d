bench/table4.ml: Array Int64 Iproute Ixp Packet Report Router Sim
