bench/table5.ml: Forwarders Ixp List Report Router
