bench/wfq_bench.ml: Array Int64 Ixp List Packet Printf Report Router Sim Workload
