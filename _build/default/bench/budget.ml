(* Section 4.3: the VRP characterization for the prototype configuration
   (8 x 100 Mbps = 1.128 Mpps): 240 cycles, 24 SRAM transfers, 3 hashes,
   96 bytes of flow state, 650 ISTORE slots per 64-byte MP.  We derive the
   same budget two ways: analytically (the capacity model) and empirically
   (inverting the simulated Figure 9 curve). *)

open Router.Fixed_infra

let sim_blocks_at ~pps =
  let sustains blocks =
    let code =
      List.concat
        (List.init blocks (fun _ ->
             [ Router.Vrp.Instr 10; Router.Vrp.Sram_read 4 ]))
    in
    let r = run { default with vrp_blocks = code } in
    r.out_mpps *. 1e6 >= pps
  in
  let rec grow b = if b <= 96 && sustains (b + 4) then grow (b + 4) else b in
  if sustains 0 then grow 0 else 0

let run () =
  Report.section "VRP budget for 8 x 100 Mbps (section 4.3)";
  let paper = Router.Vrp.prototype_budget in
  Report.info "paper characterization: %a" Router.Vrp.pp_budget paper;
  let analytic =
    Router.Capacity.vrp_budget Router.Capacity.default ~contexts:16
      ~line_rate_pps:1.128e6 ~hashes:3
  in
  Report.info "analytic model:        %a" Router.Vrp.pp_budget analytic;
  let sim_blocks = sim_blocks_at ~pps:1.128e6 in
  Report.info "simulated (Figure 9 inversion): %d combo blocks = %d cycles + \
               %d SRAM transfers"
    sim_blocks (10 * sim_blocks) sim_blocks;
  Report.row ~unit_:"cyc" ~name:"VRP cycles per MP (analytic)"
    ~paper:(float_of_int paper.Router.Vrp.b_cycles)
    ~measured:(float_of_int analytic.Router.Vrp.b_cycles);
  Report.row ~unit_:"cyc" ~name:"VRP cycles per MP (simulated)"
    ~paper:(float_of_int paper.Router.Vrp.b_cycles)
    ~measured:(float_of_int (10 * sim_blocks));
  Report.row ~unit_:"xfer" ~name:"SRAM transfers per MP (simulated)"
    ~paper:(float_of_int paper.Router.Vrp.b_sram_transfers)
    ~measured:(float_of_int sim_blocks);
  Report.row ~unit_:"B" ~name:"persistent flow state"
    ~paper:(float_of_int paper.Router.Vrp.b_state_bytes)
    ~measured:(float_of_int (4 * sim_blocks));
  Report.row ~unit_:"slot" ~name:"ISTORE slots for extensions" ~paper:650.
    ~measured:
      (float_of_int
         (Ixp.Istore.capacity_vrp (Ixp.Istore.create Ixp.Config.default)))
