(* Ablation: the section 3.2.3 buffer allocator choice.

   The paper's circular pool never blocks the input process — "any given
   packet buffer remains valid for only one pass though the circular
   buffer list ... if a packet is not transmitted by the output process
   before its buffer is reused, the packet is effectively lost."  The
   rejected alternative, a stack of free buffers, gives backpressure (no
   silent overwrite) at the cost of an extra synchronization point.

   We provoke the difference: a tiny pool, all traffic aimed at one
   100 Mbps port offered 4x its line rate.  Circular loses the overrun as
   stale buffers discovered at transmit time; the stack refuses allocation
   at the input, and no committed packet is ever lost. *)

let addr = Packet.Ipv4.addr_of_string

let run_mode ~circular =
  let config =
    {
      Router.default_config with
      Router.hw = { Ixp.Config.default with Ixp.Config.buffer_count = 64 };
      queue_capacity = 100_000;
      circular_buffers = circular;
    }
  in
  let r = Router.create ~config () in
  for p = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  Router.start r;
  let gen = Workload.Mix.udp_fixed ~dst:(addr "10.0.0.1") () in
  for p = 0 to 3 do
    ignore
      (Workload.Source.spawn_constant r.Router.engine
         ~name:(Printf.sprintf "s%d" p)
         ~pps:141_000. ~gen
         ~offer:(fun f -> Router.inject r ~port:p f)
         ())
  done;
  Router.run_for r ~us:10_000.;
  let c = Sim.Stats.Counter.value in
  ( c r.Router.delivered.(0),
    c r.Router.ostats.Router.Output_loop.stale_bufs,
    c r.Router.istats.Router.Input_loop.enq_drop,
    Ixp.Buffer_pool.stale_reads r.Router.chip.Ixp.Chip.buffers )

let run () =
  Report.section "Buffer allocator ablation (section 3.2.3)";
  let d1, stale1, drops1, _ = run_mode ~circular:true in
  Report.info
    "circular (the paper's): delivered %d, lost to buffer reuse %d, input \
     drops %d"
    d1 stale1 drops1;
  let d2, stale2, drops2, _ = run_mode ~circular:false in
  Report.info
    "stack pool:             delivered %d, lost to buffer reuse %d, input \
     drops %d"
    d2 stale2 drops2;
  Report.info
    "same delivered goodput either way (the wire is the limit); the designs \
     differ in WHERE the overrun dies: silent single-pass reuse vs explicit \
     allocation failure — the paper prefers the former for its fixed, \
     predictable timing"
