(* Section 3.5.1's rejected early design: ports transfer packets directly
   to/from DRAM, bypassing the FIFOs.  "This forces four memory accesses
   for each byte of a minimal-sized packet... One of our early
   implementations used this general strategy, and saturated DRAM while
   forwarding 2.69 Mpps." We model it by adding the two extra 64-byte DRAM
   crossings to each packet. *)

open Router.Fixed_infra

let run () =
  Report.section "DRAM-direct input path (section 3.5.1 ablation)";
  let baseline = run default in
  let direct =
    run
      {
        default with
        vrp_blocks = [ Router.Vrp.Dram_read 64; Router.Vrp.Dram_write 64 ];
      }
  in
  Report.row ~unit_:"Mpps" ~name:"FIFO path (baseline)" ~paper:3.47
    ~measured:baseline.out_mpps;
  Report.row ~unit_:"Mpps" ~name:"DRAM-direct path" ~paper:2.69
    ~measured:direct.out_mpps;
  Report.info "DRAM channel utilization: baseline %.2f -> direct %.2f"
    baseline.dram_utilization direct.dram_utilization;
  Report.info
    "paper: the direct path saturates DRAM and halves the worst-case rate"
