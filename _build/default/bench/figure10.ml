(* Figure 10: forwarding time breakdown under maximal output-port
   contention, for combination blocks per packet.  The paper's point:
   the time otherwise lost to contention is reclaimed by VRP processing —
   by 64 blocks the contention overhead has vanished. *)

open Router.Fixed_infra

let per_packet_us mpps = if mpps <= 0. then nan else 1. /. mpps

let run () =
  Report.section "Figure 10: contention overhead reclaimed by VRP work";
  let s_total =
    Sim.Stats.Series.create ~name:"Figure 10 (per-packet time, max contention)"
      ~x_label:"combo blocks" ~y_label:"us/pkt"
  in
  let s_overhead =
    Sim.Stats.Series.create ~name:"Figure 10 (contention overhead component)"
      ~x_label:"combo blocks" ~y_label:"us/pkt"
  in
  let overhead_at_0 = ref nan in
  let overhead_at_64 = ref nan in
  List.iter
    (fun blocks ->
      let code =
        List.concat
          (List.init blocks (fun _ ->
               [ Router.Vrp.Instr 10; Router.Vrp.Sram_read 4 ]))
      in
      let free = run { default with vrp_blocks = code } in
      let contended = run { default with vrp_blocks = code; contention = true } in
      let t_free = per_packet_us free.in_mpps in
      let t_cont = per_packet_us contended.in_mpps in
      let overhead = Float.max 0. (t_cont -. t_free) in
      if blocks = 0 then overhead_at_0 := overhead;
      if blocks = 64 then overhead_at_64 := overhead;
      Sim.Stats.Series.add s_total ~x:(float_of_int blocks) ~y:t_cont;
      Sim.Stats.Series.add s_overhead ~x:(float_of_int blocks) ~y:overhead)
    [ 0; 8; 16; 32; 48; 64 ];
  Report.series s_total;
  Report.series s_overhead;
  Report.info
    "contention overhead: %.3f us/pkt at 0 blocks -> %.3f us/pkt at 64 blocks"
    !overhead_at_0 !overhead_at_64;
  Report.info
    "paper: 'when we apply 64 blocks of VRP code to each packet, there is \
     no measurable contention overhead'"
