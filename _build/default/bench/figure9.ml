(* Figure 9: number of blocks of VRP code that can run at different line
   speeds.  Three block flavours: 10 register instructions, one 4-byte
   SRAM read, or both (the paper's combination block). *)

open Router.Fixed_infra

let block_of = function
  | `Reg -> [ Router.Vrp.Instr 10 ]
  | `Sram -> [ Router.Vrp.Sram_read 4 ]
  | `Combo -> [ Router.Vrp.Instr 10; Router.Vrp.Sram_read 4 ]

let flavour_name = function
  | `Reg -> "10 register instr"
  | `Sram -> "4B SRAM read"
  | `Combo -> "combination"

let rate ~flavour ~blocks =
  let code = List.concat (List.init blocks (fun _ -> block_of flavour)) in
  let r = run { default with vrp_blocks = code } in
  r.out_mpps

let sweep flavour =
  let s =
    Sim.Stats.Series.create
      ~name:(Printf.sprintf "Figure 9 (block = %s)" (flavour_name flavour))
      ~x_label:"blocks/packet" ~y_label:"Mpps"
  in
  List.iter
    (fun b ->
      Sim.Stats.Series.add s ~x:(float_of_int b) ~y:(rate ~flavour ~blocks:b))
    [ 0; 4; 8; 16; 24; 32; 48; 64 ];
  s

let run () =
  Report.section "Figure 9: VRP code blocks vs sustainable line speed";
  List.iter
    (fun flavour -> Report.series (sweep flavour))
    [ `Reg; `Sram; `Combo ];
  Report.info
    "paper anchor: at 1 Mpps aggregate the VRP affords 32 combination blocks";
  (* Invert the combo curve at 1 Mpps. *)
  let rec find_blocks b =
    if b > 96 then b
    else if rate ~flavour:`Combo ~blocks:b < 1.0 then b
    else find_blocks (b + 4)
  in
  let b = find_blocks 4 - 4 in
  Report.row ~unit_:"blk" ~name:"combo blocks sustaining 1 Mpps" ~paper:32.
    ~measured:(float_of_int b)
