(* Frame-size scaling (section 3.5.1): "forwarding larger packets scales
   linearly on the MicroEngines: forwarding a 1500-byte packet involves
   forwarding twenty-four 64-byte MPs."  The per-MP rate should therefore
   be roughly flat across frame sizes while the bit rate climbs. *)

open Router.Fixed_infra

let run () =
  Report.section "Frame-size scaling: per-MP rate is the invariant";
  let s_pps =
    Sim.Stats.Series.create ~name:"packets/s vs frame size" ~x_label:"bytes"
      ~y_label:"Mpps"
  in
  let s_mps =
    Sim.Stats.Series.create ~name:"MPs/s vs frame size" ~x_label:"bytes"
      ~y_label:"M MPs/s"
  in
  let mp_rate_64 = ref 0. in
  let mp_rate_1518 = ref 0. in
  List.iter
    (fun len ->
      let r = run { default with frame_len = len } in
      let mps = float_of_int (Packet.Mp.count len) in
      Sim.Stats.Series.add s_pps ~x:(float_of_int len) ~y:r.out_mpps;
      Sim.Stats.Series.add s_mps ~x:(float_of_int len) ~y:(r.out_mpps *. mps);
      if len = 64 then mp_rate_64 := r.out_mpps *. mps;
      if len = 1518 then mp_rate_1518 := r.out_mpps *. mps;
      Report.info
        "%5d B (%2d MPs): %.3f Mpps = %.3f M MPs/s = %.2f Gbps" len
        (Packet.Mp.count len) r.out_mpps (r.out_mpps *. mps)
        (r.out_mpps *. float_of_int (len * 8) /. 1e3))
    [ 64; 128; 256; 512; 1024; 1518 ];
  Report.series s_pps;
  Report.series s_mps;
  Report.row ~unit_:"" ~name:"MP-rate ratio 1518B/64B (paper: ~1, linear)"
    ~paper:1.0
    ~measured:(!mp_rate_1518 /. !mp_rate_64);
  Report.info
    "the paper's aggregate-bandwidth headline (1.77 Gbps at 64 B) comes from \
     exactly this invariant: 3.47 Mpps x 64 B x 8"
