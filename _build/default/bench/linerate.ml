(* Section 3.5.1's first measurement: with the 8 x 100 Mbps ports driven
   at 141 Kpps each (95% of theoretical line rate), the MicroEngines
   sustain line speed on all ports — 1.128 Mpps aggregate, no loss. *)

let run () =
  Report.section "Line rate: 8 x 100 Mbps, 64-byte packets (section 3.5.1)";
  let r = Router.create () in
  for p = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  Router.start r;
  let rng = Sim.Rng.create 1L in
  let sources =
    List.init 8 (fun p ->
        let rng = Sim.Rng.split rng in
        Workload.Source.spawn_line_rate r.Router.engine
          ~name:(Printf.sprintf "gen%d" p)
          ~mbps:100. ~frame_len:64
          ~gen:(Workload.Mix.udp_uniform ~rng ~n_subnets:8 ())
          ~offer:(fun f -> Router.inject r ~port:p f)
          ())
  in
  Router.run_for r ~us:20_000.;
  let offered =
    List.fold_left
      (fun acc s -> acc + Sim.Stats.Counter.value s.Workload.Source.offered)
      0 sources
  in
  let delivered = Router.delivered_total r in
  let secs = Sim.Engine.seconds (Sim.Engine.time r.Router.engine) in
  Report.row ~unit_:"Mpps" ~name:"aggregate offered" ~paper:1.128
    ~measured:(float_of_int offered /. secs /. 1e6);
  Report.row ~unit_:"Mpps" ~name:"aggregate forwarded" ~paper:1.128
    ~measured:(float_of_int delivered /. secs /. 1e6);
  Report.row ~unit_:"pkt" ~name:"packets lost" ~paper:0.
    ~measured:
      (float_of_int
         (Sim.Stats.Counter.value r.Router.istats.Router.Input_loop.enq_drop));
  Report.info "per-packet latency: %a" Sim.Stats.Histogram.pp r.Router.latency;
  (* iMix: the classic 7:4:1 mix of 64/570/1518-byte frames at line rate.
     Pps drops with the bigger average frame; bits-per-second holds. *)
  let r2 = Router.create () in
  for p = 0 to 7 do
    Router.add_route r2
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  Router.start r2;
  let rng2 = Sim.Rng.create 9L in
  let sizes = [| 64; 64; 64; 64; 64; 64; 64; 570; 570; 570; 570; 1518 |] in
  let avg = Array.fold_left ( + ) 0 sizes / Array.length sizes in
  let pps = 0.95 *. 100e6 /. float_of_int ((avg + 20) * 8) in
  let bytes_out = ref 0 in
  for p = 0 to 7 do
    let rng = Sim.Rng.split rng2 in
    ignore
      (Workload.Source.spawn_constant r2.Router.engine
         ~name:(Printf.sprintf "imix%d" p)
         ~pps
         ~gen:(fun i ->
           ignore i;
           Workload.Mix.udp_uniform ~rng ~n_subnets:8
             ~frame_len:(Sim.Rng.pick rng sizes) () i)
         ~offer:(fun f -> Router.inject r2 ~port:p f)
         ())
  done;
  for p = 0 to 7 do
    Router.connect r2 ~port:p (fun f -> bytes_out := !bytes_out + Packet.Frame.len f)
  done;
  Router.run_for r2 ~us:20_000.;
  let secs2 = Sim.Engine.seconds (Sim.Engine.time r2.Router.engine) in
  Report.info
    "iMix (avg %d B) at 95%% line rate: %.3f Mpps, %.2f Gbps delivered, %d      drops"
    avg
    (float_of_int (Router.delivered_total r2) /. secs2 /. 1e6)
    (float_of_int (8 * !bytes_out) /. secs2 /. 1e9)
    (Sim.Stats.Counter.value r2.Router.istats.Router.Input_loop.enq_drop)
