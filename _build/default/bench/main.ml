(* The benchmark harness: one entry per table/figure of the paper's
   evaluation (see DESIGN.md's experiment index).  With no arguments every
   reproduction runs in paper order; pass names to select, or "micro" for
   the Bechamel host-side microbenchmarks. *)

let experiments =
  [
    ("table1", "Table 1: queueing discipline rates", Table1.run);
    ("table2", "Table 2: per-MP operation counts", Table2.run);
    ("table3", "Table 3: memory latencies", Table3.run);
    ("table4", "Table 4: Pentium path rates", Table4.run);
    ("table5", "Table 5: forwarder requirements", Table5.run);
    ("figure7", "Figure 7: rate vs contexts", Figure7.run);
    ("figure9", "Figure 9: VRP blocks vs line speed", Figure9.run);
    ("figure10", "Figure 10: contention reclaimed by VRP", Figure10.run);
    ("linerate", "Section 3.5.1: 8x100Mbps line rate", Linerate.run);
    ("strongarm", "Section 3.6: StrongARM rates", Strongarm_bench.run);
    ("dramdirect", "Section 3.5.1: DRAM-direct ablation", Dramdirect.run);
    ("budget", "Section 4.3: VRP budget derivation", Budget.run);
    ("framesize", "Section 3.5.1: frame-size / MP scaling", Framesize.run);
    ("bufferpool", "Section 3.2.3: circular vs stack buffers", Bufferpool.run);
    ("robust1", "Section 4.7: Pentium share under full VRP", Robust1.run);
    ("robust2", "Section 4.7: control-flood isolation", Robust2.run);
    ("mpls", "Extension: MPLS virtual-circuit fast path", Mpls_bench.run);
    ("routing", "Extension: route-update storms vs fast path", Routing_bench.run);
    ("wfq", "Extension: input-side WFQ approximation", Wfq_bench.run);
    ("cluster", "Extension: four-member cluster (section 6)", Cluster_bench.run);
  ]

let usage () =
  print_endline "usage: bench/main.exe [experiment...]";
  print_endline "experiments:";
  List.iter (fun (n, d, _) -> Printf.printf "  %-10s %s\n" n d) experiments;
  print_endline "  micro      Bechamel microbenchmarks of host primitives"

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      Format.printf
        "Reproducing Spalink et al., 'Building a Robust Software-Based \
         Router Using Network Processors' (SOSP 2001)@.";
      List.iter (fun (_, _, f) -> f ()) experiments
  | _ :: args ->
      List.iter
        (fun a ->
          match a with
          | "micro" -> Micro.run ()
          | "-h" | "--help" -> usage ()
          | a -> (
              match List.find_opt (fun (n, _, _) -> n = a) experiments with
              | Some (_, _, f) -> f ()
              | None ->
                  Printf.eprintf "unknown experiment %S\n" a;
                  usage ();
                  exit 1))
        args
  | [] -> usage ()
