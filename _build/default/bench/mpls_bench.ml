(* Extension bench: the MPLS / virtual-circuit fast path.

   Section 3.5.1: "the performance we report is what one would expect in
   the common case for a virtual circuit-based switch, such as one that
   supports MPLS" — because the null-forwarder experiment's classification
   is a single hash + route-cache hit, which is exactly what a label
   lookup costs.  This bench makes the claim concrete: peak rate with the
   IP trivial classifier vs the (slightly cheaper) label lookup. *)

open Router.Fixed_infra

let run () =
  Report.section "MPLS label-switching fast path (extension)";
  let ip = run default in
  let mpls_cm =
    {
      Router.Cost_model.default with
      (* Label lookup: 20 instructions, 1 hash, one 4-byte NHLFE read;
         the "forwarder" is the 6-instruction swap. *)
      Router.Cost_model.classify_null_instr = 20;
      classify_null_sram_reads = 1;
      forward_null_instr = 6;
    }
  in
  let mpls = run { default with cm = mpls_cm } in
  Report.info "peak system rate, 64-byte packets, I.2 + O.1:";
  Report.row ~unit_:"Mpps" ~name:"IP trivial classifier (cache hit)"
    ~paper:3.47 ~measured:ip.out_mpps;
  Report.row ~unit_:"Mpps" ~name:"MPLS label swap" ~paper:3.47
    ~measured:mpls.out_mpps;
  Report.info
    "paper's expectation: the two coincide (both are one hash + one small \
     read); measured ratio %.2f" (mpls.out_mpps /. ip.out_mpps)
