(* [row]'s optional unit label is deliberately last: every argument is
   labelled, so erasure never applies anyway. *)
[@@@ocaml.warning "-16"]

let section name =
  Format.printf "@.==== %s ====@." name

let row ?(unit_ = "") ~name ~paper ~measured =
  let ratio = if paper = 0. then nan else measured /. paper in
  Format.printf "  %-42s paper %10.3f %-5s measured %10.3f %-5s (x%.2f)@."
    name paper unit_ measured unit_ ratio

let info fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let series s = Format.printf "%a@." Sim.Stats.Series.pp s
