(** Uniform paper-vs-measured reporting for the benchmark harness. *)

val section : string -> unit
(** Print a banner. *)

val row : ?unit_:string -> name:string -> paper:float -> measured:float -> unit
(** One comparison line with the measured/paper ratio. *)

val info : ('a, Format.formatter, unit) format -> 'a
(** Free-form note, indented under the current section. *)

val series : Sim.Stats.Series.t -> unit
(** Print a figure's series as an aligned table with a spark column. *)
