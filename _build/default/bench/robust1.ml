(* Section 4.7, first robustness experiment: the MicroEngines run a
   synthetic forwarder suite using the full VRP budget while the 8 x 100
   Mbps ports run at line rate (1.128 Mpps); an increasing share of the
   traffic belongs to flows whose forwarder runs on the Pentium.  The
   paper sustains 310 Kpps through the Pentium with no loss anywhere, each
   such packet receiving 1510 cycles of service. *)

let pe_null =
  Router.Forwarder.make ~name:"pe-null" ~code:[] ~state_bytes:0 ~host_cycles:0
    (fun ~state:_ _ ~in_port:_ -> Router.Forwarder.Forward_routed)

let addr = Packet.Ipv4.addr_of_string

let attempt ~pe_kpps =
  let r = Router.create () in
  for p = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  (* Fill the VRP with the synthetic suite. *)
  List.iter
    (fun f ->
      match
        Router.Iface.install r.Router.iface ~key:Packet.Flow.All ~fwdr:f
          ~where:Router.Iface.ME ()
      with
      | Ok _ -> ()
      | Error es -> failwith (String.concat ";" es))
    (Forwarders.Suite.full_budget_suite ~budget:Router.Vrp.prototype_budget ());
  (* One Pentium-bound flow per input port. *)
  let flows =
    List.init 8 (fun p ->
        {
          Packet.Flow.src_addr = addr (Printf.sprintf "10.25%d.0.1" (p mod 5));
          src_port = 5000 + p;
          dst_addr = addr (Printf.sprintf "10.%d.0.77" p);
          dst_port = 6000 + p;
        })
  in
  List.iter
    (fun fl ->
      match
        Router.Iface.install r.Router.iface ~key:(Packet.Flow.Tuple fl)
          ~fwdr:pe_null ~where:Router.Iface.PE
          ~expected_pps:(pe_kpps *. 1e3 /. 8.)
          ()
      with
      | Ok _ -> ()
      | Error es -> failwith ("PE admission: " ^ String.concat ";" es))
    flows;
  Router.start r;
  (* Background traffic tops each port up to line rate; PE-bound flows take
     their configured share of it. *)
  let line = 141_000. in
  let rng = Sim.Rng.create 77L in
  List.iteri
    (fun p fl ->
      let pe_pps = pe_kpps *. 1e3 /. 8. in
      let rng = Sim.Rng.split rng in
      ignore
        (Workload.Source.spawn_constant r.Router.engine
           ~name:(Printf.sprintf "bg%d" p)
           ~pps:(line -. pe_pps)
           ~gen:(Workload.Mix.udp_uniform ~rng ~n_subnets:8 ())
           ~offer:(fun f -> Router.inject r ~port:p f)
           ());
      if pe_pps > 0. then
        ignore
          (Workload.Source.spawn_constant r.Router.engine
             ~name:(Printf.sprintf "pe%d" p)
             ~pps:pe_pps
             ~gen:(fun i ->
               ignore i;
               Packet.Build.tcp ~src:fl.Packet.Flow.src_addr
                 ~dst:fl.Packet.Flow.dst_addr
                 ~src_port:fl.Packet.Flow.src_port
                 ~dst_port:fl.Packet.Flow.dst_port ())
             ~offer:(fun f -> Router.inject r ~port:p f)
             ()))
    flows;
  (* Warm up (route-cache cold start diverts the first packet of every
     destination through the StrongARM), then measure steady state. *)
  Router.run_for r ~us:6_000.;
  let drops_at t =
    Sim.Stats.Counter.value t.Router.istats.Router.Input_loop.enq_drop
    + Sim.Stats.Counter.value
        t.Router.sa.Router.Strongarm.stats.Router.Strongarm.dropped
    + Array.fold_left
        (fun acc p -> acc + Ixp.Mac_port.rx_dropped p)
        0 t.Router.chip.Ixp.Chip.ports
  in
  let drops0 = drops_at r in
  let pe_n0 =
    Sim.Stats.Counter.value (Router.Pentium.stats r.Router.pe).Router.Pentium.processed
  in
  Router.run_for r ~us:20_000.;
  let secs = 20e-3 in
  let pe_n =
    Sim.Stats.Counter.value (Router.Pentium.stats r.Router.pe).Router.Pentium.processed
    - pe_n0
  in
  let pe_rate = float_of_int pe_n /. secs in
  let drops = drops_at r - drops0 in
  let backlog =
    Array.fold_left
      (fun acc q -> acc + Router.Squeue.length q)
      0 r.Router.sa.Router.Strongarm.pe_qs
    + Router.Squeue.length r.Router.sa.Router.Strongarm.local_q
  in
  let spare = Router.Pentium.spare_cycles_per_packet r.Router.pe in
  let lapped =
    Sim.Stats.Counter.value
      r.Router.sa.Router.Strongarm.stats.Router.Strongarm.stale_bufs
  in
  (pe_rate /. 1e3, drops, backlog, spare, lapped)

let run () =
  Report.section
    "Robustness 1: full-VRP suite at line rate, traffic through the Pentium";
  let sustained = ref 0. in
  let spare_at_sustained = ref nan in
  List.iter
    (fun pe_kpps ->
      let rate, drops, backlog, spare, lapped = attempt ~pe_kpps in
      let ok = drops = 0 && backlog < 256 in
      if ok && pe_kpps > !sustained then begin
        sustained := pe_kpps;
        spare_at_sustained := spare
      end;
      Report.info
        "offered %3.0f Kpps via Pentium: served %6.1f Kpps, queue drops %d, \
         buffer laps %d, backlog %d, spare %.0f cyc/pkt %s"
        pe_kpps rate drops lapped backlog spare
        (if ok then "[sustained]" else "[overload]"))
    [ 100.; 200.; 310.; 400.; 500. ];
  Report.row ~unit_:"Kpps" ~name:"max sustained through Pentium" ~paper:310.
    ~measured:!sustained;
  Report.row ~unit_:"cyc" ~name:"service cycles per Pentium packet"
    ~paper:1510. ~measured:!spare_at_sustained
