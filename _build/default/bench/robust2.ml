(* Section 4.7, second robustness experiment: "we ran the base
   infrastructure described in Section 3 without any VRP, and treated an
   increasing percentage of the packets as exceptional, thereby simulating
   a flood of control packets.  These exceptional packets had no effect on
   the router's ability to forward regular packets... the router was able
   to sustain the full rate of 3.47 Mpps." *)

open Router.Fixed_infra

let run () =
  Report.section "Robustness 2: exceptional/control packet flood isolation";
  let base = run default in
  Report.info "baseline input-stage rate: %.3f Mpps" base.in_mpps;
  let s =
    Sim.Stats.Series.create ~name:"input processing rate vs exceptional share"
      ~x_label:"exceptional %" ~y_label:"Mpps"
  in
  List.iter
    (fun share ->
      let r = run { default with exceptional_share = share } in
      Sim.Stats.Series.add s ~x:(100. *. share) ~y:r.in_mpps;
      Report.info
        "share %4.1f%%: input %.3f Mpps, StrongARM serviced %.1f Kpps \
         (backlog %d)"
        (100. *. share) r.in_mpps r.sa_kpps r.sa_backlog)
    [ 0.; 0.01; 0.05; 0.10; 0.20 ];
  Report.series s;
  let pts = Sim.Stats.Series.points s in
  let min_rate = List.fold_left (fun a (_, y) -> Float.min a y) infinity pts in
  Report.row ~unit_:"Mpps"
    ~name:"worst input rate across flood levels (paper: unchanged)"
    ~paper:3.47 ~measured:min_rate;
  Report.info
    "the MicroEngines classify and enqueue every packet at line speed; the \
     flood only backs up the StrongARM's queue"
