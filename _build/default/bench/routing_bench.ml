(* Extension bench: what control-plane activity costs the data plane.

   Every routing-table update invalidates the route cache (section 2.1's
   control/data split meets section 3.6's cache-miss slow path): after an
   update, the next packet of every flow takes a StrongARM round trip to
   re-warm its cache line.  This bench drives the router at line rate
   while a neighbor re-announces routes at increasing rates and reports
   the delivered throughput and the StrongARM's full-lookup load. *)

let addr = Packet.Ipv4.addr_of_string
let counter = Sim.Stats.Counter.value

let run_at ?(selective = false) ~updates_per_s () =
  let config =
    { Router.default_config with Router.selective_invalidation = selective }
  in
  let r = Router.create ~config () in
  let daemon = Control.Rip.create r in
  for p = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  let neighbor = addr "10.250.0.9" in
  (match Control.Rip.add_neighbor daemon ~addr:neighbor ~via_port:1 with
  | Ok _ -> ()
  | Error es -> failwith (String.concat ";" es));
  Router.start r;
  let rng = Sim.Rng.create 5L in
  for p = 0 to 7 do
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate r.Router.engine
         ~name:(Printf.sprintf "data%d" p)
         ~mbps:100. ~frame_len:64
         ~gen:(Workload.Mix.udp_uniform ~rng ~n_subnets:8 ())
         ~offer:(fun f -> Router.inject r ~port:p f)
         ())
  done;
  (if updates_per_s > 0. then
     let gen i =
       (* Churn on prefixes that carry no traffic (alternating metrics so
          every announcement is a genuine table write, not a refresh the
          daemon skips): route flap elsewhere in the Internet should not
          cost the flows passing through this router anything. *)
       Control.Rip.encode ~src:neighbor ~dst:(Control.Rip.router_addr 1)
         [
           {
             Control.Rip.prefix =
               Iproute.Prefix.of_string
                 (Printf.sprintf "10.%d.0.0/16" (100 + (i mod 50)));
             metric = 1 + (i / 50 mod 2);
           };
         ]
     in
     ignore
       (Workload.Source.spawn_constant r.Router.engine ~name:"updates"
          ~pps:updates_per_s ~gen
          ~offer:(fun f -> Router.inject r ~port:1 f)
          ()));
  (* Warm, then measure. *)
  Router.run_for r ~us:4000.;
  let d0 = Router.delivered_total r in
  let m0 =
    counter r.Router.sa.Router.Strongarm.stats.Router.Strongarm.route_misses
  in
  Router.run_for r ~us:10_000.;
  let secs = 10e-3 in
  ( float_of_int (Router.delivered_total r - d0) /. secs /. 1e6,
    float_of_int
      (counter r.Router.sa.Router.Strongarm.stats.Router.Strongarm.route_misses
      - m0)
    /. secs /. 1e3 )

let run () =
  Report.section
    "Route-update storms: cache invalidation vs forwarding (extension)";
  let base = ref 0. in
  List.iter
    (fun ups ->
      let mpps, miss_kps = run_at ~updates_per_s:ups () in
      if ups = 0. then base := mpps;
      Report.info
        "%6.0f updates/s (full invalidation):      %.3f Mpps (%5.1f%% of \
         quiet), SA full lookups %6.1f K/s"
        ups mpps
        (100. *. mpps /. !base)
        miss_kps)
    [ 0.; 100.; 1000.; 5000. ];
  List.iter
    (fun ups ->
      let mpps, miss_kps = run_at ~selective:true ~updates_per_s:ups () in
      Report.info
        "%6.0f updates/s (selective invalidation): %.3f Mpps (%5.1f%% of \
         quiet), SA full lookups %6.1f K/s"
        ups mpps
        (100. *. mpps /. !base)
        miss_kps)
    [ 1000.; 5000. ];
  Report.info
    "a table write invalidates route-cache lines whose refills ride the \
     exceptional path; past the StrongARM's service rate the cache never \
     re-warms and delivery collapses — selective invalidation (only the \
     changed prefix's lines) keeps the churn survivable"
