(* Section 3.6: maximum StrongARM forwarding rate with a null forwarder —
   every packet diverted to the StrongARM, which dequeues (polling vs
   interrupts), runs no code, and re-enqueues for output.  Paper: 526 Kpps
   polling, "interrupts were significantly slower", zero spare cycles at
   that rate. *)

(* The paper's null forwarder: no packet work at all — the measured rate
   is pure dequeue/dispatch/re-enqueue overhead.  [host_cycles] covers the
   jump-table dispatch and loop bookkeeping around the (empty) body. *)
let null_local =
  Router.Forwarder.make ~name:"sa-null" ~code:[] ~state_bytes:0
    ~host_cycles:140 (fun ~state:_ _ ~in_port:_ -> Router.Forwarder.Forward 0)

let run_mode wakeup =
  let config = { Router.default_config with Router.sa_wakeup = wakeup } in
  let r = Router.create ~config () in
  for p = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  Router.Iface.register_sa_boot_forwarder r.Router.iface null_local;
  let fid =
    match
      Router.Iface.install r.Router.iface ~key:Packet.Flow.All
        ~fwdr:null_local ~where:Router.Iface.SA ()
    with
    | Ok fid -> fid
    | Error es -> failwith (String.concat ";" es)
  in
  (* Divert every packet to the StrongARM, charging the usual trivial
     classification on the way. *)
  let process t ctx frame ~in_port =
    ignore in_port;
    match Router.Classifier.classify_null t.Router.classifier ctx frame with
    | Router.Classifier.Invalid -> Router.Input_loop.Drop_it
    | Router.Classifier.Classified { route; _ } ->
        let out_port =
          match route with
          | Some nh -> nh.Iproute.Table.out_port
          | None -> -1
        in
        Router.Input_loop.To_queue
          { qid = Router.qid_sa_local t; out_port; fid }
  in
  Router.start ~process r;
  let rng = Sim.Rng.create 2L in
  (* Offer well above the StrongARM's capacity so it saturates. *)
  List.iteri
    (fun p rng ->
      ignore
        (Workload.Source.spawn_constant r.Router.engine
           ~name:(Printf.sprintf "gen%d" p)
           ~pps:134_000.
           ~gen:(Workload.Mix.udp_uniform ~rng ~n_subnets:8 ())
           ~offer:(fun f -> Router.inject r ~port:p f)
           ()))
    (List.init 8 (fun _ -> Sim.Rng.split rng));
  Router.run_for r ~us:10_000.;
  let secs = Sim.Engine.seconds (Sim.Engine.time r.Router.engine) in
  let serviced =
    Sim.Stats.Counter.value
      r.Router.sa.Router.Strongarm.stats.Router.Strongarm.local_done
  in
  let rate = float_of_int serviced /. secs in
  let spare_per_pkt =
    if serviced = 0 then nan
    else
      (200e6 /. rate)
      -. (Router.Strongarm.busy_cycles r.Router.sa /. float_of_int serviced)
  in
  (rate /. 1e3, spare_per_pkt)

let run () =
  Report.section "StrongARM null-forwarder rate (section 3.6)";
  let kpps, spare = run_mode Router.Strongarm.Polling in
  Report.row ~unit_:"Kpps" ~name:"polling" ~paper:526. ~measured:kpps;
  Report.row ~unit_:"cyc" ~name:"spare cycles per packet (polling)" ~paper:0.
    ~measured:spare;
  let kpps_i, _ = run_mode Router.Strongarm.Interrupts in
  Report.row ~unit_:"Kpps" ~name:"interrupts (paper: 'significantly slower')"
    ~paper:526. ~measured:kpps_i;
  Report.info "interrupt/polling ratio: %.2f" (kpps_i /. kpps)
