(* Table 2: instruction and memory-operation counts for processing one MP,
   audited two ways: statically from the cost model, and dynamically by
   dividing live channel counters from a standard I.2+O.1 run by the
   packets it forwarded. *)

let run () =
  Report.section "Table 2: per-MP operation counts (I.2 + O.1)";
  let cm = Router.Cost_model.default in
  Report.row ~unit_:"instr" ~name:"input register ops" ~paper:171.
    ~measured:(float_of_int (Router.Cost_model.input_reg_total cm));
  Report.row ~unit_:"instr" ~name:"output register ops" ~paper:109.
    ~measured:(float_of_int (Router.Cost_model.output_reg_total cm));
  Report.row ~unit_:"instr" ~name:"total register ops" ~paper:280.
    ~measured:
      (float_of_int
         (Router.Cost_model.input_reg_total cm
         + Router.Cost_model.output_reg_total cm));
  let r = Router.Fixed_infra.(run default) in
  Report.info
    "dynamic audit: channel operations per forwarded packet, measured";
  Report.row ~unit_:"ops" ~name:"DRAM (paper 2r + 2w)" ~paper:4.
    ~measured:r.Router.Fixed_infra.dram_ops_per_pkt;
  Report.row ~unit_:"ops" ~name:"SRAM (paper 2r + 2w)" ~paper:4.
    ~measured:r.Router.Fixed_infra.sram_ops_per_pkt;
  Report.row ~unit_:"ops" ~name:"Scratch (paper 2r + 6w)" ~paper:8.
    ~measured:r.Router.Fixed_infra.scratch_ops_per_pkt;
  (* The paper's headline arithmetic from these counts. *)
  let cap = Router.Capacity.default in
  Report.row ~unit_:"cyc" ~name:"per-packet delay (280 + memory)" ~paper:710.
    ~measured:(float_of_int (Router.Capacity.packet_delay_cycles cap));
  (* "A given packet experiences 3550 ns of delay as it is forwarded":
     measured as the flight time of one probe packet through an otherwise
     idle router (warm route cache), queueing excluded. *)
  let probe_latency_ns =
    let rt = Router.create () in
    Router.add_route rt (Iproute.Prefix.of_string "10.3.0.0/16") ~port:3;
    Router.start rt;
    let mk () =
      Packet.Build.udp
        ~src:(Packet.Ipv4.addr_of_string "10.250.0.1")
        ~dst:(Packet.Ipv4.addr_of_string "10.3.0.1")
        ~src_port:1 ~dst_port:2 ()
    in
    (* First packet warms the route cache via the slow path. *)
    ignore (Router.inject rt ~port:0 (mk ()));
    Router.run_for rt ~us:200.;
    let t_done = ref 0L in
    Router.connect rt ~port:3 (fun _ ->
        t_done := Sim.Engine.time rt.Router.engine);
    let t0 = Sim.Engine.time rt.Router.engine in
    ignore (Router.inject rt ~port:0 (mk ()));
    Router.run_for rt ~us:200.;
    Int64.to_float (Int64.sub !t_done t0) /. 1e3
  in
  Report.row ~unit_:"ns" ~name:"unloaded per-packet flight time" ~paper:3550.
    ~measured:probe_latency_ns;
  Report.info
    "at peak overload the same path averages %.0f ns (deep queues; the \
     paper's figure is the unloaded one)"
    r.Router.Fixed_infra.latency_ns_mean;
  Report.row ~unit_:"pkt" ~name:"packets forwarded in parallel @3.47Mpps" ~paper:12.3
    ~measured:(Router.Capacity.packets_in_parallel cap ~at_mpps:3.47);
  Report.row ~unit_:"Mpps" ~name:"optimistic upper bound (1-cycle memory)"
    ~paper:4.29
    ~measured:(Router.Capacity.optimistic_upper_bound_mpps cap)
