(* Table 3: MicroEngine cycle times to move common-sized blocks through
   each memory, measured by a single probing context on an otherwise idle
   chip, then again under heavy background load to show the contention the
   idle numbers hide. *)

let probe ~loaded =
  let engine = Sim.Engine.create () in
  let chip = Ixp.Chip.create ~ports:[] engine in
  if loaded then
    (* Sixteen contexts hammering each channel in the background. *)
    for i = 0 to 15 do
      Sim.Engine.spawn engine
        (Printf.sprintf "bg%d" i)
        (fun () ->
          let rec go () =
            Ixp.Mem.read chip.Ixp.Chip.dram ~bytes:32;
            Ixp.Mem.read chip.Ixp.Chip.sram ~bytes:4;
            Ixp.Mem.write chip.Ixp.Chip.scratch ~bytes:4;
            go ()
          in
          go ())
    done;
  let results = ref [] in
  Sim.Engine.spawn engine "probe" (fun () ->
      Sim.Engine.wait (Sim.Engine.of_seconds 1e-6);
      let sample name mem bytes =
        let avg_over op =
          let t0 = Sim.Engine.now () in
          for _ = 1 to 100 do
            op ()
          done;
          Int64.to_float (Int64.sub (Sim.Engine.now ()) t0) /. 100. /. 5000.
        in
        let rd = avg_over (fun () -> Ixp.Mem.read mem ~bytes) in
        let wr = avg_over (fun () -> Ixp.Mem.write mem ~bytes) in
        results := (name, bytes, rd, wr) :: !results
      in
      sample "DRAM" chip.Ixp.Chip.dram 32;
      sample "SRAM" chip.Ixp.Chip.sram 4;
      sample "Scratch" chip.Ixp.Chip.scratch 4);
  Sim.Engine.run engine ~until:(Sim.Engine.of_seconds 1e-3);
  List.rev !results

let run () =
  Report.section "Table 3: memory transfer latencies (MicroEngine cycles)";
  let paper = [ ("DRAM", 52., 40.); ("SRAM", 22., 22.); ("Scratch", 16., 20.) ] in
  List.iter2
    (fun (name, bytes, rd, wr) (pname, prd, pwr) ->
      assert (name = pname);
      Report.row ~unit_:"cyc"
        ~name:(Printf.sprintf "%s %dB read" name bytes)
        ~paper:prd ~measured:rd;
      Report.row ~unit_:"cyc"
        ~name:(Printf.sprintf "%s %dB write" name bytes)
        ~paper:pwr ~measured:wr)
    (probe ~loaded:false) paper;
  Report.info
    "under 16-context background load (contention the idle table hides):";
  List.iter
    (fun (name, bytes, rd, wr) ->
      Report.info "%s %dB: read %.1f cyc, write %.1f cyc" name bytes rd wr)
    (probe ~loaded:true)
