(* Table 5: cycle, memory and register requirements of the example data
   forwarders, from the same static analysis admission control runs. *)

let run () =
  Report.section "Table 5: example data forwarder requirements";
  let paper =
    [
      ("TCP Splicer", 24., 45.);
      ("Wavelet Dropper", 8., 28.);
      ("ACK Monitor", 12., 15.);
      ("SYN Monitor", 4., 5.);
      ("Port Filter", 20., 26.);
      ("IP", 24., 32.);
    ]
  in
  let adm = Router.Admission.default Ixp.Config.default in
  List.iter2
    (fun (name, f) (pname, psram, preg) ->
      assert (name = pname);
      let c = Router.Forwarder.cost f in
      Report.row ~unit_:"B"
        ~name:(name ^ " SRAM read/write")
        ~paper:psram
        ~measured:
          (float_of_int (c.Router.Vrp.sram_read_bytes + c.Router.Vrp.sram_write_bytes));
      Report.row ~unit_:"ops"
        ~name:(name ^ " register operations")
        ~paper:preg
        ~measured:(float_of_int c.Router.Vrp.instr);
      Report.info "%s: admission cycles (with branch delays) = %d, ISTORE = %d slots"
        name
        (Router.Admission.me_cycles_required adm f)
        (Router.Forwarder.istore_slots f))
    Forwarders.Suite.table5 paper;
  Report.info "heavyweight forwarders (section 4.4): host cycles per packet";
  Report.row ~unit_:"cyc" ~name:"full IP (StrongARM/Pentium class)" ~paper:660.
    ~measured:(float_of_int Forwarders.Ip.full.Router.Forwarder.host_cycles);
  Report.row ~unit_:"cyc" ~name:"TCP proxy (Pentium class)" ~paper:800.
    ~measured:(float_of_int Forwarders.Ip.proxy.Router.Forwarder.host_cycles);
  Report.row ~unit_:"cyc" ~name:"prefix match (controlled expansion)"
    ~paper:236.
    ~measured:
      (float_of_int
         (Router.Cost_model.default.Router.Cost_model.sa_route_lookup_instr
         + (3 * 22) (* three 4-byte SRAM reads *)))
