examples/cluster_router.ml: Array Cluster Format Packet Printf Router Sim Workload
