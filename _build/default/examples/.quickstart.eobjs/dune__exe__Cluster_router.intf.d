examples/cluster_router.mli:
