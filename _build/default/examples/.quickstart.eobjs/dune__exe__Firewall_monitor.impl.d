examples/firewall_monitor.ml: Array Bytes Format Forwarders Iproute Option Packet Printf Router Sim String Workload
