examples/firewall_monitor.mli:
