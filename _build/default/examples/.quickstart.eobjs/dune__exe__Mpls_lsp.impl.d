examples/mpls_lsp.ml: Array Format Iproute Mpls Packet Printf Router Sim Workload
