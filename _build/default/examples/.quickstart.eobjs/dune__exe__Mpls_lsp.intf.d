examples/mpls_lsp.mli:
