examples/quickstart.ml: Array Format Forwarders Iproute Option Packet Printf Router Sim String
