examples/quickstart.mli:
