examples/robustness_demo.ml: Array Float Format Iproute List Packet Printf Router Sim Workload
