examples/robustness_demo.mli:
