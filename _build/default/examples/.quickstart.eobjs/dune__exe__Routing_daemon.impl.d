examples/routing_daemon.ml: Array Control Format Iproute Packet Router Sim String Workload
