examples/routing_daemon.mli:
