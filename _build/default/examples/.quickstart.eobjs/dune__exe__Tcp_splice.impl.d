examples/tcp_splice.ml: Bytes Format Forwarders Int32 Iproute Option Packet Printf Router Sim String
