examples/tcp_splice.mli:
