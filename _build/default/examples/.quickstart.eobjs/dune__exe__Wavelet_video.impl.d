examples/wavelet_video.ml: Array Bytes Format Forwarders Iproute List Option Packet Printf Router Sim String Workload
