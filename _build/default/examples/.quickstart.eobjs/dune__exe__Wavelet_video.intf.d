examples/wavelet_video.mli:
