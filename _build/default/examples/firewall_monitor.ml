(* Firewall + monitoring: the control/data forwarder split of paper
   section 4.4.

   Data plane (MicroEngines): a SYN monitor counts connection attempts and
   a port filter drops blocked destination ports — both within the VRP
   budget, at line speed.

   Control plane (Pentium): a control forwarder periodically reads the
   monitor's counters via getdata; when it sees a SYN flood it reacts by
   writing a new filter rule into the port filter's flow state via setdata
   — "the control forwarder analyzes them and in turn installs filters in
   the data forwarder".

   Run with: dune exec examples/firewall_monitor.exe *)

let addr = Packet.Ipv4.addr_of_string

let () =
  let r = Router.create () in
  for port = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" port))
      ~port
  done;
  let install fwdr =
    match
      Router.Iface.install r.Router.iface ~key:Packet.Flow.All ~fwdr
        ~where:Router.Iface.ME ()
    with
    | Ok fid -> fid
    | Error es -> failwith (String.concat "; " es)
  in
  let syn_fid = install Forwarders.Syn_monitor.forwarder in
  let filter_fid = install Forwarders.Port_filter.forwarder in
  Router.start r;

  (* The control forwarder: every 500 us, read the SYN counter; above the
     threshold, block the attacked port range in the data plane. *)
  let threshold = 100 in
  let reacted = ref false in
  Router.Pentium.spawn_control r.Router.pe r.Router.chip ~name:"syn-guard"
    ~period_us:500. ~cycles:2000 (fun () ->
      let syns =
        Forwarders.Syn_monitor.syn_count
          (Option.get (Router.Iface.getdata r.Router.iface syn_fid))
      in
      if syns > threshold && not !reacted then begin
        reacted := true;
        Format.printf
          "[%.2f ms] control: %d SYNs seen -> installing filter for port 80@."
          (Sim.Engine.seconds (Sim.Engine.time r.Router.engine) *. 1e3)
          syns;
        let rules = Bytes.make 20 '\000' in
        Forwarders.Port_filter.set_range rules ~slot:0 ~lo:80 ~hi:80;
        match Router.Iface.setdata r.Router.iface filter_fid rules with
        | Ok () -> ()
        | Error e -> failwith e
      end;
      true);

  (* Legitimate background traffic plus a SYN flood against 10.6.0.1:80. *)
  let rng = Sim.Rng.create 13L in
  ignore
    (Workload.Source.spawn_constant r.Router.engine ~name:"legit" ~pps:50_000.
       ~gen:(Workload.Mix.udp_uniform ~rng:(Sim.Rng.split rng) ~n_subnets:8 ())
       ~offer:(fun f -> Router.inject r ~port:0 f)
       ());
  ignore
    (Workload.Source.spawn_constant r.Router.engine ~name:"flood"
       ~pps:100_000.
       ~gen:
         (Workload.Mix.syn_flood ~rng:(Sim.Rng.split rng) ~dst:(addr "10.6.0.1")
            ~dst_port:80)
       ~offer:(fun f -> Router.inject r ~port:1 f)
       ());

  Router.run_for r ~us:5_000.;
  let syns =
    Forwarders.Syn_monitor.syn_count
      (Option.get (Router.Iface.getdata r.Router.iface syn_fid))
  in
  let filtered =
    Sim.Stats.Counter.value r.Router.istats.Router.Input_loop.drop_by_process
  in
  Format.printf
    "[%.2f ms] final: %d SYNs observed, %d packets dropped by the data-plane \
     filter, %d delivered to the victim's port@."
    (Sim.Engine.seconds (Sim.Engine.time r.Router.engine) *. 1e3)
    syns filtered
    (Sim.Stats.Counter.value r.Router.delivered.(6));
  assert !reacted;
  assert (filtered > 0);
  Format.printf
    "the flood kept arriving at line rate, yet non-flood traffic flowed: %d \
     packets out other ports@."
    (Router.delivered_total r - Sim.Stats.Counter.value r.Router.delivered.(6))
