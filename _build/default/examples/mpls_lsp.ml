(* A label-switched path across two routers sharing one simulation — both
   extensions the paper sketches, working together:

   - section 3.5.1 / 4.5: the classifier replaced by one that understands
     MPLS labels (the virtual-circuit fast path);
   - section 6 (future work): multiple Pentium/IXP pairs cabled together.

   Topology:  host --(port 0)--> [router A] --(port 6 <-> port 0)--> [router B] --(port 3)--> dest

   Router A is the ingress LER: packets for 10.3.0.0/16 match the FEC and
   get label 500 pushed.  Router B is the egress LER: label 500 pops and
   the exposed IP packet routes normally out port 3.  Unlabelled traffic
   for other subnets crosses both routers as plain IP for comparison.

   Run with: dune exec examples/mpls_lsp.exe *)

let addr = Packet.Ipv4.addr_of_string

let () =
  let engine = Sim.Engine.create () in
  let ra = Router.create ~engine () in
  let rb = Router.create ~engine () in
  (* Router A routes everything toward router B through port 6; router B
     owns the destination subnets. *)
  Router.add_route ra (Iproute.Prefix.of_string "0.0.0.0/0") ~port:6;
  for p = 0 to 7 do
    Router.add_route rb
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  (* The cable: A's port 6 feeds B's port 0 (and vice versa for return
     traffic, unused here). *)
  Router.connect ra ~port:6 (fun f -> ignore (Router.inject rb ~port:0 f));
  Router.connect rb ~port:0 (fun f -> ignore (Router.inject ra ~port:6 f));

  (* The LSP: ingress FEC on A, egress pop on B. *)
  let lsp_label = 500 in
  let lsr_a = Mpls.Lsr.create () in
  Mpls.Lsr.add_ftn lsr_a
    (Iproute.Prefix.of_string "10.3.0.0/16")
    ~push_label:lsp_label ~out_port:6;
  let lsr_b = Mpls.Lsr.create () in
  Mpls.Lsr.add_ilm lsr_b ~label:lsp_label Mpls.Lsr.Pop_and_route;
  Router.start ~process:(Mpls.Lsr.process lsr_a) ra;
  Router.start ~process:(Mpls.Lsr.process lsr_b) rb;

  (* Traffic: one flow onto the LSP, one plain-IP flow to another subnet. *)
  ignore
    (Workload.Source.spawn_constant engine ~name:"lsp-flow" ~pps:20_000.
       ~gen:(fun i ->
         ignore i;
         Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.3.0.42")
           ~src_port:7000 ~dst_port:7001 ())
       ~offer:(fun f -> Router.inject ra ~port:0 f)
       ());
  ignore
    (Workload.Source.spawn_constant engine ~name:"ip-flow" ~pps:20_000.
       ~gen:(fun i ->
         ignore i;
         Packet.Build.udp ~src:(addr "10.250.0.2") ~dst:(addr "10.5.0.42")
           ~src_port:8000 ~dst_port:8001 ())
       ~offer:(fun f -> Router.inject ra ~port:0 f)
       ());
  Sim.Engine.run engine ~until:(Sim.Engine.of_seconds 5e-3);

  let sa = Mpls.Lsr.stats lsr_a and sb = Mpls.Lsr.stats lsr_b in
  Format.printf "router A (ingress LER): pushed %d labels@."
    (Sim.Stats.Counter.value sa.Mpls.Lsr.pushed);
  Format.printf "router B (egress LER):  popped %d labels@."
    (Sim.Stats.Counter.value sb.Mpls.Lsr.popped);
  Format.printf
    "router B deliveries: port 3 (LSP traffic) %d, port 5 (plain IP) %d@."
    (Sim.Stats.Counter.value rb.Router.delivered.(3))
    (Sim.Stats.Counter.value rb.Router.delivered.(5));
  assert (Sim.Stats.Counter.value sa.Mpls.Lsr.pushed > 0);
  assert (
    Sim.Stats.Counter.value sb.Mpls.Lsr.popped
    = Sim.Stats.Counter.value sa.Mpls.Lsr.pushed
    || Sim.Stats.Counter.value sa.Mpls.Lsr.pushed
       - Sim.Stats.Counter.value sb.Mpls.Lsr.popped
       < 8 (* in flight at cutoff *));
  Format.printf
    "both flows crossed two simulated routers end to end; the LSP flow was \
     label-switched on B's fast path without an IP lookup@."
