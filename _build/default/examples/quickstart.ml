(* Quickstart: build the three-level router, route two subnets, push a
   packet through, and watch the fast path transform it.

   Run with: dune exec examples/quickstart.exe *)

let addr = Packet.Ipv4.addr_of_string

let () =
  (* 1. A router with the paper's prototype configuration: 8 x 100 Mbps
     ports, 16 input + 8 output MicroEngine contexts, StrongARM bridge,
     Pentium control processor. *)
  let r = Router.create () in

  (* 2. Routes: one /16 per output port (the control plane would normally
     install these from OSPF). *)
  for port = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" port))
      ~port
  done;

  (* 3. Start every fiber: input/output loops, StrongARM, Pentium. *)
  Router.start r;

  (* 4. Inject a UDP packet on port 0, destined for subnet 3. *)
  let pkt =
    Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.3.14.15")
      ~src_port:5353 ~dst_port:4242 ~ttl:32 ()
  in
  Format.printf "injecting: %a -> %a (ttl %d)@." Packet.Ipv4.pp_addr
    (Packet.Ipv4.get_src pkt) Packet.Ipv4.pp_addr (Packet.Ipv4.get_dst pkt)
    (Packet.Ipv4.get_ttl pkt);
  assert (Router.inject r ~port:0 pkt);

  (* 5. Advance simulated time; the packet crosses the MicroEngine fast
     path: validated, classified, TTL decremented with an incremental
     checksum update, MACs rewritten, queued, transmitted. *)
  Router.run_for r ~us:100.;

  Format.printf "after forwarding: ttl %d, header %s, delivered out port 3: %d@."
    (Packet.Ipv4.get_ttl pkt)
    (if Packet.Ipv4.valid pkt then "valid" else "INVALID")
    (Sim.Stats.Counter.value r.Router.delivered.(3));

  (* 6. Extend the router at run time: count SYNs in the data plane. *)
  let fid =
    match
      Router.Iface.install r.Router.iface ~key:Packet.Flow.All
        ~fwdr:Forwarders.Syn_monitor.forwarder ~where:Router.Iface.ME ()
    with
    | Ok fid -> fid
    | Error es -> failwith (String.concat "; " es)
  in
  let syn =
    Packet.Build.tcp ~src:(addr "10.250.0.2") ~dst:(addr "10.5.0.1")
      ~src_port:1000 ~dst_port:80 ~flags:Packet.Tcp.flag_syn ()
  in
  for _ = 1 to 5 do
    ignore (Router.inject r ~port:1 (Packet.Frame.copy syn))
  done;
  Router.run_for r ~us:100.;
  let state = Option.get (Router.Iface.getdata r.Router.iface fid) in
  Format.printf "SYN monitor (installed live, ran in the data plane): %d SYNs@."
    (Forwarders.Syn_monitor.syn_count state);
  Format.printf "%a@." Router.pp_summary r
