(* Robustness demo (paper section 4.7, demo-sized): a flood of exceptional
   control-plane packets must not disturb data-plane forwarding.

   Two runs over the same 6 ms window: clean line-rate traffic, then the
   same traffic where port 7's source sends only packets with IP options —
   every one of which diverts to the StrongARM.  The fast path's delivery
   on ports 0-6 should not change.

   Run with: dune exec examples/robustness_demo.exe *)

let addr = Packet.Ipv4.addr_of_string

let run ~flood =
  let r = Router.create () in
  for port = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" port))
      ~port
  done;
  Router.start r;
  let rng = Sim.Rng.create 3L in
  (* Ports 0-6: clean traffic, spread over output ports 0-6. *)
  for p = 0 to 6 do
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate r.Router.engine
         ~name:(Printf.sprintf "clean%d" p)
         ~mbps:100. ~frame_len:64
         ~gen:(fun i ->
           let f = Workload.Mix.udp_uniform ~rng ~n_subnets:7 () i in
           f)
         ~offer:(fun f -> Router.inject r ~port:p f)
         ())
  done;
  (* Port 7: either clean traffic or a 100% exceptional flood. *)
  let base = Workload.Mix.udp_fixed ~dst:(addr "10.7.0.1") () in
  ignore
    (Workload.Source.spawn_line_rate r.Router.engine ~name:"port7" ~mbps:100.
       ~frame_len:64
       ~gen:(fun i ->
         if flood then Packet.Build.with_ip_options (base i) else base i)
       ~offer:(fun f -> Router.inject r ~port:7 f)
       ());
  Router.run_for r ~us:6_000.;
  let fast =
    Array.to_list r.Router.delivered |> List.filteri (fun i _ -> i < 7)
    |> List.fold_left (fun a c -> a + Sim.Stats.Counter.value c) 0
  in
  let sa = r.Router.sa.Router.Strongarm.stats in
  ( fast,
    Sim.Stats.Counter.value sa.Router.Strongarm.local_done,
    Router.Squeue.length r.Router.sa.Router.Strongarm.local_q )

let () =
  let fast_clean, sa_clean, _ = run ~flood:false in
  let fast_flood, sa_flood, backlog = run ~flood:true in
  Format.printf "clean run:  fast path delivered %d, StrongARM handled %d@."
    fast_clean sa_clean;
  Format.printf
    "flood run:  fast path delivered %d, StrongARM handled %d (backlog %d)@."
    fast_flood sa_flood backlog;
  let delta =
    100. *. (float_of_int fast_flood /. float_of_int fast_clean -. 1.)
  in
  Format.printf "fast-path change under a 141 Kpps exceptional flood: %+.2f%%@."
    delta;
  Format.printf
    "the MicroEngines classify and enqueue everything at line speed; the \
     flood only loads the StrongARM's own queue@.";
  assert (Float.abs delta < 2.0)
