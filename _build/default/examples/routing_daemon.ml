(* The control plane in action: a RIP-style daemon on the Pentium learns
   routes from neighbor announcements, the data plane starts forwarding as
   soon as the table is populated, and a withdrawal re-routes live traffic
   to the backup path — all while the announcements themselves ride the
   ordinary classify-and-divert machinery.

   Run with: dune exec examples/routing_daemon.exe *)

let addr = Packet.Ipv4.addr_of_string
let pfx = Iproute.Prefix.of_string
let counter = Sim.Stats.Counter.value

let () =
  let r = Router.create () in
  let daemon = Control.Rip.create r in
  (* Two neighbors: a primary on port 1 and a backup on port 2. *)
  let primary = addr "10.250.0.2" and backup = addr "10.250.0.3" in
  (match Control.Rip.add_neighbor daemon ~addr:primary ~via_port:1 with
  | Ok _ -> ()
  | Error es -> failwith (String.concat ";" es));
  (match Control.Rip.add_neighbor daemon ~addr:backup ~via_port:2 with
  | Ok _ -> ()
  | Error es -> failwith (String.concat ";" es));
  Router.start r;

  (* A steady data flow toward 10.9.0.0/16 — unroutable until the daemon
     learns the prefix. *)
  ignore
    (Workload.Source.spawn_constant r.Router.engine ~name:"data" ~pps:30_000.
       ~gen:(fun i ->
         ignore i;
         Packet.Build.udp ~src:(addr "10.251.0.1") ~dst:(addr "10.9.1.1")
           ~src_port:7 ~dst_port:8 ())
       ~offer:(fun f -> Router.inject r ~port:0 f)
       ());
  let announce ~from ~via ~metric =
    ignore
      (Router.inject r ~port:via
         (Control.Rip.encode ~src:from ~dst:(Control.Rip.router_addr via)
            [ { Control.Rip.prefix = pfx "10.9.0.0/16"; metric } ]))
  in
  let report label =
    Format.printf
      "[%5.2f ms] %-28s metric=%s  delivered: port1=%d port2=%d  (rib: %d \
       routes)@."
      (Sim.Engine.seconds (Sim.Engine.time r.Router.engine) *. 1e3)
      label
      (match Control.Rip.best_metric daemon (pfx "10.9.0.0/16") with
      | Some m -> string_of_int m
      | None -> "-")
      (counter r.Router.delivered.(1))
      (counter r.Router.delivered.(2))
      (Control.Rip.route_count daemon)
  in
  Router.run_for r ~us:1000.;
  report "before any announcement";

  (* The primary announces the prefix: traffic starts flowing out port 1. *)
  announce ~from:primary ~via:1 ~metric:1;
  Router.run_for r ~us:2000.;
  report "primary announced (m=1)";

  (* The backup announces a worse path: nothing changes. *)
  announce ~from:backup ~via:2 ~metric:4;
  Router.run_for r ~us:2000.;
  report "backup announced (m=4)";

  (* The primary withdraws; the next backup refresh takes over and traffic
     shifts to port 2. *)
  announce ~from:primary ~via:1 ~metric:Control.Rip.infinity_metric;
  Router.run_for r ~us:500.;
  report "primary withdrawn";
  announce ~from:backup ~via:2 ~metric:4;
  Router.run_for r ~us:2000.;
  report "backup refresh took over";

  let s = Control.Rip.stats daemon in
  Format.printf
    "daemon: %d announcements, %d installs, %d withdrawals, %d rejected@."
    (counter s.Control.Rip.announcements)
    (counter s.Control.Rip.routes_installed)
    (counter s.Control.Rip.routes_withdrawn)
    (counter s.Control.Rip.rejected);
  assert (counter r.Router.delivered.(1) > 0);
  assert (counter r.Router.delivered.(2) > 0);
  Format.printf
    "traffic followed the control plane: out the primary while it lived, \
     out the backup after the withdrawal@."
