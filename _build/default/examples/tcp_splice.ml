(* TCP splicing (paper section 4.4, after Spatscheck et al.): a proxy on
   the Pentium handles a connection's opening exchange (authentication);
   once satisfied it splices the two TCP connections by installing a data
   forwarder on the MicroEngines that patches sequence/acknowledgement
   numbers and ports on every subsequent packet — the per-packet work
   leaves the Pentium entirely.

   Run with: dune exec examples/tcp_splice.exe *)

let addr = Packet.Ipv4.addr_of_string

let () =
  let r = Router.create () in
  for port = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" port))
      ~port
  done;
  (* The client->proxy connection and the proxy->server connection. *)
  let client_side =
    {
      Packet.Flow.src_addr = addr "10.250.0.3";
      src_port = 40000;
      dst_addr = addr "10.4.0.80";
      dst_port = 80;
    }
  in
  let server_port = 8080 in
  (* Phase 1: the proxy (a Pentium forwarder) sees the flow's first
     packets. *)
  let auth_seen = ref 0 in
  let proxy =
    Router.Forwarder.make ~name:"splice-proxy" ~code:[] ~state_bytes:4
      ~host_cycles:800 (fun ~state:_ _ ~in_port:_ ->
        incr auth_seen;
        Router.Forwarder.Forward_routed)
  in
  let proxy_fid =
    match
      Router.Iface.install r.Router.iface ~key:(Packet.Flow.Tuple client_side)
        ~fwdr:proxy ~where:Router.Iface.PE ~expected_pps:10_000. ()
    with
    | Ok fid -> fid
    | Error es -> failwith (String.concat "; " es)
  in
  Router.start r;
  let seg i ~payload =
    Packet.Build.tcp ~src:client_side.Packet.Flow.src_addr
      ~dst:client_side.Packet.Flow.dst_addr
      ~src_port:client_side.Packet.Flow.src_port
      ~dst_port:client_side.Packet.Flow.dst_port
      ~seq:(Int32.of_int (1000 + (i * 16)))
      ~ack:(Int32.of_int (7000 + i))
      ~payload ()
  in
  for i = 0 to 3 do
    ignore (Router.inject r ~port:0 (seg i ~payload:"AUTH credentials"))
  done;
  Router.run_for r ~us:1_000.;
  Format.printf "phase 1: proxy on the Pentium handled %d packets@." !auth_seen;
  assert (!auth_seen = 4);

  (* Phase 2: the proxy is satisfied — splice.  Remove the Pentium
     binding, install the splicer on the MicroEngines with the deltas
     between the two connections' sequence spaces, and rewrite the port
     pair onto the server-side connection. *)
  (match Router.Iface.remove r.Router.iface proxy_fid with
  | Ok () -> ()
  | Error e -> failwith e);
  let splicer_fid =
    match
      Router.Iface.install r.Router.iface ~key:(Packet.Flow.Tuple client_side)
        ~fwdr:Forwarders.Tcp_splicer.forwarder ~where:Router.Iface.ME ()
    with
    | Ok fid -> fid
    | Error es -> failwith (String.concat "; " es)
  in
  let cfgd = Bytes.make 24 '\000' in
  Forwarders.Tcp_splicer.configure cfgd ~seq_delta:500_000l
    ~ack_delta:250_000l ~src_port:client_side.Packet.Flow.src_port
    ~dst_port:server_port ~out_port:4;
  (match Router.Iface.setdata r.Router.iface splicer_fid cfgd with
  | Ok () -> ()
  | Error e -> failwith e);
  Format.printf "phase 2: spliced; subsequent packets are patched on the \
                 MicroEngines@.";

  (* Phase 3: bulk data flows through the splicer in the data plane. *)
  let pe_before =
    Sim.Stats.Counter.value (Router.Pentium.stats r.Router.pe).Router.Pentium.processed
  in
  let sample = seg 100 ~payload:"data" in
  for i = 100 to 149 do
    ignore (Router.inject r ~port:0 (seg i ~payload:"data"))
  done;
  ignore (Router.inject r ~port:0 sample);
  Router.run_for r ~us:2_000.;
  let st = Option.get (Router.Iface.getdata r.Router.iface splicer_fid) in
  let pe_after =
    Sim.Stats.Counter.value (Router.Pentium.stats r.Router.pe).Router.Pentium.processed
  in
  Format.printf
    "phase 3: %d packets spliced in the data plane; Pentium handled %d of \
     them@."
    (Forwarders.Tcp_splicer.spliced st)
    (pe_after - pe_before);
  Format.printf
    "sample packet after splice: seq=%ld ack=%ld ports=%d->%d checksum %s@."
    (Packet.Tcp.get_seq sample) (Packet.Tcp.get_ack sample)
    (Packet.Tcp.get_src_port sample)
    (Packet.Tcp.get_dst_port sample)
    (if Packet.Tcp.cksum_ok sample then "valid" else "INVALID");
  assert (pe_after = pe_before);
  assert (Packet.Tcp.get_dst_port sample = server_port);
  assert (Packet.Tcp.cksum_ok sample)
