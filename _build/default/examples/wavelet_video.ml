(* Smart packet dropping for layered video (paper section 4.4, after
   Dasen et al.): the data forwarder forwards low-frequency layers and
   drops high-frequency ones; the control forwarder watches the forwarded
   count, deduces the available rate, and moves the cutoff layer to match
   congestion.

   Here the flow crosses a congested port (all background traffic exits
   port 2 as well), the control forwarder lowers the cutoff until the
   video's share fits, and raises it again when congestion clears.

   Run with: dune exec examples/wavelet_video.exe *)

let addr = Packet.Ipv4.addr_of_string

let () =
  let r = Router.create () in
  for port = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" port))
      ~port
  done;
  let flow =
    {
      Packet.Flow.src_addr = addr "10.250.0.9";
      src_port = 9000;
      dst_addr = addr "10.2.0.50";
      dst_port = 9001;
    }
  in
  let fid =
    match
      Router.Iface.install r.Router.iface ~key:(Packet.Flow.Tuple flow)
        ~fwdr:Forwarders.Wavelet_dropper.forwarder ~where:Router.Iface.ME ()
    with
    | Ok fid -> fid
    | Error es -> failwith (String.concat "; " es)
  in
  (* Start permissive: all 8 layers pass.  The control side reads the
     current state first so updating the cutoff preserves the forwarded
     counter the data plane maintains. *)
  let set_cutoff c =
    let st =
      match Router.Iface.getdata r.Router.iface fid with
      | Some st -> st
      | None -> Bytes.make 8 '\000'
    in
    Forwarders.Wavelet_dropper.set_cutoff st c;
    match Router.Iface.setdata r.Router.iface fid st with
    | Ok () -> ()
    | Error e -> failwith e
  in
  set_cutoff 7;
  Router.start r;

  (* The control forwarder: compare the video's forwarded rate against the
     congested port's queue depth; deep queue -> drop a layer, empty queue
     -> restore one.  Crude AIMD, enough to show the split. *)
  let cutoff = ref 7 in
  let log = ref [] in
  Router.Pentium.spawn_control r.Router.pe r.Router.chip ~name:"video-rate"
    ~period_us:400. ~cycles:3000 (fun () ->
      let depth = Router.Squeue.length r.Router.out_queues.(2) in
      let old = !cutoff in
      if depth > 64 && !cutoff > 0 then decr cutoff
      else if depth < 8 && !cutoff < 7 then incr cutoff;
      if old <> !cutoff then begin
        set_cutoff !cutoff;
        log :=
          (Sim.Engine.seconds (Sim.Engine.time r.Router.engine) *. 1e3,
           !cutoff, depth)
          :: !log
      end;
      true);

  (* The video stream: 80 Kpps across 8 layers. *)
  ignore
    (Workload.Source.spawn_constant r.Router.engine ~name:"video" ~pps:80_000.
       ~gen:(Workload.Mix.layered_video ~flow ~layers:8 ())
       ~offer:(fun f -> Router.inject r ~port:0 f)
       ());
  (* Congestion: for the middle third of the run, a burst floods port 2. *)
  Sim.Engine.spawn r.Router.engine "burst" (fun () ->
      Sim.Engine.wait (Sim.Engine.of_seconds 4e-3);
      let gen = Workload.Mix.udp_fixed ~dst:(addr "10.2.0.200") () in
      let stop_at = Sim.Engine.of_seconds 8e-3 in
      let gap = Sim.Engine.of_seconds (1. /. 130_000.) in
      let rec blast i =
        if Sim.Engine.now () < stop_at then begin
          ignore (Router.inject r ~port:1 (gen i));
          Sim.Engine.wait gap;
          blast (i + 1)
        end
      in
      blast 0);

  Router.run_for r ~us:12_000.;
  let st = Option.get (Router.Iface.getdata r.Router.iface fid) in
  Format.printf "cutoff trajectory (ms, cutoff, queue depth):@.";
  List.iter
    (fun (t, c, d) -> Format.printf "  %6.2f  layer<=%d  depth=%d@." t c d)
    (List.rev !log);
  Format.printf
    "video packets forwarded: %d; final cutoff: layer <= %d (started at 7)@."
    (Forwarders.Wavelet_dropper.forwarded st)
    (Forwarders.Wavelet_dropper.cutoff st);
  assert (List.length !log > 0)
