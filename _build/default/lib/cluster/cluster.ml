type t = {
  engine : Sim.Engine.t;
  members : Router.t array;
  switch_latency_us : float;
  fabric_frames : Sim.Stats.Counter.t;
}

(* Locally-administered, distinct from the per-port scheme. *)
let uplink_mac m = 0x02000000C100 lor (m land 0xFF)

let member_of_uplink_mac mac =
  if mac land 0xFFFFFFFF00 = 0x02000000C100 land 0xFFFFFFFF00 then
    Some (mac land 0xFF)
  else None

let create ?(members = 4) ?(ports_per_member = 8) ?(switch_latency_us = 2.)
    ?(config = Router.default_config) () =
  if members < 2 then invalid_arg "Cluster.create: members < 2";
  let engine = Sim.Engine.create () in
  (* Two 1 Gbps uplinks per member (the evaluation board's pair): cross
     traffic is spread across them by destination subnet so each stays
     within a single output context's reach. *)
  let config =
    {
      config with
      Router.n_ports = ports_per_member;
      uplink_ports = 2;
      uplink_mbps = 1000.;
    }
  in
  let rs = Array.init members (fun _ -> Router.create ~config ~engine ()) in
  let uplink_local = ports_per_member in
  (* Routes: every member knows every global subnet; remote ones point at
     the owner's uplink MAC across the fabric. *)
  Array.iteri
    (fun m r ->
      for g = 0 to (members * ports_per_member) - 1 do
        let owner = g / ports_per_member in
        let prefix =
          Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" g)
        in
        if owner = m then Router.add_route r prefix ~port:(g mod ports_per_member)
        else
          Iproute.Table.add r.Router.routes prefix
            {
              Iproute.Table.out_port = uplink_local + (g mod 2);
              gateway_mac = uplink_mac owner;
            }
      done)
    rs;
  let fabric_frames = Sim.Stats.Counter.create "fabric.frames" in
  let t = { engine; members = rs; switch_latency_us; fabric_frames } in
  (* The learning switch: deliver by destination MAC after a small
     store-and-forward latency, onto the same-numbered uplink of the
     destination member. *)
  Array.iter
    (fun r ->
      List.iter
        (fun up ->
          Router.connect r ~port:up (fun f ->
              match member_of_uplink_mac (Packet.Ethernet.get_dst f) with
              | None -> () (* unknown fabric MAC: flooded nowhere, dropped *)
              | Some m' when m' >= members -> ()
              | Some m' ->
                  Sim.Stats.Counter.incr fabric_frames;
                  Sim.Engine.spawn engine "switch" (fun () ->
                      Sim.Engine.wait
                        (Sim.Engine.of_seconds (switch_latency_us *. 1e-6));
                      ignore (Router.inject rs.(m') ~port:up f))))
        [ uplink_local; uplink_local + 1 ])
    rs;
  Array.iter (fun r -> Router.start r) rs;
  t

let member_of_global_port t g =
  let ppm = t.members.(0).Router.config.Router.n_ports in
  (g / ppm, g mod ppm)

let inject t ~global_port f =
  let m, p = member_of_global_port t global_port in
  Router.inject t.members.(m) ~port:p f

let delivered t ~global_port =
  let m, p = member_of_global_port t global_port in
  Sim.Stats.Counter.value t.members.(m).Router.delivered.(p)

let delivered_total t =
  Array.fold_left
    (fun acc r ->
      let n = r.Router.config.Router.n_ports in
      let sum = ref 0 in
      for p = 0 to n - 1 do
        sum := !sum + Sim.Stats.Counter.value r.Router.delivered.(p)
      done;
      acc + !sum)
    0 t.members

let internal_pps t =
  let secs = Sim.Engine.seconds (Sim.Engine.time t.engine) in
  if secs <= 0. then 0.
  else float_of_int (Sim.Stats.Counter.value t.fabric_frames) /. secs

let vrp_budget_with_internal_link t ~line_rate_pps =
  let members = float_of_int (Array.length t.members) in
  (* One member's input contexts see its external share plus the fabric
     traffic addressed to it. *)
  let per_member = (line_rate_pps +. internal_pps t) /. members in
  Router.Capacity.vrp_budget Router.Capacity.default ~contexts:16
    ~line_rate_pps:per_member ~hashes:3

let run_for t ~us =
  let target =
    Int64.add (Sim.Engine.time t.engine) (Sim.Engine.of_seconds (us *. 1e-6))
  in
  Sim.Engine.run t.engine ~until:target
