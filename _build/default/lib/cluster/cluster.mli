(** The section 6 configuration: several Pentium/IXP pairs connected by a
    Gigabit Ethernet switch into one larger router.

    "We next plan to construct a router from four Pentium/IXP pairs
    connected by a Gigabit Ethernet switch.  The main difference ... is
    that we will need to budget RI capacity to service packets arriving on
    the 'internal' link ..., leaving fewer cycles for the VRP."

    Each member keeps its 8 external 100 Mbps ports and adds a 1 Gbps
    uplink into a learning switch.  Globally, external port [g] lives on
    member [g / ports_per_member].  A member routes locally-owned subnets
    out its own ports and everything else across the switch to the owner,
    whose uplink MAC the route's gateway field names — so the internal hop
    is ordinary IP forwarding plus a MAC-switched fabric, and a
    cross-member packet pays classification (and TTL) twice, exactly the
    structural cost the paper anticipates. *)

type t = {
  engine : Sim.Engine.t;
  members : Router.t array;
  switch_latency_us : float;
  fabric_frames : Sim.Stats.Counter.t;  (** frames crossing the switch *)
}

val create :
  ?members:int ->
  ?ports_per_member:int ->
  ?switch_latency_us:float ->
  ?config:Router.config ->
  unit ->
  t
(** [create ()] builds a 4-member cluster (8 external ports each), routes
    subnet 10.[g].0.0/16 to global external port [g], wires the uplinks
    through the switch, and starts every member.  [config] overrides the
    per-member router configuration (the uplink port is added to it). *)

val uplink_mac : int -> Packet.Ethernet.mac
(** The MAC identifying member [m]'s uplink on the fabric. *)

val member_of_global_port : t -> int -> int * int
(** [member_of_global_port t g] is [(member, local_port)]. *)

val inject : t -> global_port:int -> Packet.Frame.t -> bool
(** Offer a frame to a global external port. *)

val delivered : t -> global_port:int -> int
(** Frames transmitted out a global external port. *)

val delivered_total : t -> int
(** Across all external ports (uplinks excluded). *)

val internal_pps : t -> float
(** Fabric crossings per second so far. *)

val vrp_budget_with_internal_link : t -> line_rate_pps:float -> Router.Vrp.budget
(** The paper's section 6 point, quantified: the per-MP VRP budget once
    the input contexts must also service the internal link's share
    ([line_rate_pps] external aggregate plus the measured internal rate). *)

val run_for : t -> us:float -> unit
