lib/control/rip.ml: Bytes Char Hashtbl Int32 Iproute List Option Packet Router Sim
