lib/control/rip.mli: Iproute Packet Router Sim
