lib/core/router.mli: Admission Capacity Chip_ctx Classifier Cost_model Desc Fixed_infra Format Forwarder Iface Input_loop Iproute Ixp Output_loop Packet Pentium Psched Sim Squeue Strongarm Vrp Wfq
