lib/core/admission.ml: Float Forwarder Ixp List Printf Vrp
