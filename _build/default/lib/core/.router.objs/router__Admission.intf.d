lib/core/admission.mli: Forwarder Ixp Vrp
