lib/core/capacity.ml: Cost_model Float Ixp Vrp
