lib/core/capacity.mli: Cost_model Ixp Vrp
