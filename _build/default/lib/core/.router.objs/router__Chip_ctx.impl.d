lib/core/chip_ctx.ml: Ixp Sim
