lib/core/chip_ctx.mli: Ixp Sim
