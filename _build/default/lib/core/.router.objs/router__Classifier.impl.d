lib/core/classifier.ml: Bytes Chip_ctx Cost_model Desc Forwarder Hashtbl Int64 Iproute List Packet
