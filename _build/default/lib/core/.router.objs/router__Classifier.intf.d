lib/core/classifier.mli: Bytes Chip_ctx Cost_model Desc Forwarder Iproute Packet
