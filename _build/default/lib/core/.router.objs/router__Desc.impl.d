lib/core/desc.ml: Format Ixp
