lib/core/desc.mli: Format Ixp
