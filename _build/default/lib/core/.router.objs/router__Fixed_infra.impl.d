lib/core/fixed_infra.ml: Array Chip_ctx Cost_model Desc Float Format Input_loop Int64 Ixp List Output_loop Packet Printf Sim Squeue Vrp
