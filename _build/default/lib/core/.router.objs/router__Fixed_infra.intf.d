lib/core/fixed_infra.mli: Cost_model Format Ixp Vrp
