lib/core/forwarder.ml: Bytes Desc Format Ixp Packet Vrp
