lib/core/forwarder.mli: Bytes Desc Format Packet Vrp
