lib/core/iface.ml: Admission Array Bytes Classifier Desc Forwarder Ixp List Option Packet Printf Result
