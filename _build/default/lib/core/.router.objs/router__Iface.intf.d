lib/core/iface.mli: Admission Bytes Classifier Forwarder Ixp Packet
