lib/core/input_loop.ml: Array Buffer_pool Chip Chip_ctx Cost_model Desc Ixp Mac_port Packet Printf Sim Squeue
