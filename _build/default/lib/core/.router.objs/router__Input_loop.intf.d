lib/core/input_loop.mli: Chip_ctx Cost_model Desc Ixp Packet Sim Squeue
