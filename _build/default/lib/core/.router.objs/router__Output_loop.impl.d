lib/core/output_loop.ml: Array Chip Chip_ctx Cost_model Desc Ixp Packet Printf Sim Squeue
