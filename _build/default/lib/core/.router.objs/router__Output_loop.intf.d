lib/core/output_loop.mli: Cost_model Desc Ixp Packet Sim Squeue
