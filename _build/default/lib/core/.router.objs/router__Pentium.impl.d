lib/core/pentium.ml: Classifier Cost_model Desc Float Forwarder Hashtbl Int64 Ixp Psched Sim Strongarm
