lib/core/pentium.mli: Classifier Cost_model Desc Ixp Sim Strongarm
