lib/core/psched.ml: Float List Queue
