lib/core/psched.mli:
