lib/core/squeue.ml: Desc Queue Sim
