lib/core/squeue.mli: Desc Sim
