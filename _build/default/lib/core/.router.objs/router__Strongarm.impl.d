lib/core/strongarm.ml: Array Chip_ctx Classifier Cost_model Desc Forwarder Int64 Iproute Ixp Packet Printf Sim Squeue
