lib/core/strongarm.mli: Chip_ctx Classifier Cost_model Desc Iproute Ixp Packet Sim Squeue
