lib/core/vrp.ml: Chip_ctx Format Ixp List
