lib/core/vrp.mli: Chip_ctx Format Ixp
