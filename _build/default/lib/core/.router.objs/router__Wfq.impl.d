lib/core/wfq.ml: Array Float Int64 Sim Vrp
