lib/core/wfq.mli: Vrp
