type t = {
  budget : Vrp.budget;
  branch_delay_factor : float;
  pe_cycle_hz : float;
  pe_max_pps : float;
  pe_headroom : float;
}

let default (hw : Ixp.Config.t) =
  {
    budget = Vrp.prototype_budget;
    branch_delay_factor = 1.05;
    pe_cycle_hz = hw.pentium_mhz *. 1e6;
    pe_max_pps = 534_000.; (* Table 4 *)
    pe_headroom = 0.9;
  }

type me_load = {
  mutable serial_cost : Vrp.cost;
  mutable parallel_max_cycles : int;
  mutable state_in_use : int;
  mutable slots_in_use : int;
}

let empty_me_load () =
  {
    serial_cost = Vrp.zero_cost;
    parallel_max_cycles = 0;
    state_in_use = 0;
    slots_in_use = 0;
  }

let me_cycles_required t (f : Forwarder.t) =
  let c = Forwarder.cost f in
  int_of_float (Float.round (float_of_int c.Vrp.instr *. t.branch_delay_factor))

let admit_me t load (f : Forwarder.t) ~per_flow =
  let cost = Forwarder.cost f in
  let cycles = me_cycles_required t f in
  let cost = { cost with Vrp.instr = cycles } in
  (* The budget a new forwarder must fit inside what remains after the
     already-admitted serial chain — and, for per-flow forwarders, only
     the most expensive one counts (they run in parallel). *)
  let projected_serial =
    if per_flow then load.serial_cost else Vrp.add_cost load.serial_cost cost
  in
  let projected_parallel =
    if per_flow then max load.parallel_max_cycles cycles
    else load.parallel_max_cycles
  in
  let combined =
    Vrp.add_cost projected_serial
      { Vrp.zero_cost with Vrp.instr = projected_parallel }
  in
  let combined =
    if per_flow then
      (* A per-flow forwarder's memory traffic also applies when it is the
         one that matches; account the candidate's (conservative: the max
         across per-flow forwarders would be tighter). *)
      Vrp.add_cost combined { cost with Vrp.instr = 0 }
    else combined
  in
  let state = load.state_in_use + f.Forwarder.state_bytes in
  let slots = load.slots_in_use + Forwarder.istore_slots f in
  match Vrp.check t.budget combined ~state_bytes:state ~slots with
  | Error es -> Error es
  | Ok () ->
      load.serial_cost <- projected_serial;
      load.parallel_max_cycles <- projected_parallel;
      load.state_in_use <- state;
      load.slots_in_use <- slots;
      Ok ()

let sub_cost a b =
  {
    Vrp.instr = a.Vrp.instr - b.Vrp.instr;
    sram_read_bytes = a.Vrp.sram_read_bytes - b.Vrp.sram_read_bytes;
    sram_write_bytes = a.Vrp.sram_write_bytes - b.Vrp.sram_write_bytes;
    scratch_read_bytes = a.Vrp.scratch_read_bytes - b.Vrp.scratch_read_bytes;
    scratch_write_bytes = a.Vrp.scratch_write_bytes - b.Vrp.scratch_write_bytes;
    dram_read_bytes = a.Vrp.dram_read_bytes - b.Vrp.dram_read_bytes;
    dram_write_bytes = a.Vrp.dram_write_bytes - b.Vrp.dram_write_bytes;
    hashes = a.Vrp.hashes - b.Vrp.hashes;
  }

let release_me t load (f : Forwarder.t) ~per_flow =
  let cost = Forwarder.cost f in
  let cycles = me_cycles_required t f in
  if not per_flow then
    load.serial_cost <- sub_cost load.serial_cost { cost with Vrp.instr = cycles };
  load.state_in_use <- load.state_in_use - f.Forwarder.state_bytes;
  load.slots_in_use <- load.slots_in_use - Forwarder.istore_slots f

type pe_load = { mutable cycle_rate : float; mutable pkt_rate : float }

let empty_pe_load () = { cycle_rate = 0.; pkt_rate = 0. }

let admit_pe t load ~expected_pps ~cycles_per_pkt =
  let add_cycles = expected_pps *. float_of_int cycles_per_pkt in
  let errs = ref [] in
  if load.cycle_rate +. add_cycles > t.pe_cycle_hz *. t.pe_headroom then
    errs :=
      Printf.sprintf "Pentium cycles: %.0f + %.0f exceeds %.0f"
        load.cycle_rate add_cycles
        (t.pe_cycle_hz *. t.pe_headroom)
      :: !errs;
  if load.pkt_rate +. expected_pps > t.pe_max_pps then
    errs :=
      Printf.sprintf "Pentium packet rate: %.0f + %.0f exceeds %.0f"
        load.pkt_rate expected_pps t.pe_max_pps
      :: !errs;
  match !errs with
  | [] ->
      load.cycle_rate <- load.cycle_rate +. add_cycles;
      load.pkt_rate <- load.pkt_rate +. expected_pps;
      Ok ()
  | es -> Error (List.rev es)

let release_pe load ~expected_pps ~cycles_per_pkt =
  load.cycle_rate <- load.cycle_rate -. (expected_pps *. float_of_int cycles_per_pkt);
  load.pkt_rate <- load.pkt_rate -. expected_pps
