(** Admission control (paper section 4.6).

    For MicroEngine forwarders: inspect the code, count cycles (inflated by
    a branch-delay factor over raw instruction counts, as the paper notes)
    and memory accesses, and verify the VRP budget and ISTORE space.
    Straight-line verification is trivial because VRP code cannot contain a
    backward jump.

    General forwarders run serially — their costs {e sum} against the
    budget; per-flow forwarders run logically in parallel — only the most
    expensive one counts.

    For Pentium forwarders: the requester declares an expected packet rate
    and per-packet cycles; the forwarder is admitted only if the processor
    has the cycle rate to spare and the total packet rate stays below the
    PCI path's maximum. *)

type t = {
  budget : Vrp.budget;
  branch_delay_factor : float;
      (** multiplies instruction counts into cycle requirements *)
  pe_cycle_hz : float;  (** Pentium cycles per second available to flows *)
  pe_max_pps : float;  (** the PCI path's packet-rate ceiling (Table 4) *)
  pe_headroom : float;  (** fraction of the Pentium reservable (0..1) *)
}

val default : Ixp.Config.t -> t
(** Budget {!Vrp.prototype_budget}, 5% branch-delay inflation, Pentium
    limits from Table 4. *)

type me_load = {
  mutable serial_cost : Vrp.cost;  (** sum of admitted general forwarders *)
  mutable parallel_max_cycles : int;
      (** most expensive admitted per-flow forwarder *)
  mutable state_in_use : int;
  mutable slots_in_use : int;
}

val empty_me_load : unit -> me_load

val admit_me :
  t -> me_load -> Forwarder.t -> per_flow:bool -> (unit, string list) result
(** Check a data forwarder against the remaining VRP budget; on success the
    load record is updated to reflect the reservation. *)

val release_me : t -> me_load -> Forwarder.t -> per_flow:bool -> unit
(** Return a forwarder's reservation (inverse of {!admit_me}; per-flow
    maxima are recomputed conservatively by the caller via {!recompute}). *)

type pe_load = { mutable cycle_rate : float; mutable pkt_rate : float }

val empty_pe_load : unit -> pe_load

val admit_pe :
  t ->
  pe_load ->
  expected_pps:float ->
  cycles_per_pkt:int ->
  (unit, string list) result
(** The Pentium-side test: cycle rate and packet rate must both fit. *)

val release_pe : pe_load -> expected_pps:float -> cycles_per_pkt:int -> unit

val me_cycles_required : t -> Forwarder.t -> int
(** Instruction count inflated by the branch-delay factor. *)
