type t = {
  hw : Ixp.Config.t;
  cm : Cost_model.t;
  me_queue_cap : float;
  mem_op_overhead : int;
}

let default =
  {
    hw = Ixp.Config.default;
    cm = Cost_model.default;
    me_queue_cap = 4.0;
    mem_op_overhead = 18;
  }

let ops bytes unit_bytes =
  if bytes <= 0 then 0 else (bytes + unit_bytes - 1) / unit_bytes

(* Uncontended memory latency of the baseline input+output path for one
   64-byte MP, per Table 2's operation counts. *)
let base_memory_cycles t =
  let hw = t.hw in
  let dram = hw.Ixp.Config.dram and sram = hw.Ixp.Config.sram in
  let scratch = hw.Ixp.Config.scratch in
  (* Input: DRAM (0/2), SRAM (2/1), Scratch (2/4). *)
  let input =
    (2 * dram.Ixp.Config.write_cycles)
    + (2 * sram.Ixp.Config.read_cycles)
    + (1 * sram.Ixp.Config.write_cycles)
    + (2 * scratch.Ixp.Config.read_cycles)
    + (4 * scratch.Ixp.Config.write_cycles)
  in
  (* Output: DRAM (2/0), SRAM (0/1), Scratch (2/2). *)
  let output =
    (2 * dram.Ixp.Config.read_cycles)
    + (1 * sram.Ixp.Config.write_cycles)
    + (2 * scratch.Ixp.Config.read_cycles)
    + (2 * scratch.Ixp.Config.write_cycles)
  in
  input + output

let packet_delay_cycles t =
  Cost_model.input_reg_total t.cm + Cost_model.output_reg_total t.cm
  + base_memory_cycles t

let me_hz t = t.hw.Ixp.Config.me_mhz *. 1e6

let packets_in_parallel t ~at_mpps =
  float_of_int (packet_delay_cycles t) /. (me_hz t /. (at_mpps *. 1e6))

let optimistic_upper_bound_mpps t =
  let per_me =
    me_hz t
    /. float_of_int
         (Cost_model.input_reg_total t.cm + Cost_model.output_reg_total t.cm)
  in
  per_me *. float_of_int t.hw.Ixp.Config.n_microengines /. 1e6

(* Input-stage memory latency per MP (Table 2 input rows), plus any VRP
   extra with the per-op overhead added. *)
let input_mem_cycles t (extra : Vrp.cost) =
  let hw = t.hw in
  let dram = hw.Ixp.Config.dram and sram = hw.Ixp.Config.sram in
  let scratch = hw.Ixp.Config.scratch in
  let base =
    (2 * dram.Ixp.Config.write_cycles)
    + (2 * sram.Ixp.Config.read_cycles)
    + (1 * sram.Ixp.Config.write_cycles)
    + (2 * scratch.Ixp.Config.read_cycles)
    + (4 * scratch.Ixp.Config.write_cycles)
  in
  let unit = sram.Ixp.Config.unit_bytes in
  let per op cycles = op * (cycles + t.mem_op_overhead) in
  base
  + per (ops extra.Vrp.sram_read_bytes unit) sram.Ixp.Config.read_cycles
  + per (ops extra.Vrp.sram_write_bytes unit) sram.Ixp.Config.write_cycles
  + per
      (ops extra.Vrp.scratch_read_bytes scratch.Ixp.Config.unit_bytes)
      scratch.Ixp.Config.read_cycles
  + per
      (ops extra.Vrp.scratch_write_bytes scratch.Ixp.Config.unit_bytes)
      scratch.Ixp.Config.write_cycles
  + per
      (ops extra.Vrp.dram_read_bytes dram.Ixp.Config.unit_bytes)
      dram.Ixp.Config.read_cycles
  + per
      (ops extra.Vrp.dram_write_bytes dram.Ixp.Config.unit_bytes)
      dram.Ixp.Config.write_cycles
  + (extra.Vrp.hashes * t.hw.Ixp.Config.hash_cycles)

let input_rate_mpps t ~contexts ~extra =
  let cm = t.cm in
  let serial =
    cm.Cost_model.input_serial_instr + cm.Cost_model.input_serial_wait
  in
  let reg = Cost_model.input_reg_total cm + extra.Vrp.instr in
  let mem = input_mem_cycles t extra in
  let per_me = min 4 contexts in
  (* Fixed point: per-context period T satisfies
       T = max(contexts * serial, serial + reg * q(T) + mem)
     where q inflates issue time by engine sharing. *)
  let rec iterate tk n =
    if n = 0 then tk
    else begin
      let util = float_of_int (per_me * reg) /. tk in
      let q = if util >= 1. then t.me_queue_cap else Float.min t.me_queue_cap (1. /. (1. -. util)) in
      let w = float_of_int serial +. (float_of_int reg *. q) +. float_of_int mem in
      let t' = Float.max (float_of_int (contexts * serial)) w in
      iterate ((tk +. t') /. 2.) (n - 1)
    end
  in
  let tfin = iterate 1000. 64 in
  float_of_int contexts /. tfin *. me_hz t /. 1e6

let vrp_budget t ~contexts ~line_rate_pps ~hashes =
  let block n =
    { Vrp.zero_cost with Vrp.instr = 10 * n; sram_read_bytes = 4 * n }
  in
  let fits n =
    input_rate_mpps t ~contexts ~extra:(block n) *. 1e6 >= line_rate_pps
  in
  let rec search lo hi =
    (* invariant: fits lo, not (fits (hi+1)) unbounded above *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi + 1) / 2 in
      if fits mid then search mid hi else search lo (mid - 1)
    end
  in
  let n = if fits 0 then search 0 512 else 0 in
  {
    Vrp.b_cycles = 10 * n;
    b_sram_transfers = n;
    b_hashes = hashes;
    b_state_bytes = 4 * n;
    b_istore_slots =
      t.hw.Ixp.Config.istore_slots - t.hw.Ixp.Config.istore_ri_slots;
  }
