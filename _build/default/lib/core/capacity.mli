(** Closed-form capacity model: the paper's back-of-envelope arithmetic
    (section 3.5.1) plus an analytic input-stage throughput predictor used
    to derive VRP budgets from line rates (section 4.3).

    The simulator is the ground truth; this model is the sanity check the
    paper itself performs ("our actual rate of 3.47 Mpps is 80% of this
    optimistic upper bound") and the fast path for budget queries that
    would otherwise need a simulation per point. *)

type t = {
  hw : Ixp.Config.t;
  cm : Cost_model.t;
  me_queue_cap : float;
      (** cap on the issue-queueing inflation factor (a context competes
          with its three siblings for the engine) *)
  mem_op_overhead : int;
      (** per-memory-op context-swap/command overhead the latency tables
          do not include *)
}

val default : t

val packet_delay_cycles : t -> int
(** Register instructions plus uncontended memory latency for one 64-byte
    packet through input+output — the paper's "710 cycles" (3550 ns). *)

val packets_in_parallel : t -> at_mpps:float -> float
(** The paper's "the system is able to forward a little over 12 packets in
    parallel" at 3.47 Mpps. *)

val optimistic_upper_bound_mpps : t -> float
(** All memory free, all six engines forwarding: 200 MHz / 280 cycles x 6 =
    4.29 Mpps. *)

val input_rate_mpps : t -> contexts:int -> extra:Vrp.cost -> float
(** Predicted input-stage rate with [contexts] contexts and [extra] VRP
    work per packet (fixed-point on the token/engine/memory cycle). *)

val vrp_budget :
  t -> contexts:int -> line_rate_pps:float -> hashes:int -> Vrp.budget
(** Invert {!input_rate_mpps} over combo blocks (10 instructions + one
    4-byte SRAM read, the paper's Figure 9 unit): the largest per-MP
    budget that still sustains [line_rate_pps].  State bytes = 4 x SRAM
    transfers (what load/store instructions can move); ISTORE slots are
    whatever the hardware leaves the VRP. *)
