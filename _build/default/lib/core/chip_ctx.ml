type host = Me of Ixp.Microengine.t | Cpu of Sim.Engine.Clock.clock

type t = { chip : Ixp.Chip.t; host : host; ctx_id : int }

let make chip ~ctx_id =
  { chip; host = Me (Ixp.Chip.context_me chip ctx_id); ctx_id }

let make_cpu chip clock = { chip; host = Cpu clock; ctx_id = -1 }

let exec t n =
  match t.host with
  | Me me -> Ixp.Microengine.exec me n
  | Cpu clock -> Sim.Engine.Clock.wait_cycles clock n

let wait_cycles t n =
  match t.host with
  | Me _ -> Sim.Engine.Clock.wait_cycles t.chip.Ixp.Chip.me_clock n
  | Cpu clock -> Sim.Engine.Clock.wait_cycles clock n

let sram_read t ~bytes = Ixp.Mem.read t.chip.Ixp.Chip.sram ~bytes
let sram_write t ~bytes = Ixp.Mem.write t.chip.Ixp.Chip.sram ~bytes
let scratch_read t ~bytes = Ixp.Mem.read t.chip.Ixp.Chip.scratch ~bytes
let scratch_write t ~bytes = Ixp.Mem.write t.chip.Ixp.Chip.scratch ~bytes
let dram_read t ~bytes = Ixp.Mem.read t.chip.Ixp.Chip.dram ~bytes
let dram_write t ~bytes = Ixp.Mem.write t.chip.Ixp.Chip.dram ~bytes

let hash t v = Ixp.Hash_unit.hash t.chip.Ixp.Chip.hash v
