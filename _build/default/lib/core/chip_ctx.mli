(** A processor's view of the chip: the handle threaded through the
    input/output loops, the VRP interpreter, and the StrongARM's queue
    operations.

    For a MicroEngine context, register instructions occupy the hosting
    engine's issue pipeline (shared with its three sibling contexts).  For
    the StrongARM — which has its own core but shares the SRAM and DRAM
    channels with the MicroEngines (the interference that motivates
    section 4.1's "the StrongARM must run within the same resource budget")
    — instructions simply consume StrongARM cycles while memory operations
    contend on the same channel servers. *)

type host = Me of Ixp.Microengine.t | Cpu of Sim.Engine.Clock.clock

type t = { chip : Ixp.Chip.t; host : host; ctx_id : int }

val make : Ixp.Chip.t -> ctx_id:int -> t
(** [make chip ~ctx_id] binds global MicroEngine context [ctx_id] to its
    engine (contexts are numbered ME-major). *)

val make_cpu : Ixp.Chip.t -> Sim.Engine.Clock.clock -> t
(** [make_cpu chip clock] is the view of a conventional processor (the
    StrongARM) sharing the chip's memories. *)

val exec : t -> int -> unit
(** Run register instructions on this context's processor. *)

val wait_cycles : t -> int -> unit
(** Stall without occupying the processor's issue pipeline (e.g. a CSR
    round trip). *)

val sram_read : t -> bytes:int -> unit
val sram_write : t -> bytes:int -> unit
val scratch_read : t -> bytes:int -> unit
val scratch_write : t -> bytes:int -> unit
val dram_read : t -> bytes:int -> unit
val dram_write : t -> bytes:int -> unit

val hash : t -> int64 -> int
(** One hardware hash unit operation. *)
