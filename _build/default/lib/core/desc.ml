type level = Microengine | Strongarm | Pentium

type t = {
  buf : Ixp.Buffer_pool.handle;
  len : int;
  in_port : int;
  mutable out_port : int;
  mutable fid : int;
  arrival : int64;
}

let make ~buf ~len ~in_port ~out_port ?(fid = -1) ~arrival () =
  { buf; len; in_port; out_port; fid; arrival }

let pp_level ppf l =
  Format.pp_print_string ppf
    (match l with
    | Microengine -> "ME"
    | Strongarm -> "SA"
    | Pentium -> "PE")
