(** Packet descriptors: the 32-bit SRAM queue entries of section 3.4,
    carrying a DRAM buffer reference plus the results of classification
    ("the packet processing results and some identification information
    for the packet are then enqueued in the destination queue"). *)

type level = Microengine | Strongarm | Pentium

type t = {
  buf : Ixp.Buffer_pool.handle;
  len : int;  (** frame length in bytes *)
  in_port : int;
  mutable out_port : int;  (** classification's port choice *)
  mutable fid : int;  (** installed-forwarder reference for SA/PE dispatch;
                          -1 when none (plain forwarding) *)
  arrival : int64;  (** for latency accounting *)
}

val make :
  buf:Ixp.Buffer_pool.handle ->
  len:int ->
  in_port:int ->
  out_port:int ->
  ?fid:int ->
  arrival:int64 ->
  unit ->
  t

val pp_level : Format.formatter -> level -> unit
