type where = ME | SA | PE

type binding = {
  fid : int;
  fwdr : Forwarder.t;
  where : where;
  istore_handles : (Ixp.Istore.t * int) list;
  expected_pps : float;
}

type t = {
  adm : Admission.t;
  chip : Ixp.Chip.t;
  classifier : Classifier.t;
  istores : Ixp.Istore.t list;
  me_load : Admission.me_load;
  pe_load : Admission.pe_load;
  mutable sa_boot : Forwarder.t list;
  mutable bindings : binding list;
  mutable next_fid : int;
  mutable pe_add : (fid:int -> Classifier.entry -> unit) option;
  mutable pe_remove : (fid:int -> unit) option;
}

let create ?admission ~chip ~classifier ~input_mes () =
  let adm =
    match admission with
    | Some a -> a
    | None -> Admission.default chip.Ixp.Chip.cfg
  in
  {
    adm;
    chip;
    classifier;
    istores = List.map (fun i -> chip.Ixp.Chip.istores.(i)) input_mes;
    me_load = Admission.empty_me_load ();
    pe_load = Admission.empty_pe_load ();
    sa_boot = [];
    bindings = [];
    next_fid = 1;
    pe_add = None;
    pe_remove = None;
  }

let register_sa_boot_forwarder t f = t.sa_boot <- f :: t.sa_boot

let set_pe_hooks t ~add ~remove =
  t.pe_add <- Some add;
  t.pe_remove <- Some remove

let level_of_where = function
  | ME -> Desc.Microengine
  | SA -> Desc.Strongarm
  | PE -> Desc.Pentium

let install_istore t (f : Forwarder.t) ~per_flow =
  let slots = Forwarder.istore_slots f in
  let region = if per_flow then Ixp.Istore.Per_flow else Ixp.Istore.General in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | st :: rest -> (
        match Ixp.Istore.install st region ~name:f.Forwarder.name ~slots with
        | Ok h -> go ((st, h) :: acc) rest
        | Error e ->
            (* Roll back the stores already written. *)
            List.iter (fun (st', h') -> Ixp.Istore.remove st' h') acc;
            Error [ e ])
  in
  go [] t.istores

let install t ~key ~fwdr ~where ?(expected_pps = 0.) () =
  let per_flow = key <> Packet.Flow.All in
  let admit =
    match where with
    | ME -> (
        match Admission.admit_me t.adm t.me_load fwdr ~per_flow with
        | Error es -> Error es
        | Ok () -> (
            match install_istore t fwdr ~per_flow with
            | Error es ->
                Admission.release_me t.adm t.me_load fwdr ~per_flow;
                Error es
            | Ok handles -> Ok handles))
    | SA ->
        if
          List.exists
            (fun b -> b.Forwarder.name = fwdr.Forwarder.name)
            t.sa_boot
        then Ok []
        else
          Error
            [
              Printf.sprintf
                "StrongARM forwarders are bound at boot; %S is not in the \
                 boot set"
                fwdr.Forwarder.name;
            ]
    | PE ->
        if expected_pps <= 0. then
          Error [ "PE install requires expected_pps > 0" ]
        else
          Result.map
            (fun () -> [])
            (Admission.admit_pe t.adm t.pe_load ~expected_pps
               ~cycles_per_pkt:fwdr.Forwarder.host_cycles)
  in
  match admit with
  | Error es -> Error es
  | Ok istore_handles ->
      let fid = t.next_fid in
      t.next_fid <- fid + 1;
      let entry =
        {
          Classifier.fid;
          key;
          where = level_of_where where;
          fwdr;
          state = Bytes.make fwdr.Forwarder.state_bytes '\000';
          matches = 0;
        }
      in
      Classifier.add t.classifier entry;
      t.bindings <-
        { fid; fwdr; where; istore_handles; expected_pps } :: t.bindings;
      (match (where, t.pe_add) with
      | PE, Some add -> add ~fid entry
      | _ -> ());
      Ok fid

let remove t fid =
  match List.find_opt (fun b -> b.fid = fid) t.bindings with
  | None -> Error (Printf.sprintf "unknown fid %d" fid)
  | Some b ->
      t.bindings <- List.filter (fun x -> x.fid <> fid) t.bindings;
      let entry = Classifier.remove t.classifier fid in
      let per_flow =
        match entry with
        | Some e -> e.Classifier.key <> Packet.Flow.All
        | None -> false
      in
      (match b.where with
      | ME ->
          List.iter (fun (st, h) -> Ixp.Istore.remove st h) b.istore_handles;
          Admission.release_me t.adm t.me_load b.fwdr ~per_flow
      | SA -> ()
      | PE ->
          Admission.release_pe t.pe_load ~expected_pps:b.expected_pps
            ~cycles_per_pkt:b.fwdr.Forwarder.host_cycles;
          Option.iter (fun f -> f ~fid) t.pe_remove);
      Ok ()

let getdata t fid =
  Option.map
    (fun e -> Bytes.copy e.Classifier.state)
    (Classifier.find_fid t.classifier fid)

let setdata t fid data =
  match Classifier.find_fid t.classifier fid with
  | None -> Error (Printf.sprintf "unknown fid %d" fid)
  | Some e ->
      if Bytes.length data <> Bytes.length e.Classifier.state then
        Error "setdata: size mismatch"
      else begin
        Bytes.blit data 0 e.Classifier.state 0 (Bytes.length data);
        Ok ()
      end

let find t fid = Classifier.find_fid t.classifier fid

let install_cost_cycles t (f : Forwarder.t) =
  match t.istores with
  | [] -> 0
  | st :: _ -> Ixp.Istore.write_cost_cycles st ~slots:(Forwarder.istore_slots f)

let installed t =
  List.map (fun b -> (b.fid, b.fwdr.Forwarder.name, b.where)) t.bindings

let me_load t = t.me_load
let pe_load t = t.pe_load

let sram_state_in_use t =
  List.fold_left
    (fun acc b -> acc + b.fwdr.Forwarder.state_bytes)
    0 t.bindings
