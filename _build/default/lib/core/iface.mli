(** The control interface (paper section 4.5):

    {v
      fid = install(key, fwdr, size, where)
      remove(fid)
      data = getdata(fid)
      setdata(fid, data)
    v}

    The IXP exports this interface to the Pentium; the operations are
    implemented on the StrongARM, which maintains the table of installed
    forwarders (SRAM state address, function reference, key) and
    manipulates the MicroEngine ISTOREs.  Admission control (section 4.6)
    gates every install. *)

type where = ME | SA | PE

type t

val create :
  ?admission:Admission.t ->
  chip:Ixp.Chip.t ->
  classifier:Classifier.t ->
  input_mes:int list ->
  unit ->
  t
(** [create ~chip ~classifier ~input_mes ()] manages installs for the given
    router.  [input_mes] are the MicroEngines whose ISTOREs hold VRP
    extensions (code is replicated into each, as the paper loads "the
    ISTORE of all the input contexts"). *)

val register_sa_boot_forwarder : t -> Forwarder.t -> unit
(** The StrongARM "boots with a fixed set of forwarders, and the install
    function simply binds one of them to a flow" (section 4.5 footnote).
    Register the boot set before installing with [where = SA]. *)

val set_pe_hooks :
  t -> add:(fid:int -> Classifier.entry -> unit) -> remove:(fid:int -> unit) -> unit
(** Wire the Pentium's proportional-share client management. *)

val install :
  t ->
  key:Packet.Flow.t ->
  fwdr:Forwarder.t ->
  where:where ->
  ?expected_pps:float ->
  unit ->
  (int, string list) result
(** Admission-check and bind a data forwarder; returns its [fid].
    [expected_pps] is required for [PE] installs (the Pentium admission
    test multiplies it by the forwarder's cycle cost). *)

val remove : t -> int -> (unit, string) result
(** Unbind, free ISTORE/SRAM reservations, drop scheduler clients. *)

val getdata : t -> int -> Bytes.t option
(** Snapshot the forwarder's flow state (a copy — the control side sees a
    coherent read, as the real implementation reads SRAM over PCI). *)

val setdata : t -> int -> Bytes.t -> (unit, string) result
(** Overwrite the forwarder's flow state (length must match). *)

val find : t -> int -> Classifier.entry option
(** [fid] dispatch for the StrongARM/Pentium loops. *)

val install_cost_cycles : t -> Forwarder.t -> int
(** MicroEngine-disabled cycles an [ME] install spends rewriting ISTOREs
    (two memory accesses per instruction, section 4.5). *)

val installed : t -> (int * string * where) list

val me_load : t -> Admission.me_load
val pe_load : t -> Admission.pe_load
val sram_state_in_use : t -> int
