type cls = {
  rate_pps : float;
  burst : float;
  mutable tokens : float;
  mutable last : int64;
  mutable high : int;
  mutable low : int;
}

type t = { classes : cls array }

let create ~link_pps ~shares ?(burst = 16.) () =
  if Array.length shares = 0 then invalid_arg "Wfq.create: no classes";
  if Array.exists (fun s -> s <= 0.) shares then
    invalid_arg "Wfq.create: non-positive share";
  let total = Array.fold_left ( +. ) 0. shares in
  {
    classes =
      Array.map
        (fun s ->
          {
            rate_pps = link_pps *. s /. total;
            burst;
            tokens = burst;
            last = 0L;
            high = 0;
            low = 0;
          })
        shares;
  }

let classes t = Array.length t.classes

let pick t ~class_id ~now =
  let c = t.classes.(class_id) in
  let dt = Sim.Engine.seconds (Int64.sub now c.last) in
  c.last <- now;
  c.tokens <- Float.min c.burst (c.tokens +. (dt *. c.rate_pps));
  if c.tokens >= 1. then begin
    c.tokens <- c.tokens -. 1.;
    c.high <- c.high + 1;
    `High
  end
  else begin
    c.low <- c.low + 1;
    `Low
  end

(* Token arithmetic in fixed point: load the bucket word, a few ALU ops,
   store it back. *)
let vrp_code = [ Vrp.Sram_read 4; Vrp.Instr 12; Vrp.Sram_write 4 ]

let in_profile t ~class_id = t.classes.(class_id).high
let demoted t ~class_id = t.classes.(class_id).low
