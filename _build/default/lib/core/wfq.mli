(** Input-side approximation of weighted fair queueing (paper section
    3.4.1).

    Output contexts drain their queues in fixed priority order — anything
    smarter would cost memory references the output loop cannot afford.
    The paper's suggestion: "the larger computing capacity available in
    input-side protocol processing could be used to select the appropriate
    priority queue and thereby approximate more complex schemes, such as
    weighted fair queuing."

    This module is that selector.  Each traffic class holds a share of the
    output link enforced by a token bucket replenished in simulated time:
    packets within their class's profile go to the high-priority queue,
    packets beyond it are demoted.  Under congestion the output's strict
    priority drain then serves classes in proportion to their shares —
    WFQ's property, approximated with two queues and O(1) register work
    per packet (a handful of instructions and one 4-byte SRAM state word,
    well inside the VRP budget). *)

type t

val create :
  link_pps:float -> shares:float array -> ?burst:float -> unit -> t
(** [create ~link_pps ~shares ()] serves [Array.length shares] classes on
    a link that drains [link_pps] packets per second.  Shares are
    normalized internally.  [burst] is the token-bucket depth in packets
    (default 16). *)

val classes : t -> int

val pick : t -> class_id:int -> now:int64 -> [ `High | `Low ]
(** [pick t ~class_id ~now] charges one packet against the class's bucket
    at simulated time [now] and says which priority queue it belongs in. *)

val vrp_code : Vrp.code
(** The declared per-packet cost of running the selector in the VRP:
    what admission control charges for it. *)

val in_profile : t -> class_id:int -> int
(** Packets the class sent at high priority so far. *)

val demoted : t -> class_id:int -> int
