lib/forwarders/ack_monitor.ml: Fstate Packet Router
