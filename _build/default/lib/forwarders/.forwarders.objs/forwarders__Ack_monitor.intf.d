lib/forwarders/ack_monitor.mli: Bytes Router
