lib/forwarders/fstate.ml: Bytes Char Int32
