lib/forwarders/fstate.mli: Bytes
