lib/forwarders/ip.ml: Bytes Fstate Packet Router
