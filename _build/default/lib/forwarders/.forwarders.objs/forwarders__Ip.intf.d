lib/forwarders/ip.mli: Router
