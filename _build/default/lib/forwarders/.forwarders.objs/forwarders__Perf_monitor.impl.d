lib/forwarders/perf_monitor.ml: Fstate Packet Router
