lib/forwarders/perf_monitor.mli: Bytes Router
