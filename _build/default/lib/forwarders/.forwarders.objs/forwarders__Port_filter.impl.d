lib/forwarders/port_filter.ml: Bytes Fstate Packet Router
