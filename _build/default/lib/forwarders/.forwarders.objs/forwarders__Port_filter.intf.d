lib/forwarders/port_filter.mli: Bytes Router
