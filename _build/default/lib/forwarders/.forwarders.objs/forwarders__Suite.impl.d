lib/forwarders/suite.ml: Ack_monitor Float Ip List Perf_monitor Port_filter Router Syn_monitor Tcp_splicer Wavelet_dropper
