lib/forwarders/suite.mli: Router
