lib/forwarders/syn_monitor.ml: Fstate Packet Router
