lib/forwarders/syn_monitor.mli: Bytes Router
