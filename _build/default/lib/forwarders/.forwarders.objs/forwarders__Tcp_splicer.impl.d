lib/forwarders/tcp_splicer.ml: Fstate Int32 Packet Router
