lib/forwarders/tcp_splicer.mli: Bytes Router
