lib/forwarders/wavelet_dropper.ml: Fstate Packet Router
