lib/forwarders/wavelet_dropper.mli: Bytes Packet Router
