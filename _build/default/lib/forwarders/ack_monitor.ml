let action ~state frame ~in_port:_ =
  (if
     Packet.Ipv4.get_proto frame = Packet.Ipv4.proto_tcp
     && Packet.Tcp.has_flag frame Packet.Tcp.flag_ack
   then begin
     let ack = Packet.Tcp.get_ack frame in
     if Fstate.get_i32 state 0 = ack then Fstate.add_u32 state 4 1
     else Fstate.set_i32 state 0 ack;
     Fstate.add_u32 state 8 1
   end);
  Router.Forwarder.Continue

let forwarder =
  Router.Forwarder.make ~name:"ack-monitor"
    ~code:
      [ Router.Vrp.Instr 15; Router.Vrp.Sram_read 8; Router.Vrp.Sram_write 4 ]
    ~state_bytes:12 action

let last_ack state = Fstate.get_i32 state 0
let dup_acks state = Fstate.get_u32 state 4
let total_acks state = Fstate.get_u32 state 8
