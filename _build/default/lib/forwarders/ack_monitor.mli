(** ACK Monitor (paper Table 5: 12 bytes SRAM, 15 register ops).

    "Watches a TCP connection for repeat ACKs in an effort to determine the
    connection's behavior" (after Paxson [17]).  Per-flow.

    State layout: [0..3] last ACK seen, [4..7] duplicate-ACK count,
    [8..11] total ACKs. *)

val forwarder : Router.Forwarder.t

val last_ack : Bytes.t -> int32
val dup_acks : Bytes.t -> int
val total_acks : Bytes.t -> int
