let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let add_u32 b off n = set_u32 b off ((get_u32 b off + n) land 0xFFFFFFFF)

let get_u16 b off =
  Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let get_i32 b off = Int32.of_int (get_u32 b off)
let set_i32 b off v = set_u32 b off (Int32.to_int v land 0xFFFFFFFF)
