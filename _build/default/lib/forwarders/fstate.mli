(** Little-endian accessors for forwarder flow state.

    Flow state is the SRAM block shared between a data forwarder and its
    control forwarder through [getdata]/[setdata]; both sides use these
    helpers so the layout stays consistent. *)

val get_u32 : Bytes.t -> int -> int
(** [get_u32 state off] reads an unsigned 32-bit counter. *)

val set_u32 : Bytes.t -> int -> int -> unit
val add_u32 : Bytes.t -> int -> int -> unit
(** [add_u32 state off n] increments in place (wrapping at 2^32). *)

val get_u16 : Bytes.t -> int -> int
val set_u16 : Bytes.t -> int -> int -> unit

val get_i32 : Bytes.t -> int -> int32
val set_i32 : Bytes.t -> int -> int32 -> unit
