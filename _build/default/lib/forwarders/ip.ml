let minimal_action ~state:_ frame ~in_port:_ =
  if Packet.Ipv4.has_options frame then
    Router.Forwarder.Divert Router.Desc.Strongarm
  else if Packet.Ipv4.get_ttl frame <= 1 then
    Router.Forwarder.Divert Router.Desc.Strongarm
  else begin
    ignore (Packet.Ipv4.decrement_ttl frame);
    Router.Forwarder.Forward_routed
  end

let minimal =
  Router.Forwarder.make ~name:"ip"
    ~code:[ Router.Vrp.Instr 32; Router.Vrp.Sram_read 24 ]
    ~state_bytes:0 minimal_action

let full_action ~state:_ frame ~in_port:_ =
  (* Options are validated and consumed (we honour no source routes); TTL
     handling is the same as the fast path but without the divert. *)
  if Packet.Ipv4.get_ttl frame <= 1 then Router.Forwarder.Drop
  else begin
    ignore (Packet.Ipv4.decrement_ttl frame);
    Router.Forwarder.Forward_routed
  end

let full =
  Router.Forwarder.make ~name:"ip-full"
    ~code:[ Router.Vrp.Instr 400; Router.Vrp.Sram_read 24 ]
    ~state_bytes:0 ~host_cycles:660 full_action

let proxy_action ~state frame ~in_port:_ =
  ignore frame;
  (if Bytes.length state >= 4 then Fstate.add_u32 state 0 1);
  Router.Forwarder.Forward_routed

let proxy =
  Router.Forwarder.make ~name:"tcp-proxy"
    ~code:[ Router.Vrp.Instr 400 ]
    ~state_bytes:4 ~host_cycles:800 proxy_action
