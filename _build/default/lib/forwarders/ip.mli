(** The IP forwarders (paper sections 2.1, 4.4, Table 5).

    The router boots with two: {!minimal}, the fast-path forwarder (Table
    5's last row: 24 bytes SRAM, 32 register ops — decrement TTL, update
    the checksum incrementally, rewrite the Ethernet header), and {!full},
    the complete protocol including options, which at ~660 cycles per
    packet "clearly needs to run on the StrongARM or Pentium". *)

val minimal : Router.Forwarder.t
(** ME-level fast path.  Packets with options or expiring TTL divert to
    the StrongARM.  (The assembled {!Router} charges this forwarder's cost
    in its built-in tail; install [minimal] explicitly only in custom
    pipelines, or its work is duplicated.) *)

val full : Router.Forwarder.t
(** StrongARM-level slow path (660 host cycles): consumes known option
    blocks, decrements TTL, and routes.  Register in the StrongARM boot
    set. *)

val proxy : Router.Forwarder.t
(** A Pentium-class TCP proxy stand-in (800 host cycles, section 4.4) used
    by the admission and robustness experiments. *)
