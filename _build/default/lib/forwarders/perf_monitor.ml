let action ~state frame ~in_port:_ =
  Fstate.add_u32 state 0 1;
  let proto = Packet.Ipv4.get_proto frame in
  if proto = Packet.Ipv4.proto_tcp then Fstate.add_u32 state 4 1
  else if proto = Packet.Ipv4.proto_udp then Fstate.add_u32 state 8 1;
  Fstate.add_u32 state 12 (Packet.Frame.len frame);
  Router.Forwarder.Continue

let forwarder =
  Router.Forwarder.make ~name:"perf-monitor"
    ~code:
      [ Router.Vrp.Instr 12; Router.Vrp.Sram_read 8; Router.Vrp.Sram_write 8 ]
    ~state_bytes:16 action

type snapshot = { packets : int; tcp : int; udp : int; bytes : int }

let read state =
  {
    packets = Fstate.get_u32 state 0;
    tcp = Fstate.get_u32 state 4;
    udp = Fstate.get_u32 state 8;
    bytes = Fstate.get_u32 state 12;
  }
