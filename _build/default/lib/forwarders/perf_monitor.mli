(** Performance Monitor (paper section 4.4, after Ranum et al. [20]).

    "The data forwarder increments one or more counters based on some
    property of the packet; the control forwarder periodically aggregates
    these counters and sends summaries to a global coordinator."

    General forwarder.  State layout: [0..3] total packets, [4..7] TCP,
    [8..11] UDP, [12..15] total bytes (mod 2^32). *)

val forwarder : Router.Forwarder.t

type snapshot = { packets : int; tcp : int; udp : int; bytes : int }

val read : Bytes.t -> snapshot
(** Decode a [getdata] buffer. *)
