let dst_port frame =
  let proto = Packet.Ipv4.get_proto frame in
  if proto = Packet.Ipv4.proto_tcp then Some (Packet.Tcp.get_dst_port frame)
  else if proto = Packet.Ipv4.proto_udp then
    Some (Packet.Udp.get_dst_port frame)
  else None

let action ~state frame ~in_port:_ =
  match dst_port frame with
  | None -> Router.Forwarder.Continue
  | Some port ->
      let rec blocked slot =
        if slot >= 5 then false
        else begin
          let lo = Fstate.get_u16 state (4 * slot) in
          let hi = Fstate.get_u16 state ((4 * slot) + 2) in
          ((lo lor hi) <> 0 && port >= lo && port <= hi) || blocked (slot + 1)
        end
      in
      if blocked 0 then Router.Forwarder.Drop else Router.Forwarder.Continue

let forwarder =
  Router.Forwarder.make ~name:"port-filter"
    ~code:[ Router.Vrp.Instr 26; Router.Vrp.Sram_read 20 ]
    ~state_bytes:20 action

let set_range state ~slot ~lo ~hi =
  if slot < 0 || slot > 4 then invalid_arg "Port_filter.set_range: slot";
  if lo < 0 || hi > 0xFFFF || lo > hi then
    invalid_arg "Port_filter.set_range: range";
  Fstate.set_u16 state (4 * slot) lo;
  Fstate.set_u16 state ((4 * slot) + 2) hi

let clear state = Bytes.fill state 0 (Bytes.length state) '\000'
