(** Port Filter (paper Table 5: 20 bytes SRAM, 26 register ops).

    "A simple filter that drops packets addressed to a set of up to five
    port ranges."  General forwarder; the control plane writes the ranges
    with [setdata].

    State layout: five [lo, hi] pairs of 16-bit ports ([lo = hi = 0] means
    an unused slot).  A packet whose TCP/UDP destination port falls in any
    range is dropped. *)

val forwarder : Router.Forwarder.t

val set_range : Bytes.t -> slot:int -> lo:int -> hi:int -> unit
(** Fill range [slot] (0..4) in a state buffer destined for [setdata]. *)

val clear : Bytes.t -> unit
