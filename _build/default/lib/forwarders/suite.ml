let table5 =
  [
    ("TCP Splicer", Tcp_splicer.forwarder);
    ("Wavelet Dropper", Wavelet_dropper.forwarder);
    ("ACK Monitor", Ack_monitor.forwarder);
    ("SYN Monitor", Syn_monitor.forwarder);
    ("Port Filter", Port_filter.forwarder);
    ("IP", Ip.minimal);
  ]

let general_suite =
  [ Syn_monitor.forwarder; Perf_monitor.forwarder; Port_filter.forwarder ]

let per_flow_suite =
  [ Tcp_splicer.forwarder; Wavelet_dropper.forwarder; Ack_monitor.forwarder ]

let full_budget_suite ?(branch_factor = 1.05) ~budget () =
  let base = general_suite in
  let used =
    List.fold_left
      (fun acc f -> Router.Vrp.add_cost acc (Router.Forwarder.cost f))
      Router.Vrp.zero_cost base
  in
  (* Admission control inflates instruction counts by the branch-delay
     factor, so the padding must be sized in post-inflation cycles. *)
  let inflate n = int_of_float (Float.round (float_of_int n *. branch_factor)) in
  let used_cycles =
    List.fold_left
      (fun acc f -> acc + inflate (Router.Forwarder.cost f).Router.Vrp.instr)
      0 base
  in
  let spare_cycles = max 0 (budget.Router.Vrp.b_cycles - used_cycles) in
  let spare_instr = int_of_float (float_of_int spare_cycles /. branch_factor) in
  let used_xfers =
    (used.Router.Vrp.sram_read_bytes + 3) / 4
    + ((used.Router.Vrp.sram_write_bytes + 3) / 4)
  in
  let spare_xfers = max 0 (budget.Router.Vrp.b_sram_transfers - used_xfers) in
  let padding =
    Router.Forwarder.make ~name:"budget-padding"
      ~code:
        [
          Router.Vrp.Instr spare_instr; Router.Vrp.Sram_read (4 * spare_xfers);
        ]
      ~state_bytes:0
      (fun ~state:_ _ ~in_port:_ -> Router.Forwarder.Continue)
  in
  base @ [ padding ]
