(** The Table 5 catalogue and the synthetic suites the robustness
    experiments run (paper sections 4.4, 4.7). *)

val table5 : (string * Router.Forwarder.t) list
(** Every example data forwarder, in the paper's Table 5 order. *)

val general_suite : Router.Forwarder.t list
(** The general ([All]-key) forwarders that can run together on the
    MicroEngines: SYN monitor, performance monitor, port filter. *)

val per_flow_suite : Router.Forwarder.t list
(** The per-flow examples: TCP splicer, wavelet dropper, ACK monitor. *)

val full_budget_suite :
  ?branch_factor:float -> budget:Router.Vrp.budget -> unit ->
  Router.Forwarder.t list
(** A synthetic general-forwarder suite sized to "utilize the full VRP
    budget" (section 4.7's first robustness experiment): the Table 5
    general forwarders plus a padding forwarder consuming whatever cycles
    and SRAM transfers remain after admission's branch-delay inflation
    ([branch_factor], default 1.05). *)
