let action ~state frame ~in_port:_ =
  (if
     Packet.Ipv4.get_proto frame = Packet.Ipv4.proto_tcp
     && Packet.Tcp.has_flag frame Packet.Tcp.flag_syn
   then Fstate.add_u32 state 0 1);
  Router.Forwarder.Continue

let forwarder =
  Router.Forwarder.make ~name:"syn-monitor"
    ~code:[ Router.Vrp.Instr 5; Router.Vrp.Sram_write 4 ]
    ~state_bytes:4 action

let syn_count state = Fstate.get_u32 state 0
let reset state = Fstate.set_u32 state 0 0
