(** SYN Monitor (paper Table 5: 4 bytes SRAM, 5 register ops).

    "Counts the rate of SYN packets in an effort to detect a SYN attack."
    The data forwarder increments one counter; the control forwarder
    periodically reads it via [getdata], computes a rate, and may install
    filters in response.

    State layout: [0..3] SYN count. *)

val forwarder : Router.Forwarder.t
(** A general ([All]-key) data forwarder for the MicroEngines. *)

val syn_count : Bytes.t -> int
(** Read the counter from a [getdata] snapshot. *)

val reset : Bytes.t -> unit
(** Zero a buffer for [setdata] (the control side's periodic reset). *)
