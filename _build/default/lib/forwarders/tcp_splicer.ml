let action ~state frame ~in_port:_ =
  if Packet.Ipv4.get_proto frame <> Packet.Ipv4.proto_tcp then
    Router.Forwarder.Continue
  else begin
    let seq_delta = Fstate.get_i32 state 0 in
    let ack_delta = Fstate.get_i32 state 4 in
    let old_seq = Packet.Tcp.get_seq frame in
    let old_ack = Packet.Tcp.get_ack frame in
    let new_seq = Int32.add old_seq seq_delta in
    let new_ack = Int32.sub old_ack ack_delta in
    Packet.Tcp.set_seq frame new_seq;
    Packet.Tcp.update_cksum_u32 frame ~old_v:old_seq ~new_v:new_seq;
    Packet.Tcp.set_ack frame new_ack;
    Packet.Tcp.update_cksum_u32 frame ~old_v:old_ack ~new_v:new_ack;
    (* Patch the port pair onto the spliced connection's identifiers. *)
    let old_sp = Packet.Tcp.get_src_port frame in
    let old_dp = Packet.Tcp.get_dst_port frame in
    let new_sp = Fstate.get_u16 state 8 in
    let new_dp = Fstate.get_u16 state 10 in
    if new_sp lor new_dp <> 0 then begin
      Packet.Tcp.set_src_port frame new_sp;
      Packet.Tcp.set_dst_port frame new_dp;
      Packet.Tcp.set_cksum frame
        (Packet.Checksum.update16
           ~old_cksum:
             (Packet.Checksum.update16 ~old_cksum:(Packet.Tcp.get_cksum frame)
                ~old_word:old_sp ~new_word:new_sp)
           ~old_word:old_dp ~new_word:new_dp)
    end;
    Fstate.add_u32 state 16 1;
    Router.Forwarder.Forward (Fstate.get_u32 state 12)
  end

let forwarder =
  Router.Forwarder.make ~name:"tcp-splicer"
    ~code:
      [ Router.Vrp.Instr 45; Router.Vrp.Sram_read 16; Router.Vrp.Sram_write 8 ]
    ~state_bytes:24 action

let configure state ~seq_delta ~ack_delta ~src_port ~dst_port ~out_port =
  Fstate.set_i32 state 0 seq_delta;
  Fstate.set_i32 state 4 ack_delta;
  Fstate.set_u16 state 8 src_port;
  Fstate.set_u16 state 10 dst_port;
  Fstate.set_u32 state 12 out_port

let spliced state = Fstate.get_u32 state 16
