(** TCP Splicer (paper Table 5: 24 bytes SRAM, 45 register ops).

    TCP splicing (section 4.4, after Spatscheck et al. [21]): once a proxy
    on the Pentium has authenticated a connection, the two TCP connections
    are spliced so that subsequent packets are patched in the data plane
    instead of traversing two full TCP state machines.  The data forwarder
    rewrites sequence/acknowledgement numbers by the deltas between the two
    connections and fixes the TCP checksum incrementally.

    Per-flow.  State layout: [0..3] sequence delta, [4..7] ack delta,
    [8..9] rewritten source port, [10..11] rewritten destination port,
    [12..15] output port, [16..19] packets spliced, [20..23] reserved. *)

val forwarder : Router.Forwarder.t

val configure :
  Bytes.t ->
  seq_delta:int32 ->
  ack_delta:int32 ->
  src_port:int ->
  dst_port:int ->
  out_port:int ->
  unit
(** Fill a state buffer for [setdata] when the proxy splices. *)

val spliced : Bytes.t -> int
(** Packets patched so far. *)
