let layer_of_frame frame =
  if Packet.Ipv4.get_proto frame <> Packet.Ipv4.proto_udp then 0
  else begin
    let off = Packet.Udp.payload_offset frame in
    if off < Packet.Frame.len frame then Packet.Frame.get_u8 frame off else 0
  end

let action ~state frame ~in_port:_ =
  if layer_of_frame frame > Fstate.get_u32 state 0 then Router.Forwarder.Drop
  else begin
    Fstate.add_u32 state 4 1;
    Router.Forwarder.Continue
  end

let forwarder =
  Router.Forwarder.make ~name:"wavelet-dropper"
    ~code:
      [ Router.Vrp.Instr 28; Router.Vrp.Sram_read 4; Router.Vrp.Sram_write 4 ]
    ~state_bytes:8 action

let set_cutoff state v = Fstate.set_u32 state 0 v
let cutoff state = Fstate.get_u32 state 0
let forwarded state = Fstate.get_u32 state 4
