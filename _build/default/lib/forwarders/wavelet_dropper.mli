(** Wavelet Dropper (paper Table 5: 8 bytes SRAM, 28 register ops).

    Smart dropping for layered (wavelet-encoded) video (section 4.4,
    after Dasen et al. [3]): "packets carrying low-frequency layers are
    forwarded and packets carrying high-frequency layers are dropped."
    The data forwarder counts successes; the control forwarder watches the
    count, deduces the available rate, and moves the cutoff layer.

    Per-flow.  The packet's layer number is the first UDP payload byte.
    State layout: [0..3] cutoff layer (drop if layer > cutoff),
    [4..7] packets forwarded. *)

val forwarder : Router.Forwarder.t

val layer_of_frame : Packet.Frame.t -> int
(** The encoding's layer tag (first payload byte; 0 when absent). *)

val set_cutoff : Bytes.t -> int -> unit
val cutoff : Bytes.t -> int
val forwarded : Bytes.t -> int
