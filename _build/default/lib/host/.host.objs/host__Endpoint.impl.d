lib/host/endpoint.ml: Buffer Bytes Hashtbl Int32 Int64 List Packet Sim String
