lib/host/endpoint.mli: Packet Sim
