let mss = 512
let window_segments = 4
let iss = 1000 (* deterministic initial sequence number *)

type state = Syn_sent | Syn_rcvd | Established

type conn = {
  local_addr : Packet.Ipv4.addr;
  local_port : int;
  peer_addr : Packet.Ipv4.addr;
  peer_port : int;
  mutable state : state;
  mutable snd_una : int; (* oldest unacknowledged sequence number *)
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
  mutable send_buf : Buffer.t; (* bytes numbered from iss+1 *)
  recv_buf : Buffer.t;
  ooo : (int, string) Hashtbl.t; (* out-of-order segments by seq *)
  mutable retx : int;
  mutable last_progress : int64; (* retransmission timer base *)
  send_frame : Packet.Frame.t -> bool;
}

type key = int * Packet.Ipv4.addr * int (* local port, peer addr, peer port *)

type t = {
  engine : Sim.Engine.t;
  addr : Packet.Ipv4.addr;
  send : Packet.Frame.t -> bool;
  conns : (key, conn) Hashtbl.t;
  listeners : (int, conn list ref) Hashtbl.t;
}

let addr t = t.addr

let seg conn ?(flags = Packet.Tcp.flag_ack) ?(payload = "") () =
  let frame_len = max 64 (54 + String.length payload) in
  Packet.Build.tcp ~frame_len ~src:conn.local_addr ~dst:conn.peer_addr
    ~src_port:conn.local_port ~dst_port:conn.peer_port
    ~seq:(Int32.of_int (conn.snd_nxt land 0x7FFFFFFF))
    ~ack:(Int32.of_int (conn.rcv_nxt land 0x7FFFFFFF))
    ~flags ~payload ()

let seg_at conn ~seq ~payload =
  let frame_len = max 64 (54 + String.length payload) in
  Packet.Build.tcp ~frame_len ~src:conn.local_addr ~dst:conn.peer_addr
    ~src_port:conn.local_port ~dst_port:conn.peer_port
    ~seq:(Int32.of_int (seq land 0x7FFFFFFF))
    ~ack:(Int32.of_int (conn.rcv_nxt land 0x7FFFFFFF))
    ~flags:Packet.Tcp.flag_ack ~payload ()

let send_now conn f = ignore (conn.send_frame f)

(* Transmit the window: unsent bytes plus, on timeout, everything
   outstanding again (go-back-N). *)
let pump_conn t conn =
  if conn.state = Established then begin
    let now = Sim.Engine.time t.engine in
    let timeout = Sim.Engine.of_seconds 5e-3 in
    let outstanding = conn.snd_nxt - conn.snd_una in
    (if
       outstanding > 0
       && Int64.sub now conn.last_progress > timeout
     then begin
       (* Retransmit from the oldest unacknowledged byte. *)
       conn.snd_nxt <- conn.snd_una;
       conn.retx <- conn.retx + 1;
       conn.last_progress <- now
     end);
    let total = iss + 1 + Buffer.length conn.send_buf in
    let limit = min total (conn.snd_una + (window_segments * mss)) in
    while conn.snd_nxt < limit do
      let seq = conn.snd_nxt in
      let n = min mss (limit - seq) in
      let payload = Buffer.sub conn.send_buf (seq - iss - 1) n in
      send_now conn (seg_at conn ~seq ~payload);
      conn.snd_nxt <- seq + n
    done
  end

let pump t = Hashtbl.iter (fun _ c -> pump_conn t c) t.conns

let create engine ~addr ~send () =
  let t =
    {
      engine;
      addr;
      send;
      conns = Hashtbl.create 16;
      listeners = Hashtbl.create 4;
    }
  in
  Sim.Engine.spawn engine "host-pump" (fun () ->
      let rec tick () =
        Sim.Engine.wait (Sim.Engine.of_seconds 150e-6);
        pump t;
        tick ()
      in
      tick ());
  t

let mk_conn t ~local_port ~peer_addr ~peer_port ~state =
  {
    local_addr = t.addr;
    local_port;
    peer_addr;
    peer_port;
    state;
    snd_una = iss + 1;
    snd_nxt = iss + 1;
    rcv_nxt = 0;
    send_buf = Buffer.create 256;
    recv_buf = Buffer.create 256;
    ooo = Hashtbl.create 8;
    retx = 0;
    last_progress = Sim.Engine.time t.engine;
    send_frame = t.send;
  }

let listen t ~port =
  if not (Hashtbl.mem t.listeners port) then
    Hashtbl.replace t.listeners port (ref [])

let connect t ~dst ~dst_port ~src_port =
  let conn =
    mk_conn t ~local_port:src_port ~peer_addr:dst ~peer_port:dst_port
      ~state:Syn_sent
  in
  Hashtbl.replace t.conns (src_port, dst, dst_port) conn;
  (* SYN consumes sequence number iss. *)
  let syn =
    Packet.Build.tcp ~src:t.addr ~dst ~src_port ~dst_port
      ~seq:(Int32.of_int iss) ~flags:Packet.Tcp.flag_syn ()
  in
  ignore (t.send syn);
  conn

let accepted t ~port =
  match Hashtbl.find_opt t.listeners port with
  | Some l -> List.rev !l
  | None -> []

let established c = c.state = Established

let send c data =
  Buffer.add_string c.send_buf data

let received c = Buffer.contents c.recv_buf
let all_acked c = c.snd_una = iss + 1 + Buffer.length c.send_buf
let local_port c = c.local_port
let peer c = (c.peer_addr, c.peer_port)
let retransmissions c = c.retx

let payload_of frame =
  let tcp_base = Packet.Ipv4.payload_offset frame in
  let data_off = tcp_base + 20 in
  let seg_len =
    Packet.Ipv4.get_total_len frame - Packet.Ipv4.header_len frame - 20
  in
  if seg_len <= 0 || data_off + seg_len > Packet.Frame.len frame then ""
  else Bytes.sub_string frame.Packet.Frame.data data_off seg_len

(* Fold an out-of-order stash into the in-order stream. *)
let drain_ooo conn =
  let progress = ref true in
  while !progress do
    progress := false;
    match Hashtbl.find_opt conn.ooo conn.rcv_nxt with
    | Some payload ->
        Hashtbl.remove conn.ooo conn.rcv_nxt;
        Buffer.add_string conn.recv_buf payload;
        conn.rcv_nxt <- conn.rcv_nxt + String.length payload;
        progress := true
    | None -> ()
  done

let handle_established t conn frame =
  let seq = Int32.to_int (Packet.Tcp.get_seq frame) in
  let ack = Int32.to_int (Packet.Tcp.get_ack frame) in
  let payload = payload_of frame in
  (* Acknowledgement progress. *)
  (if
     Packet.Tcp.has_flag frame Packet.Tcp.flag_ack
     && ack > conn.snd_una
     && ack <= conn.snd_nxt + 1
   then begin
     conn.snd_una <- ack;
     conn.last_progress <- Sim.Engine.time t.engine
   end);
  (* Data. *)
  if String.length payload > 0 then begin
    (if seq = conn.rcv_nxt then begin
       Buffer.add_string conn.recv_buf payload;
       conn.rcv_nxt <- conn.rcv_nxt + String.length payload;
       drain_ooo conn
     end
     else if seq > conn.rcv_nxt then Hashtbl.replace conn.ooo seq payload);
    (* Cumulative ACK, data-less. *)
    send_now conn (seg conn ())
  end

let deliver t frame =
  if
    Packet.Frame.len frame >= Packet.Ipv4.offset + Packet.Ipv4.min_header_len
    && Packet.Ipv4.get_dst frame = t.addr
    && Packet.Ipv4.get_proto frame = Packet.Ipv4.proto_tcp
  then begin
    let src_addr = Packet.Ipv4.get_src frame in
    let src_port = Packet.Tcp.get_src_port frame in
    let dst_port = Packet.Tcp.get_dst_port frame in
    let key = (dst_port, src_addr, src_port) in
    match Hashtbl.find_opt t.conns key with
    | Some conn -> begin
        match conn.state with
        | Syn_sent
          when Packet.Tcp.has_flag frame Packet.Tcp.flag_syn
               && Packet.Tcp.has_flag frame Packet.Tcp.flag_ack ->
            conn.rcv_nxt <- Int32.to_int (Packet.Tcp.get_seq frame) + 1;
            conn.snd_una <- Int32.to_int (Packet.Tcp.get_ack frame);
            conn.state <- Established;
            send_now conn (seg conn ())
        | Syn_rcvd when Packet.Tcp.has_flag frame Packet.Tcp.flag_ack ->
            conn.state <- Established;
            handle_established t conn frame
        | Established -> handle_established t conn frame
        | Syn_sent | Syn_rcvd -> ()
      end
    | None ->
        (* Passive open. *)
        if
          Packet.Tcp.has_flag frame Packet.Tcp.flag_syn
          && not (Packet.Tcp.has_flag frame Packet.Tcp.flag_ack)
        then begin
          match Hashtbl.find_opt t.listeners dst_port with
          | None -> ()
          | Some acc ->
              let conn =
                mk_conn t ~local_port:dst_port ~peer_addr:src_addr
                  ~peer_port:src_port ~state:Syn_rcvd
              in
              conn.rcv_nxt <- Int32.to_int (Packet.Tcp.get_seq frame) + 1;
              Hashtbl.replace t.conns key conn;
              acc := conn :: !acc;
              (* SYN-ACK consumes iss. *)
              let synack =
                Packet.Build.tcp ~src:t.addr ~dst:src_addr ~src_port:dst_port
                  ~dst_port:src_port ~seq:(Int32.of_int iss)
                  ~ack:(Int32.of_int conn.rcv_nxt)
                  ~flags:(Packet.Tcp.flag_syn lor Packet.Tcp.flag_ack)
                  ()
              in
              send_now conn synack
        end
  end
