(** End systems: minimal but real TCP endpoints attached to router ports.

    The paper's heavyweight forwarders (TCP proxies, splicing, ACK
    monitoring) presume real TCP flows.  This module provides them: a host
    owns an address, transmits frames into a router port and receives the
    frames the router delivers there.  Its TCP is deliberately small —
    three-way handshake, cumulative ACKs, a fixed window, go-back-N
    retransmission on a single timer, in-order reassembly with an
    out-of-order buffer — but it is an honest state machine, so splicing a
    connection mid-stream (rewriting sequence numbers in the data plane)
    is verified by a real receiver reassembling the right bytes. *)

type t
(** A host: one address, one attachment point. *)

type conn
(** One TCP connection endpoint. *)

val create :
  Sim.Engine.t ->
  addr:Packet.Ipv4.addr ->
  send:(Packet.Frame.t -> bool) ->
  unit ->
  t
(** [create engine ~addr ~send ()] attaches a host whose outbound frames
    go through [send] (typically [Router.inject r ~port:p]).  Wire the
    reverse direction with {!deliver} from the port's sink. *)

val deliver : t -> Packet.Frame.t -> unit
(** Hand the host a frame the network delivered (ignores frames not
    addressed to it). *)

val addr : t -> Packet.Ipv4.addr

val listen : t -> port:int -> unit
(** Accept connections to [port]. *)

val connect : t -> dst:Packet.Ipv4.addr -> dst_port:int -> src_port:int -> conn
(** Start an active open (SYN goes out on the next tick).  The returned
    endpoint becomes {!established} when the handshake completes. *)

val accepted : t -> port:int -> conn list
(** Connections accepted on a listening port so far. *)

val established : conn -> bool

val send : conn -> string -> unit
(** Queue bytes for transmission (segmented to the MSS, retransmitted
    until acknowledged). *)

val received : conn -> string
(** The in-order byte stream received so far. *)

val all_acked : conn -> bool
(** Every byte queued by {!send} has been cumulatively acknowledged. *)

val local_port : conn -> int
val peer : conn -> Packet.Ipv4.addr * int

val retransmissions : conn -> int
(** Segments re-sent by the timer (loss-recovery witness). *)

val mss : int
(** Maximum segment payload (512 bytes). *)
