lib/iproute/btrie.ml: Int32 Prefix
