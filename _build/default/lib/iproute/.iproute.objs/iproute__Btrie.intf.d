lib/iproute/btrie.mli: Packet Prefix
