lib/iproute/cpe.ml: Array Hashtbl Int32 List Prefix
