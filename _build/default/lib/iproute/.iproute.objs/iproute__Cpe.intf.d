lib/iproute/cpe.mli: Packet Prefix
