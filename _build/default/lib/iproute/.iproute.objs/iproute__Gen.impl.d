lib/iproute/gen.ml: Array Hashtbl Int32 List Prefix Sim
