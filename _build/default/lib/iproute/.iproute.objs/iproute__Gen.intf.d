lib/iproute/gen.mli: Packet Prefix Sim
