lib/iproute/patricia.ml: Int32 Prefix
