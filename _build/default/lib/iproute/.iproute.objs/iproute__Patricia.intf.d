lib/iproute/patricia.mli: Packet Prefix
