lib/iproute/prefix.ml: Format Int32 List Packet Stdlib String
