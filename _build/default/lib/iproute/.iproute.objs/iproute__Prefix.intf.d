lib/iproute/prefix.mli: Format Packet
