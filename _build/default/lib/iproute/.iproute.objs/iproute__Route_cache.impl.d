lib/iproute/route_cache.ml: Array Int32 Packet
