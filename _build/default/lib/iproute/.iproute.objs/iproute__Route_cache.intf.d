lib/iproute/route_cache.mli: Packet
