lib/iproute/table.ml: Btrie Cpe Format List Option Packet Patricia Prefix Route_cache
