lib/iproute/table.mli: Format Packet Prefix
