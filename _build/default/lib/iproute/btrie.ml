type 'a t = Leaf | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf

let is_empty = function Leaf -> true | Node _ -> false

let node value zero one =
  match (value, zero, one) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; zero; one }

let rec add_at t ~addr ~len ~depth v =
  match t with
  | Leaf ->
      if depth = len then Node { value = Some v; zero = Leaf; one = Leaf }
      else if Prefix.bit addr depth = 0 then
        Node { value = None; zero = add_at Leaf ~addr ~len ~depth:(depth + 1) v; one = Leaf }
      else Node { value = None; zero = Leaf; one = add_at Leaf ~addr ~len ~depth:(depth + 1) v }
  | Node n ->
      if depth = len then Node { n with value = Some v }
      else if Prefix.bit addr depth = 0 then
        Node { n with zero = add_at n.zero ~addr ~len ~depth:(depth + 1) v }
      else Node { n with one = add_at n.one ~addr ~len ~depth:(depth + 1) v }

let add t p v = add_at t ~addr:(Prefix.addr p) ~len:(Prefix.length p) ~depth:0 v

let rec remove_at t ~addr ~len ~depth =
  match t with
  | Leaf -> Leaf
  | Node n ->
      if depth = len then node None n.zero n.one
      else if Prefix.bit addr depth = 0 then
        node n.value (remove_at n.zero ~addr ~len ~depth:(depth + 1)) n.one
      else node n.value n.zero (remove_at n.one ~addr ~len ~depth:(depth + 1))

let remove t p = remove_at t ~addr:(Prefix.addr p) ~len:(Prefix.length p) ~depth:0

let find t p =
  let addr = Prefix.addr p and len = Prefix.length p in
  let rec go t depth =
    match t with
    | Leaf -> None
    | Node n ->
        if depth = len then n.value
        else if Prefix.bit addr depth = 0 then go n.zero (depth + 1)
        else go n.one (depth + 1)
  in
  go t 0

let lookup t a =
  let rec go t depth best =
    match t with
    | Leaf -> best
    | Node n ->
        let best =
          match n.value with
          | Some v -> Some (Prefix.make a depth, v)
          | None -> best
        in
        if depth = 32 then best
        else if Prefix.bit a depth = 0 then go n.zero (depth + 1) best
        else go n.one (depth + 1) best
  in
  go t 0 None

let bindings t =
  (* Reconstruct each prefix from the path bits. *)
  let rec go t depth bits acc =
    match t with
    | Leaf -> acc
    | Node n ->
        let acc =
          match n.value with
          | Some v ->
              let addr = Int32.shift_left bits (32 - max depth 1) in
              let addr = if depth = 0 then 0l else addr in
              (Prefix.make addr depth, v) :: acc
          | None -> acc
        in
        let acc = go n.zero (depth + 1) (Int32.shift_left bits 1) acc in
        go n.one (depth + 1) (Int32.logor (Int32.shift_left bits 1) 1l) acc
  in
  go t 0 0l []

let rec size = function
  | Leaf -> 0
  | Node n ->
      (match n.value with Some _ -> 1 | None -> 0) + size n.zero + size n.one

let rec node_count = function
  | Leaf -> 0
  | Node n -> 1 + node_count n.zero + node_count n.one
