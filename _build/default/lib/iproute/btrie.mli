(** Unibit binary trie: the reference longest-prefix-match structure.

    One bit per level, so a lookup inspects up to 32 nodes.  Slow but
    obviously correct; {!Cpe} and the qcheck equivalence properties are
    validated against it. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : 'a t -> Prefix.t -> 'a -> 'a t
(** [add t p v] binds [p] to [v], replacing any previous binding. *)

val remove : 'a t -> Prefix.t -> 'a t
(** [remove t p] drops the exact prefix [p] (no-op if absent). *)

val find : 'a t -> Prefix.t -> 'a option
(** Exact-prefix lookup. *)

val lookup : 'a t -> Packet.Ipv4.addr -> (Prefix.t * 'a) option
(** [lookup t a] is the longest prefix in [t] matching [a]. *)

val bindings : 'a t -> (Prefix.t * 'a) list
(** All bindings, longest-prefix-last order unspecified. *)

val size : 'a t -> int
(** Number of stored prefixes. *)

val node_count : 'a t -> int
(** Number of trie nodes (memory-cost comparison against {!Cpe}). *)
