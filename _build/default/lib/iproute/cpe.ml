type 'a slot = {
  mutable owner : (int * 'a) option; (* (prefix length, value) *)
  mutable child : 'a node option;
}

and 'a node = { level : int; base : int; stride : int; slots : 'a slot array }

type 'a t = {
  strides : int array;
  mutable root : 'a node;
  mutable stored : (Prefix.t * 'a) list;
}

let u32 a = Int32.to_int a land 0xFFFFFFFF

let fresh_node ~strides ~level ~base =
  let stride = strides.(level) in
  {
    level;
    base;
    stride;
    slots = Array.init (1 lsl stride) (fun _ -> { owner = None; child = None });
  }

(* Count unibit-trie nodes at each depth 0..32: nodes.(m) is the number of
   distinct m-bit leading patterns among prefixes of length >= m. *)
let depth_nodes lens_addrs =
  let tbl = Array.init 33 (fun _ -> Hashtbl.create 16) in
  List.iter
    (fun (abits, len) ->
      for m = 0 to len do
        let pat = if m = 0 then 0 else abits lsr (32 - m) in
        Hashtbl.replace tbl.(m) pat ()
      done)
    lens_addrs;
  Array.map (fun h -> max 1 (Hashtbl.length h)) tbl

let rec optimal_strides ~max_levels lens =
  if max_levels < 1 then invalid_arg "Cpe.optimal_strides: max_levels < 1";
  (* The DP only needs per-depth node counts; synthesize distinct fake
     addresses per stored length so counts are >= 1 where lengths exist.
     Callers with real tables use [build], which passes real addresses. *)
  let nodes =
    depth_nodes (List.mapi (fun i l -> ((i * 2654435761) land 0xFFFFFFFF, l)) lens)
  in
  solve ~max_levels ~nodes

and solve ~max_levels ~nodes =
  let inf = max_int / 2 in
  (* t.(j).(r): min entries covering depths 1..j with r levels; choice
     records the split point m. *)
  let t = Array.make_matrix 33 (max_levels + 1) inf in
  let choice = Array.make_matrix 33 (max_levels + 1) (-1) in
  for j = 1 to 32 do
    if j <= 24 then t.(j).(1) <- 1 lsl j else t.(j).(1) <- inf;
    (* strides > 24 would allocate 2^25+ entries; exclude them *)
    choice.(j).(1) <- 0
  done;
  for r = 2 to max_levels do
    for j = r to 32 do
      for m = r - 1 to j - 1 do
        if j - m <= 24 && t.(m).(r - 1) < inf then begin
          let cost = t.(m).(r - 1) + (nodes.(m) * (1 lsl (j - m))) in
          if cost < t.(j).(r) then begin
            t.(j).(r) <- cost;
            choice.(j).(r) <- m
          end
        end
      done
    done
  done;
  let best_r = ref 1 in
  for r = 2 to max_levels do
    if t.(32).(r) < t.(32).(!best_r) then best_r := r
  done;
  let rec unwind j r acc =
    if r = 0 then acc
    else begin
      let m = choice.(j).(r) in
      unwind m (r - 1) ((j - m) :: acc)
    end
  in
  if t.(32).(!best_r) >= inf then [ 16; 8; 8 ]
  else unwind 32 !best_r []

let mask stride = (1 lsl stride) - 1

let rec insert ~strides node p v =
  let top = node.base + node.stride in
  let l = Prefix.length p in
  let abits = u32 (Prefix.addr p) in
  if l <= top then begin
    (* Expand within this node: fix bits [base, l), enumerate the rest. *)
    let shift = top - l in
    let idx_prefix =
      if l = node.base then 0
      else (abits lsr (32 - l)) land mask (l - node.base)
    in
    for k = 0 to (1 lsl shift) - 1 do
      let slot = node.slots.((idx_prefix lsl shift) lor k) in
      match slot.owner with
      | Some (ol, _) when ol > l -> ()
      | Some _ | None -> slot.owner <- Some (l, v)
    done
  end
  else begin
    let idx = (abits lsr (32 - top)) land mask node.stride in
    let slot = node.slots.(idx) in
    let child =
      match slot.child with
      | Some c -> c
      | None ->
          let c = fresh_node ~strides ~level:(node.level + 1) ~base:top in
          slot.child <- Some c;
          c
    in
    insert ~strides child p v
  end

let build_root ~strides stored =
  let root = fresh_node ~strides ~level:0 ~base:0 in
  (* Insert shortest-first so longer prefixes correctly override. *)
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Prefix.compare a b) stored
  in
  List.iter (fun (p, v) -> insert ~strides root p v) sorted;
  root

let build ?strides ?(max_levels = 4) bindings =
  let strides =
    match strides with
    | Some s ->
        if List.fold_left ( + ) 0 s <> 32 then
          invalid_arg "Cpe.build: strides must sum to 32";
        if List.exists (fun x -> x <= 0 || x > 24) s then
          invalid_arg "Cpe.build: stride out of range";
        Array.of_list s
    | None ->
        let la =
          List.map
            (fun (p, _) -> (u32 (Prefix.addr p), Prefix.length p))
            bindings
        in
        let nodes = depth_nodes la in
        Array.of_list (solve ~max_levels ~nodes)
  in
  let stored =
    (* Last binding for a duplicated prefix wins. *)
    List.fold_left
      (fun acc (p, v) ->
        (p, v) :: List.filter (fun (q, _) -> not (Prefix.equal p q)) acc)
      [] bindings
  in
  { strides; root = build_root ~strides stored; stored }

let strides t = Array.to_list t.strides

let add t p v =
  (* Replacing an existing binding needs a rebuild (the old value may be
     expanded into slots the new insert would not overwrite under the
     longest-owner rule); a genuinely new prefix expands incrementally. *)
  let existed = List.exists (fun (q, _) -> Prefix.equal p q) t.stored in
  t.stored <-
    (p, v) :: List.filter (fun (q, _) -> not (Prefix.equal p q)) t.stored;
  if existed then t.root <- build_root ~strides:t.strides t.stored
  else insert ~strides:t.strides t.root p v

let remove t p =
  t.stored <- List.filter (fun (q, _) -> not (Prefix.equal p q)) t.stored;
  t.root <- build_root ~strides:t.strides t.stored

let lookup t a =
  let abits = u32 a in
  let rec go node best =
    let top = node.base + node.stride in
    let idx = (abits lsr (32 - top)) land mask node.stride in
    let slot = node.slots.(idx) in
    let best = match slot.owner with Some _ as o -> o | None -> best in
    match slot.child with Some c -> go c best | None -> best
  in
  match go t.root None with
  | None -> None
  | Some (l, v) -> Some (Prefix.make a l, v)

let lookup_levels t a =
  let abits = u32 a in
  let rec go node n =
    let top = node.base + node.stride in
    let idx = (abits lsr (32 - top)) land mask node.stride in
    match node.slots.(idx).child with Some c -> go c (n + 1) | None -> n + 1
  in
  go t.root 0

let size t = List.length t.stored

let memory_entries t =
  let rec go node =
    Array.length node.slots
    + Array.fold_left
        (fun acc slot ->
          match slot.child with Some c -> acc + go c | None -> acc)
        0 node.slots
  in
  go t.root

let bindings t = t.stored
