(** Controlled prefix expansion (Srinivasan & Varghese), the paper's
    longest-prefix-match algorithm (ref [22]: "the prefix matching
    algorithm we use requires on average 236 cycles per packet").

    A fixed-stride multibit trie: prefixes are expanded to the nearest
    stride boundary, so a lookup inspects at most one node per level.
    Stride selection uses the classic dynamic program minimizing total
    table memory for a given maximum number of levels. *)

type 'a t

val build : ?strides:int list -> ?max_levels:int -> (Prefix.t * 'a) list -> 'a t
(** [build bindings] constructs a table.  If [strides] is given it is used
    verbatim (it must sum to 32); otherwise the memory-optimal strides for
    at most [max_levels] (default 4) levels are computed from the prefix
    length distribution by dynamic programming. *)

val strides : 'a t -> int list
(** The stride (bits consumed) of each level. *)

val add : 'a t -> Prefix.t -> 'a -> unit
(** [add t p v] inserts/replaces [p] in place (incremental expansion). *)

val remove : 'a t -> Prefix.t -> unit
(** [remove t p] deletes [p].  Implemented by rebuild over the surviving
    bindings — fine for control-plane-rate updates. *)

val lookup : 'a t -> Packet.Ipv4.addr -> (Prefix.t * 'a) option
(** [lookup t a] is the longest matching prefix and its value. *)

val lookup_levels : 'a t -> Packet.Ipv4.addr -> int
(** Number of trie levels a lookup for [a] touches (the memory-access cost
    the MicroEngine would pay). *)

val size : 'a t -> int
(** Number of stored prefixes. *)

val memory_entries : 'a t -> int
(** Total table entries allocated across all nodes (the memory the DP
    minimizes). *)

val bindings : 'a t -> (Prefix.t * 'a) list
(** The stored (unexpanded) bindings. *)

val optimal_strides : max_levels:int -> int list -> int list
(** [optimal_strides ~max_levels lens] is the DP solution for a table whose
    stored prefixes have bit-lengths [lens] (duplicates matter).  Exposed
    for tests and the microbench. *)
