let length_distribution =
  [
    (8, 0.002);
    (12, 0.005);
    (14, 0.01);
    (16, 0.10);
    (18, 0.04);
    (19, 0.06);
    (20, 0.08);
    (21, 0.07);
    (22, 0.11);
    (23, 0.09);
    (24, 0.54);
  ]

let pick_length rng =
  let x = Sim.Rng.float rng 1.0 in
  let rec go acc = function
    | [] -> 24
    | (len, w) :: rest -> if x < acc +. w then len else go (acc +. w) rest
  in
  go 0. length_distribution

let table ~rng ~n ~n_ports =
  if n <= 0 || n_ports <= 0 then invalid_arg "Gen.table";
  let seen = Hashtbl.create (2 * n) in
  let rec fresh () =
    let p = Prefix.make (Sim.Rng.int32 rng) (pick_length rng) in
    if Hashtbl.mem seen p then fresh ()
    else begin
      Hashtbl.replace seen p ();
      p
    end
  in
  (Prefix.default, 0)
  :: List.init (n - 1) (fun _ -> (fresh (), Sim.Rng.int rng n_ports))

let matching_addr ~rng bindings =
  let arr = Array.of_list bindings in
  let p, _ = Sim.Rng.pick rng arr in
  let host_bits = 32 - Prefix.length p in
  let noise =
    if host_bits = 0 then 0l
    else
      Int32.of_int (Sim.Rng.int rng (1 lsl min 30 host_bits))
  in
  Int32.logor (Prefix.addr p) noise
