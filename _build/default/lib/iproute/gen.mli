(** Synthetic routing tables with Internet-like shape.

    Real BGP tables are dominated by /24s, with heavy /16 and /19-/22
    populations, a few very short prefixes and essentially nothing longer
    than /24 — the distribution the controlled-prefix-expansion stride DP
    optimizes for.  This generator reproduces that shape deterministically
    from a seed, for lookup benchmarks and stride-selection tests. *)

val length_distribution : (int * float) list
(** [(prefix_length, weight)] pairs approximating a backbone table. *)

val table : rng:Sim.Rng.t -> n:int -> n_ports:int -> (Prefix.t * int) list
(** [table ~rng ~n ~n_ports] is [n] distinct prefixes with next-hop port
    values in [0, n_ports), Internet-like length mix, plus a default
    route. *)

val matching_addr : rng:Sim.Rng.t -> (Prefix.t * 'a) list -> Packet.Ipv4.addr
(** An address covered by a random table entry (a "hit" workload, vs
    uniformly random addresses that mostly fall to the default route). *)
