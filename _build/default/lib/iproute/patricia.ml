type 'a t =
  | Empty
  | Node of { key : int32; klen : int; value : 'a option; zero : 'a t; one : 'a t }
(* Invariant: [key] is the canonical full path from the root ([klen] bits,
   host bits zero); both children, when present, extend it and differ at
   bit [klen]. *)

let empty = Empty

let is_empty = function Empty -> true | Node _ -> false

let u32 a = Int32.to_int a land 0xFFFFFFFF

let bit a i = (u32 a lsr (31 - i)) land 1

(* Leading bits on which [a] and [b] agree, capped at [max]. *)
let common_len a b ~max:m =
  let x = u32 a lxor u32 b in
  if x = 0 then m
  else begin
    let rec leading i = if i >= m then m else if (x lsr (31 - i)) land 1 = 1 then i else leading (i + 1) in
    leading 0
  end

let prefix_of key klen = Prefix.make key klen

let node key klen value zero one = Node { key; klen; value; zero; one }

let rec add t p v =
  let pa = Prefix.addr p and pl = Prefix.length p in
  match t with
  | Empty -> node pa pl (Some v) Empty Empty
  | Node n ->
      let c = common_len pa n.key ~max:(min pl n.klen) in
      if c = n.klen then
        if pl = n.klen then Node { n with value = Some v }
        else if bit pa n.klen = 0 then Node { n with zero = add n.zero p v }
        else Node { n with one = add n.one p v }
      else if c = pl then begin
        (* p is a proper prefix of this node: insert above it. *)
        let existing = Node n in
        if bit n.key pl = 0 then node pa pl (Some v) existing Empty
        else node pa pl (Some v) Empty existing
      end
      else begin
        (* Diverge at bit c: an intermediate branching node. *)
        let mid = Prefix.addr (Prefix.make pa c) in
        let fresh = node pa pl (Some v) Empty Empty in
        let existing = Node n in
        if bit pa c = 0 then node mid c None fresh existing
        else node mid c None existing fresh
      end

(* Re-establish compression: a valueless node with at most one child
   disappears. *)
let compress = function
  | Node { value = None; zero = Empty; one = Empty; _ } -> Empty
  | Node { value = None; zero = child; one = Empty; _ }
  | Node { value = None; zero = Empty; one = child; _ } ->
      child
  | t -> t

let rec remove t p =
  let pa = Prefix.addr p and pl = Prefix.length p in
  match t with
  | Empty -> Empty
  | Node n ->
      if pl < n.klen then t
      else begin
        let c = common_len pa n.key ~max:n.klen in
        if c < n.klen then t
        else if pl = n.klen then compress (Node { n with value = None })
        else if bit pa n.klen = 0 then
          compress (Node { n with zero = remove n.zero p })
        else compress (Node { n with one = remove n.one p })
      end

let rec find t p =
  let pa = Prefix.addr p and pl = Prefix.length p in
  match t with
  | Empty -> None
  | Node n ->
      if pl < n.klen then None
      else if common_len pa n.key ~max:n.klen < n.klen then None
      else if pl = n.klen then
        if Prefix.addr p = n.key then n.value else None
      else if bit pa n.klen = 0 then find n.zero p
      else find n.one p

let lookup t a =
  let rec go t best =
    match t with
    | Empty -> best
    | Node n ->
        if common_len a n.key ~max:n.klen < n.klen then best
        else begin
          let best =
            match n.value with
            | Some v -> Some (prefix_of n.key n.klen, v)
            | None -> best
          in
          if n.klen = 32 then best
          else go (if bit a n.klen = 0 then n.zero else n.one) best
        end
  in
  go t None

let rec size = function
  | Empty -> 0
  | Node n ->
      (match n.value with Some _ -> 1 | None -> 0) + size n.zero + size n.one

let rec node_count = function
  | Empty -> 0
  | Node n -> 1 + node_count n.zero + node_count n.one

let depth t a =
  let rec go t d =
    match t with
    | Empty -> d
    | Node n ->
        if common_len a n.key ~max:n.klen < n.klen then d + 1
        else if n.klen = 32 then d + 1
        else go (if bit a n.klen = 0 then n.zero else n.one) (d + 1)
  in
  go t 0

let rec bindings = function
  | Empty -> []
  | Node n ->
      let here =
        match n.value with
        | Some v -> [ (prefix_of n.key n.klen, v) ]
        | None -> []
      in
      here @ bindings n.zero @ bindings n.one
