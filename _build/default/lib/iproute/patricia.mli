(** Path-compressed binary trie (Patricia/radix tree) for longest-prefix
    match.

    The unibit {!Btrie} inspects one bit per node — up to 32 nodes per
    lookup; this structure compresses single-child chains so a lookup
    touches at most one node per {e stored branching point}, typically 3-6
    for Internet-like tables.  It is the classic software LPM the paper's
    controlled-prefix-expansion reference [22] competes against, so both
    appear in the microbenchmarks. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : 'a t -> Prefix.t -> 'a -> 'a t
(** Insert/replace. *)

val remove : 'a t -> Prefix.t -> 'a t
(** Delete the exact prefix (no-op if absent). *)

val find : 'a t -> Prefix.t -> 'a option
(** Exact-prefix lookup. *)

val lookup : 'a t -> Packet.Ipv4.addr -> (Prefix.t * 'a) option
(** Longest matching prefix. *)

val size : 'a t -> int
(** Number of stored prefixes. *)

val node_count : 'a t -> int
(** Allocated nodes (compression diagnostics: [node_count <= 2*size]). *)

val depth : 'a t -> Packet.Ipv4.addr -> int
(** Nodes inspected by [lookup] for this address (the memory-access cost
    metric comparable to {!Cpe.lookup_levels}). *)

val bindings : 'a t -> (Prefix.t * 'a) list
