type t = { addr : int32; len : int }

let mask_of len =
  if len = 0 then 0l
  else Int32.shift_left (-1l) (32 - len)

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length";
  { addr = Int32.logand addr (mask_of len); len }

let of_string s =
  match String.split_on_char '/' s with
  | [ a; l ] -> make (Packet.Ipv4.addr_of_string a) (int_of_string l)
  | [ a ] -> make (Packet.Ipv4.addr_of_string a) 32
  | _ -> invalid_arg "Prefix.of_string"

let addr p = p.addr
let length p = p.len

let matches p a = Int32.logand a (mask_of p.len) = p.addr

let default = { addr = 0l; len = 0 }

let equal a b = a.addr = b.addr && a.len = b.len
let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Int32.unsigned_compare a.addr b.addr

let pp ppf p = Format.fprintf ppf "%a/%d" Packet.Ipv4.pp_addr p.addr p.len

let bit a i = Int32.to_int (Int32.shift_right_logical a (31 - i)) land 1

let expand p len =
  if len < p.len then invalid_arg "Prefix.expand: shrinking";
  let extra = len - p.len in
  if extra > 20 then invalid_arg "Prefix.expand: too wide";
  List.init (1 lsl extra) (fun i ->
      let suffix = Int32.shift_left (Int32.of_int i) (32 - len) in
      { addr = Int32.logor p.addr suffix; len })
