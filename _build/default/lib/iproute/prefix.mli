(** IPv4 prefixes for routing tables. *)

type t
(** A canonical prefix: host bits below the mask are zero. *)

val make : Packet.Ipv4.addr -> int -> t
(** [make addr len] is [addr/len]; host bits are cleared.  [0 <= len <= 32]. *)

val of_string : string -> t
(** [of_string "10.1.0.0/16"] parses CIDR notation. *)

val addr : t -> Packet.Ipv4.addr
val length : t -> int

val matches : t -> Packet.Ipv4.addr -> bool
(** [matches p a] is true iff [a] falls inside [p]. *)

val default : t
(** The 0.0.0.0/0 prefix. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val bit : Packet.Ipv4.addr -> int -> int
(** [bit a i] is bit [i] of [a], counting from the most significant (0). *)

val expand : t -> int -> t list
(** [expand p len] rewrites [p] as the list of [2^(len - length p)]
    prefixes of exactly [len] bits that cover it — the primitive of
    controlled prefix expansion.  Requires [len >= length p]. *)
