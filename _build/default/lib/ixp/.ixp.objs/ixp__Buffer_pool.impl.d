lib/ixp/buffer_pool.ml: Array Packet Stack
