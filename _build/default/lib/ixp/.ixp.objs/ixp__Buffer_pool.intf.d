lib/ixp/buffer_pool.mli: Packet
