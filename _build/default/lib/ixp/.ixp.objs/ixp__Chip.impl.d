lib/ixp/chip.ml: Array Buffer_pool Config Fifo Hash_unit Istore List Mac_port Mem Microengine Packet Pci Sim
