lib/ixp/chip.mli: Buffer_pool Config Fifo Hash_unit Istore Mac_port Mem Microengine Packet Pci Sim
