lib/ixp/config.ml: Sim
