lib/ixp/config.mli: Sim
