lib/ixp/fifo.ml: Array Packet
