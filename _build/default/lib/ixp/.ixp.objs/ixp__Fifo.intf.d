lib/ixp/fifo.mli: Packet
