lib/ixp/hash_unit.ml: Int64 Sim
