lib/ixp/hash_unit.mli: Sim
