lib/ixp/i2o.ml: Pci Sim
