lib/ixp/i2o.mli: Pci Sim
