lib/ixp/istore.ml: Config List Printf
