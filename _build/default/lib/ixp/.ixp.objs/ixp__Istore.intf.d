lib/ixp/istore.mli: Config
