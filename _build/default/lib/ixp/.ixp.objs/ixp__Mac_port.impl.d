lib/ixp/mac_port.ml: Int64 List Packet Queue Sim
