lib/ixp/mac_port.mli: Packet Sim
