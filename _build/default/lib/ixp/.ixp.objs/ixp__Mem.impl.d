lib/ixp/mem.ml: Config Sim
