lib/ixp/mem.mli: Config Sim
