lib/ixp/microengine.ml: Printf Sim
