lib/ixp/microengine.mli: Sim
