lib/ixp/pci.ml: Config Int64 Sim
