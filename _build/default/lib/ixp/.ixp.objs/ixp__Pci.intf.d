lib/ixp/pci.mli: Config Sim
