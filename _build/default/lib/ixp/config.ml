type mem_timing = {
  unit_bytes : int;
  read_cycles : int;
  write_cycles : int;
  occupancy_cycles : int;
}

type t = {
  me_mhz : float;
  pentium_mhz : float;
  n_microengines : int;
  contexts_per_me : int;
  dram : mem_timing;
  sram : mem_timing;
  scratch : mem_timing;
  dram_bytes : int;
  sram_bytes : int;
  scratch_bytes : int;
  fifo_slots : int;
  buffer_count : int;
  buffer_bytes : int;
  istore_slots : int;
  istore_ri_slots : int;
  istore_write_cycles_per_instr : int;
  hash_cycles : int;
  token_pass_cycles : int;
  pci_mbytes_per_s : float;
  pci_pio_read_ns : float;
  pci_pio_write_ns : float;
  pci_dma_setup_cycles : int;
  port_rx_slots : int;
}

let default =
  {
    me_mhz = 200.;
    pentium_mhz = 733.;
    n_microengines = 6;
    contexts_per_me = 4;
    (* Table 3.  Occupancies derive from the raw data paths: DRAM moves
       8 B per 100 MHz bus cycle (2 ME cycles), SRAM 4 B, Scratch is
       on-chip. *)
    dram = { unit_bytes = 32; read_cycles = 52; write_cycles = 40; occupancy_cycles = 8 };
    sram = { unit_bytes = 4; read_cycles = 22; write_cycles = 22; occupancy_cycles = 2 };
    scratch = { unit_bytes = 4; read_cycles = 16; write_cycles = 20; occupancy_cycles = 1 };
    dram_bytes = 32 * 1024 * 1024;
    sram_bytes = 2 * 1024 * 1024;
    scratch_bytes = 4 * 1024;
    fifo_slots = 16;
    buffer_count = 8192;
    buffer_bytes = 2048;
    istore_slots = 1024;
    istore_ri_slots = 374; (* leaves the paper's 650 for the VRP *)
    istore_write_cycles_per_instr = 80;
    hash_cycles = 1;
    token_pass_cycles = 1;
    pci_mbytes_per_s = 133.;
    pci_pio_read_ns = 500.;
    pci_pio_write_ns = 100.;
    pci_dma_setup_cycles = 95;
    port_rx_slots = 512;
  }

let me_clock c = Sim.Engine.Clock.of_mhz c.me_mhz
let pentium_clock c = Sim.Engine.Clock.of_mhz c.pentium_mhz
