(** Hardware parameters of the IXP1200 evaluation system (paper section 2.2
    and Table 3), gathered in one overridable record.

    All cycle quantities are MicroEngine cycles (200 MHz, 5 ns).  The
    defaults reproduce the paper's measurements; benchmarks that probe
    sensitivity override individual fields. *)

type mem_timing = {
  unit_bytes : int;  (** bytes moved per operation (Table 3 transfer size) *)
  read_cycles : int;  (** requester-visible read latency per operation *)
  write_cycles : int;  (** requester-visible write latency per operation *)
  occupancy_cycles : int;  (** channel busy time per operation (bandwidth) *)
}

type t = {
  me_mhz : float;  (** MicroEngine / StrongARM clock (199.066 ~ 200 MHz) *)
  pentium_mhz : float;  (** host CPU clock (733 MHz) *)
  n_microengines : int;  (** 6 *)
  contexts_per_me : int;  (** 4 *)
  dram : mem_timing;  (** 64-bit x 100 MHz, 32-byte transfers *)
  sram : mem_timing;  (** 32-bit x 100 MHz, 4-byte transfers *)
  scratch : mem_timing;  (** 4 KB on-chip, 4-byte transfers *)
  dram_bytes : int;  (** 32 MB *)
  sram_bytes : int;  (** 2 MB *)
  scratch_bytes : int;  (** 4 KB *)
  fifo_slots : int;  (** 16 input + 16 output, 64 bytes each *)
  buffer_count : int;  (** 8192 x 2 KB circular DRAM buffers *)
  buffer_bytes : int;  (** 2048 *)
  istore_slots : int;  (** instructions per MicroEngine store *)
  istore_ri_slots : int;  (** slots consumed by the router infrastructure;
                              what remains (650) is the VRP's *)
  istore_write_cycles_per_instr : int;  (** 2 memory accesses ~ 80 cycles *)
  hash_cycles : int;  (** hardware hash unit latency *)
  token_pass_cycles : int;  (** inter-thread signal: 1 cycle, no memory *)
  pci_mbytes_per_s : float;  (** 32-bit x 33 MHz PCI: ~133 MB/s *)
  pci_pio_read_ns : float;  (** blocking register read across PCI *)
  pci_pio_write_ns : float;  (** posted register write *)
  pci_dma_setup_cycles : int;  (** StrongARM cycles to program one DMA *)
  port_rx_slots : int;  (** MPs of buffering in a MAC port's memory *)
}

val default : t
(** The paper's evaluation system. *)

val me_clock : t -> Sim.Engine.Clock.clock
val pentium_clock : t -> Sim.Engine.Clock.clock
