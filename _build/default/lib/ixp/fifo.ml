type t = { slots : Packet.Mp.t option array; mutable transfers : int }

let create ~slots () =
  if slots <= 0 then invalid_arg "Fifo.create";
  { slots = Array.make slots None; transfers = 0 }

let slots t = Array.length t.slots

let load t i mp =
  match t.slots.(i) with
  | Some _ -> invalid_arg "Fifo.load: slot occupied"
  | None ->
      t.slots.(i) <- Some mp;
      t.transfers <- t.transfers + 1

let take t i =
  match t.slots.(i) with
  | None -> invalid_arg "Fifo.take: slot empty"
  | Some mp ->
      t.slots.(i) <- None;
      mp

let peek t i = t.slots.(i)

let transfers t = t.transfers
