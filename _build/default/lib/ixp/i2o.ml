type 'a t = {
  pci : Pci.t;
  name : string;
  free : unit Sim.Mailbox.t;
  full : 'a Sim.Mailbox.t;
  mutable sent : int;
}

let create pci ~name ~buffers () =
  if buffers <= 0 then invalid_arg "I2o.create: buffers";
  let free = Sim.Mailbox.create ~name:(name ^ ".free") () in
  for _ = 1 to buffers do
    Sim.Mailbox.put free ()
  done;
  { pci; name; free = (free : unit Sim.Mailbox.t); full = Sim.Mailbox.create ~name:(name ^ ".full") (); sent = 0 }

(* Pull a free-buffer pointer: blocks when the pool is exhausted (consumer
   backpressure). *)
let acquire_free q = Sim.Mailbox.get q.free

let send_acquired q ~producer_clock ~bytes v =
  Pci.pio_read q.pci ~clock:producer_clock;
  (* Hand the payload to the DMA engine; the full-queue pointer push rides
     behind the data, concurrently with the producer. *)
  Pci.dma_async q.pci ~bytes ~on_done:(fun () -> Sim.Mailbox.put q.full v);
  q.sent <- q.sent + 1

let send q ~producer_clock ~bytes v =
  acquire_free q;
  send_acquired q ~producer_clock ~bytes v

let recv q ~consumer_clock =
  let v = Sim.Mailbox.get q.full in
  Pci.pio_read q.pci ~clock:consumer_clock;
  (* Recycle the buffer with a posted write. *)
  Sim.Mailbox.put q.free ();
  Pci.pio_write q.pci ~clock:consumer_clock;
  v

let try_recv q ~consumer_clock =
  Pci.pio_read q.pci ~clock:consumer_clock;
  match Sim.Mailbox.try_get q.full with
  | None -> None
  | Some v ->
      Sim.Mailbox.put q.free ();
      Pci.pio_write q.pci ~clock:consumer_clock;
      Some v

let backlog q = Sim.Mailbox.length q.full
let sent q = q.sent
