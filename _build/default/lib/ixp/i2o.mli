(** Intelligent I/O (I2O) logical queues (paper section 3.7).

    "For each logical queue from the IXP1200 to the Pentium the
    implementation uses a pair of I2O hardware queues.  One queue contains
    pointers to empty buffers in Pentium memory, and the other contains
    pointers to full buffers."  (Due to a silicon bug the authors simulated
    the mechanism in software; we model the intended structure.)

    The producer pulls a free-buffer pointer (a blocking PIO read), starts
    a DMA of the payload, and the full-buffer pointer is pushed when the
    data has crossed the bus — producer-side work and the data transfer
    overlap.  The consumer pops full buffers and recycles them to the free
    queue.  A bounded buffer pool gives natural backpressure. *)

type 'a t

val create : Pci.t -> name:string -> buffers:int -> unit -> 'a t
(** [create pci ~buffers ()] is a logical queue backed by [buffers]
    Pentium-memory buffers, all initially free. *)

val send :
  'a t -> producer_clock:Sim.Engine.Clock.clock -> bytes:int -> 'a -> unit
(** [send q ~producer_clock ~bytes v] (inside the producer fiber) pulls a
    free pointer (blocking if the consumer is behind), pays the producer's
    PIO + DMA setup, and returns; the payload lands on the full queue
    asynchronously once [bytes] have crossed the bus. *)

val acquire_free : 'a t -> unit
(** Blocking half of {!send}: wait for a free buffer without charging
    anything (backpressure idle time, not busy time). *)

val send_acquired :
  'a t -> producer_clock:Sim.Engine.Clock.clock -> bytes:int -> 'a -> unit
(** Charged half of {!send}, after {!acquire_free} returned. *)

val recv : 'a t -> consumer_clock:Sim.Engine.Clock.clock -> 'a
(** [recv q ~consumer_clock] (inside the consumer fiber) blocks for the
    next full buffer, pays the consumer's PIO read, recycles the buffer to
    the free queue (posted write), and returns the payload. *)

val try_recv : 'a t -> consumer_clock:Sim.Engine.Clock.clock -> 'a option
(** Non-blocking {!recv}: pays the PIO probe even when empty (that is what
    polling costs). *)

val backlog : 'a t -> int
(** Full buffers waiting for the consumer. *)

val sent : 'a t -> int
