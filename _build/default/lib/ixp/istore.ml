type region = Per_flow | General

type block = { handle : int; name : string; slots : int; region : region }

type t = {
  capacity : int;
  write_cycles_per_instr : int;
  mutable blocks : block list;
  mutable next_handle : int;
}

let create (cfg : Config.t) =
  {
    capacity = cfg.istore_slots - cfg.istore_ri_slots;
    write_cycles_per_instr = cfg.istore_write_cycles_per_instr;
    blocks = [];
    next_handle = 0;
  }

let capacity_vrp t = t.capacity

let used t = List.fold_left (fun acc b -> acc + b.slots) 0 t.blocks

let free_slots t = t.capacity - used t

let install t region ~name ~slots =
  if slots <= 0 then Error "istore: non-positive size"
  else if slots > free_slots t then
    Error
      (Printf.sprintf "istore: %d slots requested, %d free" slots
         (free_slots t))
  else begin
    let handle = t.next_handle in
    t.next_handle <- handle + 1;
    t.blocks <- { handle; name; slots; region } :: t.blocks;
    Ok handle
  end

let remove t handle =
  t.blocks <- List.filter (fun b -> b.handle <> handle) t.blocks

let installed t = List.map (fun b -> (b.handle, b.name, b.slots)) t.blocks

let write_cost_cycles t ~slots = slots * t.write_cycles_per_instr
