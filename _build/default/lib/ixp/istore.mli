(** A MicroEngine instruction store (paper sections 2.2, 4.3, 4.5).

    4 KB per MicroEngine.  The router infrastructure occupies a fixed
    region; what remains (650 slots on this silicon) holds VRP extensions,
    laid out as Figure 11: per-flow forwarders ending in an indirect jump,
    then general forwarders stored in reverse order from the end so control
    falls from one to the next, with minimal IP always last.

    Rewriting is expensive — two memory accesses per instruction, so ~800
    cycles for a 10-instruction forwarder and over 80,000 for the whole
    store — and requires disabling the MicroEngine, which is why the
    interface supports incremental installs. *)

type t

type region = Per_flow | General

val create : Config.t -> t

val capacity_vrp : t -> int
(** Instruction slots available to extensions (650 by default). *)

val used : t -> int
(** Slots currently allocated to extensions. *)

val free_slots : t -> int

val install : t -> region -> name:string -> slots:int -> (int, string) result
(** [install st region ~name ~slots] reserves [slots] instructions and
    returns the offset handle, or [Error] if the store is full.  General
    forwarders stack from the end; per-flow forwarders from the start. *)

val remove : t -> int -> unit
(** [remove st handle] frees an installed block (no-op if unknown). *)

val installed : t -> (int * string * int) list
(** [(handle, name, slots)] of every extension, for diagnostics. *)

val write_cost_cycles : t -> slots:int -> int
(** MicroEngine-disabled cycles needed to write [slots] instructions. *)
