type t = {
  clock : Sim.Engine.Clock.clock;
  timing : Config.mem_timing;
  server : Sim.Server.t;
  mutable ops : int;
}

let create clock ~name timing =
  { clock; timing; server = Sim.Server.create ~name (); ops = 0 }

let read_ops t ~bytes =
  if bytes <= 0 then 0 else (bytes + t.timing.unit_bytes - 1) / t.timing.unit_bytes

let transfer t ~bytes ~cycles =
  let n = read_ops t ~bytes in
  let occupancy =
    Sim.Engine.Clock.ps_of_cycles t.clock t.timing.occupancy_cycles
  in
  let latency = Sim.Engine.Clock.ps_of_cycles t.clock cycles in
  for _ = 1 to n do
    Sim.Server.access t.server ~occupancy ~latency;
    t.ops <- t.ops + 1
  done

let read t ~bytes = transfer t ~bytes ~cycles:t.timing.read_cycles
let write t ~bytes = transfer t ~bytes ~cycles:t.timing.write_cycles

let server t = t.server
let ops_completed t = t.ops
let timing t = t.timing
