type t = {
  engine : Sim.Engine.t;
  bus : Sim.Server.t;
  ps_per_byte : float;
  pio_read_ps : int64;
  pio_write_ps : int64;
  mutable pio_reads : int;
  mutable dma_bytes : int;
}

let create engine (cfg : Config.t) =
  {
    engine;
    bus = Sim.Server.create ~name:"pci" ();
    ps_per_byte = 1e12 /. (cfg.pci_mbytes_per_s *. 1e6);
    pio_read_ps = Sim.Engine.ps_of_ns cfg.pci_pio_read_ns;
    pio_write_ps = Sim.Engine.ps_of_ns cfg.pci_pio_write_ns;
    pio_reads = 0;
    dma_bytes = 0;
  }

let bus t = t.bus

let transfer_ps t ~bytes = Int64.of_float (float_of_int bytes *. t.ps_per_byte)

let pio_read t ~clock =
  ignore clock;
  t.pio_reads <- t.pio_reads + 1;
  (* The processor stalls for the full round trip; the bus itself is only
     held for the small transaction. *)
  Sim.Server.access t.bus ~occupancy:(transfer_ps t ~bytes:8)
    ~latency:t.pio_read_ps

let pio_write t ~clock =
  ignore clock;
  Sim.Server.access t.bus ~occupancy:(transfer_ps t ~bytes:8)
    ~latency:t.pio_write_ps

(* DMA bursts occupy the bus in 256-byte chunks so that concurrent PIO
   transactions (I2O queue manipulation) interleave with long packet
   transfers instead of stalling behind them. *)
let dma_chunk = 256

let dma_blocking t ~bytes =
  t.dma_bytes <- t.dma_bytes + bytes;
  let rec go remaining =
    if remaining > 0 then begin
      let n = min dma_chunk remaining in
      let d = transfer_ps t ~bytes:n in
      Sim.Server.access t.bus ~occupancy:d ~latency:d;
      go (remaining - n)
    end
  in
  go bytes

let dma_async t ~bytes ~on_done =
  Sim.Engine.spawn t.engine "pci-dma" (fun () ->
      dma_blocking t ~bytes;
      on_done ())

let pio_reads t = t.pio_reads
let pio_read_ps t = t.pio_read_ps
let pio_write_ps t = t.pio_write_ps
let dma_bytes t = t.dma_bytes
