(** The PCI path between the IXP1200 and the Pentium (paper section 3.7).

    Three cost carriers:
    - the shared 32-bit/33 MHz bus, a {!Sim.Server} whose occupancy encodes
      its ~133 MB/s bandwidth (what saturates on 1500-byte packets);
    - programmed-I/O register accesses (I2O queue head/tail manipulation),
      which stall the issuing processor for a full bus round trip;
    - the IXP's DMA engine, which moves packet data concurrently with the
      StrongARM ("the DMA engine runs concurrently with the StrongARM") —
      callers enqueue a transfer and continue. *)

type t

val create : Sim.Engine.t -> Config.t -> t

val bus : t -> Sim.Server.t
(** The raw bus, for utilization queries. *)

val transfer_ps : t -> bytes:int -> int64
(** Bus occupancy of a [bytes] data burst. *)

val pio_read : t -> clock:Sim.Engine.Clock.clock -> unit
(** [pio_read t ~clock] (inside a fiber) performs one blocking register
    read across PCI; [clock] identifies the issuing processor only for
    accounting symmetry. *)

val pio_write : t -> clock:Sim.Engine.Clock.clock -> unit
(** A posted register write: cheaper, still occupies the bus briefly. *)

val dma_async : t -> bytes:int -> on_done:(unit -> unit) -> unit
(** [dma_async t ~bytes ~on_done] queues a DMA of [bytes]; [on_done] runs
    (in a fresh fiber) when the data has crossed the bus.  The caller does
    not block — that concurrency is the point. *)

val dma_blocking : t -> bytes:int -> unit
(** Wait for a DMA to complete (used where the protocol cannot overlap). *)

val pio_reads : t -> int

val pio_read_ps : t -> int64
(** The processor-visible stall of one {!pio_read} (busy accounting). *)

val pio_write_ps : t -> int64

val dma_bytes : t -> int
(** Total payload bytes DMAed. *)
