lib/mpls/lsr.ml: Hashtbl Int64 Iproute Option Packet Router Sim
