lib/mpls/lsr.mli: Iproute Packet Router Sim
