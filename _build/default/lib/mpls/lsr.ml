type nhlfe =
  | Swap of { out_label : int; out_port : int }
  | Pop_and_forward of { out_port : int }
  | Pop_and_route

type stats = {
  swapped : Sim.Stats.Counter.t;
  pushed : Sim.Stats.Counter.t;
  popped : Sim.Stats.Counter.t;
  label_miss : Sim.Stats.Counter.t;
  ttl_expired : Sim.Stats.Counter.t;
}

(* The FTN is a longest-prefix-match table; reuse the binary trie. *)
type t = {
  ilm : (int, nhlfe) Hashtbl.t;
  mutable ftn : (int * int) Iproute.Btrie.t;
  stats : stats;
}

let create () =
  {
    ilm = Hashtbl.create 64;
    ftn = Iproute.Btrie.empty;
    stats =
      {
        swapped = Sim.Stats.Counter.create "mpls.swapped";
        pushed = Sim.Stats.Counter.create "mpls.pushed";
        popped = Sim.Stats.Counter.create "mpls.popped";
        label_miss = Sim.Stats.Counter.create "mpls.label_miss";
        ttl_expired = Sim.Stats.Counter.create "mpls.ttl_expired";
      };
  }

let stats t = t.stats

let add_ilm t ~label nhlfe = Hashtbl.replace t.ilm label nhlfe
let remove_ilm t ~label = Hashtbl.remove t.ilm label
let ilm_size t = Hashtbl.length t.ilm

let add_ftn t prefix ~push_label ~out_port =
  t.ftn <- Iproute.Btrie.add t.ftn prefix (push_label, out_port)

let remove_ftn t prefix = t.ftn <- Iproute.Btrie.remove t.ftn prefix

let lookup_ftn t addr = Option.map snd (Iproute.Btrie.lookup t.ftn addr)

(* Label lookup cost: one hardware hash of the label plus a 4-byte SRAM
   read of the NHLFE, and ~20 instructions — the virtual-circuit fast
   path. *)
let charge_label_lookup ctx label =
  Router.Chip_ctx.exec ctx 20;
  ignore (Router.Chip_ctx.hash ctx (Int64.of_int label));
  Router.Chip_ctx.sram_read ctx ~bytes:4

let finish_labelled r ctx frame ~out_port =
  ignore ctx;
  Packet.Ethernet.set_dst frame (Packet.Ethernet.mac_of_port (100 + out_port));
  Packet.Ethernet.set_src frame (Packet.Ethernet.mac_of_port out_port);
  Router.Input_loop.To_queue
    {
      qid = out_port mod r.Router.config.Router.n_ports;
      out_port;
      fid = -1;
    }

let rec process t r ctx frame ~in_port =
  if Packet.Mpls.is_mpls frame then begin
    let e = Packet.Mpls.top frame in
    charge_label_lookup ctx e.Packet.Mpls.label;
    match Hashtbl.find_opt t.ilm e.Packet.Mpls.label with
    | None ->
        Sim.Stats.Counter.incr t.stats.label_miss;
        Router.Input_loop.Drop_it
    | Some _ when e.Packet.Mpls.ttl <= 1 ->
        Sim.Stats.Counter.incr t.stats.ttl_expired;
        Router.Input_loop.Drop_it
    | Some (Swap { out_label; out_port }) ->
        Router.Chip_ctx.exec ctx 6;
        Packet.Mpls.swap frame ~label:out_label;
        Sim.Stats.Counter.incr t.stats.swapped;
        finish_labelled r ctx frame ~out_port
    | Some (Pop_and_forward { out_port }) ->
        Router.Chip_ctx.exec ctx 8;
        ignore (Packet.Mpls.pop frame);
        Sim.Stats.Counter.incr t.stats.popped;
        finish_labelled r ctx frame ~out_port
    | Some Pop_and_route ->
        Router.Chip_ctx.exec ctx 8;
        ignore (Packet.Mpls.pop frame);
        Sim.Stats.Counter.incr t.stats.popped;
        if Packet.Mpls.is_mpls frame then
          (* Still labelled below: treat as a miss on the inner label. *)
          process_inner t r ctx frame ~in_port
        else Router.default_process r ctx frame ~in_port
  end
  else begin
    (* Unlabelled: ingress check against the FTN (charged like the trivial
       classifier: hash + cache-sized read), else plain IP. *)
    match
      if
        Packet.Ethernet.get_ethertype frame = Packet.Ethernet.ethertype_ipv4
        && Packet.Ipv4.valid frame
      then lookup_ftn t (Packet.Ipv4.get_dst frame)
      else None
    with
    | Some (push_label, out_port) ->
        charge_label_lookup ctx push_label;
        Router.Chip_ctx.exec ctx 10;
        Packet.Mpls.push frame
          {
            Packet.Mpls.label = push_label;
            tc = 0;
            bos = true;
            ttl = Packet.Ipv4.get_ttl frame;
          };
        Sim.Stats.Counter.incr t.stats.pushed;
        finish_labelled r ctx frame ~out_port
    | None -> Router.default_process r ctx frame ~in_port
  end

and process_inner t r ctx frame ~in_port = process t r ctx frame ~in_port
