(** Label-switching on the MicroEngine fast path.

    The paper's architecture treats even IP as "just a forwarder", and its
    peak-rate measurements are explicitly "what one would expect in the
    common case for a virtual circuit-based switch, such as one that
    supports MPLS" (section 3.5.1).  This module is the replacement
    classifier section 4.5 gestures at: a label lookup instead of the IP
    header hash, swap/pop/push instead of TTL-and-checksum.

    Tables follow the standard split:
    - the {b ILM} (incoming label map) binds an incoming top label to a
      next-hop label forwarding entry: swap to a new label, pop and
      forward (penultimate hop), or pop and hand the exposed IP packet to
      the ordinary IP path (egress LER);
    - the {b FTN} binds an IP prefix (the FEC) to a label push for
      unlabelled packets entering the LSP (ingress LER).

    Label operations run within the VRP budget — a swap is 20
    instructions, one hash, one 4-byte SRAM read — which is why the
    fast-path rate matches plain IP forwarding (see `bench mpls`). *)

type nhlfe =
  | Swap of { out_label : int; out_port : int }
  | Pop_and_forward of { out_port : int }  (** penultimate-hop pop *)
  | Pop_and_route  (** egress: continue as IP *)

type stats = {
  swapped : Sim.Stats.Counter.t;
  pushed : Sim.Stats.Counter.t;
  popped : Sim.Stats.Counter.t;
  label_miss : Sim.Stats.Counter.t;
  ttl_expired : Sim.Stats.Counter.t;
}

type t

val create : unit -> t

val stats : t -> stats

(** {1 Table management (the control plane / LDP's job)} *)

val add_ilm : t -> label:int -> nhlfe -> unit
val remove_ilm : t -> label:int -> unit
val ilm_size : t -> int

val add_ftn : t -> Iproute.Prefix.t -> push_label:int -> out_port:int -> unit
(** Bind a FEC: unlabelled packets matching the prefix enter the LSP. *)

val remove_ftn : t -> Iproute.Prefix.t -> unit

val lookup_ftn : t -> Packet.Ipv4.addr -> (int * int) option
(** [(push_label, out_port)] for the longest matching FEC. *)

(** {1 Data plane} *)

val process :
  t ->
  Router.t ->
  Router.Chip_ctx.t ->
  Packet.Frame.t ->
  in_port:int ->
  Router.Input_loop.target
(** Protocol processing for [Router.start ~process]: labelled packets take
    the label fast path; unlabelled packets matching an FTN entry are
    encapsulated; everything else falls through to
    {!Router.default_process}. *)
