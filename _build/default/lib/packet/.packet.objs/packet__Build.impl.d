lib/packet/build.ml: Bytes Ethernet Frame Ipv4 String Tcp Udp
