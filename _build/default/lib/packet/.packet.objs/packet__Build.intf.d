lib/packet/build.mli: Frame Ipv4
