lib/packet/checksum.mli: Bytes
