lib/packet/ethernet.ml: Format Frame Int32 List String
