lib/packet/ethernet.mli: Format Frame
