lib/packet/flow.ml: Format Frame Ipv4 Stdlib
