lib/packet/flow.mli: Format Frame Ipv4
