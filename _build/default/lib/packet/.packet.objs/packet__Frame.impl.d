lib/packet/frame.ml: Bytes Char Format Int32 String
