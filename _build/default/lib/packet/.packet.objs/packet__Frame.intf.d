lib/packet/frame.mli: Bytes Format
