lib/packet/icmp.ml: Bytes Checksum Ethernet Frame Ipv4
