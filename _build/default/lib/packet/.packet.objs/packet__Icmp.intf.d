lib/packet/icmp.mli: Frame Ipv4
