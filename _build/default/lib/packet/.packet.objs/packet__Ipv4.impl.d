lib/packet/ipv4.ml: Checksum Ethernet Format Frame Int32 List String
