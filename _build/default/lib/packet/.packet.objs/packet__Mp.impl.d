lib/packet/mp.ml: Bytes Format Frame List
