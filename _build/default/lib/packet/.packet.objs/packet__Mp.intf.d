lib/packet/mp.mli: Bytes Format Frame
