lib/packet/mpls.ml: Bytes Ethernet Frame Int32
