lib/packet/mpls.mli: Frame
