lib/packet/tcp.ml: Checksum Frame Int32 Ipv4
