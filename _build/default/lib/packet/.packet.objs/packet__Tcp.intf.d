lib/packet/tcp.mli: Frame
