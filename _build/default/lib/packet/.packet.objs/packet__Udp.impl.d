lib/packet/udp.ml: Checksum Frame Ipv4
