lib/packet/udp.mli: Frame
