let sum b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.sum: range";
  let acc = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get b !i) lsl 8);
  !acc

let finish s =
  let s = (s land 0xFFFF) + (s lsr 16) in
  let s = (s land 0xFFFF) + (s lsr 16) in
  lnot s land 0xFFFF

let compute b ~off ~len = finish (sum b ~off ~len)

let verify b ~off ~len =
  let s = sum b ~off ~len in
  let s = (s land 0xFFFF) + (s lsr 16) in
  let s = (s land 0xFFFF) + (s lsr 16) in
  s = 0xFFFF

(* RFC 1624: HC' = ~(~HC + ~m + m'). *)
let update16 ~old_cksum ~old_word ~new_word =
  let s = (lnot old_cksum land 0xFFFF) + (lnot old_word land 0xFFFF) + new_word in
  let s = (s land 0xFFFF) + (s lsr 16) in
  let s = (s land 0xFFFF) + (s lsr 16) in
  lnot s land 0xFFFF

let pseudo_header_sum ~src ~dst ~proto ~len =
  let hi32 v = Int32.to_int (Int32.shift_right_logical v 16) land 0xFFFF in
  let lo32 v = Int32.to_int v land 0xFFFF in
  hi32 src + lo32 src + hi32 dst + lo32 dst + proto + len
