(** Ethernet II framing.

    The minimal IP forwarder's only mandatory transformation is rewriting
    the destination MAC to the next hop's and the source MAC to the output
    port's (paper section 3.2), so MAC field access is the hot path here. *)

type mac = int
(** A 48-bit MAC address in the low bits of an [int]. *)

val header_len : int
(** 14 bytes: dst(6) src(6) ethertype(2). *)

val mac_of_string : string -> mac
(** [mac_of_string "aa:bb:cc:dd:ee:ff"] parses colon notation. *)

val pp_mac : Format.formatter -> mac -> unit
(** Prints colon notation. *)

val mac_of_port : int -> mac
(** [mac_of_port i] is the deterministic locally-administered address this
    simulation assigns to router port [i]. *)

val get_dst : Frame.t -> mac
val set_dst : Frame.t -> mac -> unit
val get_src : Frame.t -> mac
val set_src : Frame.t -> mac -> unit

val get_ethertype : Frame.t -> int
val set_ethertype : Frame.t -> int -> unit

val ethertype_ipv4 : int
(** 0x0800. *)
