(** Flow keys for the classifier (paper section 4.5).

    A key is the [(src_addr, src_port, dst_addr, dst_port)] 4-tuple, or the
    wildcard [All] used by general forwarders that apply to every packet. *)

type tuple = {
  src_addr : Ipv4.addr;
  src_port : int;
  dst_addr : Ipv4.addr;
  dst_port : int;
}

type t = All | Tuple of tuple

val of_frame : Frame.t -> tuple option
(** [of_frame f] extracts the 4-tuple if [f] carries TCP or UDP. *)

val reverse : tuple -> tuple
(** Swap the endpoint pair (the splicer's other connection half). *)

val equal : t -> t -> bool
val equal_tuple : tuple -> tuple -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val matches : t -> Frame.t -> bool
(** [matches k f] is true if [k] is [All] or [f]'s 4-tuple equals [k]'s. *)
