type t = { data : Bytes.t; mutable len : int }

let alloc ?(headroom = 0) n = { data = Bytes.make (n + headroom) '\000'; len = n }
let of_bytes b = { data = b; len = Bytes.length b }
let copy f = { data = Bytes.copy f.data; len = f.len }
let len f = f.len

let get_u8 f off = Char.code (Bytes.get f.data off)
let set_u8 f off v = Bytes.set f.data off (Char.chr (v land 0xFF))

let get_u16 f off = (get_u8 f off lsl 8) lor get_u8 f (off + 1)

let set_u16 f off v =
  set_u8 f off (v lsr 8);
  set_u8 f (off + 1) v

let get_u32 f off =
  let hi = get_u16 f off and lo = get_u16 f (off + 2) in
  Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo)

let set_u32 f off v =
  set_u16 f off (Int32.to_int (Int32.shift_right_logical v 16) land 0xFFFF);
  set_u16 f (off + 2) (Int32.to_int v land 0xFFFF)

let blit_string s f off = Bytes.blit_string s 0 f.data off (String.length s)

let equal a b =
  a.len = b.len && Bytes.sub a.data 0 a.len = Bytes.sub b.data 0 b.len

let pp_hex ppf f =
  for i = 0 to f.len - 1 do
    if i > 0 && i mod 16 = 0 then Format.pp_print_newline ppf ();
    Format.fprintf ppf "%02x " (get_u8 f i)
  done
