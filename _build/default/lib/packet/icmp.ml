let proto = 1

let type_echo_reply = 0
let type_dest_unreachable = 3
let type_echo_request = 8
let type_time_exceeded = 11

let base f = Ipv4.payload_offset f

let get_type f = Frame.get_u8 f (base f)
let get_code f = Frame.get_u8 f (base f + 1)

let icmp_len f = Ipv4.get_total_len f - Ipv4.header_len f

let fill_cksum f =
  Frame.set_u16 f (base f + 2) 0;
  Frame.set_u16 f (base f + 2)
    (Checksum.compute f.Frame.data ~off:(base f) ~len:(icmp_len f))

let checksum_ok f =
  Checksum.verify f.Frame.data ~off:(base f) ~len:(icmp_len f)

let bare ~src ~dst ~icmp_bytes =
  let l3_len = Ipv4.min_header_len + icmp_bytes in
  let frame_len = max 64 (Ethernet.header_len + l3_len) in
  let f = Frame.alloc ~headroom:16 frame_len in
  Ethernet.set_dst f (Ethernet.mac_of_port 0);
  Ethernet.set_src f (Ethernet.mac_of_port 0);
  Ethernet.set_ethertype f Ethernet.ethertype_ipv4;
  Frame.set_u8 f Ipv4.offset 0x45;
  Ipv4.set_total_len f l3_len;
  Ipv4.set_ttl f 64;
  Ipv4.set_proto f proto;
  Ipv4.set_src f src;
  Ipv4.set_dst f dst;
  f

let echo_request ~src ~dst ~id ~seq () =
  let f = bare ~src ~dst ~icmp_bytes:8 in
  Frame.set_u8 f (base f) type_echo_request;
  Frame.set_u16 f (base f + 4) id;
  Frame.set_u16 f (base f + 6) seq;
  Ipv4.fill_cksum f;
  fill_cksum f;
  f

let echo_reply_of req =
  let f = Frame.copy req in
  let src = Ipv4.get_src f and dst = Ipv4.get_dst f in
  Ipv4.set_src f dst;
  Ipv4.set_dst f src;
  Frame.set_u8 f (base f) type_echo_reply;
  Ipv4.fill_cksum f;
  fill_cksum f;
  f

(* RFC 792 error format: type, code, checksum, 4 unused bytes, then the
   original IP header plus its first 8 payload bytes. *)
let error ~router ~ty ~code original =
  let quoted =
    min
      (Ipv4.header_len original + 8)
      (Frame.len original - Ipv4.offset)
  in
  let f =
    bare ~src:router ~dst:(Ipv4.get_src original) ~icmp_bytes:(8 + quoted)
  in
  Frame.set_u8 f (base f) ty;
  Frame.set_u8 f (base f + 1) code;
  Bytes.blit original.Frame.data Ipv4.offset f.Frame.data (base f + 8) quoted;
  Ipv4.fill_cksum f;
  fill_cksum f;
  f

let time_exceeded ~router original =
  error ~router ~ty:type_time_exceeded ~code:0 original

let dest_unreachable ~router ~code original =
  error ~router ~ty:type_dest_unreachable ~code original

let quoted_src f =
  let ty = get_type f in
  if ty <> type_time_exceeded && ty <> type_dest_unreachable then None
  else begin
    let quoted_ip = base f + 8 in
    if quoted_ip + Ipv4.min_header_len > Frame.len f then None
    else Some (Frame.get_u32 f (quoted_ip + 12))
  end
