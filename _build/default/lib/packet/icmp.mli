(** ICMP (RFC 792): the error messages the slow path owns.

    The MicroEngine fast path diverts TTL-expiring and unroutable packets
    up the hierarchy; the StrongARM's exceptional-IP handler answers with
    Time Exceeded / Destination Unreachable built here.  Echo is included
    for workloads and tests. *)

val proto : int
(** IP protocol 1. *)

val type_echo_reply : int
val type_dest_unreachable : int
val type_echo_request : int
val type_time_exceeded : int

val get_type : Frame.t -> int
val get_code : Frame.t -> int

val checksum_ok : Frame.t -> bool
(** Verify the ICMP checksum over the ICMP message. *)

val echo_request :
  src:Ipv4.addr -> dst:Ipv4.addr -> id:int -> seq:int -> unit -> Frame.t
(** A minimal valid echo request frame. *)

val echo_reply_of : Frame.t -> Frame.t
(** Turn a received echo request into its reply (addresses swapped, type
    rewritten, checksums fixed). *)

val time_exceeded : router:Ipv4.addr -> Frame.t -> Frame.t
(** [time_exceeded ~router original] is the Time Exceeded (TTL) error a
    router at address [router] sends to [original]'s source, quoting the
    original IP header + 8 payload bytes as RFC 792 requires. *)

val dest_unreachable : router:Ipv4.addr -> code:int -> Frame.t -> Frame.t
(** Destination Unreachable with the given code (0 = net unreachable). *)

val quoted_src : Frame.t -> Ipv4.addr option
(** For a received ICMP error: the source address of the quoted original
    packet (who the error is about). *)
