let size = 64

type tag = Only | First | Intermediate | Last

type t = { tag : tag; index : int; data : Bytes.t }

let count len = if len <= 0 then 1 else (len + size - 1) / size

let tag_for ~index ~total =
  if total = 1 then Only
  else if index = 0 then First
  else if index = total - 1 then Last
  else Intermediate

let split f =
  let len = Frame.len f in
  let total = count len in
  List.init total (fun index ->
      let data = Bytes.make size '\000' in
      let off = index * size in
      let n = min size (len - off) in
      if n > 0 then Bytes.blit f.Frame.data off data 0 n;
      { tag = tag_for ~index ~total; index; data })

let join mps ~len =
  let total = count len in
  if List.length mps <> total then invalid_arg "Mp.join: wrong MP count";
  let f = Frame.alloc len in
  List.iteri
    (fun i mp ->
      if mp.index <> i then invalid_arg "Mp.join: out-of-order MP";
      if mp.tag <> tag_for ~index:i ~total then invalid_arg "Mp.join: bad tag";
      let off = i * size in
      let n = min size (len - off) in
      if n > 0 then Bytes.blit mp.data 0 f.Frame.data off n)
    mps;
  f

let pp_tag ppf t =
  Format.pp_print_string ppf
    (match t with
    | Only -> "only"
    | First -> "first"
    | Intermediate -> "intermediate"
    | Last -> "last")
