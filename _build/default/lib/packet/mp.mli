(** MAC-Packets (paper section 3.1).

    "The common unit of data transferred through the IXP1200 is a 64-byte
    MAC-Packet (MP).  As each packet is received, the MAC breaks it into
    separate MPs; tags each MP as being the first, an intermediate, the
    last, or the only MP of the packet."

    Everything between a MAC port and DRAM moves in these units, so
    per-packet costs in the forwarding pipeline scale with [count]. *)

val size : int
(** 64 bytes. *)

type tag = Only | First | Intermediate | Last

type t = { tag : tag; index : int; data : Bytes.t }
(** One MP: [data] is exactly {!size} bytes (the tail MP of a packet is
    zero-padded); [index] is its position within the packet. *)

val count : int -> int
(** [count len] is the number of MPs a [len]-byte frame occupies (>= 1).
    A 1500-byte IP packet in a 1518-byte Ethernet frame takes 24. *)

val split : Frame.t -> t list
(** [split f] segments a frame into tagged MPs. *)

val join : t list -> len:int -> Frame.t
(** [join mps ~len] reassembles MPs (in order) into a frame of [len] bytes.
    Raises [Invalid_argument] on inconsistent tags or count. *)

val pp_tag : Format.formatter -> tag -> unit
