type entry = { label : int; tc : int; bos : bool; ttl : int }

let ethertype = 0x8847
let entry_len = 4
let base = Ethernet.header_len

let is_mpls f = Ethernet.get_ethertype f = ethertype

let read_entry f depth =
  let off = base + (depth * entry_len) in
  let w = Frame.get_u32 f off in
  let w = Int32.to_int w land 0xFFFFFFFF in
  {
    label = (w lsr 12) land 0xFFFFF;
    tc = (w lsr 9) land 0x7;
    bos = (w lsr 8) land 1 = 1;
    ttl = w land 0xFF;
  }

let write_entry f depth e =
  if e.label < 0 || e.label > 0xFFFFF then invalid_arg "Mpls: label";
  if e.ttl < 0 || e.ttl > 255 then invalid_arg "Mpls: ttl";
  let off = base + (depth * entry_len) in
  let w =
    (e.label lsl 12) lor ((e.tc land 0x7) lsl 9)
    lor (if e.bos then 0x100 else 0)
    lor (e.ttl land 0xFF)
  in
  Frame.set_u32 f off (Int32.of_int w)

let top f = read_entry f 0

let stack_depth f =
  let rec go depth =
    if base + ((depth + 1) * entry_len) > Frame.len f then
      invalid_arg "Mpls.stack_depth: unterminated stack"
    else if (read_entry f depth).bos then depth + 1
    else go (depth + 1)
  in
  go 0

let push f e =
  let was_ip = not (is_mpls f) in
  let len = Frame.len f in
  if len + entry_len > Bytes.length f.Frame.data then
    invalid_arg "Mpls.push: no headroom";
  (* Shift everything after the Ethernet header right by one entry. *)
  Bytes.blit f.Frame.data base f.Frame.data (base + entry_len) (len - base);
  f.Frame.len <- len + entry_len;
  Ethernet.set_ethertype f ethertype;
  write_entry f 0 { e with bos = (if was_ip then true else e.bos) }

let pop f =
  if not (is_mpls f) then invalid_arg "Mpls.pop: not MPLS";
  let e = top f in
  let len = Frame.len f in
  Bytes.blit f.Frame.data (base + entry_len) f.Frame.data base
    (len - base - entry_len);
  f.Frame.len <- len - entry_len;
  if e.bos then Ethernet.set_ethertype f Ethernet.ethertype_ipv4;
  e

let swap f ~label =
  let e = top f in
  write_entry f 0 { e with label; ttl = max 0 (e.ttl - 1) }

let payload_is_ipv4 f =
  match stack_depth f with
  | d ->
      let off = base + (d * entry_len) in
      off < Frame.len f && Frame.get_u8 f off lsr 4 = 4
  | exception Invalid_argument _ -> false
