(** MPLS label stacks (RFC 3032 encoding).

    The paper's fixed infrastructure "applies equally well to a router
    that supports MPLS" (section 3), and section 4.5 notes the classifier
    "could itself be replaced with one that also understands, say, MPLS
    labels" — the {!Mpls} core library is that replacement; this module is
    the wire format.

    A label stack entry is 32 bits: label (20) | traffic class (3) |
    bottom-of-stack (1) | TTL (8), carried between the Ethernet header and
    the IP packet under ethertype 0x8847. *)

type entry = { label : int; tc : int; bos : bool; ttl : int }

val ethertype : int
(** 0x8847 (unicast). *)

val entry_len : int
(** 4 bytes per stack entry. *)

val is_mpls : Frame.t -> bool
(** Ethertype check. *)

val read_entry : Frame.t -> int -> entry
(** [read_entry f depth] decodes the stack entry [depth] levels down
    (0 = top). *)

val write_entry : Frame.t -> int -> entry -> unit
(** Overwrite an entry in place. *)

val top : Frame.t -> entry
(** [read_entry f 0]. *)

val stack_depth : Frame.t -> int
(** Number of entries down to and including the bottom-of-stack bit.
    Raises [Invalid_argument] on a malformed (unterminated) stack. *)

val push : Frame.t -> entry -> unit
(** Insert a new top entry (shifts the payload right 4 bytes; the frame
    must have capacity).  If the frame was plain IP the ethertype flips to
    MPLS and the new entry gets [bos = true]. *)

val pop : Frame.t -> entry
(** Remove and return the top entry (shifts the payload left).  Popping
    the bottom entry restores ethertype IPv4. *)

val swap : Frame.t -> label:int -> unit
(** Replace the top label, decrementing its TTL (the LSR transit
    operation). *)

val payload_is_ipv4 : Frame.t -> bool
(** After the bottom of stack, is the payload an IPv4 header?  (MPLS
    carries no explicit protocol field; this peeks the version nibble.) *)
