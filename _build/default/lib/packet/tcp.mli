(** TCP header access.

    Enough protocol surface for the paper's forwarders: the ACK/SYN
    monitors read flags and sequence numbers; the TCP splicer rewrites
    sequence/acknowledgement numbers and updates the checksum
    incrementally. *)

val get_src_port : Frame.t -> int
val set_src_port : Frame.t -> int -> unit
val get_dst_port : Frame.t -> int
val set_dst_port : Frame.t -> int -> unit
val get_seq : Frame.t -> int32
val set_seq : Frame.t -> int32 -> unit
val get_ack : Frame.t -> int32
val set_ack : Frame.t -> int32 -> unit
val get_flags : Frame.t -> int
val set_flags : Frame.t -> int -> unit
val get_cksum : Frame.t -> int
val set_cksum : Frame.t -> int -> unit

val flag_fin : int
val flag_syn : int
val flag_rst : int
val flag_ack : int

val has_flag : Frame.t -> int -> bool
(** [has_flag f flag] tests a flag bit. *)

val fill_cksum : Frame.t -> unit
(** Recompute the TCP checksum over pseudo-header + segment. *)

val cksum_ok : Frame.t -> bool
(** Verify the TCP checksum. *)

val update_cksum_u32 : Frame.t -> old_v:int32 -> new_v:int32 -> unit
(** Incrementally patch the checksum after a 32-bit covered field (seq or
    ack) changed — the splicer's per-packet operation. *)
