(** UDP header access (workload traffic and the wavelet video dropper,
    whose layered stream rides UDP). *)

val get_src_port : Frame.t -> int
val set_src_port : Frame.t -> int -> unit
val get_dst_port : Frame.t -> int
val set_dst_port : Frame.t -> int -> unit
val get_len : Frame.t -> int
val set_len : Frame.t -> int -> unit
val get_cksum : Frame.t -> int
val set_cksum : Frame.t -> int -> unit

val fill_cksum : Frame.t -> unit
(** Recompute the UDP checksum (pseudo-header included). *)

val payload_offset : Frame.t -> int
(** First byte of UDP payload. *)
