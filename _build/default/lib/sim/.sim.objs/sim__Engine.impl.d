lib/sim/engine.ml: Effect Float Fmt Heap Int64 Printexc
