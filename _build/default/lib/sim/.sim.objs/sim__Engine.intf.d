lib/sim/engine.mli:
