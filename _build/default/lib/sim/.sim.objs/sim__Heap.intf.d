lib/sim/heap.mli:
