lib/sim/mailbox.ml: Queue Semaphore
