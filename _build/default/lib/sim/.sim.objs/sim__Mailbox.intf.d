lib/sim/mailbox.mli:
