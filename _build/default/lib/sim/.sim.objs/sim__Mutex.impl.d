lib/sim/mutex.ml: Engine Int64 Queue
