lib/sim/mutex.mli:
