lib/sim/rng.mli:
