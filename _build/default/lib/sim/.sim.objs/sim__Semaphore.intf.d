lib/sim/semaphore.mli:
