lib/sim/server.ml: Engine Int64
