lib/sim/server.mli:
