lib/sim/spinlock.ml: Engine
