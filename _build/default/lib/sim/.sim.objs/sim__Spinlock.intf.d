lib/sim/spinlock.mli:
