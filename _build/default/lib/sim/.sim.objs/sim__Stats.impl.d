lib/sim/stats.ml: Array Engine Float Format Int64 List String
