lib/sim/token_ring.ml: Array Engine Int64
