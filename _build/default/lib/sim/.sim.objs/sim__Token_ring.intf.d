lib/sim/token_ring.mli:
