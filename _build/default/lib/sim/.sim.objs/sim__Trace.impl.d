lib/sim/trace.ml: Array Engine Format Int64 List String
