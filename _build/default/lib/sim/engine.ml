type t = {
  mutable clock : int64;
  mutable seq : int;
  queue : (unit -> unit) Heap.t;
  mutable live : int;
}

type waker = unit -> unit

exception Deadlock of string

type _ Effect.t +=
  | Wait : int64 -> unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t
  | Now : int64 Effect.t
  | Spawn_here : (string * (unit -> unit)) -> unit Effect.t
  | Self : t Effect.t

let create () = { clock = 0L; seq = 0; queue = Heap.create (); live = 0 }

let time t = t.clock

let schedule t ~at thunk =
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.queue ~time:at ~seq thunk

(* Each fiber body runs under this handler; resuming a captured continuation
   re-enters the handler, so a fiber only needs wrapping once, at spawn. *)
let rec exec_fiber t name fn =
  let open Effect.Deep in
  t.live <- t.live + 1;
  match_with fn ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          let bt = Printexc.get_raw_backtrace () in
          Fmt.epr "sim: fiber %S died: %s@." name (Printexc.to_string e);
          Printexc.raise_with_backtrace e bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if d < 0L then
                    discontinue k (Invalid_argument "Engine.wait: negative")
                  else
                    schedule t ~at:(Int64.add t.clock d) (fun () ->
                        continue k ()))
          | Suspend f ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let fired = ref false in
                  let waker () =
                    if !fired then
                      invalid_arg ("Engine: waker called twice (" ^ name ^ ")")
                    else begin
                      fired := true;
                      schedule t ~at:t.clock (fun () -> continue k ())
                    end
                  in
                  f waker)
          | Now -> Some (fun (k : (a, unit) continuation) -> continue k t.clock)
          | Spawn_here (n, g) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  spawn t n g;
                  continue k ())
          | Self -> Some (fun (k : (a, unit) continuation) -> continue k t)
          | _ -> None);
    }

and spawn t name fn = schedule t ~at:t.clock (fun () -> exec_fiber t name fn)

let run t ~until =
  let rec loop () =
    match Heap.peek_time t.queue with
    | None -> ()
    | Some at when at > until -> t.clock <- until
    | Some _ -> (
        match Heap.pop t.queue with
        | None -> ()
        | Some (at, _, thunk) ->
            t.clock <- at;
            thunk ();
            loop ())
  in
  loop ()

let run_until_idle t =
  let rec loop () =
    match Heap.pop t.queue with
    | None ->
        if t.live > 0 then
          raise
            (Deadlock
               (Fmt.str "%d fiber(s) suspended with no pending event" t.live))
    | Some (at, _, thunk) ->
        t.clock <- at;
        thunk ();
        loop ()
  in
  loop ()

let live_fibers t = t.live

let now () = Effect.perform Now
let wait d = Effect.perform (Wait d)
let suspend f = Effect.perform (Suspend f)
let spawn_here name fn = Effect.perform (Spawn_here (name, fn))
let self_engine () = Effect.perform Self

module Clock = struct
  type clock = { ps : int64 }

  let of_mhz f = { ps = Int64.of_float (Float.round (1_000_000. /. f)) }
  let ps_per_cycle c = c.ps
  let ps_of_cycles c n = Int64.mul c.ps (Int64.of_int n)

  let cycles_of_ps c ps = Int64.to_float ps /. Int64.to_float c.ps

  let wait_cycles c n = if n > 0 then wait (ps_of_cycles c n)
end

let ps_of_ns x = Int64.of_float (Float.round (x *. 1000.))
let seconds ps = Int64.to_float ps /. 1e12
let of_seconds s = Int64.of_float (s *. 1e12)
