type 'a t = {
  items : 'a Queue.t;
  ready : Semaphore.t;
  mutable peak : int;
}

let create ?(name = "mailbox") () =
  { items = Queue.create (); ready = Semaphore.create ~name 0; peak = 0 }

let put mb v =
  Queue.push v mb.items;
  let len = Queue.length mb.items in
  if len > mb.peak then mb.peak <- len;
  Semaphore.release mb.ready

let get mb =
  Semaphore.acquire mb.ready;
  Queue.pop mb.items

let try_get mb =
  if Semaphore.try_acquire mb.ready then Some (Queue.pop mb.items) else None

let length mb = Queue.length mb.items
let peak_length mb = mb.peak
