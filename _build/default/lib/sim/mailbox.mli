(** Unbounded FIFO channel between fibers.

    A convenience composition of a queue and a {!Semaphore}: producers
    {!put} without blocking, consumers {!get} blocking until a value
    arrives.  Used for processor-to-processor message plumbing where the
    transport cost is charged separately (e.g. by a {!Server} modelling the
    bus). *)

type 'a t

val create : ?name:string -> unit -> 'a t
(** [create ()] is an empty mailbox. *)

val put : 'a t -> 'a -> unit
(** [put mb v] enqueues [v] and wakes one blocked consumer if any. *)

val get : 'a t -> 'a
(** [get mb] (inside a fiber) dequeues the oldest value, blocking if empty. *)

val try_get : 'a t -> 'a option
(** [try_get mb] dequeues without blocking. *)

val length : 'a t -> int
(** Number of values currently queued. *)

val peak_length : 'a t -> int
(** High-water mark of {!length} (backlog diagnostics). *)
