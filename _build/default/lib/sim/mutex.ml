type t = {
  name : string;
  mutable locked : bool;
  waiters : Engine.waker Queue.t;
  mutable contended : int;
  mutable wait_time : int64;
}

let create ?(name = "mutex") () =
  { name; locked = false; waiters = Queue.create (); contended = 0; wait_time = 0L }

let lock m =
  if not m.locked then m.locked <- true
  else begin
    m.contended <- m.contended + 1;
    let t0 = Engine.now () in
    Engine.suspend (fun w -> Queue.push w m.waiters);
    (* The unlocker transferred ownership to us; the lock stays held. *)
    m.wait_time <- Int64.add m.wait_time (Int64.sub (Engine.now ()) t0)
  end

let unlock m =
  if not m.locked then invalid_arg (m.name ^ ": unlock of unlocked mutex");
  match Queue.take_opt m.waiters with
  | None -> m.locked <- false
  | Some w -> w ()

let with_lock m f =
  lock m;
  match f () with
  | v ->
      unlock m;
      v
  | exception e ->
      unlock m;
      raise e

let contended_acquires m = m.contended
let wait_time_total m = m.wait_time
let locked m = m.locked
