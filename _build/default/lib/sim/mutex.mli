(** Blocking mutual exclusion, modelling the IXP1200's hardware mutex
    support for special SRAM regions (paper section 3.4.2).

    Unlike a test-and-set spin loop, a blocked waiter consumes no memory
    bandwidth: contending contexts queue in FIFO order and are woken when
    the lock transfers.  This is the mechanism behind the "protected public
    queues" input disciplines I.2/I.3 of Table 1. *)

type t

val create : ?name:string -> unit -> t
(** [create ()] is an unlocked mutex. *)

val lock : t -> unit
(** [lock m] (inside a fiber) acquires [m], blocking FIFO if held. *)

val unlock : t -> unit
(** [unlock m] releases [m], transferring it to the oldest waiter if any. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock m f] is [lock; f (); unlock], exception-safe. *)

val contended_acquires : t -> int
(** Number of {!lock} calls that had to block. *)

val wait_time_total : t -> int64
(** Cumulative time fibers spent blocked on this mutex. *)

val locked : t -> bool
(** [locked m] is true while some fiber holds [m]. *)
