type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next r =
  r.state <- Int64.add r.state golden;
  mix r.state

let split r = create (next r)

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let v = Int64.to_int (next r) land max_int in
  v mod bound

let float r x =
  let v = Int64.to_float (Int64.shift_right_logical (next r) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool r = Int64.logand (next r) 1L = 1L

let int32 r = Int64.to_int32 (next r)

let exponential r ~mean =
  let u = float r 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let pick r a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty";
  a.(int r (Array.length a))
