(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    so that runs are reproducible from a seed and independent streams can be
    split without correlation. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split r] derives an independent stream (advances [r]). *)

val next : t -> int64
(** [next r] is the next raw 64-bit value. *)

val int : t -> int -> int
(** [int r bound] is uniform in [\[0, bound)]; [bound > 0]. *)

val float : t -> float -> float
(** [float r x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** [bool r] is a fair coin. *)

val int32 : t -> int32
(** [int32 r] is a uniform 32-bit value (e.g. a random IPv4 address). *)

val exponential : t -> mean:float -> float
(** [exponential r ~mean] draws from Exp(1/mean): Poisson interarrivals. *)

val pick : t -> 'a array -> 'a
(** [pick r a] is a uniformly chosen element of non-empty [a]. *)
