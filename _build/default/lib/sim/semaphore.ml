type t = {
  name : string;
  mutable permits : int;
  queue : Engine.waker Queue.t;
}

let create ?(name = "sem") n =
  if n < 0 then invalid_arg "Semaphore.create: negative";
  { name; permits = n; queue = Queue.create () }

let acquire s =
  if s.permits > 0 then s.permits <- s.permits - 1
  else Engine.suspend (fun w -> Queue.push w s.queue)

let try_acquire s =
  if s.permits > 0 then begin
    s.permits <- s.permits - 1;
    true
  end
  else false

let release s =
  match Queue.take_opt s.queue with
  | None -> s.permits <- s.permits + 1
  | Some w -> w ()

let permits s = s.permits
let waiters s = Queue.length s.queue
