(** Counting semaphore with FIFO wakeup.

    Used for inter-processor signalling (a MicroEngine context signalling
    the StrongARM that a packet is queued, section 3.6) and as the hungry
    half of {!Mailbox}. *)

type t

val create : ?name:string -> int -> t
(** [create n] is a semaphore with [n] initial permits ([n >= 0]). *)

val acquire : t -> unit
(** [acquire s] (inside a fiber) takes a permit, blocking FIFO if none. *)

val try_acquire : t -> bool
(** [try_acquire s] takes a permit without blocking; false if none. *)

val release : t -> unit
(** [release s] adds a permit, waking the oldest blocked fiber if any. *)

val permits : t -> int
(** Current number of free permits. *)

val waiters : t -> int
(** Number of fibers currently blocked in {!acquire}. *)
