type t = {
  name : string;
  mutable busy_until : int64;
  mutable busy_time : int64;
  mutable requests : int;
  mutable queue_delay_total : int64;
}

let create ?(name = "server") () =
  { name; busy_until = 0L; busy_time = 0L; requests = 0; queue_delay_total = 0L }

let name s = s.name

let access s ~occupancy ~latency =
  let t = Engine.now () in
  let start = if s.busy_until > t then s.busy_until else t in
  let qdelay = Int64.sub start t in
  s.busy_until <- Int64.add start occupancy;
  s.busy_time <- Int64.add s.busy_time occupancy;
  s.requests <- s.requests + 1;
  s.queue_delay_total <- Int64.add s.queue_delay_total qdelay;
  let visible = if latency > occupancy then latency else occupancy in
  Engine.wait (Int64.add qdelay visible)

let busy_time s = s.busy_time
let requests s = s.requests
let queue_delay_total s = s.queue_delay_total

let utilization s ~total =
  if total = 0L then 0. else Int64.to_float s.busy_time /. Int64.to_float total

let reset_stats s =
  s.busy_time <- 0L;
  s.requests <- 0;
  s.queue_delay_total <- 0L
