type t = {
  name : string;
  retry_ps : int64;
  mutable locked : bool;
  mutable attempts : int;
  mutable acquisitions : int;
}

let create ?(name = "spinlock") ~retry_ps () =
  { name; retry_ps; locked = false; attempts = 0; acquisitions = 0 }

let rec lock l ~attempt =
  l.attempts <- l.attempts + 1;
  attempt ();
  if l.locked then begin
    Engine.wait l.retry_ps;
    lock l ~attempt
  end
  else begin
    l.locked <- true;
    l.acquisitions <- l.acquisitions + 1
  end

let unlock l ~attempt =
  if not l.locked then invalid_arg (l.name ^ ": unlock of unlocked spinlock");
  attempt ();
  l.locked <- false

let attempts l = l.attempts
let acquisitions l = l.acquisitions
