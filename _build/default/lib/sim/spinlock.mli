(** Test-and-set spin lock over a shared memory channel.

    The paper rejects this mechanism: "our experiments with this strategy
    reveal performance-crippling memory contention when many contexts
    attempt to acquire the lock at the same time" (section 3.4.2).  We keep
    it as the ablation baseline against {!Mutex} (hardware mutex) and
    {!Token_ring}.

    Every acquisition attempt — successful or not — runs the caller-supplied
    [attempt] thunk, which is expected to charge one test-and-set access on
    the contended memory channel.  Failed attempts retry after [retry_ps]. *)

type t

val create : ?name:string -> retry_ps:int64 -> unit -> t
(** [create ~retry_ps ()] is an unlocked spin lock whose failed attempts
    retry after [retry_ps]. *)

val lock : t -> attempt:(unit -> unit) -> unit
(** [lock l ~attempt] spins, charging [attempt] per try, until acquired. *)

val unlock : t -> attempt:(unit -> unit) -> unit
(** [unlock l ~attempt] releases, charging one memory access. *)

val attempts : t -> int
(** Total test-and-set operations issued (the memory-traffic witness). *)

val acquisitions : t -> int
(** Successful acquisitions. *)
