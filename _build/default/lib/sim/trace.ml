type event = { at : int64; who : string; what : string }

type t = {
  ring : event option array;
  mutable next : int;
  mutable count : int;
  mutable on : bool;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  { ring = Array.make capacity None; next = 0; count = 0; on = false }

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let record t ~at ~who ~what =
  if t.on then begin
    t.ring.(t.next) <- Some { at; who; what };
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.count <- t.count + 1
  end

let emit t ~who ~what =
  if t.on then record t ~at:(Engine.now ()) ~who ~what

let events t =
  let cap = Array.length t.ring in
  let n = min t.count cap in
  let start = if t.count <= cap then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let dropped t = max 0 (t.count - Array.length t.ring)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  nl = 0
  ||
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let find t ~what_contains =
  List.filter (fun e -> contains ~needle:what_contains e.what) (events t)

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%12.3f us  %-20s %s@." (Int64.to_float e.at /. 1e6)
        e.who e.what)
    (events t)
