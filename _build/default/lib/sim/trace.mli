(** Event tracing: a bounded ring of timestamped events for debugging
    simulated pipelines.

    Tracing is opt-in and cheap when disabled: {!emit} on a disabled trace
    is a single branch, so instrumentation can stay in place.  The ring
    overwrites its oldest entries, keeping the most recent window — the
    part that matters when a run ends in a surprise. *)

type t

type event = { at : int64; who : string; what : string }

val create : ?capacity:int -> unit -> t
(** [create ()] is a disabled trace with room for [capacity] (default
    4096) events. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> who:string -> what:string -> unit
(** Record an event at the current simulated time (inside a fiber); no-op
    when disabled. *)

val record : t -> at:int64 -> who:string -> what:string -> unit
(** Like {!emit} with an explicit timestamp (usable outside fibers). *)

val events : t -> event list
(** Oldest first, at most [capacity]. *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val find : t -> what_contains:string -> event list
(** Events whose label contains the substring. *)

val pp : Format.formatter -> t -> unit
(** Dump the ring: one line per event with microsecond timestamps. *)
