lib/workload/mix.ml: Char Int32 Packet Sim String
