lib/workload/mix.mli: Packet Sim
