lib/workload/source.mli: Packet Sim
