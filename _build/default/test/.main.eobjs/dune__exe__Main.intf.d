test/main.mli:
