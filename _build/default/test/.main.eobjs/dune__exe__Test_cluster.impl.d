test/test_cluster.ml: Alcotest Array Cluster Packet Printf Router Sim Workload
