test/test_control.ml: Alcotest Array Control Iproute List Packet Router Sim String
