test/test_forwarders.ml: Admission Alcotest Bytes Desc Forwarder Forwarders Ixp List Packet QCheck QCheck_alcotest Result Router Vrp Workload
