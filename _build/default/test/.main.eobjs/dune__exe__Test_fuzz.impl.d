test/test_fuzz.ml: Alcotest Control Iproute List Packet Printf QCheck QCheck_alcotest Router Sim Workload
