test/test_host.ml: Alcotest Char Forwarders Host Iproute List Option Packet Printf Router String
