test/test_icmp.ml: Alcotest Array Iproute Packet Printf Router Sim
