test/test_integration.ml: Alcotest Array Bytes Forwarders Int64 Iproute Ixp List Option Packet Printf Router Sim String Workload
