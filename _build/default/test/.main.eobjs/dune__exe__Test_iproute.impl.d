test/test_iproute.ml: Alcotest Format Iproute List Option Packet Printf QCheck QCheck_alcotest Sim
