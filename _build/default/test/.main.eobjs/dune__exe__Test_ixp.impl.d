test/test_ixp.ml: Alcotest Bytes Int64 Ixp List Packet Printf Sim
