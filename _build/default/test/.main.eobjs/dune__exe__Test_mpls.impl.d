test/test_mpls.ml: Alcotest Array Iproute List Mpls Packet Printf QCheck QCheck_alcotest Router Sim
