test/test_packet.ml: Alcotest Bytes Char Format Gen Int32 List Option Packet QCheck QCheck_alcotest String
