test/test_sim.ml: Alcotest Array Int64 List Option Printf QCheck QCheck_alcotest Sim
