test/test_workload.ml: Alcotest Array Int32 Packet Printf Sim Workload
