(* Tests for the section 6 cluster configuration. *)

let addr = Packet.Ipv4.addr_of_string

let local_forwarding_stays_local () =
  let c = Cluster.create ~members:2 () in
  (* Global port 3 lives on member 0; 10.3/16 traffic entering member 0
     never crosses the fabric. *)
  let f =
    Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.3.0.1")
      ~src_port:1 ~dst_port:2 ()
  in
  Alcotest.(check bool) "inject" true (Cluster.inject c ~global_port:0 f);
  Cluster.run_for c ~us:300.;
  Alcotest.(check int) "delivered locally" 1 (Cluster.delivered c ~global_port:3);
  Alcotest.(check int) "no fabric crossing" 0
    (Sim.Stats.Counter.value c.Cluster.fabric_frames)

let cross_member_forwarding () =
  let c = Cluster.create ~members:2 () in
  (* Global port 11 = member 1, local port 3; capture what it emits. *)
  let final = ref None in
  Router.connect c.Cluster.members.(1) ~port:3 (fun g -> final := Some g);
  let f =
    Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.11.0.1")
      ~src_port:1 ~dst_port:2 ~ttl:64 ()
  in
  Alcotest.(check bool) "inject" true (Cluster.inject c ~global_port:0 f);
  Cluster.run_for c ~us:500.;
  Alcotest.(check int) "crossed the fabric" 1
    (Sim.Stats.Counter.value c.Cluster.fabric_frames);
  Alcotest.(check int) "delivered on the owner" 1
    (Cluster.delivered c ~global_port:11);
  match !final with
  | None -> Alcotest.fail "no frame captured"
  | Some g ->
      (* Two routers, two IP hops. *)
      Alcotest.(check int) "ttl decremented twice" 62 (Packet.Ipv4.get_ttl g);
      Alcotest.(check bool) "checksum still valid" true (Packet.Ipv4.valid g)

let all_to_all_no_loss () =
  let c = Cluster.create ~members:4 () in
  let rng = Sim.Rng.create 17L in
  let n_global = 32 in
  for g = 0 to n_global - 1 do
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_constant c.Cluster.engine
         ~name:(Printf.sprintf "g%d" g)
         ~pps:30_000.
         ~gen:(fun i ->
           ignore i;
           let dst_g = Sim.Rng.int rng n_global in
           Packet.Build.udp
             ~src:(Workload.Mix.subnet_addr ~subnet:(200 + g) ~host:1)
             ~dst:(Workload.Mix.subnet_addr ~subnet:dst_g ~host:(1 + Sim.Rng.int rng 50))
             ~src_port:1000 ~dst_port:2000 ())
         ~offer:(fun f -> Cluster.inject c ~global_port:g f)
         ())
  done;
  Cluster.run_for c ~us:6000.;
  let offered = 32. *. 30_000. *. 6e-3 in
  let delivered = Cluster.delivered_total c in
  Alcotest.(check bool)
    (Printf.sprintf "delivered %d of ~%.0f" delivered offered)
    true
    (float_of_int delivered >= 0.93 *. offered);
  Alcotest.(check bool) "substantial fabric traffic" true
    (Sim.Stats.Counter.value c.Cluster.fabric_frames > 1000)

let internal_link_shrinks_budget () =
  let c = Cluster.create ~members:4 () in
  (* With no fabric traffic yet, the budget equals a member's external
     share; fabric load must shrink it. *)
  let quiet = Cluster.vrp_budget_with_internal_link c ~line_rate_pps:1.128e6 in
  ignore
    (Workload.Source.spawn_constant c.Cluster.engine ~name:"cross"
       ~pps:100_000.
       ~gen:(fun i ->
         ignore i;
         Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.30.0.1")
           ~src_port:1 ~dst_port:2 ())
       ~offer:(fun f -> Cluster.inject c ~global_port:0 f)
       ());
  Cluster.run_for c ~us:5000.;
  let loaded = Cluster.vrp_budget_with_internal_link c ~line_rate_pps:1.128e6 in
  Alcotest.(check bool)
    (Printf.sprintf "budget shrinks (%d -> %d cycles)"
       quiet.Router.Vrp.b_cycles loaded.Router.Vrp.b_cycles)
    true
    (loaded.Router.Vrp.b_cycles < quiet.Router.Vrp.b_cycles)

let tests =
  [
    Alcotest.test_case "local stays local" `Quick local_forwarding_stays_local;
    Alcotest.test_case "cross-member forwarding" `Quick cross_member_forwarding;
    Alcotest.test_case "all-to-all no loss" `Slow all_to_all_no_loss;
    Alcotest.test_case "internal link shrinks budget" `Quick
      internal_link_shrinks_budget;
  ]
