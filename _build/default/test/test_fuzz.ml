(* Failure injection: garbage, truncated and corrupted frames fired at the
   full three-level router.  The contract is the paper's robustness goal:
   "the router should continue to behave correctly regardless of the
   offered workload" — no crash, no invalid packet forwarded, and the
   fast path keeps forwarding legitimate traffic alongside the garbage. *)

let addr = Packet.Ipv4.addr_of_string

let make_router () =
  let r = Router.create () in
  for p = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  r

let random_frame rng =
  let len = 14 + Sim.Rng.int rng 200 in
  let f = Packet.Frame.alloc len in
  for i = 0 to len - 1 do
    Packet.Frame.set_u8 f i (Sim.Rng.int rng 256)
  done;
  f

let corrupted rng =
  (* A valid packet with a few random bytes flipped. *)
  let f =
    Packet.Build.udp
      ~src:(addr "10.250.0.1")
      ~dst:
        (Workload.Mix.subnet_addr ~subnet:(Sim.Rng.int rng 8)
           ~host:(1 + Sim.Rng.int rng 50))
      ~src_port:(Sim.Rng.int rng 65536)
      ~dst_port:(Sim.Rng.int rng 65536)
      ()
  in
  for _ = 1 to 1 + Sim.Rng.int rng 3 do
    Packet.Frame.set_u8 f
      (Sim.Rng.int rng (Packet.Frame.len f))
      (Sim.Rng.int rng 256)
  done;
  f

let truncated rng =
  let f =
    Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.2.0.1")
      ~src_port:1 ~dst_port:2 ()
  in
  (* Claim a bigger IP payload than the frame carries. *)
  Packet.Ipv4.set_total_len f (60 + Sim.Rng.int rng 1400);
  f

let garbage_survival () =
  let r = make_router () in
  Router.start r;
  let rng = Sim.Rng.create 12345L in
  let delivered_valid = ref 0 in
  (* Observe everything leaving the router: nothing invalid may escape. *)
  let invalid_out = ref 0 in
  for p = 0 to 7 do
    Router.connect r ~port:p (fun f ->
        if Packet.Ipv4.valid f then incr delivered_valid
        else incr invalid_out)
  done;
  for i = 0 to 1999 do
    let f =
      match i mod 4 with
      | 0 -> random_frame rng
      | 1 -> corrupted rng
      | 2 -> truncated rng
      | _ ->
          (* Legitimate traffic interleaved with the garbage. *)
          Packet.Build.udp ~src:(addr "10.250.0.9")
            ~dst:(addr "10.5.0.7") ~src_port:9 ~dst_port:10 ()
    in
    ignore (Router.inject r ~port:(i mod 8) f)
  done;
  Router.run_for r ~us:20_000.;
  Alcotest.(check int) "no invalid frame escaped" 0 !invalid_out;
  Alcotest.(check bool)
    (Printf.sprintf "legitimate traffic still flowed (%d delivered)"
       !delivered_valid)
    true
    (!delivered_valid >= 500);
  (* Garbage was dropped somewhere sane, not silently lost to a crash. *)
  let accounted =
    Sim.Stats.Counter.value r.Router.istats.Router.Input_loop.drop_by_process
    + Sim.Stats.Counter.value
        r.Router.sa.Router.Strongarm.stats.Router.Strongarm.dropped
    + Sim.Stats.Counter.value
        r.Router.sa.Router.Strongarm.stats.Router.Strongarm.icmp_sent
  in
  Alcotest.(check bool)
    (Printf.sprintf "garbage accounted for (%d dropped/answered)" accounted)
    true (accounted > 400)

let fuzz_classifier_never_raises =
  QCheck.Test.make ~name:"classifier total on arbitrary bytes" ~count:500
    QCheck.(pair int64 (int_range 14 200))
    (fun (seed, len) ->
      let rng = Sim.Rng.create seed in
      let routes = Iproute.Table.create () in
      let cl = Router.Classifier.create Router.Cost_model.default ~routes in
      let f = Packet.Frame.alloc len in
      for i = 0 to len - 1 do
        Packet.Frame.set_u8 f i (Sim.Rng.int rng 256)
      done;
      match Router.Classifier.classify_functional cl f with
      | Router.Classifier.Invalid | Router.Classifier.Classified _ -> true)

let fuzz_decoders_total =
  QCheck.Test.make ~name:"RIP/MPLS/flow decoders total on arbitrary bytes"
    ~count:500
    QCheck.(pair int64 (int_range 14 200))
    (fun (seed, len) ->
      let rng = Sim.Rng.create seed in
      let f = Packet.Frame.alloc len in
      for i = 0 to len - 1 do
        Packet.Frame.set_u8 f i (Sim.Rng.int rng 256)
      done;
      ignore (Control.Rip.decode f);
      ignore (Packet.Flow.of_frame f);
      ignore (Packet.Mpls.is_mpls f && Packet.Mpls.payload_is_ipv4 f);
      true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ fuzz_classifier_never_raises; fuzz_decoders_total ]

let tests =
  [ Alcotest.test_case "garbage survival" `Slow garbage_survival ] @ qsuite
