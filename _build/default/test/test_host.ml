(* Tests for the TCP endpoints, including end-to-end flows through the
   router and recovery when the network drops segments. *)

let addr = Packet.Ipv4.addr_of_string

(* Two hosts through a router: h1 on port 0's subnet, h2 on port 1's. *)
let wire ?(lossy = None) () =
  let r = Router.create () in
  Router.add_route r (Iproute.Prefix.of_string "10.0.0.0/16") ~port:0;
  Router.add_route r (Iproute.Prefix.of_string "10.1.0.0/16") ~port:1;
  Router.start r;
  let drop_every = lossy in
  let count = ref 0 in
  let maybe_send port f =
    incr count;
    match drop_every with
    | Some n when !count mod n = 0 -> true (* silently dropped by the wire *)
    | _ -> Router.inject r ~port f
  in
  let h1 =
    Host.Endpoint.create r.Router.engine ~addr:(addr "10.0.0.100")
      ~send:(maybe_send 0) ()
  in
  let h2 =
    Host.Endpoint.create r.Router.engine ~addr:(addr "10.1.0.100")
      ~send:(maybe_send 1) ()
  in
  Router.connect r ~port:0 (fun f -> Host.Endpoint.deliver h1 f);
  Router.connect r ~port:1 (fun f -> Host.Endpoint.deliver h2 f);
  (r, h1, h2)

let handshake_and_transfer () =
  let r, h1, h2 = wire () in
  Host.Endpoint.listen h2 ~port:80;
  let c = Host.Endpoint.connect h1 ~dst:(addr "10.1.0.100") ~dst_port:80 ~src_port:4000 in
  Router.run_for r ~us:2000.;
  Alcotest.(check bool) "client established" true (Host.Endpoint.established c);
  (match Host.Endpoint.accepted h2 ~port:80 with
  | [ s ] ->
      Alcotest.(check bool) "server established" true
        (Host.Endpoint.established s);
      Alcotest.(check int) "server sees client port" 4000
        (snd (Host.Endpoint.peer s))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 accept, got %d" (List.length l)));
  (* Data, larger than one segment and one window. *)
  let payload = String.init 5000 (fun i -> Char.chr (33 + (i mod 90))) in
  Host.Endpoint.send c payload;
  Router.run_for r ~us:20_000.;
  let s = List.hd (Host.Endpoint.accepted h2 ~port:80) in
  Alcotest.(check string) "bytes intact in order" payload
    (Host.Endpoint.received s);
  Alcotest.(check bool) "sender saw all ACKs" true (Host.Endpoint.all_acked c)

let bidirectional () =
  let r, h1, h2 = wire () in
  Host.Endpoint.listen h2 ~port:7;
  let c = Host.Endpoint.connect h1 ~dst:(addr "10.1.0.100") ~dst_port:7 ~src_port:4001 in
  Router.run_for r ~us:2000.;
  let s = List.hd (Host.Endpoint.accepted h2 ~port:7) in
  Host.Endpoint.send c "ping from h1";
  Host.Endpoint.send s "pong from h2";
  Router.run_for r ~us:10_000.;
  Alcotest.(check string) "h2 got" "ping from h1" (Host.Endpoint.received s);
  Alcotest.(check string) "h1 got" "pong from h2" (Host.Endpoint.received c)

let loss_recovery () =
  (* Drop every 7th frame on the wire: the stream must still arrive intact
     thanks to retransmission. *)
  let r, h1, h2 = wire ~lossy:(Some 7) () in
  Host.Endpoint.listen h2 ~port:80;
  let c = Host.Endpoint.connect h1 ~dst:(addr "10.1.0.100") ~dst_port:80 ~src_port:4002 in
  Router.run_for r ~us:10_000.;
  Alcotest.(check bool) "established despite loss" true
    (Host.Endpoint.established c);
  let payload = String.init 4000 (fun i -> Char.chr (48 + (i mod 10))) in
  Host.Endpoint.send c payload;
  Router.run_for r ~us:120_000.;
  let s = List.hd (Host.Endpoint.accepted h2 ~port:80) in
  Alcotest.(check string) "intact despite drops" payload
    (Host.Endpoint.received s);
  Alcotest.(check bool) "retransmissions happened" true
    (Host.Endpoint.retransmissions c > 0)

let no_listener_ignored () =
  let r, h1, _h2 = wire () in
  let c = Host.Endpoint.connect h1 ~dst:(addr "10.1.0.100") ~dst_port:99 ~src_port:4003 in
  Router.run_for r ~us:5000.;
  Alcotest.(check bool) "never establishes" false (Host.Endpoint.established c)

let monitors_on_real_flow () =
  (* The paper's ACK monitor watching an actual TCP connection with real
     loss: duplicate ACKs from go-back-N recovery must show up in the
     data-plane counters (section 4.4, after Paxson). *)
  let r, h1, h2 = wire ~lossy:(Some 9) () in
  Host.Endpoint.listen h2 ~port:80;
  (* Monitor the reverse (ACK-bearing) direction: server -> client. *)
  let ack_flow =
    {
      Packet.Flow.src_addr = addr "10.1.0.100";
      src_port = 80;
      dst_addr = addr "10.0.0.100";
      dst_port = 4100;
    }
  in
  let ack_fid =
    match
      Router.Iface.install r.Router.iface ~key:(Packet.Flow.Tuple ack_flow)
        ~fwdr:Forwarders.Ack_monitor.forwarder ~where:Router.Iface.ME ()
    with
    | Ok fid -> fid
    | Error es -> Alcotest.fail (String.concat ";" es)
  in
  let syn_fid =
    match
      Router.Iface.install r.Router.iface ~key:Packet.Flow.All
        ~fwdr:Forwarders.Syn_monitor.forwarder ~where:Router.Iface.ME ()
    with
    | Ok fid -> fid
    | Error es -> Alcotest.fail (String.concat ";" es)
  in
  let c =
    Host.Endpoint.connect h1 ~dst:(addr "10.1.0.100") ~dst_port:80
      ~src_port:4100
  in
  Router.run_for r ~us:10_000.;
  Host.Endpoint.send c (String.make 6000 'x');
  Router.run_for r ~us:150_000.;
  let s = List.hd (Host.Endpoint.accepted h2 ~port:80) in
  Alcotest.(check int) "stream intact under loss" 6000
    (String.length (Host.Endpoint.received s));
  let syns =
    Forwarders.Syn_monitor.syn_count
      (Option.get (Router.Iface.getdata r.Router.iface syn_fid))
  in
  Alcotest.(check bool)
    (Printf.sprintf "SYN monitor saw the handshake (%d)" syns)
    true (syns >= 1);
  let ack_state = Option.get (Router.Iface.getdata r.Router.iface ack_fid) in
  Alcotest.(check bool)
    (Printf.sprintf "ACK monitor saw ACKs (%d)"
       (Forwarders.Ack_monitor.total_acks ack_state))
    true
    (Forwarders.Ack_monitor.total_acks ack_state > 5);
  Alcotest.(check bool)
    (Printf.sprintf "duplicate ACKs from loss recovery (%d)"
       (Forwarders.Ack_monitor.dup_acks ack_state))
    true
    (Forwarders.Ack_monitor.dup_acks ack_state >= 1)

let tests =
  [
    Alcotest.test_case "handshake + 5KB transfer" `Quick handshake_and_transfer;
    Alcotest.test_case "monitors on a real lossy flow" `Slow
      monitors_on_real_flow;
    Alcotest.test_case "bidirectional" `Quick bidirectional;
    Alcotest.test_case "loss recovery" `Slow loss_recovery;
    Alcotest.test_case "no listener" `Quick no_listener_ignored;
  ]
