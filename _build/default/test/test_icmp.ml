(* Tests for ICMP construction and the StrongARM's error generation. *)

let addr = Packet.Ipv4.addr_of_string

let echo_roundtrip () =
  let req =
    Packet.Icmp.echo_request ~src:(addr "10.250.0.1") ~dst:(addr "10.0.0.1")
      ~id:7 ~seq:3 ()
  in
  Alcotest.(check bool) "request valid ip" true (Packet.Ipv4.valid req);
  Alcotest.(check bool) "request icmp cksum" true (Packet.Icmp.checksum_ok req);
  Alcotest.(check int) "type" Packet.Icmp.type_echo_request
    (Packet.Icmp.get_type req);
  let rep = Packet.Icmp.echo_reply_of req in
  Alcotest.(check int) "reply type" Packet.Icmp.type_echo_reply
    (Packet.Icmp.get_type rep);
  Alcotest.(check int32) "addresses swapped" (Packet.Ipv4.get_src req)
    (Packet.Ipv4.get_dst rep);
  Alcotest.(check bool) "reply cksums" true
    (Packet.Ipv4.valid rep && Packet.Icmp.checksum_ok rep)

let time_exceeded_quotes_original () =
  let orig =
    Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.3.0.1")
      ~src_port:1234 ~dst_port:80 ~ttl:1 ()
  in
  let err = Packet.Icmp.time_exceeded ~router:(addr "10.254.0.1") orig in
  Alcotest.(check bool) "valid" true (Packet.Ipv4.valid err);
  Alcotest.(check bool) "icmp cksum" true (Packet.Icmp.checksum_ok err);
  Alcotest.(check int) "type" Packet.Icmp.type_time_exceeded
    (Packet.Icmp.get_type err);
  Alcotest.(check int32) "addressed to original source" (addr "10.250.0.1")
    (Packet.Ipv4.get_dst err);
  Alcotest.(check (option int32)) "quotes original source"
    (Some (addr "10.250.0.1"))
    (Packet.Icmp.quoted_src err)

let router_answers_ttl_expiry () =
  let r = Router.create () in
  for p = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  (* Route back to the sender's subnet so the error has somewhere to go. *)
  Router.add_route r (Iproute.Prefix.of_string "10.250.0.0/16") ~port:7;
  Router.start r;
  let dying =
    Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.3.0.1")
      ~src_port:5 ~dst_port:6 ~ttl:1 ()
  in
  for _ = 1 to 3 do
    ignore (Router.inject r ~port:0 (Packet.Frame.copy dying))
  done;
  Router.run_for r ~us:500.;
  Alcotest.(check int) "icmp errors generated" 3
    (Sim.Stats.Counter.value
       r.Router.sa.Router.Strongarm.stats.Router.Strongarm.icmp_sent);
  Alcotest.(check int) "delivered toward the sender" 3
    (Sim.Stats.Counter.value r.Router.delivered.(7))

let router_answers_no_route () =
  let r = Router.create () in
  Router.add_route r (Iproute.Prefix.of_string "10.250.0.0/16") ~port:2;
  Router.start r;
  let stray =
    Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "99.9.9.9")
      ~src_port:5 ~dst_port:6 ()
  in
  ignore (Router.inject r ~port:0 stray);
  Router.run_for r ~us:500.;
  Alcotest.(check int) "unreachable generated" 1
    (Sim.Stats.Counter.value
       r.Router.sa.Router.Strongarm.stats.Router.Strongarm.icmp_sent);
  Alcotest.(check int) "error delivered to source's subnet" 1
    (Sim.Stats.Counter.value r.Router.delivered.(2))

let tests =
  [
    Alcotest.test_case "echo roundtrip" `Quick echo_roundtrip;
    Alcotest.test_case "time exceeded quotes original" `Quick
      time_exceeded_quotes_original;
    Alcotest.test_case "router answers ttl expiry" `Quick
      router_answers_ttl_expiry;
    Alcotest.test_case "router answers no-route" `Quick router_answers_no_route;
  ]
