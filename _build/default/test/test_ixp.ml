(* Tests for the IXP1200 hardware model. *)

let mk_chip () =
  let e = Sim.Engine.create () in
  (e, Ixp.Chip.create e)

let mem_latency_matches_table3 () =
  let e, chip = mk_chip () in
  let probe mem bytes expect_read expect_write =
    let t0 = ref 0L and t1 = ref 0L and t2 = ref 0L in
    Sim.Engine.spawn e "probe" (fun () ->
        t0 := Sim.Engine.now ();
        Ixp.Mem.read mem ~bytes;
        t1 := Sim.Engine.now ();
        Ixp.Mem.write mem ~bytes;
        t2 := Sim.Engine.now ());
    Sim.Engine.run_until_idle e;
    let cycles d = Int64.to_int (Int64.div d 5000L) in
    Alcotest.(check int) "read cycles" expect_read (cycles (Int64.sub !t1 !t0));
    Alcotest.(check int) "write cycles" expect_write
      (cycles (Int64.sub !t2 !t1))
  in
  probe chip.Ixp.Chip.dram 32 52 40;
  probe chip.Ixp.Chip.sram 4 22 22;
  probe chip.Ixp.Chip.scratch 4 16 20

let mem_splits_large_transfers () =
  let _, chip = mk_chip () in
  Alcotest.(check int) "64B DRAM = 2 ops" 2
    (Ixp.Mem.read_ops chip.Ixp.Chip.dram ~bytes:64);
  Alcotest.(check int) "20B SRAM = 5 ops" 5
    (Ixp.Mem.read_ops chip.Ixp.Chip.sram ~bytes:20)

let mem_contention_queues () =
  let e, chip = mk_chip () in
  let finished = ref [] in
  for i = 0 to 3 do
    Sim.Engine.spawn e
      (Printf.sprintf "c%d" i)
      (fun () ->
        Ixp.Mem.read chip.Ixp.Chip.dram ~bytes:32;
        finished := (i, Sim.Engine.now ()) :: !finished)
  done;
  Sim.Engine.run_until_idle e;
  let times = List.rev_map snd !finished in
  (* Occupancy 8 cycles: completions stagger by at least 8 cycles. *)
  let sorted = List.sort compare times in
  let rec gaps = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "staggered" true (Int64.sub b a >= 40000L);
        gaps rest
    | _ -> ()
  in
  gaps sorted

let circular_pool_single_pass () =
  let pool = Ixp.Buffer_pool.create_circular ~count:4 () in
  let f = Packet.Frame.alloc 64 in
  let h0 = Ixp.Buffer_pool.alloc pool f in
  Alcotest.(check bool) "readable" true (Ixp.Buffer_pool.read pool h0 <> None);
  (* Lap the pool: h0's buffer is reused. *)
  for _ = 1 to 4 do
    ignore (Ixp.Buffer_pool.alloc pool f)
  done;
  Alcotest.(check (option reject)) "stale after lap" None
    (Ixp.Buffer_pool.read pool h0);
  Alcotest.(check int) "stale read counted" 1 (Ixp.Buffer_pool.stale_reads pool)

let stack_pool_recycles () =
  let pool = Ixp.Buffer_pool.create_stack ~count:2 () in
  let f = Packet.Frame.alloc 64 in
  let h1 = Ixp.Buffer_pool.alloc pool f in
  let _h2 = Ixp.Buffer_pool.alloc pool f in
  Alcotest.(check int) "in use" 2 (Ixp.Buffer_pool.in_use pool);
  Alcotest.check_raises "exhausted" (Failure "Buffer_pool: out of buffers")
    (fun () -> ignore (Ixp.Buffer_pool.alloc pool f));
  Ixp.Buffer_pool.free pool h1;
  let h3 = Ixp.Buffer_pool.alloc pool f in
  Alcotest.(check bool) "recycled readable" true
    (Ixp.Buffer_pool.read pool h3 <> None);
  Alcotest.(check (option reject)) "old handle stale" None
    (Ixp.Buffer_pool.read pool h1)

let fifo_slot_ownership () =
  let f = Ixp.Fifo.create ~slots:4 () in
  let mp =
    { Packet.Mp.tag = Packet.Mp.Only; index = 0; data = Bytes.make 64 'x' }
  in
  Ixp.Fifo.load f 2 mp;
  Alcotest.check_raises "double load" (Invalid_argument "Fifo.load: slot occupied")
    (fun () -> Ixp.Fifo.load f 2 mp);
  let got = Ixp.Fifo.take f 2 in
  Alcotest.(check bool) "same mp" true (got == mp);
  Alcotest.check_raises "take empty" (Invalid_argument "Fifo.take: slot empty")
    (fun () -> ignore (Ixp.Fifo.take f 2))

let istore_accounting () =
  let st = Ixp.Istore.create Ixp.Config.default in
  Alcotest.(check int) "vrp capacity" 650 (Ixp.Istore.capacity_vrp st);
  (match Ixp.Istore.install st Ixp.Istore.General ~name:"f1" ~slots:100 with
  | Ok h ->
      Alcotest.(check int) "used" 100 (Ixp.Istore.used st);
      Ixp.Istore.remove st h;
      Alcotest.(check int) "freed" 0 (Ixp.Istore.used st)
  | Error e -> Alcotest.fail e);
  (match Ixp.Istore.install st Ixp.Istore.General ~name:"big" ~slots:651 with
  | Ok _ -> Alcotest.fail "should not fit"
  | Error _ -> ());
  Alcotest.(check int) "write cost 10 instr = 800 cycles" 800
    (Ixp.Istore.write_cost_cycles st ~slots:10)

let mac_port_rx_overflow () =
  let e = Sim.Engine.create () in
  let p = Ixp.Mac_port.create e ~id:0 ~mbps:100. ~rx_slots:3 () in
  let small = Packet.Frame.alloc 64 in
  Alcotest.(check bool) "first fits" true (Ixp.Mac_port.offer p small);
  Alcotest.(check bool) "second fits" true (Ixp.Mac_port.offer p small);
  Alcotest.(check bool) "third fits" true (Ixp.Mac_port.offer p small);
  Alcotest.(check bool) "fourth drops" false (Ixp.Mac_port.offer p small);
  Alcotest.(check int) "drop counted" 1 (Ixp.Mac_port.rx_dropped p)

let mac_port_reassembly () =
  let e = Sim.Engine.create () in
  let got = ref None in
  let p =
    Ixp.Mac_port.create e ~id:1 ~mbps:100. ~rx_slots:64
      ~sink:(fun f -> got := Some f)
      ()
  in
  let f =
    Packet.Build.udp ~frame_len:200
      ~src:(Packet.Ipv4.addr_of_string "1.2.3.4")
      ~dst:(Packet.Ipv4.addr_of_string "5.6.7.8")
      ~src_port:1 ~dst_port:2 ~payload:"reassemble me" ()
  in
  List.iter
    (fun mp -> Ixp.Mac_port.transmit_mp p mp ~len_hint:200)
    (Packet.Mp.split f);
  (match !got with
  | Some g -> Alcotest.(check bool) "frame intact" true (Packet.Frame.equal f g)
  | None -> Alcotest.fail "no frame delivered");
  Alcotest.(check int) "tx count" 1 (Ixp.Mac_port.tx_frames p)

let mac_port_misorder_detected () =
  let e = Sim.Engine.create () in
  let p = Ixp.Mac_port.create e ~id:2 ~mbps:100. ~rx_slots:64 () in
  let f = Packet.Frame.alloc 200 in
  (match Packet.Mp.split f with
  | _first :: mid :: _ -> Ixp.Mac_port.transmit_mp p mid ~len_hint:200
  | _ -> Alcotest.fail "expected multiple MPs");
  (* An Intermediate with no First in progress is absorbed; following Last
     without full set errors. *)
  let last =
    { Packet.Mp.tag = Packet.Mp.Last; index = 3; data = Bytes.make 64 ' ' }
  in
  Ixp.Mac_port.transmit_mp p last ~len_hint:200;
  Alcotest.(check bool) "error counted" true (Ixp.Mac_port.tx_errors p >= 1)

let mac_frame_time () =
  let e = Sim.Engine.create () in
  let p = Ixp.Mac_port.create e ~id:0 ~mbps:100. ~rx_slots:4 () in
  (* (64B + 20B overhead) x 8 = 672 bits = 6.72 us at 100 Mbps. *)
  Alcotest.(check int64) "64B wire time" 6720000L
    (Ixp.Mac_port.frame_time_ps p ~bytes:64)

let pci_bandwidth () =
  let e, chip = mk_chip () in
  let pci = chip.Ixp.Chip.pci in
  let t_done = ref 0L in
  Sim.Engine.spawn e "dma" (fun () ->
      Ixp.Pci.dma_blocking pci ~bytes:1330;
      t_done := Sim.Engine.now ());
  Sim.Engine.run_until_idle e;
  (* 1330 B at 133 MB/s = 10 us (chunked transfers round per chunk). *)
  Alcotest.(check bool) "transfer time ~10us" true
    (Int64.abs (Int64.sub !t_done 10_000_000L) <= 100L)

let i2o_roundtrip_and_backpressure () =
  let e, chip = mk_chip () in
  let q = Ixp.I2o.create chip.Ixp.Chip.pci ~name:"t" ~buffers:2 () in
  let clock = chip.Ixp.Chip.me_clock in
  let received = ref [] in
  let sent = ref 0 in
  Sim.Engine.spawn e "producer" (fun () ->
      for i = 1 to 5 do
        Ixp.I2o.send q ~producer_clock:clock ~bytes:64 i;
        sent := i
      done);
  Sim.Engine.spawn e "consumer" (fun () ->
      for _ = 1 to 5 do
        Sim.Engine.wait 2_000_000L;
        received := Ixp.I2o.recv q ~consumer_clock:clock :: !received
      done);
  Sim.Engine.run_until_idle e;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !received);
  Alcotest.(check int) "all sent" 5 !sent

let qsuite = []

let tests =
  [
    Alcotest.test_case "memory latencies = Table 3" `Quick
      mem_latency_matches_table3;
    Alcotest.test_case "memory op splitting" `Quick mem_splits_large_transfers;
    Alcotest.test_case "memory contention queues" `Quick mem_contention_queues;
    Alcotest.test_case "circular pool single-pass lifetime" `Quick
      circular_pool_single_pass;
    Alcotest.test_case "stack pool recycles" `Quick stack_pool_recycles;
    Alcotest.test_case "fifo slot ownership" `Quick fifo_slot_ownership;
    Alcotest.test_case "istore accounting" `Quick istore_accounting;
    Alcotest.test_case "mac port rx overflow" `Quick mac_port_rx_overflow;
    Alcotest.test_case "mac port reassembly" `Quick mac_port_reassembly;
    Alcotest.test_case "mac port misorder" `Quick mac_port_misorder_detected;
    Alcotest.test_case "mac frame wire time" `Quick mac_frame_time;
    Alcotest.test_case "pci bandwidth" `Quick pci_bandwidth;
    Alcotest.test_case "i2o roundtrip + backpressure" `Quick
      i2o_roundtrip_and_backpressure;
  ]
  @ qsuite
