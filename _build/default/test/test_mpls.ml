(* Tests for the MPLS wire format and the label-switching fast path. *)

let addr = Packet.Ipv4.addr_of_string

let sample () =
  Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.3.0.9")
    ~src_port:1111 ~dst_port:2222 ~ttl:40 ()

let entry_roundtrip =
  QCheck.Test.make ~name:"mpls entry encode/decode roundtrip" ~count:300
    QCheck.(triple (int_bound 0xFFFFF) (int_bound 7) (int_bound 255))
    (fun (label, tc, ttl) ->
      let f = sample () in
      Packet.Mpls.push f { Packet.Mpls.label; tc; bos = true; ttl };
      let e = Packet.Mpls.top f in
      e.Packet.Mpls.label = label && e.Packet.Mpls.tc = tc
      && e.Packet.Mpls.ttl = ttl && e.Packet.Mpls.bos)

let push_pop_restores_frame () =
  let f = sample () in
  let before = Packet.Frame.copy f in
  Packet.Mpls.push f { Packet.Mpls.label = 42; tc = 1; bos = true; ttl = 9 };
  Alcotest.(check bool) "is mpls" true (Packet.Mpls.is_mpls f);
  Alcotest.(check int) "longer" (Packet.Frame.len before + 4) (Packet.Frame.len f);
  Alcotest.(check bool) "payload is ip" true (Packet.Mpls.payload_is_ipv4 f);
  let e = Packet.Mpls.pop f in
  Alcotest.(check int) "popped label" 42 e.Packet.Mpls.label;
  Alcotest.(check bool) "frame restored" true (Packet.Frame.equal before f);
  Alcotest.(check bool) "ip again" true
    (Packet.Ethernet.get_ethertype f = Packet.Ethernet.ethertype_ipv4);
  Alcotest.(check bool) "ip header still valid" true (Packet.Ipv4.valid f)

let stack_of_two () =
  let f = sample () in
  Packet.Mpls.push f { Packet.Mpls.label = 100; tc = 0; bos = true; ttl = 64 };
  Packet.Mpls.push f { Packet.Mpls.label = 200; tc = 0; bos = false; ttl = 64 };
  Alcotest.(check int) "depth 2" 2 (Packet.Mpls.stack_depth f);
  Alcotest.(check int) "top is outer" 200 (Packet.Mpls.top f).Packet.Mpls.label;
  Alcotest.(check int) "inner" 100
    (Packet.Mpls.read_entry f 1).Packet.Mpls.label;
  Alcotest.(check bool) "inner is bos" true
    (Packet.Mpls.read_entry f 1).Packet.Mpls.bos

let swap_decrements_ttl () =
  let f = sample () in
  Packet.Mpls.push f { Packet.Mpls.label = 7; tc = 0; bos = true; ttl = 10 };
  Packet.Mpls.swap f ~label:8;
  let e = Packet.Mpls.top f in
  Alcotest.(check int) "label" 8 e.Packet.Mpls.label;
  Alcotest.(check int) "ttl" 9 e.Packet.Mpls.ttl

let mk_router () =
  let r = Router.create () in
  for p = 0 to 7 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  r

let lsr_swap_path () =
  let r = mk_router () in
  let sw = Mpls.Lsr.create () in
  Mpls.Lsr.add_ilm sw ~label:100
    (Mpls.Lsr.Swap { out_label = 200; out_port = 5 });
  Router.start ~process:(Mpls.Lsr.process sw) r;
  let f = sample () in
  Packet.Mpls.push f { Packet.Mpls.label = 100; tc = 0; bos = true; ttl = 30 };
  Alcotest.(check bool) "injected" true (Router.inject r ~port:0 f);
  Router.run_for r ~us:100.;
  Alcotest.(check int) "delivered out port 5" 1
    (Sim.Stats.Counter.value r.Router.delivered.(5));
  Alcotest.(check int) "swapped" 1
    (Sim.Stats.Counter.value (Mpls.Lsr.stats sw).Mpls.Lsr.swapped);
  Alcotest.(check int) "label now 200" 200
    (Packet.Mpls.top f).Packet.Mpls.label;
  Alcotest.(check int) "label ttl decremented" 29
    (Packet.Mpls.top f).Packet.Mpls.ttl

let lsr_ingress_and_egress () =
  let r = mk_router () in
  let sw = Mpls.Lsr.create () in
  (* Ingress: FEC 10.6.0.0/16 enters the LSP with label 300 out port 6;
     egress: label 400 pops and routes as IP. *)
  Mpls.Lsr.add_ftn sw
    (Iproute.Prefix.of_string "10.6.0.0/16")
    ~push_label:300 ~out_port:6;
  Mpls.Lsr.add_ilm sw ~label:400 Mpls.Lsr.Pop_and_route;
  Router.start ~process:(Mpls.Lsr.process sw) r;
  (* Unlabelled packet to the FEC gets encapsulated. *)
  let f1 = sample () in
  Packet.Ipv4.set_dst f1 (addr "10.6.1.2");
  Packet.Ipv4.fill_cksum f1;
  ignore (Router.inject r ~port:0 f1);
  (* Labelled packet with the egress label pops and routes to 10.3/16. *)
  let f2 = sample () in
  Packet.Mpls.push f2 { Packet.Mpls.label = 400; tc = 0; bos = true; ttl = 30 };
  ignore (Router.inject r ~port:1 f2);
  Router.run_for r ~us:200.;
  Alcotest.(check int) "pushed" 1
    (Sim.Stats.Counter.value (Mpls.Lsr.stats sw).Mpls.Lsr.pushed);
  Alcotest.(check bool) "f1 labelled" true (Packet.Mpls.is_mpls f1);
  Alcotest.(check int) "f1 out port 6" 1
    (Sim.Stats.Counter.value r.Router.delivered.(6));
  Alcotest.(check int) "popped" 1
    (Sim.Stats.Counter.value (Mpls.Lsr.stats sw).Mpls.Lsr.popped);
  Alcotest.(check bool) "f2 is plain ip again" true
    (Packet.Ethernet.get_ethertype f2 = Packet.Ethernet.ethertype_ipv4);
  Alcotest.(check int) "f2 routed out port 3" 1
    (Sim.Stats.Counter.value r.Router.delivered.(3))

let lsr_label_miss_and_ttl () =
  let r = mk_router () in
  let sw = Mpls.Lsr.create () in
  Mpls.Lsr.add_ilm sw ~label:9 (Mpls.Lsr.Swap { out_label = 10; out_port = 1 });
  Router.start ~process:(Mpls.Lsr.process sw) r;
  let miss = sample () in
  Packet.Mpls.push miss { Packet.Mpls.label = 777; tc = 0; bos = true; ttl = 5 };
  ignore (Router.inject r ~port:0 miss);
  let dying = sample () in
  Packet.Mpls.push dying { Packet.Mpls.label = 9; tc = 0; bos = true; ttl = 1 };
  ignore (Router.inject r ~port:0 dying);
  Router.run_for r ~us:200.;
  Alcotest.(check int) "miss counted" 1
    (Sim.Stats.Counter.value (Mpls.Lsr.stats sw).Mpls.Lsr.label_miss);
  Alcotest.(check int) "ttl expiry counted" 1
    (Sim.Stats.Counter.value (Mpls.Lsr.stats sw).Mpls.Lsr.ttl_expired);
  Alcotest.(check int) "nothing delivered" 0 (Router.delivered_total r)

let unlabelled_falls_through_to_ip () =
  let r = mk_router () in
  let sw = Mpls.Lsr.create () in
  Router.start ~process:(Mpls.Lsr.process sw) r;
  let f = sample () in
  ignore (Router.inject r ~port:0 f);
  Router.run_for r ~us:100.;
  Alcotest.(check int) "IP-forwarded out port 3" 1
    (Sim.Stats.Counter.value r.Router.delivered.(3))

let qsuite = List.map QCheck_alcotest.to_alcotest [ entry_roundtrip ]

let tests =
  [
    Alcotest.test_case "push/pop restores frame" `Quick push_pop_restores_frame;
    Alcotest.test_case "two-entry stack" `Quick stack_of_two;
    Alcotest.test_case "swap decrements ttl" `Quick swap_decrements_ttl;
    Alcotest.test_case "LSR swap path" `Quick lsr_swap_path;
    Alcotest.test_case "LSR ingress + egress" `Quick lsr_ingress_and_egress;
    Alcotest.test_case "LSR miss and ttl expiry" `Quick lsr_label_miss_and_ttl;
    Alcotest.test_case "unlabelled falls through" `Quick
      unlabelled_falls_through_to_ip;
  ]
  @ qsuite
