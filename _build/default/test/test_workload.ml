(* Tests for traffic sources and packet mixes. *)

let line_rate_math () =
  Alcotest.(check (float 100.)) "148.8 Kpps at 100 Mbps/64B" 148_809.5
    (Workload.Source.line_rate_pps ~mbps:100. ~frame_len:64);
  Alcotest.(check (float 100.)) "~81.3 Kpps at 1518B/1Gbps" 81274.7
    (Workload.Source.line_rate_pps ~mbps:1000. ~frame_len:1518)

let constant_source_rate () =
  let e = Sim.Engine.create () in
  let n = ref 0 in
  ignore
    (Workload.Source.spawn_constant e ~name:"s" ~pps:1_000_000.
       ~gen:(fun _ ->
         Packet.Build.udp
           ~src:(Packet.Ipv4.addr_of_string "1.1.1.1")
           ~dst:(Packet.Ipv4.addr_of_string "2.2.2.2")
           ~src_port:1 ~dst_port:2 ())
       ~offer:(fun _ ->
         incr n;
         true)
       ());
  Sim.Engine.run e ~until:(Sim.Engine.of_seconds 1e-3);
  Alcotest.(check int) "1000 frames in 1 ms at 1 Mpps" 1000 !n

let poisson_source_mean_rate () =
  let e = Sim.Engine.create () in
  let n = ref 0 in
  ignore
    (Workload.Source.spawn_poisson e ~name:"p" ~rng:(Sim.Rng.create 5L)
       ~pps:500_000.
       ~gen:(fun _ ->
         Packet.Build.udp
           ~src:(Packet.Ipv4.addr_of_string "1.1.1.1")
           ~dst:(Packet.Ipv4.addr_of_string "2.2.2.2")
           ~src_port:1 ~dst_port:2 ())
       ~offer:(fun _ ->
         incr n;
         true)
       ());
  Sim.Engine.run e ~until:(Sim.Engine.of_seconds 10e-3);
  (* 5000 expected; allow 10%. *)
  Alcotest.(check bool)
    (Printf.sprintf "got %d" !n)
    true
    (!n > 4500 && !n < 5500)

let uniform_mix_routes_everywhere () =
  let rng = Sim.Rng.create 11L in
  let gen = Workload.Mix.udp_uniform ~rng ~n_subnets:8 () in
  let seen = Array.make 8 0 in
  for i = 0 to 799 do
    let f = gen i in
    let dst = Int32.to_int (Packet.Ipv4.get_dst f) land 0xFFFFFFFF in
    let subnet = (dst lsr 16) land 0xFF in
    Alcotest.(check bool) "in range" true (subnet < 8);
    seen.(subnet) <- seen.(subnet) + 1;
    Alcotest.(check bool) "valid frame" true (Packet.Ipv4.valid f)
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "subnet %d used" i) true (c > 50))
    seen

let syn_flood_is_syns () =
  let rng = Sim.Rng.create 3L in
  for i = 0 to 50 do
    let f =
      Workload.Mix.syn_flood ~rng
        ~dst:(Packet.Ipv4.addr_of_string "10.0.0.1")
        ~dst_port:80 i
    in
    Alcotest.(check bool) "syn set" true (Packet.Tcp.has_flag f Packet.Tcp.flag_syn);
    Alcotest.(check bool) "valid" true (Packet.Ipv4.valid f)
  done

let options_share_mixes () =
  let rng = Sim.Rng.create 23L in
  let base _ =
    Packet.Build.udp
      ~src:(Packet.Ipv4.addr_of_string "1.1.1.1")
      ~dst:(Packet.Ipv4.addr_of_string "2.2.2.2")
      ~src_port:1 ~dst_port:2 ()
  in
  let gen = Workload.Mix.with_options_share ~rng ~share:0.3 base in
  let n_opts = ref 0 in
  for i = 0 to 999 do
    if Packet.Ipv4.has_options (gen i) then incr n_opts
  done;
  Alcotest.(check bool)
    (Printf.sprintf "share ~0.3 (got %d/1000)" !n_opts)
    true
    (!n_opts > 230 && !n_opts < 370)

let tests =
  [
    Alcotest.test_case "line rate math" `Quick line_rate_math;
    Alcotest.test_case "constant source rate" `Quick constant_source_rate;
    Alcotest.test_case "poisson source mean" `Quick poisson_source_mean_rate;
    Alcotest.test_case "uniform mix coverage" `Quick
      uniform_mix_routes_everywhere;
    Alcotest.test_case "syn flood shape" `Quick syn_flood_is_syns;
    Alcotest.test_case "options share" `Quick options_share_mixes;
  ]
