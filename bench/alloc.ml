(* Steady-state allocation budget: minor-heap words per forwarded packet.

   The zero-allocation work (pooled descriptors, park cells, option-free
   queue paths, limb-based RNG, int-coded handles) only stays done if CI
   notices when a change re-introduces per-packet heap traffic.  This
   experiment measures the line-rate scenario of bench/perf.ml — the
   full three-level router at 8x100 Mbps, 64-byte frames, a frame pool
   closing the loop — and reports the steady-state allocation quotient
   plus a decomposition into the substrate costs that dominate it:

   - rng draw: words per [Sim.Rng.int] call (limb-based: 0)
   - generator frame: words per pooled [Mix.udp_uniform] frame
   - engine suspension: words per scheduled event (effect capture +
     constructor + queue traffic) — the irreducible cost of a
     fiber actually suspending, paid ~events/packet times per packet
   - words/packet, events/packet, promoted words over the measured
     window for the whole router

   Unlike wall-clock pps, allocation counts are exact and repeatable —
   the spread rows exist for gate.py --refresh symmetry and sit near
   zero.  CI gates "minor words/packet" (and friends) against the
   committed BENCH_alloc.json with a max-ratio ceiling: getting *worse*
   fails; getting better passes and deserves a re-baseline. *)

let failures = ref 0

(* Hard ceiling asserted locally (not just vs the committed baseline):
   the steady-state quotient must stay under this many minor words per
   forwarded packet.  Chosen above the measured value with ~25% slack;
   tighten as further waves land. *)
let words_per_packet_ceiling = 150.

let warmup_us = 2_000.
let measured_us = 40_000.

(* Words per call of [f], measured over [n] calls. *)
let words_per ~n f =
  let gc = Sim.Gc_stats.create () in
  for i = 1 to n do
    f i
  done;
  Sim.Gc_stats.minor_words gc /. float_of_int n

let rng_row () =
  let rng = Sim.Rng.create 7L in
  let sink = ref 0 in
  let w =
    words_per ~n:100_000 (fun i -> sink := !sink + Sim.Rng.int rng (i + 1))
  in
  ignore !sink;
  w

let gen_row () =
  let pool = Packet.Frame_pool.create ~max_frames:64 ~frame_bytes:80 () in
  let rng = Sim.Rng.create 11L in
  let gen = Workload.Mix.udp_uniform ~pool ~rng ~n_subnets:8 ~frame_len:64 () in
  (* Prime the pool so the measured loop recycles instead of minting. *)
  for i = 0 to 9 do
    Packet.Frame_pool.give pool (gen i)
  done;
  words_per ~n:50_000 (fun i ->
      let f = gen i in
      Packet.Frame_pool.give pool f)

(* Two fibers alternating waits so neither window is ever event-free:
   every wait suspends for real (continuation capture + Wait box +
   Resume box + wheel traffic).  Words per *scheduled event*. *)
let suspension_row () =
  let e = Sim.Engine.create () in
  let n = 20_000 in
  Sim.Engine.spawn e "a" (fun () ->
      for _ = 1 to n do
        Sim.Engine.wait_i 1_000
      done);
  Sim.Engine.spawn e "b" (fun () ->
      for _ = 1 to n do
        Sim.Engine.wait_i 1_000
      done);
  let gc = Sim.Gc_stats.create () in
  Sim.Engine.run_until_idle e;
  Sim.Gc_stats.minor_words gc /. float_of_int (Sim.Engine.events_scheduled e)

(* The bench/perf.ml line-rate router, instrumented for allocation:
   returns (minor words/pkt, promoted words/pkt, events/pkt, minor
   collections) over the measured phase. *)
let router_alloc () =
  let config =
    {
      Router.default_config with
      Router.circular_buffers = true;
      Router.queue_capacity = 512;
    }
  in
  let r = Router.create ~config () in
  let pool = Packet.Frame_pool.create ~max_frames:16_384 ~frame_bytes:80 () in
  Router.set_frame_pool r pool;
  for p = 0 to config.Router.n_ports - 1 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  Router.start r;
  let rng = Sim.Rng.create 42L in
  for p = 0 to config.Router.n_ports - 1 do
    let rng = Sim.Rng.split rng in
    let gen =
      Workload.Mix.udp_uniform ~pool ~rng ~n_subnets:config.Router.n_ports
        ~frame_len:64 ()
    in
    ignore
      (Workload.Source.spawn_line_rate r.Router.engine
         ~name:(Printf.sprintf "gen%d" p)
         ~mbps:100. ~frame_len:64 ~gen
         ~offer:(fun f ->
           let ok = Router.inject r ~port:p f in
           if not ok then Packet.Frame_pool.give pool f;
           ok)
         ())
  done;
  Router.run_for r ~us:warmup_us;
  let out0 =
    Sim.Stats.Counter.value r.Router.ostats.Router.Output_loop.pkts_out
  in
  let ev0 = Sim.Engine.events_scheduled r.Router.engine in
  let gc = Sim.Gc_stats.create () in
  Router.run_for r ~us:measured_us;
  let out =
    Sim.Stats.Counter.value r.Router.ostats.Router.Output_loop.pkts_out - out0
  in
  let ev = Sim.Engine.events_scheduled r.Router.engine - ev0 in
  let pkts = float_of_int (max 1 out) in
  ( Sim.Gc_stats.minor_words gc /. pkts,
    Sim.Gc_stats.promoted_words gc /. pkts,
    float_of_int ev /. pkts,
    Sim.Gc_stats.minor_collections gc )

let run () =
  Report.section "Allocation budget (steady-state minor words per packet)";
  (* Same minor heap the perf run uses: 8M words, so the measured phase
     sees a realistic (low) collection count. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let rng_w = rng_row () in
  let gen_w = gen_row () in
  let susp_w = suspension_row () in
  (* Two repetitions: allocation counts are exact, so the spread rows
     (required by gate.py --refresh) only confirm run-to-run identity. *)
  let w1, p1, e1, _gcs1 = router_alloc () in
  let w2, p2, e2, gcs2 = router_alloc () in
  let w = Float.min w1 w2 and p = Float.min p1 p2 in
  let e = Float.min e1 e2 in
  let spread a b =
    let hi = Float.max a b in
    if hi <= 0. then 0. else (hi -. Float.min a b) /. hi
  in
  Report.info "substrate: %.2f w/rng-draw, %.1f w/generated-frame, %.1f \
               w/suspension"
    rng_w gen_w susp_w;
  Report.info "router: %.1f minor w/pkt, %.1f promoted w/pkt, %.2f \
               events/pkt, %d minor collections (measured phase)"
    w p e gcs2;
  (* paper = the budget/reference, measured = this run; CI additionally
     ratio-gates these rows against the committed baseline. *)
  Report.row ~unit_:"w/call" ~name:"rng draw words" ~paper:0.0 ~measured:rng_w;
  Report.row ~unit_:"w/frame" ~name:"generator frame words" ~paper:8.0
    ~measured:gen_w;
  Report.row ~unit_:"w/event" ~name:"suspension words" ~paper:20.0
    ~measured:susp_w;
  Report.row ~unit_:"w/pkt" ~name:"minor words/packet"
    ~paper:words_per_packet_ceiling ~measured:w;
  Report.row ~unit_:"w/pkt" ~name:"promoted words/packet" ~paper:10.0
    ~measured:p;
  Report.row ~unit_:"ev/pkt" ~name:"events/packet" ~paper:10.0 ~measured:e;
  Report.row ~unit_:"frac" ~name:"run spread (minor words)" ~paper:0.10
    ~measured:(spread w1 w2);
  Report.row ~unit_:"frac" ~name:"run spread (events)" ~paper:0.10
    ~measured:(spread e1 e2);
  if w > words_per_packet_ceiling then begin
    incr failures;
    Report.info "FAIL: %.1f minor words/packet exceeds the %.0f ceiling" w
      words_per_packet_ceiling
  end
