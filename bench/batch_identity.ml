(* The relaxed equivalence gate behind the per-batch activation hot
   path: a batched run (activation coalescing on, the default) and a
   fully event-granular run must produce bit-identical per-port
   delivery schedules — same packets, same ports, same order, same
   departure timestamps.

   This harness replays every scenario of
   {!Fault.Cluster_scenario.matrix} through the 4-member cluster at
   batch capacities {1, 16} and at {1, 2} worker domains, runs each
   configuration with coalescing on and off, and compares every
   member's per-port delivery digests between the two arms.  Any
   mismatch increments [failures], which makes the harness exit nonzero
   after the JSON evidence is written: a batching bug that shifts or
   reorders delivered traffic cannot land as a "perf tradeoff".

   Everything here is simulated-time and therefore deterministic; there
   is nothing to calibrate and no threshold — the row gated by CI is a
   mismatch count that must be zero. *)

let failures = ref 0

let members = 4
let ports_per_member = 4
let seed = 11
let batch_capacities = [ 1; 16 ]
let domain_counts = [ 1; 2 ]

let spawn_sources c =
  let n_global = members * ports_per_member in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  for g = 0 to n_global - 1 do
    let m, _ = Cluster.member_of_global_port c g in
    let pool = Option.get (Cluster.frame_pool c m) in
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate (Cluster.engine_of_global_port c g)
         ~name:(Printf.sprintf "gen%d" g)
         ~mbps:100. ~frame_len:64
         ~gen:
           (Workload.Mix.udp_uniform ~pool ~rng ~n_subnets:n_global
              ~frame_len:64 ())
         ~offer:(fun f ->
           let ok = Cluster.inject c ~global_port:g f in
           if not ok then Packet.Frame_pool.give pool f;
           ok)
         ())
  done

(* One arm: every member's per-port delivery digests, concatenated in
   member order. *)
let digest_run spec ~batch_mps ~domains ~coalesce =
  let faults =
    match Fault.Cluster_scenario.parse spec with
    | Ok s -> Fault.Cluster_scenario.with_seed s (Int64.of_int seed)
    | Error msg -> failwith ("batch_identity: bad spec " ^ spec ^ ": " ^ msg)
  in
  let config = { Router.default_config with Router.batch_mps } in
  let c =
    Cluster.create ~members ~ports_per_member ~domains ~config ~faults
      ~frame_pool:true ()
  in
  Array.iter Router.enable_delivery_digest c.Cluster.members;
  if not coalesce then
    Array.iter (fun e -> Sim.Engine.set_coalescing e false) c.Cluster.engines;
  spawn_sources c;
  (* Multiple barriers so crash/restart windows are crossed mid-run,
     exactly as the cluster fault matrix does. *)
  for _ = 1 to 3 do
    Cluster.run_for c ~us:500.
  done;
  (match Cluster.violations c with
  | [] -> ()
  | (src, v) :: _ ->
      incr failures;
      Report.info
        "  INVARIANT VIOLATION [%s batch=%d domains=%d coalesce=%b]: [%s] \
         %s: %s"
        spec batch_mps domains coalesce src v.Fault.Invariant.name
        v.Fault.Invariant.detail);
  Array.to_list
    (Array.map
       (fun m -> Array.to_list (Router.port_delivery_digests m))
       c.Cluster.members)

let run () =
  Report.section
    "Batched vs event-granular execution: per-port delivery-schedule \
     identity";
  let comparisons = ref 0 in
  let mismatches = ref 0 in
  let results = ref [] in
  List.iter
    (fun (spec, what) ->
      List.iter
        (fun batch_mps ->
          List.iter
            (fun domains ->
              let batched =
                digest_run spec ~batch_mps ~domains ~coalesce:true
              in
              let granular =
                digest_run spec ~batch_mps ~domains ~coalesce:false
              in
              incr comparisons;
              let same = batched = granular in
              if not same then begin
                incr mismatches;
                incr failures;
                Report.info
                  "  IDENTITY FAILURE [%s batch=%d domains=%d]: delivery \
                   schedules diverge (%s)"
                  spec batch_mps domains what;
                List.iteri
                  (fun m (b, g) ->
                    if b <> g then
                      Report.info "    member %d: batched %s, granular %s" m
                        (String.concat "," b) (String.concat "," g))
                  (List.combine batched granular)
              end;
              results :=
                ( Printf.sprintf "%s batch=%d domains=%d" spec batch_mps
                    domains,
                  Telemetry.Json.Bool same )
                :: !results)
            domain_counts)
        batch_capacities)
    Fault.Cluster_scenario.matrix;
  Report.info "%d scenario/batch/domain combinations compared"
    !comparisons;
  Report.row ~unit_:"pairs" ~name:"batched vs granular comparisons"
    ~paper:
      (float_of_int
         (List.length Fault.Cluster_scenario.matrix
         * List.length batch_capacities
         * List.length domain_counts))
    ~measured:(float_of_int !comparisons);
  Report.row ~unit_:"mismatches" ~name:"delivery-schedule mismatches"
    ~paper:0. ~measured:(float_of_int !mismatches);
  Report.attach "batch_identity"
    (Telemetry.Json.Obj
       [
         ("seed", Telemetry.Json.Int seed);
         ("identity", Telemetry.Json.Obj (List.rev !results));
       ])
