(* Multi-field classification at flow scale: the tuple-space engine
   under rule-set growth (10 to 100k rules), Zipf-skewed flow caching,
   10k-operation rule churn, and a classified cluster replay across
   batch capacities and domain counts.

   Evidence, split the way the gate can hold it steady:

   - Deterministic rows (rule/tuple counts, differential divergences,
     probes per miss, flow-cache hit rates, churn staleness, delivered
     frames and identity mismatches — everything derived from seeds and
     simulated time) are identical on every host, so CI gates them both
     ways against the committed BENCH_classifier.json.
   - Wall-clock ns/lookup rows depend on the runner and are archived as
     the ns-per-packet-vs-rules curve, not gated.
   - [failures] makes the harness exit nonzero on any differential
     divergence, stale churn answer, or delivery-schedule mismatch —
     after the JSON evidence is written. *)

open Forwarders

let failures = ref 0
let seed = 90210L
let sizes = [ 10; 100; 1_000; 10_000; 100_000 ]

(* The linear oracle is O(rules) per key; above this it stops being a
   practical cross-check and the 10k-rule result stands for the curve. *)
let differential_cap = 10_000

(* Keys drawn over the same 10.0.0.0/8 space Gen rules cover, so a
   meaningful fraction of lookups actually match something. *)
let gen_key rng =
  let a () =
    Int32.of_int
      ((10 lsl 24)
      lor (Sim.Rng.int rng 16 lsl 16)
      lor (1 + Sim.Rng.int rng 256))
  in
  {
    Packet.Flow.f_src = a ();
    f_src_port = 1024 + Sim.Rng.int rng 64;
    f_dst = a ();
    f_dst_port = (if Sim.Rng.int rng 2 = 0 then 80 else 443);
    f_proto = (if Sim.Rng.int rng 2 = 0 then 6 else 17);
    f_dscp = Sim.Rng.int rng 8 lsl 3;
  }

let of_rules rules =
  let t = Classifier.create () in
  List.iter (Classifier.add t) rules;
  t

let same_rule a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Classifier.compare_rule x y = 0
  | _ -> false

(* Best-of-reps wall-clock ns per lookup (same throttling hedge as
   bench/fib.ml). *)
let time_ns ?(reps = 2) ~iters t keys =
  let k = Array.length keys in
  for i = 0 to k - 1 do
    ignore (Classifier.lookup t keys.(i))
  done;
  let one () =
    let t0 = Sys.time () in
    let i = ref 0 in
    for _ = 1 to iters do
      ignore (Classifier.lookup t keys.(!i));
      incr i;
      if !i = k then i := 0
    done;
    (Sys.time () -. t0) *. 1e9 /. float_of_int iters
  in
  let best = ref (one ()) in
  for _ = 2 to reps do
    let ns = one () in
    if ns < !best then best := ns
  done;
  !best

(* --- rule-set scale curve -------------------------------------------- *)

let scale_curve () =
  List.iter
    (fun n ->
      let rng = Sim.Rng.create seed in
      let rules = Classifier.Gen.rules ~rng ~n () in
      let t = of_rules rules in
      Report.row ~unit_:"rules"
        ~name:(Printf.sprintf "rules installed [n=%d]" n)
        ~paper:(float_of_int n)
        ~measured:(float_of_int (Classifier.n_rules t));
      Report.row ~unit_:"tuples"
        ~name:(Printf.sprintf "tuples [n=%d]" n)
        ~paper:(float_of_int (min n 400))
        ~measured:(float_of_int (Classifier.n_tuples t));
      (* Differential pass on a fixed key set: tuple-space vs the naive
         linear scan.  Deterministic, gated at zero. *)
      let keys = Array.init 5_000 (fun _ -> gen_key rng) in
      if n <= differential_cap then begin
        let bad = ref 0 in
        Array.iter
          (fun k ->
            if
              not
                (same_rule (Classifier.lookup t k)
                   (Classifier.lookup_linear t k))
            then incr bad)
          keys;
        Report.row ~unit_:"lookups"
          ~name:(Printf.sprintf "differential divergences [n=%d]" n)
          ~paper:0. ~measured:(float_of_int !bad);
        if !bad > 0 then begin
          failures := !failures + !bad;
          Report.info
            "  CLASSIFIER FAILURE: %d divergence(s) vs linear oracle at n=%d"
            !bad n
        end
      end
      else
        Report.info
          "n=%6d: linear oracle skipped above %d rules (O(n) per key); \
           coverage rests on the gated %d-rule differential row"
          n differential_cap differential_cap;
      (* Pruning effectiveness on a cache-cold pass: deterministic. *)
      let t2 = of_rules rules in
      Array.iter (fun k -> ignore (Classifier.lookup t2 k)) keys;
      let ppm =
        float_of_int (Classifier.probes t2)
        /. float_of_int (max 1 (Classifier.cache_misses t2))
      in
      Report.row ~unit_:"probes/miss"
        ~name:(Printf.sprintf "probes per miss [n=%d]" n)
        ~paper:(float_of_int (min n 40))
        ~measured:ppm;
      (* Wall-clock: the miss path (fresh random keys defeat the cache)
         and, separately, how many ns the whole engine costs per packet
         at this rule count.  Host-dependent; archived, not gated. *)
      let iters = if n >= 100_000 then 100_000 else 300_000 in
      let miss_keys = Array.init 8_192 (fun _ -> gen_key rng) in
      let ns = time_ns ~iters t miss_keys in
      Report.info
        "n=%6d: %d tuples, %.1f probes/miss, %5.0f ns/lookup (miss-dominated)"
        n (Classifier.n_tuples t) ppm ns;
      Report.row ~unit_:"ns"
        ~name:(Printf.sprintf "lookup ns [n=%d]" n)
        ~paper:300. ~measured:ns)
    sizes

(* --- Zipf flow-cache sweep ------------------------------------------- *)

let zipf_sweep () =
  List.iter
    (fun s ->
      let rng = Sim.Rng.create seed in
      let rules = Classifier.Gen.rules ~rng ~n:10_000 () in
      let t = of_rules rules in
      (* A 20k-flow population probed 200k times with Zipf(s) rank
         popularity — the locality the flow cache exists for. *)
      let population = Array.init 20_000 (fun _ -> gen_key rng) in
      let z =
        Workload.Flows.Zipf.create ~rng ~n:(Array.length population) ~s
      in
      for _ = 1 to 200_000 do
        ignore (Classifier.lookup t population.(Workload.Flows.Zipf.draw z - 1))
      done;
      let hits = Classifier.cache_hits t and misses = Classifier.cache_misses t in
      let rate = 100. *. float_of_int hits /. float_of_int (hits + misses) in
      Report.info
        "zipf s=%.1f: %d hits / %d misses (%.1f%% hit), %d cache flushes"
        s hits misses rate (Classifier.cache_flushes t);
      Report.row ~unit_:"%"
        ~name:(Printf.sprintf "flow cache hit rate [zipf s=%.1f]" s)
        ~paper:(if s >= 1.0 then 80. else 45.)
        ~measured:rate;
      (* Wall-clock hit-path cost under the same skew: informational. *)
      let zipf_keys =
        Array.init 65_536 (fun _ ->
            population.(Workload.Flows.Zipf.draw z - 1))
      in
      let ns = time_ns ~iters:300_000 t zipf_keys in
      Report.row ~unit_:"ns"
        ~name:(Printf.sprintf "lookup ns [zipf s=%.1f, n=10000]" s)
        ~paper:100. ~measured:ns)
    [ 0.8; 1.1 ]

(* --- churn fuzz ------------------------------------------------------- *)

let churn_fuzz () =
  let ops = 10_000 in
  let rng = Sim.Rng.create seed in
  let pool = Array.of_list (Classifier.Gen.rules ~rng ~n:500 ()) in
  let key_pool = Array.init 64 (fun _ -> gen_key rng) in
  let t = Classifier.create ~cache_capacity:512 () in
  let live = Hashtbl.create 128 in
  let oracle k =
    Hashtbl.fold
      (fun r () best ->
        if Classifier.matches r k then
          match best with
          | None -> Some r
          | Some b -> if Classifier.compare_rule r b < 0 then Some r else best
        else best)
      live None
  in
  let stale = ref 0 and lookups = ref 0 and adds = ref 0 and removes = ref 0 in
  for _ = 1 to ops do
    match Sim.Rng.int rng 4 with
    | 0 ->
        let r = Sim.Rng.pick rng pool in
        Classifier.add t r;
        Hashtbl.replace live r ();
        incr adds
    | 1 ->
        let r = Sim.Rng.pick rng pool in
        if Classifier.remove t r then Hashtbl.remove live r;
        incr removes
    | _ ->
        let k = Sim.Rng.pick rng key_pool in
        incr lookups;
        if not (same_rule (Classifier.lookup t k) (oracle k)) then incr stale
  done;
  Report.info
    "churn: %d adds, %d removes, %d audited lookups (%d cache hits), %d \
     stale answers"
    !adds !removes !lookups (Classifier.cache_hits t) !stale;
  Report.row ~unit_:"ops" ~name:"churn ops audited" ~paper:10_000.
    ~measured:(float_of_int ops);
  Report.row ~unit_:"lookups" ~name:"churn stale answers" ~paper:0.
    ~measured:(float_of_int !stale);
  Report.row ~unit_:"hits" ~name:"churn cache hits audited"
    ~paper:150.
    ~measured:(float_of_int (Classifier.cache_hits t));
  if !stale > 0 then begin
    failures := !failures + !stale;
    Report.info
      "  CLASSIFIER FAILURE: flow cache served %d stale answer(s) under churn"
      !stale
  end;
  if Classifier.cache_hits t = 0 then begin
    incr failures;
    Report.info "  CLASSIFIER FAILURE: churn audit exercised no cache hits"
  end

(* --- classified cluster identity ------------------------------------- *)

let members = 4
let ports_per_member = 4

(* One arm: drive the 4-member cluster with the flows workload and the
   classifier installed on every member; return every member's per-port
   delivery digests. *)
let digest_run ~batch_mps ~domains ~coalesce =
  let config = { Router.default_config with Router.batch_mps } in
  let c =
    Cluster.create ~members ~ports_per_member ~domains ~config
      ~frame_pool:true ()
  in
  Array.iter Router.enable_delivery_digest c.Cluster.members;
  if not coalesce then
    Array.iter (fun e -> Sim.Engine.set_coalescing e false) c.Cluster.engines;
  Array.iter
    (fun (r : Router.t) ->
      let cls = Classifier.create () in
      List.iter (Classifier.add cls)
        (Classifier.Gen.rules
           ~rng:(Sim.Rng.create seed)
           ~n:256 ~n_ports:ports_per_member ());
      match
        Router.Iface.install r.Router.iface ~key:Packet.Flow.All
          ~fwdr:(Classifier.forwarder ~cm:config.Router.cm cls)
          ~where:Router.Iface.ME ()
      with
      | Ok _ -> ()
      | Error es ->
          failwith ("classifier_bench: install: " ^ String.concat "; " es))
    c.Cluster.members;
  let n_global = members * ports_per_member in
  let rng = Sim.Rng.create seed in
  for g = 0 to n_global - 1 do
    let m, _ = Cluster.member_of_global_port c g in
    let pool = Option.get (Cluster.frame_pool c m) in
    let rng = Sim.Rng.split rng in
    let fl =
      Workload.Flows.create ~pool ~rng
        {
          Workload.Flows.default with
          pps = 130_000.;
          n_hosts = 65_536;
          n_subnets = n_global;
        }
    in
    ignore
      (Workload.Flows.spawn fl
         (Cluster.engine_of_global_port c g)
         ~name:(Printf.sprintf "gen%d" g)
         ~offer:(fun f ->
           let ok = Cluster.inject c ~global_port:g f in
           if not ok then Packet.Frame_pool.give pool f;
           ok))
  done;
  for _ = 1 to 3 do
    Cluster.run_for c ~us:400.
  done;
  (match Cluster.violations c with
  | [] -> ()
  | (src, v) :: _ ->
      incr failures;
      Report.info
        "  CLASSIFIER FAILURE: invariant violation [batch=%d domains=%d \
         coalesce=%b]: [%s] %s: %s"
        batch_mps domains coalesce src v.Fault.Invariant.name
        v.Fault.Invariant.detail);
  let digests =
    Array.to_list c.Cluster.members
    |> List.concat_map (fun m -> Array.to_list (Router.port_delivery_digests m))
  in
  (Cluster.delivered_total c, digests)

let classified_identity () =
  let mismatches = ref 0 in
  List.iter
    (fun batch_mps ->
      List.iter
        (fun domains ->
          let d_on, g_on = digest_run ~batch_mps ~domains ~coalesce:true in
          let d_off, g_off = digest_run ~batch_mps ~domains ~coalesce:false in
          let ok = d_on = d_off && g_on = g_off in
          Report.info
            "batch=%2d domains=%d: delivered %d coalesced / %d granular — %s"
            batch_mps domains d_on d_off
            (if ok then "identical schedules" else "MISMATCH");
          if not ok then incr mismatches;
          Report.row ~unit_:"frames"
            ~name:
              (Printf.sprintf "classified delivered [batch=%d domains=%d]"
                 batch_mps domains)
            ~paper:1_000. ~measured:(float_of_int d_on))
        [ 1; 2 ])
    [ 1; 16 ];
  Report.row ~unit_:"configs" ~name:"classified identity mismatches"
    ~paper:0. ~measured:(float_of_int !mismatches);
  if !mismatches > 0 then begin
    failures := !failures + !mismatches;
    Report.info
      "  CLASSIFIER FAILURE: %d classified delivery-schedule mismatch(es)"
      !mismatches
  end

let run () =
  Report.section
    "Tuple-space classifier: rule-set scale, 10 to 100k rules (extension)";
  scale_curve ();
  Report.section "Flow cache under Zipf-skewed traffic";
  zipf_sweep ();
  Report.section "Rule churn with staleness audit (10k operations)";
  churn_fuzz ();
  Report.section
    "Classified cluster: delivery-schedule identity, batch {1,16} x domains \
     {1,2}";
  classified_identity ()
