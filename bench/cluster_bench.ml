(* Extension bench: the section 6 cluster, quantified.

   Four Pentium/IXP pairs, 32 external 100 Mbps ports, a Gigabit fabric.
   All-to-all traffic at external line rate: 3/4 of it crosses the fabric
   and is forwarded twice.  The paper's stated cost — "budget RI capacity
   to service packets arriving on the internal link, leaving fewer cycles
   for the VRP" — shows up as the shrunken per-MP budget. *)

let run () =
  Report.section "Cluster of 4 Pentium/IXP pairs (section 6, future work)";
  let c = Cluster.create ~members:4 () in
  let rng = Sim.Rng.create 23L in
  let n_global = 32 in
  let offered = Sim.Stats.Counter.create "offered" in
  for g = 0 to n_global - 1 do
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate (Cluster.engine_of_global_port c g)
         ~name:(Printf.sprintf "ext%d" g)
         ~mbps:100. ~frame_len:64
         ~gen:(fun i ->
           ignore i;
           Sim.Stats.Counter.incr offered;
           Packet.Build.udp
             ~src:(Workload.Mix.subnet_addr ~subnet:(100 + g) ~host:1)
             ~dst:
               (Workload.Mix.subnet_addr
                  ~subnet:(Sim.Rng.int rng n_global)
                  ~host:(1 + Sim.Rng.int rng 50))
             ~src_port:1000 ~dst_port:2000 ())
         ~offer:(fun f -> Cluster.inject c ~global_port:g f)
         ())
  done;
  Cluster.run_for c ~us:15_000.;
  let secs = Sim.Engine.seconds (Cluster.time c) in
  let offered_mpps =
    float_of_int (Sim.Stats.Counter.value offered) /. secs /. 1e6
  in
  let delivered_mpps =
    float_of_int (Cluster.delivered_total c) /. secs /. 1e6
  in
  Report.row ~unit_:"Mpps" ~name:"aggregate offered (32 x 100 Mbps)"
    ~paper:(4. *. 1.128) ~measured:offered_mpps;
  Report.row ~unit_:"Mpps" ~name:"aggregate delivered" ~paper:(4. *. 1.128)
    ~measured:delivered_mpps;
  Report.info "fabric: %.3f Mpps crossing (expected ~3/4 of offered = %.3f)"
    (Cluster.internal_pps c /. 1e6)
    (0.75 *. offered_mpps);
  let solo =
    Router.Capacity.vrp_budget Router.Capacity.default ~contexts:16
      ~line_rate_pps:1.128e6 ~hashes:3
  in
  let clustered = Cluster.vrp_budget_with_internal_link c ~line_rate_pps:4.512e6 in
  Report.info
    "VRP budget per MP: standalone member %d cycles -> cluster member %d \
     cycles (the internal link's bite)"
    solo.Router.Vrp.b_cycles clustered.Router.Vrp.b_cycles
