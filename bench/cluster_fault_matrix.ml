(* Cluster fault matrix: drive the section 6 multi-member cluster through
   link-damage and member-crash scenarios across seeds, auditing the
   cluster-level invariants (fabric conservation, no escape to a crashed
   member, membership state/convergence, no invalid escape) and every
   member's own registry at each barrier.  Paper value for every row is 0
   violations: cluster faults cost packets, never consistency.  Violating
   combos print a repro command, and [failures] makes the harness exit
   nonzero so CI gates on it. *)

let failures = ref 0

let seeds = [ 11; 42 ]

let scenarios = Fault.Cluster_scenario.matrix

let members = 4
let ports_per_member = 4

type outcome = {
  counts : Cluster.fabric_counts;
  crash_epochs : int;
  churn_writes : int;
  violations : (string * Fault.Invariant.violation) list;
  delivered : int;
  metrics_md5 : string;
  json : Telemetry.Json.t;
}

let attempt spec ~seed =
  let faults =
    match Fault.Cluster_scenario.parse spec with
    | Ok s -> Fault.Cluster_scenario.with_seed s (Int64.of_int seed)
    | Error msg ->
        failwith ("cluster_fault_matrix: bad spec " ^ spec ^ ": " ^ msg)
  in
  let c =
    Cluster.create ~members ~ports_per_member ~faults ~frame_pool:true ()
  in
  let n_global = members * ports_per_member in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  for g = 0 to n_global - 1 do
    let m, _ = Cluster.member_of_global_port c g in
    let pool = Option.get (Cluster.frame_pool c m) in
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate (Cluster.engine_of_global_port c g)
         ~name:(Printf.sprintf "gen%d" g)
         ~mbps:100. ~frame_len:64
         ~gen:(Workload.Mix.udp_uniform ~pool ~rng ~n_subnets:n_global
                 ~frame_len:64 ())
         ~offer:(fun f ->
           let ok = Cluster.inject c ~global_port:g f in
           if not ok then Packet.Frame_pool.give pool f;
           ok)
         ())
  done;
  (* Six barriers across 3 ms: damage windows are audited while in force
     and after they end, not only once the cluster has settled. *)
  for _ = 1 to 6 do
    Cluster.run_for c ~us:500.
  done;
  let epochs = ref 0 in
  for m = 0 to members - 1 do
    epochs := !epochs + Cluster.crash_epochs c m
  done;
  let metrics =
    Telemetry.Json.to_string (Cluster.telemetry_snapshot c)
  in
  let md5 = Digest.to_hex (Digest.string metrics) in
  {
    counts = Cluster.fabric_counts c;
    crash_epochs = !epochs;
    churn_writes = Cluster.route_churn_writes c;
    violations = Cluster.violations c;
    delivered = Cluster.delivered_total c;
    metrics_md5 = md5;
    json =
      Telemetry.Json.Obj
        [
          ("scenario", Fault.Cluster_scenario.to_json faults);
          ("invariants", Fault.Invariant.to_json c.Cluster.invariants);
          ( "fabric",
            Telemetry.Json.Obj
              (let fc = Cluster.fabric_counts c in
               [
                 ("offered", Telemetry.Json.Int fc.Cluster.offered);
                 ("delivered", Telemetry.Json.Int fc.Cluster.delivered);
                 ("dropped_link", Telemetry.Json.Int fc.Cluster.dropped_link);
                 ("dropped_down", Telemetry.Json.Int fc.Cluster.dropped_down);
                 ( "dropped_unknown",
                   Telemetry.Json.Int fc.Cluster.dropped_unknown );
                 ( "dropped_queue",
                   Telemetry.Json.Int fc.Cluster.dropped_queue );
                 ("rx_refused", Telemetry.Json.Int fc.Cluster.rx_refused);
                 ("corrupted", Telemetry.Json.Int fc.Cluster.corrupted);
                 ("stalled", Telemetry.Json.Int fc.Cluster.stalled);
                 ("in_flight", Telemetry.Json.Int fc.Cluster.in_flight);
                 ("queued", Telemetry.Json.Int fc.Cluster.queued);
                 ("bp_refused", Telemetry.Json.Int fc.Cluster.bp_refused);
               ]) );
          ("crash_epochs", Telemetry.Json.Int !epochs);
          ( "route_churn_writes",
            Telemetry.Json.Int (Cluster.route_churn_writes c) );
          ( "recovery_latency_us",
            Telemetry.Json.List
              (List.init members (fun m ->
                   match Cluster.recovery_latency_us c m with
                   | None -> Telemetry.Json.Null
                   | Some l -> Telemetry.Json.Float l)) );
          ("metrics_md5", Telemetry.Json.String md5);
        ];
  }

let run () =
  Report.section
    "Cluster fault matrix: member-link damage and crashes vs cluster \
     invariants (seed-replayable)";
  let attachments = ref [] in
  List.iter
    (fun (spec, what) ->
      List.iter
        (fun seed ->
          let o = attempt spec ~seed in
          let n_viol = List.length o.violations in
          let fc = o.counts in
          Report.info
            "%-38s seed %2d: %4d ext, fabric %4d/%4d, drops \
             link/down/unk %d/%d/%d, %d corrupted, %d stalled, %d \
             epoch(s), %d churn write(s), %d violation(s)"
            what seed o.delivered fc.Cluster.delivered fc.Cluster.offered
            fc.Cluster.dropped_link fc.Cluster.dropped_down
            fc.Cluster.dropped_unknown fc.Cluster.corrupted
            fc.Cluster.stalled o.crash_epochs o.churn_writes n_viol;
          let effects =
            fc.Cluster.dropped_link + fc.Cluster.dropped_down
            + fc.Cluster.corrupted + fc.Cluster.stalled + o.crash_epochs
            + o.churn_writes
          in
          if spec <> "none" && effects = 0 then begin
            (* A scenario with no observable effect proves nothing: treat
               it as a matrix failure so an unwired fault path cannot
               pass. *)
            incr failures;
            Report.info "  CLUSTER MATRIX FAILURE: scenario injected nothing"
          end;
          if spec = "none" && effects > 0 then begin
            incr failures;
            Report.info
              "  CLUSTER MATRIX FAILURE: baseline shows fault effects"
          end;
          if n_viol > 0 then begin
            failures := !failures + n_viol;
            List.iter
              (fun (src, (v : Fault.Invariant.violation)) ->
                Report.info "  VIOLATION [%s @ %Ld] %s: %s" src
                  v.Fault.Invariant.at v.Fault.Invariant.name
                  v.Fault.Invariant.detail)
              o.violations;
            Report.info
              "  repro: router_cli cluster --cluster-faults '%s' --seed %d \
               -d 3 --members %d --ports-per-member %d"
              spec seed members ports_per_member
          end;
          Report.row ~unit_:"violations"
            ~name:(Printf.sprintf "violations [%s seed=%d]" spec seed)
            ~paper:0. ~measured:(float_of_int n_viol);
          attachments :=
            (Printf.sprintf "%s seed=%d" spec seed, o.json) :: !attachments)
        seeds)
    scenarios;
  Report.attach "cluster_fault_matrix"
    (Telemetry.Json.Obj (List.rev !attachments));
  Report.row ~unit_:"violations" ~name:"total cluster violations" ~paper:0.
    ~measured:(float_of_int !failures)
