(* Cluster simulator throughput: wall-clock packets per second for the
   4-member cluster at 1, 2 and 4 worker domains, plus the property that
   makes the parallelism admissible at all — a parallel run is
   bit-for-bit identical to a sequential one.

   Two different gates come out of this file:

   - The {e portability} gate mirrors bench/perf.ml: raw pps divided by
     the in-process checksum calibration gives a host-independent score
     for the domains=1 configuration, and CI fails on >15% regression
     against the committed BENCH_cluster_perf.json.  Only domains=1 is
     scored because the parallel speedup depends on how many physical
     cores the host grants (CI containers often grant one), which would
     make a speedup-based gate flap.

   - The {e identity} gate replays every scenario of
     {!Fault.Cluster_scenario.matrix} across seeds sequentially and at
     2 and 4 domains and compares per-member telemetry digests.  Any
     mismatch increments [failures], which makes the harness exit
     nonzero: a lookahead bug cannot land as a "perf tradeoff".

   The measured speedup curve is recorded honestly alongside the host's
   core count ([Domain.recommended_domain_count]); on a multicore host
   the 4-domain row is expected to reach the 1.7x target, on a 1-core
   container it documents the barrier overhead instead. *)

let failures = ref 0

let members = 4
let ports_per_member = 4
let seeds = [ 11; 42 ]
let domain_counts = [ 1; 2; 4 ]

let warmup_us = 1_000.
let measured_us = 10_000.
let reps = 3

(* Baseline measured on the reference container (1 core granted,
   domains=1, best of 3) with the same harness.  As in bench/perf.ml the
   score is pps divided by the same-process checksum calibration, so it
   transfers across hosts well enough for a 15% threshold. *)
let baseline_d1_pps = 25_800.
let baseline_score = 0.0197

let spawn_sources c ~seed =
  let n_global = members * ports_per_member in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  for g = 0 to n_global - 1 do
    let m, _ = Cluster.member_of_global_port c g in
    let pool = Option.get (Cluster.frame_pool c m) in
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate (Cluster.engine_of_global_port c g)
         ~name:(Printf.sprintf "gen%d" g)
         ~mbps:100. ~frame_len:64
         ~gen:(Workload.Mix.udp_uniform ~pool ~rng ~n_subnets:n_global
                 ~frame_len:64 ())
         ~offer:(fun f ->
           let ok = Cluster.inject c ~global_port:g f in
           if not ok then Packet.Frame_pool.give pool f;
           ok)
         ())
  done

(* One timed run: warm up, then measure wall-clock (not CPU) seconds —
   with several domains the CPU clock counts every core and would hide
   the speedup being measured. *)
let measure ~domains () =
  let c = Cluster.create ~members ~ports_per_member ~domains ~frame_pool:true () in
  spawn_sources c ~seed:42;
  Cluster.run_for c ~us:warmup_us;
  let d0 = Cluster.delivered_total c in
  let t0 = Unix.gettimeofday () in
  Cluster.run_for c ~us:measured_us;
  let dt = Unix.gettimeofday () -. t0 in
  let out = Cluster.delivered_total c - d0 in
  if dt <= 0. then infinity else float_of_int out /. dt

let best ~domains () =
  (* Discarded priming run, as in bench/perf.ml: keep cold-start warmth
     out of the reported spread. *)
  ignore (measure ~domains () : float);
  let runs = List.init reps (fun _ -> measure ~domains ()) in
  (List.fold_left max (List.hd runs) (List.tl runs), runs)

(* The identity sweep: the full fault matrix, sequential vs parallel,
   compared member by member. *)
let digest_run spec ~seed ~domains =
  let faults =
    match Fault.Cluster_scenario.parse spec with
    | Ok s -> Fault.Cluster_scenario.with_seed s (Int64.of_int seed)
    | Error msg -> failwith ("cluster_perf: bad spec " ^ spec ^ ": " ^ msg)
  in
  let c =
    Cluster.create ~members ~ports_per_member ~domains ~faults
      ~frame_pool:true ()
  in
  spawn_sources c ~seed;
  (* Multiple barriers so crash/restart windows and their audits are
     crossed mid-run, exactly as the fault matrix does. *)
  for _ = 1 to 3 do
    Cluster.run_for c ~us:500.
  done;
  Array.init members (fun m -> Cluster.member_metrics_md5 c m)

let identity_sweep () =
  let mismatches = ref 0 in
  let results = ref [] in
  List.iter
    (fun (spec, what) ->
      List.iter
        (fun seed ->
          let reference = digest_run spec ~seed ~domains:1 in
          List.iter
            (fun domains ->
              let got = digest_run spec ~seed ~domains in
              let same = got = reference in
              if not same then begin
                incr mismatches;
                incr failures;
                Report.info
                  "  IDENTITY FAILURE [%s seed=%d domains=%d]: member \
                   digests diverge from sequential"
                  spec seed domains;
                Array.iteri
                  (fun m d ->
                    if d <> reference.(m) then
                      Report.info "    member %d: %s (sequential %s)" m d
                        reference.(m))
                  got;
                Report.info
                  "  repro: router_cli cluster --cluster-faults '%s' --seed \
                   %d --domains %d -d 1.5 --members %d --ports-per-member %d"
                  spec seed domains members ports_per_member
              end;
              results :=
                ( Printf.sprintf "%s seed=%d domains=%d" spec seed domains,
                  Telemetry.Json.Bool same )
                :: !results)
            (List.filter (fun d -> d > 1) domain_counts);
          ignore what)
        seeds)
    Fault.Cluster_scenario.matrix;
  (!mismatches, List.rev !results)

let run () =
  Report.section
    "Cluster throughput across domains (conservative lookahead execution)";
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let cores = Domain.recommended_domain_count () in
  Report.info "host grants %d core(s); speedup is core-bound" cores;
  let calib = Perf.calibrate () in
  let curve_runs =
    List.map (fun domains -> (domains, best ~domains ())) domain_counts
  in
  let curve = List.map (fun (d, (b, _)) -> (d, b)) curve_runs in
  let _, d1_runs = List.assoc 1 curve_runs in
  let d1_pps = List.assoc 1 curve in
  let d1_spread = Perf.spread_of d1_runs in
  let score = d1_pps /. calib in
  Report.info "calibration: %.0f checksum/s; normalized score %.4f" calib
    score;
  Report.info "reps (domains=1): %s pps; spread %.1f%%"
    (String.concat ", " (List.map (Printf.sprintf "%.0f") d1_runs))
    (100. *. d1_spread);
  List.iter
    (fun (domains, pps) ->
      Report.row ~unit_:"pps"
        ~name:(Printf.sprintf "wall pps (domains=%d)" domains)
        ~paper:(if domains = 1 then baseline_d1_pps else d1_pps)
        ~measured:pps)
    curve;
  let d4_pps = List.assoc 4 curve in
  (* paper = the acceptance target on a >= 4-core host. *)
  Report.row ~unit_:"x" ~name:"speedup (domains=4 vs 1)" ~paper:1.7
    ~measured:(d4_pps /. d1_pps);
  Report.row ~unit_:"pkt/cksum" ~name:"normalized score (domains=1)"
    ~paper:baseline_score ~measured:score;
  (* paper = the refresh-acceptance ceiling (see bench/perf.ml). *)
  Report.row ~unit_:"frac" ~name:"run spread (domains=1)" ~paper:0.10
    ~measured:d1_spread;
  let mismatches, identity = identity_sweep () in
  Report.row ~unit_:"mismatches"
    ~name:"parallel vs sequential digest mismatches" ~paper:0.
    ~measured:(float_of_int mismatches);
  Report.attach "cluster_perf"
    (Telemetry.Json.Obj
       [
         ("host_cores", Telemetry.Json.Int cores);
         ( "scaling",
           Telemetry.Json.Obj
             (List.map
                (fun (domains, pps) ->
                  (Printf.sprintf "domains=%d" domains, Telemetry.Json.Float pps))
                curve) );
         ("speedup_4v1", Telemetry.Json.Float (d4_pps /. d1_pps));
         ("normalized_score_d1", Telemetry.Json.Float score);
         ("identity", Telemetry.Json.Obj identity);
       ])
