(* Fabric contention (paper section 6 sizing): sweep offered load into
   one switch egress port for every queue discipline and record the
   drop/latency curves, the paper's question being how much buffering
   and service rate the internal link needs once several members
   converge on one destination.

   Twelve external ports (members 1-3) aim all their traffic at member
   0's subnets, so member 0's switch egress queue — drained at 300 Mbps
   — sees offered loads of 0.4x to 1.6x its service rate as the
   per-port rate sweeps 10..40 Mbps.  Everything is simulated time, so
   every number here is deterministic: the committed BENCH_fabric.json
   gates regressions at 15% in CI even though the curves replay
   exactly.

   A queued parallel-identity spot check rides along: the congestion
   chaser scenario replayed at 1, 2 and 4 domains with queueing enabled
   must produce bit-identical per-member digests.  Mismatches (or any
   invariant violation during the sweep) increment [failures], which
   makes the harness exit nonzero. *)

let failures = ref 0

let members = 4
let ports_per_member = 4
let seed = 11
let frame_len = 64
let wire_bits = float_of_int ((frame_len + 20) * 8)
let drain_mbps = 300.
let slices = 3
let slice_us = 400.

let disciplines =
  [
    "taildrop:64@300";
    "red:64:8:32:0.3@300";
    "prio:64:4@300";
    "wrr:64:4,2,1@300";
  ]

let loads = [ 0.1; 0.2; 0.3; 0.4 ]

let queue_cfg spec =
  match Cluster.Fabric_queue.parse spec with
  | Ok c -> c
  | Error m -> failwith ("fabric_contention: bad queue spec " ^ spec ^ ": " ^ m)

(* Members 1..3 fire at member 0's subnets at [load] of line rate; the
   IP precedence field spreads frames across service classes so the
   per-class disciplines have classes to arbitrate. *)
let spawn_converging c ~load =
  let rng = Sim.Rng.create (Int64.of_int seed) in
  for g = ports_per_member to (members * ports_per_member) - 1 do
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate (Cluster.engine_of_global_port c g)
         ~name:(Printf.sprintf "conv%d" g)
         ~mbps:(load *. 100.) ~frame_len
         ~gen:(fun _ ->
           let f =
             Packet.Build.udp
               ~src:(Workload.Mix.subnet_addr ~subnet:(100 + g) ~host:1)
               ~dst:
                 (Workload.Mix.subnet_addr
                    ~subnet:(Sim.Rng.int rng ports_per_member)
                    ~host:2)
               ~src_port:1000 ~dst_port:2000 ()
           in
           Packet.Ipv4.set_tos f (Sim.Rng.int rng 4 lsl 5);
           Packet.Ipv4.fill_cksum f;
           f)
         ~offer:(fun f -> Cluster.inject c ~global_port:g f)
         ())
  done

type sample = {
  served : int;
  drop_frac : float;
  delay_us : float;
  hwm : int;
  pauses : int;
  red_drops : int;
  bp_refused : int;
}

let contention_run spec ~load =
  let fabric_queue = queue_cfg spec in
  let c = Cluster.create ~members ~ports_per_member ~fabric_queue () in
  spawn_converging c ~load;
  for _ = 1 to slices do
    Cluster.run_for c ~us:slice_us
  done;
  if not (Cluster.invariants_ok c) then begin
    incr failures;
    Report.info "  VIOLATION under [%s load=%.1f]; repro: router_cli cluster \
                 --fabric-queue '%s' --seed %d -d %g"
      spec load spec seed
      (float_of_int slices *. slice_us /. 1000.)
  end;
  let q = c.Cluster.in_queues.(0) in
  let module Fq = Cluster.Fabric_queue in
  let offered_q = Fq.enqueued q + Fq.dropped q in
  let served = Fq.serviced q in
  let fc = Cluster.fabric_counts c in
  {
    served;
    drop_frac =
      (if offered_q = 0 then 0.
       else float_of_int (Fq.dropped q) /. float_of_int offered_q);
    delay_us =
      (if served = 0 then 0.
       else float_of_int (Fq.delay_ps_total q) /. float_of_int served /. 1e6);
    hwm = Fq.hwm q;
    pauses = Fq.pauses q;
    red_drops = Fq.dropped_red q;
    bp_refused = fc.Cluster.bp_refused;
  }

(* The queued parallel-identity spot check, mirroring the test-suite
   sweep on the scenario built for it. *)
let identity_spec = "link_stall:1:200:500:40;link_drop:1:700:600:0.6"

let digest_run ~domains =
  let faults =
    match Fault.Cluster_scenario.parse identity_spec with
    | Ok s -> Fault.Cluster_scenario.with_seed s (Int64.of_int seed)
    | Error msg -> failwith ("fabric_contention: bad spec: " ^ msg)
  in
  let c =
    Cluster.create ~members ~ports_per_member ~domains ~faults
      ~frame_pool:true
      ~fabric_queue:(queue_cfg "red:24:6:18:0.5@300")
      ()
  in
  let n_global = members * ports_per_member in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  for g = 0 to n_global - 1 do
    let m, _ = Cluster.member_of_global_port c g in
    let pool = Option.get (Cluster.frame_pool c m) in
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate (Cluster.engine_of_global_port c g)
         ~name:(Printf.sprintf "gen%d" g)
         ~mbps:100. ~frame_len
         ~gen:(Workload.Mix.udp_uniform ~pool ~rng ~n_subnets:n_global
                 ~frame_len ())
         ~offer:(fun f ->
           let ok = Cluster.inject c ~global_port:g f in
           if not ok then Packet.Frame_pool.give pool f;
           ok)
         ())
  done;
  for _ = 1 to 3 do
    Cluster.run_for c ~us:500.
  done;
  Array.init members (fun m -> Cluster.member_metrics_md5 c m)

let run () =
  Report.section
    "Fabric contention: offered-load sweep per queue discipline (section 6 \
     sizing)";
  let duration_s = float_of_int slices *. slice_us *. 1e-6 in
  let service_us = wire_bits /. drain_mbps in
  let attachments = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun load ->
          let s = contention_run spec ~load in
          let offered_mbps =
            float_of_int ((members - 1) * ports_per_member) *. load *. 100.
          in
          let u = offered_mbps /. drain_mbps in
          let served_mbps =
            float_of_int s.served *. wire_bits /. duration_s /. 1e6
          in
          Report.info
            "%-22s load %.1f (u=%.2f): served %5.1f Mbps, drop %5.1f%%, \
             delay %6.1f us, hwm %2d, %d pause(s), %d RED, %d refused"
            spec load u served_mbps (100. *. s.drop_frac) s.delay_us s.hwm
            s.pauses s.red_drops s.bp_refused;
          Report.row ~unit_:"Mbps"
            ~name:(Printf.sprintf "served [%s load=%.1f]" spec load)
            ~paper:(Float.min offered_mbps drain_mbps)
            ~measured:served_mbps;
          Report.row ~unit_:"frac"
            ~name:(Printf.sprintf "drop fraction [%s load=%.1f]" spec load)
            ~paper:(Float.max 0. (1. -. (1. /. u)))
            ~measured:s.drop_frac;
          (* paper delay: one service time, plus M/D/1-ish queueing below
             saturation or half the buffer above it — a rough target; the
             CI gate compares against the committed baseline, not this. *)
          Report.row ~unit_:"us"
            ~name:(Printf.sprintf "mean delay [%s load=%.1f]" spec load)
            ~paper:
              (service_us
              *. (1.
                 +.
                 if u >= 0.95 then 32. /. 2.
                 else u /. (2. *. (1. -. u))))
            ~measured:s.delay_us;
          attachments :=
            ( Printf.sprintf "%s load=%.1f" spec load,
              Telemetry.Json.Obj
                [
                  ("utilization", Telemetry.Json.Float u);
                  ("served", Telemetry.Json.Int s.served);
                  ("drop_fraction", Telemetry.Json.Float s.drop_frac);
                  ("mean_delay_us", Telemetry.Json.Float s.delay_us);
                  ("queue_hwm", Telemetry.Json.Int s.hwm);
                  ("bp_pauses", Telemetry.Json.Int s.pauses);
                  ("red_drops", Telemetry.Json.Int s.red_drops);
                  ("bp_refused", Telemetry.Json.Int s.bp_refused);
                ] )
            :: !attachments)
        loads)
    disciplines;
  let reference = digest_run ~domains:1 in
  let mismatches =
    List.fold_left
      (fun acc domains ->
        let got = digest_run ~domains in
        if got = reference then acc
        else begin
          incr failures;
          Report.info
            "  IDENTITY FAILURE [%s domains=%d]: queued digests diverge \
             from sequential"
            identity_spec domains;
          acc + 1
        end)
      0 [ 2; 4 ]
  in
  Report.row ~unit_:"mismatches" ~name:"queued parallel identity mismatches"
    ~paper:0. ~measured:(float_of_int mismatches);
  Report.attach "fabric_contention"
    (Telemetry.Json.Obj (List.rev !attachments))
