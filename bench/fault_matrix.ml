(* Fault matrix: drive the full three-level router through the
   fault-injection scenario matrix and audit the router-wide invariants at
   every barrier.  Paper value for every row is 0 violations — the
   robustness claim is that injected faults cost packets, never
   consistency.  Any violating scenario prints its seed and a repro
   command, and [failures] makes the harness exit nonzero so CI gates on
   it. *)

let failures = ref 0

let seed = 42

(* A slice of every scenario's traffic belongs to this Pentium-bound flow:
   without it the host CPU blocks on an empty I2O queue and the pe_crash
   site never gets a chance to fire. *)
let pe_null =
  Router.Forwarder.make ~name:"pe-null" ~code:[] ~state_bytes:0 ~host_cycles:0
    (fun ~state:_ _ ~in_port:_ -> Router.Forwarder.Forward_routed)

let pe_flow =
  {
    Packet.Flow.src_addr = Packet.Ipv4.addr_of_string "10.250.0.1";
    src_port = 5000;
    dst_addr = Packet.Ipv4.addr_of_string "10.0.0.77";
    dst_port = 6000;
  }

let scenarios =
  [
    ("none", "baseline, no faults");
    ("mac_corrupt:0.02", "wire corruption, 1-4 bytes per hit frame");
    ("mac_truncate:0.02", "frames cut short on the wire");
    ("mac_garbage:0.02", "whole frames replaced by noise");
    ("mac_loss:0.02,mac_burst:4", "bursty frame loss");
    ("mem_delay:0.02,mem_delay_cycles:200", "stalled memory operations");
    ("mem_drop:0.01", "memory operations silently dropped");
    ("pool_fail:0.01", "buffer-pool allocation failures");
    ("vrp_overrun:0.01", "forwarders exceeding the VRP budget");
    ("rogue:0.01", "forwarders returning garbage verdicts");
    ("sa_crash:0.01,sa_restart_us:50", "StrongARM crash-and-restart");
    ("pe_crash:0.05,pe_restart_us:50", "Pentium crash-and-restart");
    ( "mac_corrupt:0.01,mac_loss:0.01,mem_delay:0.01,pool_fail:0.005,\
       vrp_overrun:0.005,rogue:0.005,sa_crash:0.002,pe_crash:0.02",
      "combined storm" );
  ]

type outcome = {
  injected : int;
  counts : (string * int) list;
  violations : Fault.Invariant.violation list;
  delivered : int;
  pkts_in : int;
  fault_json : Telemetry.Json.t;
}

let attempt spec =
  let scenario =
    match Fault.Scenario.parse spec with
    | Ok s -> Fault.Scenario.with_seed s (Int64.of_int seed)
    | Error msg -> failwith ("fault_matrix: bad spec " ^ spec ^ ": " ^ msg)
  in
  let config = { Router.default_config with Router.faults = scenario } in
  let r = Router.create ~config () in
  for p = 0 to config.Router.n_ports - 1 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  (match
     Router.Iface.install r.Router.iface ~key:(Packet.Flow.Tuple pe_flow)
       ~fwdr:pe_null ~where:Router.Iface.PE ~expected_pps:20_000. ()
   with
  | Ok _ -> ()
  | Error es -> failwith ("fault_matrix: PE admission: " ^ String.concat ";" es));
  Router.start r;
  let rng = Sim.Rng.create (Int64.of_int seed) in
  for p = 0 to config.Router.n_ports - 1 do
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate r.Router.engine
         ~name:(Printf.sprintf "gen%d" p)
         ~mbps:config.Router.port_mbps ~frame_len:64
         ~gen:
           (Workload.Mix.udp_uniform ~rng
              ~n_subnets:config.Router.n_ports ~frame_len:64 ())
         ~offer:(fun f -> Router.inject r ~port:p f)
         ())
  done;
  ignore
    (Workload.Source.spawn_constant r.Router.engine ~name:"pe-gen"
       ~pps:20_000.
       ~gen:(fun _ ->
         Packet.Build.tcp ~src:pe_flow.Packet.Flow.src_addr
           ~dst:pe_flow.Packet.Flow.dst_addr
           ~src_port:pe_flow.Packet.Flow.src_port
           ~dst_port:pe_flow.Packet.Flow.dst_port ())
       ~offer:(fun f -> Router.inject r ~port:0 f)
       ());
  (* Four barriers: the invariants must hold mid-flight, not only after
     the queues drain. *)
  for _ = 1 to 4 do
    Router.run_for r ~us:500.
  done;
  {
    injected =
      (match r.Router.injector with
      | None -> 0
      | Some inj -> Fault.Injector.total inj);
    counts =
      (match r.Router.injector with
      | None -> []
      | Some inj -> Fault.Injector.counts inj);
    violations = Fault.Invariant.violations r.Router.invariants;
    delivered = Router.delivered_total r;
    pkts_in =
      Sim.Stats.Counter.value r.Router.istats.Router.Input_loop.pkts_in;
    fault_json =
      Telemetry.Json.Obj
        [
          ( "injector",
            match r.Router.injector with
            | None -> Telemetry.Json.Null
            | Some inj -> Fault.Injector.to_json inj );
          ("invariants", Fault.Invariant.to_json r.Router.invariants);
        ];
  }

(* One extra matrix combo for the multi-field classifier: rule churn
   while bursty frame loss damages the wire, with the flows workload on
   every port.  A churn fiber adds and removes rules against a live
   mirror as the router forwards; at each of the four barriers every key
   in a fixed audit set is cross-checked against an oracle over the
   mirror.  Churn under faults may cost packets, never a stale or wrong
   classification — and the router-wide invariants must hold at every
   barrier exactly as in the plain scenarios. *)
let classified_spec = "mac_loss:0.02,mac_burst:4"

let classified_churn () =
  let open Forwarders in
  let scenario =
    match Fault.Scenario.parse classified_spec with
    | Ok s -> Fault.Scenario.with_seed s (Int64.of_int seed)
    | Error msg ->
        failwith ("fault_matrix: bad spec " ^ classified_spec ^ ": " ^ msg)
  in
  let config = { Router.default_config with Router.faults = scenario } in
  let r = Router.create ~config () in
  for p = 0 to config.Router.n_ports - 1 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  let cls = Classifier.create ~cache_capacity:512 () in
  let crng = Sim.Rng.create (Int64.of_int (seed + 7)) in
  let pool =
    Array.of_list
      (Classifier.Gen.rules ~rng:crng ~n:200
         ~n_ports:config.Router.n_ports ())
  in
  let live = Hashtbl.create 64 in
  Array.iteri
    (fun i ru ->
      if i < 64 then begin
        Classifier.add cls ru;
        Hashtbl.replace live ru ()
      end)
    pool;
  (match
     Router.Iface.install r.Router.iface ~key:Packet.Flow.All
       ~fwdr:(Classifier.forwarder ~cm:config.Router.cm cls)
       ~where:Router.Iface.ME ()
   with
  | Ok _ -> ()
  | Error es ->
      failwith ("fault_matrix: classifier admission: " ^ String.concat ";" es));
  Router.start r;
  let writes = ref 0 in
  Sim.Engine.spawn r.Router.engine "classifier-churn" (fun () ->
      let period = Sim.Engine.of_seconds 20e-6 in
      while true do
        Sim.Engine.wait period;
        let ru = Sim.Rng.pick crng pool in
        if Hashtbl.mem live ru then begin
          ignore (Classifier.remove cls ru);
          Hashtbl.remove live ru
        end
        else begin
          Classifier.add cls ru;
          Hashtbl.replace live ru ()
        end;
        incr writes
      done);
  let trng = Sim.Rng.create (Int64.of_int seed) in
  for p = 0 to config.Router.n_ports - 1 do
    let rng = Sim.Rng.split trng in
    let fl =
      Workload.Flows.create ~rng
        {
          Workload.Flows.default with
          pps = 150_000.;
          n_subnets = config.Router.n_ports;
        }
    in
    ignore
      (Workload.Flows.spawn fl r.Router.engine
         ~name:(Printf.sprintf "gen%d" p)
         ~offer:(fun f -> Router.inject r ~port:p f))
  done;
  let krng = Sim.Rng.create (Int64.of_int (seed + 9)) in
  let addr () =
    Packet.Ipv4.addr_of_string
      (Printf.sprintf "10.%d.0.%d" (Sim.Rng.int krng 16)
         (1 + Sim.Rng.int krng 200))
  in
  let keys =
    Array.init 48 (fun _ ->
        {
          Packet.Flow.f_src = addr ();
          f_src_port = 1024 + Sim.Rng.int krng 64;
          f_dst = addr ();
          f_dst_port = (if Sim.Rng.int krng 2 = 0 then 80 else 443);
          f_proto = (if Sim.Rng.int krng 2 = 0 then 6 else 17);
          f_dscp = Sim.Rng.int krng 8 lsl 3;
        })
  in
  let oracle k =
    Hashtbl.fold
      (fun ru () best ->
        if Classifier.matches ru k then
          match best with
          | None -> Some ru
          | Some b ->
              if Classifier.compare_rule ru b < 0 then Some ru else best
        else best)
      live None
  in
  let same a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> Classifier.compare_rule x y = 0
    | _ -> false
  in
  let stale = ref 0 and audited = ref 0 in
  for _ = 1 to 4 do
    Router.run_for r ~us:500.;
    Array.iter
      (fun k ->
        incr audited;
        if not (same (Classifier.lookup cls k) (oracle k)) then incr stale)
      keys
  done;
  let injected =
    match r.Router.injector with
    | None -> 0
    | Some inj -> Fault.Injector.total inj
  in
  let violations = Fault.Invariant.violations r.Router.invariants in
  let n_viol = List.length violations in
  Report.info
    "%-24s %5d injected, %4d delivered, %d rule writes, %d/%d audits stale, \
     %d violation(s)"
    "classifier churn + loss" injected (Router.delivered_total r) !writes
    !stale !audited n_viol;
  Report.info "  classifier: %d rules live, %d cache hits, %d flushes"
    (Classifier.n_rules cls) (Classifier.cache_hits cls)
    (Classifier.cache_flushes cls);
  if injected = 0 then begin
    incr failures;
    Report.info "  FAULT MATRIX FAILURE: scenario injected no faults"
  end;
  if !writes = 0 then begin
    (* Churn that never wrote a rule proves nothing about staleness. *)
    incr failures;
    Report.info "  FAULT MATRIX FAILURE: churn fiber performed no writes"
  end;
  if n_viol > 0 then begin
    failures := !failures + n_viol;
    List.iter
      (fun (v : Fault.Invariant.violation) ->
        Report.info "  VIOLATION [%Ld] %s: %s" v.Fault.Invariant.at
          v.Fault.Invariant.name v.Fault.Invariant.detail)
      violations
  end;
  if !stale > 0 then begin
    failures := !failures + !stale;
    Report.info
      "  FAULT MATRIX FAILURE: %d stale classifier answer(s) under churn"
      !stale
  end;
  Report.row ~unit_:"violations"
    ~name:(Printf.sprintf "violations [classifier churn + %s]" classified_spec)
    ~paper:0. ~measured:(float_of_int n_viol);
  Report.row ~unit_:"lookups" ~name:"classifier stale answers under faults"
    ~paper:0. ~measured:(float_of_int !stale);
  Report.row ~unit_:"writes" ~name:"classifier rule writes under faults"
    ~paper:100. ~measured:(float_of_int !writes)

let run () =
  Report.section
    "Fault matrix: invariants under deterministic injection (seed-replayable)";
  let attachments = ref [] in
  List.iter
    (fun (spec, what) ->
      let o = attempt spec in
      let n_viol = List.length o.violations in
      Report.info "%-24s %5d injected, %4d/%4d pkts delivered/in, %d violation(s)"
        what o.injected o.delivered o.pkts_in n_viol;
      if o.counts <> [] then
        Report.info "  %s"
          (String.concat " "
             (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) o.counts));
      if spec <> "none" && o.injected = 0 then begin
        (* A scenario that injects nothing proves nothing: treat it as a
           matrix failure so a silently unwired fault site cannot pass. *)
        incr failures;
        Report.info "  FAULT MATRIX FAILURE: scenario injected no faults"
      end;
      if n_viol > 0 then begin
        failures := !failures + n_viol;
        List.iter
          (fun (v : Fault.Invariant.violation) ->
            Report.info "  VIOLATION [%Ld] %s: %s" v.Fault.Invariant.at
              v.Fault.Invariant.name v.Fault.Invariant.detail)
          o.violations;
        Report.info "  repro: router_cli run --faults '%s' --seed %d -d 2"
          spec seed
      end;
      Report.row ~unit_:"violations"
        ~name:(Printf.sprintf "violations [%s]" spec)
        ~paper:0. ~measured:(float_of_int n_viol);
      attachments := (spec, o.fault_json) :: !attachments)
    scenarios;
  classified_churn ();
  Report.attach "fault_matrix"
    (Telemetry.Json.Obj (List.rev !attachments));
  Report.row ~unit_:"violations" ~name:"total invariant violations" ~paper:0.
    ~measured:(float_of_int !failures)
