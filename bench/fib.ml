(* Million-route compressed FIB: the poptrie engine against the
   reference binary trie under build, lookup, and churn.

   Three kinds of evidence, matching what the gate can hold steady:

   - Deterministic rows (route counts, structure telemetry, differential
     divergences, RIP convergence measured in *simulated* time) are
     identical on every host, so CI gates them both ways with
     bench/gate.py against the committed BENCH_fib.json.
   - Wall-clock ns/lookup and ns/update rows depend on the host and are
     informational on their own.
   - The acceptance criterion — the compressed engine is at least 5x
     faster than the binary trie at a million routes — is distilled into
     a boolean row ("poptrie >= 5x btrie at 1M", 1.0 or 0.0) that the
     gate compares exactly, so the advantage collapsing fails CI on any
     host without gating raw nanoseconds.  [failures] also makes the
     harness itself exit nonzero on a differential divergence, a stale
     cached next-hop, or a speedup below the floor. *)

let failures = ref 0
let seed = 20010L
let n_ports = 8
let sizes = [ 1_000; 10_000; 100_000; 1_000_000 ]

(* CPE rebuilds expanded stride levels from the stored prefix list on
   every update, so million-route tables are out of reach for it; it
   joins the comparison only up to this size — which is the point the
   update-cost section makes. *)
let cpe_cap = 10_000

let top = 1_000_000

(* Half uniformly random (mostly default-route traffic), half drawn
   under a live prefix — the same mix the differential tests probe. *)
let gen_addrs ~rng base k =
  Array.init k (fun i ->
      if i land 1 = 0 then Sim.Rng.int32 rng
      else Iproute.Gen.hit_addr ~rng base)

(* ns per call of [f] over [addrs], best of [reps] to shed container
   CPU-frequency throttling (same reasoning as bench/perf.ml). *)
let time_ns ?(reps = 2) ~iters f addrs =
  let k = Array.length addrs in
  (* Prime the whole pool: steady-state lookup cost, not first-touch
     (page faults, lazy jump-slot fills) which no per-packet path pays. *)
  for i = 0 to k - 1 do
    ignore (f addrs.(i))
  done;
  let one () =
    let t0 = Sys.time () in
    let hits = ref 0 in
    let i = ref 0 in
    for _ = 1 to iters do
      (match f addrs.(!i) with Some _ -> incr hits | None -> ());
      incr i;
      if !i = k then i := 0
    done;
    let dt = Sys.time () -. t0 in
    ignore !hits;
    dt *. 1e9 /. float_of_int iters
  in
  let best = ref (one ()) in
  for _ = 2 to reps do
    let ns = one () in
    if ns < !best then best := ns
  done;
  !best

let build_pop base =
  let pop = Iproute.Poptrie.create () in
  Array.iter (fun (p, v) -> Iproute.Poptrie.add pop p v) base;
  pop

let build_btrie base =
  Array.fold_left (fun t (p, v) -> Iproute.Btrie.add t p v) Iproute.Btrie.empty
    base

(* Count lookup disagreements (matched prefix or value) between the two
   engines over [addrs].  Zero is the differential-identity row. *)
let divergences pop bt addrs =
  let bad = ref 0 in
  Array.iter
    (fun a ->
      if Iproute.Poptrie.lookup pop a <> Iproute.Btrie.lookup bt a then
        incr bad)
    addrs;
  !bad

let apply_op_pop pop = function
  | Iproute.Gen.Announce (p, v) -> Iproute.Poptrie.add pop p v
  | Iproute.Gen.Withdraw p -> Iproute.Poptrie.remove pop p

let apply_op_btrie bt = function
  | Iproute.Gen.Announce (p, v) -> bt := Iproute.Btrie.add !bt p v
  | Iproute.Gen.Withdraw p -> bt := Iproute.Btrie.remove !bt p

let apply_op_cpe cpe = function
  | Iproute.Gen.Announce (p, v) -> Iproute.Cpe.add cpe p v
  | Iproute.Gen.Withdraw p -> Iproute.Cpe.remove cpe p

(* ns per update applying [ops] via [f], wall-clocked once (updates are
   measured in bulk, so throttling noise amortizes). *)
let time_updates f ops =
  let t0 = Sys.time () in
  Array.iter f ops;
  let dt = Sys.time () -. t0 in
  dt *. 1e9 /. float_of_int (Array.length ops)

(* The RIP segment: a storm of announce/withdraw updates driven through
   the daemon's own [apply] path against a live router with the poptrie
   engine and selective invalidation, while a data-plane fiber keeps
   probing the route cache and cross-checks every cache hit against a
   fresh full lookup.  Everything here advances in simulated time, so
   the convergence rows are bit-deterministic. *)
let rip_segment () =
  let config =
    {
      Router.default_config with
      Router.route_engine = Iproute.Table.Poptrie;
      Router.selective_invalidation = true;
    }
  in
  let r = Router.create ~config () in
  let rip = Control.Rip.create r in
  let rng = Sim.Rng.create seed in
  let base = Iproute.Gen.bgp_table ~rng ~n:20_000 ~n_ports in
  let ops = Iproute.Gen.churn ~rng ~base ~n_ports ~steps:10_000 in
  let end_ps = 2_000_000_000L (* 2000 us *) in
  Sim.Engine.spawn r.Router.engine "fib-rip-storm" (fun () ->
      (* Full-table install burst at t=0 (the daemon rejects refreshes,
         so alternating metrics make every entry a real write)... *)
      Array.iter
        (fun (p, v) ->
          Control.Rip.apply rip ~via_port:0
            { Control.Rip.prefix = p; metric = 1 + (v land 1) })
        base;
      (* ...then paced churn, 10 k updates over the first millisecond. *)
      Array.iter
        (fun op ->
          (match op with
          | Iproute.Gen.Announce (p, v) ->
              Control.Rip.apply rip ~via_port:0
                { Control.Rip.prefix = p; metric = 1 + (v land 1) }
          | Iproute.Gen.Withdraw p ->
              Control.Rip.apply rip ~via_port:0
                {
                  Control.Rip.prefix = p;
                  metric = Control.Rip.infinity_metric;
                });
          Sim.Engine.wait 100_000L)
        ops)
  ;
  let stale = ref 0 and cache_hits = ref 0 and probes = ref 0 in
  Sim.Engine.spawn r.Router.engine "fib-dataplane" (fun () ->
      (* A small recurring flow population (rather than fresh random
         addresses) so probes re-hit warm cache lines — the staleness
         check only means something on the `Hit path. *)
      let rng = Sim.Rng.create 77L in
      let pool =
        Array.init 256 (fun i ->
            if i land 3 = 0 then Sim.Rng.int32 rng
            else Iproute.Gen.hit_addr ~rng base)
      in
      let i = ref 0 in
      while Sim.Engine.time r.Router.engine < end_ps do
        for _ = 1 to 4 do
          let a = pool.(!i land 255) in
          incr i;
          incr probes;
          match Iproute.Table.lookup_cached r.Router.routes a with
          | `Hit nh ->
              incr cache_hits;
              if Iproute.Table.lookup r.Router.routes a <> Some nh then
                incr stale
          | `Miss _ -> ()
        done;
        Sim.Engine.wait 1_000_000L
      done);
  Router.start r;
  Router.run_for r ~us:2_000.;
  let stats = Control.Rip.stats rip in
  let installed =
    Sim.Stats.Counter.value stats.Control.Rip.routes_installed
  in
  let withdrawn =
    Sim.Stats.Counter.value stats.Control.Rip.routes_withdrawn
  in
  let quiet_us = Int64.to_float (Control.Rip.quiet_ps rip) /. 1e6 in
  Report.info
    "rip storm: %d installed, %d withdrawn, %d table writes; %d cache \
     probes (%d hits), %d stale; quiet for %.1f us of simulated time"
    installed withdrawn
    (Control.Rip.table_changes rip)
    !probes !cache_hits !stale quiet_us;
  Report.row ~unit_:"writes" ~name:"rip table writes [storm]" ~paper:30_000.
    ~measured:(float_of_int (Control.Rip.table_changes rip));
  Report.row ~unit_:"routes" ~name:"rip routes at end [storm]" ~paper:20_000.
    ~measured:(float_of_int (Iproute.Table.size r.Router.routes));
  Report.row ~unit_:"lines" ~name:"stale cached nexthops [storm]" ~paper:0.
    ~measured:(float_of_int !stale);
  Report.row ~unit_:"us" ~name:"convergence quiet_us [storm]" ~paper:1_000.
    ~measured:quiet_us;
  Report.row ~unit_:"hits" ~name:"cache hits audited [storm]" ~paper:4_000.
    ~measured:(float_of_int !cache_hits);
  if !stale > 0 then begin
    incr failures;
    Report.info "  FIB FAILURE: route cache served %d stale next-hop(s)"
      !stale
  end;
  if !cache_hits = 0 then begin
    (* A staleness audit that never saw a cache hit proves nothing. *)
    incr failures;
    Report.info "  FIB FAILURE: staleness audit exercised no cache hits"
  end;
  Report.attach "fib_rip" (Telemetry.Registry.snapshot r.Router.telemetry)

let run () =
  Report.section
    "Compressed FIB: poptrie vs binary trie, 1 k to 1 M routes (extension)";
  List.iter
    (fun n ->
      let rng = Sim.Rng.create seed in
      let base = Iproute.Gen.bgp_table ~rng ~n ~n_ports in
      let t0 = Sys.time () in
      let pop = build_pop base in
      let t_pop = Sys.time () -. t0 in
      let t0 = Sys.time () in
      let bt = build_btrie base in
      let t_bt = Sys.time () -. t0 in
      let addrs = gen_addrs ~rng base 20_000 in
      let bad = divergences pop bt addrs in
      let iters = if n >= top then 200_000 else 400_000 in
      let pop_ns =
        time_ns ~iters (fun a -> Iproute.Poptrie.lookup pop a) addrs
      in
      let bt_ns = time_ns ~iters (fun a -> Iproute.Btrie.lookup bt a) addrs in
      Report.info
        "n=%7d: built poptrie %.2fs / btrie %.2fs; %d nodes, %.1f B/route; \
         lookup %5.0f ns poptrie, %6.0f ns btrie (%.1fx)"
        n t_pop t_bt
        (Iproute.Poptrie.node_count pop)
        (float_of_int (8 * Iproute.Poptrie.memory_words pop) /. float_of_int n)
        pop_ns bt_ns (bt_ns /. pop_ns);
      Report.row ~unit_:"routes"
        ~name:(Printf.sprintf "routes built [n=%d]" n)
        ~paper:(float_of_int n)
        ~measured:(float_of_int (Iproute.Poptrie.size pop));
      Report.row ~unit_:"lookups"
        ~name:(Printf.sprintf "lookup divergences [n=%d]" n)
        ~paper:0. ~measured:(float_of_int bad);
      Report.row ~unit_:"ns"
        ~name:(Printf.sprintf "poptrie lookup ns [n=%d]" n)
        ~paper:100. ~measured:pop_ns;
      Report.row ~unit_:"ns"
        ~name:(Printf.sprintf "btrie lookup ns [n=%d]" n)
        ~paper:100. ~measured:bt_ns;
      if n <= cpe_cap then begin
        let cpe = Iproute.Cpe.build (Array.to_list base) in
        let cpe_ns =
          time_ns ~iters (fun a -> Iproute.Cpe.lookup cpe a) addrs
        in
        Report.info "n=%7d: cpe lookup %5.0f ns (%d expanded entries)" n
          cpe_ns
          (Iproute.Cpe.memory_entries cpe);
        Report.row ~unit_:"ns"
          ~name:(Printf.sprintf "cpe lookup ns [n=%d]" n)
          ~paper:100. ~measured:cpe_ns
      end;
      if bad > 0 then begin
        failures := !failures + bad;
        Report.info "  FIB FAILURE: %d lookup divergence(s) at n=%d" bad n
      end;
      if n = top then begin
        (* Structure telemetry: deterministic from the seed, gated. *)
        Report.row ~unit_:"nodes/route"
          ~name:"poptrie nodes per route [n=1000000]" ~paper:1.
          ~measured:
            (float_of_int (Iproute.Poptrie.node_count pop) /. float_of_int n);
        Report.row ~unit_:"B/route" ~name:"poptrie bytes per route [n=1000000]"
          ~paper:64.
          ~measured:
            (float_of_int (8 * Iproute.Poptrie.memory_words pop)
            /. float_of_int n);
        let speedup = bt_ns /. pop_ns in
        Report.row ~unit_:"x"
          ~name:"poptrie lookup speedup vs btrie [n=1000000]" ~paper:5.
          ~measured:speedup;
        Report.row ~unit_:"bool" ~name:"poptrie >= 5x btrie at 1M" ~paper:1.
          ~measured:(if speedup >= 5. then 1. else 0.);
        if speedup < 5. then begin
          incr failures;
          Report.info
            "  FIB FAILURE: poptrie only %.1fx btrie at 1M routes (floor 5x)"
            speedup
        end;
        (* Update cost: the same churn stream applied incrementally to
           both engines, then re-proven identical. *)
        let ops = Iproute.Gen.churn ~rng ~base ~n_ports ~steps:50_000 in
        let pop_up_ns = time_updates (apply_op_pop pop) ops in
        let btr = ref bt in
        let bt_up_ns = time_updates (apply_op_btrie btr) ops in
        let addrs2 = gen_addrs ~rng base 10_000 in
        let bad2 = divergences pop !btr addrs2 in
        Report.info
          "churn 50000 ops at 1M: %4.0f ns/update poptrie, %4.0f ns/update \
           btrie; %d divergences after"
          pop_up_ns bt_up_ns bad2;
        Report.row ~unit_:"ns"
          ~name:"poptrie update ns [n=1000000]" ~paper:1_000.
          ~measured:pop_up_ns;
        Report.row ~unit_:"ns" ~name:"btrie update ns [n=1000000]"
          ~paper:1_000. ~measured:bt_up_ns;
        Report.row ~unit_:"lookups"
          ~name:"churn divergences [n=1000000]" ~paper:0.
          ~measured:(float_of_int bad2);
        if bad2 > 0 then begin
          failures := !failures + bad2;
          Report.info
            "  FIB FAILURE: %d divergence(s) after churn at n=1000000" bad2
        end
      end)
    sizes;
  (* CPE's update cost at its own ceiling, for the vs-Cpe comparison. *)
  let rng = Sim.Rng.create seed in
  let base = Iproute.Gen.bgp_table ~rng ~n:cpe_cap ~n_ports in
  let cpe = Iproute.Cpe.build (Array.to_list base) in
  let ops = Iproute.Gen.churn ~rng ~base ~n_ports ~steps:300 in
  let cpe_up_ns = time_updates (apply_op_cpe cpe) ops in
  Report.info "churn 300 ops at %d: %.0f us/update cpe" cpe_cap
    (cpe_up_ns /. 1e3);
  Report.row ~unit_:"ns"
    ~name:(Printf.sprintf "cpe update ns [n=%d]" cpe_cap)
    ~paper:1_000. ~measured:cpe_up_ns;
  Report.section
    "RIP churn against the live poptrie table (simulated time)";
  rip_segment ()
