(* Figure 7: maximum packet rates achievable by the output and input
   processes running independently, swept over MicroEngine contexts, using
   the minimum number of engines per point (the "dent" in the paper's
   curves comes from that packing). *)

open Router.Fixed_infra

(* [telemetry_at] instruments the sweep point with that many contexts and
   attaches its snapshot to the experiment (per-MicroEngine gauges for
   BENCH.json; the other points run bare). *)
let sweep ?telemetry_at stage =
  let series =
    Sim.Stats.Series.create
      ~name:
        (match stage with
        | Input_only -> "Figure 7 (input only)"
        | Output_only -> "Figure 7 (output only)"
        | Both -> "Figure 7 (both)")
      ~x_label:"contexts" ~y_label:"Mpps"
  in
  List.iter
    (fun n ->
      let cfg =
        match stage with
        | Input_only -> { default with stage; n_input_contexts = n }
        | Output_only | Both -> { default with stage; n_output_contexts = n }
      in
      let telemetry =
        match telemetry_at with
        | Some m when m = n -> Some (Telemetry.Registry.create ())
        | _ -> None
      in
      let r = run ?telemetry cfg in
      Option.iter
        (fun reg ->
          Report.attach "telemetry"
            (Telemetry.Registry.snapshot reg))
        telemetry;
      let y = match stage with Input_only -> r.in_mpps | _ -> r.out_mpps in
      Sim.Stats.Series.add series ~x:(float_of_int n) ~y)
    [ 1; 2; 4; 8; 12; 16; 20; 24 ];
  series

let run () =
  Report.section "Figure 7: rate vs contexts (independent stages)";
  let input = sweep ~telemetry_at:16 Input_only in
  Report.series input;
  Report.info
    "paper: input benefits very little beyond 16 contexts (serialized DMA)";
  let knee =
    match
      ( List.assoc_opt 16. (Sim.Stats.Series.points input),
        List.assoc_opt 24. (Sim.Stats.Series.points input) )
    with
    | Some a, Some b when a > 0. -> (b -. a) /. a
    | _ -> nan
  in
  Report.info "measured gain from 16 to 24 input contexts: %+.1f%%"
    (100. *. knee);
  let output = sweep Output_only in
  Report.series output;
  Report.info "paper: output scales almost perfectly with added engines";
  match
    ( List.assoc_opt 8. (Sim.Stats.Series.points output),
      List.assoc_opt 16. (Sim.Stats.Series.points output) )
  with
  | Some a, Some b when a > 0. ->
      Report.info "measured output scaling 8 -> 16 contexts: x%.2f" (b /. a)
  | _ -> ()
