#!/usr/bin/env python3
"""Regression gate for npr-bench/1 JSON files.

Validates the schema of both files, selects rows of one experiment by
exact name and/or prefix, and fails (exit 1) when any selected row's
measured value moved outside [min-ratio, max-ratio] relative to the
committed baseline.  A row at 0 in both files passes; a row at 0 in
only one of them fails.  Rows present in the baseline but missing from
the current run (or vice versa) fail: a renamed row must be re-baselined
deliberately, not silently dropped from the gate.

Used by CI for the perf, cluster-perf and fabric-contention jobs so the
threshold logic lives in one place instead of three inline scripts.

A second mode, --refresh, validates a freshly measured file as a *new*
committed baseline instead of comparing it to one: the experiment must
carry "run spread" rows (the max-min fraction across its best-of-N
repetitions, emitted by bench/perf.ml and bench/cluster_perf.ml), and
the refresh is rejected when any spread exceeds --max-spread (default
10%).  A baseline captured while the host was throttling would make
every future gate comparison meaningless; this refuses to commit one.
Spread rows are never ratio-gated in compare mode — the spread of a
noisy quantity is itself noisy — but their presence is still subject to
the row-symmetry check like any other row.
"""

import argparse
import json
import sys


def load(path, experiment):
    with open(path) as f:
        d = json.load(f)
    if d.get("schema") != "npr-bench/1":
        sys.exit(f"{path}: bad schema {d.get('schema')!r}")
    exps = [e for e in d.get("experiments", []) if e.get("name") == experiment]
    if len(exps) != 1:
        sys.exit(f"{path}: expected exactly one {experiment!r} experiment, "
                 f"found {len(exps)}")
    rows = exps[0].get("rows", [])
    if not rows:
        sys.exit(f"{path}: experiment {experiment!r} has no rows")
    out = {}
    for r in rows:
        name, measured = r.get("name"), r.get("measured")
        if name is None or not isinstance(measured, (int, float)):
            sys.exit(f"{path}: malformed row {r!r}")
        if name in out:
            sys.exit(f"{path}: duplicate row {name!r}")
        out[name] = float(measured)
    return out


SPREAD_PREFIX = "run spread"


def check_refresh(cur, path, experiment, max_spread):
    spreads = {n: v for n, v in cur.items() if n.startswith(SPREAD_PREFIX)}
    if not spreads:
        sys.exit(f"{path}: experiment {experiment!r} has no "
                 f"{SPREAD_PREFIX!r} rows — refresh it with a harness that "
                 "reports per-run variance")
    failures = []
    for name, v in sorted(spreads.items()):
        verdict = "ok   "
        if v > max_spread:
            verdict = "FAIL "
            failures.append(f"{name}: spread {v:.1%} exceeds "
                            f"{max_spread:.0%} — host too noisy to baseline")
        print(f"{verdict} {name}: {v:.1%} (ceiling {max_spread:.0%})")
    if failures:
        print(f"\nrefresh rejected ({len(failures)} failure(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nrefresh accepted: all {len(spreads)} spread row(s) within "
          f"{max_spread:.0%}")


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--baseline", help="committed BENCH json "
                   "(required unless --refresh)")
    p.add_argument("--current", required=True, help="this run's BENCH json")
    p.add_argument("--experiment", required=True, help="experiment name")
    p.add_argument("--row", action="append", default=[],
                   help="gate this exact row name (repeatable)")
    p.add_argument("--row-prefix", action="append", default=[],
                   help="gate every row whose name starts with this prefix")
    p.add_argument("--min-ratio", type=float, default=0.85,
                   help="fail when current/baseline drops below this")
    p.add_argument("--max-ratio", type=float, default=None,
                   help="also fail when current/baseline exceeds this")
    p.add_argument("--refresh", action="store_true",
                   help="validate --current as a new committed baseline: "
                        "reject it when any 'run spread' row exceeds "
                        "--max-spread")
    p.add_argument("--max-spread", type=float, default=0.10,
                   help="refresh rejection threshold for run-spread rows")
    args = p.parse_args()

    cur = load(args.current, args.experiment)
    if args.refresh:
        check_refresh(cur, args.current, args.experiment, args.max_spread)
        return
    if not args.baseline:
        p.error("--baseline is required unless --refresh")
    base = load(args.baseline, args.experiment)

    if args.row or args.row_prefix:
        selected = [n for n in base
                    if n in args.row
                    or any(n.startswith(pre) for pre in args.row_prefix)]
        for n in args.row:
            if n not in base:
                sys.exit(f"{args.baseline}: no row named {n!r}")
    else:
        # Spread rows describe measurement noise, not performance; the
        # ratio of two spreads gates nothing.  --refresh checks them.
        selected = [n for n in base if not n.startswith(SPREAD_PREFIX)]

    failures = []
    for name in selected:
        if name not in cur:
            failures.append(f"{name}: missing from current run")
            continue
        b, c = base[name], cur[name]
        if b == 0.0 and c == 0.0:
            print(f"ok    {name}: 0 == 0")
            continue
        if b == 0.0 or c == 0.0:
            failures.append(f"{name}: baseline {b:g}, current {c:g}")
            continue
        ratio = c / b
        verdict = "ok   "
        if ratio < args.min_ratio:
            failures.append(f"{name}: regressed to {ratio:.2%} of baseline "
                            f"({b:g} -> {c:g})")
            verdict = "FAIL "
        elif args.max_ratio is not None and ratio > args.max_ratio:
            failures.append(f"{name}: moved to {ratio:.2%} of baseline "
                            f"({b:g} -> {c:g})")
            verdict = "FAIL "
        print(f"{verdict} {name}: {b:g} -> {c:g} ({ratio:.2%})")

    extra = [n for n in cur if n not in base] if not (args.row or
                                                     args.row_prefix) else []
    for name in extra:
        failures.append(f"{name}: present in current run but not in baseline "
                        "(re-baseline to admit it)")

    if not selected:
        sys.exit("no rows selected to gate")
    if failures:
        print(f"\n{len(failures)} gate failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(selected)} gated row(s) within "
          f"[{args.min_ratio:g}, {args.max_ratio or float('inf'):g}]")


if __name__ == "__main__":
    main()
