(* The benchmark harness: one entry per table/figure of the paper's
   evaluation (see DESIGN.md's experiment index).  With no experiment
   names every reproduction runs in paper order; pass names to select, or
   "micro" for the Bechamel host-side microbenchmarks.  With [--json FILE]
   the run additionally writes one BENCH.json — paper/measured/ratio rows,
   figure series, and telemetry snapshots — which CI archives as the perf
   trajectory artifact. *)

let experiments =
  [
    ("table1", "Table 1: queueing discipline rates", Table1.run);
    ("table2", "Table 2: per-MP operation counts", Table2.run);
    ("table3", "Table 3: memory latencies", Table3.run);
    ("table4", "Table 4: Pentium path rates", Table4.run);
    ("table5", "Table 5: forwarder requirements", Table5.run);
    ("figure7", "Figure 7: rate vs contexts", Figure7.run);
    ("figure9", "Figure 9: VRP blocks vs line speed", Figure9.run);
    ("figure10", "Figure 10: contention reclaimed by VRP", Figure10.run);
    ("linerate", "Section 3.5.1: 8x100Mbps line rate", Linerate.run);
    ("strongarm", "Section 3.6: StrongARM rates", Strongarm_bench.run);
    ("dramdirect", "Section 3.5.1: DRAM-direct ablation", Dramdirect.run);
    ("budget", "Section 4.3: VRP budget derivation", Budget.run);
    ("framesize", "Section 3.5.1: frame-size / MP scaling", Framesize.run);
    ("bufferpool", "Section 3.2.3: circular vs stack buffers", Bufferpool.run);
    ("robust1", "Section 4.7: Pentium share under full VRP", Robust1.run);
    ("robust2", "Section 4.7: control-flood isolation", Robust2.run);
    ("mpls", "Extension: MPLS virtual-circuit fast path", Mpls_bench.run);
    ("routing", "Extension: route-update storms vs fast path", Routing_bench.run);
    ("wfq", "Extension: input-side WFQ approximation", Wfq_bench.run);
    ("cluster", "Extension: four-member cluster (section 6)", Cluster_bench.run);
    ("fault_matrix", "Extension: invariants under fault injection",
     Fault_matrix.run);
    ("cluster_fault_matrix",
     "Extension: cluster invariants under link damage and member crashes",
     Cluster_fault_matrix.run);
    ("fabric_contention",
     "Extension: fabric queue disciplines under offered-load sweeps",
     Fabric_contention.run);
    ("fib", "Extension: million-route compressed FIB under churn", Fib.run);
    ("classifier",
     "Extension: tuple-space multi-field classifier with flow cache",
     Classifier_bench.run);
    ("batch_identity",
     "Extension: batched vs event-granular delivery-schedule identity",
     Batch_identity.run);
    ("perf", "Infrastructure: simulator packets-per-wall-second", Perf.run);
    ("alloc", "Infrastructure: steady-state allocation budget", Alloc.run);
    ("cluster_perf",
     "Infrastructure: domain-parallel cluster throughput and identity",
     Cluster_perf.run);
  ]

let usage () =
  print_endline "usage: bench/main.exe [--json FILE] [experiment...]";
  print_endline "options:";
  print_endline
    "  --json FILE  also write a machine-readable BENCH.json of every row,";
  print_endline "               series, and telemetry snapshot";
  print_endline "experiments:";
  List.iter (fun (n, d, _) -> Printf.printf "  %-10s %s\n" n d) experiments;
  print_endline "  micro      Bechamel microbenchmarks of host primitives"

let () =
  let rec parse args json names =
    match args with
    | [] -> (json, List.rev names)
    | "--json" :: file :: rest -> parse rest (Some file) names
    | [ "--json" ] ->
        prerr_endline "--json requires a file argument";
        usage ();
        exit 2
    | ("-h" | "--help") :: _ ->
        usage ();
        exit 0
    | a :: rest -> parse rest json (a :: names)
  in
  let json, names = parse (List.tl (Array.to_list Sys.argv)) None [] in
  let find name = List.find_opt (fun (n, _, _) -> n = name) experiments in
  (* Resolve every name before running anything: an unknown experiment is
     a hard error (exit 2), so a typo in a CI smoke job fails the job
     instead of silently printing usage and succeeding. *)
  let unknown =
    List.filter (fun a -> a <> "micro" && find a = None) names
  in
  if unknown <> [] then begin
    List.iter (fun a -> Printf.eprintf "unknown experiment %S\n" a) unknown;
    usage ();
    exit 2
  end;
  let selected =
    match names with
    | [] ->
        Format.printf
          "Reproducing Spalink et al., 'Building a Robust Software-Based \
           Router Using Network Processors' (SOSP 2001)@.";
        experiments
    | names ->
        List.map
          (fun a ->
            match find a with
            | Some e -> e
            | None ->
                ("micro", "Bechamel microbenchmarks of host primitives",
                 Micro.run))
          names
  in
  List.iter
    (fun (name, title, run) ->
      Report.begin_experiment ~name ~title;
      run ())
    selected;
  (match json with
  | None -> ()
  | Some file ->
      Report.write_json file;
      Format.printf "@.wrote %s@." file);
  (* The fault matrix gates CI: violations fail the run, but only after
     the JSON artifact is written so the evidence is archived. *)
  if !Fault_matrix.failures > 0 then begin
    Printf.eprintf "fault_matrix: %d invariant violation(s)\n"
      !Fault_matrix.failures;
    exit 1
  end;
  if !Cluster_fault_matrix.failures > 0 then begin
    Printf.eprintf "cluster_fault_matrix: %d invariant violation(s)\n"
      !Cluster_fault_matrix.failures;
    exit 1
  end;
  if !Fabric_contention.failures > 0 then begin
    Printf.eprintf
      "fabric_contention: %d identity/invariant failure(s)\n"
      !Fabric_contention.failures;
    exit 1
  end;
  if !Fib.failures > 0 then begin
    Printf.eprintf "fib: %d divergence/staleness/speedup failure(s)\n"
      !Fib.failures;
    exit 1
  end;
  if !Classifier_bench.failures > 0 then begin
    Printf.eprintf
      "classifier: %d divergence/staleness/identity failure(s)\n"
      !Classifier_bench.failures;
    exit 1
  end;
  if !Batch_identity.failures > 0 then begin
    Printf.eprintf
      "batch_identity: %d delivery-schedule identity failure(s)\n"
      !Batch_identity.failures;
    exit 1
  end;
  if !Cluster_perf.failures > 0 then begin
    Printf.eprintf
      "cluster_perf: %d parallel-vs-sequential identity failure(s)\n"
      !Cluster_perf.failures;
    exit 1
  end;
  if !Alloc.failures > 0 then begin
    Printf.eprintf "alloc: %d allocation-budget failure(s)\n" !Alloc.failures;
    exit 1
  end
