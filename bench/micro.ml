(* Bechamel microbenchmarks of the substrate primitives: how fast the
   host-side data structures run (distinct from the simulated MicroEngine
   cycle costs the tables report). *)

open Bechamel
open Toolkit

let addr = Packet.Ipv4.addr_of_string

let lookup_tests =
  (* An Internet-shaped 10k-prefix table and a hit-heavy address stream. *)
  let rng = Sim.Rng.create 31L in
  let bindings = Iproute.Gen.table ~rng ~n:10_000 ~n_ports:8 in
  let bt =
    List.fold_left
      (fun t (p, v) -> Iproute.Btrie.add t p v)
      Iproute.Btrie.empty bindings
  in
  let pat =
    List.fold_left
      (fun t (p, v) -> Iproute.Patricia.add t p v)
      Iproute.Patricia.empty bindings
  in
  let cpe = Iproute.Cpe.build bindings in
  let cache = Iproute.Route_cache.create ~slots:1024 () in
  Iproute.Route_cache.insert cache (addr "10.0.0.1") 1;
  (* Pre-draw the address stream so the generator is not what's measured. *)
  let arng = Sim.Rng.create 5L in
  let addrs =
    Array.init 4096 (fun _ -> Iproute.Gen.matching_addr ~rng:arng bindings)
  in
  let cursor = ref 0 in
  let next_addr () =
    cursor := (!cursor + 1) land 4095;
    addrs.(!cursor)
  in
  [
    Test.make ~name:"lpm/btrie-10k"
      (Staged.stage (fun () -> ignore (Iproute.Btrie.lookup bt (next_addr ()))));
    Test.make ~name:"lpm/patricia-10k"
      (Staged.stage (fun () ->
           ignore (Iproute.Patricia.lookup pat (next_addr ()))));
    Test.make ~name:"lpm/cpe-10k"
      (Staged.stage (fun () -> ignore (Iproute.Cpe.lookup cpe (next_addr ()))));
    Test.make ~name:"lpm/route-cache-hit"
      (Staged.stage (fun () ->
           ignore (Iproute.Route_cache.find cache (addr "10.0.0.1"))));
  ]

let packet_tests =
  let frame =
    Packet.Build.udp ~frame_len:1518 ~src:(addr "10.0.0.1")
      ~dst:(addr "10.1.0.1") ~src_port:1 ~dst_port:2 ()
  in
  let small =
    Packet.Build.tcp ~src:(addr "10.0.0.1") ~dst:(addr "10.1.0.1") ~src_port:1
      ~dst_port:2 ()
  in
  [
    Test.make ~name:"checksum/full-1500B"
      (Staged.stage (fun () ->
           ignore
             (Packet.Checksum.compute frame.Packet.Frame.data ~off:14
                ~len:1500)));
    Test.make ~name:"checksum/incremental-ttl"
      (Staged.stage (fun () ->
           Packet.Ipv4.set_ttl small 64;
           ignore (Packet.Ipv4.decrement_ttl small)));
    Test.make ~name:"mp/split-join-1518B"
      (Staged.stage (fun () ->
           ignore (Packet.Mp.join (Packet.Mp.split frame) ~len:1518)));
    Test.make ~name:"flow/of_frame"
      (Staged.stage (fun () -> ignore (Packet.Flow.of_frame small)));
  ]

let router_tests =
  let routes = Iproute.Table.create () in
  Iproute.Table.add routes (Iproute.Prefix.of_string "10.0.0.0/8")
    { Iproute.Table.out_port = 1; gateway_mac = 2 };
  let cl = Router.Classifier.create Router.Cost_model.default ~routes in
  let frame =
    Packet.Build.udp ~src:(addr "10.2.3.4") ~dst:(addr "10.5.6.7") ~src_port:1
      ~dst_port:2 ()
  in
  let q = Router.Squeue.create ~capacity:1024 () in
  let d =
    Router.Desc.make
      ~buf:(Ixp.Buffer_pool.handle_of ~index:0 ~generation:1)
      ~len:64 ~in_port:0 ~out_port:0 ~arrival:0 ()
  in
  let sched = Router.Psched.create () in
  let c1 = Router.Psched.add_client sched ~name:"a" ~share:2.0 in
  let _c2 = Router.Psched.add_client sched ~name:"b" ~share:1.0 in
  [
    Test.make ~name:"classifier/functional"
      (Staged.stage (fun () ->
           ignore (Router.Classifier.classify_functional cl frame)));
    Test.make ~name:"squeue/push-pop"
      (Staged.stage (fun () ->
           ignore (Router.Squeue.push q d);
           ignore (Router.Squeue.pop q)));
    Test.make ~name:"psched/enqueue-next-charge"
      (Staged.stage (fun () ->
           Router.Psched.enqueue sched c1 ();
           match Router.Psched.next sched with
           | Some (c, ()) -> Router.Psched.charge sched c 100.
           | None -> ()));
  ]

let sim_tests =
  [
    Test.make ~name:"sim/spawn-run-1000-events"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           Sim.Engine.spawn e "w" (fun () ->
               for _ = 1 to 1000 do
                 Sim.Engine.wait 5000L
               done);
           Sim.Engine.run_until_idle e));
  ]

let run () =
  Report.section "Microbenchmarks (host-side primitive costs)";
  let tests =
    Test.make_grouped ~name:"npr"
      (lookup_tests @ packet_tests @ router_tests @ sim_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Report.info "%-32s %12.1f ns/run" name est
      | _ -> Report.info "%-32s (no estimate)" name)
    results
