(* Packets-per-wall-second: how fast the simulator itself runs.

   Every other experiment reports *simulated* rates; this one reports how
   much simulated traffic the host can push per second of host CPU, which
   is what bounds how far runs can scale toward the ROADMAP's
   "millions of users" target.  The full three-level router forwards a
   uniform 64-byte UDP workload at line rate on 8x100 Mbps ports (the
   same configuration as `router_cli run`), with a {!Packet.Frame_pool}
   closing the allocation loop; after a warmup phase we time a measured
   phase with [Sys.time] and divide forwarded packets by CPU seconds.

   Raw pps depends on the host, so the regression gate uses a normalized
   score: pps divided by a calibration rate (IP-checksumming a 1518-byte
   frame in a tight loop, measured in the same process).  The score is a
   dimensionless "packets forwarded per checksum-equivalent of work" and
   transfers across machines well enough for a 15% threshold.  Container
   CPU-frequency scaling makes single runs swing by 2x or more while the
   calibration stays put, so each configuration is measured [reps] times
   and the best (least-throttled) repetition is reported.

   The committed BENCH_perf.json is the first point of the perf
   trajectory; CI re-runs this experiment and fails on >15% regression
   of the normalized score.  The [baseline_*] constants below were
   measured on the pre-overhaul tree (heap-only scheduler, no wait
   elision, per-frame allocation, byte-at-a-time checksums) with this
   same harness, so the reported ratio is the wall-clock speedup the
   overhaul delivered on the reference container. *)

(* Pre-overhaul numbers, measured on the reference container with the
   same warmup/measure phases (seed 42, 8x100 Mbps, 64 B frames,
   best of 3).  Caveat on the score: the overhaul also made the
   calibration kernel itself ~1.9x faster (the word-wise checksum), so
   the score is only comparable between trees sharing a checksum
   implementation — across this PR, compare the raw pps rows; the score
   gates regressions from here forward. *)
let baseline_wall_pps = 43_657.6
let baseline_stack_pps = 45_543.6
let baseline_score = 0.0660

let warmup_us = 2_000.
let measured_us = 40_000.
let reps = 3

(* Calibration: one's-complement checksum over a max-size frame.  Pure
   CPU + memory streaming, no allocation; proportional to single-core
   integer throughput like the simulator's own hot path. *)
let calibrate () =
  let b = Bytes.make 1518 '\x5a' in
  let iters = 20_000 in
  (* Prime once so the first timed pass doesn't pay page faults. *)
  ignore (Packet.Checksum.compute b ~off:0 ~len:1518 : int);
  let t0 = Sys.time () in
  let acc = ref 0 in
  for _ = 1 to iters do
    acc := !acc lxor Packet.Checksum.compute b ~off:0 ~len:1518
  done;
  let dt = Sys.time () -. t0 in
  ignore !acc;
  if dt <= 0. then infinity else float_of_int iters /. dt

let measure ~circular () =
  let config =
    {
      Router.default_config with
      Router.circular_buffers = circular;
      Router.queue_capacity = 512;
    }
  in
  let r = Router.create ~config () in
  (* Room for every frame resident in the circular DRAM pool plus the
     in-flight population, so steady state recycles instead of minting
     (16 bytes of headroom match [Build.base_frame]). *)
  let pool =
    Packet.Frame_pool.create ~max_frames:16_384 ~frame_bytes:80 ()
  in
  Router.set_frame_pool r pool;
  for p = 0 to config.Router.n_ports - 1 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done;
  Router.start r;
  let rng = Sim.Rng.create 42L in
  for p = 0 to config.Router.n_ports - 1 do
    let rng = Sim.Rng.split rng in
    let gen =
      Workload.Mix.udp_uniform ~pool ~rng ~n_subnets:config.Router.n_ports
        ~frame_len:64 ()
    in
    ignore
      (Workload.Source.spawn_line_rate r.Router.engine
         ~name:(Printf.sprintf "gen%d" p)
         ~mbps:100. ~frame_len:64 ~gen
         ~offer:(fun f ->
           let ok = Router.inject r ~port:p f in
           (* A rejected frame never reaches the router; reclaim it. *)
           if not ok then Packet.Frame_pool.give pool f;
           ok)
         ())
  done;
  Router.run_for r ~us:warmup_us;
  let out0 =
    Sim.Stats.Counter.value r.Router.ostats.Router.Output_loop.pkts_out
  in
  (* Steady-state allocation: GC deltas over the measured phase only, so
     start-up allocation (fiber spawns, table builds, pool minting) never
     pollutes the per-packet quotient. *)
  let gc = Sim.Gc_stats.create () in
  let t0 = Sys.time () in
  Router.run_for r ~us:measured_us;
  let dt = Sys.time () -. t0 in
  let out =
    Sim.Stats.Counter.value r.Router.ostats.Router.Output_loop.pkts_out - out0
  in
  let per_pkt w = if out = 0 then 0. else w /. float_of_int out in
  let minor_wpp = per_pkt (Sim.Gc_stats.minor_words gc) in
  let promoted_w = Sim.Gc_stats.promoted_words gc in
  let pps = if dt <= 0. then infinity else float_of_int out /. dt in
  (pps, out, pool, minor_wpp, promoted_w)

(* Best of [reps]: the least CPU-throttled repetition.  The spread
   reported alongside it is (best - median) / best: how far the best
   run stands above the middle one.  Because the gated quantity is the
   best-of-N, one throttled repetition is harmless (best-of discards it
   by design) and must not reject a refresh; but when the *majority* of
   repetitions sit far below the best, the best is an unreproducible
   outlier and the whole file is suspect — `bench/gate.py --refresh`
   refuses to accept such a run as a new committed baseline. *)
let spread_of pps_runs =
  let sorted = List.sort (fun a b -> compare b a) pps_runs in
  let best = List.hd sorted in
  let median = List.nth sorted (List.length sorted / 2) in
  if best <= 0. then 0. else (best -. median) /. best

let best ~circular () =
  (* One discarded priming run: the first run in a fresh process pays
     code and branch-predictor warmth that would otherwise show up as a
     systematic rep-1 dip — spread should measure host throttling, not
     cold starts. *)
  ignore
    (measure ~circular () : float * int * Packet.Frame_pool.t * float * float);
  let runs =
    List.init reps (fun _ ->
        (* Collect the previous run's dropped router and pool outside
           the timed phase, so no rep pays its predecessor's GC debt. *)
        Gc.compact ();
        measure ~circular ())
  in
  let b =
    List.fold_left
      (fun ((bp, _, _, _, _) as b) ((p, _, _, _, _) as r) ->
        if p > bp then r else b)
      (List.hd runs) (List.tl runs)
  in
  (b, List.map (fun (p, _, _, _, _) -> p) runs)

let run () =
  Report.section "Simulator throughput (packets per wall-second)";
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let calib = calibrate () in
  let (pps, pkts, pool, minor_wpp, promoted_w), runs = best ~circular:true () in
  Gc.compact ();
  let (pps_stack, _, pool_stack, _, _), runs_stack =
    best ~circular:false ()
  in
  let score = pps /. calib in
  Report.info "forwarded %d packets in the best measured phase (of %d reps)"
    pkts reps;
  Report.info
    "allocation: %.1f minor words/packet, %.0f promoted words (measured \
     phase)"
    minor_wpp promoted_w;
  Report.info "calibration: %.0f checksum/s; normalized score %.4f" calib
    score;
  let spread_line tag rs =
    Report.info "reps (%s): %s pps; spread %.1f%%" tag
      (String.concat ", " (List.map (Printf.sprintf "%.0f") rs))
      (100. *. spread_of rs)
  in
  spread_line "circular" runs;
  spread_line "stack" runs_stack;
  let pool_line tag p =
    Report.info "frame pool (%s): %d minted, %d recycles, %d misses, %d bad"
      tag
      (Packet.Frame_pool.minted p)
      (Packet.Frame_pool.recycles p)
      (Packet.Frame_pool.misses p)
      (Packet.Frame_pool.bad_gives p)
  in
  pool_line "circular" pool;
  pool_line "stack" pool_stack;
  (* paper = the pre-overhaul baseline, measured = this tree; the ratio
     column is therefore the wall-clock speedup. *)
  Report.row ~unit_:"pps" ~name:"wall pps (circular pool)"
    ~paper:baseline_wall_pps ~measured:pps;
  Report.row ~unit_:"pps" ~name:"wall pps (stack pool)"
    ~paper:baseline_stack_pps ~measured:pps_stack;
  Report.row ~unit_:"pkt/cksum" ~name:"normalized score"
    ~paper:baseline_score ~measured:score;
  (* paper = the refresh-acceptance ceiling: gate.py --refresh rejects a
     new baseline whose spread exceeds it (the ratio column is
     informational here, not a regression gate). *)
  Report.row ~unit_:"frac" ~name:"run spread (circular pool)" ~paper:0.10
    ~measured:(spread_of runs);
  Report.row ~unit_:"frac" ~name:"run spread (stack pool)" ~paper:0.10
    ~measured:(spread_of runs_stack)
