(* [row]'s optional unit label is deliberately last: every argument is
   labelled, so erasure never applies anyway. *)
[@@@ocaml.warning "-16"]

type recorded_row = {
  r_name : string;
  r_paper : float;
  r_measured : float;
  r_unit : string;
}

type experiment = {
  e_name : string;
  e_title : string;
  mutable e_rows : recorded_row list; (* all lists reversed *)
  mutable e_notes : string list;
  mutable e_series : Sim.Stats.Series.t list;
  mutable e_attachments : (string * Telemetry.Json.t) list;
}

let experiments : experiment list ref = ref []
let current : experiment option ref = ref None

let begin_experiment ~name ~title =
  let e =
    {
      e_name = name;
      e_title = title;
      e_rows = [];
      e_notes = [];
      e_series = [];
      e_attachments = [];
    }
  in
  experiments := e :: !experiments;
  current := Some e

let with_current f = match !current with None -> () | Some e -> f e

let section name = Format.printf "@.==== %s ====@." name

let row ?(unit_ = "") ~name ~paper ~measured =
  let ratio = if paper = 0. then nan else measured /. paper in
  Format.printf "  %-42s paper %10.3f %-5s measured %10.3f %-5s (x%.2f)@."
    name paper unit_ measured unit_ ratio;
  with_current (fun e ->
      e.e_rows <-
        { r_name = name; r_paper = paper; r_measured = measured; r_unit = unit_ }
        :: e.e_rows)

let info fmt =
  Format.kasprintf
    (fun s ->
      Format.printf "  %s@." s;
      with_current (fun e -> e.e_notes <- s :: e.e_notes))
    fmt

let series s =
  Format.printf "%a@." Sim.Stats.Series.pp s;
  with_current (fun e -> e.e_series <- s :: e.e_series)

let attach key json =
  with_current (fun e -> e.e_attachments <- (key, json) :: e.e_attachments)

let to_json () =
  let open Telemetry.Json in
  let row_json r =
    Obj
      [
        ("name", String r.r_name);
        ("paper", Float r.r_paper);
        ("measured", Float r.r_measured);
        ( "ratio",
          if r.r_paper = 0. then Null else Float (r.r_measured /. r.r_paper) );
        ("unit", String r.r_unit);
      ]
  in
  let series_json s =
    Obj
      [
        ("name", String (Sim.Stats.Series.name s));
        ("x_label", String (Sim.Stats.Series.x_label s));
        ("y_label", String (Sim.Stats.Series.y_label s));
        ( "points",
          List
            (List.map
               (fun (x, y) -> List [ Float x; Float y ])
               (Sim.Stats.Series.points s)) );
      ]
  in
  let experiment_json e =
    Obj
      ([
         ("name", String e.e_name);
         ("title", String e.e_title);
         ("rows", List (List.map row_json (List.rev e.e_rows)));
         ("notes", List (List.map (fun s -> String s) (List.rev e.e_notes)));
         ("series", List (List.map series_json (List.rev e.e_series)));
       ]
      @ List.rev e.e_attachments)
  in
  Obj
    [
      ("schema", String "npr-bench/1");
      ("experiments", List (List.map experiment_json (List.rev !experiments)));
    ]

let write_json file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Telemetry.Json.to_string (to_json ()));
      output_char oc '\n')
