(** Uniform paper-vs-measured reporting for the benchmark harness.

    Every call both prints the human-readable line it always did and
    records the datum into the current experiment, so a run can end with
    {!write_json}: one BENCH.json carrying each experiment's
    paper/measured/ratio rows, notes, figure series, and any attached
    telemetry snapshots — the machine-readable perf trajectory CI
    archives on every push. *)

val begin_experiment : name:string -> title:string -> unit
(** Open a new experiment record; subsequent rows/notes/series/attachments
    accumulate under it.  The harness calls this before each experiment's
    [run]. *)

val section : string -> unit
(** Print a banner. *)

val row : ?unit_:string -> name:string -> paper:float -> measured:float -> unit
(** One comparison line with the measured/paper ratio. *)

val info : ('a, Format.formatter, unit) format -> 'a
(** Free-form note, indented under the current section. *)

val series : Sim.Stats.Series.t -> unit
(** Print a figure's series as an aligned table with a spark column. *)

val attach : string -> Telemetry.Json.t -> unit
(** Attach a JSON document (e.g. a telemetry snapshot) to the current
    experiment under the given key.  Not printed. *)

val to_json : unit -> Telemetry.Json.t
(** Everything recorded since startup, oldest experiment first. *)

val write_json : string -> unit
(** Serialize {!to_json} to a file (with a trailing newline). *)
