(* Table 1: maximum packet rates by input and output queueing discipline,
   plus the ablations the paper discusses but does not tabulate
   (test-and-set spinlocks, dynamic context allocation). *)

open Router.Fixed_infra

let cfg = default

let run () =
  Report.section "Table 1: queueing disciplines (Mpps, 64-byte packets)";
  let input name disc contention paper =
    let r = run { cfg with stage = Input_only; input_disc = disc; contention } in
    Report.row ~unit_:"Mpps" ~name ~paper ~measured:r.in_mpps
  in
  input "(I.1) private queues in regs" I1_private false 3.75;
  input "(I.2) protected public, no contention" I2_protected false 3.47;
  input "(I.3) protected public, max contention" I2_protected true 1.67;
  let output name disc paper =
    let r = run { cfg with stage = Output_only; output_disc = disc } in
    Report.row ~unit_:"Mpps" ~name ~paper ~measured:r.out_mpps
  in
  output "(O.1) single queue with batching" O1_batch 3.78;
  output "(O.2) single queue without batching" O2_single 3.41;
  output "(O.3) multiple queues with indirection" O3_multi 3.29;
  Report.info "cited full-system combinations:";
  (* The full-system runs carry a telemetry snapshot into BENCH.json:
     per-MicroEngine instruction/busy gauges, per-queue depths, stage
     counters, cycles-per-packet — the trajectory CI diffs across pushes. *)
  let both ?telemetry name input_disc output_disc paper =
    let r = run ?telemetry { cfg with input_disc; output_disc } in
    Report.row ~unit_:"Mpps" ~name ~paper ~measured:r.out_mpps;
    Option.iter
      (fun reg -> Report.attach "telemetry" (Telemetry.Registry.snapshot reg))
      telemetry
  in
  both
    ~telemetry:(Telemetry.Registry.create ())
    "I.2 + O.1 (fastest feasible system)" I2_protected O1_batch 3.47;
  both "I.2 + O.3 (16 queues per port, QoS)" I2_protected O3_multi 3.29;
  Report.info "ablations (no paper numbers; section 3.2.1 / 3.4.2 rationale):";
  let r_spin =
    run { cfg with stage = Input_only; input_disc = I_spinlock; contention = true }
  in
  Report.info
    "test-and-set spinlock under max contention: %.3f Mpps (vs %.3f hardware mutex)"
    r_spin.in_mpps 1.67;
  let r_dyn = run { cfg with stage = Input_only; input_disc = I_dynamic } in
  Report.info
    "dynamic context scheduling via scratch work queue: %.3f Mpps (vs %.3f static)"
    r_dyn.in_mpps 3.47
