(* Table 4: maximum forwarding rate through the Pentium and the excess
   per-packet cycles on each processor (the paper's delay-loop method).

   "We measured the maximum rate that the Pentium can process packets by
   having it run a loop that reads packets of various sizes from the
   IXP1200, and then writes the packet back onto the IXP1200.  The
   StrongARM is programmed to feed packets to the Pentium as fast as
   possible." *)

let run_path ~frame_len =
  let engine = Sim.Engine.create () in
  let chip = Ixp.Chip.create ~ports:[] engine in
  let routes = Iproute.Table.create () in
  let returned = Sim.Stats.Counter.create "returned" in
  let out_enqueue _ctx _desc =
    Sim.Stats.Counter.incr returned;
    true
  in
  let sa =
    Router.Strongarm.create chip Router.Cost_model.default ~full_copy:true
      ~pe_buffers:64
      ~lookup_fid:(fun _ -> None)
      ~routes ~out_enqueue ()
  in
  let pe =
    Router.Pentium.create chip Router.Cost_model.default
      ~from_sa:sa.Router.Strongarm.to_pe ~returns:sa.Router.Strongarm.returns
      ~lookup_fid:(fun _ -> None)
      ()
  in
  Router.Strongarm.spawn sa chip;
  Router.Pentium.spawn pe chip;
  let frame =
    Packet.Build.udp ~frame_len
      ~src:(Packet.Ipv4.addr_of_string "10.0.0.1")
      ~dst:(Packet.Ipv4.addr_of_string "10.1.0.1")
      ~src_port:1 ~dst_port:2 ()
  in
  (* Zero-cost feeder keeping the StrongARM's Pentium-bound queue full. *)
  Sim.Engine.spawn engine "feeder" (fun () ->
      let rec top_up () =
        let q = sa.Router.Strongarm.pe_qs.(0) in
        while Router.Squeue.length q < 64 do
          let buf = Ixp.Buffer_pool.alloc chip.Ixp.Chip.buffers frame in
          ignore
            (Router.Squeue.push q
               (Router.Desc.make ~buf ~len:frame_len ~in_port:0 ~out_port:0
                  ~arrival:(Sim.Engine.now_i ()) ()))
        done;
        Sim.Engine.wait (Sim.Engine.of_seconds 20e-6);
        top_up ()
      in
      top_up ());
  let warm = Sim.Engine.of_seconds 2e-3 in
  let stop = Sim.Engine.of_seconds 12e-3 in
  Sim.Engine.run engine ~until:warm;
  let n0 = Sim.Stats.Counter.value returned in
  let pe_busy0 = Router.Pentium.busy_cycles pe in
  let sa_busy0 = Router.Strongarm.busy_cycles sa in
  Sim.Engine.run engine ~until:stop;
  let window_s = Sim.Engine.seconds (Int64.sub stop warm) in
  let n = Sim.Stats.Counter.value returned - n0 in
  let rate = float_of_int n /. window_s in
  let pe_busy_per_pkt =
    (Router.Pentium.busy_cycles pe -. pe_busy0) /. float_of_int (max 1 n)
  in
  let pe_spare = (733e6 /. rate) -. pe_busy_per_pkt in
  let sa_busy_per_pkt =
    (Router.Strongarm.busy_cycles sa -. sa_busy0) /. float_of_int (max 1 n)
  in
  let sa_spare = (200e6 /. rate) -. sa_busy_per_pkt in
  (rate /. 1e3, pe_spare, sa_spare)

let run () =
  Report.section "Table 4: forwarding through the Pentium (SA feeds flat out)";
  let r64, pe64, sa64 = run_path ~frame_len:64 in
  Report.row ~unit_:"Kpps" ~name:"64-byte rate" ~paper:534.0 ~measured:r64;
  Report.row ~unit_:"cyc" ~name:"64-byte Pentium spare cycles" ~paper:500.
    ~measured:pe64;
  Report.row ~unit_:"cyc" ~name:"64-byte StrongARM spare cycles" ~paper:0.
    ~measured:sa64;
  let r1500, pe1500, sa1500 = run_path ~frame_len:1518 in
  Report.row ~unit_:"Kpps" ~name:"1500-byte rate" ~paper:43.6 ~measured:r1500;
  Report.row ~unit_:"cyc" ~name:"1500-byte Pentium spare cycles" ~paper:800.
    ~measured:pe1500;
  Report.row ~unit_:"cyc" ~name:"1500-byte StrongARM spare cycles" ~paper:4200.
    ~measured:sa1500
