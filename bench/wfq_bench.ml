(* Extension bench: the section 3.4.1 sketch, realized.

   Two classes (shares 3:1) offer equal load, together twice a 100 Mbps
   port's line rate.  The input side runs the WFQ selector (a token bucket
   in the VRP budget) and enqueues into two priority queues; the output
   context drains them in strict priority (O.3).  Under congestion the
   delivered split should approach the 3:1 shares; without the selector
   (one shared queue) the classes split the link evenly. *)

let addr = Packet.Ipv4.addr_of_string
let line_pps = Workload.Source.line_rate_pps ~mbps:100. ~frame_len:64

let run_case ~use_wfq =
  let engine = Sim.Engine.create () in
  (* Ports 0 and 1 receive one class each; port 2 is the congested output. *)
  let chip =
    Ixp.Chip.create
      ~ports:(List.init 3 (fun _ -> { Ixp.Chip.mbps = 100.; sink = None }))
      engine
  in
  let cm = Router.Cost_model.default in
  let port = chip.Ixp.Chip.ports.(2) in
  let queues =
    [| Router.Squeue.create ~name:"high" ~capacity:512 ();
       Router.Squeue.create ~name:"low" ~capacity:512 () |]
  in
  let wfq = Router.Wfq.create ~link_pps:line_pps ~shares:[| 3.; 1. |] () in
  let delivered = [| 0; 0 |] in
  (* Two input contexts, one per class, on separate MicroEngines. *)
  let ring = Sim.Token_ring.create ~members:2 () in
  let frame_of cls =
    Packet.Build.udp
      ~src:(addr (Printf.sprintf "10.250.0.%d" (1 + cls)))
      ~dst:(addr "10.0.0.1") ~src_port:(1000 + cls) ~dst_port:2000 ()
  in
  let mk_process cls ctx frm ~in_port =
    ignore in_port;
    (* Trivial classifier + the WFQ selector's VRP cost. *)
    Router.Chip_ctx.exec ctx cm.Router.Cost_model.classify_null_instr;
    ignore (Router.Chip_ctx.hash ctx (Int64.of_int32 (Packet.Ipv4.get_dst frm)));
    Router.Chip_ctx.sram_read ctx ~bytes:8;
    let qid =
      if use_wfq then begin
        Router.Vrp.execute ctx Router.Wfq.vrp_code;
        match Router.Wfq.pick wfq ~class_id:cls ~now:(Sim.Engine.now ()) with
        | `High -> 0
        | `Low -> 1
      end
      else 0
    in
    Router.Input_loop.To_queue { qid; out_port = cls; fid = -1 }
  in
  List.iteri
    (fun cls ctx_id ->
      ignore ctx_id;
      let ctx_id = if cls = 0 then 0 else 4 in
      let t =
        {
          Router.Input_loop.cm;
          enq = Router.Input_loop.enqueue_protected cm;
          process = mk_process cls;
          process_rest_mp = (fun _ _ -> ());
          queue_of = (fun ~ctx_id:_ qid -> queues.(qid));
          notify = None;
          idle_backoff_cycles = 64;
          scope = None;
          recycle = None;
        }
      in
      (* Each class offers the full output line rate: 2x overload
         together, paced by a real source through a real port. *)
      let in_port = chip.Ixp.Chip.ports.(cls) in
      ignore
        (Workload.Source.spawn_constant engine
           ~name:(Printf.sprintf "class%d" cls)
           ~pps:line_pps
           ~gen:(fun _ -> frame_of cls)
           ~offer:(fun f -> Ixp.Mac_port.offer in_port f)
           ());
      Router.Input_loop.spawn_context t chip ~ring ~slot:cls ~ctx_id
        ~source:(Router.Input_loop.Port in_port)
        ~stats:(Router.Input_loop.make_stats ()))
    [ 0; 4 ];
  (* One output context draining both queues in priority order, paced by
     the port's 100 Mbps wire. *)
  let oring = Sim.Token_ring.create ~members:1 () in
  let ostats = Router.Output_loop.make_stats () in
  let ol =
    {
      Router.Output_loop.cm;
      discipline = Router.Output_loop.O3_multi;
      queues;
      port_for = (fun _ -> Some port);
      on_tx =
        Some
          (fun desc _ ->
            let cls = desc.Router.Desc.out_port in
            delivered.(cls) <- delivered.(cls) + 1);
      idle_backoff_cycles = 64;
      scope = None;
    }
  in
  Router.Output_loop.spawn_context ol chip ~ring:oring ~slot:0 ~ctx_id:8
    ~stats:ostats;
  (* Together the classes offer twice what port 2 can carry; the queue
     drops are the congestion under test. *)
  Sim.Engine.run engine ~until:(Sim.Engine.of_seconds 40e-3);
  (delivered.(0), delivered.(1))

let run () =
  Report.section "Input-side WFQ approximation (section 3.4.1 extension)";
  let h1, l1 = run_case ~use_wfq:false in
  Report.info
    "one shared queue, no selector:   class A %5d, class B %5d  (ratio %.2f)"
    h1 l1
    (float_of_int h1 /. float_of_int (max 1 l1));
  let h2, l2 = run_case ~use_wfq:true in
  Report.info
    "WFQ selector + priority queues:  class A %5d, class B %5d  (ratio %.2f, \
     shares 3:1)"
    h2 l2
    (float_of_int h2 /. float_of_int (max 1 l2));
  Report.info
    "the selector costs %d VRP cycles per packet (admission-checked like any \
     forwarder)"
    (Router.Vrp.cycles_estimate Ixp.Config.default
       (Router.Vrp.static_cost Router.Wfq.vrp_code))
