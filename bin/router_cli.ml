(* Command-line driver for the simulated router.

   - [run]: drive the full three-level router with synthetic traffic and
     print the forwarding summary.
   - [peak]: the section 3 FIFO-to-FIFO peak-rate experiment with
     selectable queueing disciplines (Table 1's knobs).
   - [budget]: the section 4.3 VRP budget for a given line rate. *)

open Cmdliner

(* Shared --metrics flag: dump a telemetry snapshot as JSON to a file, or
   to stdout when FILE is "-". *)
let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump a JSON telemetry snapshot (per-MicroEngine, per-queue, \
           per-stage instruments) after the run; \"-\" writes to stdout.")

let dump_metrics dest json =
  match dest with
  | None -> ()
  | Some "-" -> Format.printf "%a@." Telemetry.Json.pp json
  | Some file -> (
      match open_out file with
      | oc ->
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Telemetry.Json.to_string json);
              output_char oc '\n');
          Format.printf "wrote metrics to %s@." file
      | exception Sys_error msg ->
          Format.eprintf "cannot write metrics: %s@." msg;
          exit 1)

let subnet_routes r n_ports =
  for p = 0 to n_ports - 1 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done

(* --- run ------------------------------------------------------------- *)

let run_cmd =
  let duration =
    Arg.(value & opt float 10.0 & info [ "d"; "duration" ] ~docv:"MS"
           ~doc:"Simulated milliseconds to run.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let mbps =
    Arg.(value & opt float 100. & info [ "mbps" ] ~docv:"MBPS"
           ~doc:"Per-port link speed.")
  in
  let frame_len =
    Arg.(value & opt int 64 & info [ "frame" ] ~docv:"BYTES"
           ~doc:"Frame length (64..1518).")
  in
  let exceptional =
    Arg.(value & opt float 0. & info [ "exceptional" ] ~docv:"SHARE"
           ~doc:"Fraction of frames carrying IP options (divert to the \
                 StrongARM).")
  in
  let syn_monitor =
    Arg.(value & flag & info [ "syn-monitor" ]
           ~doc:"Install the SYN-monitor data forwarder at boot.")
  in
  let workload =
    Arg.(value & opt string "uniform" & info [ "workload" ] ~docv:"SPEC"
           ~doc:"Traffic shape per port: $(b,uniform) (line-rate \
                 minimum-size UDP, destinations uniform over the routed \
                 subnets) or $(b,flows)[:key=value,...] — Internet-realistic \
                 flows with Zipf destination popularity, heavy-tailed \
                 (Pareto) sizes and bursty MMPP arrivals (keys: pps, hosts, \
                 subnets, zipf, pareto, minpkts, maxpkts, conc, burst, \
                 burst_us, idle_us, frame, udp, dscp — see \
                 lib/workload/flows.mli).")
  in
  let classifier_rules =
    Arg.(value & opt int 0 & info [ "classifier" ] ~docv:"N"
           ~doc:"Install the tuple-space multi-field classifier with N \
                 seeded realistic rules (5-tuple + DSCP; 0 = off).  Rules \
                 are generated from --seed, so a run replays exactly.")
  in
  let faults =
    Arg.(value & opt string "none" & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Fault-injection scenario as comma-separated key:value \
                 pairs, e.g. mac_corrupt:0.01,pool_fail:0.005 (see \
                 lib/fault/scenario.mli for the keys).  Seeded from \
                 --seed, so a failing run replays exactly.")
  in
  let fib =
    let engine =
      Arg.enum
        [
          ("linear", Iproute.Table.Linear);
          ("trie", Iproute.Table.Trie);
          ("patricia", Iproute.Table.Patricia);
          ("cpe", Iproute.Table.Cpe);
          ("poptrie", Iproute.Table.Poptrie);
        ]
    in
    Arg.(value & opt engine Router.default_config.Router.route_engine
         & info [ "fib" ] ~docv:"ENGINE"
             ~doc:"Longest-prefix-match engine behind the route cache: \
                   $(b,linear), $(b,trie), $(b,patricia), $(b,cpe), or \
                   $(b,poptrie) (the compressed bitmap trie sized for \
                   million-route tables under churn).")
  in
  let run duration seed mbps frame_len exceptional syn_monitor workload
      classifier_rules faults fib metrics =
    let scenario =
      match Fault.Scenario.parse faults with
      | Ok s -> Fault.Scenario.with_seed s (Int64.of_int seed)
      | Error msg ->
          Format.eprintf "bad --faults spec: %s@." msg;
          exit 2
    in
    let flows_cfg =
      if workload = "uniform" then None
      else
        match Workload.Flows.parse workload with
        | Ok cfg -> Some cfg
        | Error msg ->
            Format.eprintf "bad --workload spec: %s@." msg;
            exit 2
    in
    let config =
      { Router.default_config with Router.port_mbps = mbps;
        Router.faults = scenario; Router.route_engine = fib }
    in
    let r = Router.create ~config ~alloc_gauges:true () in
    subnet_routes r config.Router.n_ports;
    let fid =
      if syn_monitor then
        match
          Router.Iface.install r.Router.iface ~key:Packet.Flow.All
            ~fwdr:Forwarders.Syn_monitor.forwarder ~where:Router.Iface.ME ()
        with
        | Ok fid -> Some fid
        | Error es -> failwith (String.concat "; " es)
      else None
    in
    let cls =
      if classifier_rules <= 0 then None
      else begin
        let cls = Forwarders.Classifier.create () in
        List.iter
          (Forwarders.Classifier.add cls)
          (Forwarders.Classifier.Gen.rules
             ~rng:(Sim.Rng.create (Int64.of_int (seed + 77)))
             ~n:classifier_rules ~n_ports:config.Router.n_ports ());
        Forwarders.Classifier.attach cls
          (Telemetry.Registry.scope r.Router.telemetry "classifier");
        match
          Router.Iface.install r.Router.iface ~key:Packet.Flow.All
            ~fwdr:
              (Forwarders.Classifier.forwarder
                 ~cm:config.Router.cm cls)
            ~where:Router.Iface.ME ()
        with
        | Ok _ -> Some cls
        | Error es -> failwith (String.concat "; " es)
      end
    in
    Router.start r;
    let rng = Sim.Rng.create (Int64.of_int seed) in
    for p = 0 to config.Router.n_ports - 1 do
      let rng = Sim.Rng.split rng in
      match flows_cfg with
      | Some cfg ->
          let fl = Workload.Flows.create ~rng cfg in
          ignore
            (Workload.Flows.spawn fl r.Router.engine
               ~name:(Printf.sprintf "gen%d" p)
               ~offer:(fun f -> Router.inject r ~port:p f))
      | None ->
          let base =
            Workload.Mix.udp_uniform ~rng ~n_subnets:config.Router.n_ports
              ~frame_len ()
          in
          let gen =
            if exceptional > 0. then
              Workload.Mix.with_options_share ~rng:(Sim.Rng.split rng)
                ~share:exceptional base
            else base
          in
          ignore
            (Workload.Source.spawn_line_rate r.Router.engine
               ~name:(Printf.sprintf "gen%d" p)
               ~mbps ~frame_len ~gen
               ~offer:(fun f -> Router.inject r ~port:p f)
               ())
    done;
    Router.run_for r ~us:(duration *. 1000.);
    Format.printf "%a@." Router.pp_summary r;
    Option.iter
      (fun fid ->
        Format.printf "syn-monitor: %d SYNs@."
          (Forwarders.Syn_monitor.syn_count
             (Option.get (Router.Iface.getdata r.Router.iface fid))))
      fid;
    Option.iter
      (fun cls ->
        Format.printf
          "classifier: %d rules in %d tuples, cache %d hit / %d miss \
           (%.1f%% hit), %.2f probes/miss@."
          (Forwarders.Classifier.n_rules cls)
          (Forwarders.Classifier.n_tuples cls)
          (Forwarders.Classifier.cache_hits cls)
          (Forwarders.Classifier.cache_misses cls)
          (100.
          *. float_of_int (Forwarders.Classifier.cache_hits cls)
          /. float_of_int
               (max 1
                  (Forwarders.Classifier.cache_hits cls
                  + Forwarders.Classifier.cache_misses cls)))
          (float_of_int (Forwarders.Classifier.probes cls)
          /. float_of_int (max 1 (Forwarders.Classifier.cache_misses cls))))
      cls;
    dump_metrics metrics (Router.telemetry_snapshot r);
    if not (Fault.Invariant.ok r.Router.invariants) then begin
      Format.eprintf "%a@." Fault.Invariant.pp_report r.Router.invariants;
      Format.eprintf
        "repro: router_cli run --faults '%s' --seed %d -d %g --mbps %g \
         --frame %d@."
        (Fault.Scenario.to_spec scenario)
        seed duration mbps frame_len;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Drive the full three-level router at line rate.")
    Term.(
      const run $ duration $ seed $ mbps $ frame_len $ exceptional
      $ syn_monitor $ workload $ classifier_rules $ faults $ fib
      $ metrics_arg)

(* --- peak ------------------------------------------------------------ *)

let peak_cmd =
  let input_disc =
    let disc =
      Arg.enum
        [
          ("i1", Router.Fixed_infra.I1_private);
          ("i2", Router.Fixed_infra.I2_protected);
          ("spin", Router.Fixed_infra.I_spinlock);
          ("dyn", Router.Fixed_infra.I_dynamic);
        ]
    in
    Arg.(value & opt disc Router.Fixed_infra.I2_protected
           & info [ "input" ] ~docv:"DISC"
               ~doc:"Input discipline: i1, i2, spin, dyn.")
  in
  let output_disc =
    let disc =
      Arg.enum
        [
          ("o1", Router.Fixed_infra.O1_batch);
          ("o2", Router.Fixed_infra.O2_single);
          ("o3", Router.Fixed_infra.O3_multi);
        ]
    in
    Arg.(value & opt disc Router.Fixed_infra.O1_batch
           & info [ "output" ] ~docv:"DISC" ~doc:"Output discipline: o1-o3.")
  in
  let contention =
    Arg.(value & flag & info [ "contention" ]
           ~doc:"All packets to one queue (I.3 / Figure 10).")
  in
  let blocks =
    Arg.(value & opt int 0 & info [ "vrp-blocks" ] ~docv:"N"
           ~doc:"Combination VRP blocks (10 instr + 4B SRAM) per packet.")
  in
  let in_ctx =
    Arg.(value & opt int 16 & info [ "input-contexts" ] ~docv:"N" ~doc:"")
  in
  let out_ctx =
    Arg.(value & opt int 8 & info [ "output-contexts" ] ~docv:"N" ~doc:"")
  in
  let run input_disc output_disc contention blocks in_ctx out_ctx metrics =
    let open Router.Fixed_infra in
    let code =
      List.concat
        (List.init blocks (fun _ ->
             [ Router.Vrp.Instr 10; Router.Vrp.Sram_read 4 ]))
    in
    let telemetry = Telemetry.Registry.create () in
    let r =
      run ~telemetry
        {
          default with
          input_disc;
          output_disc;
          contention;
          vrp_blocks = code;
          n_input_contexts = in_ctx;
          n_output_contexts = out_ctx;
        }
    in
    Format.printf "%a@." pp_result r;
    dump_metrics metrics (Telemetry.Registry.snapshot telemetry)
  in
  Cmd.v
    (Cmd.info "peak"
       ~doc:"FIFO-to-FIFO peak forwarding rate (section 3 experiments).")
    Term.(
      const run $ input_disc $ output_disc $ contention $ blocks $ in_ctx
      $ out_ctx $ metrics_arg)

(* --- budget ---------------------------------------------------------- *)

let budget_cmd =
  let pps =
    Arg.(value & opt float 1.128e6 & info [ "pps" ] ~docv:"PPS"
           ~doc:"Aggregate line rate in packets per second.")
  in
  let contexts =
    Arg.(value & opt int 16 & info [ "contexts" ] ~docv:"N"
           ~doc:"Input contexts.")
  in
  let run pps contexts =
    let b =
      Router.Capacity.vrp_budget Router.Capacity.default ~contexts
        ~line_rate_pps:pps ~hashes:3
    in
    Format.printf "VRP budget at %.3f Mpps with %d contexts: %a@." (pps /. 1e6)
      contexts Router.Vrp.pp_budget b
  in
  Cmd.v
    (Cmd.info "budget"
       ~doc:"VRP budget available at a line rate (section 4.3).")
    Term.(const run $ pps $ contexts)

(* --- cluster --------------------------------------------------------- *)

let cluster_cmd =
  let duration =
    Arg.(value & opt float 3.0 & info [ "d"; "duration" ] ~docv:"MS"
           ~doc:"Simulated milliseconds to run.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let members =
    Arg.(value & opt int 4 & info [ "members" ] ~docv:"N"
           ~doc:"Pentium/IXP pairs behind the switch.")
  in
  let ports_per_member =
    Arg.(value & opt int 4 & info [ "ports-per-member" ] ~docv:"N"
           ~doc:"External 100 Mbps ports per member.")
  in
  let frame_len =
    Arg.(value & opt int 64 & info [ "frame" ] ~docv:"BYTES"
           ~doc:"Frame length (64..1518).")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"OCaml domains to spread the members over (conservative \
                 lookahead execution).  Any value produces the bit-identical \
                 simulation; N > 1 only changes wall-clock time.")
  in
  let cluster_faults =
    Arg.(value & opt string "none" & info [ "cluster-faults" ] ~docv:"SPEC"
           ~doc:"Cluster fault scenario: semicolon-separated events, each \
                 kind:member:start_us:dur_us[:param] with kinds link_drop, \
                 link_corrupt, link_stall, crash, route_churn (param = \
                 route updates per simulated second against the member's \
                 live table) — e.g. \
                 'link_drop:1:200:600:0.5;crash:3:500:400' (see \
                 lib/fault/cluster_scenario.mli).  Seeded from --seed, so \
                 a failing run replays exactly.")
  in
  let fabric_queue_arg =
    Arg.(value & opt string "none" & info [ "fabric-queue" ] ~docv:"SPEC"
           ~doc:"Finite queue on every uplink and switch egress port: \
                 none | taildrop:CAP | red:CAP:MIN:MAX:MAXP[:WQ] | \
                 prio:CAP:CLASSES | wrr:CAP:W0,W1,... with an optional \
                 @MBPS drain-rate suffix (default 1000), e.g. \
                 'red:32:4:16:0.2@300' (see lib/cluster/fabric_queue.mli). \
                 Queues exert backpressure into injection and the member \
                 egress path; 'none' bypasses queueing entirely.")
  in
  let run duration seed members ports_per_member frame_len domains
      cluster_faults fabric_queue metrics =
    let faults =
      match Fault.Cluster_scenario.parse cluster_faults with
      | Ok s -> Fault.Cluster_scenario.with_seed s (Int64.of_int seed)
      | Error msg ->
          Format.eprintf "bad --cluster-faults spec: %s@." msg;
          exit 2
    in
    let fabric_queue =
      match Cluster.Fabric_queue.parse fabric_queue with
      | Ok q -> q
      | Error msg ->
          Format.eprintf "bad --fabric-queue spec: %s@." msg;
          exit 2
    in
    let c =
      Cluster.create ~members ~ports_per_member ~domains ~faults ~fabric_queue
        ()
    in
    let n_global = members * ports_per_member in
    let rng = Sim.Rng.create (Int64.of_int seed) in
    for g = 0 to n_global - 1 do
      let rng = Sim.Rng.split rng in
      let gen = Workload.Mix.udp_uniform ~rng ~n_subnets:n_global ~frame_len () in
      ignore
        (Workload.Source.spawn_line_rate (Cluster.engine_of_global_port c g)
           ~name:(Printf.sprintf "gen%d" g)
           ~mbps:100. ~frame_len ~gen
           ~offer:(fun f -> Cluster.inject c ~global_port:g f)
           ())
    done;
    (* Several barriers, so windowed damage is audited while in force,
       not only after everything has settled. *)
    let slices = 6 in
    for _ = 1 to slices do
      Cluster.run_for c ~us:(duration *. 1000. /. float_of_int slices)
    done;
    let fc = Cluster.fabric_counts c in
    Format.printf
      "cluster after %.3f ms: %d members, %d delivered externally@,"
      (Sim.Engine.seconds (Cluster.time c) *. 1e3)
      members (Cluster.delivered_total c);
    Format.printf
      "fabric: %d offered = %d delivered + %d link + %d down + %d unknown + \
       %d queue + %d refused + %d in flight + %d queued (%d corrupted, %d \
       stalled)@."
      fc.Cluster.offered fc.Cluster.delivered fc.Cluster.dropped_link
      fc.Cluster.dropped_down fc.Cluster.dropped_unknown
      fc.Cluster.dropped_queue fc.Cluster.rx_refused fc.Cluster.in_flight
      fc.Cluster.queued fc.Cluster.corrupted fc.Cluster.stalled;
    if not (Cluster.Fabric_queue.is_bypass fabric_queue) then
      Format.printf "fabric queue [%s]: %d refused by backpressure@."
        (Cluster.Fabric_queue.to_spec fabric_queue)
        fc.Cluster.bp_refused;
    for m = 0 to members - 1 do
      Format.printf "member %d: %s, %d crash epoch(s)%s@." m
        (if Cluster.member_up c m then "up" else "down")
        (Cluster.crash_epochs c m)
        (match Cluster.recovery_latency_us c m with
        | None -> ""
        | Some l -> Printf.sprintf ", recovered in %.1f us" l)
    done;
    dump_metrics metrics (Cluster.telemetry_snapshot c);
    let violations = Cluster.violations c in
    if violations <> [] then begin
      List.iter
        (fun (src, v) ->
          Format.eprintf "FAULT [%s] %s: %s (at %.3f us)@." src
            v.Fault.Invariant.name v.Fault.Invariant.detail
            (Sim.Engine.seconds v.Fault.Invariant.at *. 1e6))
        violations;
      Format.eprintf
        "repro: router_cli cluster --cluster-faults '%s' --fabric-queue '%s' \
         --seed %d -d %g --members %d --ports-per-member %d --domains %d@."
        (Fault.Cluster_scenario.to_spec faults)
        (Cluster.Fabric_queue.to_spec fabric_queue)
        seed duration members ports_per_member domains;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Drive the section 6 multi-member cluster, optionally under a \
          cluster fault scenario, and audit the cluster invariants.")
    Term.(
      const run $ duration $ seed $ members $ ports_per_member $ frame_len
      $ domains $ cluster_faults $ fabric_queue_arg $ metrics_arg)

let () =
  let info =
    Cmd.info "router_cli" ~version:"1.0"
      ~doc:
        "Simulated IXP1200 software router (Spalink et al., SOSP 2001 \
         reproduction)."
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; peak_cmd; budget_cmd; cluster_cmd ]))
