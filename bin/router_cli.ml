(* Command-line driver for the simulated router.

   - [run]: drive the full three-level router with synthetic traffic and
     print the forwarding summary.
   - [peak]: the section 3 FIFO-to-FIFO peak-rate experiment with
     selectable queueing disciplines (Table 1's knobs).
   - [budget]: the section 4.3 VRP budget for a given line rate. *)

open Cmdliner

(* Shared --metrics flag: dump a telemetry snapshot as JSON to a file, or
   to stdout when FILE is "-". *)
let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Dump a JSON telemetry snapshot (per-MicroEngine, per-queue, \
           per-stage instruments) after the run; \"-\" writes to stdout.")

let dump_metrics dest json =
  match dest with
  | None -> ()
  | Some "-" -> Format.printf "%a@." Telemetry.Json.pp json
  | Some file -> (
      match open_out file with
      | oc ->
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Telemetry.Json.to_string json);
              output_char oc '\n');
          Format.printf "wrote metrics to %s@." file
      | exception Sys_error msg ->
          Format.eprintf "cannot write metrics: %s@." msg;
          exit 1)

let subnet_routes r n_ports =
  for p = 0 to n_ports - 1 do
    Router.add_route r
      (Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" p))
      ~port:p
  done

(* --- run ------------------------------------------------------------- *)

let run_cmd =
  let duration =
    Arg.(value & opt float 10.0 & info [ "d"; "duration" ] ~docv:"MS"
           ~doc:"Simulated milliseconds to run.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let mbps =
    Arg.(value & opt float 100. & info [ "mbps" ] ~docv:"MBPS"
           ~doc:"Per-port link speed.")
  in
  let frame_len =
    Arg.(value & opt int 64 & info [ "frame" ] ~docv:"BYTES"
           ~doc:"Frame length (64..1518).")
  in
  let exceptional =
    Arg.(value & opt float 0. & info [ "exceptional" ] ~docv:"SHARE"
           ~doc:"Fraction of frames carrying IP options (divert to the \
                 StrongARM).")
  in
  let syn_monitor =
    Arg.(value & flag & info [ "syn-monitor" ]
           ~doc:"Install the SYN-monitor data forwarder at boot.")
  in
  let faults =
    Arg.(value & opt string "none" & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Fault-injection scenario as comma-separated key:value \
                 pairs, e.g. mac_corrupt:0.01,pool_fail:0.005 (see \
                 lib/fault/scenario.mli for the keys).  Seeded from \
                 --seed, so a failing run replays exactly.")
  in
  let run duration seed mbps frame_len exceptional syn_monitor faults metrics =
    let scenario =
      match Fault.Scenario.parse faults with
      | Ok s -> Fault.Scenario.with_seed s (Int64.of_int seed)
      | Error msg ->
          Format.eprintf "bad --faults spec: %s@." msg;
          exit 2
    in
    let config =
      { Router.default_config with Router.port_mbps = mbps;
        Router.faults = scenario }
    in
    let r = Router.create ~config () in
    subnet_routes r config.Router.n_ports;
    let fid =
      if syn_monitor then
        match
          Router.Iface.install r.Router.iface ~key:Packet.Flow.All
            ~fwdr:Forwarders.Syn_monitor.forwarder ~where:Router.Iface.ME ()
        with
        | Ok fid -> Some fid
        | Error es -> failwith (String.concat "; " es)
      else None
    in
    Router.start r;
    let rng = Sim.Rng.create (Int64.of_int seed) in
    for p = 0 to config.Router.n_ports - 1 do
      let rng = Sim.Rng.split rng in
      let base =
        Workload.Mix.udp_uniform ~rng ~n_subnets:config.Router.n_ports
          ~frame_len ()
      in
      let gen =
        if exceptional > 0. then
          Workload.Mix.with_options_share ~rng:(Sim.Rng.split rng)
            ~share:exceptional base
        else base
      in
      ignore
        (Workload.Source.spawn_line_rate r.Router.engine
           ~name:(Printf.sprintf "gen%d" p)
           ~mbps ~frame_len ~gen
           ~offer:(fun f -> Router.inject r ~port:p f)
           ())
    done;
    Router.run_for r ~us:(duration *. 1000.);
    Format.printf "%a@." Router.pp_summary r;
    Option.iter
      (fun fid ->
        Format.printf "syn-monitor: %d SYNs@."
          (Forwarders.Syn_monitor.syn_count
             (Option.get (Router.Iface.getdata r.Router.iface fid))))
      fid;
    dump_metrics metrics (Router.telemetry_snapshot r);
    if not (Fault.Invariant.ok r.Router.invariants) then begin
      Format.eprintf "%a@." Fault.Invariant.pp_report r.Router.invariants;
      Format.eprintf
        "repro: router_cli run --faults '%s' --seed %d -d %g --mbps %g \
         --frame %d@."
        (Fault.Scenario.to_spec scenario)
        seed duration mbps frame_len;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Drive the full three-level router at line rate.")
    Term.(
      const run $ duration $ seed $ mbps $ frame_len $ exceptional
      $ syn_monitor $ faults $ metrics_arg)

(* --- peak ------------------------------------------------------------ *)

let peak_cmd =
  let input_disc =
    let disc =
      Arg.enum
        [
          ("i1", Router.Fixed_infra.I1_private);
          ("i2", Router.Fixed_infra.I2_protected);
          ("spin", Router.Fixed_infra.I_spinlock);
          ("dyn", Router.Fixed_infra.I_dynamic);
        ]
    in
    Arg.(value & opt disc Router.Fixed_infra.I2_protected
           & info [ "input" ] ~docv:"DISC"
               ~doc:"Input discipline: i1, i2, spin, dyn.")
  in
  let output_disc =
    let disc =
      Arg.enum
        [
          ("o1", Router.Fixed_infra.O1_batch);
          ("o2", Router.Fixed_infra.O2_single);
          ("o3", Router.Fixed_infra.O3_multi);
        ]
    in
    Arg.(value & opt disc Router.Fixed_infra.O1_batch
           & info [ "output" ] ~docv:"DISC" ~doc:"Output discipline: o1-o3.")
  in
  let contention =
    Arg.(value & flag & info [ "contention" ]
           ~doc:"All packets to one queue (I.3 / Figure 10).")
  in
  let blocks =
    Arg.(value & opt int 0 & info [ "vrp-blocks" ] ~docv:"N"
           ~doc:"Combination VRP blocks (10 instr + 4B SRAM) per packet.")
  in
  let in_ctx =
    Arg.(value & opt int 16 & info [ "input-contexts" ] ~docv:"N" ~doc:"")
  in
  let out_ctx =
    Arg.(value & opt int 8 & info [ "output-contexts" ] ~docv:"N" ~doc:"")
  in
  let run input_disc output_disc contention blocks in_ctx out_ctx metrics =
    let open Router.Fixed_infra in
    let code =
      List.concat
        (List.init blocks (fun _ ->
             [ Router.Vrp.Instr 10; Router.Vrp.Sram_read 4 ]))
    in
    let telemetry = Telemetry.Registry.create () in
    let r =
      run ~telemetry
        {
          default with
          input_disc;
          output_disc;
          contention;
          vrp_blocks = code;
          n_input_contexts = in_ctx;
          n_output_contexts = out_ctx;
        }
    in
    Format.printf "%a@." pp_result r;
    dump_metrics metrics (Telemetry.Registry.snapshot telemetry)
  in
  Cmd.v
    (Cmd.info "peak"
       ~doc:"FIFO-to-FIFO peak forwarding rate (section 3 experiments).")
    Term.(
      const run $ input_disc $ output_disc $ contention $ blocks $ in_ctx
      $ out_ctx $ metrics_arg)

(* --- budget ---------------------------------------------------------- *)

let budget_cmd =
  let pps =
    Arg.(value & opt float 1.128e6 & info [ "pps" ] ~docv:"PPS"
           ~doc:"Aggregate line rate in packets per second.")
  in
  let contexts =
    Arg.(value & opt int 16 & info [ "contexts" ] ~docv:"N"
           ~doc:"Input contexts.")
  in
  let run pps contexts =
    let b =
      Router.Capacity.vrp_budget Router.Capacity.default ~contexts
        ~line_rate_pps:pps ~hashes:3
    in
    Format.printf "VRP budget at %.3f Mpps with %d contexts: %a@." (pps /. 1e6)
      contexts Router.Vrp.pp_budget b
  in
  Cmd.v
    (Cmd.info "budget"
       ~doc:"VRP budget available at a line rate (section 4.3).")
    Term.(const run $ pps $ contexts)

let () =
  let info =
    Cmd.info "router_cli" ~version:"1.0"
      ~doc:
        "Simulated IXP1200 software router (Spalink et al., SOSP 2001 \
         reproduction)."
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; peak_cmd; budget_cmd ]))
