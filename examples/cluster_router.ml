(* The paper's section 6 future work, running: four Pentium/IXP pairs
   joined by a Gigabit Ethernet fabric behave as one 32-port router.

   A packet entering global port 2 (member 0) for a subnet owned by
   member 3 is classified on member 0, forwarded out an uplink with the
   owner's fabric MAC, switched, classified again on member 3, and
   transmitted on its external port — two IP hops inside one "router".

   Run with: dune exec examples/cluster_router.exe *)

let addr = Packet.Ipv4.addr_of_string

let () =
  let c = Cluster.create ~members:4 () in
  Format.printf
    "cluster: %d members, %d external ports, 2 x 1 Gbps uplinks each@."
    (Array.length c.Cluster.members)
    (4 * 8);

  (* One cross-cluster packet, end to end. *)
  let captured = ref None in
  Router.connect c.Cluster.members.(3) ~port:7 (fun f -> captured := Some f);
  let pkt =
    Packet.Build.udp ~src:(addr "10.250.0.1") ~dst:(addr "10.31.0.9")
      ~src_port:4000 ~dst_port:5000 ~ttl:64 ()
  in
  assert (Cluster.inject c ~global_port:2 pkt);
  Cluster.run_for c ~us:500.;
  (match !captured with
  | Some f ->
      Format.printf
        "cross-member packet delivered on global port 31: ttl %d (two hops), \
         header %s@."
        (Packet.Ipv4.get_ttl f)
        (if Packet.Ipv4.valid f then "valid" else "INVALID")
  | None -> failwith "packet lost");

  (* All-to-all load at line rate on every external port. *)
  let rng = Sim.Rng.create 8L in
  for g = 0 to 31 do
    let rng = Sim.Rng.split rng in
    ignore
      (Workload.Source.spawn_line_rate (Cluster.engine_of_global_port c g)
         ~name:(Printf.sprintf "ext%d" g)
         ~mbps:100. ~frame_len:64
         ~gen:(fun i ->
           ignore i;
           Packet.Build.udp
             ~src:(Workload.Mix.subnet_addr ~subnet:(100 + g) ~host:1)
             ~dst:
               (Workload.Mix.subnet_addr
                  ~subnet:(Sim.Rng.int rng 32)
                  ~host:(1 + Sim.Rng.int rng 50))
             ~src_port:1000 ~dst_port:2000 ())
         ~offer:(fun f -> Cluster.inject c ~global_port:g f)
         ())
  done;
  Cluster.run_for c ~us:8000.;
  let secs = Sim.Engine.seconds (Cluster.time c) in
  Format.printf
    "all-to-all at line rate: %.2f Mpps delivered across 32 ports, %.2f Mpps \
     over the fabric@."
    (float_of_int (Cluster.delivered_total c) /. secs /. 1e6)
    (Cluster.internal_pps c /. 1e6);
  let solo =
    Router.Capacity.vrp_budget Router.Capacity.default ~contexts:16
      ~line_rate_pps:1.128e6 ~hashes:3
  in
  let member = Cluster.vrp_budget_with_internal_link c ~line_rate_pps:4.512e6 in
  Format.printf
    "the internal link's cost (section 6): per-MP VRP budget %d cycles \
     standalone -> %d cycles as a cluster member@."
    solo.Router.Vrp.b_cycles member.Router.Vrp.b_cycles
