module Fabric_queue = Fabric_queue

type member_health = {
  mutable up : bool;
  mutable crash_epochs : int;
  mutable up_since_us : float;
  mutable quiet_since_us : float;
  mutable uplink_rx_at_crash : int;
  mutable attempts_at_quiet : int;
  mutable delivered_at_quiet : int;
  mutable refused_at_quiet : int;
  mutable awaiting_recovery : bool;
  mutable recovery_latency_us : float; (* negative until first measured *)
}

type fabric_counts = {
  offered : int;
  delivered : int;
  dropped_link : int;
  dropped_down : int;
  dropped_unknown : int;
  dropped_queue : int;
  rx_refused : int;
  corrupted : int;
  stalled : int;
  in_flight : int;
  queued : int;
  bp_refused : int;
}

(* A frame crossing the fabric, parked in the destination member's
   mailbox until that member's next epoch begins.  [src_seq] is the
   sender's monotonic fabric-send counter: together with [arrival_ps]
   and [src] it gives every message a unique, execution-order-free key,
   so the drain can sort arrivals into one canonical order no matter
   which domain appended first. *)
type fabric_msg = {
  arrival_ps : int;
  src : int;
  src_seq : int;
  dst_port : int;
  frame : Packet.Frame.t;
}

(* Per-member mailbox, double-buffered by epoch parity: during an epoch
   of parity [p] every sender appends to [pending.(p)], while the owner
   drained [pending.(1-p)] (everything sent during the previous epoch)
   at the epoch's start.  One barrier per epoch keeps the two buffers
   disjointly owned; the mutex only orders concurrent appenders. *)
type inbox = { ilock : Mutex.t; pending : fabric_msg list array }

type t = {
  engines : Sim.Engine.t array;
  members : Router.t array;
  switch_latency_us : float;
  lookahead_us : float;
  domains : int;
  faults : Fault.Cluster_scenario.t;
  latency_ps : int; (* switch_latency_us, integer picoseconds *)
  lookahead_ps : int; (* epoch length, integer picoseconds *)
  minor_heap_words : int; (* per-domain minor arena floor *)
  clock_ps : int ref; (* cluster barrier clock *)
  mutable epoch : int; (* epochs completed since create *)
  (* Deterministic per-member damage streams: egress draws on the
     sending side, ingress draws on the receiving side.  Never shared
     across members, so the draw order is independent of event
     interleaving between engines. *)
  egress_rng : Sim.Rng.t array;
  ingress_rng : Sim.Rng.t array;
  (* Control-plane churn: per-member streams (split after the queue
     streams, so enabling churn never shifts an existing draw) and a
     member-sharded count of routing-table writes the churn driver
     performed — its "damage injected" measure. *)
  churn_rng : Sim.Rng.t array;
  churn_writes : int array;
  (* Fabric accounting, sharded by the member whose domain mutates it:
     egress counters index the sender, ingress counters the receiver.
     Cluster totals are sums, read only at barriers. *)
  offered_by : int array;
  launched_by : int array;
  eg_dropped_link : int array;
  eg_dropped_unknown : int array;
  eg_corrupted : int array;
  eg_stalled : int array;
  settled_to : int array;
  in_dropped_link : int array;
  in_dropped_down : int array;
  in_corrupted : int array;
  in_stalled : int array;
  attempts_to : int array;
  delivered_to : int array;
  refused_to : int array;
  (* Finite fabric queues (PR 6): [eg_queues.(m)] sits between member
     [m]'s uplinks and the switch (owned by [m]'s engine); [in_queues.(m)]
     is the switch egress port towards [m] (owned by [m]'s engine, where
     arrivals already run).  Mutable only because their deliver closures
     need [t]; assigned once inside [create].  [in_q_dropped] counts
     ingress-queue drops (settled, dst-sharded); [bp_refused] counts
     external injects refused by egress backpressure (member-sharded). *)
  fabric_queue : Fabric_queue.config;
  mutable eg_queues : (int * Packet.Frame.t) Fabric_queue.t array;
  mutable in_queues : (int * Packet.Frame.t) Fabric_queue.t array;
  in_q_dropped : int array;
  bp_refused : int array;
  inboxes : inbox array;
  send_seq : int array;
  cur_parity : int array; (* per member: parity of the epoch it is in *)
  health : member_health array;
  invariants : Fault.Invariant.t;
  telemetry : Telemetry.Registry.t;
  member_scopes : Telemetry.Scope.t array;
  frame_pools : Packet.Frame_pool.t array; (* [||] unless [~frame_pool] *)
  invalid_escapes : int array;
  pending_violations : string list array;
}

(* Locally-administered, distinct from the per-port scheme. *)
let uplink_mac m = 0x02000000C100 lor (m land 0xFF)

let member_of_uplink_mac mac =
  if mac land 0xFFFFFFFF00 = 0x02000000C100 land 0xFFFFFFFF00 then
    Some (mac land 0xFF)
  else None

let time t = Int64.of_int !(t.clock_ps)

(* Inside a fiber this is the acting member's engine clock (identical in
   sequential and parallel runs — the member executes the same events at
   the same times); at a barrier it is the cluster clock. *)
let cluster_clock t () =
  match Sim.Engine.current_engine () with
  | Some e -> Sim.Engine.time e
  | None -> time t

let now_us t = Sim.Engine.seconds (cluster_clock t ()) *. 1e6

(* Long enough for anything launched before the damage ended to settle:
   both fabric hops plus slack. *)
let grace_us t = (4. *. t.switch_latency_us) +. 100.

let uplink_rx t m =
  let r = t.members.(m) in
  let n = r.Router.config.Router.n_ports in
  let ports = r.Router.chip.Ixp.Chip.ports in
  Ixp.Mac_port.rx_frames ports.(n) + Ixp.Mac_port.rx_frames ports.(n + 1)

let set_member_links t m up =
  Array.iter
    (fun p -> Ixp.Mac_port.set_link_up p up)
    t.members.(m).Router.chip.Ixp.Chip.ports

(* A crash is fail-stop at the PHYs: every port (external and uplink)
   refuses arrivals and transmits into the void, so the member emits
   nothing and accepts nothing — frames still queued inside it at the
   crash are lost at the dead MACs, counted per port as tx_link_down. *)
let do_crash t m =
  let h = t.health.(m) in
  h.up <- false;
  h.crash_epochs <- h.crash_epochs + 1;
  h.uplink_rx_at_crash <- uplink_rx t m;
  set_member_links t m false;
  (* The crash cuts the uplink under the member's egress queue: frames
     still queued (and the one in service) are stranded, counted as
     flushed so fabric conservation still balances.  The switch egress
     queue towards the member keeps draining — its frames die at the
     dead PHY as dropped_down, the accounted path. *)
  ignore (Fabric_queue.flush t.eg_queues.(m) : int);
  Telemetry.Scope.event t.member_scopes.(m) "crash"

let snapshot_quiet t m =
  let h = t.health.(m) in
  h.quiet_since_us <- now_us t;
  h.attempts_at_quiet <- t.attempts_to.(m);
  h.delivered_at_quiet <- t.delivered_to.(m);
  h.refused_at_quiet <- t.refused_to.(m)

let do_restart t m =
  let h = t.health.(m) in
  let rx = uplink_rx t m in
  (* The uplink MACs must not have accepted anything while dead; audit at
     the rejoin so a one-shot crash window cannot dodge the barrier. *)
  if rx <> h.uplink_rx_at_crash then
    t.pending_violations.(m) <-
      Printf.sprintf "member %d's uplinks accepted %d frame(s) while crashed" m
        (rx - h.uplink_rx_at_crash)
      :: t.pending_violations.(m);
  set_member_links t m true;
  h.up <- true;
  h.up_since_us <- now_us t;
  h.awaiting_recovery <- true;
  snapshot_quiet t m;
  Telemetry.Scope.event t.member_scopes.(m) "restart"

(* The deterministic fault drivers: per member, one fiber walking that
   member's crash/restart/window-end boundaries in time order on the
   member's own engine (a driver only ever touches its own member's
   state, so it is domain-confined by construction).  Spawned only when
   the member has at least one boundary, so a zero scenario leaves every
   event schedule untouched. *)
let spawn_drivers t =
  let open Fault.Cluster_scenario in
  Array.iteri
    (fun m engine ->
      let acts =
        List.concat_map
          (fun e ->
            if e.member <> m then []
            else
              match e.kind with
              | Crash ->
                  (e.start_us, `Crash)
                  ::
                  (if e.dur_us > 0. then
                     [ (e.start_us +. e.dur_us, `Restart) ]
                   else [])
              | Link_drop | Link_corrupt | Link_stall | Route_churn ->
                  if e.dur_us > 0. then [ (e.start_us +. e.dur_us, `Quiet) ]
                  else [])
          t.faults.events
      in
      let acts = List.stable_sort (fun (a, _) (b, _) -> compare a b) acts in
      if acts <> [] then
        Sim.Engine.spawn engine "cluster-fault-driver" (fun () ->
            List.iter
              (fun (at_us, act) ->
                let target = Sim.Engine.of_seconds (at_us *. 1e-6) in
                let d = Int64.sub target (Sim.Engine.now ()) in
                if Int64.compare d 0L > 0 then Sim.Engine.wait d;
                match act with
                | `Crash -> do_crash t m
                | `Restart -> do_restart t m
                | `Quiet -> snapshot_quiet t m)
              acts))
    t.engines

(* Control-plane route churn: one fiber per [route_churn] window on the
   member's own engine, announcing and withdrawing /24s against the
   member's live table at the scheduled rate — real FIB writes and
   route-cache invalidations while the data plane forwards.  The churned
   prefixes live in 172.16/12, disjoint from the cluster's 10/8 member
   subnets, so forwarding of fabric traffic is untouched while the
   update path takes the hits.  A fiber only touches its own member's
   table, RNG stream and counter, so it is domain-confined like the
   fault drivers. *)
let spawn_churn_fibers t =
  let open Fault.Cluster_scenario in
  Array.iteri
    (fun m engine ->
      List.iter
        (fun e ->
          Sim.Engine.spawn engine "cluster-route-churn" (fun () ->
              let start_ps = Sim.Engine.of_seconds (e.start_us *. 1e-6) in
              let d = Int64.sub start_ps (Sim.Engine.now ()) in
              if Int64.compare d 0L > 0 then Sim.Engine.wait d;
              let period_ps =
                Int64.of_float (Float.max 1. (1e12 /. e.param))
              in
              let end_ps =
                if e.dur_us <= 0. then Int64.max_int
                else Sim.Engine.of_seconds ((e.start_us +. e.dur_us) *. 1e-6)
              in
              let rng = t.churn_rng.(m) in
              let routes = t.members.(m).Router.routes in
              let ppm = t.members.(m).Router.config.Router.n_ports in
              let installed = ref [] in
              while Int64.compare (Sim.Engine.now ()) end_ps < 0 do
                (* A crashed member's control plane is down with it: no
                   writes and no draws until it rejoins, so the stream
                   stays aligned with the deterministic health
                   schedule. *)
                if t.health.(m).up then begin
                  (match !installed with
                  | p :: rest when Sim.Rng.bool rng ->
                      Iproute.Table.remove routes p;
                      installed := rest
                  | _ ->
                      let s = 16 + Sim.Rng.int rng 16 in
                      let x = Sim.Rng.int rng 256 in
                      let p =
                        Iproute.Prefix.of_string
                          (Printf.sprintf "172.%d.%d.0/24" s x)
                      in
                      Iproute.Table.add routes p
                        {
                          Iproute.Table.out_port = Sim.Rng.int rng ppm;
                          gateway_mac = Packet.Ethernet.mac_of_port 250;
                        };
                      installed := p :: !installed);
                  t.churn_writes.(m) <- t.churn_writes.(m) + 1
                end;
                Sim.Engine.wait period_ps
              done))
        (churn_events t.faults ~member:m))
    t.engines

let corrupt_copy rng f =
  let g = Packet.Frame.copy f in
  let len = Packet.Frame.len g in
  if len > 0 then begin
    let n = 1 + Sim.Rng.int rng 4 in
    for _ = 1 to n do
      let i = Sim.Rng.int rng len in
      Packet.Frame.set_u8 g i (Sim.Rng.int rng 256)
    done
  end;
  g

(* Zero-rate damage draws no randomness, mirroring [Fault.Injector]:
   enabling one member's fault never shifts another's stream, and the
   zero scenario never touches the RNG at all. *)
let fires rng rate = rate > 0. && Sim.Rng.float rng 1.0 < rate

(* Every terminal outcome on the receiving side increments [settled_to]
   in the same step it books the cause, so fabric conservation holds at
   any barrier, including one landing mid-stall or mid-queue. *)
let settle t ~dst bucket =
  bucket.(dst) <- bucket.(dst) + 1;
  t.settled_to.(dst) <- t.settled_to.(dst) + 1

(* The service class a frame rides in on a per-class fabric queue: the
   classic IP-precedence bits (clamped to the configured class count by
   the queue); anything unparseable travels best-effort in class 0. *)
let frame_class f =
  if
    Packet.Frame.len f >= Packet.Ipv4.offset + Packet.Ipv4.min_header_len
    && Packet.Ethernet.get_ethertype f = Packet.Ethernet.ethertype_ipv4
  then Packet.Ipv4.precedence f
  else 0

(* The switch egress port puts a frame on the destination member's
   uplink wire: the back half of the old delivery path, now also the
   ingress queue's service completion.  Runs on [dst]'s engine. *)
let uplink_tx t ~dst (port, f) =
  let h = t.health.(dst) in
  if not h.up then settle t ~dst t.in_dropped_down
  else begin
    t.attempts_to.(dst) <- t.attempts_to.(dst) + 1;
    if Router.inject t.members.(dst) ~port f then begin
      if h.awaiting_recovery then begin
        h.recovery_latency_us <- now_us t -. h.up_since_us;
        h.awaiting_recovery <- false
      end;
      settle t ~dst t.delivered_to
    end
    else if
      Ixp.Mac_port.link_up t.members.(dst).Router.chip.Ixp.Chip.ports.(port)
    then settle t ~dst t.refused_to
    else settle t ~dst t.in_dropped_down
  end

(* A frame arrives at the switch egress port towards [dst] after the
   switch latency (plus any stall).  Runs as a fiber on the
   destination's engine, so every counter it touches is
   destination-sharded.  After the link-damage stage it enters the
   egress port's finite queue; the default bypass queue hands it to
   {!uplink_tx} synchronously, reproducing the pre-queueing fabric
   byte for byte. *)
let deliver_fabric t ~dst ~port f =
  let at_us = now_us t in
  let h = t.health.(dst) in
  let rng = t.ingress_rng.(dst) in
  if not h.up then settle t ~dst t.in_dropped_down
  else if
    fires rng (Fault.Cluster_scenario.drop_rate t.faults ~member:dst ~at_us)
  then settle t ~dst t.in_dropped_link
  else begin
    let f =
      if
        fires rng
          (Fault.Cluster_scenario.corrupt_rate t.faults ~member:dst ~at_us)
      then begin
        t.in_corrupted.(dst) <- t.in_corrupted.(dst) + 1;
        corrupt_copy rng f
      end
      else f
    in
    let stall = Fault.Cluster_scenario.stall_us t.faults ~member:dst ~at_us in
    if stall > 0. then begin
      t.in_stalled.(dst) <- t.in_stalled.(dst) + 1;
      Sim.Engine.wait (Sim.Engine.of_seconds (stall *. 1e-6))
    end;
    if
      not
        (Fabric_queue.offer t.in_queues.(dst) ~cls:(frame_class f)
           ~len:(Packet.Frame.len f) (port, f))
    then settle t ~dst t.in_q_dropped
  end

(* Drain everything sent to member [m] during the previous epoch and
   schedule each arrival on [m]'s engine at its absolute timestamp.  The
   sort gives a canonical order independent of which sender appended
   first, so the receiver assigns the same event sequence numbers in
   sequential and parallel runs — the heart of the bit-for-bit
   identity. *)
let drain_inbox t m ~parity =
  let ib = t.inboxes.(m) in
  Mutex.lock ib.ilock;
  let msgs = ib.pending.(1 - parity) in
  ib.pending.(1 - parity) <- [];
  Mutex.unlock ib.ilock;
  match msgs with
  | [] -> ()
  | msgs ->
      let msgs =
        List.stable_sort
          (fun a b ->
            if a.arrival_ps <> b.arrival_ps then
              compare a.arrival_ps b.arrival_ps
            else if a.src <> b.src then compare a.src b.src
            else compare a.src_seq b.src_seq)
          msgs
      in
      List.iter
        (fun msg ->
          Sim.Engine.spawn_at t.engines.(m)
            ~at:(Int64.of_int msg.arrival_ps)
            "fabric-rx"
            (fun () -> deliver_fabric t ~dst:m ~port:msg.dst_port msg.frame))
        msgs

(* The learning switch, egress side: a frame that cleared the member's
   uplink queue goes onto the wire into the switch.  Runs inside the
   sending member's fiber (the uplink queue's service completion — or
   the sender's own fiber under bypass).  Damage draws use the sender's
   stream; the frame is copied at the switch ingress (store-and-forward
   — the fabric owns its own bytes), which also keeps the sender's
   recycling buffer pool from reusing a frame the receiving domain still
   holds.  The copy is unpooled, so the receiver's recycler ignores
   it. *)
let launch_fabric t ~src (port, f) =
  let at_us = now_us t in
  let rng = t.egress_rng.(src) in
  if fires rng (Fault.Cluster_scenario.drop_rate t.faults ~member:src ~at_us)
  then t.eg_dropped_link.(src) <- t.eg_dropped_link.(src) + 1
  else begin
    let f =
      if
        fires rng
          (Fault.Cluster_scenario.corrupt_rate t.faults ~member:src ~at_us)
      then begin
        t.eg_corrupted.(src) <- t.eg_corrupted.(src) + 1;
        corrupt_copy rng f
      end
      else Packet.Frame.copy f
    in
    let unknown () =
      t.eg_dropped_unknown.(src) <- t.eg_dropped_unknown.(src) + 1
    in
    match member_of_uplink_mac (Packet.Ethernet.get_dst f) with
    | None -> unknown ()
    | Some d when d >= Array.length t.members -> unknown ()
    | Some d ->
        t.launched_by.(src) <- t.launched_by.(src) + 1;
        let stall =
          Fault.Cluster_scenario.stall_us t.faults ~member:src ~at_us
        in
        let stall_ps =
          if stall > 0. then begin
            t.eg_stalled.(src) <- t.eg_stalled.(src) + 1;
            Int64.to_int (Sim.Engine.of_seconds (stall *. 1e-6))
          end
          else 0
        in
        (* Integer arithmetic keeps the conservative bound exact:
           arrival - send >= latency_ps >= lookahead_ps. *)
        let arrival = Sim.Engine.now_i () + t.latency_ps + stall_ps in
        let seq = t.send_seq.(src) in
        t.send_seq.(src) <- seq + 1;
        let msg =
          { arrival_ps = arrival; src; src_seq = seq; dst_port = port; frame = f }
        in
        let ib = t.inboxes.(d) in
        Mutex.lock ib.ilock;
        ib.pending.(t.cur_parity.(src)) <-
          msg :: ib.pending.(t.cur_parity.(src));
        Mutex.unlock ib.ilock
  end

(* A frame leaving a member's uplink MAC first enters that uplink's
   finite queue; {!launch_fabric} is its service completion.  The frame
   the MAC hands us is already a fresh unpooled copy
   ({!Ixp.Mac_port.transmit_frame} sinks a [prefix_copy]), so holding it
   across the queueing delay is safe.  The default bypass queue calls
   {!launch_fabric} synchronously — the pre-queueing fabric, byte for
   byte. *)
let send_fabric t ~src ~port f =
  t.offered_by.(src) <- t.offered_by.(src) + 1;
  ignore
    (Fabric_queue.offer t.eg_queues.(src) ~cls:(frame_class f)
       ~len:(Packet.Frame.len f) (port, f)
      : bool)

let wire_switch t =
  let uplink_local = t.members.(0).Router.config.Router.n_ports in
  let gated = not (Fabric_queue.is_bypass t.fabric_queue) in
  Array.iteri
    (fun m r ->
      List.iter
        (fun up ->
          Router.connect r ~port:up (fun f -> send_fabric t ~src:m ~port:up f);
          (* Backpressure into the member's egress path: while the uplink
             queue is past its high watermark the MAC reports the wire
             busy, so the output loop holds frames in the router's own
             queues (it polls with backoff — no livelock). *)
          if gated then
            Ixp.Mac_port.set_tx_gate r.Router.chip.Ixp.Chip.ports.(up)
              (fun () -> not (Fabric_queue.paused t.eg_queues.(m))))
        [ uplink_local; uplink_local + 1 ])
    t.members

(* --- conservative epoch scheduler ------------------------------------- *)

(* Sense-reversing barrier: brief spin (cheap when domains outnumber
   cores zero times over), then block on a condition variable (cheap
   when they don't — this container may have a single core, where
   spinning a full timeslice per epoch would be pathological). *)
module Barrier = struct
  type b = {
    n : int;
    count : int Atomic.t;
    gen : int Atomic.t;
    lock : Mutex.t;
    cond : Condition.t;
  }

  let create n =
    {
      n;
      count = Atomic.make 0;
      gen = Atomic.make 0;
      lock = Mutex.create ();
      cond = Condition.create ();
    }

  let wait b =
    let g = Atomic.get b.gen in
    if Atomic.fetch_and_add b.count 1 = b.n - 1 then begin
      (* Last arrival: reset for the next generation, then release.  The
         count reset is safe before the generation bump — nobody can
         re-enter this barrier until [gen] moves. *)
      Atomic.set b.count 0;
      Mutex.lock b.lock;
      Atomic.incr b.gen;
      Condition.broadcast b.cond;
      Mutex.unlock b.lock
    end
    else begin
      let spins = ref 0 in
      while Atomic.get b.gen = g && !spins < 4096 do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.gen = g then begin
        Mutex.lock b.lock;
        while Atomic.get b.gen = g do
          Condition.wait b.cond b.lock
        done;
        Mutex.unlock b.lock
      end
    end
end

(* Advance every member to [target_ps] in lookahead-sized epochs.

   Conservative-lookahead argument: a frame sent at time s pays at least
   [latency_ps >= lookahead_ps], so its arrival satisfies
   arrival = s + latency + stall > e_{k-1} + lookahead = e_k for any
   send inside epoch k = (e_{k-1}, e_k].  Hence nothing sent during an
   epoch can arrive within that same epoch, and draining each mailbox at
   the *next* epoch's start schedules every arrival before its receiver
   can pass its timestamp.  Members never interact except through the
   mailboxes, so each epoch's events are independent across members and
   may run on concurrent domains.

   Sequential ([domains = 1]) runs the identical epoch machinery on one
   domain, so parallel and sequential runs execute the same per-member
   event sequences by construction — same metrics, same audits. *)
let run_epochs t ~target_ps =
  let start = !(t.clock_ps) in
  if target_ps > start then begin
    let members = Array.length t.members in
    let nd = t.domains in
    let l = t.lookahead_ps in
    let n_epochs = (target_ps - start + l - 1) / l in
    let barrier = if nd > 1 then Some (Barrier.create nd) else None in
    let stop = Atomic.make false in
    let errors = Array.make nd None in
    let epoch0 = t.epoch in
    let minor_words = t.minor_heap_words in
    let body did k =
      let e = min target_ps (start + ((k + 1) * l)) in
      let parity = (epoch0 + k) land 1 in
      let m = ref did in
      while !m < members do
        drain_inbox t !m ~parity;
        t.cur_parity.(!m) <- parity;
        Sim.Engine.run t.engines.(!m) ~until:(Int64.of_int e);
        m := !m + nd
      done
    in
    (* A worker that fails still visits every barrier (it just stops
       simulating), so its peers cannot hang; the first error re-raises
       after the join, with its original backtrace. *)
    let worker did () =
      (* Freshly spawned domains start on the runtime's default minor
         arena; size it like the creating domain's so an epoch of
         steady-state forwarding never minor-collects mid-run.  GC pacing
         is invisible to the simulation (the determinism digests exclude
         host-GC gauges), so this is pure throughput. *)
      if did > 0 then begin
        let cur = Gc.get () in
        if cur.Gc.minor_heap_size < minor_words then
          Gc.set { cur with Gc.minor_heap_size = minor_words }
      end;
      for k = 0 to n_epochs - 1 do
        (if not (Atomic.get stop) then
           try body did k
           with ex ->
             errors.(did) <- Some (ex, Printexc.get_raw_backtrace ());
             Atomic.set stop true);
        match barrier with Some b -> Barrier.wait b | None -> ()
      done
    in
    let spawned = List.init (nd - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    t.epoch <- t.epoch + n_epochs;
    t.clock_ps := target_ps;
    Array.iter
      (function
        | Some (ex, bt) -> Printexc.raise_with_backtrace ex bt | None -> ())
      errors
  end

(* --- invariants and telemetry ------------------------------------------ *)

let sum = Array.fold_left ( + ) 0
let qsum f qs = Array.fold_left (fun acc q -> acc + f q) 0 qs

(* Queue drops on the egress side (tail, RED, crash-flushed) never reach
   [launched_by]/[settled_to]; ingress-queue drops settle via
   [in_q_dropped].  Frames sitting in either queue are "queued". *)
let eg_queue_dropped t =
  qsum Fabric_queue.dropped t.eg_queues + qsum Fabric_queue.flushed t.eg_queues

let queued_frames t =
  qsum Fabric_queue.occupancy t.eg_queues
  + qsum Fabric_queue.occupancy t.in_queues

let register_invariants t =
  let reg = Fault.Invariant.register t.invariants in
  reg "fabric-conservation" (fun () ->
      let offered = sum t.offered_by in
      let in_occ = qsum Fabric_queue.occupancy t.in_queues in
      let eg_occ = qsum Fabric_queue.occupancy t.eg_queues in
      (* On the wire or paying an injected stall: launched but neither
         settled nor parked in a switch egress queue. *)
      let in_flight = sum t.launched_by - sum t.settled_to - in_occ in
      let settled =
        sum t.delivered_to
        + (sum t.eg_dropped_link + sum t.in_dropped_link)
        + sum t.in_dropped_down + sum t.eg_dropped_unknown + sum t.refused_to
        + sum t.in_q_dropped + eg_queue_dropped t
      in
      if settled + in_flight + eg_occ + in_occ <> offered then
        Some
          (Printf.sprintf
             "fabric offered %d frames but %d settled + %d in flight + %d \
              queued"
             offered settled in_flight (eg_occ + in_occ))
      else None);
  reg "no-escape-to-crashed" (fun () ->
      let msgs =
        List.concat (Array.to_list (Array.map List.rev t.pending_violations))
      in
      if msgs <> [] then begin
        Array.fill t.pending_violations 0 (Array.length t.pending_violations) [];
        Some (String.concat "; " msgs)
      end
      else begin
        let bad = ref None in
        Array.iteri
          (fun m h ->
            if (not h.up) && !bad = None then begin
              let rx = uplink_rx t m in
              if rx <> h.uplink_rx_at_crash then
                bad :=
                  Some
                    (Printf.sprintf
                       "member %d's uplinks accepted %d frame(s) while crashed"
                       m
                       (rx - h.uplink_rx_at_crash))
            end)
          t.health;
        !bad
      end);
  reg "membership-state" (fun () ->
      let at_us = now_us t in
      let bad = ref None in
      Array.iteri
        (fun m h ->
          (* A barrier can land exactly on a crash/restart edge, where
             float rounding of the picosecond clock puts [at_us] an
             epsilon on either side of the scheduled instant: only flag a
             member whose state disagrees with the schedule on BOTH sides
             of the edge. *)
          let crashed_at at_us =
            Fault.Cluster_scenario.crashed t.faults ~member:m ~at_us
          in
          let should = not (crashed_at at_us) in
          let unambiguous =
            crashed_at (at_us -. 1e-3) = crashed_at (at_us +. 1e-3)
          in
          if !bad = None && unambiguous && h.up <> should then
            bad :=
              Some
                (Printf.sprintf
                   "member %d is %s but the schedule says %s at %.0f us" m
                   (if h.up then "up" else "down")
                   (if should then "up" else "down")
                   at_us))
        t.health;
      !bad);
  (* Convergence: once a member is back up and its damage windows are
     over (plus a settling grace), fabric frames addressed to it must be
     reaching its uplink again — delivered, or at worst refused by port
     memory, but not vanishing.  Catches a restart that forgets to
     re-raise the links, or stuck health state. *)
  reg "membership-convergence" (fun () ->
      let at_us = now_us t in
      let bad = ref None in
      Array.iteri
        (fun m h ->
          if
            !bad = None && h.up
            && not
                 (Fault.Cluster_scenario.member_active t.faults ~member:m
                    ~at_us)
            && at_us -. Float.max h.up_since_us h.quiet_since_us >= grace_us t
          then begin
            let attempts = t.attempts_to.(m) - h.attempts_at_quiet in
            let progressed =
              t.delivered_to.(m) - h.delivered_at_quiet
              + (t.refused_to.(m) - h.refused_at_quiet)
            in
            if attempts >= 20 && progressed = 0 then
              bad :=
                Some
                  (Printf.sprintf
                     "member %d: %d fabric frames addressed since \
                      rejoin/quiet but none reached its uplink"
                     m attempts)
          end)
        t.health;
      !bad);
  reg "no-invalid-escape"
    (let seen = ref 0 in
     fun () ->
       let n = sum t.invalid_escapes in
       if n > !seen then begin
         let fresh = n - !seen in
         seen := n;
         Some
           (Printf.sprintf
              "%d malformed frame(s) escaped member external ports" fresh)
       end
       else None)

let register_telemetry t =
  let fab = Telemetry.Registry.scope t.telemetry "fabric" in
  let g name f = Telemetry.Scope.gauge_int fab name f in
  g "frames" (fun () -> sum t.offered_by);
  g "delivered" (fun () -> sum t.delivered_to);
  g "dropped_link" (fun () -> sum t.eg_dropped_link + sum t.in_dropped_link);
  g "dropped_down" (fun () -> sum t.in_dropped_down);
  g "dropped_unknown" (fun () -> sum t.eg_dropped_unknown);
  g "rx_refused" (fun () -> sum t.refused_to);
  g "corrupted" (fun () -> sum t.eg_corrupted + sum t.in_corrupted);
  g "stalled" (fun () -> sum t.eg_stalled + sum t.in_stalled);
  g "in_flight" (fun () ->
      sum t.launched_by - sum t.settled_to
      - qsum Fabric_queue.occupancy t.in_queues);
  g "queued" (fun () -> queued_frames t);
  g "queue_dropped_tail" (fun () ->
      qsum Fabric_queue.dropped_tail t.eg_queues
      + qsum Fabric_queue.dropped_tail t.in_queues);
  g "queue_dropped_red" (fun () ->
      qsum Fabric_queue.dropped_red t.eg_queues
      + qsum Fabric_queue.dropped_red t.in_queues);
  g "queue_flushed" (fun () -> qsum Fabric_queue.flushed t.eg_queues);
  g "queue_hwm" (fun () ->
      Array.fold_left
        (fun acc q -> max acc (Fabric_queue.hwm q))
        0
        (Array.append t.eg_queues t.in_queues));
  g "bp_pauses" (fun () ->
      qsum Fabric_queue.pauses t.eg_queues
      + qsum Fabric_queue.pauses t.in_queues);
  g "bp_refused" (fun () -> sum t.bp_refused);
  Telemetry.Scope.gauge fab "queue_delay_us_mean" (fun () ->
      let served =
        qsum Fabric_queue.serviced t.eg_queues
        + qsum Fabric_queue.serviced t.in_queues
      in
      if served = 0 then 0.
      else
        Sim.Engine.seconds
          (Int64.of_int
             (qsum Fabric_queue.delay_ps_total t.eg_queues
             + qsum Fabric_queue.delay_ps_total t.in_queues))
        *. 1e6 /. float_of_int served);
  Array.iteri
    (fun m scope ->
      let h = t.health.(m) in
      let r = t.members.(m) in
      let n = r.Router.config.Router.n_ports in
      let ports = r.Router.chip.Ixp.Chip.ports in
      Telemetry.Scope.gauge_int scope "up" (fun () -> if h.up then 1 else 0);
      Telemetry.Scope.gauge_int scope "crash_epochs" (fun () -> h.crash_epochs);
      Telemetry.Scope.gauge scope "recovery_latency_us" (fun () ->
          h.recovery_latency_us);
      Telemetry.Scope.gauge_int scope "fabric_attempts" (fun () ->
          t.attempts_to.(m));
      Telemetry.Scope.gauge_int scope "fabric_delivered" (fun () ->
          t.delivered_to.(m));
      Telemetry.Scope.gauge_int scope "fabric_refused" (fun () ->
          t.refused_to.(m));
      Telemetry.Scope.gauge_int scope "uplink_rx_link_down" (fun () ->
          Ixp.Mac_port.rx_link_down ports.(n)
          + Ixp.Mac_port.rx_link_down ports.(n + 1));
      Telemetry.Scope.gauge_int scope "tx_link_down" (fun () ->
          Array.fold_left
            (fun acc p -> acc + Ixp.Mac_port.tx_link_down p)
            0 ports);
      Telemetry.Scope.gauge_int scope "uplink_queue_depth" (fun () ->
          Fabric_queue.occupancy t.eg_queues.(m));
      Telemetry.Scope.gauge_int scope "uplink_queue_hwm" (fun () ->
          Fabric_queue.hwm t.eg_queues.(m));
      Telemetry.Scope.gauge_int scope "egress_queue_depth" (fun () ->
          Fabric_queue.occupancy t.in_queues.(m));
      Telemetry.Scope.gauge_int scope "egress_queue_hwm" (fun () ->
          Fabric_queue.hwm t.in_queues.(m));
      Telemetry.Scope.gauge_int scope "uplink_tx_gated" (fun () ->
          Ixp.Mac_port.tx_gated ports.(n) + Ixp.Mac_port.tx_gated ports.(n + 1));
      Telemetry.Scope.gauge_int scope "bp_refused" (fun () ->
          t.bp_refused.(m));
      Telemetry.Scope.gauge_int scope "route_churn_writes" (fun () ->
          t.churn_writes.(m));
      Telemetry.Scope.gauge_int scope "route_count" (fun () ->
          Iproute.Table.size r.Router.routes))
    t.member_scopes

let create ?(members = 4) ?(ports_per_member = 8) ?(switch_latency_us = 2.)
    ?lookahead_us ?(domains = 1) ?(config = Router.default_config)
    ?(faults = Fault.Cluster_scenario.zero) ?(frame_pool = false)
    ?(fabric_queue = Fabric_queue.bypass)
    ?(minor_heap_words = 4 * 1024 * 1024) () =
  if members < 2 then invalid_arg "Cluster.create: members < 2";
  if minor_heap_words < 0 then invalid_arg "Cluster.create: minor_heap_words";
  (* Size this domain's minor arena up front (never down — respect a
     larger ambient setting); worker domains spawned by [run_epochs]
     apply the same floor on entry.  With the data path pooled the
     steady-state allocation rate is ~100 words/packet, so a few
     megawords of arena keeps whole epochs collection-free. *)
  (let cur = Gc.get () in
   if cur.Gc.minor_heap_size < minor_heap_words then
     Gc.set { cur with Gc.minor_heap_size = minor_heap_words });
  let named = Fault.Cluster_scenario.max_member faults in
  if named >= members then
    invalid_arg
      (Printf.sprintf
         "Cluster.create: fault scenario names member %d but the cluster has \
          %d members"
         named members);
  if domains < 1 then invalid_arg "Cluster.create: domains < 1";
  let lookahead_us =
    match lookahead_us with None -> switch_latency_us | Some l -> l
  in
  (* The conservative bound: the fabric's minimum latency is the switch
     latency (stalls only add), so a member may run at most that far
     ahead of its peers.  A larger lookahead would let a frame arrive in
     the past of a receiver that already simulated beyond it. *)
  if lookahead_us <= 0. then
    invalid_arg "Cluster.create: lookahead_us must be positive";
  if lookahead_us > switch_latency_us then
    invalid_arg
      (Printf.sprintf
         "Cluster.create: lookahead_us (%g) exceeds the minimum fabric \
          latency (switch_latency_us = %g): members could outrun in-flight \
          frames"
         lookahead_us switch_latency_us);
  let latency_ps =
    Int64.to_int (Sim.Engine.of_seconds (switch_latency_us *. 1e-6))
  in
  let lookahead_ps =
    Int64.to_int (Sim.Engine.of_seconds (lookahead_us *. 1e-6))
  in
  if lookahead_ps <= 0 then
    invalid_arg "Cluster.create: lookahead_us rounds to zero picoseconds";
  let domains = min domains members in
  let engines = Array.init members (fun _ -> Sim.Engine.create ()) in
  (* Two 1 Gbps uplinks per member (the evaluation board's pair): cross
     traffic is spread across them by destination subnet so each stays
     within a single output context's reach. *)
  let config =
    {
      config with
      Router.n_ports = ports_per_member;
      uplink_ports = 2;
      uplink_mbps = 1000.;
    }
  in
  let rs =
    Array.init members (fun m -> Router.create ~config ~engine:engines.(m) ())
  in
  let frame_pools =
    if not frame_pool then [||]
    else
      Array.map
        (fun r ->
          let pool =
            Packet.Frame_pool.create ~max_frames:4096 ~frame_bytes:512 ()
          in
          Router.set_frame_pool r pool;
          pool)
        rs
  in
  let uplink_local = ports_per_member in
  (* Routes: every member knows every global subnet; remote ones point at
     the owner's uplink MAC across the fabric. *)
  Array.iteri
    (fun m r ->
      for g = 0 to (members * ports_per_member) - 1 do
        let owner = g / ports_per_member in
        let prefix =
          Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" g)
        in
        if owner = m then
          Router.add_route r prefix ~port:(g mod ports_per_member)
        else
          Iproute.Table.add r.Router.routes prefix
            {
              Iproute.Table.out_port = uplink_local + (g mod 2);
              gateway_mac = uplink_mac owner;
            }
      done)
    rs;
  let clock_ps = ref 0 in
  let telemetry = Telemetry.Registry.create () in
  let member_scopes =
    Array.init members (fun m ->
        Telemetry.Registry.scope telemetry "member"
          ~labels:[ ("id", string_of_int m) ])
  in
  (* Per-member deterministic damage streams, split off one master in
     fixed member order; creation draws nothing downstream, so the zero
     scenario still never consumes randomness. *)
  let master = Sim.Rng.create faults.Fault.Cluster_scenario.seed in
  let egress_rng = Array.make members master in
  let ingress_rng = Array.make members master in
  for m = 0 to members - 1 do
    egress_rng.(m) <- Sim.Rng.split master;
    ingress_rng.(m) <- Sim.Rng.split master
  done;
  (* Queue streams (RED's early-drop draws) split *after* the damage
     streams, in member order, so enabling queueing never shifts an
     existing stream — and the bypass queue never draws, so a cluster
     without queueing still consumes exactly the old randomness. *)
  let eg_q_rng = Array.make members master in
  let in_q_rng = Array.make members master in
  for m = 0 to members - 1 do
    eg_q_rng.(m) <- Sim.Rng.split master;
    in_q_rng.(m) <- Sim.Rng.split master
  done;
  (* Churn streams split after the queue streams for the same reason:
     adding route churn to a scenario never shifts damage or RED
     draws. *)
  let churn_rng = Array.make members master in
  for m = 0 to members - 1 do
    churn_rng.(m) <- Sim.Rng.split master
  done;
  let invariants =
    Fault.Invariant.create
      ~scope:(Telemetry.Registry.scope telemetry "invariant")
      ~clock:(fun () ->
        match Sim.Engine.current_engine () with
        | Some e -> Sim.Engine.time e
        | None -> Int64.of_int !clock_ps)
      ()
  in
  let t =
    {
      engines;
      members = rs;
      switch_latency_us;
      lookahead_us;
      domains;
      faults;
      latency_ps;
      lookahead_ps;
      minor_heap_words;
      clock_ps;
      epoch = 0;
      egress_rng;
      ingress_rng;
      churn_rng;
      churn_writes = Array.make members 0;
      offered_by = Array.make members 0;
      launched_by = Array.make members 0;
      eg_dropped_link = Array.make members 0;
      eg_dropped_unknown = Array.make members 0;
      eg_corrupted = Array.make members 0;
      eg_stalled = Array.make members 0;
      settled_to = Array.make members 0;
      in_dropped_link = Array.make members 0;
      in_dropped_down = Array.make members 0;
      in_corrupted = Array.make members 0;
      in_stalled = Array.make members 0;
      attempts_to = Array.make members 0;
      delivered_to = Array.make members 0;
      refused_to = Array.make members 0;
      fabric_queue;
      eg_queues = [||];
      in_queues = [||];
      in_q_dropped = Array.make members 0;
      bp_refused = Array.make members 0;
      inboxes =
        Array.init members (fun _ ->
            { ilock = Mutex.create (); pending = Array.make 2 [] });
      send_seq = Array.make members 0;
      cur_parity = Array.make members 0;
      health =
        Array.init members (fun _ ->
            {
              up = true;
              crash_epochs = 0;
              up_since_us = 0.;
              quiet_since_us = 0.;
              uplink_rx_at_crash = 0;
              attempts_at_quiet = 0;
              delivered_at_quiet = 0;
              refused_at_quiet = 0;
              awaiting_recovery = false;
              recovery_latency_us = -1.;
            });
      invariants;
      telemetry;
      member_scopes;
      frame_pools;
      invalid_escapes = Array.make members 0;
      pending_violations = Array.make members [];
    }
  in
  (* The deliver closures need [t], so the queues are assigned right
     after it exists (and before anything can run).  Creation draws
     nothing from the queue streams. *)
  t.eg_queues <-
    Array.init members (fun m ->
        Fabric_queue.create ~cfg:fabric_queue ~rng:eg_q_rng.(m)
          ~deliver:(fun item -> launch_fabric t ~src:m item)
          ());
  t.in_queues <-
    Array.init members (fun m ->
        Fabric_queue.create ~cfg:fabric_queue ~rng:in_q_rng.(m)
          ~deliver:(fun item -> uplink_tx t ~dst:m item)
          ());
  Telemetry.Registry.set_clock telemetry (cluster_clock t);
  register_telemetry t;
  register_invariants t;
  wire_switch t;
  (* Members run fault-free routers, so their own sinks do not audit
     escapes; under a cluster fault scenario the fabric can corrupt
     frames, so audit member egress here. *)
  if not (Fault.Cluster_scenario.is_zero faults) then
    Array.iteri
      (fun m r ->
        for p = 0 to ports_per_member - 1 do
          Router.connect r ~port:p (fun f ->
              if not (Router.frame_escapable f) then
                t.invalid_escapes.(m) <- t.invalid_escapes.(m) + 1)
        done)
      rs;
  spawn_drivers t;
  spawn_churn_fibers t;
  Array.iter (fun r -> Router.start r) rs;
  t

let member_of_global_port t g =
  let ppm = t.members.(0).Router.config.Router.n_ports in
  (g / ppm, g mod ppm)

let engine_of_global_port t g =
  let m, _ = member_of_global_port t g in
  t.engines.(m)

let inject t ~global_port f =
  let m, p = member_of_global_port t global_port in
  (* Backpressure reaching all the way to the edge: while the member's
     uplink queue is past its high watermark, new external arrivals are
     refused at the port — the member cannot tell which frames would
     cross the fabric, so a congested uplink pushes back on the whole
     input path.  Bypass queues never pause, so the default path is
     unchanged. *)
  if Fabric_queue.paused t.eg_queues.(m) then begin
    t.bp_refused.(m) <- t.bp_refused.(m) + 1;
    false
  end
  else Router.inject t.members.(m) ~port:p f

let delivered t ~global_port =
  let m, p = member_of_global_port t global_port in
  Sim.Stats.Counter.value t.members.(m).Router.delivered.(p)

let delivered_total t =
  Array.fold_left
    (fun acc r ->
      let n = r.Router.config.Router.n_ports in
      let sum = ref 0 in
      for p = 0 to n - 1 do
        sum := !sum + Sim.Stats.Counter.value r.Router.delivered.(p)
      done;
      acc + !sum)
    0 t.members

let fabric_frames t = sum t.offered_by

let internal_pps t =
  let secs = Sim.Engine.seconds (time t) in
  if secs <= 0. then 0. else float_of_int (fabric_frames t) /. secs

let vrp_budget_with_internal_link t ~line_rate_pps =
  let members = float_of_int (Array.length t.members) in
  (* One member's input contexts see its external share plus the fabric
     traffic addressed to it. *)
  let per_member = (line_rate_pps +. internal_pps t) /. members in
  Router.Capacity.vrp_budget Router.Capacity.default ~contexts:16
    ~line_rate_pps:per_member ~hashes:3

let fabric_counts t =
  {
    offered = sum t.offered_by;
    delivered = sum t.delivered_to;
    dropped_link = sum t.eg_dropped_link + sum t.in_dropped_link;
    dropped_down = sum t.in_dropped_down;
    dropped_unknown = sum t.eg_dropped_unknown;
    dropped_queue = eg_queue_dropped t + sum t.in_q_dropped;
    rx_refused = sum t.refused_to;
    corrupted = sum t.eg_corrupted + sum t.in_corrupted;
    stalled = sum t.eg_stalled + sum t.in_stalled;
    in_flight =
      sum t.launched_by - sum t.settled_to
      - qsum Fabric_queue.occupancy t.in_queues;
    queued = queued_frames t;
    bp_refused = sum t.bp_refused;
  }

let member_up t m = t.health.(m).up
let crash_epochs t m = t.health.(m).crash_epochs
let route_churn_writes t = sum t.churn_writes

let recovery_latency_us t m =
  let l = t.health.(m).recovery_latency_us in
  if l < 0. then None else Some l

let frame_pool t m =
  if Array.length t.frame_pools = 0 then None else Some t.frame_pools.(m)

let check_invariants t =
  let fresh = Fault.Invariant.check t.invariants in
  Array.fold_left (fun acc r -> acc + Router.check_invariants r) fresh t.members

let violations t =
  let tag name vs = List.map (fun v -> (name, v)) vs in
  let cluster = tag "cluster" (Fault.Invariant.violations t.invariants) in
  let members =
    List.concat
      (List.mapi
         (fun m r ->
           tag
             (Printf.sprintf "member%d" m)
             (Fault.Invariant.violations r.Router.invariants))
         (Array.to_list t.members))
  in
  cluster @ members

let invariants_ok t = violations t = []

let run_for t ~us =
  let target =
    !(t.clock_ps) + Int64.to_int (Sim.Engine.of_seconds (us *. 1e-6))
  in
  run_epochs t ~target_ps:target;
  (* Every pause is a barrier: the worker domains are joined, so the
     audit reads every member's state race-free (pure reads — the
     zero-fault schedule is untouched). *)
  ignore (check_invariants t : int)

let telemetry_snapshot t =
  Telemetry.Json.Obj
    [
      ("cluster", Telemetry.Registry.snapshot t.telemetry);
      ( "members",
        Telemetry.Json.List
          (Array.to_list (Array.map Router.telemetry_snapshot t.members)) );
    ]

let member_metrics_md5 t m =
  Digest.to_hex
    (Digest.string
       (Telemetry.Json.to_string (Router.telemetry_snapshot t.members.(m))))
