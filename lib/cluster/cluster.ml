type member_health = {
  mutable up : bool;
  mutable crash_epochs : int;
  mutable up_since_us : float;
  mutable quiet_since_us : float;
  mutable uplink_rx_at_crash : int;
  mutable attempts_at_quiet : int;
  mutable delivered_at_quiet : int;
  mutable refused_at_quiet : int;
  mutable awaiting_recovery : bool;
  mutable recovery_latency_us : float; (* negative until first measured *)
}

type fabric_counts = {
  offered : int;
  delivered : int;
  dropped_link : int;
  dropped_down : int;
  dropped_unknown : int;
  rx_refused : int;
  corrupted : int;
  stalled : int;
  in_flight : int;
}

type t = {
  engine : Sim.Engine.t;
  members : Router.t array;
  switch_latency_us : float;
  fabric_frames : Sim.Stats.Counter.t;
  faults : Fault.Cluster_scenario.t;
  fabric_rng : Sim.Rng.t;
  fab_delivered : Sim.Stats.Counter.t;
  fab_dropped_link : Sim.Stats.Counter.t;
  fab_dropped_down : Sim.Stats.Counter.t;
  fab_dropped_unknown : Sim.Stats.Counter.t;
  fab_rx_refused : Sim.Stats.Counter.t;
  fab_corrupted : Sim.Stats.Counter.t;
  fab_stalled : Sim.Stats.Counter.t;
  mutable fab_in_flight : int;
  health : member_health array;
  attempts_to : int array;
  delivered_to : int array;
  refused_to : int array;
  invariants : Fault.Invariant.t;
  telemetry : Telemetry.Registry.t;
  member_scopes : Telemetry.Scope.t array;
  frame_pools : Packet.Frame_pool.t array; (* [||] unless [~frame_pool] *)
  invalid_escapes : int ref;
  mutable pending_violations : string list;
}

(* Locally-administered, distinct from the per-port scheme. *)
let uplink_mac m = 0x02000000C100 lor (m land 0xFF)

let member_of_uplink_mac mac =
  if mac land 0xFFFFFFFF00 = 0x02000000C100 land 0xFFFFFFFF00 then
    Some (mac land 0xFF)
  else None

let now_us t = Sim.Engine.seconds (Sim.Engine.time t.engine) *. 1e6

(* Long enough for anything launched before the damage ended to settle:
   both fabric hops plus slack. *)
let grace_us t = (4. *. t.switch_latency_us) +. 100.

let uplink_rx t m =
  let r = t.members.(m) in
  let n = r.Router.config.Router.n_ports in
  let ports = r.Router.chip.Ixp.Chip.ports in
  Ixp.Mac_port.rx_frames ports.(n) + Ixp.Mac_port.rx_frames ports.(n + 1)

let set_member_links t m up =
  Array.iter
    (fun p -> Ixp.Mac_port.set_link_up p up)
    t.members.(m).Router.chip.Ixp.Chip.ports

(* A crash is fail-stop at the PHYs: every port (external and uplink)
   refuses arrivals and transmits into the void, so the member emits
   nothing and accepts nothing — frames still queued inside it at the
   crash are lost at the dead MACs, counted per port as tx_link_down. *)
let do_crash t m =
  let h = t.health.(m) in
  h.up <- false;
  h.crash_epochs <- h.crash_epochs + 1;
  h.uplink_rx_at_crash <- uplink_rx t m;
  set_member_links t m false;
  Telemetry.Scope.event t.member_scopes.(m) "crash"

let snapshot_quiet t m =
  let h = t.health.(m) in
  h.quiet_since_us <- now_us t;
  h.attempts_at_quiet <- t.attempts_to.(m);
  h.delivered_at_quiet <- t.delivered_to.(m);
  h.refused_at_quiet <- t.refused_to.(m)

let do_restart t m =
  let h = t.health.(m) in
  let rx = uplink_rx t m in
  (* The uplink MACs must not have accepted anything while dead; audit at
     the rejoin so a one-shot crash window cannot dodge the barrier. *)
  if rx <> h.uplink_rx_at_crash then
    t.pending_violations <-
      Printf.sprintf "member %d's uplinks accepted %d frame(s) while crashed"
        m (rx - h.uplink_rx_at_crash)
      :: t.pending_violations;
  set_member_links t m true;
  h.up <- true;
  h.up_since_us <- now_us t;
  h.awaiting_recovery <- true;
  snapshot_quiet t m;
  Telemetry.Scope.event t.member_scopes.(m) "restart"

(* The deterministic fault driver: one fiber walking the scenario's
   crash/restart/window-end boundaries in time order.  Spawned only when
   there is at least one boundary, so a zero scenario leaves the event
   schedule untouched. *)
let spawn_driver t =
  let open Fault.Cluster_scenario in
  let acts =
    List.concat_map
      (fun e ->
        match e.kind with
        | Crash ->
            (e.start_us, `Crash e.member)
            ::
            (if e.dur_us > 0. then
               [ (e.start_us +. e.dur_us, `Restart e.member) ]
             else [])
        | Link_drop | Link_corrupt | Link_stall ->
            if e.dur_us > 0. then [ (e.start_us +. e.dur_us, `Quiet e.member) ]
            else [])
      t.faults.events
  in
  let acts = List.stable_sort (fun (a, _) (b, _) -> compare a b) acts in
  if acts <> [] then
    Sim.Engine.spawn t.engine "cluster-fault-driver" (fun () ->
        List.iter
          (fun (at_us, act) ->
            let target = Sim.Engine.of_seconds (at_us *. 1e-6) in
            let d = Int64.sub target (Sim.Engine.now ()) in
            if Int64.compare d 0L > 0 then Sim.Engine.wait d;
            match act with
            | `Crash m -> do_crash t m
            | `Restart m -> do_restart t m
            | `Quiet m -> snapshot_quiet t m)
          acts)

let corrupt_copy t f =
  Sim.Stats.Counter.incr t.fab_corrupted;
  let g = Packet.Frame.copy f in
  let len = Packet.Frame.len g in
  if len > 0 then begin
    let n = 1 + Sim.Rng.int t.fabric_rng 4 in
    for _ = 1 to n do
      let i = Sim.Rng.int t.fabric_rng len in
      Packet.Frame.set_u8 g i (Sim.Rng.int t.fabric_rng 256)
    done
  end;
  g

(* Zero-rate damage draws no randomness, mirroring [Fault.Injector]:
   enabling one member's fault never shifts another's stream, and the
   zero scenario never touches the RNG at all. *)
let fires t rate = rate > 0. && Sim.Rng.float t.fabric_rng 1.0 < rate

(* A frame arrives at the destination member's uplink after the switch
   latency (plus any stall).  Every exit decrements [fab_in_flight] in
   the same step it books the outcome, so fabric conservation holds at
   any barrier, including one landing mid-stall. *)
let deliver_fabric t ~dst ~port f =
  let settle c =
    Sim.Stats.Counter.incr c;
    t.fab_in_flight <- t.fab_in_flight - 1
  in
  let at_us = now_us t in
  let h = t.health.(dst) in
  if not h.up then settle t.fab_dropped_down
  else if fires t (Fault.Cluster_scenario.drop_rate t.faults ~member:dst ~at_us)
  then settle t.fab_dropped_link
  else begin
    let f =
      if
        fires t
          (Fault.Cluster_scenario.corrupt_rate t.faults ~member:dst ~at_us)
      then corrupt_copy t f
      else f
    in
    let stall = Fault.Cluster_scenario.stall_us t.faults ~member:dst ~at_us in
    if stall > 0. then begin
      Sim.Stats.Counter.incr t.fab_stalled;
      Sim.Engine.wait (Sim.Engine.of_seconds (stall *. 1e-6))
    end;
    if not h.up then settle t.fab_dropped_down
    else begin
      t.attempts_to.(dst) <- t.attempts_to.(dst) + 1;
      if Router.inject t.members.(dst) ~port f then begin
        t.delivered_to.(dst) <- t.delivered_to.(dst) + 1;
        if h.awaiting_recovery then begin
          h.recovery_latency_us <- now_us t -. h.up_since_us;
          h.awaiting_recovery <- false
        end;
        settle t.fab_delivered
      end
      else if
        Ixp.Mac_port.link_up t.members.(dst).Router.chip.Ixp.Chip.ports.(port)
      then begin
        t.refused_to.(dst) <- t.refused_to.(dst) + 1;
        settle t.fab_rx_refused
      end
      else settle t.fab_dropped_down
    end
  end

(* The learning switch: deliver by destination MAC after a small
   store-and-forward latency, onto the same-numbered uplink of the
   destination member.  Link damage applies on both crossings of a
   member's fabric link: egress here (source side), ingress in
   [deliver_fabric]. *)
let wire_switch t =
  let members = Array.length t.members in
  let uplink_local = t.members.(0).Router.config.Router.n_ports in
  Array.iteri
    (fun m r ->
      List.iter
        (fun up ->
          Router.connect r ~port:up (fun f ->
              Sim.Stats.Counter.incr t.fabric_frames;
              let at_us = now_us t in
              if
                fires t
                  (Fault.Cluster_scenario.drop_rate t.faults ~member:m ~at_us)
              then Sim.Stats.Counter.incr t.fab_dropped_link
              else begin
                let f =
                  if
                    fires t
                      (Fault.Cluster_scenario.corrupt_rate t.faults ~member:m
                         ~at_us)
                  then corrupt_copy t f
                  else f
                in
                match member_of_uplink_mac (Packet.Ethernet.get_dst f) with
                | None -> Sim.Stats.Counter.incr t.fab_dropped_unknown
                | Some m' when m' >= members ->
                    Sim.Stats.Counter.incr t.fab_dropped_unknown
                | Some m' ->
                    t.fab_in_flight <- t.fab_in_flight + 1;
                    let stall =
                      Fault.Cluster_scenario.stall_us t.faults ~member:m ~at_us
                    in
                    if stall > 0. then Sim.Stats.Counter.incr t.fab_stalled;
                    Sim.Engine.spawn t.engine "switch" (fun () ->
                        Sim.Engine.wait
                          (Sim.Engine.of_seconds
                             ((t.switch_latency_us +. stall) *. 1e-6));
                        deliver_fabric t ~dst:m' ~port:up f)
              end))
        [ uplink_local; uplink_local + 1 ])
    t.members

let register_invariants t =
  let reg = Fault.Invariant.register t.invariants in
  let v = Sim.Stats.Counter.value in
  reg "fabric-conservation" (fun () ->
      let offered = v t.fabric_frames in
      let settled =
        v t.fab_delivered + v t.fab_dropped_link + v t.fab_dropped_down
        + v t.fab_dropped_unknown + v t.fab_rx_refused
      in
      if settled + t.fab_in_flight <> offered then
        Some
          (Printf.sprintf
             "fabric offered %d frames but %d settled + %d in flight" offered
             settled t.fab_in_flight)
      else None);
  reg "no-escape-to-crashed" (fun () ->
      match t.pending_violations with
      | msgs when msgs <> [] ->
          t.pending_violations <- [];
          Some (String.concat "; " (List.rev msgs))
      | _ ->
          let bad = ref None in
          Array.iteri
            (fun m h ->
              if (not h.up) && !bad = None then begin
                let rx = uplink_rx t m in
                if rx <> h.uplink_rx_at_crash then
                  bad :=
                    Some
                      (Printf.sprintf
                         "member %d's uplinks accepted %d frame(s) while \
                          crashed"
                         m
                         (rx - h.uplink_rx_at_crash))
              end)
            t.health;
          !bad);
  reg "membership-state" (fun () ->
      let at_us = now_us t in
      let bad = ref None in
      Array.iteri
        (fun m h ->
          (* A barrier can land exactly on a crash/restart edge, where
             float rounding of the picosecond clock puts [at_us] an
             epsilon on either side of the scheduled instant: only flag a
             member whose state disagrees with the schedule on BOTH sides
             of the edge. *)
          let crashed_at at_us =
            Fault.Cluster_scenario.crashed t.faults ~member:m ~at_us
          in
          let should = not (crashed_at at_us) in
          let unambiguous =
            crashed_at (at_us -. 1e-3) = crashed_at (at_us +. 1e-3)
          in
          if !bad = None && unambiguous && h.up <> should then
            bad :=
              Some
                (Printf.sprintf
                   "member %d is %s but the schedule says %s at %.0f us" m
                   (if h.up then "up" else "down")
                   (if should then "up" else "down")
                   at_us))
        t.health;
      !bad);
  (* Convergence: once a member is back up and its damage windows are
     over (plus a settling grace), fabric frames addressed to it must be
     reaching its uplink again — delivered, or at worst refused by port
     memory, but not vanishing.  Catches a restart that forgets to
     re-raise the links, or stuck health state. *)
  reg "membership-convergence" (fun () ->
      let at_us = now_us t in
      let bad = ref None in
      Array.iteri
        (fun m h ->
          if
            !bad = None && h.up
            && not (Fault.Cluster_scenario.member_active t.faults ~member:m ~at_us)
            && at_us -. Float.max h.up_since_us h.quiet_since_us >= grace_us t
          then begin
            let attempts = t.attempts_to.(m) - h.attempts_at_quiet in
            let progressed =
              t.delivered_to.(m) - h.delivered_at_quiet
              + (t.refused_to.(m) - h.refused_at_quiet)
            in
            if attempts >= 20 && progressed = 0 then
              bad :=
                Some
                  (Printf.sprintf
                     "member %d: %d fabric frames addressed since \
                      rejoin/quiet but none reached its uplink"
                     m attempts)
          end)
        t.health;
      !bad);
  reg "no-invalid-escape"
    (let seen = ref 0 in
     fun () ->
       let n = !(t.invalid_escapes) in
       if n > !seen then begin
         let fresh = n - !seen in
         seen := n;
         Some
           (Printf.sprintf
              "%d malformed frame(s) escaped member external ports" fresh)
       end
       else None)

let register_telemetry t =
  let fab = Telemetry.Registry.scope t.telemetry "fabric" in
  let rc name c = Telemetry.Scope.register_counter fab ~name c in
  rc "frames" t.fabric_frames;
  rc "delivered" t.fab_delivered;
  rc "dropped_link" t.fab_dropped_link;
  rc "dropped_down" t.fab_dropped_down;
  rc "dropped_unknown" t.fab_dropped_unknown;
  rc "rx_refused" t.fab_rx_refused;
  rc "corrupted" t.fab_corrupted;
  rc "stalled" t.fab_stalled;
  Telemetry.Scope.gauge_int fab "in_flight" (fun () -> t.fab_in_flight);
  Array.iteri
    (fun m scope ->
      let h = t.health.(m) in
      let r = t.members.(m) in
      let n = r.Router.config.Router.n_ports in
      let ports = r.Router.chip.Ixp.Chip.ports in
      Telemetry.Scope.gauge_int scope "up" (fun () -> if h.up then 1 else 0);
      Telemetry.Scope.gauge_int scope "crash_epochs" (fun () -> h.crash_epochs);
      Telemetry.Scope.gauge scope "recovery_latency_us" (fun () ->
          h.recovery_latency_us);
      Telemetry.Scope.gauge_int scope "fabric_attempts" (fun () ->
          t.attempts_to.(m));
      Telemetry.Scope.gauge_int scope "fabric_delivered" (fun () ->
          t.delivered_to.(m));
      Telemetry.Scope.gauge_int scope "fabric_refused" (fun () ->
          t.refused_to.(m));
      Telemetry.Scope.gauge_int scope "uplink_rx_link_down" (fun () ->
          Ixp.Mac_port.rx_link_down ports.(n)
          + Ixp.Mac_port.rx_link_down ports.(n + 1));
      Telemetry.Scope.gauge_int scope "tx_link_down" (fun () ->
          Array.fold_left
            (fun acc p -> acc + Ixp.Mac_port.tx_link_down p)
            0 ports))
    t.member_scopes

let create ?(members = 4) ?(ports_per_member = 8) ?(switch_latency_us = 2.)
    ?(config = Router.default_config) ?(faults = Fault.Cluster_scenario.zero)
    ?(frame_pool = false) () =
  if members < 2 then invalid_arg "Cluster.create: members < 2";
  let named = Fault.Cluster_scenario.max_member faults in
  if named >= members then
    invalid_arg
      (Printf.sprintf
         "Cluster.create: fault scenario names member %d but the cluster has \
          %d members"
         named members);
  let engine = Sim.Engine.create () in
  (* Two 1 Gbps uplinks per member (the evaluation board's pair): cross
     traffic is spread across them by destination subnet so each stays
     within a single output context's reach. *)
  let config =
    {
      config with
      Router.n_ports = ports_per_member;
      uplink_ports = 2;
      uplink_mbps = 1000.;
    }
  in
  let rs = Array.init members (fun _ -> Router.create ~config ~engine ()) in
  let frame_pools =
    if not frame_pool then [||]
    else
      Array.map
        (fun r ->
          let pool =
            Packet.Frame_pool.create ~max_frames:4096 ~frame_bytes:512 ()
          in
          Router.set_frame_pool r pool;
          pool)
        rs
  in
  let uplink_local = ports_per_member in
  (* Routes: every member knows every global subnet; remote ones point at
     the owner's uplink MAC across the fabric. *)
  Array.iteri
    (fun m r ->
      for g = 0 to (members * ports_per_member) - 1 do
        let owner = g / ports_per_member in
        let prefix =
          Iproute.Prefix.of_string (Printf.sprintf "10.%d.0.0/16" g)
        in
        if owner = m then
          Router.add_route r prefix ~port:(g mod ports_per_member)
        else
          Iproute.Table.add r.Router.routes prefix
            {
              Iproute.Table.out_port = uplink_local + (g mod 2);
              gateway_mac = uplink_mac owner;
            }
      done)
    rs;
  let telemetry = Telemetry.Registry.create () in
  Telemetry.Registry.set_clock telemetry (fun () -> Sim.Engine.time engine);
  let member_scopes =
    Array.init members (fun m ->
        Telemetry.Registry.scope telemetry "member"
          ~labels:[ ("id", string_of_int m) ])
  in
  let invariants =
    Fault.Invariant.create
      ~scope:(Telemetry.Registry.scope telemetry "invariant")
      ~clock:(fun () -> Sim.Engine.time engine)
      ()
  in
  let t =
    {
      engine;
      members = rs;
      switch_latency_us;
      fabric_frames = Sim.Stats.Counter.create "fabric.frames";
      faults;
      fabric_rng = Sim.Rng.create faults.Fault.Cluster_scenario.seed;
      fab_delivered = Sim.Stats.Counter.create "fabric.delivered";
      fab_dropped_link = Sim.Stats.Counter.create "fabric.dropped_link";
      fab_dropped_down = Sim.Stats.Counter.create "fabric.dropped_down";
      fab_dropped_unknown = Sim.Stats.Counter.create "fabric.dropped_unknown";
      fab_rx_refused = Sim.Stats.Counter.create "fabric.rx_refused";
      fab_corrupted = Sim.Stats.Counter.create "fabric.corrupted";
      fab_stalled = Sim.Stats.Counter.create "fabric.stalled";
      fab_in_flight = 0;
      health =
        Array.init members (fun _ ->
            {
              up = true;
              crash_epochs = 0;
              up_since_us = 0.;
              quiet_since_us = 0.;
              uplink_rx_at_crash = 0;
              attempts_at_quiet = 0;
              delivered_at_quiet = 0;
              refused_at_quiet = 0;
              awaiting_recovery = false;
              recovery_latency_us = -1.;
            });
      attempts_to = Array.make members 0;
      delivered_to = Array.make members 0;
      refused_to = Array.make members 0;
      invariants;
      telemetry;
      member_scopes;
      frame_pools;
      invalid_escapes = ref 0;
      pending_violations = [];
    }
  in
  register_telemetry t;
  register_invariants t;
  wire_switch t;
  (* Members run fault-free routers, so their own sinks do not audit
     escapes; under a cluster fault scenario the fabric can corrupt
     frames, so audit member egress here. *)
  if not (Fault.Cluster_scenario.is_zero faults) then
    Array.iter
      (fun r ->
        for p = 0 to ports_per_member - 1 do
          Router.connect r ~port:p (fun f ->
              if not (Router.frame_escapable f) then incr t.invalid_escapes)
        done)
      rs;
  spawn_driver t;
  Array.iter (fun r -> Router.start r) rs;
  t

let member_of_global_port t g =
  let ppm = t.members.(0).Router.config.Router.n_ports in
  (g / ppm, g mod ppm)

let inject t ~global_port f =
  let m, p = member_of_global_port t global_port in
  Router.inject t.members.(m) ~port:p f

let delivered t ~global_port =
  let m, p = member_of_global_port t global_port in
  Sim.Stats.Counter.value t.members.(m).Router.delivered.(p)

let delivered_total t =
  Array.fold_left
    (fun acc r ->
      let n = r.Router.config.Router.n_ports in
      let sum = ref 0 in
      for p = 0 to n - 1 do
        sum := !sum + Sim.Stats.Counter.value r.Router.delivered.(p)
      done;
      acc + !sum)
    0 t.members

let internal_pps t =
  let secs = Sim.Engine.seconds (Sim.Engine.time t.engine) in
  if secs <= 0. then 0.
  else float_of_int (Sim.Stats.Counter.value t.fabric_frames) /. secs

let vrp_budget_with_internal_link t ~line_rate_pps =
  let members = float_of_int (Array.length t.members) in
  (* One member's input contexts see its external share plus the fabric
     traffic addressed to it. *)
  let per_member = (line_rate_pps +. internal_pps t) /. members in
  Router.Capacity.vrp_budget Router.Capacity.default ~contexts:16
    ~line_rate_pps:per_member ~hashes:3

let fabric_counts t =
  let v = Sim.Stats.Counter.value in
  {
    offered = v t.fabric_frames;
    delivered = v t.fab_delivered;
    dropped_link = v t.fab_dropped_link;
    dropped_down = v t.fab_dropped_down;
    dropped_unknown = v t.fab_dropped_unknown;
    rx_refused = v t.fab_rx_refused;
    corrupted = v t.fab_corrupted;
    stalled = v t.fab_stalled;
    in_flight = t.fab_in_flight;
  }

let member_up t m = t.health.(m).up
let crash_epochs t m = t.health.(m).crash_epochs

let recovery_latency_us t m =
  let l = t.health.(m).recovery_latency_us in
  if l < 0. then None else Some l

let frame_pool t m =
  if Array.length t.frame_pools = 0 then None else Some t.frame_pools.(m)

let check_invariants t =
  let fresh = Fault.Invariant.check t.invariants in
  Array.fold_left (fun acc r -> acc + Router.check_invariants r) fresh t.members

let violations t =
  let tag name vs = List.map (fun v -> (name, v)) vs in
  let cluster = tag "cluster" (Fault.Invariant.violations t.invariants) in
  let members =
    List.concat
      (List.mapi
         (fun m r ->
           tag
             (Printf.sprintf "member%d" m)
             (Fault.Invariant.violations r.Router.invariants))
         (Array.to_list t.members))
  in
  cluster @ members

let invariants_ok t = violations t = []

let run_for t ~us =
  let target =
    Int64.add (Sim.Engine.time t.engine) (Sim.Engine.of_seconds (us *. 1e-6))
  in
  Sim.Engine.run t.engine ~until:target;
  (* Every pause is a barrier: audit the cluster registry and every
     member's own registry (pure reads, so the zero-fault schedule is
     untouched). *)
  ignore (check_invariants t : int)

let telemetry_snapshot t =
  Telemetry.Json.Obj
    [
      ("cluster", Telemetry.Registry.snapshot t.telemetry);
      ( "members",
        Telemetry.Json.List
          (Array.to_list (Array.map Router.telemetry_snapshot t.members)) );
    ]
