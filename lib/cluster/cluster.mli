(** The section 6 configuration: several Pentium/IXP pairs connected by a
    Gigabit Ethernet switch into one larger router.

    "We next plan to construct a router from four Pentium/IXP pairs
    connected by a Gigabit Ethernet switch.  The main difference ... is
    that we will need to budget RI capacity to service packets arriving on
    the 'internal' link ..., leaving fewer cycles for the VRP."

    Each member keeps its 8 external 100 Mbps ports and adds a 1 Gbps
    uplink into a learning switch.  Globally, external port [g] lives on
    member [g / ports_per_member].  A member routes locally-owned subnets
    out its own ports and everything else across the switch to the owner,
    whose uplink MAC the route's gateway field names — so the internal hop
    is ordinary IP forwarding plus a MAC-switched fabric, and a
    cross-member packet pays classification (and TTL) twice, exactly the
    structural cost the paper anticipates.

    {b Parallel execution.}  Every member runs its own {!Sim.Engine};
    members interact only through the fabric, whose minimum latency
    ([switch_latency_us]) bounds how far one member may simulate ahead of
    its peers.  {!run_for} therefore advances the cluster in {e epochs}
    of that lookahead: frames sent during one epoch are parked in the
    destination's mailbox and scheduled — in a canonical
    [(arrival, sender, sender-sequence)] order — at the start of the
    next, before the receiver can pass their timestamps.  With
    [~domains:n > 1] the per-epoch member work is spread across [n]
    OCaml domains with a barrier per epoch; with the default
    [~domains:1] the identical epoch machinery runs on one domain, so a
    parallel run is bit-for-bit identical to a sequential one (same
    per-member telemetry, same invariant audits) by construction.

    The cluster extends the PR-2 fault plane across members: a
    {!Fault.Cluster_scenario} can damage a member's fabric link
    (drop/corrupt/stall, seeded and windowed) or fail-stop a whole member
    and later restart it.  Cluster-level invariants — fabric-frame
    conservation by cause, no frame accepted by a crashed member's
    uplinks, membership state matching the schedule, convergence after
    damage ends, and no malformed frame escaping an external port — are
    audited at every {!run_for} barrier together with each member's own
    registry.

    {b Fabric queueing (PR 6).}  Each uplink into the switch and each
    switch egress port can carry a finite {!Fabric_queue} (tail-drop,
    RED, strict-priority or weighted per-class service).  Queue delay
    only ever adds to the switch latency, so the conservative-lookahead
    bound is untouched; queue occupancy exerts backpressure into
    {!inject} and, through the uplink MAC's transmit gate, into the
    member's own egress path.  The conservation invariant extends to
    offered = settled + in_flight + queued + dropped, with crash-flushed
    queues accounted.  The default bypass configuration reproduces the
    unqueued fabric byte for byte. *)

module Fabric_queue = Fabric_queue

type member_health = {
  mutable up : bool;
  mutable crash_epochs : int;
  mutable up_since_us : float;
  mutable quiet_since_us : float;
  mutable uplink_rx_at_crash : int;
  mutable attempts_at_quiet : int;
  mutable delivered_at_quiet : int;
  mutable refused_at_quiet : int;
  mutable awaiting_recovery : bool;
  mutable recovery_latency_us : float;
      (** us from rejoin to the first fabric delivery; negative until
          measured *)
}

type fabric_counts = {
  offered : int;  (** frames leaving any member's uplink into the switch *)
  delivered : int;  (** accepted by the destination member's uplink *)
  dropped_link : int;  (** lost to injected link damage *)
  dropped_down : int;  (** destination member was crashed *)
  dropped_unknown : int;  (** destination MAC not a member uplink *)
  dropped_queue : int;
      (** dropped by a finite fabric queue: tail drop, RED early drop,
          or flushed by a crash *)
  rx_refused : int;  (** destination uplink port memory overflowed *)
  corrupted : int;  (** frames byte-damaged in transit (still forwarded) *)
  stalled : int;  (** frames that paid extra injected latency *)
  in_flight : int;  (** on the fabric wire (or mid-stall) right now *)
  queued : int;  (** parked in a fabric queue right now *)
  bp_refused : int;
      (** external injects refused by uplink-queue backpressure (not
          fabric frames — never part of [offered]) *)
}

type fabric_msg = {
  arrival_ps : int;
  src : int;
  src_seq : int;
  dst_port : int;
  frame : Packet.Frame.t;
}
(** A frame in flight across the fabric, parked in the destination's
    mailbox until its next epoch drains it. *)

type inbox = { ilock : Mutex.t; pending : fabric_msg list array }
(** Per-member mailbox, double-buffered by epoch parity: senders append
    to the current epoch's buffer while the owner drains the previous
    epoch's at each epoch start. *)

type t = {
  engines : Sim.Engine.t array;  (** one engine per member *)
  members : Router.t array;
  switch_latency_us : float;
  lookahead_us : float;  (** epoch length; <= [switch_latency_us] *)
  domains : int;  (** worker domains used by {!run_for} *)
  faults : Fault.Cluster_scenario.t;
  latency_ps : int;
  lookahead_ps : int;
  minor_heap_words : int;  (** per-domain minor-arena floor *)
  clock_ps : int ref;  (** cluster barrier clock *)
  mutable epoch : int;
  egress_rng : Sim.Rng.t array;
  ingress_rng : Sim.Rng.t array;
  churn_rng : Sim.Rng.t array;
      (** per-member route-churn streams, split after the queue streams *)
  churn_writes : int array;
      (** routing-table writes by the churn driver, member-sharded *)
  offered_by : int array;  (** fabric accounting, sharded by acting member: *)
  launched_by : int array;  (** egress counters index the sender, ... *)
  eg_dropped_link : int array;
  eg_dropped_unknown : int array;
  eg_corrupted : int array;
  eg_stalled : int array;
  settled_to : int array;  (** ... ingress counters the receiver *)
  in_dropped_link : int array;
  in_dropped_down : int array;
  in_corrupted : int array;
  in_stalled : int array;
  attempts_to : int array;
  delivered_to : int array;
  refused_to : int array;
  fabric_queue : Fabric_queue.config;
      (** the per-hop queue configuration (default bypass) *)
  mutable eg_queues : (int * Packet.Frame.t) Fabric_queue.t array;
      (** member [m]'s uplink queue into the switch (on [m]'s engine) *)
  mutable in_queues : (int * Packet.Frame.t) Fabric_queue.t array;
      (** the switch egress queue towards member [m] (on [m]'s engine) *)
  in_q_dropped : int array;
      (** ingress-queue drops, settled and dst-sharded *)
  bp_refused : int array;
      (** external injects refused by backpressure, member-sharded *)
  inboxes : inbox array;
  send_seq : int array;
  cur_parity : int array;
  health : member_health array;
  invariants : Fault.Invariant.t;
  telemetry : Telemetry.Registry.t;
  member_scopes : Telemetry.Scope.t array;
  frame_pools : Packet.Frame_pool.t array;
  invalid_escapes : int array;
  pending_violations : string list array;
}

val create :
  ?members:int ->
  ?ports_per_member:int ->
  ?switch_latency_us:float ->
  ?lookahead_us:float ->
  ?domains:int ->
  ?config:Router.config ->
  ?faults:Fault.Cluster_scenario.t ->
  ?frame_pool:bool ->
  ?fabric_queue:Fabric_queue.config ->
  ?minor_heap_words:int ->
  unit ->
  t
(** [create ()] builds a 4-member cluster (8 external ports each), routes
    subnet 10.[g].0.0/16 to global external port [g], wires the uplinks
    through the switch, and starts every member on its own engine.
    [config] overrides the per-member router configuration (the uplink
    ports are added to it).

    [lookahead_us] (default [switch_latency_us]) is the epoch length of
    the conservative scheduler.  Raises [Invalid_argument] if it is not
    positive or exceeds [switch_latency_us], the fabric's minimum
    latency — a larger lookahead would let a member simulate past a
    frame still in flight towards it.

    [domains] (default 1, clamped to [members]) spreads each epoch's
    member work across that many OCaml domains.  Any value yields the
    identical simulation; [> 1] only changes wall-clock time.

    [faults] injects the cluster scenario; the default [zero] builds no
    driver fibers and draws no randomness, so a faultless cluster is
    byte-identical to one created without the argument.  [frame_pool]
    gives each member a recycling frame pool (with its conservation
    invariant), for pool-accounting audits across crash/restart.

    [fabric_queue] (default {!Fabric_queue.bypass}) puts a finite queue
    of that configuration on every uplink and every switch egress port.
    The bypass default delivers synchronously, draws nothing and never
    pauses, so an unqueued cluster behaves exactly as before; RED's
    drop draws come from dedicated per-hop streams split after the
    damage streams, so enabling queueing never shifts existing draws.

    [minor_heap_words] (default 4M words) is a floor on the minor-arena
    size applied to the creating domain and to every worker domain
    [run_for] spawns — with the data path pooled the steady-state
    allocation rate is low enough that whole epochs then run without a
    single minor collection.  The floor never shrinks a larger ambient
    setting, and GC pacing is invisible to the simulation (host-GC
    gauges are excluded from the determinism digests). *)

val uplink_mac : int -> Packet.Ethernet.mac
(** The MAC identifying member [m]'s uplink on the fabric. *)

val member_of_global_port : t -> int -> int * int
(** [member_of_global_port t g] is [(member, local_port)]. *)

val engine_of_global_port : t -> int -> Sim.Engine.t
(** The engine of the member owning global port [g] — where a traffic
    source feeding that port must be spawned. *)

val time : t -> int64
(** The cluster barrier clock in picoseconds: the target of the last
    {!run_for} (0 before the first). *)

val inject : t -> global_port:int -> Packet.Frame.t -> bool
(** Offer a frame to a global external port.  False if port memory is
    full, the owning member is crashed — or the member's uplink queue
    has engaged backpressure (counted in [bp_refused]). *)

val delivered : t -> global_port:int -> int
(** Frames transmitted out a global external port. *)

val delivered_total : t -> int
(** Across all external ports (uplinks excluded). *)

val fabric_frames : t -> int
(** Frames offered to the switch so far (equals
    [(fabric_counts t).offered]). *)

val internal_pps : t -> float
(** Fabric crossings per second so far. *)

val vrp_budget_with_internal_link : t -> line_rate_pps:float -> Router.Vrp.budget
(** The paper's section 6 point, quantified: the per-MP VRP budget once
    the input contexts must also service the internal link's share
    ([line_rate_pps] external aggregate plus the measured internal rate). *)

val fabric_counts : t -> fabric_counts
(** Fabric accounting by cause; conservation ([offered] equals the other
    buckets plus [in_flight] plus [queued]) is audited at every
    barrier.  [bp_refused] stands apart: those frames never entered the
    fabric. *)

val member_up : t -> int -> bool
val crash_epochs : t -> int -> int

val route_churn_writes : t -> int
(** Total routing-table writes performed by [route_churn] drivers across
    all members — the churn scenarios' injected-effect measure, also per
    member as the [route_churn_writes] telemetry gauge. *)

val recovery_latency_us : t -> int -> float option
(** Time from member [m]'s latest rejoin to the first fabric frame its
    uplink accepted afterwards; [None] until a restart completes the
    measurement. *)

val frame_pool : t -> int -> Packet.Frame_pool.t option
(** Member [m]'s recycling pool when [create ~frame_pool:true]. *)

val run_for : t -> us:float -> unit
(** Advance the simulation by [us] in lookahead-bounded epochs (across
    [domains] OCaml domains when [> 1]), then audit the cluster
    invariant registry and every member's own registry (every pause is a
    barrier; worker domains are joined first, so audits read race-free). *)

val check_invariants : t -> int
(** Audit now; the number of new violations across cluster and members.
    {!run_for} calls this automatically. *)

val invariants_ok : t -> bool

val violations : t -> (string * Fault.Invariant.violation) list
(** All violations recorded so far, tagged ["cluster"] or ["member<i>"]. *)

val telemetry_snapshot : t -> Telemetry.Json.t
(** Deterministic JSON of the cluster registry (fabric counters, per-member
    health gauges, crash/restart events, invariant events) plus every
    member's own snapshot — equal runs yield equal JSON, the seed-replay
    property, and parallel runs yield the same JSON as sequential ones,
    the lookahead-identity property. *)

val member_metrics_md5 : t -> int -> string
(** MD5 of member [m]'s own telemetry snapshot — the per-member identity
    digest compared between sequential and parallel runs. *)
