type discipline =
  | Bypass
  | Tail_drop
  | Red of { min_th : int; max_th : int; max_p : float; wq : float }
  | Prio of { classes : int }
  | Wrr of { weights : int array }

type config = { disc : discipline; capacity : int; rate_mbps : float }

let default_rate = 1000.
let bypass = { disc = Bypass; capacity = 0; rate_mbps = default_rate }
let is_bypass c = c.disc = Bypass

let classes c =
  match c.disc with
  | Bypass | Tail_drop | Red _ -> 1
  | Prio { classes } -> classes
  | Wrr { weights } -> Array.length weights

(* --- spec grammar ------------------------------------------------------ *)

let num v = Printf.sprintf "%g" v

let to_spec c =
  let body =
    match c.disc with
    | Bypass -> "none"
    | Tail_drop -> Printf.sprintf "taildrop:%d" c.capacity
    | Red { min_th; max_th; max_p; wq } ->
        let base =
          Printf.sprintf "red:%d:%d:%d:%s" c.capacity min_th max_th (num max_p)
        in
        if wq = 0.25 then base else base ^ ":" ^ num wq
    | Prio { classes } -> Printf.sprintf "prio:%d:%d" c.capacity classes
    | Wrr { weights } ->
        Printf.sprintf "wrr:%d:%s" c.capacity
          (String.concat ","
             (List.map string_of_int (Array.to_list weights)))
  in
  if c.disc = Bypass || c.rate_mbps = default_rate then body
  else Printf.sprintf "%s@%s" body (num c.rate_mbps)

let parse spec =
  let ( let* ) = Result.bind in
  let s = String.trim spec in
  let* body, rate_mbps =
    match String.index_opt s '@' with
    | None -> Ok (s, default_rate)
    | Some i -> (
        let body = String.sub s 0 i in
        let r = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt (String.trim r) with
        | Some v when v > 0. -> Ok (body, v)
        | _ -> Error (Printf.sprintf "bad service rate %S (Mbps > 0)" r))
  in
  let int_field name s =
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 0 -> Ok v
    | _ -> Error (Printf.sprintf "%s must be a non-negative integer, got %S" name s)
  in
  let float_field name s =
    match float_of_string_opt (String.trim s) with
    | Some v when v >= 0. -> Ok v
    | _ -> Error (Printf.sprintf "%s must be a non-negative number, got %S" name s)
  in
  let cap s =
    let* c = int_field "capacity" s in
    if c < 1 then Error "capacity must be at least 1" else Ok c
  in
  match String.split_on_char ':' (String.trim body) with
  | [ "" ] | [ "none" ] | [ "bypass" ] -> Ok bypass
  | [ "taildrop"; c ] ->
      let* capacity = cap c in
      Ok { disc = Tail_drop; capacity; rate_mbps }
  | "red" :: c :: mn :: mx :: mp :: rest ->
      let* capacity = cap c in
      let* min_th = int_field "min_th" mn in
      let* max_th = int_field "max_th" mx in
      let* max_p = float_field "max_p" mp in
      let* wq =
        match rest with
        | [] -> Ok 0.25
        | [ w ] -> float_field "wq" w
        | _ -> Error (Printf.sprintf "too many fields in %S" body)
      in
      if min_th >= max_th then Error "red: min_th must be below max_th"
      else if max_p > 1. then Error "red: max_p outside [0, 1]"
      else if wq <= 0. || wq > 1. then Error "red: wq outside (0, 1]"
      else Ok { disc = Red { min_th; max_th; max_p; wq }; capacity; rate_mbps }
  | [ "prio"; c; n ] ->
      let* capacity = cap c in
      let* classes = int_field "classes" n in
      if classes < 2 || classes > 8 then Error "prio: classes outside [2, 8]"
      else Ok { disc = Prio { classes }; capacity; rate_mbps }
  | [ "wrr"; c; ws ] ->
      let* capacity = cap c in
      let* weights =
        List.fold_left
          (fun acc w ->
            let* ws = acc in
            let* v = int_field "weight" w in
            if v < 1 then Error "wrr: weights must be at least 1"
            else Ok (v :: ws))
          (Ok [])
          (String.split_on_char ',' ws)
      in
      let weights = Array.of_list (List.rev weights) in
      if Array.length weights < 2 || Array.length weights > 8 then
        Error "wrr: need 2 to 8 weights"
      else Ok { disc = Wrr { weights }; capacity; rate_mbps }
  | _ ->
      Error
        (Printf.sprintf
           "expected none | taildrop:CAP | red:CAP:MIN:MAX:MAXP[:WQ] | \
            prio:CAP:CLASSES | wrr:CAP:W0,W1,... (optionally @MBPS) in %S"
           spec)

(* --- RED curve --------------------------------------------------------- *)

let red_drop_prob ~min_th ~max_th ~max_p ~avg =
  if avg < float_of_int min_th then 0.
  else if avg >= float_of_int max_th then 1.
  else max_p *. (avg -. float_of_int min_th) /. float_of_int (max_th - min_th)

(* --- the queue --------------------------------------------------------- *)

type 'a item = { payload : 'a; cls : int; len : int; enq_ps : int }

type 'a t = {
  cfg : config;
  rng : Sim.Rng.t;
  deliver : 'a -> unit;
  queues : 'a item Queue.t array;
  weights : int array; (* [||] unless Wrr *)
  mutable w_class : int;
  mutable w_left : int;
  mutable occ : int;
  mutable busy : bool;
  mutable gen : int; (* flush generation: strands the frame in service *)
  mutable avg : float; (* RED's EWMA of occupancy *)
  pause_hi : int;
  pause_lo : int;
  mutable is_paused : bool;
  mutable n_pauses : int;
  mutable n_enqueued : int;
  mutable n_serviced : int;
  per_class : int array;
  mutable n_dropped_tail : int;
  mutable n_dropped_red : int;
  mutable n_flushed : int;
  mutable n_hwm : int;
  mutable delay_ps : int;
}

let create ~cfg ~rng ~deliver () =
  let n = classes cfg in
  let weights = match cfg.disc with Wrr { weights } -> weights | _ -> [||] in
  {
    cfg;
    rng;
    deliver;
    queues = Array.init n (fun _ -> Queue.create ());
    weights;
    w_class = 0;
    w_left = (if Array.length weights > 0 then weights.(0) else 0);
    occ = 0;
    busy = false;
    gen = 0;
    avg = 0.;
    pause_hi = max 1 (cfg.capacity * 3 / 4);
    pause_lo = cfg.capacity / 2;
    is_paused = false;
    n_pauses = 0;
    n_enqueued = 0;
    n_serviced = 0;
    per_class = Array.make n 0;
    n_dropped_tail = 0;
    n_dropped_red = 0;
    n_flushed = 0;
    n_hwm = 0;
    delay_ps = 0;
  }

let occupancy t = t.occ
let paused t = t.is_paused
let avg_occupancy t = t.avg
let enqueued t = t.n_enqueued
let serviced t = t.n_serviced
let serviced_class t c = t.per_class.(c)
let dropped_tail t = t.n_dropped_tail
let dropped_red t = t.n_dropped_red
let dropped t = t.n_dropped_tail + t.n_dropped_red
let flushed t = t.n_flushed
let hwm t = t.n_hwm
let pauses t = t.n_pauses
let delay_ps_total t = t.delay_ps

(* Wire time of a frame at the hop's drain rate, preamble and inter-frame
   gap included (the same 20-byte overhead {!Ixp.Mac_port.frame_time_ps}
   charges). *)
let service_ps t ~len =
  Int64.to_int
    (Int64.of_float (float_of_int ((len + 20) * 8) /. t.cfg.rate_mbps *. 1e6))

(* Deterministic RED admission: no draw below [min_th] (p = 0) or at and
   above [max_th] (p = 1), one draw on the linear ramp — enabling RED on
   one hop never shifts any other stream, and an uncongested RED queue
   draws nothing at all. *)
let red_rejects t ~min_th ~max_th ~max_p ~wq =
  t.avg <- t.avg +. (wq *. (float_of_int t.occ -. t.avg));
  let p = red_drop_prob ~min_th ~max_th ~max_p ~avg:t.avg in
  if p <= 0. then false
  else if p >= 1. then true
  else Sim.Rng.float t.rng 1.0 < p

let dec_occ t =
  t.occ <- t.occ - 1;
  if t.is_paused && t.occ <= t.pause_lo then t.is_paused <- false

(* Next frame to put on the wire.  [pick] removes it from its class FIFO
   but leaves it counted in [occ] until its service completes — occupancy
   covers the frame in service, as a real port's buffer does. *)
let pick t =
  match t.cfg.disc with
  | Bypass -> None
  | Tail_drop | Red _ -> Queue.take_opt t.queues.(0)
  | Prio _ ->
      let rec go c =
        if c < 0 then None
        else
          match Queue.take_opt t.queues.(c) with
          | Some _ as it -> it
          | None -> go (c - 1)
      in
      go (Array.length t.queues - 1)
  | Wrr _ ->
      let n = Array.length t.weights in
      let rec go tries =
        if tries < 0 then None
        else if t.w_left > 0 && not (Queue.is_empty t.queues.(t.w_class)) then begin
          t.w_left <- t.w_left - 1;
          Queue.take_opt t.queues.(t.w_class)
        end
        else begin
          (* Out of credit, or credit left but nothing queued (unused
             credit is forfeited): move to the next class. *)
          t.w_class <- (t.w_class + 1) mod n;
          t.w_left <- t.weights.(t.w_class);
          go (tries - 1)
        end
      in
      go n

let rec serve t =
  match pick t with
  | None -> t.busy <- false
  | Some it ->
      let g = t.gen in
      Sim.Engine.wait_i (service_ps t ~len:it.len);
      if t.gen <> g then begin
        (* The link was cut (crash) while this frame was in service:
           strand it, accounted as flushed. *)
        t.n_flushed <- t.n_flushed + 1;
        dec_occ t
      end
      else begin
        dec_occ t;
        t.n_serviced <- t.n_serviced + 1;
        t.per_class.(it.cls) <- t.per_class.(it.cls) + 1;
        t.delay_ps <- t.delay_ps + (Sim.Engine.now_i () - it.enq_ps);
        t.deliver it.payload
      end;
      serve t

let offer t ~cls ~len x =
  match t.cfg.disc with
  | Bypass ->
      t.n_enqueued <- t.n_enqueued + 1;
      t.n_serviced <- t.n_serviced + 1;
      t.per_class.(0) <- t.per_class.(0) + 1;
      t.deliver x;
      true
  | disc ->
      if t.occ >= t.cfg.capacity then begin
        t.n_dropped_tail <- t.n_dropped_tail + 1;
        false
      end
      else if
        match disc with
        | Red { min_th; max_th; max_p; wq } ->
            red_rejects t ~min_th ~max_th ~max_p ~wq
        | _ -> false
      then begin
        t.n_dropped_red <- t.n_dropped_red + 1;
        false
      end
      else begin
        let cls = min (max cls 0) (Array.length t.queues - 1) in
        Queue.push
          { payload = x; cls; len; enq_ps = Sim.Engine.now_i () }
          t.queues.(cls);
        t.occ <- t.occ + 1;
        t.n_enqueued <- t.n_enqueued + 1;
        if t.occ > t.n_hwm then t.n_hwm <- t.occ;
        if (not t.is_paused) && t.occ >= t.pause_hi then begin
          t.is_paused <- true;
          t.n_pauses <- t.n_pauses + 1
        end;
        if not t.busy then begin
          t.busy <- true;
          Sim.Engine.spawn_here "fabric-queue" (fun () -> serve t)
        end;
        true
      end

let flush t =
  let n = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues in
  Array.iter Queue.clear t.queues;
  t.n_flushed <- t.n_flushed + n;
  t.occ <- t.occ - n;
  t.gen <- t.gen + 1;
  if t.is_paused && t.occ <= t.pause_lo then t.is_paused <- false;
  n
