(** A finite queue on a fabric hop (a member's uplink into the switch, or
    a switch egress port towards a member), with a configurable service
    discipline — the per-flow queue structures *Queue Management in
    Network Processors* catalogs, reduced to what the section 6 sizing
    experiment needs.

    The queue drains at a configured link rate through one non-preemptive
    server fiber on the owning member's engine, so queueing only ever
    {e adds} latency on top of the fabric's minimum switch latency — the
    conservative-lookahead bound of the parallel scheduler survives any
    discipline.  All state is owned by one engine and every stochastic
    choice (RED's early-drop draw) comes from a dedicated seeded stream,
    so runs replay bit-identically and parallel runs match sequential
    ones.

    The default {!bypass} configuration delivers synchronously with no
    events, no draws and no occupancy: a cluster built without queueing
    behaves byte-for-byte as before. *)

type discipline =
  | Bypass  (** unbounded, zero-delay — the pre-queueing fabric *)
  | Tail_drop  (** single FIFO, drop arrivals when full *)
  | Red of { min_th : int; max_th : int; max_p : float; wq : float }
      (** random early detection on the EWMA of occupancy: drop
          probability ramps linearly from 0 at [min_th] to [max_p] at
          [max_th] (1 beyond), with [wq] the averaging weight *)
  | Prio of { classes : int }
      (** one FIFO per class; strict priority, the highest non-empty
          class is always served first *)
  | Wrr of { weights : int array }
      (** one FIFO per class; weighted round-robin — class [c] may take
          [weights.(c)] consecutive services per rotation, so no
          non-empty class ever starves *)

type config = { disc : discipline; capacity : int; rate_mbps : float }
(** [capacity] bounds total occupancy in frames (including the frame in
    service); [rate_mbps] is the hop's drain rate. *)

val bypass : config
val is_bypass : config -> bool

val classes : config -> int
(** Number of service classes (1 unless [Prio]/[Wrr]). *)

val parse : string -> (config, string) result
(** Spec grammar (the CLI's [--fabric-queue]):
    {v
    none | bypass
    taildrop:CAP
    red:CAP:MIN_TH:MAX_TH:MAX_P[:WQ]        (WQ defaults to 0.25)
    prio:CAP:CLASSES
    wrr:CAP:W0,W1,...
    v}
    any of which may take an [@MBPS] suffix overriding the default
    1000 Mbps drain rate, e.g. [taildrop:64@300]. *)

val to_spec : config -> string
(** Inverse of {!parse} (canonical form). *)

val red_drop_prob : min_th:int -> max_th:int -> max_p:float -> avg:float -> float
(** The pure RED drop-probability curve, exposed for the monotonicity
    property test: 0 below [min_th], linear ramp to [max_p] at [max_th],
    1 at or above [max_th]. *)

type 'a t
(** A queue of ['a] payloads.  For non-[Bypass] configurations every
    operation must run inside a fiber on the owning member's engine. *)

val create :
  cfg:config -> rng:Sim.Rng.t -> deliver:('a -> unit) -> unit -> 'a t
(** [deliver] is called from the server fiber when a payload finishes its
    service time (synchronously from {!offer} under [Bypass]). *)

val offer : 'a t -> cls:int -> len:int -> 'a -> bool
(** Admit a [len]-byte frame of class [cls] (clamped to the configured
    class count).  [false] means the queue dropped it — tail drop at
    capacity or a RED early drop, counted by cause; the caller owns the
    accounting of the refused frame. *)

val flush : 'a t -> int
(** Empty the queue (a crash cut the link under it): every queued frame
    — and the frame in service, when its service completes — is counted
    in {!flushed} rather than delivered.  Returns the number of frames
    discarded immediately. *)

(** {1 State and counters} *)

val occupancy : 'a t -> int
(** Frames held right now, including the one in service. *)

val paused : 'a t -> bool
(** Backpressure: occupancy crossed the high watermark (3/4 capacity)
    and has not yet drained below the low one (1/2). *)

val avg_occupancy : 'a t -> float
(** RED's EWMA of occupancy (0 for other disciplines). *)

val enqueued : 'a t -> int
val serviced : 'a t -> int

val serviced_class : 'a t -> int -> int
(** Services delivered to one class (index < {!classes}). *)

val dropped_tail : 'a t -> int
val dropped_red : 'a t -> int

val dropped : 'a t -> int
(** [dropped_tail + dropped_red]. *)

val flushed : 'a t -> int
val hwm : 'a t -> int
(** High-water mark of occupancy. *)

val pauses : 'a t -> int
(** Times the high watermark engaged backpressure. *)

val delay_ps_total : 'a t -> int
(** Summed sojourn time (enqueue to delivery) of serviced frames — mean
    queue delay is [delay_ps_total / serviced]. *)
