let port = 520
let infinity_metric = 16

type announcement = { prefix : Iproute.Prefix.t; metric : int }

let encode ~src ~dst routes =
  if List.length routes > 16 then invalid_arg "Rip.encode: too many routes";
  let payload = Bytes.make (1 + (8 * List.length routes)) '\000' in
  Bytes.set payload 0 (Char.chr (List.length routes));
  List.iteri
    (fun i { prefix; metric } ->
      let off = 1 + (8 * i) in
      let a = Int32.to_int (Iproute.Prefix.addr prefix) land 0xFFFFFFFF in
      Bytes.set payload off (Char.chr ((a lsr 24) land 0xFF));
      Bytes.set payload (off + 1) (Char.chr ((a lsr 16) land 0xFF));
      Bytes.set payload (off + 2) (Char.chr ((a lsr 8) land 0xFF));
      Bytes.set payload (off + 3) (Char.chr (a land 0xFF));
      Bytes.set payload (off + 4) (Char.chr (Iproute.Prefix.length prefix));
      Bytes.set payload (off + 5) (Char.chr (min 255 (max 0 metric))))
    routes;
  Packet.Build.udp
    ~frame_len:(max 64 (42 + Bytes.length payload))
    ~src ~dst ~src_port:port ~dst_port:port
    ~payload:(Bytes.to_string payload) ()

let decode frame =
  if
    Packet.Frame.len frame
    < Packet.Ipv4.offset + Packet.Ipv4.min_header_len
    || (not (Packet.Ipv4.valid frame))
    || Packet.Ipv4.payload_offset frame + 8 > Packet.Frame.len frame
    || Packet.Ipv4.get_proto frame <> Packet.Ipv4.proto_udp
    || Packet.Udp.get_dst_port frame <> port
  then None
  else begin
    let off = Packet.Udp.payload_offset frame in
    if off >= Packet.Frame.len frame then None
    else begin
      let count = Packet.Frame.get_u8 frame off in
      if off + 1 + (8 * count) > Packet.Frame.len frame then None
      else begin
        let entry i =
          let e = off + 1 + (8 * i) in
          let addr = Packet.Frame.get_u32 frame e in
          let len = Packet.Frame.get_u8 frame (e + 4) in
          let metric = Packet.Frame.get_u8 frame (e + 5) in
          if len > 32 then None
          else Some { prefix = Iproute.Prefix.make addr len; metric }
        in
        let rec gather i acc =
          if i = count then Some (List.rev acc)
          else
            match entry i with
            | None -> None
            | Some a -> gather (i + 1) (a :: acc)
        in
        gather 0 []
      end
    end
  end

type stats = {
  announcements : Sim.Stats.Counter.t;
  routes_installed : Sim.Stats.Counter.t;
  routes_withdrawn : Sim.Stats.Counter.t;
  rejected : Sim.Stats.Counter.t;
}

type rib_entry = { metric : int; via_port : int }

type t = {
  router : Router.t;
  rib : (Iproute.Prefix.t, rib_entry) Hashtbl.t;
  stats : stats;
  mutable last_change_ps : int64; (* -1 until the first table write *)
  mutable table_changes : int;
}

let create router =
  let t =
    {
      router;
      rib = Hashtbl.create 64;
      stats =
        {
          announcements = Sim.Stats.Counter.create "rip.announcements";
          routes_installed = Sim.Stats.Counter.create "rip.installed";
          routes_withdrawn = Sim.Stats.Counter.create "rip.withdrawn";
          rejected = Sim.Stats.Counter.create "rip.rejected";
        };
      last_change_ps = -1L;
      table_changes = 0;
    }
  in
  (* Convergence scope: `quiet_us` is how long the table has been
     stable — a telemetry snapshot taken after a churn burst reads the
     convergence point straight off the gauge. *)
  let scope = Telemetry.Registry.scope router.Router.telemetry "rip" in
  Telemetry.Registry.Scope.register_counter scope ~name:"announcements"
    t.stats.announcements;
  Telemetry.Registry.Scope.register_counter scope ~name:"installed"
    t.stats.routes_installed;
  Telemetry.Registry.Scope.register_counter scope ~name:"withdrawn"
    t.stats.routes_withdrawn;
  Telemetry.Registry.Scope.register_counter scope ~name:"rejected"
    t.stats.rejected;
  Telemetry.Registry.Scope.gauge_int scope "routes" (fun () ->
      Hashtbl.length t.rib);
  Telemetry.Registry.Scope.gauge_int scope "table_changes" (fun () ->
      t.table_changes);
  Telemetry.Registry.Scope.gauge scope "quiet_us" (fun () ->
      if t.last_change_ps < 0L then -1.
      else
        Int64.to_float
          (Int64.sub (Sim.Engine.time router.Router.engine) t.last_change_ps)
        /. 1e6);
  t

let stats t = t.stats

let touch t =
  t.last_change_ps <- Sim.Engine.time t.router.Router.engine;
  t.table_changes <- t.table_changes + 1

let last_change_ps t = t.last_change_ps
let table_changes t = t.table_changes

let quiet_ps t =
  let now = Sim.Engine.time t.router.Router.engine in
  if t.last_change_ps < 0L then now else Int64.sub now t.last_change_ps

let router_addr p =
  Int32.of_int ((10 lsl 24) lor (254 lsl 16) lor ((p land 0xFF) lsl 8) lor 1)

let apply t ~via_port { prefix; metric } =
  let metric = min infinity_metric (metric + 1) in
  let current = Hashtbl.find_opt t.rib prefix in
  if metric >= infinity_metric then begin
    (* Withdrawal: only the current next hop may retract the route. *)
    match current with
    | Some e when e.via_port = via_port ->
        Hashtbl.remove t.rib prefix;
        Iproute.Table.remove t.router.Router.routes prefix;
        touch t;
        Sim.Stats.Counter.incr t.stats.routes_withdrawn
    | Some _ | None -> Sim.Stats.Counter.incr t.stats.rejected
  end
  else begin
    (* A pure refresh (same next hop, same metric) must not touch the
       table: a table write invalidates route-cache lines, and periodic
       refreshes would otherwise tax the data plane for nothing. *)
    let refresh =
      match current with
      | Some e -> e.via_port = via_port && e.metric = metric
      | None -> false
    in
    let better =
      match current with
      | None -> true
      | Some e -> metric < e.metric || e.via_port = via_port
    in
    if refresh then Sim.Stats.Counter.incr t.stats.rejected
    else if better then begin
      Hashtbl.replace t.rib prefix { metric; via_port };
      Iproute.Table.add t.router.Router.routes prefix
        {
          Iproute.Table.out_port = via_port;
          gateway_mac = Packet.Ethernet.mac_of_port (100 + via_port);
        };
      touch t;
      Sim.Stats.Counter.incr t.stats.routes_installed
    end
    else Sim.Stats.Counter.incr t.stats.rejected
  end

(* Parsing an announcement and updating the table is host work: roughly
   the shortest-path bookkeeping the paper budgets OSPF cycles for. *)
let listener_forwarder t =
  Router.Forwarder.make ~name:"rip-listener" ~code:[] ~state_bytes:0
    ~host_cycles:5000 (fun ~state:_ frame ~in_port ->
      (match decode frame with
      | None -> Sim.Stats.Counter.incr t.stats.rejected
      | Some routes ->
          Sim.Stats.Counter.incr t.stats.announcements;
          List.iter (apply t ~via_port:in_port) routes);
      (* Control packets terminate here. *)
      Router.Forwarder.Drop)

let add_neighbor t ~addr ~via_port =
  let key =
    Packet.Flow.Tuple
      {
        Packet.Flow.src_addr = addr;
        src_port = port;
        dst_addr = router_addr via_port;
        dst_port = port;
      }
  in
  Router.Iface.install t.router.Router.iface ~key ~fwdr:(listener_forwarder t)
    ~where:Router.Iface.PE ~expected_pps:2_000. ()

let remove_neighbor t fid = Router.Iface.remove t.router.Router.iface fid

let best_metric t prefix =
  Option.map (fun e -> e.metric) (Hashtbl.find_opt t.rib prefix)

let route_count t = Hashtbl.length t.rib
