(** A distance-vector routing daemon on the Pentium.

    The paper's control plane runs "signalling protocols like RSVP, OSPF,
    and LDP" on the host processor, with the proportional-share scheduler
    guaranteeing the protocol "is able to update the routing table at an
    acceptable rate" (section 4.1).  This module is a small RIP-style
    protocol exercising that whole path: neighbor announcements arrive on
    a port, the classifier's per-flow entry diverts them up the hierarchy,
    a Pentium forwarder parses them and updates the routing table (which
    invalidates the route cache — the data-plane cost of control-plane
    activity, measured by `bench routing`).

    Wire format (UDP, port {!port}): a count byte, then 8 bytes per route:
    prefix address (4), prefix length (1), metric (1), 2 bytes padding.
    Metric 16 is infinity (withdrawal), as in RIP. *)

val port : int
(** UDP port 520. *)

val infinity_metric : int
(** 16. *)

type announcement = { prefix : Iproute.Prefix.t; metric : int }

val encode :
  src:Packet.Ipv4.addr ->
  dst:Packet.Ipv4.addr ->
  announcement list ->
  Packet.Frame.t
(** Build an announcement packet (at most 16 routes per packet). *)

val decode : Packet.Frame.t -> announcement list option
(** Parse; [None] if the frame is not a well-formed announcement. *)

type stats = {
  announcements : Sim.Stats.Counter.t;  (** packets processed *)
  routes_installed : Sim.Stats.Counter.t;
  routes_withdrawn : Sim.Stats.Counter.t;
  rejected : Sim.Stats.Counter.t;  (** malformed or worse-metric entries *)
}

type t

val create : Router.t -> t
(** A daemon bound to a router's table (does not listen yet). *)

val stats : t -> stats

val router_addr : int -> Packet.Ipv4.addr
(** The address a neighbor on port [p] sends announcements to
    (10.254.[p].1 — the router's own per-port address). *)

val apply : t -> via_port:int -> announcement -> unit
(** Process one announcement entry as if it arrived from the neighbor on
    [via_port]: distance-vector accept/reject, RIB bookkeeping, and the
    routing-table write (which invalidates route-cache lines).  Exposed
    so churn tests and benchmarks can drive the update path at a chosen
    rate without synthesizing wire frames. *)

val last_change_ps : t -> int64
(** Simulated time of the last actual routing-table write ([-1L] before
    the first).  Refreshes and rejected entries don't count. *)

val table_changes : t -> int
(** Total routing-table writes (installs + withdrawals). *)

val quiet_ps : t -> int64
(** Picoseconds since the last table write — the convergence measure:
    once announcements keep arriving but [quiet_ps] grows, the table has
    converged.  Also exported as the [rip.quiet_us] telemetry gauge. *)

val add_neighbor :
  t -> addr:Packet.Ipv4.addr -> via_port:int -> (int, string list) result
(** Start accepting announcements from a configured neighbor: installs a
    per-flow Pentium forwarder for (neighbor, {!port}) → (router_addr,
    {!port}) — control traffic rides the same classify-and-divert
    machinery as everything else.  Returns the forwarder's fid. *)

val remove_neighbor : t -> int -> (unit, string) result

val best_metric : t -> Iproute.Prefix.t -> int option
(** Current metric for a prefix, if routed by this daemon. *)

val route_count : t -> int
