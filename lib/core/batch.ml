(* Parallel arrays rather than an array of records: a burst is refilled
   on every context activation of the batched input loop, and boxing an
   rx_item per MP would allocate on the per-MP hot path the batching
   exists to shorten.  The meta word encoding is Mac_port's ring
   encoding, copied verbatim by [fill_from_port]. *)
type t = {
  meta : int array; (* (index lsl 2) lor tag code *)
  frames : Packet.Frame.t array;
  mutable len : int;
  dummy : Packet.Frame.t; (* fills vacated slots so no frame is pinned *)
}

let code_of_tag = function
  | Packet.Mp.Only -> 0
  | Packet.Mp.First -> 1
  | Packet.Mp.Intermediate -> 2
  | Packet.Mp.Last -> 3

let create ~capacity =
  if capacity <= 0 then invalid_arg "Batch.create: capacity";
  let dummy = Packet.Frame.of_bytes Bytes.empty in
  {
    meta = Array.make capacity 0;
    frames = Array.make capacity dummy;
    len = 0;
    dummy;
  }

let capacity t = Array.length t.meta
let length t = t.len
let is_empty t = t.len = 0

let clear t =
  for i = 0 to t.len - 1 do
    t.frames.(i) <- t.dummy
  done;
  t.len <- 0

let push t ~tag ~index frame =
  if t.len >= Array.length t.meta then invalid_arg "Batch.push: full";
  t.meta.(t.len) <- (index lsl 2) lor code_of_tag tag;
  t.frames.(t.len) <- frame;
  t.len <- t.len + 1

let frame t i = t.frames.(i)
let tag t i = Ixp.Mac_port.tag_of_meta t.meta.(i)
let mp_index t i = Ixp.Mac_port.index_of_meta t.meta.(i)

let is_head t i =
  let c = t.meta.(i) land 3 in
  c = 0 || c = 1

let fill_from_port t port ~max =
  clear t;
  let cap = Array.length t.meta in
  let n =
    Ixp.Mac_port.take_burst port ~meta:t.meta ~frames:t.frames
      ~max:(if max < cap then max else cap)
  in
  t.len <- n;
  n

(* In-place stable compaction: keep entries [pred] accepts, in order.
   Returns the new length.  Dropped slots beyond the new length are
   cleared so they don't pin frames live. *)
let filter_in_place t pred =
  let w = ref 0 in
  for r = 0 to t.len - 1 do
    if pred r then begin
      if !w <> r then begin
        t.meta.(!w) <- t.meta.(r);
        t.frames.(!w) <- t.frames.(r)
      end;
      incr w
    end
  done;
  for i = !w to t.len - 1 do
    t.frames.(i) <- t.dummy
  done;
  t.len <- !w;
  !w

(* Stable in-place partition: entries [pred] accepts move (in order) to
   the front, the rest (in order) follow.  Returns the boundary.  Uses a
   scratch pass over rejected entries; capacity-bounded, no per-call
   allocation beyond the closure. *)
let partition_in_place t pred =
  let n = t.len in
  let rej_meta = Array.make (if n = 0 then 1 else n) 0 in
  let rej_fr = Array.make (if n = 0 then 1 else n) t.dummy in
  let w = ref 0 and nr = ref 0 in
  for r = 0 to n - 1 do
    if pred r then begin
      if !w <> r then begin
        t.meta.(!w) <- t.meta.(r);
        t.frames.(!w) <- t.frames.(r)
      end;
      incr w
    end
    else begin
      rej_meta.(!nr) <- t.meta.(r);
      rej_fr.(!nr) <- t.frames.(r);
      incr nr
    end
  done;
  for k = 0 to !nr - 1 do
    t.meta.(!w + k) <- rej_meta.(k);
    t.frames.(!w + k) <- rej_fr.(k)
  done;
  !w
