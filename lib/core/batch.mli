(** A fixed-capacity carrier of received MPs, the unit of work of the
    batched input loop (Snabb's link-burst structure): one context
    activation drains a burst from the port, processes every MP, and
    enqueues the results, instead of paying the token + serial section
    per MP.

    Entries are (tag, index-within-frame, frame) triples stored as
    parallel arrays with {!Ixp.Mac_port}'s packed meta encoding — no
    per-MP allocation on refill. *)

type t

val create : capacity:int -> t
(** [create ~capacity] holds at most [capacity] MPs.  Capacity 1
    degenerates the batched loop to the classic one-MP-per-activation
    behavior. *)

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Empty the batch and unpin all frame references. *)

val push : t -> tag:Packet.Mp.tag -> index:int -> Packet.Frame.t -> unit
(** Append one MP (used by replay sources; port refill goes through
    {!fill_from_port}).  Raises [Invalid_argument] when full. *)

val frame : t -> int -> Packet.Frame.t
val tag : t -> int -> Packet.Mp.tag
val mp_index : t -> int -> int

val is_head : t -> int -> bool
(** Is entry [i] a frame head (tag [Only] or [First])? *)

val fill_from_port : t -> Ixp.Mac_port.t -> max:int -> int
(** [fill_from_port b port ~max] clears [b] and drains up to
    [min max (capacity b)] MPs from [port]'s receive ring into it,
    returning the count. *)

val filter_in_place : t -> (int -> bool) -> int
(** [filter_in_place b pred] keeps entries whose index satisfies [pred],
    stable and in place, returning (and setting) the new length. *)

val partition_in_place : t -> (int -> bool) -> int
(** [partition_in_place b pred] stably reorders entries so those
    satisfying [pred] come first, returning the boundary.  The length is
    unchanged. *)
