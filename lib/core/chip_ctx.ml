type host = Me of Ixp.Microengine.t | Cpu of Sim.Engine.Clock.clock

type t = {
  chip : Ixp.Chip.t;
  host : host;
  ctx_id : int;
  mutable defer : bool;
  mutable pending : int; (* booked-but-unpaid delay, picoseconds *)
}

let make chip ~ctx_id =
  {
    chip;
    host = Me (Ixp.Chip.context_me chip ctx_id);
    ctx_id;
    defer = false;
    pending = 0;
  }

let make_cpu chip clock =
  { chip; host = Cpu clock; ctx_id = -1; defer = false; pending = 0 }

(* Per-batch charging: with [defer] on, every charge below books its
   server access at the context's *virtual* clock (engine time plus
   delays already booked) and accumulates the delay instead of
   suspending; [commit] pays the whole batch as one wait.  Charges that
   cannot be booked (fault-injected memory channels need their
   one-by-one issue sequence) commit first, so the full ordering
   degenerates to the classic per-operation path exactly when the fault
   plane is watching. *)
let set_defer t on = t.defer <- on

let vnow t = Sim.Engine.now_i () + t.pending

let commit t =
  if t.pending > 0 then begin
    let d = t.pending in
    t.pending <- 0;
    Sim.Engine.wait_i d
  end

let now_ps t = Int64.add (Sim.Engine.now ()) (Int64.of_int t.pending)
let now_ps_i t = Sim.Engine.now_i () + t.pending

let exec t n =
  match t.host with
  | Me me ->
      if t.defer then
        t.pending <- t.pending + Ixp.Microengine.exec_booked me ~now:(vnow t) n
      else Ixp.Microengine.exec me n
  | Cpu clock -> Sim.Engine.Clock.wait_cycles clock n

let exec_wait t ~instr ~wait =
  match t.host with
  | Me me ->
      if t.defer then
        t.pending <-
          t.pending + Ixp.Microengine.exec_wait_booked me ~now:(vnow t) ~instr ~wait
      else Ixp.Microengine.exec_wait me ~instr ~wait
  | Cpu clock -> Sim.Engine.Clock.wait_cycles clock (instr + wait)

(* Variant for charges made while holding the token (the input DMA / output
   FIFO serial sections): under per-batch charging these must not queue on
   the core's busy horizon — sibling contexts book whole bursts there, and
   inheriting a burst-sized queue delay while holding the token would
   serialize the entire ring behind it.  The work is still accounted
   (instructions, busy time); only the horizon queueing is skipped. *)
let exec_wait_serial t ~instr ~wait =
  match t.host with
  | Me me when t.defer ->
      t.pending <- t.pending + Ixp.Microengine.exec_wait_light me ~instr ~wait
  | Me _ | Cpu _ -> exec_wait t ~instr ~wait

let wait_cycles t n =
  let clock =
    match t.host with Me _ -> t.chip.Ixp.Chip.me_clock | Cpu clock -> clock
  in
  if t.defer && n > 0 then
    t.pending <- t.pending + Sim.Engine.Clock.ps_of_cycles_i clock n
  else Sim.Engine.Clock.wait_cycles clock n

let mem_op t m booked plain ~bytes =
  if t.defer && Ixp.Mem.bookable m then
    t.pending <- t.pending + booked m ~now:(vnow t) ~bytes
  else begin
    commit t;
    plain m ~bytes
  end

let sram_read t ~bytes =
  mem_op t t.chip.Ixp.Chip.sram Ixp.Mem.read_booked Ixp.Mem.read ~bytes

let sram_write t ~bytes =
  mem_op t t.chip.Ixp.Chip.sram Ixp.Mem.write_booked Ixp.Mem.write ~bytes

let scratch_read t ~bytes =
  mem_op t t.chip.Ixp.Chip.scratch Ixp.Mem.read_booked Ixp.Mem.read ~bytes

let scratch_write t ~bytes =
  mem_op t t.chip.Ixp.Chip.scratch Ixp.Mem.write_booked Ixp.Mem.write ~bytes

let dram_read t ~bytes =
  mem_op t t.chip.Ixp.Chip.dram Ixp.Mem.read_booked Ixp.Mem.read ~bytes

let dram_write t ~bytes =
  mem_op t t.chip.Ixp.Chip.dram Ixp.Mem.write_booked Ixp.Mem.write ~bytes

let hash t v =
  if t.defer then begin
    let d, h = Ixp.Hash_unit.hash_booked t.chip.Ixp.Chip.hash v in
    t.pending <- t.pending + d;
    h
  end
  else Ixp.Hash_unit.hash t.chip.Ixp.Chip.hash v

let hash_charge t =
  if t.defer then
    t.pending <- t.pending + Ixp.Hash_unit.charge_booked t.chip.Ixp.Chip.hash
  else Ixp.Hash_unit.charge t.chip.Ixp.Chip.hash
