(** A processor's view of the chip: the handle threaded through the
    input/output loops, the VRP interpreter, and the StrongARM's queue
    operations.

    For a MicroEngine context, register instructions occupy the hosting
    engine's issue pipeline (shared with its three sibling contexts).  For
    the StrongARM — which has its own core but shares the SRAM and DRAM
    channels with the MicroEngines (the interference that motivates
    section 4.1's "the StrongARM must run within the same resource budget")
    — instructions simply consume StrongARM cycles while memory operations
    contend on the same channel servers. *)

type host = Me of Ixp.Microengine.t | Cpu of Sim.Engine.Clock.clock

type t = {
  chip : Ixp.Chip.t;
  host : host;
  ctx_id : int;
  mutable defer : bool;
      (** per-batch charging on: charges accumulate in [pending] instead
          of suspending (see {!set_defer}) *)
  mutable pending : int;
      (** booked-but-unpaid delay in picoseconds; paid by {!commit} *)
}

val make : Ixp.Chip.t -> ctx_id:int -> t
(** [make chip ~ctx_id] binds global MicroEngine context [ctx_id] to its
    engine (contexts are numbered ME-major). *)

val make_cpu : Ixp.Chip.t -> Sim.Engine.Clock.clock -> t
(** [make_cpu chip clock] is the view of a conventional processor (the
    StrongARM) sharing the chip's memories. *)

val set_defer : t -> bool -> unit
(** Enable per-batch charging ([Cost_model.charge_per_batch]): each
    charge books its server access at the context's virtual clock
    (engine time + delays already booked, so horizons and utilization
    stats are exactly those of the per-operation path when uncontended)
    and {!commit} pays the accumulated total as one engine event.  Hot
    loops commit before every shared-state interaction — queue, token,
    MAC, park — so cross-context interleaving is resolved at batch
    granularity.  Only meaningful for [Me] hosts; charges on a
    fault-injected memory channel always commit first and run
    per-operation, preserving the injector's draw sequence. *)

val commit : t -> unit
(** Pay any pending booked delay with a single wait (no-op at zero).
    Must be called before suspending, acquiring shared resources, or
    acting on shared mutable state. *)

val now_ps : t -> int64
(** The context's virtual clock: engine time plus pending booked delay
    (what arrival stamps should use under per-batch charging). *)

val now_ps_i : t -> int
(** {!now_ps} as a native int — the allocation-free form the per-packet
    arrival stamp uses. *)

val exec : t -> int -> unit
(** Run register instructions on this context's processor. *)

val exec_wait : t -> instr:int -> wait:int -> unit
(** [exec_wait t ~instr ~wait] fuses [exec t instr] with a subsequent
    [wait_cycles t wait] into a single event: the processor is occupied
    for the instruction time only, the caller blocks for both.
    Timing-identical to the two-call form under any contention. *)

val exec_wait_serial : t -> instr:int -> wait:int -> unit
(** {!exec_wait} for the token-held serial sections.  Under per-batch
    charging the charge is accumulated as pure duration (instructions
    and busy time still accounted) without queueing on the core's busy
    horizon: sibling contexts book whole bursts there, and inheriting a
    burst-sized queue delay while holding the token would serialize the
    whole ring behind it.  Identical to {!exec_wait} when per-batch
    charging is off. *)

val wait_cycles : t -> int -> unit
(** Stall without occupying the processor's issue pipeline (e.g. a CSR
    round trip). *)

val sram_read : t -> bytes:int -> unit
val sram_write : t -> bytes:int -> unit
val scratch_read : t -> bytes:int -> unit
val scratch_write : t -> bytes:int -> unit
val dram_read : t -> bytes:int -> unit
val dram_write : t -> bytes:int -> unit

val hash : t -> int64 -> int
(** One hardware hash unit operation. *)

val hash_charge : t -> unit
(** One hash-unit operation whose value is discarded: same timing and
    use accounting as {!hash}, no [int64] argument to box and no mixing
    work.  For sites that model the hardware cost only. *)
