type entry = {
  fid : int;
  key : Packet.Flow.t;
  where : Desc.level;
  fwdr : Forwarder.t;
  state : Bytes.t;
  mutable matches : int;
}

type outcome =
  | Invalid
  | Classified of {
      per_flow : entry option;
      general : entry list;
      route : Iproute.Table.nexthop option;
      route_cache_hit : bool;
    }

type t = {
  cm : Cost_model.t;
  routes : Iproute.Table.t;
  flows : (Packet.Flow.tuple, entry) Hashtbl.t;
  mutable general : entry list;
  (* Scratch outcome of the [_s] classifiers.  One packet is classified
     at a time per classifier value within a charging window: the caller
     must copy these fields out before its next hardware charge, because
     a charge can suspend (classic mode) and let a sibling context
     re-fill the scratch. *)
  mutable s_per_flow : entry option;
  mutable s_general : entry list;
  mutable s_route : Iproute.Table.nexthop; (* Table.no_route = none *)
  mutable s_route_cache_hit : bool;
  s_hit : bool ref;
}

let create cm ~routes =
  {
    cm;
    routes;
    flows = Hashtbl.create 64;
    general = [];
    s_per_flow = None;
    s_general = [];
    s_route = Iproute.Table.no_route;
    s_route_cache_hit = false;
    s_hit = ref false;
  }

let routes t = t.routes

let is_ip_entry e = e.fwdr.Forwarder.name = "ip"

let add t e =
  match e.key with
  | Packet.Flow.Tuple k -> Hashtbl.replace t.flows k e
  | Packet.Flow.All ->
      (* Keep minimal IP as the chain's tail (Figure 11). *)
      let ip, rest = List.partition is_ip_entry (t.general @ [ e ]) in
      t.general <- rest @ ip

let remove t fid =
  let found = ref None in
  Hashtbl.iter
    (fun k e -> if e.fid = fid then found := Some (`Flow k, e))
    t.flows;
  (match List.find_opt (fun e -> e.fid = fid) t.general with
  | Some e -> found := Some (`General, e)
  | None -> ());
  match !found with
  | None -> None
  | Some (`Flow k, e) ->
      Hashtbl.remove t.flows k;
      Some e
  | Some (`General, e) ->
      t.general <- List.filter (fun x -> x.fid <> fid) t.general;
      Some e

let find_fid t fid =
  match List.find_opt (fun e -> e.fid = fid) t.general with
  | Some e -> Some e
  | None ->
      let found = ref None in
      Hashtbl.iter (fun _ e -> if e.fid = fid then found := Some e) t.flows;
      !found

let general_chain t = t.general
let flow_count t = Hashtbl.length t.flows

let decide t frame =
  (* The ethertype check matters: a frame whose type field is damaged on
     the wire can still carry an intact IP header behind it, and without
     this guard it would be forwarded with a garbage ethertype. *)
  if
    Packet.Frame.len frame < 14
    || Packet.Ethernet.get_ethertype frame <> Packet.Ethernet.ethertype_ipv4
    || not (Packet.Ipv4.valid frame)
  then Invalid
  else begin
    let per_flow =
      match Packet.Flow.of_frame frame with
      | None -> None
      | Some k -> (
          match Hashtbl.find_opt t.flows k with
          | Some e ->
              e.matches <- e.matches + 1;
              Some e
          | None -> None)
    in
    let dst = Packet.Ipv4.get_dst frame in
    let route, hit =
      match Iproute.Table.lookup_cached t.routes dst with
      | `Hit nh -> (Some nh, true)
      | `Miss r -> (r, false)
    in
    Classified { per_flow; general = t.general; route; route_cache_hit = hit }
  end

(* Allocation-free twin of [decide]: the verdict goes into the scratch
   fields instead of a fresh [Classified] record, the route probe is the
   native-int sentinel form, and the flow hash is skipped outright when
   no per-flow entry is installed (the table probe on an empty table is
   a pure no-op, but [Flow.of_frame] boxes a key per packet). *)
let decide_s t frame =
  if
    Packet.Frame.len frame < 14
    || Packet.Ethernet.get_ethertype frame <> Packet.Ethernet.ethertype_ipv4
    || not (Packet.Ipv4.valid frame)
  then false
  else begin
    t.s_per_flow <-
      (if Hashtbl.length t.flows = 0 then None
       else
         match Packet.Flow.of_frame frame with
         | None -> None
         | Some k -> (
             match Hashtbl.find_opt t.flows k with
             | Some e ->
                 e.matches <- e.matches + 1;
                 Some e
             | None -> None));
    t.s_general <- t.general;
    t.s_route <-
      Iproute.Table.lookup_cached_i t.routes (Packet.Ipv4.get_dst_i frame)
        ~hit:t.s_hit;
    t.s_route_cache_hit <- !(t.s_hit);
    true
  end

let scratch_per_flow t = t.s_per_flow
let scratch_general t = t.s_general
let scratch_route t = t.s_route
let scratch_route_cache_hit t = t.s_route_cache_hit

(* A frame too short to hold an IP header never reaches the field reads:
   the validation branch rejects it first (on silicon the registers would
   simply hold stale bytes; here an out-of-range read is a crash, so the
   guard is explicit). *)
let dst_or_zero frame =
  if Packet.Frame.len frame >= Packet.Ipv4.offset + Packet.Ipv4.min_header_len
  then Packet.Ipv4.get_dst frame
  else 0l

let classify_null t ctx frame =
  let cm = t.cm in
  Chip_ctx.exec ctx cm.Cost_model.classify_null_instr;
  ignore (Chip_ctx.hash ctx (Int64.of_int32 (dst_or_zero frame)));
  Chip_ctx.sram_read ctx ~bytes:(cm.Cost_model.classify_null_sram_reads * 4);
  decide t frame

let classify_full t ctx frame =
  let cm = t.cm in
  Chip_ctx.exec ctx cm.Cost_model.classify_full_instr;
  ignore (Chip_ctx.hash ctx (Int64.of_int32 (dst_or_zero frame)));
  ignore (Chip_ctx.hash ctx (Int64.of_int (Packet.Frame.len frame)));
  Chip_ctx.sram_read ctx ~bytes:cm.Cost_model.classify_full_sram_bytes;
  decide t frame

(* Same hardware charges as the [outcome] forms — the hash value was
   always discarded, so [hash_charge] books the identical delay without
   boxing the operand. *)
let classify_null_s t ctx frame =
  let cm = t.cm in
  Chip_ctx.exec ctx cm.Cost_model.classify_null_instr;
  Chip_ctx.hash_charge ctx;
  Chip_ctx.sram_read ctx ~bytes:(cm.Cost_model.classify_null_sram_reads * 4);
  decide_s t frame

let classify_full_s t ctx frame =
  let cm = t.cm in
  Chip_ctx.exec ctx cm.Cost_model.classify_full_instr;
  Chip_ctx.hash_charge ctx;
  Chip_ctx.hash_charge ctx;
  Chip_ctx.sram_read ctx ~bytes:cm.Cost_model.classify_full_sram_bytes;
  decide_s t frame

let classify_functional t frame = decide t frame
