(** The classifier (paper sections 2.1, 4.5).

    Reads packets from an input port and selects forwarders: first the
    header is validated ("the checksum verified and the version and length
    fields checked — but this is done as part of the classifier rather than
    the forwarder"), then the IP and TCP headers are hashed separately and
    combined to index the flow metadata table, yielding the per-flow
    forwarder (if any), the general forwarder chain, and the routing
    decision (a route-cache probe on the fast path).

    Two cost profiles exist: the trivial classifier of the section 3
    infrastructure experiments (destination hash, route-cache hit assumed)
    and the full classifier of section 4.5 (56 instructions, 20 bytes of
    SRAM, two hardware hashes, counted against the VRP budget). *)

type entry = {
  fid : int;  (** the install handle *)
  key : Packet.Flow.t;
  where : Desc.level;
  fwdr : Forwarder.t;
  state : Bytes.t;  (** the flow's SRAM state block *)
  mutable matches : int;
}

type outcome =
  | Invalid  (** malformed header: drop *)
  | Classified of {
      per_flow : entry option;
      general : entry list;  (** serial chain, minimal IP last *)
      route : Iproute.Table.nexthop option;
      route_cache_hit : bool;
    }

type t

val create : Cost_model.t -> routes:Iproute.Table.t -> t

val routes : t -> Iproute.Table.t

(** {1 Table management (driven by {!Iface})} *)

val add : t -> entry -> unit
(** Adds a per-flow or general entry.  General entries keep install order;
    an entry named ["ip"] is kept last (Figure 11's fall-through layout). *)

val remove : t -> int -> entry option
(** [remove t fid] unbinds and returns the entry. *)

val find_fid : t -> int -> entry option
val general_chain : t -> entry list
val flow_count : t -> int

(** {1 Data-plane lookups} *)

val classify_null : t -> Chip_ctx.t -> Packet.Frame.t -> outcome
(** Section 3's trivial classifier: one hardware hash of the destination
    address plus a route-cache probe; no flow table, no general chain
    beyond what is installed. *)

val classify_full : t -> Chip_ctx.t -> Packet.Frame.t -> outcome
(** Section 4.5's classifier: validate, hash IP and TCP headers, read flow
    metadata from SRAM, resolve the route. *)

val classify_functional : t -> Packet.Frame.t -> outcome
(** The same decision procedure with no hardware charging — for the
    StrongARM/Pentium (which receive the metadata pointer and "do not have
    to re-classify"), tests, and examples. *)

(** {1 Allocation-free fast path}

    The [_s] forms charge exactly like their [outcome] twins but write
    the verdict into scratch fields of [t] instead of allocating a
    [Classified] record: [false] means Invalid (drop); [true] means the
    scratch accessors below hold this packet's decision.  The caller
    MUST copy the scratch out before its next hardware charge — a charge
    can suspend, and the next context to classify overwrites it. *)

val classify_null_s : t -> Chip_ctx.t -> Packet.Frame.t -> bool
val classify_full_s : t -> Chip_ctx.t -> Packet.Frame.t -> bool

val scratch_per_flow : t -> entry option
val scratch_general : t -> entry list

val scratch_route : t -> Iproute.Table.nexthop
(** Physically equal to {!Iproute.Table.no_route} when no route matched. *)

val scratch_route_cache_hit : t -> bool
