type t = {
  input_serial_instr : int;
  input_serial_wait : int;
  input_copy_instr : int;
  input_loop_instr : int;
  classify_null_instr : int;
  classify_null_sram_reads : int;
  classify_full_instr : int;
  classify_full_sram_bytes : int;
  forward_null_instr : int;
  enqueue_instr : int;
  enqueue_sram_writes : int;
  enqueue_scratch_reads : int;
  enqueue_scratch_writes : int;
  mutex_scratch_reads : int;
  mutex_scratch_writes : int;
  alloc_scratch_writes : int;
  output_serial_instr : int;
  output_serial_wait : int;
  output_mp_instr : int;
  output_pkt_instr : int;
  dequeue_sram_writes : int;
  dequeue_scratch_reads : int;
  dequeue_scratch_writes : int;
  o3_select_instr : int;
  o3_scratch_reads : int;
  sa_poll_instr : int;
  sa_dequeue_sram_bytes : int;
  sa_interrupt_cycles : int;
  sa_enqueue_out_sram_bytes : int;
  sa_route_lookup_instr : int;
  sa_route_lookup_sram_bytes : int;
  pe_loop_instr : int;
  pe_touch_cycles_per_byte : float;
  vrp_mem_op_instr : int;
  vrp_mem_op_wait : int;
  mf_cache_instr : int;
  mf_probe_instr : int;
  mf_probe_sram_bytes : int;
  dyn_sched_scratch_reads : int;
  dyn_sched_scratch_writes : int;
  dyn_sched_instr : int;
  input_serial_per_burst : bool;
  output_serial_per_burst : bool;
  charge_per_batch : bool;
  sa_poll_backoff_cycles : int;
}

let default =
  {
    input_serial_instr = 10;
    input_serial_wait = 38;
    input_copy_instr = 20;
    input_loop_instr = 61;
    classify_null_instr = 45;
    classify_null_sram_reads = 2;
    classify_full_instr = 56;
    classify_full_sram_bytes = 20;
    forward_null_instr = 10;
    enqueue_instr = 25;
    enqueue_sram_writes = 1;
    enqueue_scratch_reads = 1;
    enqueue_scratch_writes = 2;
    mutex_scratch_reads = 1;
    mutex_scratch_writes = 1;
    alloc_scratch_writes = 1;
    output_serial_instr = 8;
    output_serial_wait = 16;
    output_mp_instr = 55;
    output_pkt_instr = 46;
    dequeue_sram_writes = 1;
    dequeue_scratch_reads = 1;
    dequeue_scratch_writes = 1;
    o3_select_instr = 13;
    o3_scratch_reads = 1;
    sa_poll_instr = 60;
    sa_dequeue_sram_bytes = 8;
    sa_interrupt_cycles = 700;
    sa_enqueue_out_sram_bytes = 8;
    sa_route_lookup_instr = 170;
    sa_route_lookup_sram_bytes = 12;
    pe_loop_instr = 360;
    pe_touch_cycles_per_byte = 10.5;
    vrp_mem_op_instr = 8;
    vrp_mem_op_wait = 25;
    mf_cache_instr = 12;
    mf_probe_instr = 10;
    mf_probe_sram_bytes = 8;
    dyn_sched_scratch_reads = 2;
    dyn_sched_scratch_writes = 2;
    dyn_sched_instr = 20;
    input_serial_per_burst = true;
    output_serial_per_burst = true;
    charge_per_batch = true;
    sa_poll_backoff_cycles = 512;
  }

let input_reg_total c =
  c.input_serial_instr + c.input_copy_instr + c.input_loop_instr
  + c.classify_null_instr + c.forward_null_instr + c.enqueue_instr

let output_reg_total c =
  c.output_serial_instr + c.output_mp_instr + c.output_pkt_instr
