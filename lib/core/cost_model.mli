(** The router's per-MP cost accounting (paper Table 2, section 3.5.1).

    Every constant here is a MicroEngine-cycle or operation count charged by
    the input/output loops.  The defaults reproduce the instruction counts
    the paper reports for its fastest feasible configuration (I.2 + O.1):
    171 register instructions on the input side, 109 on the output side,
    DRAM (0r/2w) + (2r/0w), SRAM (2/1) + (0/1), Scratch (2/4) + (0/2).

    Cycle counts that the paper does not itemize (the token-held serialized
    sections guarding the DMA state machine and the output FIFO ordering)
    are calibrated so the simulated Table 1 and Figure 7 match the paper;
    they are regular record fields so benches can probe sensitivity. *)

type t = {
  (* Input side (Figure 5), per MP. *)
  input_serial_instr : int;
      (** instructions executed while holding the input token (port_rdy
          check, DMA slot programming) *)
  input_serial_wait : int;
      (** non-instruction cycles under the token: the CSR/DMA round trip
          to off-chip port hardware — the serialization Figure 7 blames
          for input's scaling knee *)
  input_copy_instr : int;  (** IN_FIFO to transfer-register copy *)
  input_loop_instr : int;
      (** buffer address calculation, MP tagging, loop control *)
  classify_null_instr : int;
      (** the trivial classifier of section 3.5.1: hardware hash of the
          destination address, route-cache hit assumed *)
  classify_null_sram_reads : int;  (** route-cache entry *)
  classify_full_instr : int;
      (** the full two-hash classifier of section 4.5 (56 instructions) *)
  classify_full_sram_bytes : int;  (** 20 bytes of flow metadata *)
  forward_null_instr : int;  (** minimal forwarder: destination MAC patch *)
  enqueue_instr : int;
  enqueue_sram_writes : int;  (** queue entry *)
  enqueue_scratch_reads : int;  (** head pointer *)
  enqueue_scratch_writes : int;  (** head pointer, readiness bit *)
  mutex_scratch_reads : int;  (** hardware-mutex acquire (I.2/I.3) *)
  mutex_scratch_writes : int;  (** hardware-mutex release (I.2/I.3) *)
  alloc_scratch_writes : int;  (** circular buffer cursor *)
  (* Output side (Figure 6). *)
  output_serial_instr : int;
  output_serial_wait : int;  (** FIFO slot activation *)
  output_mp_instr : int;  (** per-MP: address calc, FIFO copy control *)
  output_pkt_instr : int;  (** per-packet: select_queue, dequeue *)
  dequeue_sram_writes : int;  (** tail pointer update *)
  dequeue_scratch_reads : int;  (** head-pointer check (skipped by
                                    batching after the first of a batch) *)
  dequeue_scratch_writes : int;
  o3_select_instr : int;  (** multi-queue selection (O.3) *)
  o3_scratch_reads : int;  (** readiness bit-array *)
  (* StrongARM (section 3.6). *)
  sa_poll_instr : int;  (** polling loop per packet: dequeue + dispatch *)
  sa_dequeue_sram_bytes : int;
  sa_interrupt_cycles : int;  (** added per packet under interrupts *)
  sa_enqueue_out_sram_bytes : int;
  sa_route_lookup_instr : int;
      (** full longest-prefix match on a route-cache miss; with its SRAM
          reads this reproduces the paper's "236 cycles per packet" *)
  sa_route_lookup_sram_bytes : int;
  (* Pentium (section 3.7). *)
  pe_loop_instr : int;  (** queue management around each packet *)
  pe_touch_cycles_per_byte : float;
      (** memory-touch cost of reading+writing payload past the first MP
          (what makes 1500-byte packets expensive on the host) *)
  (* VRP interpreter (section 4.2). *)
  vrp_mem_op_instr : int;
      (** per-memory-op instructions in the VRP's generic load/store
          sequence (address computation, transfer-register management) *)
  vrp_mem_op_wait : int;
      (** per-memory-op stall beyond the raw Table 3 latency (context
          swap in/out around the reference) *)
  (* Multi-field (tuple-space) classification. *)
  mf_cache_instr : int;
      (** flow-cache probe: hash the 5-tuple+DSCP key, compare one
          cached entry — charged on every classified packet *)
  mf_probe_instr : int;
      (** per-tuple probe on a cache miss: mask the key and hash into
          that tuple's table *)
  mf_probe_sram_bytes : int;
      (** rule entry fetched per tuple probe *)
  (* Dynamic-allocation ablation (section 3.2.1). *)
  dyn_sched_scratch_reads : int;
  dyn_sched_scratch_writes : int;
  dyn_sched_instr : int;
  (* Batched execution (Snabb-style burst loops). *)
  input_serial_per_burst : bool;
      (** charge the input token serial section (the DMA/CSR round trip)
          once per burst instead of once per MP — the DMA engine is
          programmed with a run of slots, which is what Table 2's
          per-transfer (not per-MP) CSR cost permits *)
  output_serial_per_burst : bool;
      (** likewise for the output FIFO slot-activation section *)
  charge_per_batch : bool;
      (** accumulate a context's Table 2 charges arithmetically
          ({!Sim.Server.book_i}) and pay them as one wait at the next
          shared-state interaction (queue, token, MAC, park), instead of
          one engine event per charge.  Identical totals and identical
          batched/unbatched delivery schedules; contention interleaving
          is resolved at batch rather than operation granularity, so the
          calibration apparatus ({!Fixed_infra}) keeps it off *)
  sa_poll_backoff_cycles : int;
      (** StrongARM polling-mode idle backoff ceiling: with event-driven
          ME loops the SA's poll is the background noise floor, so its
          idle cadence is a tunable *)
}

val default : t
(** Constants reproducing the paper's Table 2 and calibrated sections. *)

val input_reg_total : t -> int
(** Register instructions per input MP in I.2 (should be ~171). *)

val output_reg_total : t -> int
(** Register instructions per output MP in O.1 (should be ~109). *)
