type level = Microengine | Strongarm | Pentium

(* Every field mutable and every field a native int (the arrival stamp
   included — picoseconds fit an int by the engine-clock argument), so a
   descriptor can be recycled in place.  Descriptors sit in SRAM queues
   across context activations — long enough to survive a minor
   collection — so a freshly allocated record per packet does not just
   cost its 7 words, it gets *promoted*, and steady-state zero-promotion
   is impossible without reuse. *)
type t = {
  mutable buf : Ixp.Buffer_pool.handle;
  mutable len : int;
  mutable in_port : int;
  mutable out_port : int;
  mutable fid : int;
  mutable arrival : int;
  mutable pooled : bool; (* on the free list (double-release guard) *)
}

let make ~buf ~len ~in_port ~out_port ?(fid = -1) ~arrival () =
  { buf; len; in_port; out_port; fid; arrival; pooled = false }

(* Domain-local free list: descriptors are produced and consumed on the
   same domain (a cluster member's whole pipeline runs on one engine),
   so no locking, and the OCaml 5 per-domain minor heaps never see a
   cross-domain pointer.  Keyed in DLS rather than threaded through the
   loop records so every construction site of [Input_loop.t] /
   [Output_loop.t] stays untouched. *)
type pool = { mutable items : t array; mutable n : int; mutable reused : int }

let dummy =
  { buf = -1; len = 0; in_port = -1; out_port = -1; fid = -1; arrival = 0;
    pooled = false }

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { items = Array.make 256 dummy; n = 0; reused = 0 })

let take ~buf ~len ~in_port ~out_port ~fid ~arrival =
  let p = Domain.DLS.get pool_key in
  if p.n = 0 then { buf; len; in_port; out_port; fid; arrival; pooled = false }
  else begin
    p.n <- p.n - 1;
    let d = p.items.(p.n) in
    p.items.(p.n) <- dummy;
    p.reused <- p.reused + 1;
    d.pooled <- false;
    d.buf <- buf;
    d.len <- len;
    d.in_port <- in_port;
    d.out_port <- out_port;
    d.fid <- fid;
    d.arrival <- arrival;
    d
  end

let release d =
  if not d.pooled && d != dummy then begin
    d.pooled <- true;
    let p = Domain.DLS.get pool_key in
    let cap = Array.length p.items in
    if p.n = cap then begin
      let items = Array.make (2 * cap) dummy in
      Array.blit p.items 0 items 0 cap;
      p.items <- items
    end;
    p.items.(p.n) <- d;
    p.n <- p.n + 1
  end

let pool_reused () = (Domain.DLS.get pool_key).reused
let pool_free () = (Domain.DLS.get pool_key).n

let pp_level ppf l =
  Format.pp_print_string ppf
    (match l with
    | Microengine -> "ME"
    | Strongarm -> "SA"
    | Pentium -> "PE")
