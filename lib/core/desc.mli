(** Packet descriptors: the 32-bit SRAM queue entries of section 3.4,
    carrying a DRAM buffer reference plus the results of classification
    ("the packet processing results and some identification information
    for the packet are then enqueued in the destination queue").

    Descriptors are recycled through a domain-local free list ({!take} /
    {!release}): they sit in queues long enough to survive minor
    collections, so allocating one per packet promotes it to the major
    heap — the steady-state promotion source the allocation budget
    forbids.  All fields are mutable native ints to make in-place reuse
    possible. *)

type level = Microengine | Strongarm | Pentium

type t = {
  mutable buf : Ixp.Buffer_pool.handle;
  mutable len : int;  (** frame length in bytes *)
  mutable in_port : int;
  mutable out_port : int;  (** classification's port choice *)
  mutable fid : int;
      (** installed-forwarder reference for SA/PE dispatch; -1 when none
          (plain forwarding) *)
  mutable arrival : int;  (** picoseconds, for latency accounting *)
  mutable pooled : bool;
      (** currently on the free list; maintained by {!take}/{!release} *)
}

val make :
  buf:Ixp.Buffer_pool.handle ->
  len:int ->
  in_port:int ->
  out_port:int ->
  ?fid:int ->
  arrival:int ->
  unit ->
  t
(** A fresh, unpooled descriptor (tests and slow paths). *)

val take :
  buf:Ixp.Buffer_pool.handle ->
  len:int ->
  in_port:int ->
  out_port:int ->
  fid:int ->
  arrival:int ->
  t
(** A descriptor from the calling domain's free list, or a fresh one if
    the list is dry.  Pair with {!release} when the packet leaves the
    system. *)

val release : t -> unit
(** Return a descriptor to the calling domain's free list.  Safe to call
    twice (the second is a no-op), but the caller must not touch the
    descriptor afterwards. *)

val pool_reused : unit -> int
(** Descriptors handed out from the free list (vs freshly allocated)
    on the calling domain — the reuse gauge. *)

val pool_free : unit -> int
(** Descriptors currently parked on the calling domain's free list. *)

val pp_level : Format.formatter -> level -> unit
