type input_discipline = I1_private | I2_protected | I_spinlock | I_dynamic

type output_discipline = O1_batch | O2_single | O3_multi

type stage = Input_only | Output_only | Both

type config = {
  cm : Cost_model.t;
  hw : Ixp.Config.t;
  n_input_contexts : int;
  n_output_contexts : int;
  input_disc : input_discipline;
  output_disc : output_discipline;
  stage : stage;
  contention : bool;
  exceptional_share : float;
  vrp_blocks : Vrp.code;
  frame_len : int;
  n_queues : int;
  queue_capacity : int;
  warmup_us : float;
  measure_us : float;
}

let default =
  {
    (* The calibration apparatus reproduces the paper's *measured* loops,
       which activate a context per MP; per-burst serial amortization is
       a departure from that hardware and would shift every Table 1 /
       Figure 7 number it was calibrated against. *)
    cm =
      {
        Cost_model.default with
        Cost_model.input_serial_per_burst = false;
        output_serial_per_burst = false;
        charge_per_batch = false;
      };
    hw = Ixp.Config.default;
    n_input_contexts = 16;
    n_output_contexts = 8;
    input_disc = I2_protected;
    output_disc = O1_batch;
    stage = Both;
    contention = false;
    exceptional_share = 0.;
    vrp_blocks = [];
    frame_len = 64;
    n_queues = 8;
    queue_capacity = 4096;
    warmup_us = 300.;
    measure_us = 1500.;
  }

type result = {
  in_mpps : float;
  out_mpps : float;
  me_utilization : float array;
  sram_utilization : float;
  dram_utilization : float;
  input_token_hold : float;
  output_token_hold : float;
  mutex_waits : int;
  enq_drops : int;
  stale_bufs : int;
  sa_kpps : float;
  sa_backlog : int;
  dram_ops_per_pkt : float;
  sram_ops_per_pkt : float;
  scratch_ops_per_pkt : float;
  latency_ns_mean : float;
}

(* Contexts are spread round-robin over a stage's MicroEngines so that
   consecutive token holders sit on different engines (section 3.2.2), and
   only the minimum number of engines is used (Figure 7's methodology). *)
let ctx_ids ~me_base ~contexts_per_me ~n =
  let n_me = (n + contexts_per_me - 1) / contexts_per_me in
  List.init n (fun i -> ((me_base + (i mod n_me)) * contexts_per_me) + (i / n_me))

let mes_used ~contexts_per_me ~n = (n + contexts_per_me - 1) / contexts_per_me

let run ?telemetry cfg =
  let engine = Sim.Engine.create () in
  let hw =
    (* Make sure the chip has enough MicroEngines for the requested split
       (Figure 7 sweeps one stage alone up to all 6). *)
    let need =
      (match cfg.stage with
      | Both ->
          mes_used ~contexts_per_me:4 ~n:cfg.n_input_contexts
          + mes_used ~contexts_per_me:4 ~n:cfg.n_output_contexts
      | Input_only -> mes_used ~contexts_per_me:4 ~n:cfg.n_input_contexts
      | Output_only -> mes_used ~contexts_per_me:4 ~n:cfg.n_output_contexts)
    in
    if need > cfg.hw.Ixp.Config.n_microengines then
      { cfg.hw with Ixp.Config.n_microengines = need }
    else cfg.hw
  in
  let chip = Ixp.Chip.create ~cfg:hw ~ports:[] engine in
  let cm = cfg.cm in
  let queues =
    Array.init cfg.n_queues (fun i ->
        Squeue.create
          ~name:(Printf.sprintf "outq%d" i)
          ~capacity:cfg.queue_capacity ())
  in
  let spinlocks =
    Array.init cfg.n_queues (fun _ ->
        Sim.Spinlock.create
          ~retry_ps:(Sim.Engine.Clock.ps_of_cycles chip.Ixp.Chip.me_clock 8)
          ())
  in
  let frame =
    Packet.Build.udp ~frame_len:cfg.frame_len
      ~src:(Packet.Ipv4.addr_of_string "10.0.0.1")
      ~dst:(Packet.Ipv4.addr_of_string "10.1.0.1")
      ~src_port:1000 ~dst_port:2000 ()
  in
  let istats = Input_loop.make_stats () in
  let ostats = Output_loop.make_stats () in
  let latency = Sim.Stats.Histogram.create "latency" in

  (* Telemetry wiring: registration happens once, before fibers start;
     the hot loops keep mutating the same stats records as ever, and
     gauges read them only at snapshot time. *)
  let in_me_range, out_me_range =
    let n_in = mes_used ~contexts_per_me:4 ~n:cfg.n_input_contexts in
    let n_out = mes_used ~contexts_per_me:4 ~n:cfg.n_output_contexts in
    match cfg.stage with
    | Both -> ((0, n_in), (n_in, n_in + n_out))
    | Input_only -> ((0, n_in), (0, 0))
    | Output_only -> ((0, 0), (0, n_out))
  in
  let input_scope, output_scope =
    match telemetry with
    | None -> (None, None)
    | Some reg ->
        Telemetry.Registry.set_clock reg (fun () -> Sim.Engine.time engine);
        Array.iteri
          (fun i me ->
            let s =
              Telemetry.Registry.scope reg "me"
                ~labels:[ ("id", string_of_int i) ]
            in
            Ixp.Microengine.register_telemetry s me)
          chip.Ixp.Chip.mes;
        Array.iter
          (fun q ->
            let s =
              Telemetry.Registry.scope reg "queue"
                ~labels:[ ("name", Squeue.name q) ]
            in
            Squeue.register_telemetry s q)
          queues;
        let instructions_in (lo, hi) =
          let total = ref 0 in
          for i = lo to hi - 1 do
            total := !total + Ixp.Microengine.instructions chip.Ixp.Chip.mes.(i)
          done;
          !total
        in
        let per_packet range counter () =
          float_of_int (instructions_in range)
          /. float_of_int (max 1 (Sim.Stats.Counter.value counter))
        in
        let si = Telemetry.Registry.scope reg "input" in
        Input_loop.register_stats si istats;
        Telemetry.Scope.gauge si "cycles_per_packet"
          (per_packet in_me_range istats.Input_loop.pkts_in);
        let so = Telemetry.Registry.scope reg "output" in
        Output_loop.register_stats so ostats;
        Telemetry.Scope.register_histogram so ~name:"latency_ps" latency;
        Telemetry.Scope.gauge so "cycles_per_packet"
          (per_packet out_me_range ostats.Output_loop.pkts_out);
        (if cfg.vrp_blocks <> [] then
           let vs = Telemetry.Registry.scope reg "vrp" in
           ignore
             (Vrp.check_recorded ~scope:vs Vrp.prototype_budget
                (Vrp.static_cost cfg.vrp_blocks)
                ~state_bytes:0
                ~slots:(Vrp.istore_slots cfg.vrp_blocks)));
        (Some si, Some so)
  in

  (* Input stage. *)
  let input_ring =
    Sim.Token_ring.create ~name:"input-token"
      ~pass_ps:
        (Sim.Engine.Clock.ps_of_cycles chip.Ixp.Chip.me_clock
           hw.Ixp.Config.token_pass_cycles)
      ~members:cfg.n_input_contexts ()
  in
  let choose_qid ctx_seq = if cfg.contention then 0 else ctx_seq mod cfg.n_queues in
  let enq =
    match cfg.input_disc with
    | I1_private -> Input_loop.enqueue_private cm
    | I2_protected | I_dynamic -> Input_loop.enqueue_protected cm
    | I_spinlock ->
        fun ctx q desc ->
          (* Each test-and-set attempt is a real SRAM access; under
             contention these flood the channel (section 3.4.2). *)
          let lock =
            let rec find i =
              if i >= Array.length queues then spinlocks.(0)
              else if queues.(i) == q then spinlocks.(i)
              else find (i + 1)
            in
            find 0
          in
          Sim.Spinlock.lock lock ~attempt:(fun () ->
              Chip_ctx.sram_read ctx ~bytes:4);
          Chip_ctx.exec ctx cm.Cost_model.enqueue_instr;
          Chip_ctx.sram_write ctx ~bytes:(4 * cm.Cost_model.enqueue_sram_writes);
          Chip_ctx.scratch_write ctx
            ~bytes:(4 * cm.Cost_model.enqueue_scratch_writes);
          let ok = Squeue.push q desc in
          Sim.Spinlock.unlock lock ~attempt:(fun () ->
              Chip_ctx.sram_write ctx ~bytes:4);
          ok
  in
  (* Exceptional path: an SA-bound queue plus a StrongARM fiber that
     drains it at its own pace (section 4.7's second experiment). *)
  let sa_q = Squeue.create ~name:"sa.exceptional" ~capacity:8192 () in
  let sa_done = Sim.Stats.Counter.create "sa.serviced" in
  (match telemetry with
  | Some reg when cfg.exceptional_share > 0. ->
      let s = Telemetry.Registry.scope reg "strongarm" in
      Telemetry.Scope.register_counter s ~name:"serviced" sa_done;
      Squeue.register_telemetry
        (Telemetry.Scope.sub s "queue"
           ~labels:[ ("name", Squeue.name sa_q) ])
        sa_q
  | _ -> ());
  if cfg.exceptional_share > 0. then begin
    let sa_ctx = Chip_ctx.make_cpu chip chip.Ixp.Chip.me_clock in
    Sim.Engine.spawn engine "strongarm-drain" (fun () ->
        let rec loop backoff =
          match Squeue.pop sa_q with
          | Some desc ->
              Chip_ctx.exec sa_ctx cm.Cost_model.sa_poll_instr;
              Chip_ctx.sram_read sa_ctx
                ~bytes:cm.Cost_model.sa_dequeue_sram_bytes;
              Chip_ctx.exec sa_ctx 180 (* null local forwarder *);
              ignore
                (Input_loop.enqueue_protected cm sa_ctx
                   queues.(desc.Desc.out_port mod cfg.n_queues)
                   desc);
              Sim.Stats.Counter.incr sa_done;
              loop 1
          | None ->
              Chip_ctx.wait_cycles sa_ctx backoff;
              loop (min (backoff * 2) 256)
        in
        loop 1)
  end;
  let exceptional_period =
    if cfg.exceptional_share <= 0. then max_int
    else int_of_float (Float.round (1. /. cfg.exceptional_share))
  in
  let classify_and_forward seq =
    let count = ref 0 in
    fun ctx frm ~in_port ->
      ignore in_port;
      (* Trivial classifier: destination hash, route-cache hit assumed. *)
      Chip_ctx.exec ctx cm.Cost_model.classify_null_instr;
      ignore (Chip_ctx.hash ctx (Int64.of_int32 (Packet.Ipv4.get_dst frm)));
      Chip_ctx.sram_read ctx
        ~bytes:(4 * cm.Cost_model.classify_null_sram_reads);
      (* Null forwarder plus any synthetic VRP blocks under test. *)
      Chip_ctx.exec ctx cm.Cost_model.forward_null_instr;
      if cfg.vrp_blocks <> [] then
        Vrp.execute
          ~op_overhead:
            (cm.Cost_model.vrp_mem_op_instr, cm.Cost_model.vrp_mem_op_wait)
          ctx cfg.vrp_blocks;
      (* Dynamic-allocation ablation: pay the scheduling work queue. *)
      (if cfg.input_disc = I_dynamic then begin
         Chip_ctx.scratch_read ctx
           ~bytes:(4 * cm.Cost_model.dyn_sched_scratch_reads);
         Chip_ctx.exec ctx cm.Cost_model.dyn_sched_instr;
         Chip_ctx.scratch_write ctx
           ~bytes:(4 * cm.Cost_model.dyn_sched_scratch_writes)
       end);
      incr count;
      let qid = choose_qid seq in
      if !count mod exceptional_period = 0 then
        (* Same processing, different destination queue: that is all an
           exceptional packet costs the input stage. *)
        Input_loop.To_queue { qid = cfg.n_queues; out_port = qid; fid = -1 }
      else Input_loop.To_queue { qid; out_port = qid; fid = -1 }
  in
  let input_ids =
    ctx_ids ~me_base:0 ~contexts_per_me:4 ~n:cfg.n_input_contexts
  in
  let run_input = cfg.stage = Both || cfg.stage = Input_only in
  if run_input then
    List.iteri
      (fun seq ctx_id ->
        let t =
          {
            Input_loop.cm;
            enq;
            process = classify_and_forward seq;
            process_rest_mp = (fun _ _ -> ());
            queue_of =
              (fun ~ctx_id:_ qid ->
                if qid = cfg.n_queues then sa_q else queues.(qid));
            notify = None;
            idle_backoff_cycles = 64;
            scope = input_scope;
            recycle = None;
          }
        in
        Input_loop.spawn_context t chip ~ring:input_ring ~slot:seq ~ctx_id
          ~source:(Input_loop.Replay frame) ~stats:istats)
      input_ids;

  (* Output stage. *)
  let output_ring =
    Sim.Token_ring.create ~name:"output-token"
      ~pass_ps:
        (Sim.Engine.Clock.ps_of_cycles chip.Ixp.Chip.me_clock
           hw.Ixp.Config.token_pass_cycles)
      ~members:(max 1 cfg.n_output_contexts) ()
  in
  let run_output = cfg.stage = Both || cfg.stage = Output_only in
  if run_output then begin
    let out_me_base =
      match cfg.stage with
      | Both -> mes_used ~contexts_per_me:4 ~n:cfg.n_input_contexts
      | Output_only | Input_only -> 0
    in
    let output_ids =
      ctx_ids ~me_base:out_me_base ~contexts_per_me:4 ~n:cfg.n_output_contexts
    in
    (* Assign queues to output contexts round-robin (static, section
       3.4.1). *)
    let queues_of j =
      let mine = ref [] in
      Array.iteri (fun i q -> if i mod cfg.n_output_contexts = j then mine := q :: !mine) queues;
      Array.of_list (List.rev !mine)
    in
    List.iteri
      (fun j ctx_id ->
        let qs = queues_of j in
        let qs = if Array.length qs = 0 then [| queues.(0) |] else qs in
        let t =
          {
            Output_loop.cm;
            discipline =
              (match cfg.output_disc with
              | O1_batch -> Output_loop.O1_batch
              | O2_single -> Output_loop.O2_single
              | O3_multi -> Output_loop.O3_multi);
            queues = qs;
            port_for = (fun _ -> None);
            on_tx =
              Some
                (fun desc _ ->
                  Sim.Stats.Histogram.observe_i latency
                    (Sim.Engine.now_i () - desc.Desc.arrival));
            idle_backoff_cycles = 64;
            scope = output_scope;
          }
        in
        Output_loop.spawn_context t chip ~ring:output_ring ~slot:j ~ctx_id
          ~stats:ostats)
      output_ids;
    (* Output-only runs are "fooled into believing data was always
       available": a zero-cost refiller keeps every queue topped up. *)
    if cfg.stage = Output_only then begin
      let buf = Ixp.Buffer_pool.alloc chip.Ixp.Chip.buffers frame in
      Sim.Engine.spawn engine "refiller" (fun () ->
          let rec top_up () =
            Array.iteri
              (fun i q ->
                while Squeue.length q < 256 do
                  ignore
                    (Squeue.push q
                       (Desc.make ~buf ~len:cfg.frame_len ~in_port:0
                          ~out_port:i ~arrival:(Sim.Engine.now_i ()) ()))
                done)
              queues;
            Sim.Engine.wait (Sim.Engine.ps_of_ns 2000.);
            top_up ()
          in
          top_up ())
    end
  end;

  (* Input-only runs need the queues drained without output-side hardware
     cost so the enqueue rate is what is measured. *)
  if run_input && not run_output then
    Sim.Engine.spawn engine "drainer" (fun () ->
        let rec drain () =
          Array.iter (fun q -> while Squeue.pop q <> None do () done) queues;
          Sim.Engine.wait (Sim.Engine.ps_of_ns 1000.);
          drain ()
        in
        drain ());

  (* Warm up, snapshot, measure. *)
  let warm = Sim.Engine.of_seconds (cfg.warmup_us *. 1e-6) in
  let stop = Sim.Engine.of_seconds ((cfg.warmup_us +. cfg.measure_us) *. 1e-6) in
  Sim.Engine.run engine ~until:warm;
  (* The input-stage rate counts every packet the stage processed,
     including ones dropped at a full queue — under I.3 contention the
     queue backs up but the stage's processing rate is the measurement. *)
  let in0 = Sim.Stats.Counter.value istats.Input_loop.pkts_in in
  let sa0 = Sim.Stats.Counter.value sa_done in
  let out0 = Sim.Stats.Counter.value ostats.Output_loop.pkts_out in
  let me_busy0 = Array.map Ixp.Microengine.busy_time chip.Ixp.Chip.mes in
  let sram_busy0 = Sim.Server.busy_time (Ixp.Mem.server chip.Ixp.Chip.sram) in
  let dram_busy0 = Sim.Server.busy_time (Ixp.Mem.server chip.Ixp.Chip.dram) in
  let ithold0 = Sim.Token_ring.hold_time_total input_ring in
  let othold0 = Sim.Token_ring.hold_time_total output_ring in
  let dram_ops0 = Ixp.Mem.ops_completed chip.Ixp.Chip.dram in
  let sram_ops0 = Ixp.Mem.ops_completed chip.Ixp.Chip.sram in
  let scratch_ops0 = Ixp.Mem.ops_completed chip.Ixp.Chip.scratch in
  Sim.Engine.run engine ~until:stop;
  let window = Int64.sub stop warm in
  let secs = Sim.Engine.seconds window in
  let rate c0 c = float_of_int (c - c0) /. secs /. 1e6 in
  let frac t0 t1 = Int64.to_float (Int64.sub t1 t0) /. Int64.to_float window in
  {
    in_mpps = rate in0 (Sim.Stats.Counter.value istats.Input_loop.pkts_in);
    out_mpps = rate out0 (Sim.Stats.Counter.value ostats.Output_loop.pkts_out);
    me_utilization =
      Array.mapi
        (fun i me -> frac me_busy0.(i) (Ixp.Microengine.busy_time me))
        chip.Ixp.Chip.mes;
    sram_utilization =
      frac sram_busy0 (Sim.Server.busy_time (Ixp.Mem.server chip.Ixp.Chip.sram));
    dram_utilization =
      frac dram_busy0 (Sim.Server.busy_time (Ixp.Mem.server chip.Ixp.Chip.dram));
    input_token_hold = frac ithold0 (Sim.Token_ring.hold_time_total input_ring);
    output_token_hold =
      frac othold0 (Sim.Token_ring.hold_time_total output_ring);
    mutex_waits =
      Array.fold_left
        (fun acc q -> acc + Sim.Mutex.contended_acquires (Squeue.mutex q))
        0 queues;
    enq_drops = Sim.Stats.Counter.value istats.Input_loop.enq_drop;
    stale_bufs = Sim.Stats.Counter.value ostats.Output_loop.stale_bufs;
    sa_kpps =
      float_of_int (Sim.Stats.Counter.value sa_done - sa0) /. secs /. 1e3;
    sa_backlog = Squeue.length sa_q;
    dram_ops_per_pkt =
      (let pkts =
         max 1 (Sim.Stats.Counter.value istats.Input_loop.pkts_in - in0)
       in
       float_of_int (Ixp.Mem.ops_completed chip.Ixp.Chip.dram - dram_ops0)
       /. float_of_int pkts);
    sram_ops_per_pkt =
      (let pkts =
         max 1 (Sim.Stats.Counter.value istats.Input_loop.pkts_in - in0)
       in
       float_of_int (Ixp.Mem.ops_completed chip.Ixp.Chip.sram - sram_ops0)
       /. float_of_int pkts);
    scratch_ops_per_pkt =
      (let pkts =
         max 1 (Sim.Stats.Counter.value istats.Input_loop.pkts_in - in0)
       in
       float_of_int (Ixp.Mem.ops_completed chip.Ixp.Chip.scratch - scratch_ops0)
       /. float_of_int pkts);
    latency_ns_mean = Sim.Stats.Histogram.mean latency /. 1e3;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "in=%.3f Mpps out=%.3f Mpps token(in)=%.2f token(out)=%.2f sram=%.2f \
     dram=%.2f mutex_waits=%d drops=%d stale=%d"
    r.in_mpps r.out_mpps r.input_token_hold r.output_token_hold
    r.sram_utilization r.dram_utilization r.mutex_waits r.enq_drops
    r.stale_bufs
