(** The section 3 "fixed infrastructure" testbench: the FIFO-to-FIFO
    peak-rate experiments behind Table 1 and Figures 7, 9 and 10.

    Reproduces the paper's methodology: input contexts replay a preloaded
    64-byte packet ("emulating infinitely fast network ports"), the null
    forwarder runs with a trivial classifier assuming a route-cache hit,
    and device interaction is omitted.  Output-only runs are fooled into
    believing data is always available; input-only runs enqueue into
    effectively-unbounded queues. *)

type input_discipline =
  | I1_private  (** private queues, tail pointers in registers *)
  | I2_protected  (** hardware-mutex protected public queues *)
  | I_spinlock
      (** ablation: test-and-set over SRAM, the mechanism section 3.4.2
          rejects for its memory contention *)
  | I_dynamic
      (** ablation: dynamic context scheduling through a scratch work
          queue, the alternative section 3.2.1 rejects *)

type output_discipline = O1_batch | O2_single | O3_multi

type stage = Input_only | Output_only | Both

type config = {
  cm : Cost_model.t;
  hw : Ixp.Config.t;
  n_input_contexts : int;  (** paper default 16 (4 MicroEngines) *)
  n_output_contexts : int;  (** paper default 8 (2 MicroEngines) *)
  input_disc : input_discipline;
  output_disc : output_discipline;
  stage : stage;
  contention : bool;  (** all packets to one protected queue (I.3 /
                          Figure 10) *)
  exceptional_share : float;
      (** fraction of packets classified as exceptional and enqueued for a
          StrongARM drainer instead of an output queue — the section 4.7
          control-flood experiment.  The input stage still does identical
          work per packet, which is exactly the paper's isolation claim. *)
  vrp_blocks : Vrp.code;  (** extra VRP work per packet (Figure 9/10) *)
  frame_len : int;  (** 64 for the paper's worst case *)
  n_queues : int;  (** output-port queues (8 on the prototype) *)
  queue_capacity : int;
  warmup_us : float;
  measure_us : float;
}

val default : config
(** The paper's 4/2-MicroEngine split, I.2 + O.1, 64-byte packets. *)

type result = {
  in_mpps : float;  (** packets/s entering queues (input-stage rate) *)
  out_mpps : float;  (** packets/s leaving (output-stage rate) *)
  me_utilization : float array;  (** per-MicroEngine issue occupancy *)
  sram_utilization : float;
  dram_utilization : float;
  input_token_hold : float;
      (** fraction of wall time the input token was held — 1.0 means the
          serialized DMA section is the bottleneck *)
  output_token_hold : float;
  mutex_waits : int;  (** contended queue-mutex acquisitions *)
  enq_drops : int;
  stale_bufs : int;
  sa_kpps : float;  (** exceptional packets serviced by the StrongARM *)
  sa_backlog : int;  (** exceptional packets still queued at the end *)
  dram_ops_per_pkt : float;  (** measured channel operations per packet *)
  sram_ops_per_pkt : float;
  scratch_ops_per_pkt : float;
  latency_ns_mean : float;
      (** mean arrival-to-transmit delay — the paper's "3550 ns of delay
          as it is forwarded" plus queueing *)
}

val run : ?telemetry:Telemetry.Registry.t -> config -> result
(** Build a fresh engine+chip, run the configured stages, measure over the
    post-warmup window.

    When [telemetry] is given, the run's instruments are registered into
    it before fibers start — per-MicroEngine scopes (["me"] labeled by
    id, with a derived cycles-per-packet gauge per stage), per-queue
    scopes, the stage counters, the latency histogram, and a ["vrp"]
    scope counting budget checks/overruns for the configured
    [vrp_blocks] — and its clock is bound to the run's engine, so
    [Telemetry.Registry.snapshot] after [run] returns reports the whole
    experiment. *)

val pp_result : Format.formatter -> result -> unit
