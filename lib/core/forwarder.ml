type verdict =
  | Continue
  | Forward of int
  | Forward_routed
  | Drop
  | Divert of Desc.level

type action = state:Bytes.t -> Packet.Frame.t -> in_port:int -> verdict

type batch_action =
  state:Bytes.t ->
  Packet.Frame.t array ->
  n:int ->
  in_port:int ->
  verdicts:verdict array ->
  unit

type t = {
  name : string;
  code : Vrp.code;
  state_bytes : int;
  host_cycles : int;
  action : action;
  batch : batch_action option;
}

let make ~name ~code ~state_bytes ?host_cycles ?batch action =
  if state_bytes < 0 then invalid_arg "Forwarder.make: state_bytes";
  let host_cycles =
    match host_cycles with
    | Some c -> c
    | None -> Vrp.cycles_estimate Ixp.Config.default (Vrp.static_cost code)
  in
  { name; code; state_bytes; host_cycles; action; batch }

(* Batch entry: a native batch implementation when the forwarder
   provides one, else the per-frame shim.  The VRP admission path only
   ever inspects [code]/[state_bytes], so a batch implementation changes
   nothing about what gets admitted or charged. *)
let run_batch t ~state frames ~n ~in_port ~verdicts =
  if n > Array.length frames || n > Array.length verdicts then
    invalid_arg "Forwarder.run_batch: n";
  match t.batch with
  | Some f -> f ~state frames ~n ~in_port ~verdicts
  | None ->
      for i = 0 to n - 1 do
        verdicts.(i) <- t.action ~state frames.(i) ~in_port
      done

let null =
  {
    name = "null";
    code = [];
    state_bytes = 0;
    host_cycles = 0;
    action = (fun ~state:_ _ ~in_port:_ -> Forward_routed);
    batch = None;
  }

let cost t = Vrp.static_cost t.code
let istore_slots t = Vrp.istore_slots t.code

let pp_verdict ppf = function
  | Continue -> Format.pp_print_string ppf "continue"
  | Forward p -> Format.fprintf ppf "forward(port %d)" p
  | Forward_routed -> Format.pp_print_string ppf "forward(routed)"
  | Drop -> Format.pp_print_string ppf "drop"
  | Divert l -> Format.fprintf ppf "divert(%a)" Desc.pp_level l
