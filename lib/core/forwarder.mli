(** Forwarders: the unit of extensibility (paper sections 2.1, 4.4, 4.5).

    A {e data forwarder} processes every matching packet in the data plane.
    Its resource consumption is declared as VRP {!Vrp.code} (what admission
    control inspects and the simulator charges) and its behaviour as an
    OCaml [action] over the real packet bytes and its flow state.  A
    {e control forwarder} is ordinary code run on the Pentium that manages
    its data half through [getdata]/[setdata] — see {!Iface}.

    Per-flow forwarders bind to a 4-tuple and logically run in parallel (at
    most one matches a packet); general forwarders bind to [All] and run
    serially on every packet, minimal IP last (Figure 11). *)

type verdict =
  | Continue  (** fall through to the next forwarder in the chain *)
  | Forward of int  (** stop the chain; send out this port *)
  | Forward_routed  (** stop; use the classifier's routing decision *)
  | Drop  (** stop; discard the packet *)
  | Divert of Desc.level  (** stop; pass up the processor hierarchy *)

type action = state:Bytes.t -> Packet.Frame.t -> in_port:int -> verdict
(** The functional behaviour.  [state] is the forwarder's persistent flow
    state (the SRAM block [getdata]/[setdata] share with the control
    plane); mutations to it and to the frame are the forwarder's effect. *)

type batch_action =
  state:Bytes.t ->
  Packet.Frame.t array ->
  n:int ->
  in_port:int ->
  verdicts:verdict array ->
  unit
(** Batch form: judge frames [0..n-1] of the array in one call, writing
    one verdict per frame.  Must be observationally identical to running
    {!action} per frame in order (state mutations included) — the
    equivalence the forwarder test suite checks. *)

type t = {
  name : string;
  code : Vrp.code;  (** declared per-MP cost, for admission + charging *)
  state_bytes : int;  (** persistent SRAM flow state to allocate *)
  host_cycles : int;
      (** per-packet cost when run on the StrongARM or Pentium instead of
          in the VRP (e.g. full IP at 660 cycles, a TCP proxy at 800 —
          section 4.4); defaults to the VRP code's cycle estimate *)
  action : action;
  batch : batch_action option;
      (** native batch implementation; [None] means {!run_batch} shims
          the per-frame action *)
}

val make :
  name:string -> code:Vrp.code -> state_bytes:int -> ?host_cycles:int ->
  ?batch:batch_action -> action -> t

val run_batch :
  t ->
  state:Bytes.t ->
  Packet.Frame.t array ->
  n:int ->
  in_port:int ->
  verdicts:verdict array ->
  unit
(** The batch entry point every caller should use: dispatches to the
    native batch implementation when present, else applies the per-frame
    action to each frame in order.  VRP admission (code inspection,
    budget charging) is untouched by which path runs. *)

val null : t
(** The null forwarder of section 3: no code, no state, routes onward. *)

val cost : t -> Vrp.cost
val istore_slots : t -> int

val pp_verdict : Format.formatter -> verdict -> unit
