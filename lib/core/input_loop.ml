type source = Replay of Packet.Frame.t | Port of Ixp.Mac_port.t

type target =
  | To_queue of { qid : int; out_port : int; fid : int }
  | Drop_it

type stats = {
  mps_in : Sim.Stats.Counter.t;
  pkts_in : Sim.Stats.Counter.t;
  enq_ok : Sim.Stats.Counter.t;
  enq_drop : Sim.Stats.Counter.t;
  drop_by_process : Sim.Stats.Counter.t;
  batch_mps : Sim.Stats.Histogram.t;
}

let make_stats () =
  let c = Sim.Stats.Counter.create in
  {
    mps_in = c "input.mps";
    pkts_in = c "input.pkts";
    enq_ok = c "input.enqueued";
    enq_drop = c "input.queue_drops";
    drop_by_process = c "input.process_drops";
    batch_mps = Sim.Stats.Histogram.create "input.batch_mps";
  }

let register_stats scope stats =
  let r = Telemetry.Scope.register_counter scope in
  r ~name:"mps_in" stats.mps_in;
  r ~name:"pkts_in" stats.pkts_in;
  r ~name:"enqueued" stats.enq_ok;
  r ~name:"queue_drops" stats.enq_drop;
  r ~name:"process_drops" stats.drop_by_process;
  Telemetry.Scope.register_histogram scope ~name:"batch_mps" stats.batch_mps

type t = {
  cm : Cost_model.t;
  enq : Chip_ctx.t -> Squeue.t -> Desc.t -> bool;
  process : Chip_ctx.t -> Packet.Frame.t -> in_port:int -> target;
  process_rest_mp : Chip_ctx.t -> Packet.Frame.t -> unit;
  queue_of : ctx_id:int -> int -> Squeue.t;
  notify : (int -> unit) option;
  idle_backoff_cycles : int;
  scope : Telemetry.Scope.t option;
  recycle : (Packet.Frame.t -> unit) option;
}

(* A dropped frame never reaches the buffer pool, so its release hook
   never fires; hand it back to the frame pool here instead. *)
let recycle_frame t frame =
  match t.recycle with None -> () | Some r -> r frame

(* Drops are the robustness signal the telemetry layer exists for; they
   are rare on the fast path, so an event per drop is affordable. *)
let drop_event t what =
  match t.scope with
  | None -> ()
  | Some scope -> Telemetry.Scope.event scope what

(* I.2/I.3: hardware-mutex protected public queue — the head-pointer
   read-modify-write happens inside the critical section, so queue
   contention serializes contexts here. *)
let enqueue_critical cm ctx =
  Chip_ctx.scratch_read ctx ~bytes:(4 * cm.Cost_model.enqueue_scratch_reads);
  Chip_ctx.exec ctx cm.Cost_model.enqueue_instr;
  Chip_ctx.sram_write ctx ~bytes:(4 * cm.Cost_model.enqueue_sram_writes);
  Chip_ctx.scratch_write ctx ~bytes:(4 * cm.Cost_model.enqueue_scratch_writes)

let enqueue_protected cm ctx q desc =
  Chip_ctx.scratch_read ctx ~bytes:(4 * cm.Cost_model.mutex_scratch_reads);
  if ctx.Chip_ctx.defer then begin
    (* Per-batch charging pays the critical section's time *before* the
       lock: its memory charges queue behind other contexts' whole-burst
       bookings, and inheriting that queue delay while holding the mutex
       would convoy every context enqueueing to this queue. *)
    enqueue_critical cm ctx;
    Chip_ctx.commit ctx;
    Sim.Mutex.lock (Squeue.mutex q);
    let ok = Squeue.push q desc in
    Sim.Mutex.unlock (Squeue.mutex q);
    Chip_ctx.scratch_write ctx ~bytes:(4 * cm.Cost_model.mutex_scratch_writes);
    ok
  end
  else begin
    Sim.Mutex.lock (Squeue.mutex q);
    enqueue_critical cm ctx;
    let ok = Squeue.push q desc in
    Sim.Mutex.unlock (Squeue.mutex q);
    Chip_ctx.scratch_write ctx ~bytes:(4 * cm.Cost_model.mutex_scratch_writes);
    ok
  end

(* I.1: private queue — the tail pointer lives in a register; only the
   entry itself and the readiness bit touch memory. *)
let enqueue_private cm ctx q desc =
  Chip_ctx.exec ctx cm.Cost_model.enqueue_instr;
  Chip_ctx.sram_write ctx ~bytes:(4 * cm.Cost_model.enqueue_sram_writes);
  Chip_ctx.scratch_write ctx ~bytes:4;
  Chip_ctx.commit ctx;
  Squeue.push q desc

(* Batched receive loop (the Snabb link-burst structure): one serialized
   token section programs the receive DMA for a whole burst of MPs, then
   the context processes the burst in a single activation.  Per-MP
   charges (copy, loop bookkeeping, protocol processing, DRAM landing,
   enqueue) are identical to the classic one-MP-per-rotation loop; only
   the token + CSR serial section amortizes across the burst (gated by
   [input_serial_per_burst] — off forces burst size 1, which IS the
   classic loop).  An idle context parks on its port's rx waiter list
   instead of polling. *)
let spawn_context ?(burst_mps = 16) t chip ~ring ~slot ~ctx_id ~source ~stats =
  let open Ixp in
  let ctx = Chip_ctx.make chip ~ctx_id in
  let cm = t.cm in
  Chip_ctx.set_defer ctx cm.Cost_model.charge_per_batch;
  let burst_mps =
    if cm.Cost_model.input_serial_per_burst then max 1 burst_mps else 1
  in
  Sim.Token_ring.join ring slot;
  (* Replay emulates an infinitely fast port: the frame's MP sequence
     (first/intermediate/last tags included) repeats forever. *)
  let replay_items =
    match source with
    | Port _ -> [||]
    | Replay f ->
        let f = Packet.Frame.copy f in
        let n = Packet.Mp.count (Packet.Frame.len f) in
        Array.init n (fun index ->
            let tag =
              if n = 1 then Packet.Mp.Only
              else if index = 0 then Packet.Mp.First
              else if index = n - 1 then Packet.Mp.Last
              else Packet.Mp.Intermediate
            in
            (tag, index, f))
  in
  let replay_cursor = ref 0 in
  let batch = Batch.create ~capacity:burst_mps in
  let in_port = match source with Replay _ -> 0 | Port p -> Mac_port.id p in
  let name = Printf.sprintf "input.ctx%d" ctx_id in
  let process_mp tag frame =
    Sim.Stats.Counter.incr stats.mps_in;
    (* FIFO slot to transfer registers + loop bookkeeping, fused. *)
    Chip_ctx.exec ctx
      (cm.Cost_model.input_copy_instr + cm.Cost_model.input_loop_instr);
    match tag with
    | Packet.Mp.First | Packet.Mp.Only -> (
        Sim.Stats.Counter.incr stats.pkts_in;
        (* Circular buffer allocation (shared cursor; the token
           serialization protects it, section 3.2.3). *)
        Chip_ctx.scratch_write ctx
          ~bytes:(4 * cm.Cost_model.alloc_scratch_writes);
        let target = t.process ctx frame ~in_port in
        (* The MP itself lands in DRAM. *)
        Chip_ctx.dram_write ctx ~bytes:Packet.Mp.size;
        match target with
        | Drop_it ->
            Sim.Stats.Counter.incr stats.drop_by_process;
            drop_event t "drop: protocol processing";
            recycle_frame t frame
        | To_queue { qid; out_port; fid } -> (
            (* A stack pool can run dry (the circular pool never does —
               it overwrites); an empty pool drops the packet, the
               backpressure the paper's design trades away for timing
               predictability (section 3.2.3). *)
            let buf = Buffer_pool.alloc_try chip.Chip.buffers frame in
            if buf < 0 then begin
              Sim.Stats.Counter.incr stats.enq_drop;
              drop_event t "drop: buffer pool dry";
              recycle_frame t frame
            end
            else begin
              let desc =
                Desc.take ~buf ~len:(Packet.Frame.len frame) ~in_port
                  ~out_port ~fid
                  ~arrival:(Chip_ctx.now_ps_i ctx)
              in
              let q = t.queue_of ~ctx_id qid in
              if t.enq ctx q desc then begin
                Sim.Stats.Counter.incr stats.enq_ok;
                match t.notify with Some f -> f qid | None -> ()
              end
              else begin
                Buffer_pool.free chip.Chip.buffers buf;
                Desc.release desc;
                Sim.Stats.Counter.incr stats.enq_drop;
                drop_event t ("drop: queue full " ^ Squeue.name q)
              end
            end))
    | Packet.Mp.Intermediate | Packet.Mp.Last ->
        t.process_rest_mp ctx frame;
        Chip_ctx.dram_write ctx ~bytes:Packet.Mp.size
  in
  Sim.Engine.spawn chip.Chip.engine name (fun () ->
      let engine = Sim.Engine.self_engine () in
      (* Reusable park cell: the continuation slot and the registration
         closure are built once, so an idle-park/wake cycle allocates
         nothing (the suspend-based form built a waker per park). *)
      let park_cell = Sim.Engine.make_cell engine in
      (match source with
      | Port p ->
          let w = Sim.Engine.cell_waker park_cell in
          Sim.Engine.on_park park_cell (fun () -> Mac_port.park_rx p w)
      | Replay _ -> ());
      let rec loop backoff =
        (* Serialized section: token + port check + burst DMA
           programming, fused into one core access.  The previous
           burst's tail charges (a scratch write or two) ride in
           [pending] into this burst and are paid at its enqueue
           commit; the token hold itself is unaffected (the serial
           charge is horizon-light and the release precedes any
           commit). *)
        ignore (Sim.Token_ring.acquire ring slot);
        Chip_ctx.exec_wait_serial ctx ~instr:cm.Cost_model.input_serial_instr
          ~wait:cm.Cost_model.input_serial_wait;
        (* Under per-batch charging the serial section's time rides in
           [pending] until the batch's next commit point (the enqueue, or
           the next loop top): the rx ring is inspected one serial-window
           early in engine time, but every timestamp downstream uses the
           context's virtual clock.  Classic mode has already waited. *)
        let n =
          match source with
          | Replay _ ->
              Batch.clear batch;
              let items = Array.length replay_items in
              let take = min burst_mps items in
              for _ = 1 to take do
                let i = !replay_cursor in
                replay_cursor := (i + 1) mod items;
                let tag, index, f = replay_items.(i) in
                Batch.push batch ~tag ~index f
              done;
              take
          | Port p -> Batch.fill_from_port batch p ~max:burst_mps
        in
        Sim.Token_ring.release ring slot;
        if n = 0 then begin
          Chip_ctx.exec ctx 4;
          match source with
          | Port _ ->
              (* Park until the port accepts a frame: zero idle events
                 instead of a poll every [idle_backoff_cycles]. *)
              Chip_ctx.commit ctx;
              Sim.Engine.park park_cell;
              loop 1
          | Replay _ ->
              Chip_ctx.wait_cycles ctx backoff;
              (* Deferred backoff must be paid here or the idle loop
                 would spin without advancing time. *)
              Chip_ctx.commit ctx;
              loop (min (backoff * 2) t.idle_backoff_cycles)
        end
        else begin
          Sim.Stats.Histogram.observe_i stats.batch_mps n;
          let span = Sim.Engine.batch_begin engine in
          let frames = ref 0 in
          for i = 0 to n - 1 do
            if Batch.is_head batch i then incr frames;
            process_mp (Batch.tag batch i) (Batch.frame batch i)
          done;
          Sim.Engine.batch_end engine span ~frames:!frames;
          Batch.clear batch;
          loop 1
        end
      in
      loop 1)
