type source = Replay of Packet.Frame.t | Port of Ixp.Mac_port.t

type target =
  | To_queue of { qid : int; out_port : int; fid : int }
  | Drop_it

type stats = {
  mps_in : Sim.Stats.Counter.t;
  pkts_in : Sim.Stats.Counter.t;
  enq_ok : Sim.Stats.Counter.t;
  enq_drop : Sim.Stats.Counter.t;
  drop_by_process : Sim.Stats.Counter.t;
}

let make_stats () =
  let c = Sim.Stats.Counter.create in
  {
    mps_in = c "input.mps";
    pkts_in = c "input.pkts";
    enq_ok = c "input.enqueued";
    enq_drop = c "input.queue_drops";
    drop_by_process = c "input.process_drops";
  }

let register_stats scope stats =
  let r = Telemetry.Scope.register_counter scope in
  r ~name:"mps_in" stats.mps_in;
  r ~name:"pkts_in" stats.pkts_in;
  r ~name:"enqueued" stats.enq_ok;
  r ~name:"queue_drops" stats.enq_drop;
  r ~name:"process_drops" stats.drop_by_process

type t = {
  cm : Cost_model.t;
  enq : Chip_ctx.t -> Squeue.t -> Desc.t -> bool;
  process : Chip_ctx.t -> Packet.Frame.t -> in_port:int -> target;
  process_rest_mp : Chip_ctx.t -> Packet.Frame.t -> unit;
  queue_of : ctx_id:int -> int -> Squeue.t;
  notify : (int -> unit) option;
  idle_backoff_cycles : int;
  scope : Telemetry.Scope.t option;
  recycle : (Packet.Frame.t -> unit) option;
}

(* A dropped frame never reaches the buffer pool, so its release hook
   never fires; hand it back to the frame pool here instead. *)
let recycle_frame t frame =
  match t.recycle with None -> () | Some r -> r frame

(* Drops are the robustness signal the telemetry layer exists for; they
   are rare on the fast path, so an event per drop is affordable. *)
let drop_event t what =
  match t.scope with
  | None -> ()
  | Some scope -> Telemetry.Scope.event scope what

(* I.2/I.3: hardware-mutex protected public queue — the head-pointer
   read-modify-write happens inside the critical section, so queue
   contention serializes contexts here. *)
let enqueue_protected cm ctx q desc =
  Chip_ctx.scratch_read ctx ~bytes:(4 * cm.Cost_model.mutex_scratch_reads);
  Sim.Mutex.lock (Squeue.mutex q);
  Chip_ctx.scratch_read ctx ~bytes:(4 * cm.Cost_model.enqueue_scratch_reads);
  Chip_ctx.exec ctx cm.Cost_model.enqueue_instr;
  Chip_ctx.sram_write ctx ~bytes:(4 * cm.Cost_model.enqueue_sram_writes);
  Chip_ctx.scratch_write ctx ~bytes:(4 * cm.Cost_model.enqueue_scratch_writes);
  let ok = Squeue.push q desc in
  Sim.Mutex.unlock (Squeue.mutex q);
  Chip_ctx.scratch_write ctx ~bytes:(4 * cm.Cost_model.mutex_scratch_writes);
  ok

(* I.1: private queue — the tail pointer lives in a register; only the
   entry itself and the readiness bit touch memory. *)
let enqueue_private cm ctx q desc =
  Chip_ctx.exec ctx cm.Cost_model.enqueue_instr;
  Chip_ctx.sram_write ctx ~bytes:(4 * cm.Cost_model.enqueue_sram_writes);
  Chip_ctx.scratch_write ctx ~bytes:4;
  Squeue.push q desc

let spawn_context t chip ~ring ~slot ~ctx_id ~source ~stats =
  let open Ixp in
  let ctx = Chip_ctx.make chip ~ctx_id in
  let cm = t.cm in
  Sim.Token_ring.join ring slot;
  (* Replay emulates an infinitely fast port: the frame's MP sequence
     (first/intermediate/last tags included) repeats forever. *)
  let replay_items =
    match source with
    | Port _ -> [||]
    | Replay f ->
        let f = Packet.Frame.copy f in
        let n = Packet.Mp.count (Packet.Frame.len f) in
        Array.init n (fun index ->
            let tag =
              if n = 1 then Packet.Mp.Only
              else if index = 0 then Packet.Mp.First
              else if index = n - 1 then Packet.Mp.Last
              else Packet.Mp.Intermediate
            in
            { Ixp.Mac_port.tag; index; frame = f })
  in
  let replay_cursor = ref 0 in
  let name = Printf.sprintf "input.ctx%d" ctx_id in
  Sim.Engine.spawn chip.Chip.engine name (fun () ->
      let rec loop backoff =
        (* Serialized section: token + port check + DMA programming. *)
        ignore (Sim.Token_ring.acquire ring slot);
        Chip_ctx.exec ctx cm.Cost_model.input_serial_instr;
        Chip_ctx.wait_cycles ctx cm.Cost_model.input_serial_wait;
        let item =
          match source with
          | Replay _ ->
              let i = !replay_cursor in
              replay_cursor := (i + 1) mod Array.length replay_items;
              Some replay_items.(i)
          | Port p -> Mac_port.take_mp p
        in
        Sim.Token_ring.release ring slot;
        match item with
        | None ->
            (* Port idle: spin with bounded backoff. *)
            Chip_ctx.exec ctx 4;
            Chip_ctx.wait_cycles ctx backoff;
            loop (min (backoff * 2) t.idle_backoff_cycles)
        | Some { Mac_port.tag; index = _; frame } ->
            Sim.Stats.Counter.incr stats.mps_in;
            (* FIFO slot to transfer registers, then loop bookkeeping. *)
            Chip_ctx.exec ctx cm.Cost_model.input_copy_instr;
            Chip_ctx.exec ctx cm.Cost_model.input_loop_instr;
            let in_port =
              match source with Replay _ -> 0 | Port p -> Mac_port.id p
            in
            (match tag with
            | Packet.Mp.First | Packet.Mp.Only ->
                Sim.Stats.Counter.incr stats.pkts_in;
                (* Circular buffer allocation (shared cursor; the token
                   serialization protects it, section 3.2.3). *)
                Chip_ctx.scratch_write ctx
                  ~bytes:(4 * cm.Cost_model.alloc_scratch_writes);
                let target = t.process ctx frame ~in_port in
                (* The MP itself lands in DRAM. *)
                Chip_ctx.dram_write ctx ~bytes:Packet.Mp.size;
                (match target with
                | Drop_it ->
                    Sim.Stats.Counter.incr stats.drop_by_process;
                    drop_event t "drop: protocol processing";
                    recycle_frame t frame
                | To_queue { qid; out_port; fid } -> (
                    (* A stack pool can run dry (the circular pool never
                       does — it overwrites); an empty pool drops the
                       packet, the backpressure the paper's design trades
                       away for timing predictability (section 3.2.3). *)
                    match Buffer_pool.alloc chip.Chip.buffers frame with
                    | exception Failure _ ->
                        Sim.Stats.Counter.incr stats.enq_drop;
                        drop_event t "drop: buffer pool dry";
                        recycle_frame t frame
                    | buf ->
                        let desc =
                          Desc.make ~buf ~len:(Packet.Frame.len frame)
                            ~in_port ~out_port ~fid
                            ~arrival:(Sim.Engine.now ()) ()
                        in
                        let q = t.queue_of ~ctx_id qid in
                        if t.enq ctx q desc then begin
                          Sim.Stats.Counter.incr stats.enq_ok;
                          match t.notify with
                          | Some f -> f qid
                          | None -> ()
                        end
                        else begin
                          Buffer_pool.free chip.Chip.buffers buf;
                          Sim.Stats.Counter.incr stats.enq_drop;
                          drop_event t
                            ("drop: queue full " ^ Squeue.name q)
                        end))
            | Packet.Mp.Intermediate | Packet.Mp.Last ->
                t.process_rest_mp ctx frame;
                Chip_ctx.dram_write ctx ~bytes:Packet.Mp.size);
            loop 1
      in
      loop 1)
