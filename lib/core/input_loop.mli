(** The input processing loop (paper Figure 5, sections 3.2-3.2.3).

    Each input context runs this loop once per received MP: acquire the
    token (serializing the shared DMA state machine), check the port and
    load the next MP into its statically-owned FIFO slot, release the
    token, copy the MP to registers, run protocol processing (classifier +
    forwarders — the VRP), write the MP to its DRAM buffer, and on the
    packet's first MP enqueue a descriptor on the destination queue.

    The queueing discipline (Table 1, I.1-I.3) is selected by
    [protected_queues]: private queues keep the tail pointer in registers
    and skip synchronization; protected queues take the per-queue hardware
    mutex around the head-pointer update. *)

type source =
  | Replay of Packet.Frame.t
      (** the paper's "infinitely fast port": one packet preloaded per FIFO
          slot, iterated without port interaction *)
  | Port of Ixp.Mac_port.t  (** a real MAC port, statically assigned *)

type target =
  | To_queue of { qid : int; out_port : int; fid : int }
  | Drop_it

type stats = {
  mps_in : Sim.Stats.Counter.t;
  pkts_in : Sim.Stats.Counter.t;
  enq_ok : Sim.Stats.Counter.t;
  enq_drop : Sim.Stats.Counter.t;
  drop_by_process : Sim.Stats.Counter.t;
  batch_mps : Sim.Stats.Histogram.t;
      (** realized burst sizes (MPs per context activation) *)
}

val make_stats : unit -> stats

val register_stats : Telemetry.Scope.t -> stats -> unit
(** Register every stage counter under a telemetry scope (typically
    ["input"]). *)

type t = {
  cm : Cost_model.t;
  enq : Chip_ctx.t -> Squeue.t -> Desc.t -> bool;
      (** the discipline-charged enqueue ({!enqueue_private},
          {!enqueue_protected}, or a custom mechanism such as the
          spinlock ablation) *)
  process : Chip_ctx.t -> Packet.Frame.t -> in_port:int -> target;
      (** protocol processing for a packet's first MP; charges its own
          hardware costs and returns the destination *)
  process_rest_mp : Chip_ctx.t -> Packet.Frame.t -> unit;
      (** extra VRP work applied to each subsequent MP *)
  queue_of : ctx_id:int -> int -> Squeue.t;
      (** resolve a [qid] to this context's concrete queue (private
          disciplines map the same [qid] to per-context queues) *)
  notify : (int -> unit) option;
      (** fired after a successful enqueue to [qid] (e.g. signal the
          StrongARM that an exceptional packet arrived) *)
  idle_backoff_cycles : int;
      (** polling gap when the port has nothing (simulation efficiency;
          real contexts would spin on [port_rdy]) *)
  scope : Telemetry.Scope.t option;
      (** telemetry scope receiving one event per dropped packet (queue
          full, pool dry, protocol drop); [None] records nothing *)
  recycle : (Packet.Frame.t -> unit) option;
      (** fired with frames dropped before reaching the buffer pool
          (protocol drop, pool dry), so a {!Packet.Frame_pool} feeding
          the sources gets every frame back; [None] for unpooled
          traffic *)
}

val spawn_context :
  ?burst_mps:int ->
  t ->
  Ixp.Chip.t ->
  ring:Sim.Token_ring.t ->
  slot:int ->
  ctx_id:int ->
  source:source ->
  stats:stats ->
  unit
(** Start one input context as a fiber.  [slot] is both the context's token
    ring position and its FIFO slot; [ctx_id] selects the hosting
    MicroEngine.  [burst_mps] (default 16, one transfer FIFO's worth)
    bounds how many MPs one token acquisition may drain; it is forced to
    1 when the cost model charges the serial section per MP
    ([input_serial_per_burst = false]), which reproduces the classic
    one-MP-per-rotation loop exactly. *)

val enqueue_private : Cost_model.t -> Chip_ctx.t -> Squeue.t -> Desc.t -> bool
(** I.1: tail pointer in registers, no synchronization. *)

val enqueue_protected :
  Cost_model.t -> Chip_ctx.t -> Squeue.t -> Desc.t -> bool
(** I.2/I.3: hardware-mutex protected head-pointer update; blocks under
    contention.  Also used by the StrongARM to re-enqueue diverted packets
    onto output queues. *)
