type discipline = O1_batch | O2_single | O3_multi

type stats = {
  mps_out : Sim.Stats.Counter.t;
  pkts_out : Sim.Stats.Counter.t;
  stale_bufs : Sim.Stats.Counter.t;
}

let make_stats () =
  let c = Sim.Stats.Counter.create in
  {
    mps_out = c "output.mps";
    pkts_out = c "output.pkts";
    stale_bufs = c "output.stale_buffers";
  }

let register_stats scope stats =
  let r = Telemetry.Scope.register_counter scope in
  r ~name:"mps_out" stats.mps_out;
  r ~name:"pkts_out" stats.pkts_out;
  r ~name:"stale_buffers" stats.stale_bufs

type t = {
  cm : Cost_model.t;
  discipline : discipline;
  queues : Squeue.t array;
  port_for : Desc.t -> Ixp.Mac_port.t option;
  on_tx : (Desc.t -> Packet.Frame.t -> unit) option;
  idle_backoff_cycles : int;
  scope : Telemetry.Scope.t option;
}

(* The frame sits assembled in its DRAM buffer the whole time it is in
   flight; transmission walks an MP *cursor* over it rather than
   materializing an MP list (the split/join pair allocated a full copy of
   every forwarded packet). *)
type in_flight = {
  desc : Desc.t;
  frame : Packet.Frame.t;
  total : int; (* MPs in the frame *)
  mutable next : int; (* next MP index to transmit *)
}

(* Dequeue bookkeeping shared by every discipline: select_queue charges are
   paid by the caller; this pays the tail-pointer update and reads the
   packet out of its DRAM buffer. *)
let take_packet t ctx chip stats desc =
  let cm = t.cm in
  Chip_ctx.exec ctx cm.Cost_model.output_pkt_instr;
  Chip_ctx.sram_write ctx ~bytes:(4 * cm.Cost_model.dequeue_sram_writes);
  Chip_ctx.scratch_write ctx ~bytes:(4 * cm.Cost_model.dequeue_scratch_writes);
  match Ixp.Buffer_pool.read chip.Ixp.Chip.buffers desc.Desc.buf with
  | None ->
      (* The circular allocator lapped this packet. *)
      Sim.Stats.Counter.incr stats.stale_bufs;
      (match t.scope with
      | None -> ()
      | Some scope ->
          Telemetry.Scope.event scope "stale buffer: circular pool lapped");
      None
  | Some frame ->
      Some
        { desc; frame; total = Packet.Mp.count (Packet.Frame.len frame); next = 0 }

(* Move one MP of [inflight] to its port's FIFO if the wire has room.
   Returns false when the slot is busy (caller polls again). *)
let push_mp t ctx chip stats inflight ~on_done =
  if inflight.next >= inflight.total then begin
    on_done ();
    true
  end
  else begin
    let port = t.port_for inflight.desc in
    let last = inflight.next = inflight.total - 1 in
    let ok =
      match port with None -> true | Some p -> Ixp.Mac_port.tx_pace_ok p ~last
    in
    if not ok then false
    else begin
      (* DRAM buffer to output FIFO, then slot enable. *)
      Chip_ctx.dram_read ctx ~bytes:Packet.Mp.size;
      Chip_ctx.exec ctx t.cm.Cost_model.output_mp_instr;
      inflight.next <- inflight.next + 1;
      Sim.Stats.Counter.incr stats.mps_out;
      if last then begin
        (match port with
        | Some p ->
            Ixp.Mac_port.transmit_frame p inflight.frame
              ~len:(Packet.Frame.len inflight.frame)
        | None -> ());
        on_done ();
        (* Return the DRAM buffer (a no-op for the circular pool). *)
        Ixp.Buffer_pool.free chip.Ixp.Chip.buffers inflight.desc.Desc.buf;
        Sim.Stats.Counter.incr stats.pkts_out;
        match t.on_tx with
        | Some f -> f inflight.desc inflight.frame
        | None -> ()
      end;
      true
    end
  end

(* One iteration per MP, exactly Figure 6: the token section, then — when
   the previous packet finished — select_queue and dequeue, then one MP
   from DRAM to the FIFO.  The single-queue disciplines (O.1/O.2) keep one
   packet in flight; a context servicing several ports (O.3) holds one
   FIFO slot per queue so a saturated port cannot head-of-line block the
   others. *)
let spawn_context t chip ~ring ~slot ~ctx_id ~stats =
  let open Ixp in
  let ctx = Chip_ctx.make chip ~ctx_id in
  let cm = t.cm in
  Sim.Token_ring.join ring slot;
  let batch = ref 0 in
  let name = Printf.sprintf "output.ctx%d" ctx_id in
  let serial_section () =
    ignore (Sim.Token_ring.acquire ring slot);
    Chip_ctx.exec ctx cm.Cost_model.output_serial_instr;
    Chip_ctx.wait_cycles ctx cm.Cost_model.output_serial_wait;
    Sim.Token_ring.release ring slot
  in
  let poll_wait backoff =
    Chip_ctx.exec ctx 4;
    Chip_ctx.wait_cycles ctx backoff;
    min (backoff * 2) t.idle_backoff_cycles
  in
  let single_queue_loop () =
    let q = t.queues.(0) in
    let select () =
      match t.discipline with
      | O1_batch ->
          if !batch > 0 then begin
            match Squeue.pop q with
            | Some d ->
                decr batch;
                Some d
            | None ->
                batch := 0;
                None
          end
          else begin
            Chip_ctx.scratch_read ctx ~bytes:4;
            let ready = Squeue.length q in
            if ready = 0 then None
            else begin
              batch := ready - 1;
              Squeue.pop q
            end
          end
      | O2_single | O3_multi ->
          Chip_ctx.scratch_read ctx ~bytes:4;
          Squeue.pop q
    in
    let current = ref None in
    let rec loop backoff =
      serial_section ();
      (if !current = None then
         match select () with
         | None -> ()
         | Some desc -> current := take_packet t ctx chip stats desc);
      match !current with
      | None -> loop (poll_wait backoff)
      | Some inflight ->
          if push_mp t ctx chip stats inflight ~on_done:(fun () -> current := None)
          then loop 1
          else loop (poll_wait backoff)
    in
    loop 1
  in
  let multi_queue_loop () =
    let n = Array.length t.queues in
    let currents = Array.make n None in
    let rec loop backoff =
      serial_section ();
      (* Advance the highest-priority slot whose wire has room. *)
      let progressed = ref false in
      let i = ref 0 in
      while (not !progressed) && !i < n do
        (match currents.(!i) with
        | Some inflight ->
            let idx = !i in
            if
              push_mp t ctx chip stats inflight ~on_done:(fun () ->
                  currents.(idx) <- None)
            then progressed := true
        | None -> ());
        incr i
      done;
      if !progressed then loop 1
      else begin
        (* Start a packet on an idle slot: one readiness bit-array read
           summarizes every queue (section 3.4.3), then the chosen queue
           pays its own head read. *)
        Chip_ctx.scratch_read ctx ~bytes:(4 * cm.Cost_model.o3_scratch_reads);
        Chip_ctx.exec ctx cm.Cost_model.o3_select_instr;
        let rec scan i =
          if i >= n then None
          else if currents.(i) <> None || Squeue.is_empty t.queues.(i) then
            scan (i + 1)
          else begin
            Chip_ctx.scratch_read ctx ~bytes:4;
            match Squeue.pop t.queues.(i) with
            | None -> scan (i + 1)
            | Some desc -> Some (i, desc)
          end
        in
        match scan 0 with
        | Some (i, desc) ->
            (match take_packet t ctx chip stats desc with
            | None -> ()
            | Some inflight ->
                currents.(i) <- Some inflight;
                (* Figure 6 moves the first MP in the same iteration as
                   the dequeue. *)
                ignore
                  (push_mp t ctx chip stats inflight ~on_done:(fun () ->
                       currents.(i) <- None)));
            loop 1
        | None -> loop (poll_wait backoff)
      end
    in
    loop 1
  in
  Sim.Engine.spawn chip.Chip.engine name (fun () ->
      match t.discipline with
      | O1_batch | O2_single -> single_queue_loop ()
      | O3_multi -> multi_queue_loop ())
