type discipline = O1_batch | O2_single | O3_multi

type stats = {
  mps_out : Sim.Stats.Counter.t;
  pkts_out : Sim.Stats.Counter.t;
  stale_bufs : Sim.Stats.Counter.t;
}

let make_stats () =
  let c = Sim.Stats.Counter.create in
  {
    mps_out = c "output.mps";
    pkts_out = c "output.pkts";
    stale_bufs = c "output.stale_buffers";
  }

let register_stats scope stats =
  let r = Telemetry.Scope.register_counter scope in
  r ~name:"mps_out" stats.mps_out;
  r ~name:"pkts_out" stats.pkts_out;
  r ~name:"stale_buffers" stats.stale_bufs

type t = {
  cm : Cost_model.t;
  discipline : discipline;
  queues : Squeue.t array;
  port_for : Desc.t -> Ixp.Mac_port.t option;
  on_tx : (Desc.t -> Packet.Frame.t -> unit) option;
  idle_backoff_cycles : int;
  scope : Telemetry.Scope.t option;
}

(* The frame sits assembled in its DRAM buffer the whole time it is in
   flight; transmission walks an MP *cursor* over it rather than
   materializing an MP list (the split/join pair allocated a full copy of
   every forwarded packet).  The cursor record itself is allocated once
   per context (per queue under O.3) and refilled in place per packet —
   a fresh record per packet would be minor-heap traffic on the hottest
   path in the system. *)
type in_flight = {
  mutable active : bool; (* holds a packet mid-transmission *)
  mutable desc : Desc.t;
  mutable frame : Packet.Frame.t;
  mutable total : int; (* MPs in the frame *)
  mutable next : int; (* next MP index to transmit *)
  mutable charged : bool; (* current MP's data movement already paid *)
}

let idle_slot () =
  {
    active = false;
    desc = Desc.make ~buf:(-1) ~len:0 ~in_port:(-1) ~out_port:(-1) ~arrival:0 ();
    frame = Packet.Frame.of_bytes Bytes.empty;
    total = 0;
    next = 0;
    charged = false;
  }

(* Dequeue bookkeeping shared by every discipline: select_queue charges are
   paid by the caller; this pays the tail-pointer update and reads the
   packet out of its DRAM buffer, filling [infl] in place.  [false] means
   the circular allocator lapped this packet (a stale buffer) — the
   descriptor goes straight back to the free list. *)
let take_packet t ctx chip stats desc infl =
  let cm = t.cm in
  Chip_ctx.exec ctx cm.Cost_model.output_pkt_instr;
  Chip_ctx.sram_write ctx ~bytes:(4 * cm.Cost_model.dequeue_sram_writes);
  Chip_ctx.scratch_write ctx ~bytes:(4 * cm.Cost_model.dequeue_scratch_writes);
  match Ixp.Buffer_pool.get chip.Ixp.Chip.buffers desc.Desc.buf with
  | frame ->
      infl.active <- true;
      infl.desc <- desc;
      infl.frame <- frame;
      infl.total <- Packet.Mp.count (Packet.Frame.len frame);
      infl.next <- 0;
      infl.charged <- false;
      true
  | exception Ixp.Buffer_pool.Stale ->
      Sim.Stats.Counter.incr stats.stale_bufs;
      (match t.scope with
      | None -> ()
      | Some scope ->
          Telemetry.Scope.event scope "stale buffer: circular pool lapped");
      Desc.release desc;
      false

(* One MP's transmission is split around the wire-pacing check: the data
   movement (DRAM buffer to output FIFO, then slot enable) is charged
   once and committed *before* the MAC is asked for a slot, so the frame
   hits the wire only after its bytes have really moved — and the pace
   retry loop never recharges. *)
let charge_mp t ctx inflight =
  if not inflight.charged then begin
    Chip_ctx.dram_read ctx ~bytes:Packet.Mp.size;
    Chip_ctx.exec ctx t.cm.Cost_model.output_mp_instr;
    inflight.charged <- true
  end;
  Chip_ctx.commit ctx

(* Finish the already-charged MP whose transmit slot is reserved.  On
   the frame's final MP the packet retires: the frame goes to the wire,
   the DRAM buffer is returned, and the descriptor is recycled — the
   slot deactivates ([active] drops) for the next dequeue. *)
let finish_mp t chip stats infl ~port =
  let last = infl.next = infl.total - 1 in
  infl.next <- infl.next + 1;
  infl.charged <- false;
  Sim.Stats.Counter.incr stats.mps_out;
  if last then begin
    (match port with
    | Some p ->
        Ixp.Mac_port.transmit_frame p infl.frame
          ~len:(Packet.Frame.len infl.frame)
    | None -> ());
    infl.active <- false;
    (* Return the DRAM buffer (a no-op for the circular pool). *)
    Ixp.Buffer_pool.free chip.Ixp.Chip.buffers infl.desc.Desc.buf;
    Sim.Stats.Counter.incr stats.pkts_out;
    (match t.on_tx with
    | Some f -> f infl.desc infl.frame
    | None -> ());
    Desc.release infl.desc
  end

(* Batched transmit loop.  One token acquisition (the serialized FIFO
   slot-activation section) covers a whole burst of MPs — gated by
   [output_serial_per_burst]; off forces burst size 1, the classic
   one-MP-per-rotation Figure 6 loop.  Wire pacing uses the MAC's exact
   slot-free time ([tx_try_pace_i]) instead of exponential polling, and
   an idle context parks on its queues' push waiters instead of
   spinning. *)
let spawn_context ?(burst_mps = 16) t chip ~ring ~slot ~ctx_id ~stats =
  let open Ixp in
  let ctx = Chip_ctx.make chip ~ctx_id in
  let cm = t.cm in
  Chip_ctx.set_defer ctx cm.Cost_model.charge_per_batch;
  let burst_mps =
    if cm.Cost_model.output_serial_per_burst then max 1 burst_mps else 1
  in
  Sim.Token_ring.join ring slot;
  let batch = ref 0 in
  let name = Printf.sprintf "output.ctx%d" ctx_id in
  let serial_section () =
    (* The previous burst's tail charges ride in [pending] into this
       burst and are paid at the next MP's pre-pace commit; the token
       hold is unaffected (the serial charge is horizon-light and the
       release precedes any commit). *)
    ignore (Sim.Token_ring.acquire ring slot);
    Chip_ctx.exec_wait_serial ctx ~instr:cm.Cost_model.output_serial_instr
      ~wait:cm.Cost_model.output_serial_wait;
    (* Under per-batch charging the slot-activation time rides in
       [pending] until the MP's pre-pace commit; classic mode has
       already waited, so the token hold covers the full section. *)
    Sim.Token_ring.release ring slot
  in
  (* Queue parking shared by both loop shapes.  Each owned queue gets at
     most one registered wrapper at a time ([registered] tracks which);
     wrappers route through [waker] so the engine's one-shot waker fires
     exactly once however many queues push in the same instant, and a
     wrapper left behind on queue B after a wake via queue A is a
     harmless no-op that also clears B's registration.  Parking is the
     idle path, so the suspend closure cost is irrelevant — but the
     registration function is still built once, not per park. *)
  let nq = Array.length t.queues in
  let registered = Array.make nq false in
  let waker = ref (fun () -> ()) in
  let wrappers =
    Array.init nq (fun i () ->
        registered.(i) <- false;
        let w = !waker in
        waker := (fun () -> ());
        w ())
  in
  let park_register w =
    waker := w;
    for i = 0 to nq - 1 do
      if not registered.(i) then begin
        registered.(i) <- true;
        Squeue.add_waiter t.queues.(i) wrappers.(i)
      end
    done;
    (* Work may have arrived between the caller's empty check and
       this registration (memory charges suspend); never sleep past
       it. *)
    let any = ref false in
    for i = 0 to nq - 1 do
      if not (Squeue.is_empty t.queues.(i)) then any := true
    done;
    if !any then begin
      let w' = !waker in
      waker := (fun () -> ());
      w' ()
    end
  in
  (* Reusable park cell: the registration closure wraps [park_register]
     with the cell's permanent waker once, so an idle-park/wake cycle
     costs only the suspension (the suspend-based form built a fired
     ref, a waker, and a handler closure per park). *)
  let park_cell = Sim.Engine.make_cell chip.Chip.engine in
  let park_waker = Sim.Engine.cell_waker park_cell in
  Sim.Engine.on_park park_cell (fun () -> park_register park_waker);
  let park () =
    Chip_ctx.commit ctx;
    Sim.Engine.park park_cell
  in
  let single_queue_loop () =
    let q = t.queues.(0) in
    let infl = idle_slot () in
    let frames = ref 0 in
    let mps = ref 0 in
    (* Select + dequeue: true when [infl] holds a packet.  The length
       check sits between the scratch-read charge (which may suspend and
       let a sibling context drain the queue) and the option-free pop —
       nothing can intervene between the two. *)
    let rec next_packet () =
      let got =
        match t.discipline with
        | O1_batch ->
            if !batch > 0 then begin
              if Squeue.length q > 0 then begin
                decr batch;
                true
              end
              else begin
                batch := 0;
                false
              end
            end
            else begin
              Chip_ctx.scratch_read ctx ~bytes:4;
              let ready = Squeue.length q in
              if ready = 0 then false
              else begin
                batch := ready - 1;
                true
              end
            end
        | O2_single | O3_multi ->
            Chip_ctx.scratch_read ctx ~bytes:4;
            Squeue.length q > 0
      in
      got
      && begin
           let desc = Squeue.pop_nonempty q in
           take_packet t ctx chip stats desc infl
           || next_packet () (* stale buffer: try the next *)
         end
    in
    let rec activation () =
      serial_section ();
      if infl.active || next_packet () then begin
        let engine = Sim.Engine.self_engine () in
        let span = Sim.Engine.batch_begin engine in
        frames := 0;
        mps := 0;
        let rec step () =
          if !mps >= burst_mps then
            Sim.Engine.batch_end engine span ~frames:!frames
          else if not infl.active then begin
            if next_packet () then step ()
            else Sim.Engine.batch_end engine span ~frames:!frames
          end
          else advance ()
        and advance () =
          if infl.next >= infl.total then begin
            (* Zero-MP frame (never on real traffic): just retire it. *)
            infl.active <- false;
            incr frames;
            step ()
          end
          else begin
            charge_mp t ctx infl;
            let port = t.port_for infl.desc in
            let wait =
              match port with
              | None -> -1
              | Some p ->
                  Mac_port.tx_try_pace_i p ~last:(infl.next = infl.total - 1)
            in
            if wait < 0 then begin
              let done_ = infl.next = infl.total - 1 in
              finish_mp t chip stats infl ~port;
              incr mps;
              if done_ then incr frames;
              step ()
            end
            else begin
              (* Sleep exactly until the wire frees the slot. *)
              Sim.Engine.wait_i wait;
              advance ()
            end
          end
        in
        step ();
        activation ()
      end
      else begin
        park ();
        activation ()
      end
    in
    activation ()
  in
  let multi_queue_loop () =
    let n = Array.length t.queues in
    let currents = Array.init n (fun _ -> idle_slot ()) in
    let frames = ref 0 in
    let mps = ref 0 in
    let soonest = ref max_int in
    let rec activation () =
      serial_section ();
      let engine = Sim.Engine.self_engine () in
      let span = Sim.Engine.batch_begin engine in
      frames := 0;
      mps := 0;
      let close () = Sim.Engine.batch_end engine span ~frames:!frames in
      (* Advance the highest-priority in-flight packet whose wire has
         room.  Int-coded result: -2 = sent an MP, -1 = nothing in
         flight, otherwise the soonest ps until a blocked wire frees. *)
      let try_advance () =
        soonest := max_int;
        let rec go i =
          if i >= n then if !soonest = max_int then -1 else !soonest
          else begin
            let infl = currents.(i) in
            if not infl.active then go (i + 1)
            else begin
              charge_mp t ctx infl;
              let port = t.port_for infl.desc in
              let wait =
                match port with
                | None -> -1
                | Some p ->
                    Mac_port.tx_try_pace_i p ~last:(infl.next = infl.total - 1)
              in
              if wait < 0 then begin
                let done_ = infl.next = infl.total - 1 in
                finish_mp t chip stats infl ~port;
                incr mps;
                if done_ then incr frames;
                -2
              end
              else begin
                if wait < !soonest then soonest := wait;
                go (i + 1)
              end
            end
          end
        in
        go 0
      in
      (* Start a packet on an idle slot: one readiness bit-array read
         summarizes every queue (section 3.4.3), then the chosen queue
         pays its own head read. *)
      let try_start () =
        Chip_ctx.scratch_read ctx ~bytes:(4 * cm.Cost_model.o3_scratch_reads);
        Chip_ctx.exec ctx cm.Cost_model.o3_select_instr;
        let rec scan i =
          if i >= n then false
          else if currents.(i).active || Squeue.is_empty t.queues.(i) then
            scan (i + 1)
          else begin
            Chip_ctx.scratch_read ctx ~bytes:4;
            if Squeue.length t.queues.(i) > 0 then begin
              let desc = Squeue.pop_nonempty t.queues.(i) in
              ignore (take_packet t ctx chip stats desc currents.(i) : bool);
              true
            end
            else scan (i + 1)
          end
        in
        scan 0
      in
      let rec step () =
        if !mps >= burst_mps then close ()
        else begin
          let r = try_advance () in
          if r = -2 then step ()
          else if r = -1 then begin
            if try_start () then step () else close ()
          end
          else if try_start () then step ()
          else begin
            Sim.Engine.wait_i r;
            step ()
          end
        end
      in
      step ();
      let any_inflight = ref false in
      for i = 0 to n - 1 do
        if currents.(i).active then any_inflight := true
      done;
      let any_queued =
        Array.exists (fun q -> not (Squeue.is_empty q)) t.queues
      in
      if (not !any_inflight) && not any_queued then park ();
      activation ()
    in
    activation ()
  in
  Sim.Engine.spawn chip.Chip.engine name (fun () ->
      match t.discipline with
      | O1_batch | O2_single -> single_queue_loop ()
      | O3_multi -> multi_queue_loop ())
