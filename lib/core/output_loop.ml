type discipline = O1_batch | O2_single | O3_multi

type stats = {
  mps_out : Sim.Stats.Counter.t;
  pkts_out : Sim.Stats.Counter.t;
  stale_bufs : Sim.Stats.Counter.t;
}

let make_stats () =
  let c = Sim.Stats.Counter.create in
  {
    mps_out = c "output.mps";
    pkts_out = c "output.pkts";
    stale_bufs = c "output.stale_buffers";
  }

let register_stats scope stats =
  let r = Telemetry.Scope.register_counter scope in
  r ~name:"mps_out" stats.mps_out;
  r ~name:"pkts_out" stats.pkts_out;
  r ~name:"stale_buffers" stats.stale_bufs

type t = {
  cm : Cost_model.t;
  discipline : discipline;
  queues : Squeue.t array;
  port_for : Desc.t -> Ixp.Mac_port.t option;
  on_tx : (Desc.t -> Packet.Frame.t -> unit) option;
  idle_backoff_cycles : int;
  scope : Telemetry.Scope.t option;
}

(* The frame sits assembled in its DRAM buffer the whole time it is in
   flight; transmission walks an MP *cursor* over it rather than
   materializing an MP list (the split/join pair allocated a full copy of
   every forwarded packet). *)
type in_flight = {
  desc : Desc.t;
  frame : Packet.Frame.t;
  total : int; (* MPs in the frame *)
  mutable next : int; (* next MP index to transmit *)
  mutable charged : bool; (* current MP's data movement already paid *)
}

(* Dequeue bookkeeping shared by every discipline: select_queue charges are
   paid by the caller; this pays the tail-pointer update and reads the
   packet out of its DRAM buffer. *)
let take_packet t ctx chip stats desc =
  let cm = t.cm in
  Chip_ctx.exec ctx cm.Cost_model.output_pkt_instr;
  Chip_ctx.sram_write ctx ~bytes:(4 * cm.Cost_model.dequeue_sram_writes);
  Chip_ctx.scratch_write ctx ~bytes:(4 * cm.Cost_model.dequeue_scratch_writes);
  match Ixp.Buffer_pool.read chip.Ixp.Chip.buffers desc.Desc.buf with
  | None ->
      (* The circular allocator lapped this packet. *)
      Sim.Stats.Counter.incr stats.stale_bufs;
      (match t.scope with
      | None -> ()
      | Some scope ->
          Telemetry.Scope.event scope "stale buffer: circular pool lapped");
      None
  | Some frame ->
      Some
        {
          desc;
          frame;
          total = Packet.Mp.count (Packet.Frame.len frame);
          next = 0;
          charged = false;
        }

(* One MP's transmission is split around the wire-pacing check: the data
   movement (DRAM buffer to output FIFO, then slot enable) is charged
   once and committed *before* the MAC is asked for a slot, so the frame
   hits the wire only after its bytes have really moved — and the pace
   retry loop never recharges. *)
let charge_mp t ctx inflight =
  if not inflight.charged then begin
    Chip_ctx.dram_read ctx ~bytes:Packet.Mp.size;
    Chip_ctx.exec ctx t.cm.Cost_model.output_mp_instr;
    inflight.charged <- true
  end;
  Chip_ctx.commit ctx

(* Finish the already-charged MP whose transmit slot is reserved,
   completing the frame on its last MP. *)
let finish_mp t chip stats inflight ~port ~on_done =
  let last = inflight.next = inflight.total - 1 in
  inflight.next <- inflight.next + 1;
  inflight.charged <- false;
  Sim.Stats.Counter.incr stats.mps_out;
  if last then begin
    (match port with
    | Some p ->
        Ixp.Mac_port.transmit_frame p inflight.frame
          ~len:(Packet.Frame.len inflight.frame)
    | None -> ());
    on_done ();
    (* Return the DRAM buffer (a no-op for the circular pool). *)
    Ixp.Buffer_pool.free chip.Ixp.Chip.buffers inflight.desc.Desc.buf;
    Sim.Stats.Counter.incr stats.pkts_out;
    match t.on_tx with
    | Some f -> f inflight.desc inflight.frame
    | None -> ()
  end

(* Batched transmit loop.  One token acquisition (the serialized FIFO
   slot-activation section) covers a whole burst of MPs — gated by
   [output_serial_per_burst]; off forces burst size 1, the classic
   one-MP-per-rotation Figure 6 loop.  Wire pacing uses the MAC's exact
   slot-free time ([tx_try_pace]'s [`Wait d]) instead of exponential
   polling, and an idle context parks on its queues' push waiters
   instead of spinning. *)
let spawn_context ?(burst_mps = 16) t chip ~ring ~slot ~ctx_id ~stats =
  let open Ixp in
  let ctx = Chip_ctx.make chip ~ctx_id in
  let cm = t.cm in
  Chip_ctx.set_defer ctx cm.Cost_model.charge_per_batch;
  let burst_mps =
    if cm.Cost_model.output_serial_per_burst then max 1 burst_mps else 1
  in
  Sim.Token_ring.join ring slot;
  let batch = ref 0 in
  let name = Printf.sprintf "output.ctx%d" ctx_id in
  let serial_section () =
    (* The previous burst's tail charges ride in [pending] into this
       burst and are paid at the next MP's pre-pace commit; the token
       hold is unaffected (the serial charge is horizon-light and the
       release precedes any commit). *)
    ignore (Sim.Token_ring.acquire ring slot);
    Chip_ctx.exec_wait_serial ctx ~instr:cm.Cost_model.output_serial_instr
      ~wait:cm.Cost_model.output_serial_wait;
    (* Under per-batch charging the slot-activation time rides in
       [pending] until the MP's pre-pace commit; classic mode has
       already waited, so the token hold covers the full section. *)
    Sim.Token_ring.release ring slot
  in
  (* Queue parking shared by both loop shapes.  Each owned queue gets at
     most one registered wrapper at a time ([registered] tracks which);
     wrappers route through [waker] so the engine's one-shot waker fires
     exactly once however many queues push in the same instant, and a
     wrapper left behind on queue B after a wake via queue A is a
     harmless no-op that also clears B's registration. *)
  let nq = Array.length t.queues in
  let registered = Array.make nq false in
  let waker = ref (fun () -> ()) in
  let wrappers =
    Array.init nq (fun i () ->
        registered.(i) <- false;
        let w = !waker in
        waker := (fun () -> ());
        w ())
  in
  let park () =
    Chip_ctx.commit ctx;
    Sim.Engine.suspend (fun w ->
        waker := w;
        for i = 0 to nq - 1 do
          if not registered.(i) then begin
            registered.(i) <- true;
            Squeue.add_waiter t.queues.(i) wrappers.(i)
          end
        done;
        (* Work may have arrived between the caller's empty check and
           this registration (memory charges suspend); never sleep past
           it. *)
        let any = ref false in
        for i = 0 to nq - 1 do
          if not (Squeue.is_empty t.queues.(i)) then any := true
        done;
        if !any then begin
          let w' = !waker in
          waker := (fun () -> ());
          w' ()
        end)
  in
  let single_queue_loop () =
    let q = t.queues.(0) in
    let select () =
      match t.discipline with
      | O1_batch ->
          if !batch > 0 then begin
            match Squeue.pop q with
            | Some d ->
                decr batch;
                Some d
            | None ->
                batch := 0;
                None
          end
          else begin
            Chip_ctx.scratch_read ctx ~bytes:4;
            let ready = Squeue.length q in
            if ready = 0 then None
            else begin
              batch := ready - 1;
              Squeue.pop q
            end
          end
      | O2_single | O3_multi ->
          Chip_ctx.scratch_read ctx ~bytes:4;
          Squeue.pop q
    in
    let current = ref None in
    let rec next_packet () =
      match select () with
      | None -> false
      | Some desc -> (
          match take_packet t ctx chip stats desc with
          | Some inflight ->
              current := Some inflight;
              true
          | None -> next_packet () (* stale buffer: try the next *))
    in
    let rec activation () =
      serial_section ();
      if !current <> None || next_packet () then begin
        let engine = Sim.Engine.self_engine () in
        let span = Sim.Engine.batch_begin engine in
        let frames = ref 0 in
        let mps = ref 0 in
        let rec step () =
          if !mps >= burst_mps then
            Sim.Engine.batch_end engine span ~frames:!frames
          else
            match !current with
            | None ->
                if next_packet () then step ()
                else Sim.Engine.batch_end engine span ~frames:!frames
            | Some inflight -> advance inflight
        and advance inflight =
          if inflight.next >= inflight.total then begin
            (* Zero-MP frame (never on real traffic): just retire it. *)
            current := None;
            incr frames;
            step ()
          end
          else begin
            charge_mp t ctx inflight;
            let port = t.port_for inflight.desc in
            let pace =
              match port with
              | None -> `Ok
              | Some p ->
                  let last = inflight.next = inflight.total - 1 in
                  Mac_port.tx_try_pace p
                    ~tag:(if last then Packet.Mp.Last else Packet.Mp.First)
            in
            match pace with
            | `Ok ->
                let done_ = inflight.next = inflight.total - 1 in
                finish_mp t chip stats inflight ~port ~on_done:(fun () ->
                    current := None);
                incr mps;
                if done_ then incr frames;
                step ()
            | `Wait d ->
                (* Sleep exactly until the wire frees the slot. *)
                Sim.Engine.wait_i (Int64.to_int d);
                advance inflight
          end
        in
        step ();
        activation ()
      end
      else begin
        park ();
        activation ()
      end
    in
    activation ()
  in
  let multi_queue_loop () =
    let n = Array.length t.queues in
    let currents = Array.make n None in
    let engine_of () = Sim.Engine.self_engine () in
    let rec activation () =
      serial_section ();
      let engine = engine_of () in
      let span = Sim.Engine.batch_begin engine in
      let frames = ref 0 in
      let mps = ref 0 in
      let close () = Sim.Engine.batch_end engine span ~frames:!frames in
      (* Advance the highest-priority in-flight packet whose wire has
         room; [`Wait] is the soonest any blocked wire frees. *)
      let try_advance () =
        let soonest = ref Int64.max_int in
        let rec go i =
          if i >= n then if !soonest = Int64.max_int then `Idle else `Wait !soonest
          else
            match currents.(i) with
            | None -> go (i + 1)
            | Some inflight -> (
                charge_mp t ctx inflight;
                let port = t.port_for inflight.desc in
                let pace =
                  match port with
                  | None -> `Ok
                  | Some p ->
                      let last = inflight.next = inflight.total - 1 in
                      Mac_port.tx_try_pace p
                        ~tag:(if last then Packet.Mp.Last else Packet.Mp.First)
                in
                match pace with
                | `Ok ->
                    let done_ = inflight.next = inflight.total - 1 in
                    finish_mp t chip stats inflight ~port
                      ~on_done:(fun () -> currents.(i) <- None);
                    incr mps;
                    if done_ then incr frames;
                    `Sent
                | `Wait d ->
                    if d < !soonest then soonest := d;
                    go (i + 1))
        in
        go 0
      in
      (* Start a packet on an idle slot: one readiness bit-array read
         summarizes every queue (section 3.4.3), then the chosen queue
         pays its own head read. *)
      let try_start () =
        Chip_ctx.scratch_read ctx ~bytes:(4 * cm.Cost_model.o3_scratch_reads);
        Chip_ctx.exec ctx cm.Cost_model.o3_select_instr;
        let rec scan i =
          if i >= n then None
          else if currents.(i) <> None || Squeue.is_empty t.queues.(i) then
            scan (i + 1)
          else begin
            Chip_ctx.scratch_read ctx ~bytes:4;
            match Squeue.pop t.queues.(i) with
            | None -> scan (i + 1)
            | Some desc -> Some (i, desc)
          end
        in
        match scan 0 with
        | Some (i, desc) ->
            (match take_packet t ctx chip stats desc with
            | None -> ()
            | Some inflight -> currents.(i) <- Some inflight);
            true
        | None -> false
      in
      let rec step () =
        if !mps >= burst_mps then close ()
        else
          match try_advance () with
          | `Sent -> step ()
          | `Idle -> if try_start () then step () else close ()
          | `Wait d ->
              if try_start () then step ()
              else begin
                Sim.Engine.wait_i (Int64.to_int d);
                step ()
              end
      in
      step ();
      let any_inflight = Array.exists (fun c -> c <> None) currents in
      let any_queued =
        Array.exists (fun q -> not (Squeue.is_empty q)) t.queues
      in
      if (not any_inflight) && not any_queued then park ();
      activation ()
    in
    activation ()
  in
  Sim.Engine.spawn chip.Chip.engine name (fun () ->
      match t.discipline with
      | O1_batch | O2_single -> single_queue_loop ()
      | O3_multi -> multi_queue_loop ())
