(** The output processing loop (paper Figure 6, sections 3.3-3.4.3).

    Each output context owns a statically-assigned set of queues and FIFO
    slots.  Per iteration it takes the output token (the FIFO slots are
    consumed strictly in order by the transmit DMA, so contexts must
    serialize their slot activations), then either continues streaming the
    MPs of the current packet (DRAM to FIFO, slot enable) or selects the
    next packet from its queues.

    Disciplines (Table 1):
    - [O1_batch]: one queue; the head pointer is read once and every ready
      packet is drained before re-reading (section 3.4.3's batching).
    - [O2_single]: one queue; head pointer read per packet.
    - [O3_multi]: multiple prioritized queues behind a readiness bit-array
      (section 3.4.3's indirection). *)

type discipline = O1_batch | O2_single | O3_multi

type stats = {
  mps_out : Sim.Stats.Counter.t;
  pkts_out : Sim.Stats.Counter.t;
  stale_bufs : Sim.Stats.Counter.t;
      (** packets lost to circular-buffer reuse (section 3.2.3) *)
}

val make_stats : unit -> stats

val register_stats : Telemetry.Scope.t -> stats -> unit
(** Register every stage counter under a telemetry scope (typically
    ["output"]). *)

type t = {
  cm : Cost_model.t;
  discipline : discipline;
  queues : Squeue.t array;  (** this context's queues, priority order *)
  port_for : Desc.t -> Ixp.Mac_port.t option;
      (** transmit target per packet (a context may service several
          ports' queues); [None] omits device interaction (the peak-rate
          experiments of section 3.5.1) *)
  on_tx : (Desc.t -> Packet.Frame.t -> unit) option;
      (** observer invoked as each packet completes transmission *)
  idle_backoff_cycles : int;
  scope : Telemetry.Scope.t option;
      (** telemetry scope receiving one event per stale buffer; [None]
          records nothing *)
}

val spawn_context :
  ?burst_mps:int ->
  t ->
  Ixp.Chip.t ->
  ring:Sim.Token_ring.t ->
  slot:int ->
  ctx_id:int ->
  stats:stats ->
  unit
(** Start one output context as a fiber.  [burst_mps] (default 16)
    bounds how many MPs one token acquisition may stream to the wire;
    forced to 1 when [output_serial_per_burst = false], which reproduces
    the classic one-MP-per-rotation Figure 6 loop exactly.  Idle
    contexts park on their queues' push waiters; wire pacing sleeps for
    the MAC's exact slot-free time. *)
