type stats = {
  processed : Sim.Stats.Counter.t;
  dropped : Sim.Stats.Counter.t;
}

type t = {
  cm : Cost_model.t;
  chip : Ixp.Chip.t;
  clock : Sim.Engine.Clock.clock;
  from_sa : Strongarm.payload Ixp.I2o.t;
  returns : Desc.t Sim.Mailbox.t;
  lookup_fid : int -> Classifier.entry option;
  sched : Strongarm.payload Psched.t;
  clients : (int, Strongarm.payload Psched.client) Hashtbl.t;
  default_client : Strongarm.payload Psched.client;
  stats : stats;
  mutable busy_ps : int64;
  mutable faults : Fault.Injector.t option;
  mutable crashes : int;
}

let create chip cm ~from_sa ~returns ~lookup_fid () =
  let sched = Psched.create () in
  {
    cm;
    chip;
    clock = chip.Ixp.Chip.pentium_clock;
    from_sa;
    returns;
    lookup_fid;
    sched;
    clients = Hashtbl.create 16;
    default_client = Psched.add_client sched ~name:"best-effort" ~share:1.0;
    stats =
      {
        processed = Sim.Stats.Counter.create "pe.processed";
        dropped = Sim.Stats.Counter.create "pe.dropped";
      };
    busy_ps = 0L;
    faults = None;
    crashes = 0;
  }

let set_faults t inj = t.faults <- Some inj
let crashes t = t.crashes

let add_flow_client t ~fid ~name ~share =
  Hashtbl.replace t.clients fid (Psched.add_client t.sched ~name ~share)

let remove_flow_client t ~fid =
  match Hashtbl.find_opt t.clients fid with
  | None -> ()
  | Some c ->
      Psched.remove_client t.sched c;
      Hashtbl.remove t.clients fid

let client_for t fid =
  match Hashtbl.find_opt t.clients fid with
  | Some c -> c
  | None -> t.default_client

let busy t f =
  let t0 = Sim.Engine.now () in
  let r = f () in
  t.busy_ps <- Int64.add t.busy_ps (Int64.sub (Sim.Engine.now ()) t0);
  r

let exec t n = Sim.Engine.Clock.wait_cycles t.clock n

let process t (p : Strongarm.payload) =
  busy t (fun () ->
      exec t t.cm.Cost_model.pe_loop_instr;
      (* Touch the payload beyond the 64-byte head + 8-byte routing header
         (read it, write it back): what makes big packets expensive on the
         host (Table 4).  The head itself is in cache from the queue
         manipulation. *)
      let touch =
        int_of_float
          (Float.round
             (t.cm.Cost_model.pe_touch_cycles_per_byte
             *. float_of_int (max 0 (p.bytes - 72))))
      in
      exec t touch;
      let fwd_cycles, verdict =
        match t.lookup_fid p.desc.Desc.fid with
        | Some e ->
            exec t e.Classifier.fwdr.Forwarder.host_cycles;
            ( e.Classifier.fwdr.Forwarder.host_cycles,
              e.Classifier.fwdr.Forwarder.action ~state:e.Classifier.state
                p.frame ~in_port:p.desc.Desc.in_port )
        | None -> (0, Forwarder.Forward_routed)
      in
      (match verdict with
      | Forwarder.Drop -> Sim.Stats.Counter.incr t.stats.dropped
      | Forwarder.Forward port ->
          p.desc.Desc.out_port <- port;
          Sim.Stats.Counter.incr t.stats.processed;
          (* DMA the packet back down; the descriptor lands in the
             StrongARM's return ring via a posted write. *)
          Ixp.Pci.dma_async t.chip.Ixp.Chip.pci ~bytes:p.bytes
            ~on_done:(fun () -> Sim.Mailbox.put t.returns p.desc);
          Ixp.Pci.pio_write t.chip.Ixp.Chip.pci ~clock:t.clock
      | Forwarder.Forward_routed | Forwarder.Continue ->
          Sim.Stats.Counter.incr t.stats.processed;
          Ixp.Pci.dma_async t.chip.Ixp.Chip.pci ~bytes:p.bytes
            ~on_done:(fun () -> Sim.Mailbox.put t.returns p.desc);
          Ixp.Pci.pio_write t.chip.Ixp.Chip.pci ~clock:t.clock
      | Forwarder.Divert _ ->
          (* Top of the hierarchy: nowhere further. *)
          Sim.Stats.Counter.incr t.stats.dropped);
      fwd_cycles + touch + t.cm.Cost_model.pe_loop_instr)

let spawn t chip =
  Sim.Engine.spawn chip.Ixp.Chip.engine "pentium" (fun () ->
      let ingest p =
        let c = client_for t p.Strongarm.desc.Desc.fid in
        Psched.enqueue t.sched c p
      in
      let pci = t.chip.Ixp.Chip.pci in
      let recv_overhead =
        Int64.add (Ixp.Pci.pio_read_ps pci) (Ixp.Pci.pio_write_ps pci)
      in
      (* Drain a bounded batch from the full queue so the
         proportional-share scheduler arbitrates over a real backlog (not
         the I2O FIFO's arrival order) while ingest can never livelock
         processing out. *)
      let rec drain k =
        if k > 0 then
          match
            busy t (fun () ->
                Ixp.I2o.try_recv t.from_sa ~consumer_clock:t.clock)
          with
          | Some p ->
              ingest p;
              drain (k - 1)
          | None -> ()
      in
      let rec loop () =
        (match t.faults with
        | Some inj when Fault.Injector.fires inj Pe_crash ->
            (* Host crash-and-restart: packets already in the I2O queues
               and scheduler backlog survive in memory; service just
               pauses for the reboot. *)
            t.crashes <- t.crashes + 1;
            Sim.Engine.wait
              (Sim.Engine.of_seconds
                 ((Fault.Injector.scenario inj).Fault.Scenario.pe_restart_us
                 *. 1e-6))
        | _ -> ());
        (if Psched.backlog t.sched = 0 then begin
           (* Idle: block on the full queue.  Only the PIO stalls count as
              busy time, not the wait for a packet to arrive. *)
           let p = Ixp.I2o.recv t.from_sa ~consumer_clock:t.clock in
           t.busy_ps <- Int64.add t.busy_ps recv_overhead;
           ingest p;
           drain 16
         end);
        (match Psched.next t.sched with
        | None -> ()
        | Some (c, p) ->
            let work = process t p in
            Psched.charge t.sched c (float_of_int work));
        loop ()
      in
      loop ())

let spawn_control t chip ~name ~period_us ~cycles f =
  Sim.Engine.spawn chip.Ixp.Chip.engine ("control." ^ name) (fun () ->
      let period = Sim.Engine.of_seconds (period_us *. 1e-6) in
      let rec tick () =
        Sim.Engine.wait period;
        busy t (fun () -> exec t cycles);
        if f () then tick ()
      in
      tick ())

let stats t = t.stats

let register_telemetry scope t =
  Telemetry.Scope.register_counter scope ~name:"processed" t.stats.processed;
  Telemetry.Scope.register_counter scope ~name:"dropped" t.stats.dropped;
  Telemetry.Scope.gauge_int scope "busy_ps" (fun () ->
      Int64.to_int t.busy_ps);
  Psched.register_telemetry (Telemetry.Scope.sub scope "sched") t.sched

let busy_cycles t = Sim.Engine.Clock.cycles_of_ps t.clock t.busy_ps

let spare_cycles_per_packet t =
  let n = Sim.Stats.Counter.value t.stats.processed in
  if n = 0 then 0.
  else begin
    let elapsed = Sim.Engine.time t.chip.Ixp.Chip.engine in
    let total_cycles = Sim.Engine.Clock.cycles_of_ps t.clock elapsed in
    let rate = float_of_int n in
    (total_cycles /. rate) -. (busy_cycles t /. rate)
  end

let served_by_fid t =
  Hashtbl.fold
    (fun fid c acc -> (fid, Psched.client_name c, Psched.served c) :: acc)
    t.clients
    [ (-1, "best-effort", Psched.served t.default_client) ]
