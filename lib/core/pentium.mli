(** The Pentium level (paper sections 3.7, 4.1, 4.6).

    The host processor pulls packets off the I2O full queue, dispatches
    them through the proportional-share scheduler to the owning flow's
    forwarder, and returns them to the IXP (DMA down, descriptor ring for
    the StrongARM).  It also hosts control forwarders — periodic closures
    that manage data forwarders through the {!Iface} operations. *)

type stats = {
  processed : Sim.Stats.Counter.t;
  dropped : Sim.Stats.Counter.t;
}

type t

val create :
  Ixp.Chip.t ->
  Cost_model.t ->
  from_sa:Strongarm.payload Ixp.I2o.t ->
  returns:Desc.t Sim.Mailbox.t ->
  lookup_fid:(int -> Classifier.entry option) ->
  unit ->
  t

val spawn : t -> Ixp.Chip.t -> unit
(** Start the Pentium's packet loop fiber. *)

val set_faults : t -> Fault.Injector.t -> unit
(** Enable crash-and-restart injection: with probability [pe_crash] per
    scheduler-loop iteration the host stalls for [pe_restart_us];
    queued packets survive in memory. *)

val crashes : t -> int
(** Injected crashes taken so far. *)

val add_flow_client : t -> fid:int -> name:string -> share:float -> unit
(** Register a proportional-share client for an installed Pentium
    forwarder (driven by {!Iface}). *)

val remove_flow_client : t -> fid:int -> unit

val spawn_control :
  t ->
  Ixp.Chip.t ->
  name:string ->
  period_us:float ->
  cycles:int ->
  (unit -> bool) ->
  unit
(** [spawn_control t chip ~name ~period_us ~cycles f] runs a control
    forwarder: every period, charge [cycles] and call [f]; stop when [f]
    returns false. *)

val stats : t -> stats

val register_telemetry : Telemetry.Scope.t -> t -> unit
(** Register the packet counters, busy-time gauge, and the
    proportional-share scheduler's per-client table (under a ["sched"]
    sub-scope) into a telemetry scope. *)

val busy_cycles : t -> float
(** Pentium cycles consumed by packet work (PIO stalls included) — the
    complement of Table 4's spare-cycle delay-loop measurement. *)

val spare_cycles_per_packet : t -> float
(** [capacity/rate - busy/packets] over the run so far; Table 4's "Pentium
    (Cycles)" column. *)

val served_by_fid : t -> (int * string * int) list
(** Per-client dispatch counts (robustness experiments). *)
