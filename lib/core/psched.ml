type 'a client = {
  name : string;
  share : float;
  mutable pass : float;
  mutable served : int;
  mutable work : float;
  queue : 'a Queue.t;
}

type 'a t = { mutable clients : 'a client list; mutable backlog : int }

let create () = { clients = []; backlog = 0 }

let add_client t ~name ~share =
  if share <= 0. then invalid_arg "Psched.add_client: share <= 0";
  (* A new client starts at the current minimum pass so it cannot claim a
     catch-up burst. *)
  let base =
    List.fold_left (fun acc c -> Float.min acc c.pass) infinity t.clients
  in
  let pass = if Float.is_finite base then base else 0. in
  let c = { name; share; pass; served = 0; work = 0.; queue = Queue.create () } in
  t.clients <- c :: t.clients;
  c

let remove_client t c =
  t.backlog <- t.backlog - Queue.length c.queue;
  t.clients <- List.filter (fun x -> x != c) t.clients

let enqueue t c v =
  Queue.push v c.queue;
  t.backlog <- t.backlog + 1

let next t =
  let best =
    List.fold_left
      (fun acc c ->
        if Queue.is_empty c.queue then acc
        else
          match acc with
          | Some b when b.pass <= c.pass -> acc
          | _ -> Some c)
      None t.clients
  in
  match best with
  | None -> None
  | Some c ->
      let v = Queue.pop c.queue in
      t.backlog <- t.backlog - 1;
      c.served <- c.served + 1;
      Some (c, v)

let charge t c work =
  ignore t;
  c.work <- c.work +. work;
  c.pass <- c.pass +. (work /. c.share)

let backlog t = t.backlog
let client_name c = c.name
let client_share c = c.share
let served c = c.served
let work_done c = c.work

let register_telemetry scope t =
  Telemetry.Scope.gauge_int scope "backlog" (fun () -> t.backlog);
  (* Clients come and go (flows install and uninstall), so the table is
     walked at snapshot time rather than registered per client. *)
  Telemetry.Scope.dynamic scope "clients" (fun () ->
      let open Telemetry.Json in
      let client c =
        Obj
          [
            ("name", String c.name);
            ("share", Float c.share);
            ("served", Int c.served);
            ("work", Float c.work);
            ("queued", Int (Queue.length c.queue));
          ]
      in
      List
        (List.map client
           (List.sort (fun a b -> compare a.name b.name) t.clients)))
