(** Proportional-share scheduling for the Pentium's cycles (paper section
    4.1: "we run a proportional share scheduler on the Pentium, where
    deciding what share to allocate to each flow is a policy issue", after
    Qie et al. [19]).

    Stride scheduling: each client holds a share; the client with the
    minimum virtual pass runs next and its pass advances by
    [work / share].  Deterministic, O(clients) per pick (client counts
    here are small), and starvation-free for any positive share. *)

type 'a t
(** A scheduler over clients queueing work items of type ['a]. *)

type 'a client

val create : unit -> 'a t

val add_client : 'a t -> name:string -> share:float -> 'a client
(** [add_client t ~name ~share] registers a client; [share > 0].  A new
    client starts at the scheduler's minimum pass, so it cannot claim a
    catch-up burst. *)

val remove_client : 'a t -> 'a client -> unit
(** Unregister; queued work is dropped. *)

val enqueue : 'a t -> 'a client -> 'a -> unit
(** Queue a work item for the client. *)

val next : 'a t -> ('a client * 'a) option
(** [next t] picks the backlogged client with minimum pass and dequeues its
    oldest item. *)

val charge : 'a t -> 'a client -> float -> unit
(** [charge t c work] advances [c]'s pass by [work / share] — call with the
    cycles the item actually consumed so heavy users fall behind. *)

val backlog : 'a t -> int
(** Total queued items. *)

val client_name : 'a client -> string
val client_share : 'a client -> float

val served : 'a client -> int
(** Items dispatched to this client so far. *)

val work_done : 'a client -> float
(** Total work charged to this client. *)

val register_telemetry : Telemetry.Scope.t -> 'a t -> unit
(** Register the backlog gauge and a snapshot-time per-client table
    (name, share, served, work, queued) under a telemetry scope. *)
