module Cost_model = Cost_model
module Vrp = Vrp
module Chip_ctx = Chip_ctx
module Desc = Desc
module Squeue = Squeue
module Forwarder = Forwarder
module Classifier = Classifier
module Input_loop = Input_loop
module Output_loop = Output_loop
module Fixed_infra = Fixed_infra
module Strongarm = Strongarm
module Pentium = Pentium
module Psched = Psched
module Admission = Admission
module Iface = Iface
module Capacity = Capacity
module Wfq = Wfq

type config = {
  hw : Ixp.Config.t;
  cm : Cost_model.t;
  n_ports : int;
  port_mbps : float;
  uplink_ports : int;
  uplink_mbps : float;
  n_input_contexts : int;
  n_output_contexts : int;
  full_classifier : bool;
  sa_wakeup : Strongarm.wakeup;
  sa_full_copy : bool;
  pe_flow_queues : int;
  pe_buffers : int;
  queue_capacity : int;
  route_engine : Iproute.Table.engine;
  divert_on_cache_miss : bool;
  selective_invalidation : bool;
  circular_buffers : bool;
  batch_mps : int;
  faults : Fault.Scenario.t;
}

let default_config =
  {
    hw = Ixp.Config.default;
    cm = Cost_model.default;
    n_ports = 8;
    port_mbps = 100.;
    uplink_ports = 0;
    uplink_mbps = 1000.;
    n_input_contexts = 16;
    n_output_contexts = 8;
    full_classifier = true;
    sa_wakeup = Strongarm.Polling;
    sa_full_copy = false;
    pe_flow_queues = 4;
    pe_buffers = 128;
    queue_capacity = 2048;
    route_engine = Iproute.Table.Cpe;
    divert_on_cache_miss = true;
    selective_invalidation = false;
    circular_buffers = true;
    batch_mps = 16;
    faults = Fault.Scenario.zero;
  }

type t = {
  config : config;
  engine : Sim.Engine.t;
  chip : Ixp.Chip.t;
  routes : Iproute.Table.t;
  classifier : Classifier.t;
  iface : Iface.t;
  sa : Strongarm.t;
  pe : Pentium.t;
  out_queues : Squeue.t array;
  istats : Input_loop.stats;
  ostats : Output_loop.stats;
  delivered : Sim.Stats.Counter.t array;
  latency : Sim.Stats.Histogram.t;
  telemetry : Telemetry.Registry.t;
  input_scope : Telemetry.Scope.t;
  output_scope : Telemetry.Scope.t;
  injector : Fault.Injector.t option;
  invariants : Fault.Invariant.t;
  invalid_escapes : int ref;
  vrp_detected : int ref;
  delivery_digests : string array option ref;
  mutable frame_pool : Packet.Frame_pool.t option;
  (* Preallocated input-loop targets for the per-packet fast path: the
     forwarding verdict for plain routed traffic is one of a small fixed
     set of [To_queue] records, so they are built once here instead of
     per packet.  [sa_targets] is indexed by [routed_out + 1] (the divert
     verdict varies only in which port the route named, -1 for none);
     entries beyond these shapes (installed forwarders, garbage ports)
     still allocate on their rare paths. *)
  port_targets : Input_loop.target array;
  sa_targets : Input_loop.target array;
  sa_ttl_target : Input_loop.target;
}

let mes_used ~n = (n + 3) / 4

let total_ports config = config.n_ports + config.uplink_ports

(* Would a downstream host accept this frame?  The no-invalid-escape
   invariant: damage injected at the MACs or FIFOs may drop packets, but a
   frame that leaves an output port must still be well-formed. *)
let frame_escapable f =
  Packet.Frame.len f >= 14
  &&
  let et = Packet.Ethernet.get_ethertype f in
  if et = Packet.Ethernet.ethertype_ipv4 then Packet.Ipv4.valid f
  else et = Packet.Mpls.ethertype

let create ?(config = default_config) ?(alloc_gauges = false) ?engine () =
  let engine =
    match engine with Some e -> e | None -> Sim.Engine.create ()
  in
  let n_all = total_ports config in
  let delivered =
    Array.init n_all (fun i ->
        Sim.Stats.Counter.create (Printf.sprintf "port%d.delivered" i))
  in
  let latency = Sim.Stats.Histogram.create "latency_ps" in
  (* Telemetry: every level registers its instruments once; the registry
     snapshots on demand (--metrics, robustness benches).  Created before
     the chip so the fault plane, when enabled, can register its scope. *)
  let telemetry = Telemetry.Registry.create () in
  Telemetry.Registry.set_clock telemetry (fun () -> Sim.Engine.time engine);
  (* The fault plane: nothing is built for the zero scenario, so the
     fault-free router is byte-identical to one compiled without this
     subsystem — same timing, same RNG draws, same telemetry snapshot. *)
  let injector =
    if Fault.Scenario.is_zero config.faults then None
    else
      Some
        (Fault.Injector.create
           ~scope:(Telemetry.Registry.scope telemetry "fault")
           config.faults)
  in
  let invalid_escapes = ref 0 in
  let vrp_detected = ref 0 in
  (* Per-port delivery-schedule digest, lazily enabled: each delivered
     frame folds (time ‖ bytes) into its port's chained MD5.  This is the
     equivalence gate's observable — batched and unbatched executions must
     produce identical digests on every port — and it costs nothing until
     {!enable_delivery_digest} arms it. *)
  let delivery_digests = ref None in
  let digest_note i f =
    match !delivery_digests with
    | None -> ()
    | Some d ->
        d.(i) <-
          Digest.string
            (d.(i)
            ^ Int64.to_string (Sim.Engine.time engine)
            ^ "|"
            ^ Bytes.sub_string f.Packet.Frame.data 0 (Packet.Frame.len f))
  in
  let deliver_to i =
    match injector with
    | None ->
        fun f ->
          digest_note i f;
          Sim.Stats.Counter.incr delivered.(i)
    | Some _ ->
        fun f ->
          if not (frame_escapable f) then incr invalid_escapes;
          digest_note i f;
          Sim.Stats.Counter.incr delivered.(i)
  in
  let ports =
    List.init n_all (fun i ->
        {
          Ixp.Chip.mbps =
            (if i < config.n_ports then config.port_mbps
             else config.uplink_mbps);
          sink = Some (deliver_to i);
        })
  in
  let chip =
    Ixp.Chip.create ~cfg:config.hw ~ports
      ~circular_buffers:config.circular_buffers engine
  in
  (* The built-in per-port sinks only fold the frame into the delivery
     digest and bump a counter — synchronous consumers that never retain
     the frame — so the MAC may lend the DRAM buffer instead of copying
     every delivered packet.  {!connect} installs a user sink through
     [set_sink], which restores per-frame copies. *)
  Array.iter
    (fun p -> Ixp.Mac_port.set_sink_borrows p true)
    chip.Ixp.Chip.ports;
  let routes =
    Iproute.Table.create ~engine:config.route_engine ~cache_slots:8192
      ~selective_invalidation:config.selective_invalidation ()
  in
  let classifier = Classifier.create config.cm ~routes in
  let n_in_me = mes_used ~n:config.n_input_contexts in
  let iface =
    Iface.create ~chip ~classifier ~input_mes:(List.init n_in_me Fun.id) ()
  in
  let out_queues =
    Array.init n_all (fun i ->
        Squeue.create
          ~name:(Printf.sprintf "port%d" i)
          ~capacity:config.queue_capacity ())
  in
  let out_enqueue ctx desc =
    if desc.Desc.out_port < 0 then false (* never routed: drop *)
    else begin
      let q = out_queues.(desc.Desc.out_port mod n_all) in
      Input_loop.enqueue_protected config.cm ctx q desc
    end
  in
  let lookup_fid fid = Iface.find iface fid in
  (* The router's own per-port addresses (10.254.<port>.1), used as the
     source of ICMP errors the slow path generates. *)
  let icmp_addr port =
    Int32.of_int ((10 lsl 24) lor (254 lsl 16) lor ((port land 0xFF) lsl 8) lor 1)
  in
  let sa =
    Strongarm.create chip config.cm ~wakeup:config.sa_wakeup
      ~pe_flow_queues:config.pe_flow_queues ~pe_buffers:config.pe_buffers
      ~full_copy:config.sa_full_copy ~icmp_addr ~lookup_fid ~routes
      ~out_enqueue ()
  in
  let pe =
    Pentium.create chip config.cm ~from_sa:sa.Strongarm.to_pe
      ~returns:sa.Strongarm.returns ~lookup_fid ()
  in
  (* Wire the Pentium's proportional-share client management into the
     control interface. *)
  Iface.set_pe_hooks iface
    ~add:(fun ~fid entry ->
      Pentium.add_flow_client pe ~fid
        ~name:entry.Classifier.fwdr.Forwarder.name ~share:1.0)
    ~remove:(fun ~fid -> Pentium.remove_flow_client pe ~fid);
  let istats = Input_loop.make_stats () in
  let ostats = Output_loop.make_stats () in
  (match injector with
  | None -> ()
  | Some inj ->
      Ixp.Chip.set_faults chip inj;
      Strongarm.set_faults sa inj;
      Pentium.set_faults pe inj);
  (* The invariant registry audits all three levels at simulation
     barriers; its telemetry scope exists only alongside an injector so
     zero-fault snapshots are unchanged. *)
  let invariants =
    Fault.Invariant.create
      ?scope:
        (match injector with
        | None -> None
        | Some _ -> Some (Telemetry.Registry.scope telemetry "invariant"))
      ~clock:(fun () -> Sim.Engine.time engine)
      ()
  in
  Fault.Invariant.register invariants "buffer-pool-conservation" (fun () ->
      Ixp.Buffer_pool.check chip.Ixp.Chip.buffers);
  Fault.Invariant.register invariants "queue-accounting" (fun () ->
      let first_bad acc q =
        match acc with Some _ -> acc | None -> Squeue.check q
      in
      match Array.fold_left first_bad None out_queues with
      | Some v -> Some v
      | None ->
          Array.fold_left first_bad
            (Squeue.check sa.Strongarm.local_q)
            sa.Strongarm.pe_qs);
  Fault.Invariant.register invariants "no-invalid-escape"
    (let seen = ref 0 in
     fun () ->
       let n = !invalid_escapes in
       if n > !seen then begin
         let fresh = n - !seen in
         seen := n;
         Some
           (Printf.sprintf "%d malformed frame(s) escaped an output port"
              fresh)
       end
       else None);
  Fault.Invariant.register invariants "input-accounting" (fun () ->
      let v = Sim.Stats.Counter.value in
      let arrived = v istats.Input_loop.pkts_in in
      let settled =
        v istats.Input_loop.enq_ok
        + v istats.Input_loop.enq_drop
        + v istats.Input_loop.drop_by_process
      in
      if settled > arrived then
        Some (Printf.sprintf "settled %d packets but only %d arrived" settled
                arrived)
      else if arrived - settled > config.n_input_contexts then
        Some
          (Printf.sprintf
             "%d packets in flight with only %d input contexts"
             (arrived - settled) config.n_input_contexts)
      else None);
  Fault.Invariant.register invariants "forwarding-progress"
    (let last_in = ref 0 and last_settled = ref 0 in
     fun () ->
       let v = Sim.Stats.Counter.value in
       let arrived = v istats.Input_loop.pkts_in in
       let settled =
         v istats.Input_loop.enq_ok
         + v istats.Input_loop.enq_drop
         + v istats.Input_loop.drop_by_process
       in
       let stalled =
         arrived - !last_in >= 200 && settled = !last_settled
       in
       last_in := arrived;
       let r =
         if stalled then
           Some
             (Printf.sprintf
                "input advanced to %d packets but none settled since the \
                 last barrier (%d)"
                arrived settled)
         else None
       in
       last_settled := settled;
       r);
  (match injector with
  | None -> ()
  | Some inj ->
      Fault.Invariant.register invariants "vrp-budget" (fun () ->
          let injected = Fault.Injector.count inj Vrp_overrun in
          if !vrp_detected <> injected then
            Some
              (Printf.sprintf
                 "admission control caught %d of %d injected budget \
                  overruns"
                 !vrp_detected injected)
          else None));
  Array.iteri
    (fun i me ->
      Ixp.Microengine.register_telemetry
        (Telemetry.Registry.scope telemetry "me"
           ~labels:[ ("id", string_of_int i) ])
        me)
    chip.Ixp.Chip.mes;
  Array.iter
    (fun q ->
      Squeue.register_telemetry
        (Telemetry.Registry.scope telemetry "queue"
           ~labels:[ ("name", Squeue.name q) ])
        q)
    out_queues;
  Array.iteri
    (fun i c ->
      Telemetry.Scope.register_counter
        (Telemetry.Registry.scope telemetry "port"
           ~labels:[ ("id", string_of_int i) ])
        ~name:"delivered" c)
    delivered;
  let input_scope = Telemetry.Registry.scope telemetry "input" in
  Input_loop.register_stats input_scope istats;
  let output_scope = Telemetry.Registry.scope telemetry "output" in
  Output_loop.register_stats output_scope ostats;
  Telemetry.Scope.register_histogram output_scope ~name:"latency_ps" latency;
  Strongarm.register_telemetry
    (Telemetry.Registry.scope telemetry "strongarm")
    sa;
  Pentium.register_telemetry
    (Telemetry.Registry.scope telemetry "pentium")
    pe;
  (* Scheduler-efficiency gauges: where this router's engine spends its
     event budget.  [events_scheduled + elided_waits] approximates the
     logical event count; [wheel_far_hits] counts pushes that overflowed
     the timing wheel's horizon into the heap tier. *)
  let sim_scope = Telemetry.Registry.scope telemetry "sim" in
  Telemetry.Scope.gauge_int sim_scope "events_scheduled" (fun () ->
      Sim.Engine.events_scheduled engine);
  Telemetry.Scope.gauge_int sim_scope "elided_waits" (fun () ->
      Sim.Engine.elided_waits engine);
  Telemetry.Scope.gauge_int sim_scope "wheel_far_hits" (fun () ->
      Sim.Engine.far_hits engine);
  (* Batch telemetry: [batched_activations] counts context activations
     that processed at least one frame inside a batch span,
     [batch_frames_total] the frames they covered (their ratio is
     frames/activation), and [absorbed_waits] the timer waits coalesced
     *inside* spans — disjoint from [elided_waits], which now counts only
     waits elided outside any span.  [events_scheduled + elided_waits +
     absorbed_waits] approximates the logical event count. *)
  Telemetry.Scope.gauge_int sim_scope "batched_activations" (fun () ->
      Sim.Engine.batched_activations engine);
  Telemetry.Scope.gauge_int sim_scope "batch_frames_total" (fun () ->
      Sim.Engine.batch_frames_total engine);
  Telemetry.Scope.gauge_int sim_scope "absorbed_waits" (fun () ->
      Sim.Engine.absorbed_waits engine);
  (* Allocation gauges: this domain's GC counters rebased at router
     creation.  Divide by output.pkts_out for words per forwarded packet
     (both gauges land in the same `router_cli run --metrics` snapshot,
     which passes [~alloc_gauges:true]); the steady-state budget
     itself is asserted by the `alloc` bench experiment and test_alloc,
     which rebase after a warm-up window.  Off by default: GC counters
     are host facts, not simulation facts — they vary with pool warm-up
     and domain placement, and would break the bit-identical snapshot
     digests the cluster replay/domain-equivalence gates rely on. *)
  if alloc_gauges then begin
    let gc = Sim.Gc_stats.create () in
    Telemetry.Scope.gauge_int sim_scope "gc_minor_words" (fun () ->
        int_of_float (Sim.Gc_stats.minor_words gc));
    Telemetry.Scope.gauge_int sim_scope "gc_promoted_words" (fun () ->
        int_of_float (Sim.Gc_stats.promoted_words gc));
    Telemetry.Scope.gauge_int sim_scope "gc_major_words" (fun () ->
        int_of_float (Sim.Gc_stats.major_words gc));
    Telemetry.Scope.gauge_int sim_scope "gc_minor_collections" (fun () ->
        Sim.Gc_stats.minor_collections gc);
    Telemetry.Scope.gauge_int sim_scope "gc_major_collections" (fun () ->
        Sim.Gc_stats.major_collections gc)
  end;
  Telemetry.Scope.dynamic sim_scope "delivery_digest" (fun () ->
      match !delivery_digests with
      | None -> Telemetry.Json.Null
      | Some d ->
          Telemetry.Json.String
            (Digest.to_hex (Digest.string (String.concat "|" (Array.to_list d)))));
  {
    config;
    engine;
    chip;
    routes;
    classifier;
    iface;
    sa;
    pe;
    out_queues;
    istats;
    ostats;
    delivered;
    latency;
    telemetry;
    input_scope;
    output_scope;
    injector;
    invariants;
    invalid_escapes;
    vrp_detected;
    delivery_digests;
    frame_pool = None;
    port_targets =
      Array.init n_all (fun p ->
          Input_loop.To_queue { qid = p; out_port = p; fid = -1 });
    sa_targets =
      Array.init (n_all + 1) (fun i ->
          Input_loop.To_queue { qid = n_all; out_port = i - 1; fid = -1 });
    sa_ttl_target =
      Input_loop.To_queue { qid = n_all; out_port = 0; fid = -1 };
  }

(* Attach a frame pool before {!start}: dropped and released frames flow
   back to it, and its conservation becomes a checked invariant. *)
let set_frame_pool t pool =
  t.frame_pool <- Some pool;
  Ixp.Buffer_pool.set_release t.chip.Ixp.Chip.buffers (fun f ->
      Packet.Frame_pool.give pool f);
  Fault.Invariant.register t.invariants "frame-pool-conservation" (fun () ->
      Packet.Frame_pool.check pool)

let qid_sa_local t = total_ports t.config

let qid_sa_pe t h =
  total_ports t.config + 1 + (abs h mod t.config.pe_flow_queues)

let add_route t prefix ~port =
  Iproute.Table.add t.routes prefix
    {
      Iproute.Table.out_port = port;
      gateway_mac = Packet.Ethernet.mac_of_port (100 + port);
    }

(* Finish a routed packet: the minimal IP tail — TTL decrement with
   incremental checksum (charged per Table 5's IP row), MAC rewrite, out
   the routed port. *)
let finish_ip t ctx frame nh =
  let cm = t.config.cm in
  Chip_ctx.exec ctx 32;
  Chip_ctx.sram_read ctx ~bytes:24;
  ignore cm;
  if not (Packet.Ipv4.decrement_ttl frame) then
    (* TTL expired: the slow path owns ICMP generation. *)
    t.sa_ttl_target
  else begin
    Packet.Ethernet.set_dst frame nh.Iproute.Table.gateway_mac;
    Packet.Ethernet.set_src frame
      (Packet.Ethernet.mac_of_port nh.Iproute.Table.out_port);
    let p = nh.Iproute.Table.out_port in
    let n_all = total_ports t.config in
    if p >= 0 && p < n_all then t.port_targets.(p)
    else Input_loop.To_queue { qid = p mod n_all; out_port = p; fid = -1 }
  end

(* Divert to the StrongARM with no installed forwarder (fid = -1): the
   preallocated verdict when the route's port is in range. *)
let divert_sa_fast t routed_out =
  if routed_out >= -1 && routed_out < total_ports t.config then
    t.sa_targets.(routed_out + 1)
  else
    Input_loop.To_queue { qid = qid_sa_local t; out_port = routed_out; fid = -1 }

(* The installed-forwarder chain: entries exist, so this packet is off
   the plain-forwarding fast path and per-verdict allocation is fine.
   [route] uses {!Iproute.Table.no_route} as its none sentinel. *)
let slow_chain t ctx frame ~in_port ~per_flow ~general ~route ~route_cache_hit
    ~routed_out =
  let no_route = route == Iproute.Table.no_route in
  let divert_sa fid =
    Input_loop.To_queue { qid = qid_sa_local t; out_port = routed_out; fid }
  in
  let divert_pe fid =
    let h =
      match Packet.Flow.of_frame frame with
      | Some k -> Hashtbl.hash k
      | None -> 0
    in
    Input_loop.To_queue { qid = qid_sa_pe t h; out_port = routed_out; fid }
  in
  let run_entry (e : Classifier.entry) k =
    match e.Classifier.where with
    | Desc.Strongarm -> divert_sa e.Classifier.fid
    | Desc.Pentium -> divert_pe e.Classifier.fid
    | Desc.Microengine -> (
        Vrp.execute
          ~op_overhead:
            ( t.config.cm.Cost_model.vrp_mem_op_instr,
              t.config.cm.Cost_model.vrp_mem_op_wait )
          ctx e.Classifier.fwdr.Forwarder.code;
        match
          e.Classifier.fwdr.Forwarder.action ~state:e.Classifier.state frame
            ~in_port
        with
        | Forwarder.Continue -> k ()
        | Forwarder.Drop -> Input_loop.Drop_it
        | Forwarder.Forward p ->
            (* A verdict naming a non-existent port is forwarder
               misbehavior (OCaml's [mod] is negative for negative
               [p], so indexing with it would crash the context);
               contain it as a drop. *)
            if p >= 0 && p < total_ports t.config then
              Input_loop.To_queue { qid = p; out_port = p; fid = -1 }
            else Input_loop.Drop_it
        | Forwarder.Forward_routed ->
            if no_route then divert_sa (-1) else finish_ip t ctx frame route
        | Forwarder.Divert Desc.Strongarm -> divert_sa e.Classifier.fid
        | Forwarder.Divert Desc.Pentium -> divert_pe e.Classifier.fid
        | Forwarder.Divert Desc.Microengine -> k ())
  in
  let rec chain = function
    | [] ->
        (* The built-in minimal IP tail.  Packets with options, no
           route, or a route-cache miss are exceptional: the StrongARM
           services them (section 3.2), warming the cache on the
           way. *)
        if Packet.Ipv4.has_options frame then divert_sa (-1)
        else if t.config.divert_on_cache_miss && not route_cache_hit then
          divert_sa (-1)
        else if no_route then divert_sa (-1)
        else finish_ip t ctx frame route
    | e :: rest -> run_entry e (fun () -> chain rest)
  in
  let entries = match per_flow with Some e -> e :: general | None -> general in
  chain entries

let default_process t ctx frame ~in_port =
  let c = t.classifier in
  let ok =
    if t.config.full_classifier then Classifier.classify_full_s c ctx frame
    else Classifier.classify_null_s c ctx frame
  in
  if not ok then Input_loop.Drop_it
  else begin
    (* Copy the classifier's scratch verdict out before any further
       hardware charge: a charge can suspend (classic mode) and let a
       sibling context re-classify over the same scratch. *)
    let per_flow = Classifier.scratch_per_flow c in
    let general = Classifier.scratch_general c in
    let route = Classifier.scratch_route c in
    let route_cache_hit = Classifier.scratch_route_cache_hit c in
    (* The routing decision travels up the hierarchy in the descriptor
       (the paper's 8-byte internal routing header), so higher levels
       need not re-classify; -1 marks "no route yet" and the StrongARM's
       slow path resolves it. *)
    let routed_out =
      if route == Iproute.Table.no_route then -1
      else route.Iproute.Table.out_port
    in
    match (per_flow, general) with
    | None, [] ->
        (* No installed forwarders: the minimal IP tail, allocation-free. *)
        if Packet.Ipv4.has_options frame then divert_sa_fast t routed_out
        else if t.config.divert_on_cache_miss && not route_cache_hit then
          divert_sa_fast t routed_out
        else if route == Iproute.Table.no_route then divert_sa_fast t routed_out
        else finish_ip t ctx frame route
    | _ ->
        slow_chain t ctx frame ~in_port ~per_flow ~general ~route
          ~route_cache_hit ~routed_out
  end

let start ?process t =
  let cfg = t.config in
  let cm = cfg.cm in
  let process =
    match process with Some p -> p t | None -> default_process t
  in
  let process =
    match t.injector with
    | None -> process
    | Some inj ->
        fun ctx frame ~in_port ->
          if Fault.Injector.fires inj Vrp_overrun then begin
            (* A forwarder blowing its cycle and SRAM budget.  Admission
               control must flag the same code it is about to run
               (detection counted before the charged execution, so a
               barrier landing mid-execution sees consistent counts). *)
            let code = [ Vrp.Instr 300; Vrp.Sram_read 128 ] in
            (match
               Vrp.check Vrp.prototype_budget (Vrp.static_cost code)
                 ~state_bytes:0 ~slots:(Vrp.istore_slots code)
             with
            | Error _ -> incr t.vrp_detected
            | Ok () -> ());
            Vrp.execute ctx code
          end;
          if Fault.Injector.fires inj Rogue_forwarder then
            (* A misbehaving forwarder's garbage verdict: a queue id and
               port drawn from well outside the valid range, possibly
               negative.  The static queue discipline must contain it. *)
            let p = Fault.Injector.draw_int inj 64 - 16 in
            Input_loop.To_queue { qid = p; out_port = p; fid = -1 }
          else process ctx frame ~in_port
  in
  (* Input contexts: two per port, maximally separated in the rotation
     (context i serves port i mod n_ports). *)
  let input_ring =
    Sim.Token_ring.create ~name:"input-token"
      ~pass_ps:
        (Sim.Engine.Clock.ps_of_cycles t.chip.Ixp.Chip.me_clock
           cfg.hw.Ixp.Config.token_pass_cycles)
      ~members:cfg.n_input_contexts ()
  in
  let n_in_me = mes_used ~n:cfg.n_input_contexts in
  let n_all = total_ports cfg in
  let n_pe_qs = Array.length t.sa.Strongarm.pe_qs in
  let queue_of ~ctx_id:_ qid =
    if qid >= 0 && qid < n_all then t.out_queues.(qid)
    else if qid > n_all && qid <= n_all + n_pe_qs then
      t.sa.Strongarm.pe_qs.(qid - n_all - 1)
    else
      (* [qid = n_all] plus anything out of range: a garbage queue id
         must not crash the context, and the slow path validates. *)
      t.sa.Strongarm.local_q
  in
  let notify qid = if qid < 0 || qid >= n_all then Strongarm.notify t.sa in
  let il =
    {
      Input_loop.cm;
      enq = Input_loop.enqueue_protected cm;
      process;
      process_rest_mp = (fun _ _ -> ());
      queue_of;
      notify = Some notify;
      idle_backoff_cycles = 128;
      scope = Some t.input_scope;
      recycle =
        (match t.frame_pool with
        | None -> None
        | Some p -> Some (fun f -> Packet.Frame_pool.give p f));
    }
  in
  (* Contexts per port in proportion to line rate (every port gets at
     least one when contexts suffice): the "budget RI capacity to service
     packets arriving on the internal link" of section 6.  Quotas are
     drained round-robin so the contexts sharing a port sit as far apart
     as possible in the token rotation (section 3.2.2). *)
  let port_mbps_of i = Ixp.Mac_port.mbps t.chip.Ixp.Chip.ports.(i) in
  let quotas =
    let total_mbps = ref 0. in
    for i = 0 to n_all - 1 do
      total_mbps := !total_mbps +. port_mbps_of i
    done;
    let q = Array.make n_all 1 in
    let assigned = ref (min n_all cfg.n_input_contexts) in
    (* Hand out the remaining contexts by largest fractional share. *)
    while !assigned < cfg.n_input_contexts do
      let best = ref 0 and best_gap = ref neg_infinity in
      for i = 0 to n_all - 1 do
        let want =
          float_of_int cfg.n_input_contexts *. port_mbps_of i /. !total_mbps
        in
        let gap = want -. float_of_int q.(i) in
        if gap > !best_gap then begin
          best := i;
          best_gap := gap
        end
      done;
      q.(!best) <- q.(!best) + 1;
      incr assigned
    done;
    q
  in
  let input_ports =
    (* Round-robin through ports, one context per pass while quota lasts. *)
    let remaining = Array.copy quotas in
    let order = ref [] in
    let left = ref (Array.fold_left ( + ) 0 remaining) in
    while !left > 0 do
      for i = 0 to n_all - 1 do
        if remaining.(i) > 0 then begin
          remaining.(i) <- remaining.(i) - 1;
          decr left;
          order := i :: !order
        end
      done
    done;
    Array.of_list (List.rev !order)
  in
  for i = 0 to cfg.n_input_contexts - 1 do
    let ctx_id = ((i mod n_in_me) * 4) + (i / n_in_me) in
    let port = t.chip.Ixp.Chip.ports.(input_ports.(i mod Array.length input_ports)) in
    Input_loop.spawn_context ~burst_mps:cfg.batch_mps il t.chip
      ~ring:input_ring ~slot:i ~ctx_id ~source:(Input_loop.Port port)
      ~stats:t.istats
  done;
  (* Output contexts: one per port when they suffice; otherwise a context
     services several ports' queues in priority order (the RI capacity the
     internal link consumes, section 6). *)
  let n_out = min cfg.n_output_contexts n_all in
  let output_ring =
    Sim.Token_ring.create ~name:"output-token"
      ~pass_ps:
        (Sim.Engine.Clock.ps_of_cycles t.chip.Ixp.Chip.me_clock
           cfg.hw.Ixp.Config.token_pass_cycles)
      ~members:n_out ()
  in
  (* Each transmit port's [Some] is built once: [port_for] runs per MP,
     and a fresh option per call was steady minor-heap traffic. *)
  let port_opts =
    Array.init n_all (fun i -> Some t.chip.Ixp.Chip.ports.(i))
  in
  (* Ports are packed onto output contexts greedily by line rate, so a
     fast uplink gets a context to itself while slow ports share. *)
  let out_assignment = Array.make n_out [] in
  (let load = Array.make n_out 0. in
   let ports_by_speed =
     List.sort
       (fun a b -> compare (port_mbps_of b) (port_mbps_of a))
       (List.init n_all Fun.id)
   in
   List.iter
     (fun p ->
       let best = ref 0 in
       for j = 1 to n_out - 1 do
         if load.(j) < load.(!best) then best := j
       done;
       load.(!best) <- load.(!best) +. port_mbps_of p;
       (* Reversed accumulation; re-reversed once at the use site. *)
       out_assignment.(!best) <- p :: out_assignment.(!best))
     ports_by_speed);
  for j = 0 to n_out - 1 do
    let n_out_me = mes_used ~n:n_out in
    let ctx_id = ((n_in_me + (j mod n_out_me)) * 4) + (j / n_out_me) in
    let my_ports = List.rev out_assignment.(j) in
    match my_ports with
    | [] -> ()
    | _ :: extra ->
        (* A context with several ports transmits each packet on its
           descriptor's port; queues are drained in priority order. *)
        let queues =
          Array.of_list (List.map (fun p -> t.out_queues.(p)) my_ports)
        in
        let multi = extra <> [] in
        let ol =
          {
            Output_loop.cm;
            discipline =
              (if multi then Output_loop.O3_multi else Output_loop.O1_batch);
            queues;
            port_for = (fun desc -> port_opts.(desc.Desc.out_port mod n_all));
            on_tx =
              Some
                (fun desc _ ->
                  Sim.Stats.Histogram.observe_i t.latency
                    (Sim.Engine.now_i () - desc.Desc.arrival));
            idle_backoff_cycles = 128;
            scope = Some t.output_scope;
          }
        in
        Output_loop.spawn_context ~burst_mps:cfg.batch_mps ol t.chip
          ~ring:output_ring ~slot:j ~ctx_id ~stats:t.ostats
  done;
  Strongarm.spawn t.sa t.chip;
  Pentium.spawn t.pe t.chip

let inject t ~port frame = Ixp.Mac_port.offer t.chip.Ixp.Chip.ports.(port) frame

let connect t ~port deliver =
  let counter = t.delivered.(port) in
  let audit =
    match t.injector with
    | None -> fun _ -> ()
    | Some _ ->
        fun f -> if not (frame_escapable f) then incr t.invalid_escapes
  in
  let engine = t.engine in
  Ixp.Mac_port.set_sink t.chip.Ixp.Chip.ports.(port) (fun f ->
      audit f;
      (match !(t.delivery_digests) with
      | None -> ()
      | Some d ->
          d.(port) <-
            Digest.string
              (d.(port)
              ^ Int64.to_string (Sim.Engine.time engine)
              ^ "|"
              ^ Bytes.sub_string f.Packet.Frame.data 0 (Packet.Frame.len f)));
      Sim.Stats.Counter.incr counter;
      deliver f)

(* The delivery-schedule digest: the relaxed equivalence gate.  PR 3's
   gate compared full event traces, which pinned the simulator to
   event-per-wait granularity; this PR's gate compares only what the
   outside world can see — the per-port sequence of (time, frame bytes)
   at delivery.  Executions that coalesce activations differently but
   transmit the same frames at the same times are equivalent. *)
let enable_delivery_digest t =
  match !(t.delivery_digests) with
  | Some _ -> ()
  | None ->
      t.delivery_digests :=
        Some (Array.make (total_ports t.config) (Digest.string ""))

let port_delivery_digests t =
  match !(t.delivery_digests) with
  | None -> invalid_arg "Router.port_delivery_digests: digest not enabled"
  | Some d -> Array.map Digest.to_hex d

let delivery_digest t =
  match !(t.delivery_digests) with
  | None -> invalid_arg "Router.delivery_digest: digest not enabled"
  | Some d ->
      Digest.to_hex (Digest.string (String.concat "|" (Array.to_list d)))

let check_invariants t = Fault.Invariant.check t.invariants

let run_for t ~us =
  let target =
    Int64.add (Sim.Engine.time t.engine) (Sim.Engine.of_seconds (us *. 1e-6))
  in
  Sim.Engine.run t.engine ~until:target;
  (* Every pause is a barrier: quiescent enough for the cross-component
     accounting invariants to be meaningful. *)
  ignore (check_invariants t : int)

let telemetry_snapshot t = Telemetry.Registry.snapshot t.telemetry

let delivered_total t =
  Array.fold_left (fun acc c -> acc + Sim.Stats.Counter.value c) 0 t.delivered

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>router after %.3f ms:@,"
    (Sim.Engine.seconds (Sim.Engine.time t.engine) *. 1e3);
  Format.fprintf ppf "  in: %d pkts (%d enqueued, %d dropped)@,"
    (Sim.Stats.Counter.value t.istats.Input_loop.pkts_in)
    (Sim.Stats.Counter.value t.istats.Input_loop.enq_ok)
    (Sim.Stats.Counter.value t.istats.Input_loop.enq_drop);
  Format.fprintf ppf "  out: %d pkts transmitted@,"
    (Sim.Stats.Counter.value t.ostats.Output_loop.pkts_out);
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "  port %d: delivered %d (queue depth %d)@," i
        (Sim.Stats.Counter.value c)
        (Squeue.length t.out_queues.(i)))
    t.delivered;
  Format.fprintf ppf "  sa: local=%d bridged=%d returned=%d dropped=%d@,"
    (Sim.Stats.Counter.value t.sa.Strongarm.stats.Strongarm.local_done)
    (Sim.Stats.Counter.value t.sa.Strongarm.stats.Strongarm.bridged)
    (Sim.Stats.Counter.value t.sa.Strongarm.stats.Strongarm.returned)
    (Sim.Stats.Counter.value t.sa.Strongarm.stats.Strongarm.dropped);
  Format.fprintf ppf "  pe: processed=%d dropped=%d@,"
    (Sim.Stats.Counter.value (Pentium.stats t.pe).Pentium.processed)
    (Sim.Stats.Counter.value (Pentium.stats t.pe).Pentium.dropped);
  (match t.injector with
  | None -> ()
  | Some inj ->
      Format.fprintf ppf "  faults: %a@," Fault.Injector.pp_counts inj;
      Format.fprintf ppf "  %a@," Fault.Invariant.pp_report t.invariants);
  Format.fprintf ppf "  %a@]" Sim.Stats.Histogram.pp t.latency
