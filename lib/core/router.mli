(** The assembled three-level router (paper Figures 1 and 8): MicroEngine
    input/output loops around the port queues, the StrongARM bridge with
    its local and Pentium-bound queues, the Pentium with its
    proportional-share scheduler, and the {!Iface} control interface
    binding them.

    Queue ids: [0 .. n_ports-1] are the output-port queues; {!qid_sa_local}
    is the StrongARM's exceptional/local queue; {!qid_sa_pe} selects a
    Pentium-bound flow queue.

    The built-in protocol processing is the paper's boot configuration:
    validate, classify (full classifier), run the installed per-flow and
    general forwarder chain, and finish with minimal IP (TTL decrement,
    incremental checksum, MAC rewrite); packets with IP options, TTL
    expiry, or route-cache misses divert to the StrongARM. *)

(** {1 Library interface}

    [Router] doubles as the library's entry module: every public module of
    the core library is re-exported here. *)

module Cost_model = Cost_model
module Vrp = Vrp
module Chip_ctx = Chip_ctx
module Desc = Desc
module Squeue = Squeue
module Forwarder = Forwarder
module Classifier = Classifier
module Input_loop = Input_loop
module Output_loop = Output_loop
module Fixed_infra = Fixed_infra
module Strongarm = Strongarm
module Pentium = Pentium
module Psched = Psched
module Admission = Admission
module Iface = Iface
module Capacity = Capacity
module Wfq = Wfq

(** {1 The assembled router} *)

type config = {
  hw : Ixp.Config.t;
  cm : Cost_model.t;
  n_ports : int;
  port_mbps : float;
  uplink_ports : int;
      (** extra high-speed ports after the externals (the section 6
          cluster's internal links; the evaluation board's 2 x 1 Gbps) *)
  uplink_mbps : float;
  n_input_contexts : int;
  n_output_contexts : int;
  full_classifier : bool;
      (** section 4.5's classifier (hashes + flow table) vs the trivial
          one of section 3 *)
  sa_wakeup : Strongarm.wakeup;
  sa_full_copy : bool;  (** ship whole packets over PCI (Table 4 mode) *)
  pe_flow_queues : int;
  pe_buffers : int;
  queue_capacity : int;
  route_engine : Iproute.Table.engine;
  divert_on_cache_miss : bool;
      (** route-cache misses are exceptional packets serviced by the
          StrongARM (section 3.2/3.6); false resolves them inline for
          synthetic workloads with no locality *)
  selective_invalidation : bool;
      (** route changes drop only the covered cache lines (see
          {!Iproute.Table.create}) *)
  circular_buffers : bool;
      (** the paper's single-pass circular DRAM buffer pool (true) vs the
          per-buffer stack pool it declined to build (section 3.2.3) *)
  batch_mps : int;
      (** MPs one context activation may cover per token acquisition
          (default 16, one transfer FIFO's worth); forced to 1 when the
          cost model's per-burst serial charging is off *)
  faults : Fault.Scenario.t;
      (** fault-injection scenario; {!Fault.Scenario.zero} (the default)
          builds no injector at all, so the fault-free router is
          unchanged in timing, randomness, and telemetry *)
}

val default_config : config
(** The prototype: 8 x 100 Mbps ports, 16 input + 8 output contexts, full
    classifier, polling StrongARM, lazy PCI copies. *)

type t = {
  config : config;
  engine : Sim.Engine.t;
  chip : Ixp.Chip.t;
  routes : Iproute.Table.t;
  classifier : Classifier.t;
  iface : Iface.t;
  sa : Strongarm.t;
  pe : Pentium.t;
  out_queues : Squeue.t array;
  istats : Input_loop.stats;
  ostats : Output_loop.stats;
  delivered : Sim.Stats.Counter.t array;  (** frames out each port *)
  latency : Sim.Stats.Histogram.t;  (** arrival-to-transmit, ps *)
  telemetry : Telemetry.Registry.t;
      (** every level's instruments, registered at {!create}; clocked by
          the router's engine *)
  input_scope : Telemetry.Scope.t;  (** receives input-stage drop events *)
  output_scope : Telemetry.Scope.t;  (** receives stale-buffer events *)
  injector : Fault.Injector.t option;
      (** the armed fault plane; [None] when [config.faults] is zero *)
  invariants : Fault.Invariant.t;
      (** router-wide invariants, audited at every {!run_for} barrier:
          buffer-pool conservation, queue accounting, no malformed frame
          escaping an output port, input-stage accounting, forwarding
          progress, and (under injection) VRP budget detection *)
  invalid_escapes : int ref;  (** malformed frames seen leaving a port *)
  vrp_detected : int ref;  (** injected budget overruns admission caught *)
  delivery_digests : string array option ref;
      (** per-port chained delivery digests; [None] until
          {!enable_delivery_digest} *)
  mutable frame_pool : Packet.Frame_pool.t option;
      (** attached via {!set_frame_pool}; [None] leaves every allocation
          path exactly as before *)
  port_targets : Input_loop.target array;
      (** preallocated routed-out verdicts, one per port — the fast
          path's [To_queue] records, built once at {!create} *)
  sa_targets : Input_loop.target array;
      (** preallocated StrongARM diverts (fid -1), indexed by the routed
          port + 1 (index 0 = no route) *)
  sa_ttl_target : Input_loop.target;  (** the TTL-expired divert *)
}

val create :
  ?config:config -> ?alloc_gauges:bool -> ?engine:Sim.Engine.t -> unit -> t
(** Build (does not start fibers).  Pass a shared [engine] to place
    several routers in one simulation (see {!connect}).

    [alloc_gauges] (default [false]) additionally registers host-GC
    allocation gauges ([gc_minor_words], [gc_promoted_words], ...) in the
    [sim] telemetry scope, rebased at creation.  They are opt-in because
    they report host facts, not simulation facts: their values vary with
    allocator warm-up and domain placement, so registering them would
    break snapshot-digest comparisons across replays and domain counts. *)

val set_frame_pool : t -> Packet.Frame_pool.t -> unit
(** Attach a {!Packet.Frame_pool} (call before {!start}).  Frames the
    router is done with — dropped at input, or released by the DRAM
    buffer pool — are given back to it, and its conservation invariant
    joins the audited set.  Purely an allocation-recycling concern: the
    simulated timing, counters, and delivered traffic are identical with
    or without a pool. *)

val add_route : t -> Iproute.Prefix.t -> port:int -> unit
(** Convenience: route a prefix out a port via that port's peer MAC. *)

val start :
  ?process:(t -> Chip_ctx.t -> Packet.Frame.t -> in_port:int -> Input_loop.target) ->
  t ->
  unit
(** Spawn every fiber: input contexts (two per port, maximally separated in
    the token rotation), output contexts (one per port), the StrongARM and
    the Pentium.  [process] overrides protocol processing (used by the
    section 3.6 and robustness benches). *)

val inject : t -> port:int -> Packet.Frame.t -> bool
(** Deliver a frame to a port's receive memory (what a traffic source
    calls); false if port memory overflowed. *)

val connect : t -> port:int -> (Packet.Frame.t -> unit) -> unit
(** Attach a delivery callback to a port's transmit side (in addition to
    the per-port counter) — e.g. [connect a ~port:6 (fun f -> ignore
    (inject b ~port:0 f))] cables router [a]'s port 6 to router [b]'s
    port 0, the multi-chassis configuration of the paper's section 6. *)

val enable_delivery_digest : t -> unit
(** Arm the per-port delivery-schedule digest (idempotent; call before
    traffic).  Every frame delivered out port [i] — through the default
    sink or a {!connect} callback — folds [(time ‖ frame bytes)] into
    port [i]'s chained MD5.  This is the batching equivalence gate's
    observable: two executions are equivalent iff every port's digest
    matches, regardless of how activations were coalesced internally.
    Disabled (the default) it costs one ref read per delivery. *)

val port_delivery_digests : t -> string array
(** Per-port digests (hex).  Raises [Invalid_argument] unless
    {!enable_delivery_digest} was called. *)

val delivery_digest : t -> string
(** All ports folded into a single hex digest (also snapshotted as
    [sim.delivery_digest] in telemetry when enabled). *)

val run_for : t -> us:float -> unit
(** Advance the simulation, then audit the invariant registry (every
    pause is a barrier). *)

val check_invariants : t -> int
(** Audit the invariant registry now; the number of new violations.
    {!run_for} calls this automatically. *)

val frame_escapable : Packet.Frame.t -> bool
(** Would a downstream host accept this frame?  The no-invalid-escape
    check: a frame leaving an output port must be well-formed (Ethernet
    header, and a valid IPv4 header or an MPLS ethertype).  Exposed so
    the cluster fabric can run the same audit on member egress. *)

val qid_sa_local : t -> int
val qid_sa_pe : t -> int -> int
(** [qid_sa_pe t h] picks a Pentium-bound queue by flow hash [h]. *)

val default_process :
  t -> Chip_ctx.t -> Packet.Frame.t -> in_port:int -> Input_loop.target
(** The boot protocol processing described above (exposed so overrides can
    fall back to it). *)

val delivered_total : t -> int

val telemetry_snapshot : t -> Telemetry.Json.t
(** Deterministic JSON snapshot of every registered instrument —
    per-MicroEngine, per-queue, per-port, both stage loops, the StrongARM,
    and the Pentium's scheduler — at the current simulated time. *)

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph state dump: per-port counters, SA/PE counters, queue
    depths. *)
