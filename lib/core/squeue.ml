type t = {
  name : string;
  capacity : int;
  items : Desc.t Queue.t;
  mutex : Sim.Mutex.t;
  mutable enqueued : int;
  mutable dequeued : int;
  mutable dropped : int;
  mutable peak : int;
}

let create ?(name = "queue") ~capacity () =
  if capacity <= 0 then invalid_arg "Squeue.create: capacity";
  {
    name;
    capacity;
    items = Queue.create ();
    mutex = Sim.Mutex.create ~name:(name ^ ".mutex") ();
    enqueued = 0;
    dequeued = 0;
    dropped = 0;
    peak = 0;
  }

let name q = q.name
let capacity q = q.capacity

let push q d =
  if Queue.length q.items >= q.capacity then begin
    q.dropped <- q.dropped + 1;
    false
  end
  else begin
    Queue.push d q.items;
    q.enqueued <- q.enqueued + 1;
    let len = Queue.length q.items in
    if len > q.peak then q.peak <- len;
    true
  end

let pop q =
  match Queue.take_opt q.items with
  | None -> None
  | Some d ->
      q.dequeued <- q.dequeued + 1;
      Some d

let peek q = Queue.peek_opt q.items
let length q = Queue.length q.items
let is_empty q = Queue.is_empty q.items
let mutex q = q.mutex
let enqueued q = q.enqueued
let dequeued q = q.dequeued
let dropped q = q.dropped
let peak_length q = q.peak

let check q =
  let len = Queue.length q.items in
  if len > q.capacity then
    Some (Printf.sprintf "%s: depth %d exceeds capacity %d" q.name len
            q.capacity)
  else if q.enqueued <> q.dequeued + len then
    Some
      (Printf.sprintf "%s: enqueued %d <> dequeued %d + depth %d" q.name
         q.enqueued q.dequeued len)
  else None

let register_telemetry scope q =
  let g = Telemetry.Scope.gauge_int scope in
  g "depth" (fun () -> Queue.length q.items);
  g "peak_depth" (fun () -> q.peak);
  g "enqueued" (fun () -> q.enqueued);
  g "dequeued" (fun () -> q.dequeued);
  g "dropped" (fun () -> q.dropped);
  g "mutex_contended" (fun () -> Sim.Mutex.contended_acquires q.mutex)
