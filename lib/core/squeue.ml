(* The paper's queues are circular arrays in SRAM; this one is a
   circular array too, because it sits on the per-packet path of every
   discipline — a pointer-chasing queue would allocate a cell per
   descriptor.  The backing array is sized to the capacity (rounded to a
   power of two for mask indexing) and allocated on the first push, when
   a descriptor exists to seed the slots with. *)
type t = {
  name : string;
  capacity : int;
  mask : int;
  mutable arr : Desc.t array; (* [||] until first push *)
  mutable head : int;
  mutable len : int;
  mutex : Sim.Mutex.t;
  mutable enqueued : int;
  mutable dequeued : int;
  mutable dropped : int;
  mutable peak : int;
  (* Parked consumers, all fired (and cleared) on the next successful
     push.  Lets output contexts sleep on an empty queue instead of
     polling; producers need no wiring — [push] fires them internally.
     Wake-all with consumer-side re-check: several contexts may share a
     queue, and a single overwritable cell would lose wakeups. *)
  mutable waiters : (unit -> unit) list;
}

let create ?(name = "queue") ~capacity () =
  if capacity <= 0 then invalid_arg "Squeue.create: capacity";
  let cap_pow2 =
    let c = ref 1 in
    while !c < capacity do
      c := !c * 2
    done;
    !c
  in
  {
    name;
    capacity;
    mask = cap_pow2 - 1;
    arr = [||];
    head = 0;
    len = 0;
    mutex = Sim.Mutex.create ~name:(name ^ ".mutex") ();
    enqueued = 0;
    dequeued = 0;
    dropped = 0;
    peak = 0;
    waiters = [];
  }

let name q = q.name
let capacity q = q.capacity

let push q d =
  if q.len >= q.capacity then begin
    q.dropped <- q.dropped + 1;
    false
  end
  else begin
    if Array.length q.arr = 0 then q.arr <- Array.make (q.mask + 1) d;
    Array.unsafe_set q.arr ((q.head + q.len) land q.mask) d;
    q.len <- q.len + 1;
    q.enqueued <- q.enqueued + 1;
    if q.len > q.peak then q.peak <- q.len;
    (match q.waiters with
    | [] -> ()
    | ws ->
        q.waiters <- [];
        List.iter (fun w -> w ()) ws);
    true
  end

let add_waiter q w = q.waiters <- w :: q.waiters

let pop q =
  if q.len = 0 then None
  else begin
    let d = Array.unsafe_get q.arr q.head in
    q.head <- (q.head + 1) land q.mask;
    q.len <- q.len - 1;
    q.dequeued <- q.dequeued + 1;
    Some d
  end

(* Option-free pop for callers that have already checked [length q > 0]
   — the [Some d] of [pop] is two words per forwarded packet. *)
let pop_nonempty q =
  if q.len = 0 then invalid_arg (q.name ^ ": pop_nonempty on empty queue");
  let d = Array.unsafe_get q.arr q.head in
  q.head <- (q.head + 1) land q.mask;
  q.len <- q.len - 1;
  q.dequeued <- q.dequeued + 1;
  d

let peek q = if q.len = 0 then None else Some (Array.unsafe_get q.arr q.head)
let length q = q.len
let is_empty q = q.len = 0
let mutex q = q.mutex
let enqueued q = q.enqueued
let dequeued q = q.dequeued
let dropped q = q.dropped
let peak_length q = q.peak

let check q =
  if q.len > q.capacity then
    Some
      (Printf.sprintf "%s: depth %d exceeds capacity %d" q.name q.len
         q.capacity)
  else if q.enqueued <> q.dequeued + q.len then
    Some
      (Printf.sprintf "%s: enqueued %d <> dequeued %d + depth %d" q.name
         q.enqueued q.dequeued q.len)
  else None

let register_telemetry scope q =
  let g = Telemetry.Scope.gauge_int scope in
  g "depth" (fun () -> q.len);
  g "peak_depth" (fun () -> q.peak);
  g "enqueued" (fun () -> q.enqueued);
  g "dequeued" (fun () -> q.dequeued);
  g "dropped" (fun () -> q.dropped);
  g "mutex_contended" (fun () -> Sim.Mutex.contended_acquires q.mutex)
