(** Packet queues (paper section 3.4): "contiguous circular arrays of
    32-bit entries in SRAM.  Head and tail pointers are simply indexes into
    the array, and they are stored in Scratch memory."

    The queue itself is pure bookkeeping; the memory traffic its operations
    cost is charged by the input/output loops according to the active
    discipline (Table 1), so one queue type serves I.1/I.2/I.3 and
    O.1/O.2/O.3 alike.  Each queue owns a hardware {!Sim.Mutex} used only
    by the protected disciplines. *)

type t

val create : ?name:string -> capacity:int -> unit -> t
(** [create ~capacity ()] is an empty circular queue. *)

val name : t -> string
val capacity : t -> int

val push : t -> Desc.t -> bool
(** [push q d] appends; false (and a drop count) when full. *)

val pop : t -> Desc.t option

val pop_nonempty : t -> Desc.t
(** [pop] for callers that have already checked [length t > 0] —
    allocation-free.  @raise Invalid_argument on an empty queue. *)

val peek : t -> Desc.t option
val length : t -> int
val is_empty : t -> bool

val add_waiter : t -> (unit -> unit) -> unit
(** [add_waiter q w] registers [w] to be called by the next successful
    {!push}; all registered waiters fire once and are cleared together.
    Lets consumers park on an empty queue instead of polling — producers
    need no cooperation.  Callbacks must tolerate spurious invocation
    (re-check the queue on wake) and must be idempotent per
    registration. *)

val mutex : t -> Sim.Mutex.t
(** The hardware mutex protecting this queue under I.2/I.3. *)

val enqueued : t -> int
val dequeued : t -> int
val dropped : t -> int

val peak_length : t -> int
(** High-water mark, for sizing and robustness reports. *)

val check : t -> string option
(** Accounting audit: depth never exceeds capacity, and
    [enqueued = dequeued + depth].  [Some detail] on violation. *)

val register_telemetry : Telemetry.Scope.t -> t -> unit
(** Register depth/peak/enqueued/dequeued/dropped gauges plus the
    hardware mutex's contention count under a telemetry scope. *)
