type payload = { desc : Desc.t; frame : Packet.Frame.t; bytes : int }

type wakeup = Polling | Interrupts

type stats = {
  local_done : Sim.Stats.Counter.t;
  bridged : Sim.Stats.Counter.t;
  returned : Sim.Stats.Counter.t;
  dropped : Sim.Stats.Counter.t;
  route_misses : Sim.Stats.Counter.t;
  icmp_sent : Sim.Stats.Counter.t;
  stale_bufs : Sim.Stats.Counter.t;
}

let make_stats () =
  let c = Sim.Stats.Counter.create in
  {
    local_done = c "sa.local";
    bridged = c "sa.bridged";
    returned = c "sa.returned";
    dropped = c "sa.dropped";
    route_misses = c "sa.route_misses";
    icmp_sent = c "sa.icmp_sent";
    stale_bufs = c "sa.stale_buffers";
  }

type t = {
  cm : Cost_model.t;
  ctx : Chip_ctx.t;
  wakeup : wakeup;
  local_q : Squeue.t;
  pe_qs : Squeue.t array;
  to_pe : payload Ixp.I2o.t;
  returns : Desc.t Sim.Mailbox.t;
  lookup_fid : int -> Classifier.entry option;
  routes : Iproute.Table.t;
  out_enqueue : Chip_ctx.t -> Desc.t -> bool;
  read_buffer : Desc.t -> Packet.Frame.t option;
  full_copy : bool;
  icmp_addr : (int -> Packet.Ipv4.addr) option;
  work_signal : Sim.Semaphore.t;
  stats : stats;
  mutable spare_probe : int;
  mutable busy_ps : int; (* native-int ps; see [busy] *)
  mutable pe_rr : int; (* round-robin cursor over the Pentium-bound queues *)
  mutable faults : Fault.Injector.t option;
  mutable crashes : int;
}

let create chip cm ?(wakeup = Polling) ?(pe_flow_queues = 4)
    ?(pe_buffers = 128) ?(full_copy = false) ?icmp_addr ~lookup_fid ~routes
    ~out_enqueue () =
  {
    cm;
    ctx = Chip_ctx.make_cpu chip chip.Ixp.Chip.me_clock;
    wakeup;
    local_q = Squeue.create ~name:"sa.local" ~capacity:4096 ();
    pe_qs =
      Array.init pe_flow_queues (fun i ->
          Squeue.create ~name:(Printf.sprintf "sa.pe%d" i) ~capacity:4096 ());
    to_pe =
      Ixp.I2o.create chip.Ixp.Chip.pci ~name:"i2o.up" ~buffers:pe_buffers ();
    returns = Sim.Mailbox.create ~name:"pe.returns" ();
    lookup_fid;
    routes;
    out_enqueue;
    read_buffer = (fun d -> Ixp.Buffer_pool.read chip.Ixp.Chip.buffers d.Desc.buf);
    full_copy;
    icmp_addr;
    work_signal = Sim.Semaphore.create ~name:"sa.signal" 0;
    stats = make_stats ();
    spare_probe = 0;
    busy_ps = 0;
    pe_rr = 0;
    faults = None;
    crashes = 0;
  }

let set_faults t inj = t.faults <- Some inj
let crashes t = t.crashes

let register_telemetry scope t =
  let r = Telemetry.Scope.register_counter scope in
  r ~name:"local_done" t.stats.local_done;
  r ~name:"bridged" t.stats.bridged;
  r ~name:"returned" t.stats.returned;
  r ~name:"dropped" t.stats.dropped;
  r ~name:"route_misses" t.stats.route_misses;
  r ~name:"icmp_sent" t.stats.icmp_sent;
  r ~name:"stale_buffers" t.stats.stale_bufs;
  let queue q =
    Squeue.register_telemetry
      (Telemetry.Scope.sub scope "queue" ~labels:[ ("name", Squeue.name q) ])
      q
  in
  queue t.local_q;
  Array.iter queue t.pe_qs

(* Native-int timestamps: this brackets every slow-path dequeue and
   process step, and the int64 form boxed four values per call. *)
let busy t f =
  let t0 = Sim.Engine.now_i () in
  let r = f () in
  t.busy_ps <- t.busy_ps + (Sim.Engine.now_i () - t0);
  r

let busy_cycles t =
  Sim.Engine.Clock.cycles_of_ps t.ctx.Chip_ctx.chip.Ixp.Chip.me_clock
    (Int64.of_int t.busy_ps)

let notify t =
  match t.wakeup with
  | Polling -> ()
  | Interrupts -> Sim.Semaphore.release t.work_signal

let pci_bytes t ~len = if t.full_copy then len + 8 else min len 64 + 8

(* Full longest-prefix match (route-cache miss path): the paper's
   controlled-prefix-expansion lookup at ~236 cycles. *)
(* Full longest-prefix match plus the link-layer rewrite the fast path's
   minimal IP forwarder would have done. *)
let routed_port t frame =
  Chip_ctx.exec t.ctx t.cm.Cost_model.sa_route_lookup_instr;
  Chip_ctx.sram_read t.ctx ~bytes:t.cm.Cost_model.sa_route_lookup_sram_bytes;
  Sim.Stats.Counter.incr t.stats.route_misses;
  match Iproute.Table.lookup t.routes (Packet.Ipv4.get_dst frame) with
  | Some nh ->
      Packet.Ethernet.set_dst frame nh.Iproute.Table.gateway_mac;
      Packet.Ethernet.set_src frame
        (Packet.Ethernet.mac_of_port nh.Iproute.Table.out_port);
      Some nh.Iproute.Table.out_port
  | None -> None

let dequeue_charged t q =
  Chip_ctx.exec t.ctx t.cm.Cost_model.sa_poll_instr;
  Chip_ctx.sram_read t.ctx ~bytes:t.cm.Cost_model.sa_dequeue_sram_bytes;
  (* Under interrupts every dequeued packet carries the interrupt entry and
     exit overhead — the cost that made the paper's interrupt mode
     "significantly slower". *)
  if t.wakeup = Interrupts then
    Chip_ctx.exec t.ctx t.cm.Cost_model.sa_interrupt_cycles;
  Squeue.pop q

let finish t desc =
  if t.out_enqueue t.ctx desc then ()
  else Sim.Stats.Counter.incr t.stats.dropped

let process_local t desc =
  match t.read_buffer desc with
  | None ->
      (* The circular allocator lapped this packet while it waited for
         slow-path service (section 3.2.3's documented loss mode). *)
      Sim.Stats.Counter.incr t.stats.stale_bufs
  | Some frame -> (
      let handle_verdict v =
        match (v : Forwarder.verdict) with
        | Forwarder.Drop -> Sim.Stats.Counter.incr t.stats.dropped
        | Forwarder.Forward p ->
            desc.Desc.out_port <- p;
            Sim.Stats.Counter.incr t.stats.local_done;
            finish t desc
        | Forwarder.Continue | Forwarder.Forward_routed -> begin
            match routed_port t frame with
            | Some p ->
                desc.Desc.out_port <- p;
                Sim.Stats.Counter.incr t.stats.local_done;
                finish t desc
            | None -> Sim.Stats.Counter.incr t.stats.dropped
          end
        | Forwarder.Divert Desc.Pentium ->
            ignore (Squeue.push t.pe_qs.(0) desc)
        | Forwarder.Divert (Desc.Strongarm | Desc.Microengine) ->
            (* Nowhere further to divert locally. *)
            Sim.Stats.Counter.incr t.stats.dropped
      in
      (* Building and routing an ICMP error costs real StrongARM work. *)
      let send_icmp make =
        match t.icmp_addr with
        | None -> Sim.Stats.Counter.incr t.stats.dropped
        | Some addr_of -> begin
            Chip_ctx.exec t.ctx 500;
            let reply = make ~router:(addr_of desc.Desc.in_port) frame in
            match routed_port t reply with
            | None -> Sim.Stats.Counter.incr t.stats.dropped
            | Some port -> (
                match
                  Ixp.Buffer_pool.alloc t.ctx.Chip_ctx.chip.Ixp.Chip.buffers
                    reply
                with
                | exception Failure _ ->
                    (* No buffer for the error report; the original is
                       already gone, so just count the drop. *)
                    Sim.Stats.Counter.incr t.stats.dropped
                | buf ->
                    let d =
                      Desc.make ~buf ~len:(Packet.Frame.len reply)
                        ~in_port:desc.Desc.in_port ~out_port:port
                        ~arrival:(Sim.Engine.now_i ()) ()
                    in
                    Sim.Stats.Counter.incr t.stats.icmp_sent;
                    finish t d)
          end
      in
      match t.lookup_fid desc.Desc.fid with
      | Some e ->
          Chip_ctx.exec t.ctx e.Classifier.fwdr.Forwarder.host_cycles;
          handle_verdict
            (e.Classifier.fwdr.Forwarder.action ~state:e.Classifier.state
               frame ~in_port:desc.Desc.in_port)
      | None ->
          (* Exceptional IP slow path: full validation, option handling,
             ICMP generation for TTL expiry and routing failures. *)
          Chip_ctx.exec t.ctx t.cm.Cost_model.sa_poll_instr;
          if not (Packet.Ipv4.valid frame) then
            Sim.Stats.Counter.incr t.stats.dropped
          else if Packet.Ipv4.get_ttl frame <= 1 then
            send_icmp Packet.Icmp.time_exceeded
          else begin
            ignore (Packet.Ipv4.decrement_ttl frame);
            match routed_port t frame with
            | Some p ->
                desc.Desc.out_port <- p;
                Sim.Stats.Counter.incr t.stats.local_done;
                finish t desc
            | None -> send_icmp (Packet.Icmp.dest_unreachable ~code:0)
          end)

let bridge_up t desc =
  match t.read_buffer desc with
  | None -> Sim.Stats.Counter.incr t.stats.stale_bufs
  | Some frame ->
      let bytes = pci_bytes t ~len:desc.Desc.len in
      (* Waiting for a free host buffer is backpressure, not work. *)
      Ixp.I2o.acquire_free t.to_pe;
      busy t (fun () ->
          (* Program the DMA; the transfer and full-pointer push ride
             behind concurrently. *)
          Chip_ctx.exec t.ctx
            t.ctx.Chip_ctx.chip.Ixp.Chip.cfg.Ixp.Config.pci_dma_setup_cycles;
          Ixp.I2o.send_acquired t.to_pe
            ~producer_clock:t.ctx.Chip_ctx.chip.Ixp.Chip.me_clock ~bytes
            { desc; frame; bytes });
      Sim.Stats.Counter.incr t.stats.bridged

let spawn t chip =
  Sim.Engine.spawn chip.Ixp.Chip.engine "strongarm" (fun () ->
      let rec loop backoff =
        (match t.faults with
        | Some inj when Fault.Injector.fires inj Sa_crash ->
            (* Crash-and-restart: the CPU goes dark for the reboot time.
               Queues live in SRAM and survive; in-flight state does not
               accumulate because the loop head is a quiescent point. *)
            t.crashes <- t.crashes + 1;
            Sim.Engine.wait
              (Sim.Engine.of_seconds
                 ((Fault.Injector.scenario inj).Fault.Scenario.sa_restart_us
                 *. 1e-6))
        | _ -> ());
        (* Highest priority: packets coming back down from the Pentium sit
           in a descriptor ring in IXP memory (posted writes by the host);
           draining one is cheap. *)
        match Sim.Mailbox.try_get t.returns with
        | Some desc ->
            busy t (fun () ->
                Chip_ctx.exec t.ctx 20;
                Chip_ctx.scratch_read t.ctx ~bytes:4;
                Sim.Stats.Counter.incr t.stats.returned;
                finish t desc);
            loop 1
        | None -> (
            (* Then Pentium-bound flows, strictly before local work; the
               flow queues themselves are served round-robin so the bridge
               cannot starve a flow before the Pentium's scheduler sees
               it. *)
            let n_pe = Array.length t.pe_qs in
            let rec first_pe k =
              if k >= n_pe then None
              else begin
                let i = (t.pe_rr + k) mod n_pe in
                if Squeue.is_empty t.pe_qs.(i) then first_pe (k + 1)
                else begin
                  t.pe_rr <- (i + 1) mod n_pe;
                  busy t (fun () -> dequeue_charged t t.pe_qs.(i))
                end
              end
            in
            match first_pe 0 with
            | Some desc ->
                bridge_up t desc;
                loop 1
            | None -> (
                match
                  if Squeue.is_empty t.local_q then None
                  else busy t (fun () -> dequeue_charged t t.local_q)
                with
                | Some desc ->
                    busy t (fun () -> process_local t desc);
                    loop 1
                | None -> (
                    match t.wakeup with
                    | Polling ->
                        (* The paper's delay-loop spare-cycle probe. *)
                        t.spare_probe <- t.spare_probe + backoff;
                        Chip_ctx.wait_cycles t.ctx backoff;
                        loop
                          (min (backoff * 2)
                             t.cm.Cost_model.sa_poll_backoff_cycles)
                    | Interrupts ->
                        Sim.Semaphore.acquire t.work_signal;
                        Chip_ctx.exec t.ctx t.cm.Cost_model.sa_interrupt_cycles;
                        loop 1)))
      in
      loop 1)
