(** The StrongARM level (paper sections 3.6, 4.1, 4.5).

    The StrongARM runs a minimal OS that does exactly two things: bridge
    packets to the Pentium over PCI/I2O, and run a small fixed set of local
    forwarders.  Packets bound for the Pentium take strict precedence over
    local work.  It shares SRAM/DRAM with the MicroEngines, so every memory
    operation here contends on the same simulated channels — the
    interference that forces it to live within the same resource budget.

    Dequeue policy is polling by default; the interrupt alternative (which
    the paper measured as "significantly slower") charges a per-packet
    interrupt cost. *)

type payload = { desc : Desc.t; frame : Packet.Frame.t; bytes : int }
(** What crosses the PCI bus: the descriptor's metadata (the classification
    result, "so that [the Pentium] does not have to re-classify") plus the
    frame; [bytes] is what the transfer actually put on the bus. *)

type wakeup = Polling | Interrupts

type stats = {
  local_done : Sim.Stats.Counter.t;  (** packets forwarded by local code *)
  bridged : Sim.Stats.Counter.t;  (** packets sent up to the Pentium *)
  returned : Sim.Stats.Counter.t;  (** Pentium packets re-enqueued down *)
  dropped : Sim.Stats.Counter.t;
  route_misses : Sim.Stats.Counter.t;  (** full lookups performed *)
  icmp_sent : Sim.Stats.Counter.t;
      (** Time Exceeded / Destination Unreachable errors generated *)
  stale_bufs : Sim.Stats.Counter.t;
      (** packets lapped by the circular buffer pool while awaiting
          slow-path service (section 3.2.3's loss mode) *)
}

val make_stats : unit -> stats

type t = {
  cm : Cost_model.t;
  ctx : Chip_ctx.t;  (** CPU view: own core, shared memory channels *)
  wakeup : wakeup;
  local_q : Squeue.t;  (** exceptional/local packets from the MicroEngines *)
  pe_qs : Squeue.t array;  (** per-flow queues bound for the Pentium *)
  to_pe : payload Ixp.I2o.t;
  returns : Desc.t Sim.Mailbox.t;
      (** descriptor ring the Pentium fills on its way back down *)
  lookup_fid : int -> Classifier.entry option;  (** forwarder dispatch *)
  routes : Iproute.Table.t;
  out_enqueue : Chip_ctx.t -> Desc.t -> bool;
      (** place a finished packet on its output-port queue *)
  read_buffer : Desc.t -> Packet.Frame.t option;
  full_copy : bool;
      (** true: ship whole frames across PCI (the Table 4 measurement);
          false: the 64-byte head + 8-byte routing header optimization *)
  icmp_addr : (int -> Packet.Ipv4.addr) option;
      (** the router's own address per input port; [None] disables ICMP
          error generation *)
  work_signal : Sim.Semaphore.t;  (** interrupt-mode doorbell *)
  stats : stats;
  mutable spare_probe : int;  (** delay-loop iterations when idle, the
                                  paper's spare-cycle methodology *)
  mutable busy_ps : int;  (** time spent working, native-int ps (excludes idle and
                                backpressure waits) *)
  mutable pe_rr : int;  (** round-robin cursor over [pe_qs] *)
  mutable faults : Fault.Injector.t option;
  mutable crashes : int;  (** injected crash-and-restart events taken *)
}

val create :
  Ixp.Chip.t ->
  Cost_model.t ->
  ?wakeup:wakeup ->
  ?pe_flow_queues:int ->
  ?pe_buffers:int ->
  ?full_copy:bool ->
  ?icmp_addr:(int -> Packet.Ipv4.addr) ->
  lookup_fid:(int -> Classifier.entry option) ->
  routes:Iproute.Table.t ->
  out_enqueue:(Chip_ctx.t -> Desc.t -> bool) ->
  unit ->
  t

val spawn : t -> Ixp.Chip.t -> unit
(** Start the StrongARM's main loop fiber. *)

val set_faults : t -> Fault.Injector.t -> unit
(** Enable crash-and-restart injection: with probability [sa_crash] per
    service-loop iteration the CPU stalls for [sa_restart_us].  Queues
    are in SRAM and survive the reboot. *)

val crashes : t -> int
(** Injected crashes taken so far. *)

val notify : t -> unit
(** A MicroEngine context signalling that a packet was queued (one-cycle
    inter-thread signal; drives interrupt mode, a no-op under polling). *)

val pci_bytes : t -> len:int -> int
(** Bytes a [len]-byte packet puts on the PCI bus under the configured copy
    policy (includes the 8-byte internal routing header). *)

val busy_cycles : t -> float
(** StrongARM cycles spent on packet work; its complement against the
    clock is Table 4's spare-cycle column. *)

val register_telemetry : Telemetry.Scope.t -> t -> unit
(** Register the StrongARM's packet counters and its local/Pentium-bound
    queue scopes into a telemetry scope. *)
