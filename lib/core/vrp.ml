type op =
  | Instr of int
  | Sram_read of int
  | Sram_write of int
  | Scratch_read of int
  | Scratch_write of int
  | Dram_read of int
  | Dram_write of int
  | Hash

type code = op list

type cost = {
  instr : int;
  sram_read_bytes : int;
  sram_write_bytes : int;
  scratch_read_bytes : int;
  scratch_write_bytes : int;
  dram_read_bytes : int;
  dram_write_bytes : int;
  hashes : int;
}

let zero_cost =
  {
    instr = 0;
    sram_read_bytes = 0;
    sram_write_bytes = 0;
    scratch_read_bytes = 0;
    scratch_write_bytes = 0;
    dram_read_bytes = 0;
    dram_write_bytes = 0;
    hashes = 0;
  }

let add_cost a b =
  {
    instr = a.instr + b.instr;
    sram_read_bytes = a.sram_read_bytes + b.sram_read_bytes;
    sram_write_bytes = a.sram_write_bytes + b.sram_write_bytes;
    scratch_read_bytes = a.scratch_read_bytes + b.scratch_read_bytes;
    scratch_write_bytes = a.scratch_write_bytes + b.scratch_write_bytes;
    dram_read_bytes = a.dram_read_bytes + b.dram_read_bytes;
    dram_write_bytes = a.dram_write_bytes + b.dram_write_bytes;
    hashes = a.hashes + b.hashes;
  }

let cost_of_op = function
  | Instr n -> { zero_cost with instr = n }
  | Sram_read b -> { zero_cost with sram_read_bytes = b }
  | Sram_write b -> { zero_cost with sram_write_bytes = b }
  | Scratch_read b -> { zero_cost with scratch_read_bytes = b }
  | Scratch_write b -> { zero_cost with scratch_write_bytes = b }
  | Dram_read b -> { zero_cost with dram_read_bytes = b }
  | Dram_write b -> { zero_cost with dram_write_bytes = b }
  | Hash -> { zero_cost with hashes = 1 }

let static_cost code =
  List.fold_left (fun acc op -> add_cost acc (cost_of_op op)) zero_cost code

let ops_for bytes unit_bytes =
  if bytes <= 0 then 0 else (bytes + unit_bytes - 1) / unit_bytes

let sram_transfers (cfg : Ixp.Config.t) c =
  ops_for c.sram_read_bytes cfg.sram.unit_bytes
  + ops_for c.sram_write_bytes cfg.sram.unit_bytes

let cycles_estimate (cfg : Ixp.Config.t) c =
  (* Memory bursts pipeline on the channel: the first unit pays full
     latency, each further unit lands one occupancy slot later (the
     charging model of [Ixp.Mem.transfer]).  Aggregating a code block's
     bytes into one burst per direction keeps this a lower bound of the
     charged execution time — splitting a burst only adds latency. *)
  let mem (t : Ixp.Config.mem_timing) rb wb =
    let burst first n =
      if n = 0 then 0 else first + ((n - 1) * t.occupancy_cycles)
    in
    burst t.read_cycles (ops_for rb t.unit_bytes)
    + burst t.write_cycles (ops_for wb t.unit_bytes)
  in
  c.instr
  + mem cfg.sram c.sram_read_bytes c.sram_write_bytes
  + mem cfg.scratch c.scratch_read_bytes c.scratch_write_bytes
  + mem cfg.dram c.dram_read_bytes c.dram_write_bytes
  + (c.hashes * cfg.hash_cycles)

let istore_slots code =
  let per_op = function
    | Instr n -> n
    | Sram_read _ | Sram_write _ | Scratch_read _ | Scratch_write _
    | Dram_read _ | Dram_write _ | Hash ->
        1
  in
  1 (* trailing indirect jump (Figure 11) *)
  + List.fold_left (fun acc op -> acc + per_op op) 0 code

let execute ?(op_overhead = (0, 0)) (ctx : Chip_ctx.t) code =
  let oh_instr, oh_wait = op_overhead in
  let overhead () =
    if oh_instr > 0 then Chip_ctx.exec ctx oh_instr;
    if oh_wait > 0 then Chip_ctx.wait_cycles ctx oh_wait
  in
  List.iter
    (fun op ->
      match op with
      | Instr n -> Chip_ctx.exec ctx n
      | Sram_read b ->
          overhead ();
          Chip_ctx.sram_read ctx ~bytes:b
      | Sram_write b ->
          overhead ();
          Chip_ctx.sram_write ctx ~bytes:b
      | Scratch_read b ->
          overhead ();
          Chip_ctx.scratch_read ctx ~bytes:b
      | Scratch_write b ->
          overhead ();
          Chip_ctx.scratch_write ctx ~bytes:b
      | Dram_read b ->
          overhead ();
          Chip_ctx.dram_read ctx ~bytes:b
      | Dram_write b ->
          overhead ();
          Chip_ctx.dram_write ctx ~bytes:b
      | Hash -> ignore (Chip_ctx.hash ctx 0L))
    code

type budget = {
  b_cycles : int;
  b_sram_transfers : int;
  b_hashes : int;
  b_state_bytes : int;
  b_istore_slots : int;
}

let pp_budget ppf b =
  Format.fprintf ppf
    "%d cycles, %d SRAM transfers, %d hashes, %d state bytes, %d ISTORE slots"
    b.b_cycles b.b_sram_transfers b.b_hashes b.b_state_bytes b.b_istore_slots

let prototype_budget =
  {
    b_cycles = 240;
    b_sram_transfers = 24;
    b_hashes = 3;
    b_state_bytes = 96;
    b_istore_slots = 650;
  }

let budget_json b =
  let open Telemetry.Json in
  Obj
    [
      ("cycles", Int b.b_cycles);
      ("sram_transfers", Int b.b_sram_transfers);
      ("hashes", Int b.b_hashes);
      ("state_bytes", Int b.b_state_bytes);
      ("istore_slots", Int b.b_istore_slots);
    ]

let check b cost ~state_bytes ~slots =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  if cost.instr > b.b_cycles then
    err "cycles: needs %d, budget %d" cost.instr b.b_cycles;
  let xfers =
    ops_for cost.sram_read_bytes 4 + ops_for cost.sram_write_bytes 4
  in
  if xfers > b.b_sram_transfers then
    err "SRAM transfers: needs %d, budget %d" xfers b.b_sram_transfers;
  if cost.hashes > b.b_hashes then
    err "hashes: needs %d, budget %d" cost.hashes b.b_hashes;
  if state_bytes > b.b_state_bytes then
    err "state: needs %d B, budget %d B" state_bytes b.b_state_bytes;
  if slots > b.b_istore_slots then
    err "ISTORE: needs %d slots, budget %d" slots b.b_istore_slots;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let check_recorded ?scope b cost ~state_bytes ~slots =
  let result = check b cost ~state_bytes ~slots in
  (match scope with
  | None -> ()
  | Some scope -> (
      let checks = Telemetry.Scope.counter scope "budget_checks" in
      let overruns = Telemetry.Scope.counter scope "budget_overruns" in
      Sim.Stats.Counter.incr checks;
      match result with
      | Ok () -> ()
      | Error es ->
          Sim.Stats.Counter.incr overruns;
          List.iter
            (fun e -> Telemetry.Scope.event scope ("budget overrun: " ^ e))
            es));
  result
