(** The Virtual Router Processor (paper sections 4.2-4.3).

    The VRP is the budgeted abstract machine in which per-packet extensions
    run on the MicroEngines: straight-line code (no backward jumps — the
    property admission control exploits) over packet registers, a handful
    of scratch registers, flow state in SRAM, and the hardware hash unit.

    A forwarder's cost is declared as an op list; {!static_cost} is the
    admission-control view and {!execute} charges the same ops against the
    simulated hardware, so the two cannot drift apart. *)

type op =
  | Instr of int  (** [n] register-to-register instructions *)
  | Sram_read of int  (** load [bytes] of flow state *)
  | Sram_write of int  (** store [bytes] of flow state *)
  | Scratch_read of int
  | Scratch_write of int
  | Dram_read of int  (** touch packet body in DRAM (beyond registers) *)
  | Dram_write of int
  | Hash  (** one hardware hash unit operation *)

type code = op list
(** Loop-free by construction: a list has no backward jumps, mirroring the
    paper's observation that MP-sized processing needs no loops. *)

type cost = {
  instr : int;
  sram_read_bytes : int;
  sram_write_bytes : int;
  scratch_read_bytes : int;
  scratch_write_bytes : int;
  dram_read_bytes : int;
  dram_write_bytes : int;
  hashes : int;
}

val zero_cost : cost
val add_cost : cost -> cost -> cost
val static_cost : code -> cost

val sram_transfers : Ixp.Config.t -> cost -> int
(** Number of 4-byte SRAM operations the cost implies. *)

val cycles_estimate : Ixp.Config.t -> cost -> int
(** Requester-visible cycles: instructions plus uncontended memory
    latencies, with each direction's bytes charged as one pipelined
    burst (first unit pays full latency, subsequent units one occupancy
    slot each — a lower bound on the charged execution).  What admission
    control compares against the budget. *)

val istore_slots : code -> int
(** Instruction-store footprint: register instructions plus one issue slot
    per memory/hash operation, plus the trailing indirect jump. *)

val execute : ?op_overhead:int * int -> Chip_ctx.t -> code -> unit
(** [execute ctx code] (inside a MicroEngine context fiber) charges every
    op against the simulated hardware.  [op_overhead = (instr, wait)] adds
    a per-memory-op cost for the VRP's generic load/store sequence —
    address computation, transfer-register shuffling, context swap — that
    the Router Infrastructure's hand-scheduled assembly avoids; default
    [(0, 0)]. *)

(** {1 Budgets} *)

type budget = {
  b_cycles : int;  (** register instructions per MP *)
  b_sram_transfers : int;  (** 4-byte SRAM operations per MP *)
  b_hashes : int;  (** hash unit operations per MP *)
  b_state_bytes : int;  (** persistent SRAM flow state *)
  b_istore_slots : int;  (** instruction store room *)
}

val pp_budget : Format.formatter -> budget -> unit

val prototype_budget : budget
(** The paper's section 4.3 characterization for 8 x 100 Mbps: 240 cycles,
    24 SRAM transfers, 3 hashes, 96 bytes of state, 650 ISTORE slots. *)

val check :
  budget -> cost -> state_bytes:int -> slots:int -> (unit, string list) result
(** [check b cost ~state_bytes ~slots] verifies a forwarder fits, returning
    every violated dimension on failure. *)

val check_recorded :
  ?scope:Telemetry.Scope.t ->
  budget ->
  cost ->
  state_bytes:int ->
  slots:int ->
  (unit, string list) result
(** {!check}, additionally counting the check (and any overrun, with one
    event per violated dimension) under a telemetry scope when given. *)

val budget_json : budget -> Telemetry.Json.t
(** The budget's dimensions as a JSON object (for BENCH.json rows). *)
