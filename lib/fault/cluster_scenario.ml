type kind = Link_drop | Link_corrupt | Link_stall | Crash | Route_churn

type event = {
  kind : kind;
  member : int;
  start_us : float;
  dur_us : float;
  param : float;
}

type t = { seed : int64; events : event list }

let zero = { seed = 0L; events = [] }
let is_zero t = t.events = []
let with_seed t seed = { t with seed }

let kind_name = function
  | Link_drop -> "link_drop"
  | Link_corrupt -> "link_corrupt"
  | Link_stall -> "link_stall"
  | Crash -> "crash"
  | Route_churn -> "route_churn"

let kind_of_name = function
  | "link_drop" -> Some Link_drop
  | "link_corrupt" -> Some Link_corrupt
  | "link_stall" -> Some Link_stall
  | "crash" -> Some Crash
  | "route_churn" -> Some Route_churn
  | _ -> None

let default_param = function
  | Link_drop | Link_corrupt -> 1.0
  | Link_stall -> 50.
  | Crash -> 0.
  | Route_churn -> 1000. (* route updates per second of simulated time *)

let end_us e = if e.dur_us <= 0. then infinity else e.start_us +. e.dur_us
let active e ~at_us = at_us >= e.start_us && at_us < end_us e

let max_member t =
  List.fold_left (fun acc e -> max acc e.member) (-1) t.events

let rate t kind' ~member ~at_us =
  List.fold_left
    (fun acc e ->
      if e.kind = kind' && e.member = member && active e ~at_us then
        Float.max acc e.param
      else acc)
    0. t.events

let drop_rate t ~member ~at_us = rate t Link_drop ~member ~at_us
let corrupt_rate t ~member ~at_us = rate t Link_corrupt ~member ~at_us
let churn_rate t ~member ~at_us = rate t Route_churn ~member ~at_us

let churn_events t ~member =
  List.filter (fun e -> e.kind = Route_churn && e.member = member) t.events

let stall_us t ~member ~at_us =
  List.fold_left
    (fun acc e ->
      if e.kind = Link_stall && e.member = member && active e ~at_us then
        acc +. e.param
      else acc)
    0. t.events

let crashed t ~member ~at_us =
  List.exists
    (fun e -> e.kind = Crash && e.member = member && active e ~at_us)
    t.events

let member_active t ~member ~at_us =
  List.exists (fun e -> e.member = member && active e ~at_us) t.events

let parse_event item =
  let ( let* ) = Result.bind in
  let fields = String.split_on_char ':' (String.trim item) in
  match fields with
  | kind_s :: member_s :: start_s :: dur_s :: rest ->
      let* kind =
        match kind_of_name (String.trim kind_s) with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "unknown event kind %S" kind_s)
      in
      let* member =
        match int_of_string_opt (String.trim member_s) with
        | Some m when m >= 0 -> Ok m
        | _ -> Error (Printf.sprintf "%s: bad member %S" kind_s member_s)
      in
      let num name s =
        match float_of_string_opt (String.trim s) with
        | Some v when v >= 0. -> Ok v
        | _ ->
            Error
              (Printf.sprintf "%s: %s must be a non-negative number, got %S"
                 kind_s name s)
      in
      let* start_us = num "start" start_s in
      let* dur_us = num "dur" dur_s in
      let* param =
        match rest with
        | [] -> Ok (default_param kind)
        | [ p ] -> (
            let* v = num "param" p in
            match kind with
            | Link_drop | Link_corrupt ->
                if v > 1. then
                  Error
                    (Printf.sprintf "%s: rate %g outside [0, 1]" kind_s v)
                else Ok v
            | Link_stall -> Ok v
            | Route_churn ->
                if v <= 0. then
                  Error
                    (Printf.sprintf
                       "route_churn: rate %g must be positive updates/s" v)
                else Ok v
            | Crash -> Error "crash: takes no parameter")
        | _ -> Error (Printf.sprintf "too many fields in %S" item)
      in
      Ok { kind; member; start_us; dur_us; param }
  | _ ->
      Error
        (Printf.sprintf
           "expected kind:member:start_us:dur_us[:param] in %S" item)

let parse spec =
  match String.trim spec with
  | "" | "none" -> Ok zero
  | spec ->
      Result.map
        (fun events -> { seed = 0L; events = List.rev events })
        (List.fold_left
           (fun acc item ->
             Result.bind acc (fun es ->
                 Result.map (fun e -> e :: es) (parse_event item)))
           (Ok [])
           (String.split_on_char ';' spec))

let num v = Printf.sprintf "%g" v

let event_to_spec e =
  let base =
    Printf.sprintf "%s:%d:%s:%s" (kind_name e.kind) e.member (num e.start_us)
      (num e.dur_us)
  in
  if e.param = default_param e.kind then base else base ^ ":" ^ num e.param

let to_spec t =
  match t.events with
  | [] -> "none"
  | es -> String.concat ";" (List.map event_to_spec es)

let pp ppf t = Format.pp_print_string ppf (to_spec t)

let to_json t =
  let open Telemetry.Json in
  Obj
    [
      ("seed", Int (Int64.to_int t.seed));
      ("spec", String (to_spec t));
      ( "events",
        List
          (List.map
             (fun e ->
               Obj
                 [
                   ("kind", String (kind_name e.kind));
                   ("member", Int e.member);
                   ("start_us", Float e.start_us);
                   ("dur_us", Float e.dur_us);
                   ("param", Float e.param);
                 ])
             t.events) );
    ]

(* The canonical scenario matrix: one spec per damage kind plus a
   combined run, shared by the cluster fault-matrix bench, the
   parallel-vs-sequential identity sweep, and the test suite so they
   cannot drift apart. *)
let matrix =
  [
    ("none", "baseline, no faults");
    ("link_drop:1:300:900:0.5", "member 1 fabric link dropping half");
    ("link_corrupt:0:200:1200:0.3", "member 0 fabric link corrupting bytes");
    ("link_stall:2:200:1500:40", "member 2 fabric link +40 us stalls");
    ("crash:3:600:800", "member 3 fail-stop, rejoins at 1.4 ms");
    ("crash:2:800:0", "member 2 fail-stop, never restarts");
    ( "link_drop:0:200:700:0.4;link_stall:1:300:900:30;crash:3:500:600",
      "combined: drops + stalls + a crash" );
    ( "link_stall:1:200:500:40;link_drop:1:700:600:0.6",
      "member 1 uplink stalls, then drops — queue congestion chaser" );
    ( "route_churn:1:200:1200:20000;link_drop:1:400:600:0.5",
      "member 1 route churn while its uplink drops half" );
    ( "route_churn:2:100:1300:20000;crash:2:600:500",
      "member 2 churns its table, crashes mid-churn, rejoins" );
  ]
