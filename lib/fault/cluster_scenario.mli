(** Pure-data description of cluster-level fault scenarios.

    A scenario is a seeded list of timed events against cluster members:
    damage to a member's fabric (uplink) link, or a whole-member
    crash/restart.  The spec grammar is a [;]-separated list of events,
    each [kind:member:start_us:dur_us[:param]]:

    - [link_drop:1:200:600:0.5] — drop each fabric frame crossing member
      1's uplink with probability 0.5 during [200, 800) us.
    - [link_corrupt:0:100:400:0.3] — corrupt frames on member 0's link
      (probability 0.3) during [100, 500) us.
    - [link_stall:2:100:500:40] — add 40 us of latency to frames on
      member 2's link during [100, 600) us.
    - [crash:3:500:400] — member 3 fail-stops at 500 us and rejoins at
      900 us.  A duration of 0 means it never restarts.
    - [route_churn:1:200:800:20000] — member 1's control plane rewrites
      routes (announce/withdraw churn against its live table) at 20000
      updates per simulated second during [200, 1000) us.

    Probabilities default to 1.0, stall to 50 us, churn to 1000
    updates/s.  [dur_us = 0] means the event lasts forever.  Like
    [Fault.Scenario], this module is pure data: all randomness is drawn
    by the cluster from one stream seeded with [seed], so replays are
    deterministic. *)

type kind = Link_drop | Link_corrupt | Link_stall | Crash | Route_churn

type event = {
  kind : kind;
  member : int;
  start_us : float;
  dur_us : float;  (** 0 = lasts forever *)
  param : float;
      (** drop/corrupt probability in [0, 1], or stall latency in us *)
}

type t = { seed : int64; events : event list }

val zero : t
(** No events.  A cluster built with [zero] behaves byte-identically to
    one built with no fault argument at all. *)

val is_zero : t -> bool
val with_seed : t -> int64 -> t

val max_member : t -> int
(** Largest member index named by any event, or [-1] when empty. *)

val parse : string -> (t, string) result
(** Parse a spec string (seed 0; combine with [with_seed]).  [""] and
    ["none"] parse to [zero]. *)

val to_spec : t -> string
(** Inverse of [parse] (modulo whitespace); [zero] prints as ["none"]. *)

val kind_name : kind -> string

(** {1 Schedule queries}

    All pure: what damage is in force for [member]'s fabric link at
    simulated time [at_us]?  Overlapping windows combine — probabilities
    by max, stalls by sum. *)

val drop_rate : t -> member:int -> at_us:float -> float
val corrupt_rate : t -> member:int -> at_us:float -> float
val stall_us : t -> member:int -> at_us:float -> float

val churn_rate : t -> member:int -> at_us:float -> float
(** Route updates per simulated second in force for [member] at
    [at_us] (max over overlapping windows; 0 when idle). *)

val churn_events : t -> member:int -> event list
(** The [Route_churn] windows targeting [member], in spec order — the
    cluster's churn driver walks these directly. *)

val crashed : t -> member:int -> at_us:float -> bool
(** Is a crash window covering [at_us]?  (The member {e should} be
    down.) *)

val member_active : t -> member:int -> at_us:float -> bool
(** Any event (damage or crash) in force against [member] at [at_us]. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Telemetry.Json.t

val matrix : (string * string) list
(** The canonical [(spec, description)] scenario matrix (one entry per
    damage kind plus a combined run, all naming members < 4).  Shared by
    the cluster fault-matrix bench, the parallel-vs-sequential identity
    sweep, and the test suite. *)
