type site =
  | Mem_flip
  | Mem_delay
  | Mem_drop
  | Fifo_flip
  | Mac_corrupt
  | Mac_truncate
  | Mac_garbage
  | Mac_loss
  | Pool_fail
  | Vrp_overrun
  | Rogue_forwarder
  | Sa_crash
  | Pe_crash

let all_sites =
  [
    Mem_flip; Mem_delay; Mem_drop; Fifo_flip; Mac_corrupt; Mac_truncate;
    Mac_garbage; Mac_loss; Pool_fail; Vrp_overrun; Rogue_forwarder; Sa_crash;
    Pe_crash;
  ]

let site_name = function
  | Mem_flip -> "mem_flip"
  | Mem_delay -> "mem_delay"
  | Mem_drop -> "mem_drop"
  | Fifo_flip -> "fifo_flip"
  | Mac_corrupt -> "mac_corrupt"
  | Mac_truncate -> "mac_truncate"
  | Mac_garbage -> "mac_garbage"
  | Mac_loss -> "mac_loss"
  | Pool_fail -> "pool_fail"
  | Vrp_overrun -> "vrp_overrun"
  | Rogue_forwarder -> "rogue"
  | Sa_crash -> "sa_crash"
  | Pe_crash -> "pe_crash"

let site_index = function
  | Mem_flip -> 0
  | Mem_delay -> 1
  | Mem_drop -> 2
  | Fifo_flip -> 3
  | Mac_corrupt -> 4
  | Mac_truncate -> 5
  | Mac_garbage -> 6
  | Mac_loss -> 7
  | Pool_fail -> 8
  | Vrp_overrun -> 9
  | Rogue_forwarder -> 10
  | Sa_crash -> 11
  | Pe_crash -> 12

let n_sites = List.length all_sites

type t = {
  scenario : Scenario.t;
  rng : Sim.Rng.t;
  counts : int array;
  scope : Telemetry.Scope.t option;
  mutable loss_left : int; (* frames remaining in the current loss burst *)
}

let create ?scope scenario =
  let t =
    {
      scenario;
      rng = Sim.Rng.create scenario.Scenario.seed;
      counts = Array.make n_sites 0;
      scope;
      loss_left = 0;
    }
  in
  (match scope with
  | None -> ()
  | Some scope ->
      List.iter
        (fun site ->
          Telemetry.Scope.gauge_int scope
            ("injected_" ^ site_name site)
            (fun () -> t.counts.(site_index site)))
        all_sites);
  t

let scenario t = t.scenario

let rate t = function
  | Mem_flip -> t.scenario.Scenario.mem_flip
  | Mem_delay -> t.scenario.Scenario.mem_delay
  | Mem_drop -> t.scenario.Scenario.mem_drop
  | Fifo_flip -> t.scenario.Scenario.fifo_flip
  | Mac_corrupt -> t.scenario.Scenario.mac_corrupt
  | Mac_truncate -> t.scenario.Scenario.mac_truncate
  | Mac_garbage -> t.scenario.Scenario.mac_garbage
  | Mac_loss -> t.scenario.Scenario.mac_loss
  | Pool_fail -> t.scenario.Scenario.pool_fail
  | Vrp_overrun -> t.scenario.Scenario.vrp_overrun
  | Rogue_forwarder -> t.scenario.Scenario.rogue_forwarder
  | Sa_crash -> t.scenario.Scenario.sa_crash
  | Pe_crash -> t.scenario.Scenario.pe_crash

let record t site =
  t.counts.(site_index site) <- t.counts.(site_index site) + 1;
  match t.scope with
  | None -> ()
  | Some scope -> Telemetry.Scope.event scope ("inject: " ^ site_name site)

let fires t site =
  let r = rate t site in
  (* A zero-rate site consumes no randomness, so enabling one fault kind
     does not shift another kind's decision stream. *)
  if r <= 0. then false
  else if Sim.Rng.float t.rng 1.0 < r then begin
    record t site;
    true
  end
  else false

let mac_frame_lost t =
  if t.loss_left > 0 then begin
    t.loss_left <- t.loss_left - 1;
    record t Mac_loss;
    true
  end
  else if fires t Mac_loss then begin
    t.loss_left <- max 0 (t.scenario.Scenario.mac_burst - 1);
    true
  end
  else false

let draw_int t bound = Sim.Rng.int t.rng bound

let corrupt_frame t f =
  let f = Packet.Frame.copy f in
  let n = 1 + draw_int t 4 in
  for _ = 1 to n do
    Packet.Frame.set_u8 f
      (draw_int t (Packet.Frame.len f))
      (draw_int t 256)
  done;
  f

let truncate_frame t f =
  let f = Packet.Frame.copy f in
  let len = Packet.Frame.len f in
  if len > 15 then f.Packet.Frame.len <- 15 + draw_int t (len - 15);
  f

let garbage_frame t f =
  let len = Packet.Frame.len f in
  let g = Packet.Frame.alloc len in
  for i = 0 to len - 1 do
    Packet.Frame.set_u8 g i (draw_int t 256)
  done;
  g

let count t site = t.counts.(site_index site)
let total t = Array.fold_left ( + ) 0 t.counts

let counts t =
  List.filter_map
    (fun site ->
      let n = count t site in
      if n = 0 then None else Some (site_name site, n))
    all_sites

let to_json t =
  let open Telemetry.Json in
  Obj
    [
      ("scenario", Scenario.to_json t.scenario);
      ("counts", Obj (List.map (fun (k, n) -> (k, Int n)) (counts t)));
      ("total", Int (total t));
    ]

let pp_counts ppf t =
  match counts t with
  | [] -> Format.pp_print_string ppf "no faults injected"
  | cs ->
      Format.fprintf ppf "injected:";
      List.iter (fun (k, n) -> Format.fprintf ppf " %s=%d" k n) cs
