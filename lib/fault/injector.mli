(** The fault plane's runtime: a seed-replayable source of injection
    decisions, shared by every hooked component.

    One injector serves a whole simulated system.  Fault points ask
    {!fires} at each opportunity; a site whose configured rate is zero
    answers [false] without consuming randomness, so scenarios stay
    replayable regardless of which subset of sites is wired in.  All
    decisions draw from one splitmix64 stream seeded by the scenario, and
    the simulation engine interleaves fibers deterministically, so a
    (scenario, seed, workload) triple replays bit-for-bit.

    Components hold an [Injector.t option] and do nothing on [None]: the
    zero-fault path costs one branch. *)

type site =
  | Mem_flip
  | Mem_delay
  | Mem_drop
  | Fifo_flip
  | Mac_corrupt
  | Mac_truncate
  | Mac_garbage
  | Mac_loss
  | Pool_fail
  | Vrp_overrun
  | Rogue_forwarder
  | Sa_crash
  | Pe_crash

val all_sites : site list
val site_name : site -> string

type t

val create : ?scope:Telemetry.Scope.t -> Scenario.t -> t
(** [create scenario] is a fresh injector seeded from [scenario.seed].
    With [scope], every injected fault also records a telemetry event and
    the per-site counters register as gauges. *)

val scenario : t -> Scenario.t

val fires : t -> site -> bool
(** One injection decision; counts the site when it fires.  Never draws
    randomness when the site's rate is zero. *)

val mac_frame_lost : t -> bool
(** Burst-loss decision for one received frame: inside a burst every
    frame is lost; otherwise a fresh burst starts with probability
    [mac_loss] and runs for [mac_burst] frames. *)

val draw_int : t -> int -> int
(** Uniform in [\[0, bound)] from the injection stream — for choosing
    which byte to corrupt, which port a rogue verdict names, ... *)

val corrupt_frame : t -> Packet.Frame.t -> Packet.Frame.t
(** A copy of the frame with 1-4 random bytes overwritten. *)

val truncate_frame : t -> Packet.Frame.t -> Packet.Frame.t
(** A copy of the frame cut to a random length in [\[15, len)] — headers
    now promise more bytes than the wire delivered. *)

val garbage_frame : t -> Packet.Frame.t -> Packet.Frame.t
(** A same-length frame of uniformly random bytes. *)

val count : t -> site -> int
(** Faults injected at a site so far. *)

val total : t -> int
val counts : t -> (string * int) list
(** All sites with a non-zero count, in declaration order. *)

val to_json : t -> Telemetry.Json.t
(** [{scenario, counts}] for bench attachments. *)

val pp_counts : Format.formatter -> t -> unit
