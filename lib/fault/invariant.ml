type violation = { name : string; detail : string; at : int64 }

type t = {
  mutable invariants : (string * (unit -> string option)) list; (* reversed *)
  mutable violations : violation list; (* reversed *)
  mutable checks : int;
  scope : Telemetry.Scope.t option;
  clock : unit -> int64;
}

let create ?scope ?(clock = fun () -> 0L) () =
  let t = { invariants = []; violations = []; checks = 0; scope; clock } in
  (match scope with
  | None -> ()
  | Some scope ->
      Telemetry.Scope.gauge_int scope "violations" (fun () ->
          List.length t.violations);
      Telemetry.Scope.gauge_int scope "checks" (fun () -> t.checks));
  t

let register t name check = t.invariants <- (name, check) :: t.invariants

let check t =
  t.checks <- t.checks + 1;
  let fresh = ref 0 in
  List.iter
    (fun (name, check) ->
      match check () with
      | None -> ()
      | Some detail ->
          incr fresh;
          t.violations <- { name; detail; at = t.clock () } :: t.violations;
          (match t.scope with
          | None -> ()
          | Some scope ->
              Telemetry.Scope.event scope
                (Printf.sprintf "violation: %s: %s" name detail)))
    (List.rev t.invariants);
  !fresh

let checks t = t.checks
let violations t = List.rev t.violations
let ok t = t.violations = []

let pp_report ppf t =
  match violations t with
  | [] ->
      Format.fprintf ppf "invariants: %d registered, %d barriers, all held"
        (List.length t.invariants) t.checks
  | vs ->
      Format.fprintf ppf "invariants: %d violation(s):" (List.length vs);
      List.iter
        (fun v ->
          Format.fprintf ppf "@\n  [%Ld] %s: %s" v.at v.name v.detail)
        vs

let to_json t =
  let open Telemetry.Json in
  Obj
    [
      ("registered", Int (List.length t.invariants));
      ("checks", Int t.checks);
      ( "violations",
        List
          (List.map
             (fun v ->
               Obj
                 [
                   ("name", String v.name);
                   ("detail", String v.detail);
                   ("at", Int (Int64.to_int v.at));
                 ])
             (violations t)) );
    ]
