(** The invariant registry: named router-wide properties audited at
    simulation barriers.

    Each invariant is a closure returning [None] when the property holds
    and [Some detail] when it doesn't.  {!check} evaluates every
    registered invariant and records a {!violation} per failure, stamped
    with the simulated time; the run driver calls it between workload
    phases and once at the end of the run.  Invariants are pure reads of
    component state (pool accounting, queue depths, delivery counters),
    so checking is free for the packet path. *)

type violation = { name : string; detail : string; at : int64 }

type t

val create : ?scope:Telemetry.Scope.t -> ?clock:(unit -> int64) -> unit -> t
(** [create ()] is an empty registry.  With [scope], each violation also
    records a telemetry event; [clock] stamps violations (default
    constant [0L] — pass the engine clock). *)

val register : t -> string -> (unit -> string option) -> unit
(** [register t name check] adds an invariant.  [check] runs at every
    barrier; returning [Some detail] records a violation. *)

val check : t -> int
(** Evaluate every invariant once; the number of {e new} violations. *)

val checks : t -> int
(** Barriers run so far. *)

val violations : t -> violation list
(** All violations recorded, oldest first. *)

val ok : t -> bool

val pp_report : Format.formatter -> t -> unit
(** One line per violation, or a clean-bill one-liner. *)

val to_json : t -> Telemetry.Json.t
