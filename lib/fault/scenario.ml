type t = {
  seed : int64;
  mem_flip : float;
  mem_delay : float;
  mem_delay_cycles : int;
  mem_drop : float;
  fifo_flip : float;
  mac_corrupt : float;
  mac_truncate : float;
  mac_garbage : float;
  mac_loss : float;
  mac_burst : int;
  pool_fail : float;
  vrp_overrun : float;
  rogue_forwarder : float;
  sa_crash : float;
  sa_restart_us : float;
  pe_crash : float;
  pe_restart_us : float;
}

let zero =
  {
    seed = 0L;
    mem_flip = 0.;
    mem_delay = 0.;
    mem_delay_cycles = 100;
    mem_drop = 0.;
    fifo_flip = 0.;
    mac_corrupt = 0.;
    mac_truncate = 0.;
    mac_garbage = 0.;
    mac_loss = 0.;
    mac_burst = 4;
    pool_fail = 0.;
    vrp_overrun = 0.;
    rogue_forwarder = 0.;
    sa_crash = 0.;
    sa_restart_us = 100.;
    pe_crash = 0.;
    pe_restart_us = 100.;
  }

let rates t =
  [
    ("mem_flip", t.mem_flip);
    ("mem_delay", t.mem_delay);
    ("mem_drop", t.mem_drop);
    ("fifo_flip", t.fifo_flip);
    ("mac_corrupt", t.mac_corrupt);
    ("mac_truncate", t.mac_truncate);
    ("mac_garbage", t.mac_garbage);
    ("mac_loss", t.mac_loss);
    ("pool_fail", t.pool_fail);
    ("vrp_overrun", t.vrp_overrun);
    ("rogue", t.rogue_forwarder);
    ("sa_crash", t.sa_crash);
    ("pe_crash", t.pe_crash);
  ]

let is_zero t = List.for_all (fun (_, r) -> r = 0.) (rates t)
let with_seed t seed = { t with seed }

(* The parameter (non-rate) fields, with their defaults, so [to_spec]
   only emits the ones that were changed. *)
let params t =
  [
    ("mem_delay_cycles", float_of_int t.mem_delay_cycles,
     float_of_int zero.mem_delay_cycles);
    ("mac_burst", float_of_int t.mac_burst, float_of_int zero.mac_burst);
    ("sa_restart_us", t.sa_restart_us, zero.sa_restart_us);
    ("pe_restart_us", t.pe_restart_us, zero.pe_restart_us);
  ]

let set t key v =
  let rate r =
    if r < 0. || r > 1. then
      Error (Printf.sprintf "%s: rate %g outside [0, 1]" key r)
    else Ok r
  in
  let posint name r =
    if r < 0. || Float.rem r 1. <> 0. then
      Error (Printf.sprintf "%s: expected a non-negative integer" name)
    else Ok (int_of_float r)
  in
  let pos name r =
    if r < 0. then Error (Printf.sprintf "%s: negative" name) else Ok r
  in
  let ( let* ) = Result.bind in
  match key with
  | "mem_flip" -> let* r = rate v in Ok { t with mem_flip = r }
  | "mem_delay" -> let* r = rate v in Ok { t with mem_delay = r }
  | "mem_delay_cycles" ->
      let* n = posint key v in Ok { t with mem_delay_cycles = n }
  | "mem_drop" -> let* r = rate v in Ok { t with mem_drop = r }
  | "fifo_flip" -> let* r = rate v in Ok { t with fifo_flip = r }
  | "mac_corrupt" -> let* r = rate v in Ok { t with mac_corrupt = r }
  | "mac_truncate" -> let* r = rate v in Ok { t with mac_truncate = r }
  | "mac_garbage" -> let* r = rate v in Ok { t with mac_garbage = r }
  | "mac_loss" -> let* r = rate v in Ok { t with mac_loss = r }
  | "mac_burst" -> let* n = posint key v in Ok { t with mac_burst = n }
  | "pool_fail" -> let* r = rate v in Ok { t with pool_fail = r }
  | "vrp_overrun" -> let* r = rate v in Ok { t with vrp_overrun = r }
  | "rogue" | "rogue_forwarder" ->
      let* r = rate v in Ok { t with rogue_forwarder = r }
  | "sa_crash" -> let* r = rate v in Ok { t with sa_crash = r }
  | "sa_restart_us" -> let* x = pos key v in Ok { t with sa_restart_us = x }
  | "pe_crash" -> let* r = rate v in Ok { t with pe_crash = r }
  | "pe_restart_us" -> let* x = pos key v in Ok { t with pe_restart_us = x }
  | "seed" -> Ok { t with seed = Int64.of_float v }
  | _ -> Error (Printf.sprintf "unknown fault %S" key)

let parse spec =
  match String.trim spec with
  | "" | "none" -> Ok zero
  | spec ->
      List.fold_left
        (fun acc item ->
          Result.bind acc (fun t ->
              match String.index_opt item ':' with
              | None -> Error (Printf.sprintf "expected key:value in %S" item)
              | Some i -> (
                  let key = String.trim (String.sub item 0 i) in
                  let v =
                    String.trim
                      (String.sub item (i + 1) (String.length item - i - 1))
                  in
                  match float_of_string_opt v with
                  | None -> Error (Printf.sprintf "%s: bad value %S" key v)
                  | Some v -> set t key v)))
        (Ok zero)
        (String.split_on_char ',' spec)

let to_spec t =
  let num v =
    (* Shortest exact decimal, so specs stay readable and round-trip. *)
    let s = Printf.sprintf "%.12g" v in
    s
  in
  let fields =
    List.filter_map
      (fun (k, r) -> if r = 0. then None else Some (k ^ ":" ^ num r))
      (rates t)
    @ List.filter_map
        (fun (k, v, dflt) -> if v = dflt then None else Some (k ^ ":" ^ num v))
        (params t)
  in
  match fields with [] -> "none" | fs -> String.concat "," fs

let pp ppf t = Format.pp_print_string ppf (to_spec t)

let to_json t =
  let open Telemetry.Json in
  Obj
    ([ ("seed", Int (Int64.to_int t.seed)); ("spec", String (to_spec t)) ]
    @ List.map (fun (k, r) -> (k, Float r)) (rates t)
    @ List.map (fun (k, v, _) -> (k, Float v)) (params t))
