(** A fault scenario: which faults fire, how often, with what parameters.

    A scenario is pure data — deterministic, comparable, serializable —
    so a failing run can be replayed exactly from its spec string and
    seed.  All rates are per-opportunity probabilities in [0, 1]: a MAC
    fault rate is per received frame, a memory fault rate is per memory
    operation, a crash rate is per service-loop iteration.  {!zero}
    (every rate 0) is the distinguished "faults off" value; the router
    builds no injector for it, so the zero-fault path costs nothing. *)

type t = {
  seed : int64;  (** seeds the injector's RNG stream *)
  mem_flip : float;  (** bit flip per DRAM/SRAM/Scratch operation *)
  mem_delay : float;  (** stalled memory operation *)
  mem_delay_cycles : int;  (** extra latency of a stalled operation *)
  mem_drop : float;  (** memory operation silently dropped *)
  fifo_flip : float;  (** bit flip per FIFO slot load *)
  mac_corrupt : float;  (** received frame has 1-4 bytes corrupted *)
  mac_truncate : float;  (** received frame cut short on the wire *)
  mac_garbage : float;  (** received frame replaced by random bytes *)
  mac_loss : float;  (** start of a burst of lost frames *)
  mac_burst : int;  (** frames lost per loss burst *)
  pool_fail : float;  (** buffer-pool allocation failure *)
  vrp_overrun : float;  (** forwarder exceeding its VRP budget *)
  rogue_forwarder : float;  (** forwarder returning a garbage verdict *)
  sa_crash : float;  (** StrongARM crash-and-restart *)
  sa_restart_us : float;  (** StrongARM reboot time *)
  pe_crash : float;  (** Pentium crash-and-restart *)
  pe_restart_us : float;  (** Pentium reboot time *)
}

val zero : t
(** No faults (seed 0).  The value [Router.create] treats as "injection
    disabled". *)

val is_zero : t -> bool
(** Are all rates zero (parameters ignored)? *)

val with_seed : t -> int64 -> t

val parse : string -> (t, string) result
(** [parse spec] reads a comma-separated [key:value] list, e.g.
    ["mac_corrupt:0.01,pool_fail:0.005,mac_burst:8"].  [""] and ["none"]
    are {!zero}.  Unknown keys, malformed values, rates outside [0, 1]
    and negative parameters are errors. *)

val to_spec : t -> string
(** Canonical spec string (non-zero fields only, sorted); [parse
    (to_spec s)] round-trips everything but the seed.  ["none"] for
    {!zero}.  This is what a failing run prints in its repro command. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Telemetry.Json.t
(** Full record as JSON (seed included), for bench attachments. *)
