(* Tuple-space multi-field classification with a generation-stamped flow
   cache.  See classifier.mli for the design. *)

type action = Accept | Drop | Forward of int | Mark of int

type rule = {
  prio : int;
  src : Packet.Ipv4.addr;
  src_len : int;
  dst : Packet.Ipv4.addr;
  dst_len : int;
  src_port : int option;
  dst_port : int option;
  proto : int option;
  dscp : int option;
  act : action;
}

let mask_addr addr len =
  if len <= 0 then 0l
  else if len >= 32 then addr
  else Int32.logand addr (Int32.shift_left (-1l) (32 - len))

let rule ?(prio = 100) ?(src = (0l, 0)) ?(dst = (0l, 0)) ?src_port ?dst_port
    ?proto ?dscp act =
  let src_addr, src_len = src and dst_addr, dst_len = dst in
  if src_len < 0 || src_len > 32 || dst_len < 0 || dst_len > 32 then
    invalid_arg "Classifier.rule: prefix length";
  {
    prio;
    src = mask_addr src_addr src_len;
    src_len;
    dst = mask_addr dst_addr dst_len;
    dst_len;
    src_port;
    dst_port;
    proto;
    dscp;
    act;
  }

let field_ok opt v = match opt with None -> true | Some x -> x = v

let matches r (k : Packet.Flow.five) =
  mask_addr k.f_src r.src_len = r.src
  && mask_addr k.f_dst r.dst_len = r.dst
  && field_ok r.src_port k.f_src_port
  && field_ok r.dst_port k.f_dst_port
  && field_ok r.proto k.f_proto
  && field_ok r.dscp k.f_dscp

(* Priority, then specificity (total matched bits, more specific first),
   then canonical content — every component is derived from the rule
   itself, so the order has no insertion-sequence ingredient. *)
let specificity r =
  r.src_len + r.dst_len
  + (match r.src_port with Some _ -> 16 | None -> 0)
  + (match r.dst_port with Some _ -> 16 | None -> 0)
  + (match r.proto with Some _ -> 8 | None -> 0)
  + match r.dscp with Some _ -> 6 | None -> 0

let compare_rule (a : rule) (b : rule) =
  let c = compare a.prio b.prio in
  if c <> 0 then c
  else
    let c = compare (specificity b) (specificity a) in
    if c <> 0 then c else Stdlib.compare a b

(* A tuple is one mask combination; its table hashes the masked fields. *)
type tkey = {
  t_src_len : int;
  t_dst_len : int;
  t_sport : bool;
  t_dport : bool;
  t_proto : bool;
  t_dscp : bool;
}

type mkey = {
  m_src : Packet.Ipv4.addr;
  m_dst : Packet.Ipv4.addr;
  m_sport : int;
  m_dport : int;
  m_proto : int;
  m_dscp : int;
}

let tkey_of_rule r =
  {
    t_src_len = r.src_len;
    t_dst_len = r.dst_len;
    t_sport = r.src_port <> None;
    t_dport = r.dst_port <> None;
    t_proto = r.proto <> None;
    t_dscp = r.dscp <> None;
  }

let opt_field b v = if b then v else 0

let mkey_of_rule r =
  {
    m_src = r.src;
    m_dst = r.dst;
    m_sport = (match r.src_port with Some p -> p | None -> 0);
    m_dport = (match r.dst_port with Some p -> p | None -> 0);
    m_proto = (match r.proto with Some p -> p | None -> 0);
    m_dscp = (match r.dscp with Some d -> d | None -> 0);
  }

let mkey_of_five tk (k : Packet.Flow.five) =
  {
    m_src = mask_addr k.f_src tk.t_src_len;
    m_dst = mask_addr k.f_dst tk.t_dst_len;
    m_sport = opt_field tk.t_sport k.f_src_port;
    m_dport = opt_field tk.t_dport k.f_dst_port;
    m_proto = opt_field tk.t_proto k.f_proto;
    m_dscp = opt_field tk.t_dscp k.f_dscp;
  }

type tuple_tbl = {
  tkey : tkey;
  table : (mkey, rule list) Hashtbl.t;  (** buckets sorted by priority *)
  mutable t_rules : int;
  mutable t_min : rule option;  (** best-priority rule in this tuple *)
}

type cache_entry = { ce_gen : int; ce_rule : rule option }

type t = {
  by_tkey : (tkey, tuple_tbl) Hashtbl.t;
  mutable tuples : tuple_tbl list;  (** sorted by (t_min, tkey) *)
  mutable rules : int;
  mutable gen : int;
  cache : (Packet.Flow.five, cache_entry) Hashtbl.t;
  cache_capacity : int;
  (* Batch-span memo: within one context activation (an open
     [Sim.Engine] batch span) bursts are strongly flow-local, so the
     previous frame's decision usually answers the next frame too.  The
     memo is a single (span, key, rule) triple checked before the flow
     cache — a hit skips even the cache's hash probe.  Validity is the
     conjunction of span identity (a real suspension breaks the span, so
     nothing can have interleaved) and generation identity (rule churn
     invalidates it exactly like the cache). *)
  mutable memo_span : int;  (** 0 = memo empty / outside any span *)
  mutable memo_gen : int;
  mutable memo_key : Packet.Flow.five;
  mutable memo_rule : rule option;
  hits : Sim.Stats.Counter.t;
  misses : Sim.Stats.Counter.t;
  flushes : Sim.Stats.Counter.t;
  probe_count : Sim.Stats.Counter.t;
  memo_hits : Sim.Stats.Counter.t;
}

let dummy_five : Packet.Flow.five =
  {
    f_src = 0l;
    f_src_port = 0;
    f_dst = 0l;
    f_dst_port = 0;
    f_proto = 0;
    f_dscp = 0;
  }

let five_eq (a : Packet.Flow.five) (b : Packet.Flow.five) =
  Int32.equal a.f_src b.f_src
  && Int32.equal a.f_dst b.f_dst
  && a.f_src_port = b.f_src_port
  && a.f_dst_port = b.f_dst_port
  && a.f_proto = b.f_proto
  && a.f_dscp = b.f_dscp

let create ?(cache_capacity = 4096) () =
  if cache_capacity < 1 then invalid_arg "Classifier.create: cache_capacity";
  {
    by_tkey = Hashtbl.create 64;
    tuples = [];
    rules = 0;
    gen = 0;
    cache = Hashtbl.create 256;
    cache_capacity;
    memo_span = 0;
    memo_gen = 0;
    memo_key = dummy_five;
    memo_rule = None;
    hits = Sim.Stats.Counter.create "classifier.cache_hit";
    misses = Sim.Stats.Counter.create "classifier.cache_miss";
    flushes = Sim.Stats.Counter.create "classifier.cache_flush";
    probe_count = Sim.Stats.Counter.create "classifier.probes";
    memo_hits = Sim.Stats.Counter.create "classifier.mf_batch_memo_hits";
  }

let compare_tuple a b =
  match (a.t_min, b.t_min) with
  | Some x, Some y ->
      let c = compare_rule x y in
      if c <> 0 then c else Stdlib.compare a.tkey b.tkey
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> Stdlib.compare a.tkey b.tkey

let resort t = t.tuples <- List.sort compare_tuple t.tuples

let bucket_min tbl =
  Hashtbl.fold
    (fun _ rules acc ->
      match (rules, acc) with
      | [], _ -> acc
      | r :: _, None -> Some r
      | r :: _, Some m -> if compare_rule r m < 0 then Some r else acc)
    tbl.table None

let invalidate t = t.gen <- t.gen + 1

let add t r =
  let tk = tkey_of_rule r in
  let tbl =
    match Hashtbl.find_opt t.by_tkey tk with
    | Some tbl -> tbl
    | None ->
        let tbl =
          { tkey = tk; table = Hashtbl.create 16; t_rules = 0; t_min = None }
        in
        Hashtbl.add t.by_tkey tk tbl;
        t.tuples <- tbl :: t.tuples;
        tbl
  in
  let mk = mkey_of_rule r in
  let bucket =
    match Hashtbl.find_opt tbl.table mk with Some b -> b | None -> []
  in
  if not (List.exists (fun x -> compare_rule x r = 0) bucket) then begin
    Hashtbl.replace tbl.table mk
      (List.sort compare_rule (r :: bucket));
    tbl.t_rules <- tbl.t_rules + 1;
    t.rules <- t.rules + 1;
    (match tbl.t_min with
    | Some m when compare_rule m r <= 0 -> ()
    | _ -> tbl.t_min <- Some r);
    resort t;
    invalidate t
  end

let remove t r =
  let tk = tkey_of_rule r in
  match Hashtbl.find_opt t.by_tkey tk with
  | None -> false
  | Some tbl -> (
      let mk = mkey_of_rule r in
      match Hashtbl.find_opt tbl.table mk with
      | None -> false
      | Some bucket ->
          if List.exists (fun x -> compare_rule x r = 0) bucket then begin
            let bucket =
              List.filter (fun x -> compare_rule x r <> 0) bucket
            in
            if bucket = [] then Hashtbl.remove tbl.table mk
            else Hashtbl.replace tbl.table mk bucket;
            tbl.t_rules <- tbl.t_rules - 1;
            t.rules <- t.rules - 1;
            (match tbl.t_min with
            | Some m when compare_rule m r = 0 -> tbl.t_min <- bucket_min tbl
            | _ -> ());
            if tbl.t_rules = 0 then begin
              Hashtbl.remove t.by_tkey tk;
              t.tuples <- List.filter (fun x -> x != tbl) t.tuples
            end;
            resort t;
            invalidate t;
            true
          end
          else false)

let best_in_bucket tbl mk =
  match Hashtbl.find_opt tbl.table mk with
  | None | Some [] -> None
  | Some (r :: _) -> Some r

let search t k =
  (* Tuples are sorted by their best rule, so once [best] beats the next
     tuple's minimum no remaining tuple can improve the answer. *)
  let rec walk best = function
    | [] -> best
    | tbl :: rest -> (
        let prune =
          match (best, tbl.t_min) with
          | Some b, Some m -> compare_rule b m <= 0
          | _, None -> true
          | None, Some _ -> false
        in
        if prune then best
        else begin
          Sim.Stats.Counter.incr t.probe_count;
          match best_in_bucket tbl (mkey_of_five tbl.tkey k) with
          | Some r
            when matches r k
                 && (match best with
                    | None -> true
                    | Some b -> compare_rule r b < 0) ->
              walk (Some r) rest
          | _ -> walk best rest
        end)
  in
  walk None t.tuples

let lookup t k =
  match Hashtbl.find_opt t.cache k with
  | Some e when e.ce_gen = t.gen ->
      Sim.Stats.Counter.incr t.hits;
      e.ce_rule
  | _ ->
      Sim.Stats.Counter.incr t.misses;
      let r = search t k in
      if Hashtbl.length t.cache >= t.cache_capacity then begin
        Hashtbl.reset t.cache;
        Sim.Stats.Counter.incr t.flushes
      end;
      Hashtbl.replace t.cache k { ce_gen = t.gen; ce_rule = r };
      r

let lookup_span t ~span k =
  if
    span <> 0 && span = t.memo_span && t.memo_gen = t.gen
    && five_eq t.memo_key k
  then begin
    Sim.Stats.Counter.incr t.memo_hits;
    t.memo_rule
  end
  else begin
    let r = lookup t k in
    t.memo_span <- span;
    t.memo_gen <- t.gen;
    t.memo_key <- k;
    t.memo_rule <- r;
    r
  end

let lookup_linear t k =
  Hashtbl.fold
    (fun _ tbl acc ->
      Hashtbl.fold
        (fun _ bucket acc ->
          List.fold_left
            (fun acc r ->
              if matches r k then
                match acc with
                | None -> Some r
                | Some b -> if compare_rule r b < 0 then Some r else acc
              else acc)
            acc bucket)
        tbl.table acc)
    t.by_tkey None

let n_rules t = t.rules
let n_tuples t = List.length t.tuples
let cache_hits t = Sim.Stats.Counter.value t.hits
let cache_misses t = Sim.Stats.Counter.value t.misses
let cache_flushes t = Sim.Stats.Counter.value t.flushes
let probes t = Sim.Stats.Counter.value t.probe_count
let batch_memo_hits t = Sim.Stats.Counter.value t.memo_hits

let attach t scope =
  Telemetry.Scope.gauge_int scope "tuples" (fun () -> n_tuples t);
  Telemetry.Scope.gauge_int scope "rules" (fun () -> n_rules t);
  Telemetry.Scope.gauge_int scope "cache_entries" (fun () ->
      Hashtbl.length t.cache);
  Telemetry.Scope.register_counter scope ~name:"cache_hit" t.hits;
  Telemetry.Scope.register_counter scope ~name:"cache_miss" t.misses;
  Telemetry.Scope.register_counter scope ~name:"cache_flush" t.flushes;
  Telemetry.Scope.register_counter scope ~name:"probes" t.probe_count;
  Telemetry.Scope.register_counter scope ~name:"mf_batch_memo_hits" t.memo_hits

let forwarder ?(max_probes = 4) ~(cm : Router.Cost_model.t) t =
  if max_probes < 1 then invalid_arg "Classifier.forwarder: max_probes";
  let code =
    [
      Router.Vrp.Instr (cm.mf_cache_instr + (max_probes * cm.mf_probe_instr));
      Router.Vrp.Hash;
      Router.Vrp.Sram_read (max_probes * cm.mf_probe_sram_bytes);
    ]
  in
  let action ~state:_ frame ~in_port:_ =
    match Packet.Flow.five_of_frame frame with
    | None -> Router.Forwarder.Continue
    | Some k -> (
        (* Inside a batch span consecutive frames of a burst share the
           activation — and usually the flow — so route through the
           span memo.  Outside any span [current_span] is 0 and
           [lookup_span] degrades to plain [lookup]. *)
        let span =
          match Sim.Engine.current_engine () with
          | Some e -> Sim.Engine.current_span e
          | None -> 0
        in
        match lookup_span t ~span k with
        | None | Some { act = Accept; _ } -> Router.Forwarder.Continue
        | Some { act = Drop; _ } -> Router.Forwarder.Drop
        | Some { act = Forward p; _ } -> Router.Forwarder.Forward p
        | Some { act = Mark d; _ } ->
            Packet.Ipv4.set_tos frame (d lsl 2);
            Packet.Ipv4.fill_cksum frame;
            Router.Forwarder.Continue)
  in
  Router.Forwarder.make ~name:"mf-classifier" ~code ~state_bytes:0 action

module Gen = struct
  let prefix_lens = [| 0; 8; 16; 24; 32 |]
  let service_ports = [| 80; 443; 53; 123; 25; 22; 8080; 5060 |]

  let gen_rule ~rng ~n_ports ~forward_share =
    let prefix () =
      (* Addresses live in 10.0.0.0/8 like the test topology's routed
         subnets, so generated rules actually intersect the workloads. *)
      let len = Sim.Rng.pick rng prefix_lens in
      let subnet = Sim.Rng.int rng 256 in
      let host = Sim.Rng.int rng 0x10000 in
      let raw =
        Int32.of_int ((10 lsl 24) lor (subnet lsl 16) lor host)
      in
      (mask_addr raw len, len)
    in
    let opt p v = if Sim.Rng.float rng 1.0 < p then Some (v ()) else None in
    let act =
      let u = Sim.Rng.float rng 1.0 in
      if u < forward_share then Forward (Sim.Rng.int rng n_ports)
      else if u < forward_share +. 0.25 then Drop
      else if u < forward_share +. 0.35 then Mark (Sim.Rng.int rng 64)
      else Accept
    in
    rule
      ~prio:(Sim.Rng.int rng 64)  (* few levels: force tie-breaks *)
      ~src:(prefix ()) ~dst:(prefix ())
      ?src_port:(opt 0.15 (fun () -> 1024 + Sim.Rng.int rng 60000))
      ?dst_port:(opt 0.4 (fun () -> Sim.Rng.pick rng service_ports))
      ?proto:
        (opt 0.3 (fun () ->
             if Sim.Rng.int rng 2 = 0 then Packet.Ipv4.proto_udp
             else Packet.Ipv4.proto_tcp))
      ?dscp:(opt 0.15 (fun () -> Sim.Rng.int rng 8 lsl 3))
      act

  let rules ~rng ~n ?(n_ports = 4) ?(forward_share = 0.25) () =
    let seen = Hashtbl.create (2 * n) in
    let rec grow acc k =
      if k = 0 then acc
      else
        let r = gen_rule ~rng ~n_ports ~forward_share in
        if Hashtbl.mem seen r then grow acc k
        else begin
          Hashtbl.add seen r ();
          grow (r :: acc) (k - 1)
        end
    in
    grow [] n
end
