(** Multi-field packet classification: tuple-space search over 5-tuple +
    DSCP rules, with a Zipf-friendly flow cache in front.

    A {e rule} matches on source/destination prefixes and optional exact
    ports, protocol and DSCP; the highest-priority (lowest [prio]) match
    wins.  Rules whose fields are masked identically form a {e tuple}
    (Srinivasan et al.'s tuple-space search): each tuple is one hash
    table keyed by the masked field values, so a lookup probes one table
    per {e distinct mask combination} instead of one per rule.  Tuples
    are probed in ascending best-priority order and the search stops as
    soon as the best match found so far beats every remaining tuple —
    the pruning that keeps a cache miss near O(tuples), not O(rules).

    In front of the tuple walk sits an exact-match {e flow cache}:
    Zipf-skewed traffic concentrates on few flows, so most packets hit
    one hash probe.  Cache entries are stamped with the table's
    generation counter and every rule add/remove bumps it, so a stale
    answer can never be served across churn (the staleness audit in the
    test battery proves this at 10k ops).

    Decisions are priority-stable under insertion order: ties on [prio]
    break on canonical rule content, never on arrival sequence. *)

type action =
  | Accept  (** admit; continue down the forwarder chain to routing *)
  | Drop
  | Forward of int  (** steer to an output port, bypassing the FIB *)
  | Mark of int  (** rewrite the DSCP, then continue *)

type rule = {
  prio : int;  (** smaller wins *)
  src : Packet.Ipv4.addr;
  src_len : int;  (** prefix length 0..32; 0 = wildcard *)
  dst : Packet.Ipv4.addr;
  dst_len : int;
  src_port : int option;  (** [None] = wildcard *)
  dst_port : int option;
  proto : int option;
  dscp : int option;
  act : action;
}

val rule :
  ?prio:int ->
  ?src:Packet.Ipv4.addr * int ->
  ?dst:Packet.Ipv4.addr * int ->
  ?src_port:int ->
  ?dst_port:int ->
  ?proto:int ->
  ?dscp:int ->
  action ->
  rule
(** Constructor with every field defaulting to wildcard and [prio] to
    100.  Prefix addresses are canonicalized (host bits cleared). *)

val matches : rule -> Packet.Flow.five -> bool
(** Field-by-field match — the definition the differential oracle uses. *)

val compare_rule : rule -> rule -> int
(** Priority order: [prio] first, then specificity (total matched bits,
    more specific wins a priority tie), then canonical rule content —
    so the winner is independent of insertion order. *)

type t

val create : ?cache_capacity:int -> unit -> t
(** An empty classifier.  [cache_capacity] (default 4096) bounds the
    flow cache; exceeding it flushes (counted, never wrong). *)

val add : t -> rule -> unit
(** Insert a rule (idempotent: re-adding an identical rule is a no-op).
    Invalidates the flow cache by generation bump. *)

val remove : t -> rule -> bool
(** Remove a rule matching exactly (same canonical content); [false] if
    absent.  Invalidates the flow cache. *)

val lookup : t -> Packet.Flow.five -> rule option
(** The winning rule via flow cache + pruned tuple walk, or [None] when
    nothing matches. *)

val lookup_span : t -> span:int -> Packet.Flow.five -> rule option
(** {!lookup} behind a one-entry batch-span memo: when [span] is nonzero
    and equals the span of the previous call with the same key (and the
    rule set has not churned), the previous answer is returned without
    touching the flow cache.  Bursts inside one context activation are
    strongly flow-local, so the memo absorbs most of a burst after its
    first frame.  Pass [Sim.Engine.current_span]; [span = 0] (outside
    any batch span) bypasses the memo entirely. *)

val lookup_linear : t -> Packet.Flow.five -> rule option
(** The naive oracle: scan every installed rule, keep the best by
    {!compare_rule}.  Exists so the differential battery can compare the
    tuple-space answer against an independent implementation. *)

val n_rules : t -> int
val n_tuples : t -> int

val cache_hits : t -> int
val cache_misses : t -> int
val cache_flushes : t -> int

val probes : t -> int
(** Cumulative tuple-table probes across all cache-miss lookups — the
    pruning effectiveness measure ([probes / cache_misses] = average
    tuples touched per miss). *)

val batch_memo_hits : t -> int
(** Lookups answered by the batch-span memo ({!lookup_span}) without
    touching the flow cache. *)

val attach : t -> Telemetry.Scope.t -> unit
(** Register gauges ([tuples], [rules], [cache_entries]) and counters
    ([cache_hit], [cache_miss], [cache_flush], [probes],
    [mf_batch_memo_hits]) under a scope. *)

val forwarder :
  ?max_probes:int -> cm:Router.Cost_model.t -> t -> Router.Forwarder.t
(** A general (match-all) forwarder running {!lookup} on every packet.
    Declared VRP cost: the flow-cache probe ([mf_cache_instr] + one
    hash) plus [max_probes] (default 4) worst-case tuple probes at
    [mf_probe_instr] instructions and [mf_probe_sram_bytes] of rule
    fetch each — so admission control sees (and charges) the configured
    probe ceiling, and an oversized [max_probes] is refused against
    {!Router.Vrp.prototype_budget} like any other over-budget forwarder.
    Verdicts: no match or [Accept] continue the chain, [Drop] drops,
    [Forward p] steers, [Mark d] rewrites DSCP (checksum fixed) and
    continues.  Non-IP/fragmented frames continue unclassified. *)

(** Seeded realistic rule sets for tests and benches. *)
module Gen : sig
  val rules :
    rng:Sim.Rng.t ->
    n:int ->
    ?n_ports:int ->
    ?forward_share:float ->
    unit ->
    rule list
  (** [n] distinct rules with Internet-flavoured shape: prefix lengths
      drawn from {0, 8, 16, 24, 32}, service-port and protocol fields
      wildcarded more often than exact, a few DSCP matchers, priorities
      with deliberate collisions (to exercise the canonical tie-break).
      [Forward] targets are drawn below [n_ports] (default 4);
      [forward_share] (default 0.25) is the fraction of rules that
      steer — set it to [0.] for delivery-digest runs where steering
      would bypass the FIB. *)
end
