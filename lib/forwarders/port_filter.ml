let dst_port frame =
  let proto = Packet.Ipv4.get_proto frame in
  if proto = Packet.Ipv4.proto_tcp then Some (Packet.Tcp.get_dst_port frame)
  else if proto = Packet.Ipv4.proto_udp then
    Some (Packet.Udp.get_dst_port frame)
  else None

let action ~state frame ~in_port:_ =
  match dst_port frame with
  | None -> Router.Forwarder.Continue
  | Some port ->
      let rec blocked slot =
        if slot >= 5 then false
        else begin
          let lo = Fstate.get_u16 state (4 * slot) in
          let hi = Fstate.get_u16 state ((4 * slot) + 2) in
          ((lo lor hi) <> 0 && port >= lo && port <= hi) || blocked (slot + 1)
        end
      in
      if blocked 0 then Router.Forwarder.Drop else Router.Forwarder.Continue

(* Native batch form: decode the five filter ranges once per burst
   instead of once per frame.  The filter state is read-only with
   respect to the data path, so hoisting the range loads out of the
   per-frame loop is observationally identical to [action] per frame. *)
let batch ~state frames ~n ~in_port:_ ~verdicts =
  let ranges = Array.make 5 (0, 0) in
  for slot = 0 to 4 do
    ranges.(slot) <-
      (Fstate.get_u16 state (4 * slot), Fstate.get_u16 state ((4 * slot) + 2))
  done;
  for i = 0 to n - 1 do
    verdicts.(i) <-
      (match dst_port frames.(i) with
      | None -> Router.Forwarder.Continue
      | Some port ->
          let rec blocked slot =
            if slot >= 5 then false
            else
              let lo, hi = ranges.(slot) in
              ((lo lor hi) <> 0 && port >= lo && port <= hi)
              || blocked (slot + 1)
          in
          if blocked 0 then Router.Forwarder.Drop
          else Router.Forwarder.Continue)
  done

let forwarder =
  Router.Forwarder.make ~name:"port-filter"
    ~code:[ Router.Vrp.Instr 26; Router.Vrp.Sram_read 20 ]
    ~state_bytes:20 ~batch action

let set_range state ~slot ~lo ~hi =
  if slot < 0 || slot > 4 then invalid_arg "Port_filter.set_range: slot";
  if lo < 0 || hi > 0xFFFF || lo > hi then
    invalid_arg "Port_filter.set_range: range";
  Fstate.set_u16 state (4 * slot) lo;
  Fstate.set_u16 state ((4 * slot) + 2) hi

let clear state = Bytes.fill state 0 (Bytes.length state) '\000'
