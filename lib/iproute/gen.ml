let length_distribution =
  [
    (8, 0.002);
    (12, 0.005);
    (14, 0.01);
    (16, 0.10);
    (18, 0.04);
    (19, 0.06);
    (20, 0.08);
    (21, 0.07);
    (22, 0.11);
    (23, 0.09);
    (24, 0.54);
  ]

let pick_length rng =
  let x = Sim.Rng.float rng 1.0 in
  let rec go acc = function
    | [] -> 24
    | (len, w) :: rest -> if x < acc +. w then len else go (acc +. w) rest
  in
  go 0. length_distribution

let table ~rng ~n ~n_ports =
  if n <= 0 || n_ports <= 0 then invalid_arg "Gen.table";
  let seen = Hashtbl.create (2 * n) in
  let rec fresh () =
    let p = Prefix.make (Sim.Rng.int32 rng) (pick_length rng) in
    if Hashtbl.mem seen p then fresh ()
    else begin
      Hashtbl.replace seen p ();
      p
    end
  in
  (Prefix.default, 0)
  :: List.init (n - 1) (fun _ -> (fresh (), Sim.Rng.int rng n_ports))

let u32 a = Int32.to_int a land 0xFFFFFFFF

let bgp_table ~rng ~n ~n_ports =
  if n <= 0 || n_ports <= 0 then invalid_arg "Gen.bgp_table";
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n (Prefix.default, 0) in
  Hashtbl.replace seen Prefix.default ();
  (* Provider aggregates: most announcements are more-specifics punched
     into a modest number of short blocks, which is what gives real
     tables their deep nesting (and a trie its shared paths). *)
  let n_blocks = max 1 (n / 512) in
  let blocks =
    Array.init n_blocks (fun _ ->
        Prefix.make (Sim.Rng.int32 rng) (8 + Sim.Rng.int rng 5))
  in
  let idx = ref 1 in
  let emit p =
    if not (Hashtbl.mem seen p) && !idx < n then begin
      Hashtbl.replace seen p ();
      out.(!idx) <- (p, Sim.Rng.int rng n_ports);
      incr idx;
      true
    end
    else false
  in
  Array.iter (fun b -> ignore (emit b)) blocks;
  let misses = ref 0 in
  while !idx < n do
    let b = blocks.(Sim.Rng.int rng n_blocks) in
    let blen = Prefix.length b in
    let len = pick_length rng in
    let p =
      if len <= blen || !misses > 64 then
        (* flat announcement outside any aggregate; also the escape
           hatch when a small table saturates its blocks *)
        Prefix.make (Sim.Rng.int32 rng) len
      else
        let bits = Sim.Rng.int rng (1 lsl (len - blen)) in
        Prefix.make
          (Int32.of_int (u32 (Prefix.addr b) lor (bits lsl (32 - len))))
          len
    in
    if emit p then misses := 0 else incr misses
  done;
  out

type op = Announce of Prefix.t * int | Withdraw of Prefix.t

let churn ~rng ~base ~n_ports ~steps =
  let nb = Array.length base in
  if nb < 2 || n_ports <= 0 || steps < 0 then invalid_arg "Gen.churn";
  let flapped = ref [] in
  let n_flapped = ref 0 in
  Array.init steps (fun _ ->
      let x = Sim.Rng.float rng 1.0 in
      match !flapped with
      | p :: rest when x < 0.45 ->
          (* a flapped route comes back, often via a different port *)
          flapped := rest;
          decr n_flapped;
          Announce (p, Sim.Rng.int rng n_ports)
      | _ ->
          if x < 0.85 then begin
            (* withdraw a random non-default entry *)
            let p, _ = base.(1 + Sim.Rng.int rng (nb - 1)) in
            if !n_flapped < 4096 then begin
              flapped := p :: !flapped;
              incr n_flapped
            end;
            Withdraw p
          end
          else
            (* punch a brand-new more-specific (down to /32 hosts)
               into an existing entry *)
            let p, _ = base.(Sim.Rng.int rng nb) in
            let len = min 32 (Prefix.length p + 1 + Sim.Rng.int rng 9) in
            let extra = len - Prefix.length p in
            let bits = Sim.Rng.int rng (1 lsl min 30 extra) in
            let addr =
              Int32.of_int (u32 (Prefix.addr p) lor (bits lsl (32 - len)))
            in
            Announce (Prefix.make addr len, Sim.Rng.int rng n_ports))

let hit_addr ~rng arr =
  let p, _ = Sim.Rng.pick rng arr in
  let host_bits = 32 - Prefix.length p in
  let noise =
    if host_bits = 0 then 0l
    else Int32.of_int (Sim.Rng.int rng (1 lsl min 30 host_bits))
  in
  Int32.logor (Prefix.addr p) noise

let matching_addr ~rng bindings =
  let arr = Array.of_list bindings in
  let p, _ = Sim.Rng.pick rng arr in
  let host_bits = 32 - Prefix.length p in
  let noise =
    if host_bits = 0 then 0l
    else
      Int32.of_int (Sim.Rng.int rng (1 lsl min 30 host_bits))
  in
  Int32.logor (Prefix.addr p) noise
