(** Synthetic routing tables with Internet-like shape.

    Real BGP tables are dominated by /24s, with heavy /16 and /19-/22
    populations, a few very short prefixes and essentially nothing longer
    than /24 — the distribution the controlled-prefix-expansion stride DP
    optimizes for.  This generator reproduces that shape deterministically
    from a seed, for lookup benchmarks and stride-selection tests. *)

val length_distribution : (int * float) list
(** [(prefix_length, weight)] pairs approximating a backbone table. *)

val table : rng:Sim.Rng.t -> n:int -> n_ports:int -> (Prefix.t * int) list
(** [table ~rng ~n ~n_ports] is [n] distinct prefixes with next-hop port
    values in [0, n_ports), Internet-like length mix, plus a default
    route. *)

val matching_addr : rng:Sim.Rng.t -> (Prefix.t * 'a) list -> Packet.Ipv4.addr
(** An address covered by a random table entry (a "hit" workload, vs
    uniformly random addresses that mostly fall to the default route). *)

val bgp_table :
  rng:Sim.Rng.t -> n:int -> n_ports:int -> (Prefix.t * int) array
(** [bgp_table ~rng ~n ~n_ports] is a BGP-table-shaped route set sized
    for millions of entries: ~[n]/512 short provider aggregates
    (/8–/12) with the bulk of the table punched into them as nested
    more-specifics following {!length_distribution}, plus flat
    announcements and a default route at index 0.  Distinct prefixes,
    deterministic from [rng], O(n). *)

type op =
  | Announce of Prefix.t * int  (** install/replace prefix via port *)
  | Withdraw of Prefix.t

val churn :
  rng:Sim.Rng.t ->
  base:(Prefix.t * int) array ->
  n_ports:int ->
  steps:int ->
  op array
(** A deterministic announce/withdraw stream over [base], shaped like
    RIP/BGP churn: ~45% re-announcements of previously flapped routes
    (often via a new port), ~40% withdrawals of random entries, ~15%
    brand-new more-specifics down to /32 hosts.  Never touches the
    default route. *)

val hit_addr : rng:Sim.Rng.t -> (Prefix.t * 'a) array -> Packet.Ipv4.addr
(** {!matching_addr} over an array — no O(n) conversion per draw, which
    matters when sampling a million-route table. *)
