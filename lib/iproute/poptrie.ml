(* Stride-6 compressed multibit trie (Poptrie / Tree-Bitmap family).

   Each node covers 6 address bits.  Prefixes whose length falls inside
   the node (relative length r = 0..5) live in the internal bitmap
   [ibm]: the prefix's top r chunk bits c give heap position
   pos = 2^r + (c >> (6-r)), numbered 1..63 and stored at bit (pos-1),
   so the whole internal set fits one 63-bit OCaml int.  Children hang
   off the external bitmap, one bit per 6-bit chunk value; 64 bits do
   not fit a native int, so it is split into [elo] (chunks 0..31) and
   [ehi] (chunks 32..63).  Values and children are packed into dense
   arrays ordered by bitmap rank — popcount of the bits below the one of
   interest indexes straight into the array, which is what keeps a
   million-route table at a few words per route.

   A lookup walks at most ceil(32/6) = 6 nodes.  At each node one
   precomputed mask ANDed with [ibm] yields every internal prefix
   matching the address at once; the most significant surviving bit is
   the longest.  The walk remembers the deepest node with a non-empty
   intersection and only materializes the winning entry at the end.

   Direct pointing: the top [jump_bits] address bits index a lazily
   filled jump table that replays the skipped stride levels once per
   slot, caching the node at depth [jump_bits] (if any) and the
   resolved best match among the shallower levels.  Every add/remove
   clears the slots its prefix covers — one slot when the prefix is at
   least [jump_bits] long, a power-of-two range otherwise — so a slot
   can never go stale; it refills on the next lookup through it. *)

type 'a node = {
  mutable ibm : int; (* internal prefixes, heap positions 1..63 *)
  mutable ivals : 'a array; (* rank-ordered values for ibm's bits *)
  mutable elo : int; (* children bitmap, chunks 0..31 *)
  mutable ehi : int; (* children bitmap, chunks 32..63 *)
  mutable children : 'a node array; (* rank-ordered *)
}

type 'a jslot =
  | Unset
  | Jump of { jnode : 'a node option; jbest : (Prefix.t * 'a) option }

type 'a t = {
  root : 'a node;
  mutable count : int;
  jump : 'a jslot array;
}

(* Must sit on the stride grid: the cached node lives at this depth. *)
let jump_bits = 18

(* 16-bit-table popcount: OCaml has no popcnt primitive and a 64-bit
   SWAR constant overflows the 63-bit native int. *)
let pc16 =
  let b = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec cnt x acc = if x = 0 then acc else cnt (x lsr 1) (acc + (x land 1)) in
    Bytes.unsafe_set b i (Char.unsafe_chr (cnt i 0))
  done;
  b

let pc x =
  Char.code (Bytes.unsafe_get pc16 (x land 0xFFFF))
  + Char.code (Bytes.unsafe_get pc16 ((x lsr 16) land 0xFFFF))
  + Char.code (Bytes.unsafe_get pc16 ((x lsr 32) land 0xFFFF))
  + Char.code (Bytes.unsafe_get pc16 (x lsr 48))

(* The child bitmaps are 32 bits wide, so two table probes suffice. *)
let pc32 x =
  Char.code (Bytes.unsafe_get pc16 (x land 0xFFFF))
  + Char.code (Bytes.unsafe_get pc16 (x lsr 16))

(* Index of the highest set bit; requires x > 0. *)
let msb x =
  let r = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then (
    r := !r + 32;
    x := !x lsr 32);
  if !x lsr 16 <> 0 then (
    r := !r + 16;
    x := !x lsr 16);
  if !x lsr 8 <> 0 then (
    r := !r + 8;
    x := !x lsr 8);
  if !x lsr 4 <> 0 then (
    r := !r + 4;
    x := !x lsr 4);
  if !x lsr 2 <> 0 then (
    r := !r + 2;
    x := !x lsr 2);
  if !x lsr 1 <> 0 then incr r;
  !r

(* match_masks.(c) has a bit at every heap position whose prefix covers
   chunk value c: positions 2^r + (c >> (6-r)) for r = 0..5. *)
let match_masks =
  Array.init 64 (fun c ->
      let m = ref 0 in
      for r = 0 to 5 do
        let pos = (1 lsl r) lor (c lsr (6 - r)) in
        m := !m lor (1 lsl (pos - 1))
      done;
      !m)

let u32 a = Int32.to_int a land 0xFFFFFFFF

(* The 6 address bits starting at depth d, MSB-first.  Depths past 26
   shift the address up so the final partial chunk is left-aligned with
   zero fill, matching how canonical prefixes clear host bits. *)
let chunk u d = if d <= 26 then (u lsr (26 - d)) land 63 else (u lsl (d - 26)) land 63

let empty_node () = { ibm = 0; ivals = [||]; elo = 0; ehi = 0; children = [||] }

let create () =
  {
    root = empty_node ();
    count = 0;
    jump = Array.make (1 lsl jump_bits) Unset;
  }

let is_empty t = t.count = 0
let size t = t.count

let has_child n i =
  if i < 32 then n.elo land (1 lsl i) <> 0 else n.ehi land (1 lsl (i - 32)) <> 0

(* Rank of child i: how many children precede it in the packed array. *)
let child_rank n i =
  if i < 32 then pc32 (n.elo land ((1 lsl i) - 1))
  else pc32 n.elo + pc32 (n.ehi land ((1 lsl (i - 32)) - 1))

(* Drop every jump slot the prefix covers.  Canonical prefixes have
   zero host bits, so the first covered slot is just the shifted
   address. *)
let invalidate t p =
  let len = Prefix.length p in
  let base = u32 (Prefix.addr p) lsr (32 - jump_bits) in
  if len >= jump_bits then t.jump.(base) <- Unset
  else
    for i = base to base + (1 lsl (jump_bits - len)) - 1 do
      t.jump.(i) <- Unset
    done

let arr_insert a i v =
  let n = Array.length a in
  let b = Array.make (n + 1) v in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let arr_remove a i =
  let n = Array.length a in
  if n = 1 then [||]
  else begin
    let b = Array.make (n - 1) a.(0) in
    Array.blit a 0 b 0 i;
    Array.blit a (i + 1) b i (n - 1 - i);
    b
  end

let add t p v =
  invalidate t p;
  let u = u32 (Prefix.addr p) and len = Prefix.length p in
  let rec go node d =
    if len - d < 6 then begin
      let r = len - d in
      let pos = (1 lsl r) lor (chunk u d lsr (6 - r)) in
      let bit = 1 lsl (pos - 1) in
      let rank = pc (node.ibm land (bit - 1)) in
      if node.ibm land bit <> 0 then node.ivals.(rank) <- v
      else begin
        node.ibm <- node.ibm lor bit;
        node.ivals <- arr_insert node.ivals rank v;
        t.count <- t.count + 1
      end
    end
    else begin
      let i = chunk u d in
      let child =
        if has_child node i then node.children.(child_rank node i)
        else begin
          let ch = empty_node () in
          node.children <- arr_insert node.children (child_rank node i) ch;
          if i < 32 then node.elo <- node.elo lor (1 lsl i)
          else node.ehi <- node.ehi lor (1 lsl (i - 32));
          ch
        end
      in
      go child (d + 6)
    end
  in
  go t.root 0

let remove t p =
  invalidate t p;
  let u = u32 (Prefix.addr p) and len = Prefix.length p in
  let rec go node d =
    if len - d < 6 then begin
      let r = len - d in
      let pos = (1 lsl r) lor (chunk u d lsr (6 - r)) in
      let bit = 1 lsl (pos - 1) in
      if node.ibm land bit = 0 then false
      else begin
        let rank = pc (node.ibm land (bit - 1)) in
        node.ibm <- node.ibm lxor bit;
        node.ivals <- arr_remove node.ivals rank;
        t.count <- t.count - 1;
        true
      end
    end
    else begin
      let i = chunk u d in
      if not (has_child node i) then false
      else begin
        let rank = child_rank node i in
        let ch = node.children.(rank) in
        let removed = go ch (d + 6) in
        (if removed && ch.ibm = 0 && ch.elo = 0 && ch.ehi = 0 then begin
           node.children <- arr_remove node.children rank;
           if i < 32 then node.elo <- node.elo lxor (1 lsl i)
           else node.ehi <- node.ehi lxor (1 lsl (i - 32))
         end);
        removed
      end
    end
  in
  ignore (go t.root 0)

let find t p =
  let u = u32 (Prefix.addr p) and len = Prefix.length p in
  let rec go node d =
    if len - d < 6 then begin
      let r = len - d in
      let pos = (1 lsl r) lor (chunk u d lsr (6 - r)) in
      let bit = 1 lsl (pos - 1) in
      if node.ibm land bit = 0 then None
      else Some node.ivals.(pc (node.ibm land (bit - 1)))
    end
    else
      let i = chunk u d in
      if has_child node i then go node.children.(child_rank node i) (d + 6)
      else None
  in
  go t.root 0

(* Heap positions grow with relative length, so the most significant
   surviving bit of the intersection is the longest match in the node. *)
let resolve a best_node best_hits best_d =
  let pos = 1 + msb best_hits in
  let r = msb pos in
  let rank = pc (best_node.ibm land ((1 lsl (pos - 1)) - 1)) in
  Some (Prefix.make a (best_d + r), Array.unsafe_get best_node.ivals rank)

(* Replay the levels above [jump_bits] for one slot.  The cached best
   match has length < jump_bits, so it only depends on address bits the
   whole slot shares. *)
let fill t a u =
  let rec go node d best_node best_hits best_d =
    let c = chunk u d in
    let hits = node.ibm land Array.unsafe_get match_masks c in
    let best_node, best_hits, best_d =
      if hits <> 0 then (node, hits, d) else (best_node, best_hits, best_d)
    in
    let jbest () =
      if best_hits = 0 then None else resolve a best_node best_hits best_d
    in
    if d + 6 = jump_bits then
      let jnode =
        if has_child node c then
          Some (Array.unsafe_get node.children (child_rank node c))
        else None
      in
      Jump { jnode; jbest = jbest () }
    else if has_child node c then
      go
        (Array.unsafe_get node.children (child_rank node c))
        (d + 6) best_node best_hits best_d
    else Jump { jnode = None; jbest = jbest () }
  in
  go t.root 0 t.root 0 0

let lookup t a =
  let u = u32 a in
  let j = u lsr (32 - jump_bits) in
  let s =
    match Array.unsafe_get t.jump j with
    | Unset ->
        let s = fill t a u in
        Array.unsafe_set t.jump j s;
        s
    | s -> s
  in
  match s with
  | Unset -> None (* unreachable: fill never returns Unset *)
  | Jump { jnode = None; jbest } -> jbest
  | Jump { jnode = Some n; jbest } ->
      let rec go node d best_node best_hits best_d =
        let c = chunk u d in
        let hits = node.ibm land Array.unsafe_get match_masks c in
        (* Deeper matches beat shallower ones, so any non-empty
           intersection supersedes the best seen so far. *)
        let best_node, best_hits, best_d =
          if hits <> 0 then (node, hits, d) else (best_node, best_hits, best_d)
        in
        if has_child node c then
          go
            (Array.unsafe_get node.children (child_rank node c))
            (d + 6) best_node best_hits best_d
        else if best_hits = 0 then jbest
        else resolve a best_node best_hits best_d
      in
      go n jump_bits n 0 0

let bindings t =
  let acc = ref [] in
  let rec go node d path =
    let ib = ref node.ibm in
    while !ib <> 0 do
      let bitpos = msb !ib in
      ib := !ib lxor (1 lsl bitpos);
      let pos = bitpos + 1 in
      let r = msb pos in
      let bits = pos - (1 lsl r) in
      let len = d + r in
      let addr = if len = 0 then 0 else path lor (bits lsl (32 - len)) in
      let rank = pc (node.ibm land ((1 lsl bitpos) - 1)) in
      acc := (Prefix.make (Int32.of_int addr) len, node.ivals.(rank)) :: !acc
    done;
    for i = 0 to 63 do
      if has_child node i then
        go node.children.(child_rank node i) (d + 6) (path lor (i lsl (26 - d)))
    done
  in
  go t.root 0 0;
  !acc

let node_count t =
  let rec go n = Array.fold_left (fun a c -> a + go c) 1 n.children in
  go t.root

let memory_words t =
  (* 5 fields + header per node, plus the two packed arrays, plus the
     direct-pointing jump table (its lazily-built slot records are
     bounded by the table length and counted as one word each). *)
  let rec go n =
    Array.fold_left
      (fun a c -> a + go c)
      (6 + Array.length n.ivals + Array.length n.children)
      n.children
  in
  go t.root + (2 * Array.length t.jump)

let depth t a =
  let u = u32 a in
  let rec go node d steps =
    let c = chunk u d in
    if has_child node c then go node.children.(child_rank node c) (d + 6) (steps + 1)
    else steps
  in
  go t.root 0 1
