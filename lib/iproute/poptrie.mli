(** Compressed multibit-trie FIB for internet-scale tables.

    A stride-6 multibit trie in the Poptrie/Tree-Bitmap family: each
    node covers 6 address bits and holds two bitmaps — an {e internal}
    bitmap of the 63 heap-numbered prefixes ending inside the node
    (lengths [depth .. depth+5]) and an {e external} bitmap of its up to
    64 children — with the values and children packed into dense arrays
    indexed by popcount rank.  A lookup is at most 6 node visits, each a
    table-driven bitmap intersection plus one popcount, against the
    reference {!Btrie}'s 32 pointer chases; a million-route table fits
    in a few hundred thousand nodes.

    Updates are incremental: an add or remove touches only the nodes on
    the prefix's path (splicing one rank-compressed array per level),
    never rebuilding the structure — the property that makes continuous
    RIP announce/withdraw churn affordable, where {!Cpe.remove} rebuilds
    the whole table.  The structure is mutable, like {!Cpe}.

    Correctness at scale is established differentially: the qcheck suite
    and the million-route battery in [test/test_iproute.ml] check
    [lookup]/[find]/[size]/[bindings] equivalence against {!Btrie} under
    random add/remove/lookup interleavings, and `bench fib` replays
    seeded churn against both engines. *)

type 'a t

val create : unit -> 'a t
(** An empty table. *)

val is_empty : 'a t -> bool

val add : 'a t -> Prefix.t -> 'a -> unit
(** [add t p v] binds [p] to [v], replacing any previous binding.
    Touches only the [length p / 6 + 1] nodes on [p]'s path. *)

val remove : 'a t -> Prefix.t -> unit
(** Drop the exact prefix [p] (no-op if absent); empty nodes on the
    path are pruned. *)

val find : 'a t -> Prefix.t -> 'a option
(** Exact-prefix lookup. *)

val lookup : 'a t -> Packet.Ipv4.addr -> (Prefix.t * 'a) option
(** [lookup t a] is the longest prefix in [t] matching [a]. *)

val bindings : 'a t -> (Prefix.t * 'a) list
(** All bindings, order unspecified. *)

val size : 'a t -> int
(** Number of stored prefixes (O(1)). *)

val node_count : 'a t -> int
(** Allocated trie nodes (memory-cost comparison against {!Btrie} and
    {!Cpe.memory_entries}). *)

val memory_words : 'a t -> int
(** Approximate heap words held by the structure: per-node overhead plus
    the rank-compressed value and child arrays. *)

val depth : 'a t -> Packet.Ipv4.addr -> int
(** Nodes inspected by [lookup] for this address (at most 6). *)
