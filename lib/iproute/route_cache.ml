type 'a t = {
  hash : Packet.Ipv4.addr -> int;
  lines : (Packet.Ipv4.addr * 'a) option array;
  mutable hits : int;
  mutable misses : int;
  mutable scan_cost : int;
}

let default_hash a =
  (* Full-avalanche mix (the IXP1200's hash unit is CRC-like): line
     selection takes the hash modulo the slot count, so the high address
     bits must reach the low hash bits. *)
  let x = Int32.to_int a land 0xFFFFFFFF in
  let x = x * 0x9E3779B1 in
  let x = x lxor (x lsr 16) in
  let x = x * 0x85EBCA6B in
  let x = x lxor (x lsr 13) in
  x land max_int

let create ?(hash = default_hash) ~slots () =
  if slots <= 0 then invalid_arg "Route_cache.create: slots <= 0";
  { hash; lines = Array.make slots None; hits = 0; misses = 0; scan_cost = 0 }

let line c a = c.hash a mod Array.length c.lines

let find c a =
  match c.lines.(line c a) with
  | Some (key, v) when key = a ->
      c.hits <- c.hits + 1;
      Some v
  | Some _ | None ->
      c.misses <- c.misses + 1;
      None

let insert c a v = c.lines.(line c a) <- Some (a, v)

let invalidate c = Array.fill c.lines 0 (Array.length c.lines) None

let invalidate_matching c pred =
  c.scan_cost <- c.scan_cost + Array.length c.lines;
  Array.iteri
    (fun i line ->
      match line with
      | Some (key, _) when pred key -> c.lines.(i) <- None
      | Some _ | None -> ())
    c.lines

let invalidate_covered c p =
  let host = 32 - Prefix.length p in
  let slots = Array.length c.lines in
  if host < Sys.int_size - 1 && 1 lsl host < slots then begin
    (* Few covered addresses: probe each one's line directly instead of
       scanning every slot — a /32 change touches exactly one line. *)
    let base = Int32.to_int (Prefix.addr p) land 0xFFFFFFFF in
    let n = 1 lsl host in
    c.scan_cost <- c.scan_cost + n;
    for i = 0 to n - 1 do
      let a = Int32.of_int (base lor i) in
      let l = line c a in
      match c.lines.(l) with
      | Some (key, _) when key = a -> c.lines.(l) <- None
      | Some _ | None -> ()
    done
  end
  else invalidate_matching c (Prefix.matches p)

let scan_cost c = c.scan_cost
let hits c = c.hits
let misses c = c.misses

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total
