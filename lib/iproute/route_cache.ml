(* Keys are native ints (the 32 address bits, [0 .. 2^32-1]): the
   [int32] form of the first version forced a boxed key compare per
   probe, and the tuple-in-option line layout forced a [Some v] per hit.
   Lines are now two parallel arrays — an int key array ([-1] = empty;
   no masked address is negative) and a value array — so the fast-path
   probe {!find_or} touches no allocator at all.  The [addr]-typed API
   survives as wrappers for the control plane and tests. *)

type 'a t = {
  hash : int -> int;
  keys : int array; (* -1 = empty line *)
  vals : 'a option array; (* dense mirror; [Some] refreshed per insert *)
  mutable hits : int;
  mutable misses : int;
  mutable scan_cost : int;
}

let default_hash_i x =
  (* Full-avalanche mix (the IXP1200's hash unit is CRC-like): line
     selection takes the hash modulo the slot count, so the high address
     bits must reach the low hash bits. *)
  let x = x * 0x9E3779B1 in
  let x = x lxor (x lsr 16) in
  let x = x * 0x85EBCA6B in
  let x = x lxor (x lsr 13) in
  x land max_int

let key_of_addr a = Int32.to_int a land 0xFFFFFFFF

let create ?hash ~slots () =
  if slots <= 0 then invalid_arg "Route_cache.create: slots <= 0";
  let hash =
    match hash with
    | None -> default_hash_i
    | Some h -> fun k -> h (Int32.of_int k)
  in
  {
    hash;
    keys = Array.make slots (-1);
    vals = Array.make slots None;
    hits = 0;
    misses = 0;
    scan_cost = 0;
  }

let line c k = c.hash k mod Array.length c.keys

(* The hot probe: returns the cached value, or [default] on a miss (an
   empty or mismatched line).  No option, no tuple — the caller compares
   against its own sentinel. *)
let find_or c k ~default =
  let l = line c k in
  if c.keys.(l) = k then begin
    c.hits <- c.hits + 1;
    match c.vals.(l) with Some v -> v | None -> assert false
  end
  else begin
    c.misses <- c.misses + 1;
    default
  end

let find_i c k =
  let l = line c k in
  if c.keys.(l) = k then begin
    c.hits <- c.hits + 1;
    c.vals.(l)
  end
  else begin
    c.misses <- c.misses + 1;
    None
  end

let find c a = find_i c (key_of_addr a)

let insert_i c k v =
  let l = line c k in
  c.keys.(l) <- k;
  c.vals.(l) <- Some v

let insert c a v = insert_i c (key_of_addr a) v

let invalidate c =
  Array.fill c.keys 0 (Array.length c.keys) (-1);
  Array.fill c.vals 0 (Array.length c.vals) None

let drop_line c l =
  c.keys.(l) <- -1;
  c.vals.(l) <- None

let invalidate_matching c pred =
  c.scan_cost <- c.scan_cost + Array.length c.keys;
  Array.iteri
    (fun i k -> if k >= 0 && pred (Int32.of_int k) then drop_line c i)
    c.keys

let invalidate_covered c p =
  let host = 32 - Prefix.length p in
  let slots = Array.length c.keys in
  if host < Sys.int_size - 1 && 1 lsl host < slots then begin
    (* Few covered addresses: probe each one's line directly instead of
       scanning every slot — a /32 change touches exactly one line. *)
    let base = Int32.to_int (Prefix.addr p) land 0xFFFFFFFF in
    let n = 1 lsl host in
    c.scan_cost <- c.scan_cost + n;
    for i = 0 to n - 1 do
      let k = base lor i in
      let l = line c k in
      if c.keys.(l) = k then drop_line c l
    done
  end
  else invalidate_matching c (Prefix.matches p)

let scan_cost c = c.scan_cost
let hits c = c.hits
let misses c = c.misses

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total
