(** Direct-mapped route cache.

    The MicroEngine fast path classifies "using a one-cycle hardware hash of
    [the destination] address, and we assume a hit in a route cache"
    (section 3.5.1).  A miss diverts the packet to the StrongARM, which
    performs the full longest-prefix match and refills the cache. *)

type 'a t

val create : ?hash:(Packet.Ipv4.addr -> int) -> slots:int -> unit -> 'a t
(** [create ~slots ()] is an empty cache of [slots] lines ([slots > 0]).
    [hash] defaults to a multiplicative hash standing in for the IXP1200
    hardware hash unit. *)

val find : 'a t -> Packet.Ipv4.addr -> 'a option
(** [find c a] is the cached value for exactly [a], if its line holds it. *)

val find_or : 'a t -> int -> default:'a -> 'a
(** [find_or c k ~default] is the hot-path probe: the cached value for
    key [k] (the 32 address bits as a native int), or [default] on a
    miss.  Counts a hit or miss like {!find}; allocates nothing — the
    caller distinguishes a miss by physical comparison with its own
    sentinel value. *)

val find_i : 'a t -> int -> 'a option
(** {!find} keyed by native-int address bits. *)

val insert : 'a t -> Packet.Ipv4.addr -> 'a -> unit
(** [insert c a v] fills [a]'s line, evicting any previous occupant. *)

val insert_i : 'a t -> int -> 'a -> unit
(** {!insert} keyed by native-int address bits. *)

val invalidate : 'a t -> unit
(** Drop every line (route table changed). *)

val invalidate_matching : 'a t -> (Packet.Ipv4.addr -> bool) -> unit
(** Drop only the lines whose key satisfies the predicate — selective
    invalidation for a single-prefix table change.  Always scans every
    line: O(slots) predicate calls per route change. *)

val invalidate_covered : 'a t -> Prefix.t -> unit
(** Drop the lines whose key falls inside the prefix.  When the prefix
    covers fewer addresses than the cache has slots (any prefix longer
    than /[32 - log2 slots]), each covered address's line is probed
    directly — a /32 change costs one probe instead of a full scan.
    Wide prefixes fall back to {!invalidate_matching}. *)

val scan_cost : 'a t -> int
(** Cumulative invalidation work: slots visited by predicate scans plus
    addresses probed by covered-prefix invalidation.  The regression
    tests pin that host-route churn stays O(1) per change. *)

val hits : 'a t -> int
val misses : 'a t -> int

val hit_rate : 'a t -> float
(** Hits over total probes (0 if no probes yet). *)
