type nexthop = { out_port : int; gateway_mac : Packet.Ethernet.mac }

type engine = Linear | Trie | Patricia | Cpe | Poptrie

type backend =
  | B_linear of (Prefix.t * nexthop) list ref
  | B_trie of nexthop Btrie.t ref
  | B_pat of nexthop Patricia.t ref
  | B_cpe of nexthop Cpe.t
  | B_pop of nexthop Poptrie.t

type t = {
  backend : backend;
  cache : nexthop Route_cache.t;
  selective : bool;
  mutable n : int;
}

let create ?(engine = Cpe) ?(cache_slots = 1024)
    ?(selective_invalidation = false) () =
  let backend =
    match engine with
    | Linear -> B_linear (ref [])
    | Trie -> B_trie (ref Btrie.empty)
    | Patricia -> B_pat (ref Patricia.empty)
    | Cpe -> B_cpe (Cpe.build ~strides:[ 16; 8; 8 ] [])
    | Poptrie -> B_pop (Poptrie.create ())
  in
  {
    backend;
    cache = Route_cache.create ~slots:cache_slots ();
    selective = selective_invalidation;
    n = 0;
  }

let on_change t p =
  if t.selective then Route_cache.invalidate_covered t.cache p
  else Route_cache.invalidate t.cache

let backend_size = function
  | B_linear l -> List.length !l
  | B_trie r -> Btrie.size !r
  | B_pat r -> Patricia.size !r
  | B_cpe c -> Cpe.size c
  | B_pop pt -> Poptrie.size pt

let add t p nh =
  (match t.backend with
  | B_linear l ->
      l := (p, nh) :: List.filter (fun (q, _) -> not (Prefix.equal p q)) !l
  | B_trie r -> r := Btrie.add !r p nh
  | B_pat r -> r := Patricia.add !r p nh
  | B_cpe c -> Cpe.add c p nh
  | B_pop pt -> Poptrie.add pt p nh);
  on_change t p;
  t.n <- backend_size t.backend

let remove t p =
  (match t.backend with
  | B_linear l -> l := List.filter (fun (q, _) -> not (Prefix.equal p q)) !l
  | B_trie r -> r := Btrie.remove !r p
  | B_pat r -> r := Patricia.remove !r p
  | B_cpe c -> Cpe.remove c p
  | B_pop pt -> Poptrie.remove pt p);
  on_change t p;
  t.n <- backend_size t.backend

let lookup t a =
  match t.backend with
  | B_linear l ->
      let best =
        List.fold_left
          (fun acc (p, nh) ->
            if Prefix.matches p a then
              match acc with
              | Some (q, _) when Prefix.length q >= Prefix.length p -> acc
              | _ -> Some (p, nh)
            else acc)
          None !l
      in
      Option.map snd best
  | B_trie r -> Option.map snd (Btrie.lookup !r a)
  | B_pat r -> Option.map snd (Patricia.lookup !r a)
  | B_cpe c -> Option.map snd (Cpe.lookup c a)
  | B_pop pt -> Option.map snd (Poptrie.lookup pt a)

let lookup_cached t a =
  match Route_cache.find t.cache a with
  | Some nh -> `Hit nh
  | None -> (
      match lookup t a with
      | Some nh ->
          Route_cache.insert t.cache a nh;
          `Miss (Some nh)
      | None -> `Miss None)

(* Hot-path form: the miss sentinel replaces the option, the [hit] out-
   parameter replaces the polymorphic-variant wrapper, and the key is
   the 32 address bits as a native int — a cache hit allocates nothing.
   The full LPM on a miss still boxes its [int32] key; misses are the
   divert path and pay far more than one box anyway. *)
let no_route = { out_port = min_int; gateway_mac = 0 }

let lookup_cached_i t k ~hit =
  let nh = Route_cache.find_or t.cache k ~default:no_route in
  if nh != no_route then begin
    hit := true;
    nh
  end
  else begin
    hit := false;
    match lookup t (Int32.of_int k) with
    | Some nh ->
        Route_cache.insert_i t.cache k nh;
        nh
    | None -> no_route
  end

let size t = t.n

let bindings t =
  match t.backend with
  | B_linear l -> !l
  | B_trie r -> Btrie.bindings !r
  | B_pat r -> Patricia.bindings !r
  | B_cpe c -> Cpe.bindings c
  | B_pop pt -> Poptrie.bindings pt

let node_count t =
  match t.backend with
  | B_linear l -> List.length !l
  | B_trie r -> Btrie.node_count !r
  | B_pat r -> Patricia.node_count !r
  | B_cpe c -> Cpe.memory_entries c
  | B_pop pt -> Poptrie.node_count pt

let cache_hit_rate t = Route_cache.hit_rate t.cache
let cache_scan_cost t = Route_cache.scan_cost t.cache

let engine_name t =
  match t.backend with
  | B_linear _ -> "linear"
  | B_trie _ -> "trie"
  | B_pat _ -> "patricia"
  | B_cpe _ -> "cpe"
  | B_pop _ -> "poptrie"

let pp_nexthop ppf nh =
  Format.fprintf ppf "port %d via %a" nh.out_port Packet.Ethernet.pp_mac
    nh.gateway_mac
