(** The router's routing table: next-hop entries behind a pluggable
    longest-prefix-match engine with a route cache in front.

    The control plane (OSPF on the Pentium, in the paper) updates the
    table; updates invalidate the cache.  The data plane calls
    {!lookup_cached}, which is a cache probe on the fast path and a full
    LPM + refill on a miss. *)

type nexthop = {
  out_port : int;  (** which router port forwards this packet *)
  gateway_mac : Packet.Ethernet.mac;  (** next hop's MAC address *)
}

type engine = Linear | Trie | Patricia | Cpe | Poptrie
(** Lookup engine: linear scan (testing baseline), unibit trie,
    path-compressed trie, controlled prefix expansion, and the
    compressed stride-6 bitmap trie ({!Poptrie}) sized for
    million-route tables under incremental churn. *)

type t

val create :
  ?engine:engine -> ?cache_slots:int -> ?selective_invalidation:bool ->
  unit -> t
(** [create ()] is an empty table (default engine [Cpe], 1024-line cache).
    With [selective_invalidation] (default false), a route change only
    drops the cache lines the changed prefix covers, instead of the whole
    cache — cheap control-plane churn at the cost of a per-line scan. *)

val add : t -> Prefix.t -> nexthop -> unit
(** Insert/replace a route; invalidates the cache. *)

val remove : t -> Prefix.t -> unit
(** Delete a route; invalidates the cache. *)

val lookup : t -> Packet.Ipv4.addr -> nexthop option
(** Full longest-prefix match (no cache) — what the StrongARM runs. *)

val lookup_cached : t -> Packet.Ipv4.addr -> [ `Hit of nexthop | `Miss of nexthop option ]
(** Fast-path lookup: [`Hit] on a cache hit; on a miss, runs the full match,
    refills the cache on success, and reports what it found. *)

val no_route : nexthop
(** Sentinel returned by {!lookup_cached_i} when no route matches
    (compare physically).  Its [out_port] is [min_int], which no real
    route carries. *)

val lookup_cached_i : t -> int -> hit:bool ref -> nexthop
(** [lookup_cached_i t k ~hit] is {!lookup_cached} keyed by the 32
    destination-address bits as a native int: sets [hit] to whether the
    cache line held the answer, returns the next hop or {!no_route}.
    Allocation-free on a cache hit. *)

val size : t -> int
(** Number of routes. *)

val bindings : t -> (Prefix.t * nexthop) list
(** Every installed route, order unspecified — the differential tests
    rebuild a reference {!Btrie} from this set mid-churn. *)

val node_count : t -> int
(** Engine memory footprint in its native unit (trie nodes, expanded
    CPE entries, or list length). *)

val cache_hit_rate : t -> float

val cache_scan_cost : t -> int
(** Cumulative route-cache invalidation work (see
    {!Route_cache.scan_cost}). *)

val engine_name : t -> string

val pp_nexthop : Format.formatter -> nexthop -> unit
