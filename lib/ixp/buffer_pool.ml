(* Handles are packed native ints — generation in the high bits, slot
   index in the low [idx_bits] — because the record form of the first
   version cost 3 words per allocation on a path that runs per packet
   (plus 2 more for the [Some] wrapping in [alloc_opt]'s callers).  24
   index bits cover 16M buffers, far beyond the paper's 8192; the ~38
   remaining generation bits lap a slot for longer than any run. *)

type handle = int

let idx_bits = 24
let idx_mask = (1 lsl idx_bits) - 1
let handle_of ~index ~generation = (generation lsl idx_bits) lor index
let handle_index h = h land idx_mask
let handle_generation h = h asr idx_bits

exception Stale

(* Slots hold frames directly, with a shared zero-length sentinel for
   "empty" — an option field would cost a fresh [Some] per store. *)
let no_frame = Packet.Frame.alloc 0

type slot = {
  mutable frame : Packet.Frame.t;
  mutable generation : int;
  mutable live : bool; (* stack mode: allocated and not yet freed *)
}

type mode = Circular of { mutable next : int } | Stack of int Stack.t

type t = {
  slots : slot array;
  mode : mode;
  mutable overwrites : int;
  mutable stale_reads : int;
  mutable in_use : int;
  mutable faults : Fault.Injector.t option;
  (* Called with a frame the pool no longer references: a stack-mode
     free, or a circular-mode eviction.  Lets an upstream frame pool
     recycle the storage; gated on [Some] so the default path and its
     counters ([overwrites] included) are untouched. *)
  mutable on_release : (Packet.Frame.t -> unit) option;
}

let set_faults t inj = t.faults <- Some inj
let set_release t f = t.on_release <- Some f

let make_slots count =
  if count > idx_mask + 1 then invalid_arg "Buffer_pool: count too large";
  Array.init count (fun _ -> { frame = no_frame; generation = 0; live = false })

let create_circular ~count () =
  if count <= 0 then invalid_arg "Buffer_pool: count";
  {
    slots = make_slots count;
    mode = Circular { next = 0 };
    overwrites = 0;
    stale_reads = 0;
    in_use = 0;
    faults = None;
    on_release = None;
  }

let create_stack ~count () =
  if count <= 0 then invalid_arg "Buffer_pool: count";
  let free = Stack.create () in
  for i = count - 1 downto 0 do
    Stack.push i free
  done;
  {
    slots = make_slots count;
    mode = Stack free;
    overwrites = 0;
    stale_reads = 0;
    in_use = 0;
    faults = None;
    on_release = None;
  }

let alloc t frame =
  (match t.faults with
  | Some inj when Fault.Injector.fires inj Pool_fail ->
      failwith "Buffer_pool: injected allocation failure"
  | _ -> ());
  match t.mode with
  | Circular c ->
      let index = c.next in
      c.next <- (c.next + 1) mod Array.length t.slots;
      let slot = t.slots.(index) in
      if slot.frame != no_frame then begin
        t.overwrites <- t.overwrites + 1;
        match t.on_release with Some r -> r slot.frame | None -> ()
      end;
      slot.generation <- slot.generation + 1;
      slot.frame <- frame;
      handle_of ~index ~generation:slot.generation
  | Stack free ->
      if Stack.is_empty free then failwith "Buffer_pool: out of buffers";
      let index = Stack.pop free in
      let slot = t.slots.(index) in
      slot.generation <- slot.generation + 1;
      slot.frame <- frame;
      slot.live <- true;
      t.in_use <- t.in_use + 1;
      handle_of ~index ~generation:slot.generation

(* Non-raising form for the batched hot loop: allocation failure (an
   injected Pool_fail or a dry stack) is an expected per-frame outcome
   there, and raising would tear the whole batch down through the
   exception handler instead of dropping one frame.  Failure is encoded
   as a negative handle rather than an option — generations are
   positive, so no valid handle is negative — keeping the per-packet
   success path free of a [Some] box. *)
let alloc_try t frame =
  match alloc t frame with h -> h | exception Failure _ -> -1

let get t h =
  let slot = t.slots.(h land idx_mask) in
  if slot.generation <> h asr idx_bits then begin
    t.stale_reads <- t.stale_reads + 1;
    raise Stale
  end
  else slot.frame

let read t h = match get t h with f -> Some f | exception Stale -> None

let free t h =
  match t.mode with
  | Circular _ -> ()
  | Stack free ->
      let slot = t.slots.(handle_index h) in
      if slot.live && slot.generation = handle_generation h then begin
        slot.live <- false;
        (match t.on_release with
        | Some r when slot.frame != no_frame -> r slot.frame
        | _ -> ());
        slot.frame <- no_frame;
        t.in_use <- t.in_use - 1;
        Stack.push (handle_index h) free
      end

let overwrites t = t.overwrites
let stale_reads t = t.stale_reads
let in_use t = t.in_use
let count t = Array.length t.slots

let check t =
  match t.mode with
  | Circular c ->
      if c.next < 0 || c.next >= Array.length t.slots then
        Some (Printf.sprintf "circular cursor %d outside pool of %d" c.next
                (Array.length t.slots))
      else None
  | Stack free ->
      let n = Array.length t.slots in
      let live = ref 0 in
      Array.iter (fun s -> if s.live then incr live) t.slots;
      if !live <> t.in_use then
        Some
          (Printf.sprintf "live slots %d <> in_use %d" !live t.in_use)
      else if Stack.length free + t.in_use <> n then
        Some
          (Printf.sprintf "free %d + in_use %d <> count %d"
             (Stack.length free) t.in_use n)
      else None
