type handle = { index : int; generation : int }

type slot = {
  mutable frame : Packet.Frame.t option;
  mutable generation : int;
  mutable live : bool; (* stack mode: allocated and not yet freed *)
}

type mode = Circular of { mutable next : int } | Stack of int Stack.t

type t = {
  slots : slot array;
  mode : mode;
  mutable overwrites : int;
  mutable stale_reads : int;
  mutable in_use : int;
  mutable faults : Fault.Injector.t option;
  (* Called with a frame the pool no longer references: a stack-mode
     free, or a circular-mode eviction.  Lets an upstream frame pool
     recycle the storage; gated on [Some] so the default path and its
     counters ([overwrites] included) are untouched. *)
  mutable on_release : (Packet.Frame.t -> unit) option;
}

let set_faults t inj = t.faults <- Some inj
let set_release t f = t.on_release <- Some f

let make_slots count =
  Array.init count (fun _ -> { frame = None; generation = 0; live = false })

let create_circular ~count () =
  if count <= 0 then invalid_arg "Buffer_pool: count";
  {
    slots = make_slots count;
    mode = Circular { next = 0 };
    overwrites = 0;
    stale_reads = 0;
    in_use = 0;
    faults = None;
    on_release = None;
  }

let create_stack ~count () =
  if count <= 0 then invalid_arg "Buffer_pool: count";
  let free = Stack.create () in
  for i = count - 1 downto 0 do
    Stack.push i free
  done;
  {
    slots = make_slots count;
    mode = Stack free;
    overwrites = 0;
    stale_reads = 0;
    in_use = 0;
    faults = None;
    on_release = None;
  }

let alloc t frame =
  (match t.faults with
  | Some inj when Fault.Injector.fires inj Pool_fail ->
      failwith "Buffer_pool: injected allocation failure"
  | _ -> ());
  match t.mode with
  | Circular c ->
      let index = c.next in
      c.next <- (c.next + 1) mod Array.length t.slots;
      let slot = t.slots.(index) in
      (match slot.frame with
      | None -> ()
      | Some old ->
          t.overwrites <- t.overwrites + 1;
          (match t.on_release with Some r -> r old | None -> ()));
      slot.generation <- slot.generation + 1;
      slot.frame <- Some frame;
      { index; generation = slot.generation }
  | Stack free ->
      if Stack.is_empty free then failwith "Buffer_pool: out of buffers";
      let index = Stack.pop free in
      let slot = t.slots.(index) in
      slot.generation <- slot.generation + 1;
      slot.frame <- Some frame;
      slot.live <- true;
      t.in_use <- t.in_use + 1;
      { index; generation = slot.generation }

(* Non-raising form for the batched hot loop: allocation failure (an
   injected Pool_fail or a dry stack) is an expected per-frame outcome
   there, and raising would tear the whole batch down through the
   exception handler instead of dropping one frame. *)
let alloc_opt t frame =
  match alloc t frame with h -> Some h | exception Failure _ -> None

let read t h =
  let slot = t.slots.(h.index) in
  if slot.generation <> h.generation then begin
    t.stale_reads <- t.stale_reads + 1;
    None
  end
  else slot.frame

let free t h =
  match t.mode with
  | Circular _ -> ()
  | Stack free ->
      let slot = t.slots.(h.index) in
      if slot.live && slot.generation = h.generation then begin
        slot.live <- false;
        (match slot.frame, t.on_release with
        | Some f, Some r -> r f
        | _ -> ());
        slot.frame <- None;
        t.in_use <- t.in_use - 1;
        Stack.push h.index free
      end

let overwrites t = t.overwrites
let stale_reads t = t.stale_reads
let in_use t = t.in_use
let count t = Array.length t.slots

let check t =
  match t.mode with
  | Circular c ->
      if c.next < 0 || c.next >= Array.length t.slots then
        Some (Printf.sprintf "circular cursor %d outside pool of %d" c.next
                (Array.length t.slots))
      else None
  | Stack free ->
      let n = Array.length t.slots in
      let live = ref 0 in
      Array.iter (fun s -> if s.live then incr live) t.slots;
      if !live <> t.in_use then
        Some
          (Printf.sprintf "live slots %d <> in_use %d" !live t.in_use)
      else if Stack.length free + t.in_use <> n then
        Some
          (Printf.sprintf "free %d + in_use %d <> count %d"
             (Stack.length free) t.in_use n)
      else None
