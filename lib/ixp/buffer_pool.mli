(** DRAM packet buffers (paper section 3.2.3).

    The paper's allocator divides 16 MB of DRAM into 8192 buffers of 2 KB,
    consumed circularly: "any given packet buffer remains valid for only
    one pass though the circular buffer list.  If a packet is not
    transmitted by the output process before its buffer is reused, the
    packet is effectively lost."  We model exactly that, with a generation
    number per handle so a stale read is detected (the packet was "lost")
    rather than silently corrupted.

    A per-port stack pool — the alternative the paper declined to build —
    is provided for the ablation benchmark. *)

type t

type handle = int
(** A reference to a buffer as enqueued in an SRAM queue: the slot index
    in the low bits, the generation above it (see {!handle_of}).  Packed
    into a native int so queues and descriptors carry it unboxed — the
    record form cost three words per packet. *)

val handle_of : index:int -> generation:int -> handle
(** [handle_of ~index ~generation] packs a handle (tests build synthetic
    handles with this; the pool itself is the only producer otherwise). *)

val handle_index : handle -> int
val handle_generation : handle -> int

val create_circular : count:int -> unit -> t
(** The paper's allocator. *)

val create_stack : count:int -> unit -> t
(** A free-list allocator; {!free} returns buffers for reuse. *)

val alloc : t -> Packet.Frame.t -> handle
(** [alloc pool frame] stores [frame] in the next buffer.  In circular
    mode this may silently overwrite the oldest in-flight buffer (counted
    in {!overwrites}).  In stack mode it raises [Failure] when empty. *)

val alloc_try : t -> Packet.Frame.t -> handle
(** {!alloc} returning a negative handle instead of raising [Failure]
    (injected allocation failure, or a dry stack pool) — the batched
    input loop's drop-one-frame path, with no option box on success. *)

exception Stale
(** Raised by {!get} when the buffer was reused since the handle was
    created (a lost packet). *)

val get : t -> handle -> Packet.Frame.t
(** [get pool h] is the stored frame; raises {!Stale} (and counts a
    stale read) if the buffer was reused since [h] was created.  The
    allocation-free form of {!read}. *)

val read : t -> handle -> Packet.Frame.t option
(** [read pool h] is the stored frame, or [None] if the buffer was reused
    since [h] was created (a lost packet). *)

val free : t -> handle -> unit
(** Stack mode: return the buffer.  Circular mode: no-op. *)

val overwrites : t -> int
(** Circular mode: buffers overwritten while still un-transmitted would
    show up here as stale {!read}s; this counts generation laps. *)

val stale_reads : t -> int
(** Packets lost to buffer reuse. *)

val in_use : t -> int
(** Stack mode: buffers currently allocated. *)

val count : t -> int
(** Total buffers in the pool. *)

val set_release : t -> (Packet.Frame.t -> unit) -> unit
(** [set_release t f] calls [f frame] whenever the pool drops its last
    reference to a frame — a stack-mode {!free} or a circular-mode
    eviction at {!alloc} — so an upstream {!Packet.Frame_pool} can
    recycle the storage.  Counters ({!overwrites} included) behave
    identically with or without a hook installed. *)

val set_faults : t -> Fault.Injector.t -> unit
(** Enable injected allocation failures: {!alloc} raises [Failure] with
    probability [pool_fail], in either mode — exercising every caller's
    out-of-buffers path. *)

val check : t -> string option
(** Conservation audit: in stack mode, live slots must equal {!in_use}
    and free + in-use must equal {!count}; in circular mode the cursor
    must lie inside the pool.  [Some detail] on violation. *)
