type t = {
  cfg : Config.t;
  engine : Sim.Engine.t;
  me_clock : Sim.Engine.Clock.clock;
  pentium_clock : Sim.Engine.Clock.clock;
  dram : Mem.t;
  sram : Mem.t;
  scratch : Mem.t;
  mes : Microengine.t array;
  istores : Istore.t array;
  in_fifo : Fifo.t;
  out_fifo : Fifo.t;
  hash : Hash_unit.t;
  ports : Mac_port.t array;
  pci : Pci.t;
  buffers : Buffer_pool.t;
}

type port_spec = { mbps : float; sink : (Packet.Frame.t -> unit) option }

let eval_board_ports =
  List.init 10 (fun i ->
      { mbps = (if i < 8 then 100. else 1000.); sink = None })

let create ?(cfg = Config.default) ?(ports = eval_board_ports)
    ?(circular_buffers = true) engine =
  let me_clock = Config.me_clock cfg in
  {
    cfg;
    engine;
    me_clock;
    pentium_clock = Config.pentium_clock cfg;
    dram = Mem.create me_clock ~name:"dram" cfg.dram;
    sram = Mem.create me_clock ~name:"sram" cfg.sram;
    scratch = Mem.create me_clock ~name:"scratch" cfg.scratch;
    mes =
      Array.init cfg.n_microengines (fun id -> Microengine.create me_clock ~id);
    istores = Array.init cfg.n_microengines (fun _ -> Istore.create cfg);
    in_fifo = Fifo.create ~slots:cfg.fifo_slots ();
    out_fifo = Fifo.create ~slots:cfg.fifo_slots ();
    hash = Hash_unit.create me_clock ~cycles:cfg.hash_cycles;
    ports =
      Array.of_list
        (List.mapi
           (fun id (spec : port_spec) ->
             Mac_port.create engine ~id ~mbps:spec.mbps
               ~rx_slots:cfg.port_rx_slots ?sink:spec.sink ())
           ports);
    pci = Pci.create engine cfg;
    buffers =
      (if circular_buffers then Buffer_pool.create_circular
       else Buffer_pool.create_stack)
        ~count:cfg.buffer_count ();
  }

let set_faults t inj =
  Mem.set_faults t.dram inj;
  Mem.set_faults t.sram inj;
  Mem.set_faults t.scratch inj;
  Fifo.set_faults t.in_fifo inj;
  Fifo.set_faults t.out_fifo inj;
  Array.iter (fun p -> Mac_port.set_faults p inj) t.ports;
  Buffer_pool.set_faults t.buffers inj

let context_me t ctx = t.mes.(ctx / t.cfg.contexts_per_me)

let elapsed t = Sim.Engine.time t.engine
