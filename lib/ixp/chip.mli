(** The assembled IXP1200 evaluation system: one engine, one chip's worth
    of MicroEngines, memories, FIFOs, hash unit, instruction stores, MAC
    ports, and the PCI interface (paper Figure 3). *)

type t = {
  cfg : Config.t;
  engine : Sim.Engine.t;
  me_clock : Sim.Engine.Clock.clock;
  pentium_clock : Sim.Engine.Clock.clock;
  dram : Mem.t;
  sram : Mem.t;
  scratch : Mem.t;
  mes : Microengine.t array;
  istores : Istore.t array;  (** one per MicroEngine *)
  in_fifo : Fifo.t;
  out_fifo : Fifo.t;
  hash : Hash_unit.t;
  ports : Mac_port.t array;
  pci : Pci.t;
  buffers : Buffer_pool.t;
}

type port_spec = { mbps : float; sink : (Packet.Frame.t -> unit) option }
(** How to instantiate one MAC port. *)

val eval_board_ports : port_spec list
(** The evaluation board's 8 x 100 Mbps + 2 x 1 Gbps ports, no sinks. *)

val create :
  ?cfg:Config.t ->
  ?ports:port_spec list ->
  ?circular_buffers:bool ->
  Sim.Engine.t ->
  t
(** [create engine] builds the default evaluation system.
    [circular_buffers] (default true) selects the paper's single-pass
    circular buffer pool; false selects the stack-pool alternative. *)

val set_faults : t -> Fault.Injector.t -> unit
(** Arm every fault point on the chip — memory channels, transfer FIFOs,
    MAC ports, and the buffer pool — with one shared injector. *)

val context_me : t -> int -> Microengine.t
(** [context_me chip ctx] is the MicroEngine hosting global context number
    [ctx] (contexts are numbered ME-major: context 0..3 on ME 0, ...). *)

val elapsed : t -> int64
(** Engine time, for rate computations. *)
