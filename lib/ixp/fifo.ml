type t = {
  slots : Packet.Mp.t option array;
  mutable transfers : int;
  mutable faults : Fault.Injector.t option;
}

let create ~slots () =
  if slots <= 0 then invalid_arg "Fifo.create";
  { slots = Array.make slots None; transfers = 0; faults = None }

let set_faults t inj = t.faults <- Some inj

let slots t = Array.length t.slots

let flip_mp inj (mp : Packet.Mp.t) =
  (* Flip one bit in a copy: the FIFO slot is damaged, not the DRAM
     frame the MP was cut from. *)
  let data = Bytes.copy mp.Packet.Mp.data in
  let len = Bytes.length data in
  if len > 0 then begin
    let i = Fault.Injector.draw_int inj len in
    let bit = Fault.Injector.draw_int inj 8 in
    Bytes.set data i
      (Char.chr (Char.code (Bytes.get data i) lxor (1 lsl bit)))
  end;
  { mp with Packet.Mp.data }

let load t i mp =
  match t.slots.(i) with
  | Some _ -> invalid_arg "Fifo.load: slot occupied"
  | None ->
      let mp =
        match t.faults with
        | Some inj when Fault.Injector.fires inj Fifo_flip -> flip_mp inj mp
        | _ -> mp
      in
      t.slots.(i) <- Some mp;
      t.transfers <- t.transfers + 1

let take t i =
  match t.slots.(i) with
  | None -> invalid_arg "Fifo.take: slot empty"
  | Some mp ->
      t.slots.(i) <- None;
      mp

let peek t i = t.slots.(i)

(* Burst forms: one DMA programs a run of consecutive slots.  Loads go
   through [load] slot by slot so per-MP fault draws (Fifo_flip) keep
   exactly the sequence the one-at-a-time path would produce. *)
let load_burst t ~start mps =
  let n = Array.length mps in
  if start < 0 || start + n > Array.length t.slots then
    invalid_arg "Fifo.load_burst: slot range";
  for k = 0 to n - 1 do
    load t (start + k) mps.(k)
  done

let take_burst t ~start ~into =
  let n = Array.length into in
  if start < 0 || start + n > Array.length t.slots then
    invalid_arg "Fifo.take_burst: slot range";
  for k = 0 to n - 1 do
    into.(k) <- take t (start + k)
  done

let transfers t = t.transfers
