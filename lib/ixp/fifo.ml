type t = {
  slots : Packet.Mp.t option array;
  mutable transfers : int;
  mutable faults : Fault.Injector.t option;
}

let create ~slots () =
  if slots <= 0 then invalid_arg "Fifo.create";
  { slots = Array.make slots None; transfers = 0; faults = None }

let set_faults t inj = t.faults <- Some inj

let slots t = Array.length t.slots

let flip_mp inj (mp : Packet.Mp.t) =
  (* Flip one bit in a copy: the FIFO slot is damaged, not the DRAM
     frame the MP was cut from. *)
  let data = Bytes.copy mp.Packet.Mp.data in
  let len = Bytes.length data in
  if len > 0 then begin
    let i = Fault.Injector.draw_int inj len in
    let bit = Fault.Injector.draw_int inj 8 in
    Bytes.set data i
      (Char.chr (Char.code (Bytes.get data i) lxor (1 lsl bit)))
  end;
  { mp with Packet.Mp.data }

let load t i mp =
  match t.slots.(i) with
  | Some _ -> invalid_arg "Fifo.load: slot occupied"
  | None ->
      let mp =
        match t.faults with
        | Some inj when Fault.Injector.fires inj Fifo_flip -> flip_mp inj mp
        | _ -> mp
      in
      t.slots.(i) <- Some mp;
      t.transfers <- t.transfers + 1

let take t i =
  match t.slots.(i) with
  | None -> invalid_arg "Fifo.take: slot empty"
  | Some mp ->
      t.slots.(i) <- None;
      mp

let peek t i = t.slots.(i)

let transfers t = t.transfers
