(** The IXP1200 transfer FIFOs (paper section 2.2).

    "Each 'FIFO' is an addressable 16-slot x 64-byte register file.  It is
    up to the programmer to use these register files so that they behave as
    FIFOs."  The router statically assigns slots to contexts, so a slot is
    a single-owner mailbox for one MP at a time. *)

type t

val create : slots:int -> unit -> t

val set_faults : t -> Fault.Injector.t -> unit
(** Enable per-load single-bit flips ([fifo_flip] rate): the slot
    receives a damaged copy of the MP. *)

val slots : t -> int

val load : t -> int -> Packet.Mp.t -> unit
(** [load f i mp] fills slot [i] (the receive DMA's action).  Raises
    [Invalid_argument] if the slot is already full — a static-allocation
    bug. *)

val take : t -> int -> Packet.Mp.t
(** [take f i] empties slot [i] into the caller (the context's
    FIFO-to-registers copy).  Raises if empty. *)

val peek : t -> int -> Packet.Mp.t option

val transfers : t -> int
(** Total slot loads (DMA traffic accounting). *)
