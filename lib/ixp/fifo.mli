(** The IXP1200 transfer FIFOs (paper section 2.2).

    "Each 'FIFO' is an addressable 16-slot x 64-byte register file.  It is
    up to the programmer to use these register files so that they behave as
    FIFOs."  The router statically assigns slots to contexts, so a slot is
    a single-owner mailbox for one MP at a time. *)

type t

val create : slots:int -> unit -> t

val set_faults : t -> Fault.Injector.t -> unit
(** Enable per-load single-bit flips ([fifo_flip] rate): the slot
    receives a damaged copy of the MP. *)

val slots : t -> int

val load : t -> int -> Packet.Mp.t -> unit
(** [load f i mp] fills slot [i] (the receive DMA's action).  Raises
    [Invalid_argument] if the slot is already full — a static-allocation
    bug. *)

val take : t -> int -> Packet.Mp.t
(** [take f i] empties slot [i] into the caller (the context's
    FIFO-to-registers copy).  Raises if empty. *)

val peek : t -> int -> Packet.Mp.t option

val load_burst : t -> start:int -> Packet.Mp.t array -> unit
(** [load_burst f ~start mps] fills the consecutive slots
    [start .. start + length mps - 1] in one programmed DMA burst.
    Fault draws are per MP, identical to loading one at a time.  Raises
    [Invalid_argument] on a bad range or an occupied slot. *)

val take_burst : t -> start:int -> into:Packet.Mp.t array -> unit
(** [take_burst f ~start ~into] empties [length into] consecutive slots
    beginning at [start] into [into].  Raises on a bad range or an empty
    slot. *)

val transfers : t -> int
(** Total slot loads (DMA traffic accounting). *)
