type t = {
  clock : Sim.Engine.Clock.clock;
  cycles : int;
  mutable uses : int;
}

let create clock ~cycles = { clock; cycles; uses = 0 }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_free t v =
  ignore t;
  Int64.to_int (mix v) land max_int

let hash t v =
  t.uses <- t.uses + 1;
  Sim.Engine.Clock.wait_cycles t.clock t.cycles;
  hash_free t v

(* Booked form: count the use and return the charge in picoseconds for
   the caller to accumulate instead of waiting here. *)
let hash_booked t v =
  t.uses <- t.uses + 1;
  (Sim.Engine.Clock.ps_of_cycles_i t.clock t.cycles, hash_free t v)

(* Charge-only forms, for call sites that pay the unit's latency but
   discard the value (the fast-path classifier mixes the destination
   only to model the hardware cost): no [Int64] argument to box, no
   mixing work, identical timing and [uses] accounting. *)
let charge t =
  t.uses <- t.uses + 1;
  Sim.Engine.Clock.wait_cycles t.clock t.cycles

let charge_booked t =
  t.uses <- t.uses + 1;
  Sim.Engine.Clock.ps_of_cycles_i t.clock t.cycles

let uses t = t.uses
