(** The IXP1200 hardware hashing unit.

    The fast path classifies "using a one-cycle hardware hash" of the
    destination address (section 3.5.1), and the full classifier hashes the
    IP and TCP headers separately (section 4.5).  The VRP budget allows a
    forwarder 3 hashes per MP (section 4.3). *)

type t

val create : Sim.Engine.Clock.clock -> cycles:int -> t

val hash : t -> int64 -> int
(** [hash u v] (inside a fiber) charges the unit's latency and returns a
    well-mixed non-negative hash of [v]. *)

val hash_booked : t -> int64 -> int * int
(** [hash_booked u v] counts the use and returns
    [(charge_ps, hash)] for the per-batch charging path to accumulate
    instead of waiting. *)

val charge : t -> unit
(** [charge u] (inside a fiber) pays the unit's latency and counts the
    use without computing a value — for sites that model the hardware
    cost of a hash whose result they discard.  Allocation-free. *)

val charge_booked : t -> int
(** [charge_booked u] is the booked form of {!charge}: counts the use
    and returns the charge in picoseconds. *)

val hash_free : t -> int64 -> int
(** The same mixing function without the cycle charge (for code that
    accounts costs in aggregate, e.g. the VRP interpreter). *)

val uses : t -> int
