type rx_item = { tag : Packet.Mp.tag; index : int; frame : Packet.Frame.t }

type t = {
  id : int;
  mbps : float;
  rx_slots : int;
  rx : rx_item Queue.t;
  mutable sink : Packet.Frame.t -> unit;
  mutable tx_partial : Packet.Mp.t list; (* reversed *)
  mutable tx_horizon : int64; (* when the wire finishes what it has *)
  mutable rx_frames : int;
  mutable rx_dropped : int;
  mutable rx_lost : int;
  mutable tx_frames : int;
  mutable tx_errors : int;
  mutable faults : Fault.Injector.t option;
}

let create _engine ~id ~mbps ~rx_slots ?(sink = fun _ -> ()) () =
  {
    id;
    mbps;
    rx_slots;
    rx = Queue.create ();
    sink;
    tx_partial = [];
    tx_horizon = 0L;
    rx_frames = 0;
    rx_dropped = 0;
    rx_lost = 0;
    tx_frames = 0;
    tx_errors = 0;
    faults = None;
  }

let id t = t.id
let mbps t = t.mbps
let set_sink t f = t.sink <- f
let set_faults t inj = t.faults <- Some inj

(* What the wire actually delivered, faults applied: [None] means the
   frame was lost outright. *)
let wire_damage t f =
  match t.faults with
  | None -> Some f
  | Some inj ->
      if Fault.Injector.mac_frame_lost inj then None
      else if Fault.Injector.fires inj Mac_garbage then
        Some (Fault.Injector.garbage_frame inj f)
      else if Fault.Injector.fires inj Mac_truncate then
        Some (Fault.Injector.truncate_frame inj f)
      else if Fault.Injector.fires inj Mac_corrupt then
        Some (Fault.Injector.corrupt_frame inj f)
      else Some f

let offer_clean t f =
  let n = Packet.Mp.count (Packet.Frame.len f) in
  if Queue.length t.rx + n > t.rx_slots then begin
    t.rx_dropped <- t.rx_dropped + 1;
    false
  end
  else begin
    let open Packet.Mp in
    for index = 0 to n - 1 do
      let tag =
        if n = 1 then Only
        else if index = 0 then First
        else if index = n - 1 then Last
        else Intermediate
      in
      Queue.push { tag; index; frame = f } t.rx
    done;
    t.rx_frames <- t.rx_frames + 1;
    true
  end

let offer t f =
  match wire_damage t f with
  | None ->
      t.rx_lost <- t.rx_lost + 1;
      false
  | Some f -> offer_clean t f

let rdy t = not (Queue.is_empty t.rx)

let take_mp t = Queue.take_opt t.rx

let frame_time_ps t ~bytes =
  (* Preamble+SFD (8) and minimum inter-frame gap (12) per IEEE 802.3. *)
  let wire_bits = float_of_int ((bytes + 20) * 8) in
  Int64.of_float (wire_bits /. t.mbps *. 1e6)

let tx_try_pace t ~tag =
  (* An MP occupies the wire for its 64 bytes; the frame's final MP also
     carries the preamble + inter-frame-gap overhead (20 bytes). *)
  let bytes =
    Packet.Mp.size
    + (match tag with Packet.Mp.Last | Packet.Mp.Only -> 20 | _ -> 0)
  in
  let wire = Int64.of_float (float_of_int (bytes * 8) /. t.mbps *. 1e6) in
  let now = Sim.Engine.now () in
  (* One MP of headroom: accept while the wire is at most one MP ahead. *)
  if Int64.sub t.tx_horizon now > wire then
    `Wait (Int64.sub t.tx_horizon (Int64.add now wire))
  else begin
    t.tx_horizon <- Int64.add (if t.tx_horizon > now then t.tx_horizon else now) wire;
    `Ok
  end

let transmit_mp t mp ~len_hint =
  let open Packet.Mp in
  let finish mps =
    t.tx_partial <- [];
    match join mps ~len:len_hint with
    | f ->
        t.tx_frames <- t.tx_frames + 1;
        t.sink f
    | exception Invalid_argument _ -> t.tx_errors <- t.tx_errors + 1
  in
  match mp.tag with
  | Only ->
      if t.tx_partial <> [] then begin
        t.tx_errors <- t.tx_errors + 1;
        t.tx_partial <- []
      end;
      finish [ mp ]
  | First ->
      if t.tx_partial <> [] then begin
        t.tx_errors <- t.tx_errors + 1;
        t.tx_partial <- []
      end;
      t.tx_partial <- [ mp ]
  | Intermediate -> t.tx_partial <- mp :: t.tx_partial
  | Last -> finish (List.rev (mp :: t.tx_partial))

let rx_frames t = t.rx_frames
let rx_dropped t = t.rx_dropped
let rx_lost t = t.rx_lost
let tx_frames t = t.tx_frames
let tx_errors t = t.tx_errors
let occupancy t = Queue.length t.rx
