type rx_item = { tag : Packet.Mp.tag; index : int; frame : Packet.Frame.t }

(* Receive-side port memory is a preallocated ring of MP slots rather
   than a linked queue: one frame fans out into up to rx_slots entries
   per arrival, and the input contexts drain one entry per token
   rotation, so this is a per-MP hot path on both sides.  Each entry is
   an int (index lsl 2 lor tag code) plus the frame reference, held in
   parallel arrays. *)
type t = {
  id : int;
  mbps : float;
  rx_slots : int;
  r_meta : int array;
  r_fr : Packet.Frame.t array;
  r_mask : int;
  mutable r_head : int;
  mutable r_len : int;
  dummy : Packet.Frame.t;
  mutable sink : Packet.Frame.t -> unit;
  mutable sink_present : bool;
  (* A borrowing sink consumes the frame synchronously during the call
     and never retains it (the router's internal digest/counter sinks),
     so [transmit_frame] can lend the DRAM buffer instead of paying a
     [prefix_copy] per packet.  Cleared by [set_sink]: an external sink
     may hold the frame past the call, and the buffer is recycled. *)
  mutable sink_borrows : bool;
  mutable tx_partial : Packet.Mp.t list; (* reversed *)
  mutable tx_horizon : int; (* ps: when the wire finishes what it has *)
  wire_mid : int; (* ps on the wire for a non-final MP *)
  wire_last : int; (* ps for the final MP incl. preamble + gap *)
  mutable rx_frames : int;
  mutable rx_dropped : int;
  mutable rx_lost : int;
  mutable tx_frames : int;
  mutable tx_errors : int;
  mutable faults : Fault.Injector.t option;
  mutable link_up : bool;
  mutable rx_link_down : int;
  mutable tx_link_down : int;
  (* Upstream transmit gate (e.g. a full fabric queue behind this port):
     while closed, pacing reports the wire busy so the output loop holds
     frames in its own queues instead of pushing into the congested hop.
     [None] keeps the hot path branch-predictable for ordinary ports. *)
  mutable tx_gate : (unit -> bool) option;
  mutable tx_gated : int;
  (* Parked input contexts waiting for this port to become non-empty.
     One waiter is woken per accepted frame (not per MP): a frame is the
     unit of new work, and waking every parked context per MP would
     thundering-herd the token ring.  A stack (array + length) rather
     than a list: the wakers are the contexts' permanent park-cell
     closures, so registration is a store, not a cons — this runs once
     per idle park on the per-frame path.  LIFO order matches the old
     cons/pop-head list exactly. *)
  mutable rx_waiters : (unit -> unit) array;
  mutable rx_waiters_len : int;
}

let mp_wire_ps ~mbps ~bytes =
  Int64.to_int (Int64.of_float (float_of_int (bytes * 8) /. mbps *. 1e6))

let create _engine ~id ~mbps ~rx_slots ?sink () =
  let cap =
    let c = ref 1 in
    while !c < rx_slots do
      c := !c * 2
    done;
    !c
  in
  let dummy = Packet.Frame.of_bytes Bytes.empty in
  let sink_present, sink =
    match sink with None -> (false, fun _ -> ()) | Some s -> (true, s)
  in
  {
    id;
    mbps;
    rx_slots;
    r_meta = Array.make cap 0;
    r_fr = Array.make cap dummy;
    r_mask = cap - 1;
    r_head = 0;
    r_len = 0;
    dummy;
    sink;
    sink_present;
    sink_borrows = false;
    tx_partial = [];
    tx_horizon = 0;
    wire_mid = mp_wire_ps ~mbps ~bytes:Packet.Mp.size;
    wire_last = mp_wire_ps ~mbps ~bytes:(Packet.Mp.size + 20);
    rx_frames = 0;
    rx_dropped = 0;
    rx_lost = 0;
    tx_frames = 0;
    tx_errors = 0;
    faults = None;
    link_up = true;
    rx_link_down = 0;
    tx_link_down = 0;
    tx_gate = None;
    tx_gated = 0;
    rx_waiters = Array.make 4 ignore;
    rx_waiters_len = 0;
  }

let id t = t.id
let mbps t = t.mbps

let set_sink t f =
  t.sink <- f;
  t.sink_present <- true;
  t.sink_borrows <- false

let set_sink_borrows t b = t.sink_borrows <- b

let set_faults t inj = t.faults <- Some inj
let link_up t = t.link_up
let set_link_up t up = t.link_up <- up
let set_tx_gate t g = t.tx_gate <- Some g

let tx_gate_open t =
  match t.tx_gate with
  | None -> true
  | Some g ->
      let open_ = g () in
      if not open_ then t.tx_gated <- t.tx_gated + 1;
      open_

(* What the wire actually delivered, faults applied: [None] means the
   frame was lost outright. *)
let wire_damage t f =
  match t.faults with
  | None -> Some f
  | Some inj ->
      if Fault.Injector.mac_frame_lost inj then None
      else if Fault.Injector.fires inj Mac_garbage then
        Some (Fault.Injector.garbage_frame inj f)
      else if Fault.Injector.fires inj Mac_truncate then
        Some (Fault.Injector.truncate_frame inj f)
      else if Fault.Injector.fires inj Mac_corrupt then
        Some (Fault.Injector.corrupt_frame inj f)
      else Some f

let offer_clean t f =
  let n = Packet.Mp.count (Packet.Frame.len f) in
  if t.r_len + n > t.rx_slots then begin
    t.rx_dropped <- t.rx_dropped + 1;
    false
  end
  else begin
    let tail = t.r_head + t.r_len in
    for index = 0 to n - 1 do
      (* Tag codes: 0 = Only, 1 = First, 2 = Intermediate, 3 = Last. *)
      let code =
        if n = 1 then 0
        else if index = 0 then 1
        else if index = n - 1 then 3
        else 2
      in
      let p = (tail + index) land t.r_mask in
      Array.unsafe_set t.r_meta p ((index lsl 2) lor code);
      Array.unsafe_set t.r_fr p f
    done;
    t.r_len <- t.r_len + n;
    t.rx_frames <- t.rx_frames + 1;
    (if t.rx_waiters_len > 0 then begin
       let i = t.rx_waiters_len - 1 in
       t.rx_waiters_len <- i;
       t.rx_waiters.(i) ()
     end);
    true
  end

let offer t f =
  if not t.link_up then begin
    t.rx_link_down <- t.rx_link_down + 1;
    false
  end
  else
    match t.faults with
    | None -> offer_clean t f (* no injector: skip the [Some f] box *)
    | Some _ -> (
        match wire_damage t f with
        | None ->
            t.rx_lost <- t.rx_lost + 1;
            false
        | Some f -> offer_clean t f)

let rdy t = t.r_len > 0

(* Park a context until this port has receive work.  Fires immediately
   when MPs are already queued, so the usual pattern
   [Engine.suspend (fun w -> park_rx port w)] never misses work that
   arrived between the caller's check and the suspension. *)
let park_rx t w =
  if t.r_len > 0 then w ()
  else begin
    let n = t.rx_waiters_len in
    if n = Array.length t.rx_waiters then begin
      let bigger = Array.make (2 * n) ignore in
      Array.blit t.rx_waiters 0 bigger 0 n;
      t.rx_waiters <- bigger
    end;
    t.rx_waiters.(n) <- w;
    t.rx_waiters_len <- n + 1
  end

let tag_of_code =
  [| Packet.Mp.Only; Packet.Mp.First; Packet.Mp.Intermediate; Packet.Mp.Last |]

let take_mp t =
  if t.r_len = 0 then None
  else begin
    let h = t.r_head in
    let m = Array.unsafe_get t.r_meta h in
    let f = Array.unsafe_get t.r_fr h in
    (* Clear the slot so the ring does not pin a drained frame live. *)
    Array.unsafe_set t.r_fr h t.dummy;
    t.r_head <- (h + 1) land t.r_mask;
    t.r_len <- t.r_len - 1;
    Some { tag = Array.unsafe_get tag_of_code (m land 3); index = m lsr 2; frame = f }
  end

(* Burst drain into caller-provided parallel arrays (the carrier is a
   Batch.t upstream; taking raw arrays here keeps this library free of
   core types).  Copies raw meta words — (index lsl 2) lor tag code —
   straight out of the ring: no per-MP option/record allocation.  MPs of
   one frame are contiguous in the ring, so a burst takes whole frames
   in order, possibly splitting the last frame's tail MPs into the next
   burst (exactly as the per-MP path could interleave them). *)
let take_burst t ~meta ~frames ~max:max_mps =
  let cap = min (Array.length meta) (Array.length frames) in
  let n = min t.r_len (min max_mps cap) in
  if n > 0 then begin
    let h = ref t.r_head in
    for i = 0 to n - 1 do
      Array.unsafe_set meta i (Array.unsafe_get t.r_meta !h);
      Array.unsafe_set frames i (Array.unsafe_get t.r_fr !h);
      Array.unsafe_set t.r_fr !h t.dummy;
      h := (!h + 1) land t.r_mask
    done;
    t.r_head <- !h;
    t.r_len <- t.r_len - n
  end;
  n

let tag_of_meta m = Array.unsafe_get tag_of_code (m land 3)
let index_of_meta m = m lsr 2

let frame_time_ps t ~bytes =
  (* Preamble+SFD (8) and minimum inter-frame gap (12) per IEEE 802.3. *)
  let wire_bits = float_of_int ((bytes + 20) * 8) in
  Int64.of_float (wire_bits /. t.mbps *. 1e6)

(* An MP occupies the wire for its 64 bytes; the frame's final MP also
   carries the preamble + inter-frame-gap overhead (20 bytes).  One MP of
   headroom: accept while the wire is at most one MP ahead. *)
let tx_pace_ok t ~last =
  if not (tx_gate_open t) then false
  else begin
    let wire = if last then t.wire_last else t.wire_mid in
    let now = Sim.Engine.now_i () in
    if t.tx_horizon - now > wire then false
    else begin
      t.tx_horizon <- (if t.tx_horizon > now then t.tx_horizon else now) + wire;
      true
    end
  end

let tx_try_pace t ~tag =
  if not (tx_gate_open t) then `Wait (Int64.of_int t.wire_last)
  else begin
    let last =
      match tag with Packet.Mp.Last | Packet.Mp.Only -> true | _ -> false
    in
    let wire = if last then t.wire_last else t.wire_mid in
    let now = Sim.Engine.now_i () in
    if t.tx_horizon - now > wire then
      `Wait (Int64.of_int (t.tx_horizon - (now + wire)))
    else begin
      t.tx_horizon <- (if t.tx_horizon > now then t.tx_horizon else now) + wire;
      `Ok
    end
  end

(* [tx_try_pace] without the [`Wait d] box: -1 reserves the slot, any
   other value is the strictly positive wait in ps. *)
let tx_try_pace_i t ~last =
  if not (tx_gate_open t) then t.wire_last
  else begin
    let wire = if last then t.wire_last else t.wire_mid in
    let now = Sim.Engine.now_i () in
    if t.tx_horizon - now > wire then t.tx_horizon - (now + wire)
    else begin
      t.tx_horizon <- (if t.tx_horizon > now then t.tx_horizon else now) + wire;
      -1
    end
  end

(* The whole-frame transmit path the output loop uses: the frame already
   sits assembled in DRAM, so "reassembling" its MPs is a copy of the
   bytes the caller still holds — performed only when someone is
   listening on the wire. *)
let transmit_frame t frame ~len =
  if not t.link_up then t.tx_link_down <- t.tx_link_down + 1
  else begin
    t.tx_frames <- t.tx_frames + 1;
    if t.sink_present then
      if t.sink_borrows && Packet.Frame.len frame = len then t.sink frame
      else t.sink (Packet.Frame.prefix_copy frame ~len)
  end

let transmit_mp t mp ~len_hint =
  let open Packet.Mp in
  let finish mps =
    if not t.link_up then begin
      t.tx_partial <- [];
      t.tx_link_down <- t.tx_link_down + 1
    end
    else begin
      t.tx_partial <- [];
      match join mps ~len:len_hint with
      | f ->
          t.tx_frames <- t.tx_frames + 1;
          t.sink f
      | exception Invalid_argument _ -> t.tx_errors <- t.tx_errors + 1
    end
  in
  match mp.tag with
  | Only ->
      if t.tx_partial <> [] then begin
        t.tx_errors <- t.tx_errors + 1;
        t.tx_partial <- []
      end;
      finish [ mp ]
  | First ->
      if t.tx_partial <> [] then begin
        t.tx_errors <- t.tx_errors + 1;
        t.tx_partial <- []
      end;
      t.tx_partial <- [ mp ]
  | Intermediate -> t.tx_partial <- mp :: t.tx_partial
  | Last -> finish (List.rev (mp :: t.tx_partial))

let rx_frames t = t.rx_frames
let tx_gated t = t.tx_gated
let rx_link_down t = t.rx_link_down
let tx_link_down t = t.tx_link_down
let rx_dropped t = t.rx_dropped
let rx_lost t = t.rx_lost
let tx_frames t = t.tx_frames
let tx_errors t = t.tx_errors
let occupancy t = t.r_len
