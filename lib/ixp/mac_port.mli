(** A MAC Ethernet port (paper section 2.2: 8 x 100 Mbps + 2 x 1 Gbps).

    Receive side: the MAC segments each arriving frame into 64-byte MPs in
    its small port memory; input contexts poll {!rdy} and DMA one MP at a
    time into the input FIFO.  If port memory overflows because the
    MicroEngines fall behind line rate, frames drop here — exactly the
    receive pressure the paper's line-speed requirement exists to avoid.

    Transmit side: the port reassembles outgoing MPs and delivers completed
    frames to the attached sink, pacing at line rate. *)

type t

val create :
  Sim.Engine.t ->
  id:int ->
  mbps:float ->
  rx_slots:int ->
  ?sink:(Packet.Frame.t -> unit) ->
  unit ->
  t

val id : t -> int
val mbps : t -> float

val set_sink : t -> (Packet.Frame.t -> unit) -> unit
(** Replace where transmitted frames are delivered — e.g. wire this port
    to another router's receive side to build multi-router topologies.
    Always resets the borrow flag (see {!set_sink_borrows}): an external
    sink gets a private copy of each frame. *)

val set_sink_borrows : t -> bool -> unit
(** Declare that the current sink consumes each frame synchronously
    during the call and never retains it.  {!transmit_frame} then lends
    the DRAM buffer directly (when its length matches) instead of
    allocating a per-packet copy.  Only safe for internal sinks such as
    the router's delivery digest; {!set_sink} clears it. *)

val set_faults : t -> Fault.Injector.t -> unit
(** Enable wire-level fault injection on this port's receive side: burst
    frame loss, whole-frame garbage, truncation, and byte corruption,
    applied (in that precedence) to each offered frame before it enters
    port memory.  Mangled frames are copies; the source's frame is never
    written. *)

val link_up : t -> bool

val set_tx_gate : t -> (unit -> bool) -> unit
(** Install an upstream transmit gate.  While the gate returns [false],
    {!tx_pace_ok} and {!tx_try_pace} report the wire busy (counted in
    {!tx_gated}), so the output loop backs off and frames accumulate in
    the router's own queues instead of a congested downstream hop — how
    fabric-queue backpressure reaches a member's egress path.  Ports
    without a gate pay one [None] check. *)

val set_link_up : t -> bool -> unit
(** Raise or cut the physical link.  While down, offered frames are
    refused (counted in {!rx_link_down}) and transmitted frames vanish at
    the dead PHY (counted in {!tx_link_down}, never reaching the sink) —
    the fail-stop behaviour of a crashed cluster member's ports. *)

(** {1 Receive (wire to router)} *)

val offer : t -> Packet.Frame.t -> bool
(** [offer p f] is called by a traffic source when a frame finishes
    arriving.  Returns false — and counts a drop — if port memory cannot
    hold its MPs. *)

type rx_item = {
  tag : Packet.Mp.tag;
  index : int;  (** MP position within its frame *)
  frame : Packet.Frame.t;  (** the frame this MP belongs to *)
}
(** One received MP as the input loop sees it.  The frame reference rides
    along so protocol processing on the first MP can read real headers
    without a reassembly step the hardware would not perform either. *)

val rdy : t -> bool
(** Is at least one received MP waiting? (The input loop's [port_rdy].) *)

val take_mp : t -> rx_item option
(** Remove the next received MP (the receive DMA's read side). *)

val take_burst : t -> meta:int array -> frames:Packet.Frame.t array -> max:int -> int
(** [take_burst p ~meta ~frames ~max] drains up to [max] received MPs
    into the parallel arrays (raw meta word + frame reference per MP),
    returning how many were taken.  Decode the meta words with
    {!tag_of_meta} / {!index_of_meta}.  Allocation-free: no per-MP
    {!rx_item} is built.  MPs arrive in ring order, whole frames
    contiguous. *)

val tag_of_meta : int -> Packet.Mp.tag
(** Decode a {!take_burst} meta word's MP tag. *)

val index_of_meta : int -> int
(** Decode a {!take_burst} meta word's MP index within its frame. *)

val park_rx : t -> (unit -> unit) -> unit
(** [park_rx p w] registers [w] to be called when this port next accepts
    a frame — or immediately, if MPs are already waiting.  One parked
    waiter is woken per accepted frame.  Used with [Engine.suspend] so
    an idle input context sleeps instead of polling. *)

val frame_time_ps : t -> bytes:int -> int64
(** Wire time of a [bytes]-byte frame including preamble and inter-frame
    gap (IEEE 802.3: 8 + 12 overhead bytes) — what a line-rate source
    waits between frames. *)

(** {1 Transmit (router to wire)} *)

val tx_try_pace : t -> tag:Packet.Mp.tag -> [ `Ok | `Wait of int64 ]
(** [tx_try_pace p ~tag] asks the MAC for a transmit slot: the wire drains
    at line rate, with one MP of headroom so preparing the next MP
    overlaps transmitting the current one.  [`Ok] reserves the slot;
    [`Wait d] means the slot frees in [d] ps — the caller should poll
    again (with a short backoff, not by sleeping the whole [d]: an output
    context that naps stalls the token rotation for everyone). *)

val tx_try_pace_i : t -> last:bool -> int
(** {!tx_try_pace} without the variant box: [-1] reserves the slot
    ([`Ok]); any other value is the strictly positive wait in ps.
    [last] marks the frame's final MP (pays preamble + gap time). *)

val tx_pace_ok : t -> last:bool -> bool
(** Allocation-free form of {!tx_try_pace} for the per-MP output loop:
    [tx_pace_ok p ~last] reserves a transmit slot (returning [true]) or
    reports the wire is full ([false]); [last] marks the frame's final MP,
    which also pays the preamble + inter-frame-gap wire time. *)

val transmit_frame : t -> Packet.Frame.t -> len:int -> unit
(** [transmit_frame p f ~len] transmits a whole frame whose bytes already
    sit assembled in [f] (the DRAM buffer): the MAC counts it and delivers
    a fresh [len]-byte copy to the sink.  The per-MP wire pacing still
    happens through {!tx_pace_ok}; this is the data movement only, so the
    output loop never re-splits and re-joins a frame that was never
    scattered. *)

val transmit_mp : t -> Packet.Mp.t -> len_hint:int -> unit
(** [transmit_mp p mp ~len_hint] hands one MP to the MAC.  On the packet's
    final MP the frame (of [len_hint] bytes) is reassembled and delivered
    to the sink.  Misordered MPs count as {!tx_errors} and the fragment is
    discarded — the "garbage data sent to a non-existent port" failure the
    static FIFO discipline prevents. *)

(** {1 Counters} *)

val rx_frames : t -> int
(** Frames accepted into port memory. *)

val rx_dropped : t -> int
(** Frames lost to port-memory overflow. *)

val rx_lost : t -> int
(** Frames lost to injected wire faults (never entered port memory). *)

val rx_link_down : t -> int
(** Frames refused because the link was administratively down. *)

val tx_link_down : t -> int
(** Frames discarded at the PHY because the link was down. *)

val tx_frames : t -> int
(** Frames fully transmitted. *)

val tx_errors : t -> int

val tx_gated : t -> int
(** Transmit slots refused because the upstream gate was closed. *)

val occupancy : t -> int
(** MPs currently waiting in receive port memory. *)
