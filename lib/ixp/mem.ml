type t = {
  clock : Sim.Engine.Clock.clock;
  timing : Config.mem_timing;
  server : Sim.Server.t;
  (* Per-operation costs in native-int picoseconds, computed once: the
     transfer loop issues one server access per unit operation and must
     not redo cycle conversion (or box an int64) per operation. *)
  occupancy_ps : int;
  read_ps : int;
  write_ps : int;
  mutable ops : int;
  mutable faults : Fault.Injector.t option;
}

let create clock ~name timing =
  {
    clock;
    timing;
    server = Sim.Server.create ~name ();
    occupancy_ps = Sim.Engine.Clock.ps_of_cycles_i clock timing.occupancy_cycles;
    read_ps = Sim.Engine.Clock.ps_of_cycles_i clock timing.read_cycles;
    write_ps = Sim.Engine.Clock.ps_of_cycles_i clock timing.write_cycles;
    ops = 0;
    faults = None;
  }

let set_faults t inj = t.faults <- Some inj

let read_ops t ~bytes =
  if bytes <= 0 then 0 else (bytes + t.timing.unit_bytes - 1) / t.timing.unit_bytes

let transfer t ~bytes ~latency_ps =
  let n = read_ops t ~bytes in
  match t.faults with
  | None ->
      (* Zero-fault path: coalesce the whole logical transfer into ONE
         channel access.  The unit operations pipeline back to back on
         the bus (Table 2 charges [occupancy_cycles] of bus time per
         unit), so a burst of [n] units occupies the channel for
         [n * occupancy] and the last unit completes its fill latency
         one occupancy slot after the previous one: total latency
         [latency + (n-1) * occupancy].  Queueing behind a busy channel
         is identical to issuing the units one by one — Server.access
         serializes on [busy_until] either way — so only the event
         count changes, not the timing. *)
      if n > 0 then begin
        Sim.Server.access_i t.server
          ~occupancy:(n * t.occupancy_ps)
          ~latency:(latency_ps + ((n - 1) * t.occupancy_ps));
        t.ops <- t.ops + n
      end
  | Some inj ->
      for _ = 1 to n do
        if Fault.Injector.fires inj Mem_drop then
          (* The operation vanishes: no bus time, no completion. *)
          ()
        else begin
          let latency =
            if Fault.Injector.fires inj Mem_delay then
              latency_ps
              + Sim.Engine.Clock.ps_of_cycles_i t.clock
                  (Fault.Injector.scenario inj).Fault.Scenario.mem_delay_cycles
            else latency_ps
          in
          (* Data corruption is timing-invisible here (this channel moves
             only accounting, not payload); the flip is counted so the
             invariant layer can correlate it with downstream damage. *)
          ignore (Fault.Injector.fires inj Mem_flip : bool);
          Sim.Server.access_i t.server ~occupancy:t.occupancy_ps
            ~latency;
          t.ops <- t.ops + 1
        end
      done

let read t ~bytes = transfer t ~bytes ~latency_ps:t.read_ps
let write t ~bytes = transfer t ~bytes ~latency_ps:t.write_ps

let bookable t = t.faults = None

(* Booked form of the zero-fault burst: same horizon updates, no wait
   (see {!Sim.Server.book_i}).  Callers must check {!bookable}. *)
let transfer_booked t ~now ~bytes ~latency_ps =
  let n = read_ops t ~bytes in
  if n = 0 then 0
  else begin
    t.ops <- t.ops + n;
    Sim.Server.book_i t.server ~now
      ~occupancy:(n * t.occupancy_ps)
      ~latency:(latency_ps + ((n - 1) * t.occupancy_ps))
  end

let read_booked t ~now ~bytes = transfer_booked t ~now ~bytes ~latency_ps:t.read_ps
let write_booked t ~now ~bytes = transfer_booked t ~now ~bytes ~latency_ps:t.write_ps

let server t = t.server
let ops_completed t = t.ops
let timing t = t.timing
