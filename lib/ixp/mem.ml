type t = {
  clock : Sim.Engine.Clock.clock;
  timing : Config.mem_timing;
  server : Sim.Server.t;
  mutable ops : int;
  mutable faults : Fault.Injector.t option;
}

let create clock ~name timing =
  { clock; timing; server = Sim.Server.create ~name (); ops = 0; faults = None }

let set_faults t inj = t.faults <- Some inj

let read_ops t ~bytes =
  if bytes <= 0 then 0 else (bytes + t.timing.unit_bytes - 1) / t.timing.unit_bytes

let transfer t ~bytes ~cycles =
  let n = read_ops t ~bytes in
  let occupancy =
    Sim.Engine.Clock.ps_of_cycles t.clock t.timing.occupancy_cycles
  in
  let latency = Sim.Engine.Clock.ps_of_cycles t.clock cycles in
  for _ = 1 to n do
    match t.faults with
    | None ->
        Sim.Server.access t.server ~occupancy ~latency;
        t.ops <- t.ops + 1
    | Some inj ->
        if Fault.Injector.fires inj Mem_drop then
          (* The operation vanishes: no bus time, no completion. *)
          ()
        else begin
          let latency =
            if Fault.Injector.fires inj Mem_delay then
              Int64.add latency
                (Sim.Engine.Clock.ps_of_cycles t.clock
                   (Fault.Injector.scenario inj).Fault.Scenario.mem_delay_cycles)
            else latency
          in
          (* Data corruption is timing-invisible here (this channel moves
             only accounting, not payload); the flip is counted so the
             invariant layer can correlate it with downstream damage. *)
          ignore (Fault.Injector.fires inj Mem_flip : bool);
          Sim.Server.access t.server ~occupancy ~latency;
          t.ops <- t.ops + 1
        end
  done

let read t ~bytes = transfer t ~bytes ~cycles:t.timing.read_cycles
let write t ~bytes = transfer t ~bytes ~cycles:t.timing.write_cycles

let server t = t.server
let ops_completed t = t.ops
let timing t = t.timing
