(** One memory channel (DRAM, SRAM, or Scratch) shared by every
    MicroEngine context and the StrongARM.

    Each operation moves at most [unit_bytes]; larger requests issue
    multiple back-to-back operations (that is what Table 2's "2 DRAM
    writes" for a 64-byte MP means).  The requester observes the Table 3
    latency plus any queueing behind other contexts — the contention
    that the paper's design works so hard to avoid.

    On the zero-fault path a multi-unit transfer is charged as one
    pipelined burst: the channel is occupied for [n * occupancy] and the
    requester blocks for [latency + (n-1) * occupancy] — unit fills
    stream back to back, as the IXP's burst-capable SDRAM/SRAM
    interfaces do.  With an injector installed the units are issued one
    by one so per-operation fault draws (drop/delay/flip) keep their
    exact seeded sequence. *)

type t

val create :
  Sim.Engine.Clock.clock -> name:string -> Config.mem_timing -> t
(** [create clock ~name timing] is an idle channel. *)

val set_faults : t -> Fault.Injector.t -> unit
(** Enable fault injection on this channel: per-operation drops (the
    operation consumes no bus time), stalls ([mem_delay_cycles] extra
    latency), and counted bit flips. *)

val read : t -> bytes:int -> unit
(** [read ch ~bytes] (inside a fiber) performs [ceil (bytes/unit)] read
    operations, blocking for their cumulative latency. *)

val write : t -> bytes:int -> unit
(** Like {!read} for writes. *)

val bookable : t -> bool
(** Whether this channel's charges may be booked without waiting: true
    on the zero-fault path, false once an injector is installed (the
    per-operation fault draws need the one-by-one issue sequence). *)

val read_booked : t -> now:int -> bytes:int -> int
(** [read_booked ch ~now ~bytes] books the burst as of virtual time
    [now] and returns the requester's delay instead of waiting.  Only
    valid when {!bookable}. *)

val write_booked : t -> now:int -> bytes:int -> int
(** Like {!read_booked} for writes. *)

val read_ops : t -> bytes:int -> int
(** Number of operations a [bytes]-sized access issues (cost accounting). *)

val server : t -> Sim.Server.t
(** The underlying server, for utilization queries. *)

val ops_completed : t -> int
(** Total operations served. *)

val timing : t -> Config.mem_timing
