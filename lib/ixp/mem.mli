(** One memory channel (DRAM, SRAM, or Scratch) shared by every
    MicroEngine context and the StrongARM.

    Each operation moves at most [unit_bytes]; larger requests issue
    multiple back-to-back operations (that is what Table 2's "2 DRAM
    writes" for a 64-byte MP means).  The requester observes the Table 3
    latency per operation plus any queueing behind other contexts — the
    contention that the paper's design works so hard to avoid. *)

type t

val create :
  Sim.Engine.Clock.clock -> name:string -> Config.mem_timing -> t
(** [create clock ~name timing] is an idle channel. *)

val set_faults : t -> Fault.Injector.t -> unit
(** Enable fault injection on this channel: per-operation drops (the
    operation consumes no bus time), stalls ([mem_delay_cycles] extra
    latency), and counted bit flips. *)

val read : t -> bytes:int -> unit
(** [read ch ~bytes] (inside a fiber) performs [ceil (bytes/unit)] read
    operations, blocking for their cumulative latency. *)

val write : t -> bytes:int -> unit
(** Like {!read} for writes. *)

val read_ops : t -> bytes:int -> int
(** Number of operations a [bytes]-sized access issues (cost accounting). *)

val server : t -> Sim.Server.t
(** The underlying server, for utilization queries. *)

val ops_completed : t -> int
(** Total operations served. *)

val timing : t -> Config.mem_timing
