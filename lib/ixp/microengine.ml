type t = {
  id : int;
  clock : Sim.Engine.Clock.clock;
  core : Sim.Server.t;
  mutable instructions : int;
}

let create clock ~id =
  {
    id;
    clock;
    core = Sim.Server.create ~name:(Printf.sprintf "me%d" id) ();
    instructions = 0;
  }

let id t = t.id

let exec t n =
  if n > 0 then begin
    let d = Sim.Engine.Clock.ps_of_cycles_i t.clock n in
    Sim.Server.access_i t.core ~occupancy:d ~latency:d;
    t.instructions <- t.instructions + n
  end

let instructions t = t.instructions
let busy_time t = Sim.Server.busy_time t.core

let register_telemetry scope t =
  Telemetry.Scope.gauge_int scope "instructions" (fun () -> t.instructions);
  Telemetry.Scope.gauge_int scope "busy_ps" (fun () ->
      Int64.to_int (busy_time t))
