type t = {
  id : int;
  clock : Sim.Engine.Clock.clock;
  core : Sim.Server.t;
  mutable instructions : int;
}

let create clock ~id =
  {
    id;
    clock;
    core = Sim.Server.create ~name:(Printf.sprintf "me%d" id) ();
    instructions = 0;
  }

let id t = t.id

let exec t n =
  if n > 0 then begin
    let d = Sim.Engine.Clock.ps_of_cycles_i t.clock n in
    Sim.Server.access_i t.core ~occupancy:d ~latency:d;
    t.instructions <- t.instructions + n
  end

(* Booked variants: charge the core as of virtual time [now] and return
   the requester's delay instead of waiting (see {!Sim.Server.book_i}). *)
let exec_booked t ~now n =
  if n <= 0 then 0
  else begin
    let d = Sim.Engine.Clock.ps_of_cycles_i t.clock n in
    t.instructions <- t.instructions + n;
    Sim.Server.book_i t.core ~now ~occupancy:d ~latency:d
  end

(* [exec_wait me ~instr ~wait] fuses "run [instr] instructions, then
   sleep [wait] cycles off-core" into one server access: occupancy is
   the instruction time only (the core is free during the sleep), while
   the caller blocks for instructions + sleep.  With Server.access's
   start = max(busy_until, now) semantics this is timing-identical to
   exec-then-wait in every contention case, in half the events. *)
let exec_wait t ~instr ~wait =
  if instr <= 0 then (
    if wait > 0 then
      Sim.Engine.wait_i (Sim.Engine.Clock.ps_of_cycles_i t.clock wait))
  else begin
    let d = Sim.Engine.Clock.ps_of_cycles_i t.clock instr in
    let w = if wait > 0 then Sim.Engine.Clock.ps_of_cycles_i t.clock wait else 0 in
    Sim.Server.access_i t.core ~occupancy:d ~latency:(d + w);
    t.instructions <- t.instructions + instr
  end

(* Light form for token/lock-held serial sections under per-batch
   charging: instruction and busy-time accounting without touching the
   core's busy horizon, so the hold never queues behind sibling
   contexts' whole-burst bookings (see {!Sim.Server.record_i}). *)
let exec_wait_light t ~instr ~wait =
  let w = if wait > 0 then Sim.Engine.Clock.ps_of_cycles_i t.clock wait else 0 in
  if instr <= 0 then w
  else begin
    let d = Sim.Engine.Clock.ps_of_cycles_i t.clock instr in
    t.instructions <- t.instructions + instr;
    Sim.Server.record_i t.core ~occupancy:d;
    d + w
  end

let exec_wait_booked t ~now ~instr ~wait =
  if instr <= 0 then
    if wait > 0 then Sim.Engine.Clock.ps_of_cycles_i t.clock wait else 0
  else begin
    let d = Sim.Engine.Clock.ps_of_cycles_i t.clock instr in
    let w = if wait > 0 then Sim.Engine.Clock.ps_of_cycles_i t.clock wait else 0 in
    t.instructions <- t.instructions + instr;
    Sim.Server.book_i t.core ~now ~occupancy:d ~latency:(d + w)
  end

let instructions t = t.instructions
let busy_time t = Sim.Server.busy_time t.core

let register_telemetry scope t =
  Telemetry.Scope.gauge_int scope "instructions" (fun () -> t.instructions);
  Telemetry.Scope.gauge_int scope "busy_ps" (fun () ->
      Int64.to_int (busy_time t))
