(** A MicroEngine: one single-issue core timeshared by four hardware
    contexts (paper section 2.2).

    Register-to-register instructions occupy the core; a context that
    blocks on memory releases it, which is precisely the latency-hiding
    trick the whole chip is designed around.  We model the core as a FIFO
    server: [exec me n] charges [n] instruction cycles of core occupancy,
    so when all four contexts are compute-bound they divide the core's
    200 MHz between them. *)

type t

val create : Sim.Engine.Clock.clock -> id:int -> t

val id : t -> int

val exec : t -> int -> unit
(** [exec me n] (inside a context fiber) runs [n] register instructions. *)

val exec_wait : t -> instr:int -> wait:int -> unit
(** [exec_wait me ~instr ~wait] runs [instr] register instructions and
    then sleeps [wait] cycles with the core released, as a single fused
    access — timing-identical to [exec me instr; wait_cycles wait] under
    any core contention, in one event instead of two. *)

val exec_booked : t -> now:int -> int -> int
(** [exec_booked me ~now n] books {!exec}'s core charge as of virtual
    time [now] and returns the requester's delay instead of waiting (the
    per-batch charging path; see {!Sim.Server.book_i}). *)

val exec_wait_booked : t -> now:int -> instr:int -> wait:int -> int
(** Booked form of {!exec_wait}. *)

val exec_wait_light : t -> instr:int -> wait:int -> int
(** [exec_wait_light me ~instr ~wait] accounts {!exec_wait}'s work in the
    instruction and busy-time counters and returns its duration in
    picoseconds without queueing on the core's busy horizon.  For short
    serial sections executed while holding the token under per-batch
    charging: queueing them behind sibling contexts' whole-burst
    bookings would stretch the token hold by foreign bursts and collapse
    ring rotation (see {!Sim.Server.record_i}). *)

val instructions : t -> int
(** Total instructions issued. *)

val busy_time : t -> int64
(** Core-occupied picoseconds, for utilization. *)

val register_telemetry : Telemetry.Scope.t -> t -> unit
(** Register this engine's issued-instruction and busy-time gauges under
    a telemetry scope (typically ["me"] labeled with {!id}). *)
