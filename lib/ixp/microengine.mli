(** A MicroEngine: one single-issue core timeshared by four hardware
    contexts (paper section 2.2).

    Register-to-register instructions occupy the core; a context that
    blocks on memory releases it, which is precisely the latency-hiding
    trick the whole chip is designed around.  We model the core as a FIFO
    server: [exec me n] charges [n] instruction cycles of core occupancy,
    so when all four contexts are compute-bound they divide the core's
    200 MHz between them. *)

type t

val create : Sim.Engine.Clock.clock -> id:int -> t

val id : t -> int

val exec : t -> int -> unit
(** [exec me n] (inside a context fiber) runs [n] register instructions. *)

val instructions : t -> int
(** Total instructions issued. *)

val busy_time : t -> int64
(** Core-occupied picoseconds, for utilization. *)

val register_telemetry : Telemetry.Scope.t -> t -> unit
(** Register this engine's issued-instruction and busy-time gauges under
    a telemetry scope (typically ["me"] labeled with {!id}). *)
