let min_frame = 64
let max_frame = 1518

(* Hoisted: [mac_of_string] parses per call (string splits, list
   folds), and [base_frame_i] runs once per generated frame. *)
let builder_src_mac = Ethernet.mac_of_string "02:00:00:00:00:01"
let port0_mac = Ethernet.mac_of_port 0

(* Addresses flow through here as native ints ([0 .. 2^32-1]): the
   int32 entry points convert at the boundary (free — [Int32.to_int]
   unboxes), so per-frame generators never box an address. *)
let base_frame_i ?pool ~frame_len ~src ~dst ~ttl ~tos ~proto ~l4_len () =
  (* Headroom for encapsulation (e.g. an MPLS label push at an ingress
     LER) — the real DRAM buffer is 2 KB regardless of frame size.  A
     pool mints frames at its own (fixed) capacity, so size it with the
     headroom included. *)
  let f =
    match pool with
    | Some p -> Frame_pool.take p ~len:frame_len
    | None -> Frame.alloc ~headroom:16 frame_len
  in
  Ethernet.set_dst f port0_mac;
  Ethernet.set_src f builder_src_mac;
  Ethernet.set_ethertype f Ethernet.ethertype_ipv4;
  Frame.set_u8 f Ipv4.offset 0x45;
  Ipv4.set_tos f tos;
  Ipv4.set_total_len f (Ipv4.min_header_len + l4_len);
  Ipv4.set_ttl f ttl;
  Ipv4.set_proto f proto;
  Ipv4.set_src_i f src;
  Ipv4.set_dst_i f dst;
  f

let addr_i v = Int32.to_int v land 0xFFFFFFFF

let l4_capacity ~frame_len = frame_len - Ipv4.offset - Ipv4.min_header_len

let udp_i ?pool ?(frame_len = min_frame) ~src ~dst ~src_port ~dst_port
    ?(ttl = 64) ?(tos = 0) ?(payload = "") () =
  let l4_len = min (8 + String.length payload) (l4_capacity ~frame_len) in
  let f =
    base_frame_i ?pool ~frame_len ~src ~dst ~ttl ~tos ~proto:Ipv4.proto_udp
      ~l4_len ()
  in
  Udp.set_src_port f src_port;
  Udp.set_dst_port f dst_port;
  Udp.set_len f l4_len;
  let pay_room = l4_len - 8 in
  if pay_room > 0 && payload <> "" then
    Bytes.blit_string payload 0 f.Frame.data (Udp.payload_offset f)
      (min pay_room (String.length payload));
  Ipv4.fill_cksum f;
  Udp.fill_cksum f;
  f

let udp ?pool ?frame_len ~src ~dst ~src_port ~dst_port ?ttl ?tos ?payload () =
  udp_i ?pool ?frame_len ~src:(addr_i src) ~dst:(addr_i dst) ~src_port
    ~dst_port ?ttl ?tos ?payload ()

let tcp ?pool ?(frame_len = min_frame) ~src ~dst ~src_port ~dst_port
    ?(ttl = 64) ?(tos = 0) ?(seq = 0l) ?(ack = 0l) ?(flags = Tcp.flag_ack)
    ?(payload = "") () =
  let l4_len = min (20 + String.length payload) (l4_capacity ~frame_len) in
  let f =
    base_frame_i ?pool ~frame_len ~src:(addr_i src) ~dst:(addr_i dst) ~ttl
      ~tos ~proto:Ipv4.proto_tcp ~l4_len ()
  in
  Tcp.set_src_port f src_port;
  Tcp.set_dst_port f dst_port;
  Tcp.set_seq f seq;
  Tcp.set_ack f ack;
  (* Data offset 5 words, then flags. *)
  Frame.set_u8 f (Ipv4.payload_offset f + 12) 0x50;
  Tcp.set_flags f flags;
  Frame.set_u16 f (Ipv4.payload_offset f + 14) 0xFFFF (* window *);
  let pay_room = l4_len - 20 in
  if pay_room > 0 && payload <> "" then
    Bytes.blit_string payload 0 f.Frame.data
      (Ipv4.payload_offset f + 20)
      (min pay_room (String.length payload));
  Ipv4.fill_cksum f;
  Tcp.fill_cksum f;
  f

let with_ip_options f =
  let old_hlen = Ipv4.header_len f in
  let extra = 4 in
  let g = Frame.alloc (Frame.len f + extra) in
  let ip_end = Ipv4.offset + old_hlen in
  Bytes.blit f.Frame.data 0 g.Frame.data 0 ip_end;
  (* NOP, NOP, NOP, EOL option block. *)
  Bytes.set g.Frame.data ip_end '\001';
  Bytes.set g.Frame.data (ip_end + 1) '\001';
  Bytes.set g.Frame.data (ip_end + 2) '\001';
  Bytes.set g.Frame.data (ip_end + 3) '\000';
  Bytes.blit f.Frame.data ip_end g.Frame.data (ip_end + extra)
    (Frame.len f - ip_end);
  Frame.set_u8 g Ipv4.offset (0x40 lor (old_hlen / 4 + 1));
  Ipv4.set_total_len g (Ipv4.get_total_len f + extra);
  Ipv4.fill_cksum g;
  g
