(** Packet constructors for workloads, examples and tests. *)

val min_frame : int
(** 64 bytes: the minimum Ethernet frame, the paper's worst case. *)

val max_frame : int
(** 1518 bytes: a maximal Ethernet frame (1500-byte IP packet). *)

val udp :
  ?pool:Frame_pool.t ->
  ?frame_len:int ->
  src:Ipv4.addr ->
  dst:Ipv4.addr ->
  src_port:int ->
  dst_port:int ->
  ?ttl:int ->
  ?tos:int ->
  ?payload:string ->
  unit ->
  Frame.t
(** A well-formed Ethernet/IPv4/UDP frame with valid checksums, padded to
    [frame_len] (default {!min_frame}).  With [pool] the frame is checked
    out of a {!Frame_pool} instead of freshly allocated; size the pool's
    [frame_bytes] with encapsulation headroom included.  [tos] (default 0)
    writes the Type-of-Service byte — DSCP in bits [7:2]. *)

val udp_i :
  ?pool:Frame_pool.t ->
  ?frame_len:int ->
  src:int ->
  dst:int ->
  src_port:int ->
  dst_port:int ->
  ?ttl:int ->
  ?tos:int ->
  ?payload:string ->
  unit ->
  Frame.t
(** {!udp} with native-int addresses ([0 .. 2^32-1]): the
    allocation-free form for per-packet workload generators, which
    otherwise box two [int32] addresses per frame. *)

val tcp :
  ?pool:Frame_pool.t ->
  ?frame_len:int ->
  src:Ipv4.addr ->
  dst:Ipv4.addr ->
  src_port:int ->
  dst_port:int ->
  ?ttl:int ->
  ?tos:int ->
  ?seq:int32 ->
  ?ack:int32 ->
  ?flags:int ->
  ?payload:string ->
  unit ->
  Frame.t
(** A well-formed Ethernet/IPv4/TCP frame with valid checksums. *)

val with_ip_options : Frame.t -> Frame.t
(** [with_ip_options f] is a copy of [f] with a 4-byte NOP IP option block
    inserted (IHL 6), checksums fixed — an "exceptional" packet that the
    fast path must divert (paper section 3.2). *)
