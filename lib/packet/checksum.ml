(* The range check runs once up front, so the unrolled main loop can use
   unchecked byte loads: the calibration loop in [bench perf] and every
   simulated header verification land here.  Four 16-bit words per
   iteration; each word is <= 0xFFFF, so the 63-bit accumulator cannot
   overflow for any [Bytes]-sized input. *)
let sum b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.sum: range";
  let u8 = Bytes.unsafe_get in
  let acc = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    let p = !i in
    acc :=
      !acc
      + ((Char.code (u8 b p) lsl 8) + Char.code (u8 b (p + 1)))
      + ((Char.code (u8 b (p + 2)) lsl 8) + Char.code (u8 b (p + 3)))
      + ((Char.code (u8 b (p + 4)) lsl 8) + Char.code (u8 b (p + 5)))
      + ((Char.code (u8 b (p + 6)) lsl 8) + Char.code (u8 b (p + 7)));
    i := p + 8
  done;
  (* Bounds-checked tail: at most 7 bytes, odd trailing byte padded with
     a zero low half as per RFC 1071. *)
  while !i + 1 < stop do
    acc :=
      !acc + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get b !i) lsl 8);
  !acc

let finish s =
  let s = (s land 0xFFFF) + (s lsr 16) in
  let s = (s land 0xFFFF) + (s lsr 16) in
  lnot s land 0xFFFF

let compute b ~off ~len = finish (sum b ~off ~len)

let verify b ~off ~len =
  let s = sum b ~off ~len in
  let s = (s land 0xFFFF) + (s lsr 16) in
  let s = (s land 0xFFFF) + (s lsr 16) in
  s = 0xFFFF

(* RFC 1624: HC' = ~(~HC + ~m + m'). *)
let update16 ~old_cksum ~old_word ~new_word =
  let s = (lnot old_cksum land 0xFFFF) + (lnot old_word land 0xFFFF) + new_word in
  let s = (s land 0xFFFF) + (s lsr 16) in
  let s = (s land 0xFFFF) + (s lsr 16) in
  lnot s land 0xFFFF

let pseudo_header_sum_i ~src ~dst ~proto ~len =
  ((src lsr 16) land 0xFFFF) + (src land 0xFFFF)
  + ((dst lsr 16) land 0xFFFF)
  + (dst land 0xFFFF) + proto + len

let pseudo_header_sum ~src ~dst ~proto ~len =
  let hi32 v = Int32.to_int (Int32.shift_right_logical v 16) land 0xFFFF in
  let lo32 v = Int32.to_int v land 0xFFFF in
  hi32 src + lo32 src + hi32 dst + lo32 dst + proto + len
