(** Internet one's-complement checksum (RFC 1071) and incremental update
    (RFC 1624).

    The router's IP forwarder never recomputes a checksum from scratch on
    the fast path: decrementing the TTL updates the checksum incrementally,
    exactly as the paper's minimal IP forwarder does. *)

val sum : Bytes.t -> off:int -> len:int -> int
(** [sum b ~off ~len] is the one's-complement running sum (not folded, not
    complemented) of the given byte range, big-endian 16-bit words; an odd
    trailing byte is padded with zero. *)

val finish : int -> int
(** [finish s] folds carries and complements, yielding the 16-bit checksum
    field value. *)

val compute : Bytes.t -> off:int -> len:int -> int
(** [compute b ~off ~len] is [finish (sum b ~off ~len)]. *)

val verify : Bytes.t -> off:int -> len:int -> bool
(** [verify b ~off ~len] is true iff the range (including its embedded
    checksum field) sums to [0xFFFF] — a valid header. *)

val update16 : old_cksum:int -> old_word:int -> new_word:int -> int
(** [update16 ~old_cksum ~old_word ~new_word] is the RFC 1624 incremental
    update of a checksum after one 16-bit word of covered data changed. *)

val pseudo_header_sum :
  src:int32 -> dst:int32 -> proto:int -> len:int -> int
(** [pseudo_header_sum ~src ~dst ~proto ~len] is the unfinished sum of the
    TCP/UDP pseudo header. *)

val pseudo_header_sum_i :
  src:int -> dst:int -> proto:int -> len:int -> int
(** Native-int addresses ([0 .. 2^32-1]): the allocation-free form for
    the per-frame L4 checksum fills. *)
