type mac = int

let header_len = 14

let mac_of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
      List.fold_left
        (fun acc x -> (acc lsl 8) lor int_of_string ("0x" ^ x))
        0 [ a; b; c; d; e; f ]
  | _ -> invalid_arg "Ethernet.mac_of_string"

let pp_mac ppf m =
  Format.fprintf ppf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((m lsr 40) land 0xFF) ((m lsr 32) land 0xFF) ((m lsr 24) land 0xFF)
    ((m lsr 16) land 0xFF) ((m lsr 8) land 0xFF) (m land 0xFF)

(* Locally administered (bit 1 of first octet set), stable per port. *)
let mac_of_port i = 0x020000000000 lor (0xC0DE00 lsl 8) lor (i land 0xFF)

let get_mac f off = (Frame.get_u16 f off lsl 32) lor Frame.get_u32_i f (off + 2)

let set_mac f off m =
  Frame.set_u16 f off ((m lsr 32) land 0xFFFF);
  Frame.set_u32_i f (off + 2) (m land 0xFFFFFFFF)

let get_dst f = get_mac f 0
let set_dst f m = set_mac f 0 m
let get_src f = get_mac f 6
let set_src f m = set_mac f 6 m

let get_ethertype f = Frame.get_u16 f 12
let set_ethertype f v = Frame.set_u16 f 12 v

let ethertype_ipv4 = 0x0800
