type tuple = {
  src_addr : Ipv4.addr;
  src_port : int;
  dst_addr : Ipv4.addr;
  dst_port : int;
}

type t = All | Tuple of tuple

let of_frame f =
  if Frame.len f < Ipv4.offset + Ipv4.min_header_len then None
  else begin
    let proto = Ipv4.get_proto f in
    if proto <> Ipv4.proto_tcp && proto <> Ipv4.proto_udp then None
    else begin
      let base = Ipv4.payload_offset f in
      if Frame.len f < base + 4 then None
      else
        Some
          {
            src_addr = Ipv4.get_src f;
            src_port = Frame.get_u16 f base;
            dst_addr = Ipv4.get_dst f;
            dst_port = Frame.get_u16 f (base + 2);
          }
    end
  end

type five = {
  f_src : Ipv4.addr;
  f_src_port : int;
  f_dst : Ipv4.addr;
  f_dst_port : int;
  f_proto : int;
  f_dscp : int;
}

let five_of_frame f =
  match of_frame f with
  | None -> None
  | Some t ->
      Some
        {
          f_src = t.src_addr;
          f_src_port = t.src_port;
          f_dst = t.dst_addr;
          f_dst_port = t.dst_port;
          f_proto = Ipv4.get_proto f;
          f_dscp = Ipv4.dscp f;
        }

let reverse t =
  {
    src_addr = t.dst_addr;
    src_port = t.dst_port;
    dst_addr = t.src_addr;
    dst_port = t.src_port;
  }

let equal_tuple a b =
  a.src_addr = b.src_addr && a.src_port = b.src_port && a.dst_addr = b.dst_addr
  && a.dst_port = b.dst_port

let equal a b =
  match (a, b) with
  | All, All -> true
  | Tuple x, Tuple y -> equal_tuple x y
  | All, Tuple _ | Tuple _, All -> false

let compare a b =
  match (a, b) with
  | All, All -> 0
  | All, Tuple _ -> -1
  | Tuple _, All -> 1
  | Tuple x, Tuple y -> Stdlib.compare x y

let pp ppf = function
  | All -> Format.pp_print_string ppf "ALL"
  | Tuple t ->
      Format.fprintf ppf "%a:%d -> %a:%d" Ipv4.pp_addr t.src_addr t.src_port
        Ipv4.pp_addr t.dst_addr t.dst_port

let matches k f =
  match k with
  | All -> true
  | Tuple t -> (
      match of_frame f with None -> false | Some u -> equal_tuple t u)
