(** Flow keys for the classifier (paper section 4.5).

    A key is the [(src_addr, src_port, dst_addr, dst_port)] 4-tuple, or the
    wildcard [All] used by general forwarders that apply to every packet. *)

type tuple = {
  src_addr : Ipv4.addr;
  src_port : int;
  dst_addr : Ipv4.addr;
  dst_port : int;
}

type t = All | Tuple of tuple

val of_frame : Frame.t -> tuple option
(** [of_frame f] extracts the 4-tuple if [f] carries TCP or UDP. *)

type five = {
  f_src : Ipv4.addr;
  f_src_port : int;
  f_dst : Ipv4.addr;
  f_dst_port : int;
  f_proto : int;
  f_dscp : int;  (** TOS [7:2] — see {!Ipv4.dscp} *)
}
(** The multi-field classifier's key: the 5-tuple plus the DiffServ code
    point. *)

val five_of_frame : Frame.t -> five option
(** [five_of_frame f] extracts the classifier key if [f] carries TCP or
    UDP with an intact header. *)

val reverse : tuple -> tuple
(** Swap the endpoint pair (the splicer's other connection half). *)

val equal : t -> t -> bool
val equal_tuple : tuple -> tuple -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val matches : t -> Frame.t -> bool
(** [matches k f] is true if [k] is [All] or [f]'s 4-tuple equals [k]'s. *)
