type t = {
  data : Bytes.t;
  mutable len : int;
  (* {!Frame_pool} bookkeeping: the owning pool slot (-1 while unpooled)
     and the recycle generation stamped at checkout.  Copies never
     inherit pool identity — only the original checkout may be given
     back. *)
  mutable pool_slot : int;
  mutable pool_gen : int;
}

let alloc ?(headroom = 0) n =
  { data = Bytes.make (n + headroom) '\000'; len = n; pool_slot = -1; pool_gen = 0 }

let of_bytes b = { data = b; len = Bytes.length b; pool_slot = -1; pool_gen = 0 }
let copy f = { data = Bytes.copy f.data; len = f.len; pool_slot = -1; pool_gen = 0 }
let len f = f.len

let get_u8 f off = Char.code (Bytes.get f.data off)
let set_u8 f off v = Bytes.set f.data off (Char.chr (v land 0xFF))

let get_u16 f off = (get_u8 f off lsl 8) lor get_u8 f (off + 1)

let set_u16 f off v =
  set_u8 f off (v lsr 8);
  set_u8 f (off + 1) v

let get_u32 f off =
  let hi = get_u16 f off and lo = get_u16 f (off + 2) in
  Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo)

let set_u32 f off v =
  set_u16 f off (Int32.to_int (Int32.shift_right_logical v 16) land 0xFFFF);
  set_u16 f (off + 2) (Int32.to_int v land 0xFFFF)

(* Native-int 32-bit accessors: an [int32] result is a fresh box per
   read, and header reads run several times per packet. *)
let get_u32_i f off = (get_u16 f off lsl 16) lor get_u16 f (off + 2)

let set_u32_i f off v =
  set_u16 f off ((v lsr 16) land 0xFFFF);
  set_u16 f (off + 2) (v land 0xFFFF)

let blit_string s f off = Bytes.blit_string s 0 f.data off (String.length s)

let prefix_copy f ~len =
  { data = Bytes.sub f.data 0 len; len; pool_slot = -1; pool_gen = 0 }

let equal a b =
  a.len = b.len
  &&
  (* Compare in place: slicing both buffers just to compare them would
     allocate two copies of every frame on a path that runs per packet. *)
  let n = a.len in
  let rec eq i =
    i >= n
    || Bytes.unsafe_get a.data i = Bytes.unsafe_get b.data i && eq (i + 1)
  in
  a.data == b.data || eq 0

let pp_hex ppf f =
  for i = 0 to f.len - 1 do
    if i > 0 && i mod 16 = 0 then Format.pp_print_newline ppf ();
    Format.fprintf ppf "%02x " (get_u8 f i)
  done
