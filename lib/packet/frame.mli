(** A network frame: a fixed buffer plus a live length.

    All header modules ({!Ethernet}, {!Ipv4}, {!Tcp}, {!Udp}) read and write
    fields in place, mirroring how the MicroEngine code patches headers in
    FIFO registers and DRAM. *)

type t = {
  data : Bytes.t;
  mutable len : int;
  mutable pool_slot : int;
      (** {!Frame_pool} slot owning this frame, [-1] while unpooled.
          Maintained by {!Frame_pool}; treat as read-only elsewhere. *)
  mutable pool_gen : int;
      (** Recycle generation stamped by {!Frame_pool.take}. *)
}

val alloc : ?headroom:int -> int -> t
(** [alloc n] is a zeroed frame of length [n].  [headroom] adds spare
    capacity beyond [n] (the router's DRAM buffers are 2 KB regardless of
    frame size, so encapsulations like MPLS push always have room there;
    default 0). *)

val of_bytes : Bytes.t -> t
(** [of_bytes b] wraps [b] (no copy). *)

val copy : t -> t
(** Deep copy. *)

val prefix_copy : t -> len:int -> t
(** [prefix_copy f ~len] is a fresh frame holding the first [len] bytes of
    [f] (no headroom) — what a MAC delivers after reassembling [len] bytes
    off the wire. *)

val len : t -> int
(** Current frame length in bytes. *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
(** Big-endian 16-bit read at byte offset. *)

val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int32
val set_u32 : t -> int -> int32 -> unit

val get_u32_i : t -> int -> int
(** Big-endian 32-bit read as a native int ([0 .. 2^32-1]) — the
    allocation-free form ([int32] results are boxed). *)

val set_u32_i : t -> int -> int -> unit

val blit_string : string -> t -> int -> unit
(** [blit_string s f off] copies [s] into the frame at [off]. *)

val equal : t -> t -> bool
(** Byte equality over the live length. *)

val pp_hex : Format.formatter -> t -> unit
(** Hex dump (for tests and examples). *)
