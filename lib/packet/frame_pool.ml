(* Generation-tagged frame recycling pool.

   The steady-state data path turns over one frame per packet; without a
   pool every one is a fresh [Bytes.make] that lives just long enough to
   be promoted by the minor GC under load.  The pool closes the loop:
   generators check frames out ([take]), the router gives them back when
   its buffer pool releases them ([give]), and in between the frame is
   owned by exactly one stage.

   Every checkout bumps the slot's generation and stamps it into the
   frame ([Frame.pool_gen]), so a double [give] or a [give] of a frame
   the pool no longer owns is detected exactly — counted in release
   builds, raised in [~debug:true] pools (the use-after-free tripwire
   the tests run under).  Conservation ([outstanding + free = minted])
   is exported as a {!check} suitable for the fault layer's invariant
   registry. *)

type t = {
  frame_bytes : int; (* data capacity every pooled frame is minted with *)
  max_frames : int; (* mint cap; beyond it takes fall back to plain alloc *)
  mutable frames : Frame.t array; (* slot -> frame, first [minted] live *)
  mutable gens : int array; (* slot -> current generation *)
  mutable minted : int;
  (* Free slots as an int-array stack: a [Stack.t] allocates a cons per
     push and an option per pop, and take/give run once per packet. *)
  mutable free : int array;
  mutable free_len : int;
  debug : bool;
  mutable outstanding : int;
  mutable misses : int; (* takes served by fresh allocation *)
  mutable recycles : int; (* takes served from the free stack *)
  mutable bad_gives : int; (* stale/double/foreign gives (debug: raised) *)
}

let dummy = Frame.of_bytes Bytes.empty

let create ?(debug = false) ?(max_frames = 4096) ~frame_bytes () =
  if frame_bytes <= 0 then invalid_arg "Frame_pool.create: frame_bytes";
  if max_frames <= 0 then invalid_arg "Frame_pool.create: max_frames";
  {
    frame_bytes;
    max_frames;
    frames = Array.make (min max_frames 64) dummy;
    gens = Array.make (min max_frames 64) 0;
    minted = 0;
    free = Array.make (min max_frames 64) 0;
    free_len = 0;
    debug;
    outstanding = 0;
    misses = 0;
    recycles = 0;
    bad_gives = 0;
  }

let mint t ~len =
  let slot = t.minted in
  if slot = Array.length t.frames then begin
    let cap = min t.max_frames (2 * slot) in
    let nf = Array.make cap dummy and ng = Array.make cap 0 in
    Array.blit t.frames 0 nf 0 slot;
    Array.blit t.gens 0 ng 0 slot;
    t.frames <- nf;
    t.gens <- ng
  end;
  let f = Frame.alloc t.frame_bytes in
  f.Frame.len <- len;
  f.Frame.pool_slot <- slot;
  f.Frame.pool_gen <- 1;
  t.frames.(slot) <- f;
  t.gens.(slot) <- 1;
  t.minted <- slot + 1;
  t.outstanding <- t.outstanding + 1;
  t.misses <- t.misses + 1;
  f

(* A frame of [len] live bytes, zeroed like a fresh [Frame.alloc] so a
   recycled checkout is indistinguishable from a new one.  Falls back to
   a plain (unpooled) allocation when [len] exceeds the pool's frame
   size or the mint cap is reached with nothing free. *)
let take t ~len =
  if len > t.frame_bytes then begin
    t.misses <- t.misses + 1;
    Frame.alloc len
  end
  else if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    let slot = t.free.(t.free_len) in
    let f = t.frames.(slot) in
    let gen = t.gens.(slot) + 1 in
    t.gens.(slot) <- gen;
    f.Frame.pool_gen <- gen;
    Bytes.fill f.Frame.data 0 (Bytes.length f.Frame.data) '\000';
    f.Frame.len <- len;
    t.outstanding <- t.outstanding + 1;
    t.recycles <- t.recycles + 1;
    f
  end
  else if t.minted < t.max_frames then mint t ~len
  else begin
    t.misses <- t.misses + 1;
    Frame.alloc len
  end

let bad t what =
  t.bad_gives <- t.bad_gives + 1;
  if t.debug then invalid_arg ("Frame_pool.give: " ^ what)

(* Return a frame to the pool.  Frames the pool never minted (copies,
   plain allocations) are ignored — every data-path release funnels
   here, pooled or not. *)
let give t f =
  let slot = f.Frame.pool_slot in
  if slot < 0 then ()
  else if slot >= t.minted || t.frames.(slot) != f then
    bad t "frame from another pool"
  else if f.Frame.pool_gen <> t.gens.(slot) then
    bad t "stale frame (double give or give after recycle)"
  else begin
    (* Invalidate the outstanding tag so a second give is caught. *)
    t.gens.(slot) <- t.gens.(slot) + 1;
    t.outstanding <- t.outstanding - 1;
    if t.free_len = Array.length t.free then begin
      let nf = Array.make (min t.max_frames (2 * t.free_len)) 0 in
      Array.blit t.free 0 nf 0 t.free_len;
      t.free <- nf
    end;
    t.free.(t.free_len) <- slot;
    t.free_len <- t.free_len + 1
  end

let minted t = t.minted
let outstanding t = t.outstanding
let misses t = t.misses
let recycles t = t.recycles
let bad_gives t = t.bad_gives

(* Conservation: every minted frame is either checked out or on the free
   stack.  Registered with {!Fault.Invariant} by the router when a pool
   is attached. *)
let check t =
  let free = t.free_len in
  if t.outstanding + free <> t.minted then
    Some
      (Printf.sprintf "outstanding %d + free %d <> minted %d" t.outstanding
         free t.minted)
  else if t.outstanding < 0 then
    Some (Printf.sprintf "negative outstanding %d" t.outstanding)
  else None
