(** Generation-tagged frame recycling pool.

    Closes the allocation loop of the steady-state data path: traffic
    generators check frames out with {!take}, the router gives them back
    through {!give} when its buffer pool releases them, and the pool
    detects double-frees and foreign frames exactly via per-slot
    generations stamped into {!Frame.t.pool_gen} ([~debug:true] raises,
    otherwise they are counted in {!bad_gives}). *)

type t

val create : ?debug:bool -> ?max_frames:int -> frame_bytes:int -> unit -> t
(** [create ~frame_bytes ()] is an empty pool minting frames with
    [frame_bytes] bytes of capacity on demand, at most [max_frames]
    (default 4096) of them.  [debug] (default [false]) turns bad
    {!give}s into [Invalid_argument] instead of a counter bump. *)

val take : t -> len:int -> Frame.t
(** [take t ~len] is a zeroed frame of [len] live bytes, recycled when
    possible — indistinguishable from [Frame.alloc len] except for the
    pool tag.  Requests longer than [frame_bytes], or arriving when the
    pool is dry and at its mint cap, fall back to a plain unpooled
    allocation (counted in {!misses}). *)

val give : t -> Frame.t -> unit
(** [give t f] returns [f] to the pool.  Unpooled frames (copies, plain
    allocations) are ignored, so every release path can funnel here.
    A stale or double give is caught by the generation check. *)

val minted : t -> int
(** Frames ever created by the pool. *)

val outstanding : t -> int
(** Frames currently checked out. *)

val misses : t -> int
(** Takes served by fresh allocation (mint or fallback). *)

val recycles : t -> int
(** Takes served from the free stack. *)

val bad_gives : t -> int
(** Stale, double, or foreign gives detected (and refused). *)

val check : t -> string option
(** Conservation invariant ([outstanding + free = minted]), in the shape
    {!Fault.Invariant.register} expects. *)
