type addr = int32

let addr_of_string s =
  match String.split_on_char '.' s |> List.map int_of_string with
  | [ a; b; c; d ]
    when List.for_all (fun x -> x >= 0 && x <= 255) [ a; b; c; d ] ->
      Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
  | _ -> invalid_arg "Ipv4.addr_of_string"

let pp_addr ppf a =
  let a = Int32.to_int a land 0xFFFFFFFF in
  Format.fprintf ppf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

let offset = Ethernet.header_len
let min_header_len = 20

let get_version f = Frame.get_u8 f offset lsr 4
let get_tos f = Frame.get_u8 f (offset + 1)
let set_tos f v = Frame.set_u8 f (offset + 1) v
let precedence f = get_tos f lsr 5
let dscp f = get_tos f lsr 2
let get_ihl f = Frame.get_u8 f offset land 0xF
let header_len f = 4 * get_ihl f
let has_options f = get_ihl f > 5
let get_total_len f = Frame.get_u16 f (offset + 2)
let set_total_len f v = Frame.set_u16 f (offset + 2) v
let get_ttl f = Frame.get_u8 f (offset + 8)
let set_ttl f v = Frame.set_u8 f (offset + 8) v
let get_proto f = Frame.get_u8 f (offset + 9)
let set_proto f v = Frame.set_u8 f (offset + 9) v
let get_cksum f = Frame.get_u16 f (offset + 10)
let set_cksum f v = Frame.set_u16 f (offset + 10) v
let get_src f = Frame.get_u32 f (offset + 12)
let set_src f v = Frame.set_u32 f (offset + 12) v
let get_dst f = Frame.get_u32 f (offset + 16)
let set_dst f v = Frame.set_u32 f (offset + 16) v

(* Native-int address reads for the per-packet paths (an [addr] result
   is a boxed [int32]). *)
let get_src_i f = Frame.get_u32_i f (offset + 12)
let get_dst_i f = Frame.get_u32_i f (offset + 16)
let set_src_i f v = Frame.set_u32_i f (offset + 12) v
let set_dst_i f v = Frame.set_u32_i f (offset + 16) v

let proto_tcp = 6
let proto_udp = 17

let fill_cksum f =
  set_cksum f 0;
  set_cksum f (Checksum.compute f.Frame.data ~off:offset ~len:(header_len f))

let valid f =
  Frame.len f >= offset + min_header_len
  && get_version f = 4
  && get_ihl f >= 5
  && offset + header_len f <= Frame.len f
  && get_total_len f >= header_len f
  && offset + get_total_len f <= Frame.len f
  && Checksum.verify f.Frame.data ~off:offset ~len:(header_len f)

(* TTL and protocol share a 16-bit checksum word: old = ttl<<8 | proto. *)
let decrement_ttl f =
  let ttl = get_ttl f in
  if ttl <= 1 then false
  else begin
    let proto = get_proto f in
    let old_word = (ttl lsl 8) lor proto in
    let new_word = ((ttl - 1) lsl 8) lor proto in
    set_ttl f (ttl - 1);
    set_cksum f (Checksum.update16 ~old_cksum:(get_cksum f) ~old_word ~new_word);
    true
  end

let payload_offset f = offset + header_len f
