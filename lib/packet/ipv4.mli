(** IPv4 header access, validation, and the forwarding transformations of
    the paper's IP forwarders: header validation, TTL decrement with
    incremental checksum update (fast path), and option handling (slow
    path, diverted up the processor hierarchy). *)

type addr = int32
(** An IPv4 address in network bit order. *)

val addr_of_string : string -> addr
(** [addr_of_string "10.0.0.1"] parses dotted quad. *)

val pp_addr : Format.formatter -> addr -> unit
(** Prints dotted quad. *)

val offset : int
(** Byte offset of the IP header in an Ethernet frame. *)

val min_header_len : int
(** 20 bytes (no options). *)

val get_version : Frame.t -> int
val get_ihl : Frame.t -> int
(** Header length in 32-bit words; > 5 means options are present. *)

val header_len : Frame.t -> int
(** IHL in bytes. *)

val get_tos : Frame.t -> int
(** The Type-of-Service byte. *)

val set_tos : Frame.t -> int -> unit
(** Writes the TOS byte; the header checksum must be refreshed afterwards
    (e.g. {!fill_cksum}). *)

val precedence : Frame.t -> int
(** The IP precedence bits (TOS [7:5]) — the classic class selector a
    per-class fabric queue keys on. *)

val dscp : Frame.t -> int
(** The DiffServ code point (TOS [7:2]) — the sixth dimension of the
    multi-field classifier.  [dscp f lsr 3 = precedence f] for the
    class-selector code points. *)

val has_options : Frame.t -> bool
val get_total_len : Frame.t -> int
val set_total_len : Frame.t -> int -> unit
val get_ttl : Frame.t -> int
val set_ttl : Frame.t -> int -> unit
val get_proto : Frame.t -> int
val set_proto : Frame.t -> int -> unit
val get_cksum : Frame.t -> int
val set_cksum : Frame.t -> int -> unit
val get_src : Frame.t -> addr
val set_src : Frame.t -> addr -> unit
val get_dst : Frame.t -> addr
val set_dst : Frame.t -> addr -> unit

val get_src_i : Frame.t -> int
(** Source address as a native int ([0 .. 2^32-1]) — the allocation-free
    form for per-packet reads. *)

val get_dst_i : Frame.t -> int

val set_src_i : Frame.t -> int -> unit
(** Native-int setters: the allocation-free form for per-packet writes
    (workload generators stamp both addresses on every frame). *)

val set_dst_i : Frame.t -> int -> unit

val proto_tcp : int
val proto_udp : int

val fill_cksum : Frame.t -> unit
(** Recompute and store the header checksum. *)

val valid : Frame.t -> bool
(** The classifier's validation (section 4.4): version is 4, IHL and total
    length are sane, header checksum verifies. *)

val decrement_ttl : Frame.t -> bool
(** [decrement_ttl f] performs the fast-path transformation: decrement TTL
    and incrementally update the checksum.  Returns false (frame untouched)
    if TTL is already 0 or 1 — the packet must be diverted/dropped. *)

val payload_offset : Frame.t -> int
(** First byte past the IP header (start of TCP/UDP). *)
