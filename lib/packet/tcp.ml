let base f = Ipv4.payload_offset f

let get_src_port f = Frame.get_u16 f (base f)
let set_src_port f v = Frame.set_u16 f (base f) v
let get_dst_port f = Frame.get_u16 f (base f + 2)
let set_dst_port f v = Frame.set_u16 f (base f + 2) v
let get_seq f = Frame.get_u32 f (base f + 4)
let set_seq f v = Frame.set_u32 f (base f + 4) v
let get_ack f = Frame.get_u32 f (base f + 8)
let set_ack f v = Frame.set_u32 f (base f + 8) v
let get_flags f = Frame.get_u8 f (base f + 13)
let set_flags f v = Frame.set_u8 f (base f + 13) v
let get_cksum f = Frame.get_u16 f (base f + 16)
let set_cksum f v = Frame.set_u16 f (base f + 16) v

let flag_fin = 0x01
let flag_syn = 0x02
let flag_rst = 0x04
let flag_ack = 0x10

let has_flag f flag = get_flags f land flag <> 0

let seg_len f = Ipv4.get_total_len f - Ipv4.header_len f

let full_sum f =
  let off = base f in
  let len = seg_len f in
  let pseudo =
    Checksum.pseudo_header_sum_i ~src:(Ipv4.get_src_i f)
      ~dst:(Ipv4.get_dst_i f)
      ~proto:(Ipv4.get_proto f) ~len
  in
  pseudo + Checksum.sum f.Frame.data ~off ~len

let fill_cksum f =
  set_cksum f 0;
  set_cksum f (Checksum.finish (full_sum f))

let cksum_ok f =
  let s = full_sum f in
  let s = (s land 0xFFFF) + (s lsr 16) in
  let s = (s land 0xFFFF) + (s lsr 16) in
  s = 0xFFFF

let update_cksum_u32 f ~old_v ~new_v =
  let hi v = Int32.to_int (Int32.shift_right_logical v 16) land 0xFFFF in
  let lo v = Int32.to_int v land 0xFFFF in
  let c = get_cksum f in
  let c = Checksum.update16 ~old_cksum:c ~old_word:(hi old_v) ~new_word:(hi new_v) in
  let c = Checksum.update16 ~old_cksum:c ~old_word:(lo old_v) ~new_word:(lo new_v) in
  set_cksum f c
