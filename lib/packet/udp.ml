let base f = Ipv4.payload_offset f

let get_src_port f = Frame.get_u16 f (base f)
let set_src_port f v = Frame.set_u16 f (base f) v
let get_dst_port f = Frame.get_u16 f (base f + 2)
let set_dst_port f v = Frame.set_u16 f (base f + 2) v
let get_len f = Frame.get_u16 f (base f + 4)
let set_len f v = Frame.set_u16 f (base f + 4) v
let get_cksum f = Frame.get_u16 f (base f + 6)
let set_cksum f v = Frame.set_u16 f (base f + 6) v

let fill_cksum f =
  set_cksum f 0;
  let off = base f in
  let len = get_len f in
  let pseudo =
    Checksum.pseudo_header_sum_i ~src:(Ipv4.get_src_i f)
      ~dst:(Ipv4.get_dst_i f)
      ~proto:(Ipv4.get_proto f) ~len
  in
  let c = Checksum.finish (pseudo + Checksum.sum f.Frame.data ~off ~len) in
  (* An all-zero UDP checksum means "none"; transmit 0xFFFF instead. *)
  set_cksum f (if c = 0 then 0xFFFF else c)

let payload_offset f = base f + 8
