(* Time is int64 picoseconds at the API, but the hot path keeps the
   clock and all durations in native ints: an OCaml [int64] is boxed, so
   every add/compare on the old representation allocated, and the run
   queue moves millions of events per wall-second.  62 usable bits of
   picoseconds cover ~53 days of simulated time, vastly beyond any
   run. *)

type event =
  | Thunk of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation

type t = {
  mutable clock : int; (* ps *)
  mutable seq : int;
  queue : event Wheel.t;
  mutable live : int;
  mutable limit : int; (* horizon of the active [run], for wait elision *)
  mutable elided : int; (* waits satisfied in place, never queued *)
  mutable running : bool; (* ownership: set while [run]/[run_until_idle] *)
  (* Activation coalescing.  [coalescing] gates the in-place wait fast
     path as a whole: with it off, every wait becomes a queued event and
     the run is fully event-granular — the "unbatched" arm of the
     delivery-schedule equivalence gate.  [batch_depth] > 0 marks a
     declared batch span (one context activation working through a burst
     of frames); waits satisfied in place inside a span are counted in
     [absorbed] instead of [elided], so the two gauges stay disjoint. *)
  mutable coalescing : bool;
  mutable span_ctr : int; (* batch span ids; 0 is reserved for "none" *)
  mutable cur_span : int; (* open span id, 0 when outside any span *)
  mutable absorbed : int; (* waits absorbed into batch activations *)
  mutable batched_activations : int; (* spans completed without queueing *)
  mutable batch_frames : int; (* frames processed through batch spans *)
  (* Payload slot for the boxless wait path: [wait_i]/[wait] stash the
     duration here and perform the constant [Wait0] instead of
     allocating a [Wait d] block per suspension.  Valid only between
     the perform and the handler reading it back — nothing can run in
     between. *)
  mutable wait_arg : int;
  (* Same trick for [park]: the cell rides here so the perform carries
     no payload block.  Initialized to a dummy self-cell at [create]. *)
  mutable park_arg : cell;
}

(* A reusable park point: one cell per (fiber, resource) pair replaces
   the per-suspension [fired] ref + waker closure + callback closure
   that [Suspend] allocates.  [wake_fn] is the cell's permanent waker —
   registrars hand it to waiter lists without minting a closure — and
   [register] is installed once at wiring time; the handler calls it
   after capturing the continuation, preserving [Suspend]'s
   register-then-maybe-fire-immediately semantics exactly.

   The parked continuation lives in a [k_slot] wrapper with an
   [occupied] flag beside it, not in an option: the slot is allocated
   at the cell's first park and mutated in place on every later one, so
   a steady-state park/wake cycle writes two fields and boxes
   nothing. *)
and cell = {
  mutable occupied : bool;
  mutable pk : k_slot option; (* [Some] after the first park, then reused *)
  pengine : t;
  wake_fn : unit -> unit;
  mutable register : unit -> unit;
}

and k_slot = { mutable kk : (unit, unit) Effect.Deep.continuation }

type waker = unit -> unit

exception Deadlock of string

type _ Effect.t +=
  | Wait : int -> unit Effect.t
  | Wait0 : unit Effect.t (* duration in [wait_arg]; constant, no box *)
  | Suspend : (waker -> unit) -> unit Effect.t
  | Park : cell -> unit Effect.t
  | Park0 : unit Effect.t (* cell in [park_arg]; constant, no box *)
  | Now : int64 Effect.t
  | Spawn_here : (string * (unit -> unit)) -> unit Effect.t
  | Self : t Effect.t

(* The engine currently dispatching events on THIS domain, so [now] and
   the scheduler's own bookkeeping can read the clock without performing
   an effect.  Domain-local (not a process-global ref): engines on
   sibling domains must never alias each other's dispatch state.  Saved
   and restored around [run]/[run_until_idle] to keep nested runs (an
   engine driven from inside another engine's fiber) correct. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_key
let current_engine = current

let create () =
  (* The dummy cell breaks the [t]/[cell] knot so [park_arg] never needs
     an option (and so never boxes on the park fast path). *)
  let rec t =
    {
      clock = 0;
      seq = 0;
      queue = Wheel.create ();
      live = 0;
      limit = 0;
      elided = 0;
      running = false;
      coalescing = true;
      span_ctr = 0;
      cur_span = 0;
      absorbed = 0;
      batched_activations = 0;
      batch_frames = 0;
      wait_arg = 0;
      park_arg = dummy;
    }
  and dummy =
    { occupied = false; pk = None; pengine = t; wake_fn = ignore;
      register = ignore }
  in
  t

let time t = Int64.of_int t.clock

let schedule_event t ~at ev =
  let seq = t.seq in
  t.seq <- seq + 1;
  Wheel.push t.queue ~now:t.clock ~time:at ~seq ev

let cell_wake c =
  if not c.occupied then invalid_arg "Engine: park cell woken while empty";
  c.occupied <- false;
  match c.pk with
  | Some s -> schedule_event c.pengine ~at:c.pengine.clock (Resume s.kk)
  | None -> assert false (* occupied implies a slot *)

let make_cell t =
  let rec c =
    { occupied = false; pk = None; pengine = t;
      wake_fn = (fun () -> cell_wake c); register = ignore }
  in
  c

let on_park c f = c.register <- f
let cell_waker c = c.wake_fn

(* Each fiber body runs under this handler; resuming a captured continuation
   re-enters the handler, so a fiber only needs wrapping once, at spawn. *)
let rec exec_fiber t name fn =
  let open Effect.Deep in
  t.live <- t.live + 1;
  (* The [Wait0] handler, allocated once per fiber at spawn.  The
     per-perform form (`Some (fun k -> ...)` inside [effc]) costs a
     closure and an option block on every real suspension — the single
     largest steady-state allocation once the data path itself is
     pooled.  The duration rides in [t.wait_arg] (set by the performer;
     nothing runs in between), so this closure captures only [t]. *)
  let wait0_fn (k : (unit, unit) continuation) =
    (* A real suspension: any open batch span is broken — other fibers
       may interleave before this one resumes, so the activation no
       longer covers the batch. *)
    t.cur_span <- 0;
    schedule_event t ~at:(t.clock + t.wait_arg) (Resume k)
  in
  let some_wait0 = Some wait0_fn in
  let park0_fn (k : (unit, unit) continuation) =
    t.cur_span <- 0;
    let c = t.park_arg in
    if c.occupied then
      invalid_arg ("Engine: park cell already occupied (" ^ name ^ ")");
    (match c.pk with Some s -> s.kk <- k | None -> c.pk <- Some { kk = k });
    c.occupied <- true;
    c.register ()
  in
  let some_park0 = Some park0_fn in
  match_with fn ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          let bt = Printexc.get_raw_backtrace () in
          Fmt.epr "sim: fiber %S died: %s@." name (Printexc.to_string e);
          Printexc.raise_with_backtrace e bt);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait0 -> (some_wait0 : ((a, unit) continuation -> unit) option)
          | Park0 -> (some_park0 : ((a, unit) continuation -> unit) option)
          | Wait d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.cur_span <- 0;
                  if d < 0 then
                    discontinue k (Invalid_argument "Engine.wait: negative")
                  else schedule_event t ~at:(t.clock + d) (Resume k))
          | Suspend f ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.cur_span <- 0;
                  let fired = ref false in
                  let waker () =
                    if !fired then
                      invalid_arg ("Engine: waker called twice (" ^ name ^ ")")
                    else begin
                      fired := true;
                      schedule_event t ~at:t.clock (Resume k)
                    end
                  in
                  f waker)
          | Park c ->
              Some
                (fun (k : (a, unit) continuation) ->
                  t.cur_span <- 0;
                  if c.occupied then
                    invalid_arg
                      ("Engine: park cell already occupied (" ^ name ^ ")");
                  (match c.pk with
                  | Some s -> s.kk <- k
                  | None -> c.pk <- Some { kk = k });
                  c.occupied <- true;
                  c.register ())
          | Now ->
              Some
                (fun (k : (a, unit) continuation) ->
                  continue k (Int64.of_int t.clock))
          | Spawn_here (n, g) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  spawn t n g;
                  continue k ())
          | Self -> Some (fun (k : (a, unit) continuation) -> continue k t)
          | _ -> None);
    }

and spawn t name fn =
  schedule_event t ~at:t.clock (Thunk (fun () -> exec_fiber t name fn))

let spawn_at t ~at name fn =
  let at = Int64.to_int at in
  if at < t.clock then
    invalid_arg
      (Fmt.str "Engine.spawn_at: %S at %d ps is before the clock (%d ps)" name
         at t.clock);
  schedule_event t ~at (Thunk (fun () -> exec_fiber t name fn))

let dispatch ev =
  match ev with Thunk f -> f () | Resume k -> Effect.Deep.continue k ()

(* Ownership assertion: an engine is single-owner while it dispatches.
   Catches both a re-entrant [run] of the same engine (a fiber driving
   its own engine) and two domains racing to drive one engine — either
   would corrupt the clock/queue silently. *)
let acquire t who =
  if t.running then
    invalid_arg (Fmt.str "Engine.%s: engine is already running" who);
  t.running <- true

let run t ~until =
  let until = Int64.to_int until in
  acquire t "run";
  t.limit <- until;
  let saved = current () in
  Domain.DLS.set current_key (Some t);
  Fun.protect
    ~finally:(fun () ->
      t.running <- false;
      Domain.DLS.set current_key saved)
    (fun () ->
      let rec loop () =
        match Wheel.pop_until t.queue ~until with
        | Some (at, _, ev) ->
            t.clock <- at;
            dispatch ev;
            loop ()
        | None ->
            (* Queue drained: the clock stays at the last event.  Events
               remain beyond [until]: the clock advances to it. *)
            if not (Wheel.is_empty t.queue) then t.clock <- until
      in
      loop ())

let run_until_idle t =
  acquire t "run_until_idle";
  t.limit <- max_int;
  let saved = current () in
  Domain.DLS.set current_key (Some t);
  Fun.protect
    ~finally:(fun () ->
      t.running <- false;
      Domain.DLS.set current_key saved)
    (fun () ->
      let rec loop () =
        match Wheel.pop t.queue with
        | None ->
            if t.live > 0 then
              raise
                (Deadlock
                   (Fmt.str "%d fiber(s) suspended with no pending event"
                      t.live))
        | Some (at, _, ev) ->
            t.clock <- at;
            dispatch ev;
            loop ()
      in
      loop ())

let live_fibers t = t.live
let events_scheduled t = t.seq
let elided_waits t = t.elided
let far_hits t = Wheel.far_hits t.queue

(* Activation coalescing control + batch-span accounting.  A span is
   opened by a context about to work through a burst of frames; it
   survives only as long as the fiber never truly suspends (every wait
   inside it is absorbed in place).  Span ids — rather than a depth
   counter — keep the accounting correct when a span IS broken: the
   handler clears [cur_span] at suspension, so a later [batch_end] from
   the interrupted fiber can't steal credit from a span some other
   context opened in the meantime. *)
let set_coalescing t on = t.coalescing <- on
let coalescing t = t.coalescing

let batch_begin t =
  t.span_ctr <- t.span_ctr + 1;
  t.cur_span <- t.span_ctr;
  t.span_ctr

let batch_end t span ~frames =
  t.batch_frames <- t.batch_frames + frames;
  (* An activation that moved frames counts whether or not the span
     survived unbroken — the span check only guards the absorbed/elided
     gauge split, which needs to know a *currently open* span. *)
  if frames > 0 then t.batched_activations <- t.batched_activations + 1;
  if t.cur_span = span then t.cur_span <- 0

let current_span t = t.cur_span
let absorbed_waits t = t.absorbed
let batched_activations t = t.batched_activations
let batch_frames_total t = t.batch_frames

(* Reading the dispatching engine's clock directly skips a continuation
   capture per call; the effect remains as the fallback so [now] still
   fails loudly (Effect.Unhandled) outside any engine. *)
let now_i () =
  match current () with
  | Some t -> t.clock
  | None -> Int64.to_int (Effect.perform Now)

let now () =
  match current () with
  | Some t -> Int64.of_int t.clock
  | None -> Effect.perform Now

(* Wait elision: when the dispatching engine has no pending event inside
   the wait window (and the window stays inside the active run's
   horizon), the fiber that called [wait_i] is exactly the event the
   scheduler would pop next — so advance the clock in place and keep
   running it.  No continuation capture, no queue traffic, no stack
   switch; the executed event sequence is identical by construction.
   Ties are excluded ([min_time] must be strictly beyond the target)
   because a pending event at the same time holds a smaller sequence
   number and must run first. *)
let wait_i d =
  match current () with
  | Some t when d >= 0 ->
      if
        t.coalescing
        &&
        let target = t.clock + d in
        target <= t.limit && Wheel.min_time t.queue > target
      then begin
        (* Inside a batch span the wait is part of one coalesced
           activation, not an independently elided event: keep the two
           gauges disjoint so their sum stays meaningful. *)
        if t.cur_span <> 0 then t.absorbed <- t.absorbed + 1
        else t.elided <- t.elided + 1;
        t.clock <- t.clock + d
      end
      else begin
        (* Boxless suspension: duration via [wait_arg] + constant
           effect, handled by the fiber's preallocated [Wait0] arm. *)
        t.wait_arg <- d;
        Effect.perform Wait0
      end
  | _ -> Effect.perform (Wait d)

let wait d =
  (* Keep the negative check exact across the int conversion. *)
  if d < 0L then Effect.perform (Wait (-1))
  else
    match current () with
    | Some t ->
        t.wait_arg <- Int64.to_int d;
        Effect.perform Wait0
    | None -> Effect.perform (Wait (Int64.to_int d))

let suspend f = Effect.perform (Suspend f)

let park c =
  match current () with
  | Some t when t == c.pengine ->
      t.park_arg <- c;
      Effect.perform Park0
  | _ -> Effect.perform (Park c)
let spawn_here name fn = Effect.perform (Spawn_here (name, fn))

let self_engine () =
  match current () with Some t -> t | None -> Effect.perform Self

module Clock = struct
  type clock = { ps : int }

  let of_mhz f =
    { ps = Int64.to_int (Int64.of_float (Float.round (1_000_000. /. f))) }

  let ps_per_cycle c = Int64.of_int c.ps
  let ps_of_cycles c n = Int64.of_int (c.ps * n)
  let ps_of_cycles_i c n = c.ps * n
  let cycles_of_ps c ps = Int64.to_float ps /. float_of_int c.ps
  let wait_cycles c n = if n > 0 then wait_i (c.ps * n)
end

let ps_of_ns x = Int64.of_float (Float.round (x *. 1000.))
let seconds ps = Int64.to_float ps /. 1e12
let of_seconds s = Int64.of_float (s *. 1e12)
