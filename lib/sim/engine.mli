(** Deterministic discrete-event simulation engine.

    Fibers (simulated threads of control: MicroEngine contexts, the
    StrongARM, the Pentium, traffic sources, ...) are OCaml functions run
    under an effect handler.  A fiber advances simulated time by performing
    {!wait}, parks itself on a resource with {!suspend}, and reads the clock
    with {!now}.  The engine interleaves fibers in strict timestamp order
    with FIFO tie-breaking, so a run is a pure function of its inputs.

    Time is measured in integer picoseconds so that the 200 MHz IXP clock
    (5000 ps) and the 733 MHz Pentium clock (1364 ps) share an exact common
    base. *)

type t
(** An engine instance: clock, run queue, fiber accounting. *)

type waker = unit -> unit
(** A one-shot callback that reschedules a suspended fiber at the current
    simulated instant.  Calling a waker twice raises [Invalid_argument]. *)

exception Deadlock of string
(** Raised by {!run} when fibers remain but no event is queued. *)

val create : unit -> t
(** [create ()] is a fresh engine at time 0 with no fibers. *)

val time : t -> int64
(** [time t] is the current simulated time in picoseconds (valid inside and
    outside fibers). *)

val spawn : t -> string -> (unit -> unit) -> unit
(** [spawn t name fn] registers fiber [fn], to start at the current
    simulated time.  [name] appears in crash reports. *)

val spawn_at : t -> at:int64 -> string -> (unit -> unit) -> unit
(** [spawn_at t ~at name fn] registers fiber [fn] to start at absolute
    simulated time [at] (picoseconds).  Raises [Invalid_argument] if
    [at] is before [t]'s clock.  This is how the cluster fabric hands a
    frame arrival to a receiving member's engine: the sender computes
    the arrival timestamp and the receiver's engine starts the delivery
    fiber exactly then. *)

val run : t -> until:int64 -> unit
(** [run t ~until] executes queued events in order until the queue drains or
    the next event lies strictly after [until]; the clock ends at [until] if
    events remain, else at the last event time.  Raises {!Deadlock} only via
    {!run_until_idle}.

    An engine is single-owner while dispatching: re-entering [run] on an
    engine that is already running (from one of its own fibers, or from
    a sibling domain) raises [Invalid_argument].  Driving a {e
    different} engine from inside a fiber remains legal — the
    dispatching-engine pointer is saved and restored, and is
    domain-local, so engines running concurrently on separate domains
    never alias. *)

val run_until_idle : t -> unit
(** [run_until_idle t] executes events until none remain.  Raises
    {!Deadlock} if live fibers are still suspended when the queue drains
    (i.e. somebody is waiting on a waker that can no longer fire). *)

val live_fibers : t -> int
(** [live_fibers t] is the number of fibers that have started and not yet
    returned. *)

val events_scheduled : t -> int
(** [events_scheduled t] is the total number of events ever pushed onto
    [t]'s run queue (timer expiries, wakeups, spawns).  Elided waits
    (see the implementation) never reach the queue, so this undercounts
    logical waits; it is a progress/efficiency gauge, not a semantic
    counter. *)

val elided_waits : t -> int
(** [elided_waits t] is the number of [wait]s satisfied in place by the
    elision fast path (clock advanced without queueing an event)
    {e outside} any batch span; waits absorbed inside a span are counted
    in {!absorbed_waits} instead.  [events_scheduled t + elided_waits t
    + absorbed_waits t] approximates the logical event count. *)

val far_hits : t -> int
(** [far_hits t] is the number of events pushed beyond the timing
    wheel's horizon into its far-tier heap — each such event pays a heap
    push/pop instead of an O(1) bucket insert. *)

(** {1 Activation coalescing and batch spans}

    The wait-elision fast path, plus the batch-span accounting layered
    on it, together form the "batched" execution mode: a context that
    works through a burst of frames advances the clock in place and
    never re-enters the run queue, so the whole burst costs one
    activation.  [set_coalescing t false] turns the fast path off
    entirely — every wait becomes a queued event — which is the
    reference "unbatched" arm of the per-port delivery-schedule
    equivalence gate.  Elision never reorders dispatch (it fires only
    when no queued event falls inside the wait window), so both modes
    produce identical delivery schedules; the gate in [test_fault]
    witnesses this across the fault matrix. *)

val set_coalescing : t -> bool -> unit
(** [set_coalescing t on] enables ([on = true], the default) or
    disables the in-place wait fast path — both plain elision and batch
    absorption.  Disabled, the engine is fully event-granular. *)

val coalescing : t -> bool
(** [coalescing t] is the current coalescing setting. *)

val batch_begin : t -> int
(** [batch_begin t] opens a batch span and returns its id.  Call from a
    fiber about to process a burst of frames in one activation.  The
    span is implicitly broken if the fiber truly suspends (a wait that
    cannot be absorbed, or a [suspend]). *)

val batch_end : t -> int -> frames:int -> unit
(** [batch_end t span ~frames] closes span [span], recording [frames]
    frames processed through the batch path.  The span counts as a
    coalesced activation only if it was never broken by a real
    suspension. *)

val current_span : t -> int
(** [current_span t] is the id of the currently open batch span, or [0]
    when outside any span (or after the span was broken by a real
    suspension).  Per-batch memo caches key their validity on this id:
    a cached decision is reusable only while the span that filled it is
    still open. *)

val absorbed_waits : t -> int
(** [absorbed_waits t] is the number of waits satisfied in place inside
    a batch span.  Disjoint from {!elided_waits}: a wait is counted in
    exactly one of the two gauges. *)

val batched_activations : t -> int
(** [batched_activations t] is the number of batch spans that completed
    without a real suspension — bursts fully coalesced into a single
    context activation. *)

val batch_frames_total : t -> int
(** [batch_frames_total t] is the total number of frames processed
    through batch spans ([batch_frames_total / batched_activations]
    approximates the mean realized batch size). *)

val current_engine : unit -> t option
(** [current_engine ()] is the engine currently dispatching events on
    the calling domain, if any.  Unlike {!self_engine} it never performs
    an effect, so it is safe to call from plain (non-fiber) code — e.g.
    a telemetry clock that wants engine time inside a fiber and falls
    back to another clock outside. *)

(** {1 Operations valid only inside a fiber} *)

val now : unit -> int64
(** [now ()] is the current simulated time, from inside a fiber. *)

val now_i : unit -> int
(** [now_i ()] is {!now} as a native int — the allocation-free form the
    per-event path uses (an [int64] result is a fresh box per call). *)

val wait : int64 -> unit
(** [wait d] advances this fiber [d] picoseconds.  [wait 0L] yields to other
    fibers scheduled at the same instant. *)

val wait_i : int -> unit
(** [wait_i d] is {!wait} on a native-int duration, allocation-free. *)

val suspend : (waker -> unit) -> unit
(** [suspend f] parks the calling fiber and hands [f] a waker that any other
    fiber (or resource bookkeeping code) may call to resume it. *)

(** {2 Reusable park cells}

    [suspend] allocates a one-shot flag and two closures per call; a
    fiber that parks on the same resource over and over (an input
    context on an empty ring, an output context on a full queue) can
    instead wire a {!cell} once and {!park} on it for the life of the
    run.  Semantics match [suspend] exactly: the continuation is
    captured first, then the registrar runs — so a registrar that finds
    the resource already ready may fire the waker immediately, and the
    resulting event ordering is identical to the [suspend] form. *)

type cell
(** A reusable park point for one fiber on one resource. *)

val make_cell : t -> cell
(** [make_cell t] is a fresh, empty cell for engine [t]. *)

val on_park : cell -> (unit -> unit) -> unit
(** [on_park c f] installs [f] as the cell's registrar, called (inside
    the scheduler, after continuation capture) each time the owning
    fiber {!park}s.  Typically [f] enrolls {!cell_waker}[ c] with the
    resource being waited on. *)

val cell_waker : cell -> waker
(** [cell_waker c] is the cell's permanent waker: calling it schedules
    the parked fiber at the current instant.  Stable across parks, so
    waiter lists can hold it without a fresh closure per suspension.
    Raises [Invalid_argument] if the cell is empty (double wake). *)

val park : cell -> unit
(** [park c] parks the calling fiber on [c] (must be called by the same
    fiber each time; a cell holds at most one continuation). *)

val spawn_here : string -> (unit -> unit) -> unit
(** [spawn_here name fn] spawns a sibling fiber from inside a fiber. *)

val self_engine : unit -> t
(** [self_engine ()] is the engine running the calling fiber. *)

(** {1 Clocks} *)

module Clock : sig
  type clock
  (** A processor clock: a conversion between cycles and picoseconds. *)

  val of_mhz : float -> clock
  (** [of_mhz f] is the clock of an [f] MHz processor. *)

  val ps_per_cycle : clock -> int64
  (** Picoseconds per cycle, rounded to nearest. *)

  val ps_of_cycles : clock -> int -> int64
  (** [ps_of_cycles c n] converts [n] cycles to picoseconds. *)

  val ps_of_cycles_i : clock -> int -> int
  (** [ps_of_cycles_i c n] is {!ps_of_cycles} unboxed: pure int
      multiply, no allocation.  The hot-path form. *)

  val cycles_of_ps : clock -> int64 -> float
  (** [cycles_of_ps c ps] converts a duration back to (fractional) cycles. *)

  val wait_cycles : clock -> int -> unit
  (** [wait_cycles c n] is [wait (ps_of_cycles c n)] (inside a fiber). *)
end

val ps_of_ns : float -> int64
(** [ps_of_ns x] converts nanoseconds to picoseconds (rounded). *)

val seconds : int64 -> float
(** [seconds ps] converts picoseconds to seconds. *)

val of_seconds : float -> int64
(** [of_seconds s] converts seconds to picoseconds. *)
