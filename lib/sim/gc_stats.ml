(* Allocation telemetry: deltas of the runtime's allocation counters
   against a rebased origin.  The paper's data path is fast because its
   hot loop never allocates (buffers live in fixed SDRAM pools); the
   OCaml reproduction's equivalent discipline is measured here — minor
   words per forwarded packet and steady-state promotions — and gated in
   CI by the `alloc` bench experiment.

   [Gc.minor_words ()] is used for the minor-heap counter because it is
   documented exact in native code (it reads the young pointer), while
   [Gc.quick_stat] supplies promoted/major words and collection counts
   without forcing a heap walk.  All counters are per-domain in OCaml 5:
   a baseline captured on one domain only measures that domain's
   allocation, which is exactly what the per-domain GC tuning at
   [Cluster.create] needs. *)

type t = {
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable major_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
}

let rebase t =
  let s = Gc.quick_stat () in
  t.minor_words <- Gc.minor_words ();
  t.promoted_words <- s.Gc.promoted_words;
  t.major_words <- s.Gc.major_words;
  t.minor_collections <- s.Gc.minor_collections;
  t.major_collections <- s.Gc.major_collections

let create () =
  let t =
    {
      minor_words = 0.;
      promoted_words = 0.;
      major_words = 0.;
      minor_collections = 0;
      major_collections = 0;
    }
  in
  rebase t;
  t

let minor_words t = Gc.minor_words () -. t.minor_words

let promoted_words t =
  (Gc.quick_stat ()).Gc.promoted_words -. t.promoted_words

let major_words t = (Gc.quick_stat ()).Gc.major_words -. t.major_words

let minor_collections t =
  (Gc.quick_stat ()).Gc.minor_collections - t.minor_collections

let major_collections t =
  (Gc.quick_stat ()).Gc.major_collections - t.major_collections
