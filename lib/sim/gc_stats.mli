(** Allocation telemetry: deltas of the runtime's GC counters against a
    rebased origin.  Used by the router's [sim] telemetry scope to report
    minor/major words and promotions since start, and by the allocation
    budget tests and the [alloc] bench experiment to assert words per
    forwarded packet.  All counters are per-domain in OCaml 5. *)

type t

val create : unit -> t
(** A baseline capturing the calling domain's counters as of now. *)

val rebase : t -> unit
(** Reset the origin to the current counters (e.g. after a warm-up
    window, so steady-state deltas exclude start-up allocation). *)

val minor_words : t -> float
(** Words allocated in the minor heap since the origin (exact). *)

val promoted_words : t -> float
(** Words promoted from the minor to the major heap since the origin. *)

val major_words : t -> float
(** Words allocated in (or promoted to) the major heap since origin. *)

val minor_collections : t -> int
val major_collections : t -> int
