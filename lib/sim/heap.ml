type 'a entry = { time : int64; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let is_empty h = h.len = 0

let size h = h.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let narr = Array.make ncap entry in
    Array.blit h.arr 0 narr 0 h.len;
    h.arr <- narr
  end

let push h ~time ~seq value =
  let e = { time; seq; value } in
  grow h e;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  (* Sift the new entry up to its place. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less h.arr.(i) h.arr.(parent) then begin
        let tmp = h.arr.(i) in
        h.arr.(i) <- h.arr.(parent);
        h.arr.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> i then begin
          let tmp = h.arr.(i) in
          h.arr.(i) <- h.arr.(!smallest);
          h.arr.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some (top.time, top.seq, top.value)
  end

let peek_time h = if h.len = 0 then None else Some h.arr.(0).time

let peek h =
  if h.len = 0 then None else Some (h.arr.(0).time, h.arr.(0).seq)
