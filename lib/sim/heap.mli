(** Binary min-heap of timestamped events.

    The engine's run queue.  Events are ordered by [(time, seq)] where [seq]
    is a strictly increasing insertion counter, so two events scheduled for
    the same instant fire in insertion order.  This is what makes the whole
    simulation deterministic. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val is_empty : 'a t -> bool
(** [is_empty h] is true iff [h] holds no events. *)

val size : 'a t -> int
(** [size h] is the number of queued events. *)

val push : 'a t -> time:int64 -> seq:int -> 'a -> unit
(** [push h ~time ~seq v] queues [v] at key [(time, seq)]. *)

val pop : 'a t -> (int64 * int * 'a) option
(** [pop h] removes and returns the event with the smallest key. *)

val peek_time : 'a t -> int64 option
(** [peek_time h] is the key time of the next event without removing it. *)

val peek : 'a t -> (int64 * int) option
(** [peek h] is the full [(time, seq)] key of the next event. *)
