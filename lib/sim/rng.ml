(* Splitmix64 on two 32-bit native-int limbs.

   The obvious [int64] implementation allocates a box for every
   intermediate of [mix] (~9 boxes per draw), and workload generators
   draw several times per packet — the RNG alone was ~25% of the
   steady-state per-packet allocation.  Keeping the state as two 32-bit
   limbs in native ints makes [advance]/[int]/[float]/[bool] allocation
   free while producing bit-identical output to the int64 form (a unit
   test checks them against an int64 reference); [next]/[int32] still
   box their results, as their types require. *)

type t = {
  mutable hi : int; (* 32-bit state limbs *)
  mutable lo : int;
  mutable out_hi : int; (* limbs of the latest mixed draw *)
  mutable out_lo : int;
}

let mask32 = 0xFFFFFFFF

(* golden = 0x9E3779B97F4A7C15 *)
let golden_hi = 0x9E3779B9
let golden_lo = 0x7F4A7C15

(* mix multipliers: 0xBF58476D1CE4E5B9 and 0x94D049BB133111EB *)
let m1_hi = 0xBF58476D
let m1_lo = 0x1CE4E5B9
let m2_hi = 0x94D049BB
let m2_lo = 0x133111EB

let create seed =
  {
    hi = Int64.to_int (Int64.shift_right_logical seed 32) land mask32;
    lo = Int64.to_int seed land mask32;
    out_hi = 0;
    out_lo = 0;
  }

(* High half of a*b for a, b < 2^32.  16-bit limb products: a native
   int keeps 63 bits, so a 32x32 product would lose bit 63 of its high
   half; the 16-bit split keeps every partial product exact. *)
let hi32_mul a b =
  let a0 = a land 0xFFFF and a1 = a lsr 16 in
  let b0 = b land 0xFFFF and b1 = b lsr 16 in
  let p00 = a0 * b0 and p01 = a0 * b1 and p10 = a1 * b0 and p11 = a1 * b1 in
  let mid = p01 + p10 in
  let lo = p00 + ((mid land 0xFFFF) lsl 16) in
  p11 + (mid lsr 16) + (lo lsr 32)

let lo32_mul a b = (a * b) land mask32

(* Advance the state and leave the mixed 64-bit draw in
   [out_hi]/[out_lo].  A straight line of native-int ops: no
   allocation. *)
let advance r =
  (* state += golden (mod 2^64) *)
  let lo_sum = r.lo + golden_lo in
  let lo = lo_sum land mask32 in
  let hi = (r.hi + golden_hi + (lo_sum lsr 32)) land mask32 in
  r.hi <- hi;
  r.lo <- lo;
  (* z ^= z >>> 30 *)
  let zl = lo lxor (((lo lsr 30) lor (hi lsl 2)) land mask32) in
  let zh = hi lxor (hi lsr 30) in
  (* z *= m1 (mod 2^64) *)
  let pl = lo32_mul zl m1_lo in
  let ph =
    (hi32_mul zl m1_lo + lo32_mul zl m1_hi + lo32_mul zh m1_lo) land mask32
  in
  (* z ^= z >>> 27 *)
  let zl = pl lxor (((pl lsr 27) lor (ph lsl 5)) land mask32) in
  let zh = ph lxor (ph lsr 27) in
  (* z *= m2 (mod 2^64) *)
  let pl = lo32_mul zl m2_lo in
  let ph =
    (hi32_mul zl m2_lo + lo32_mul zl m2_hi + lo32_mul zh m2_lo) land mask32
  in
  (* z ^= z >>> 31 *)
  r.out_lo <- pl lxor (((pl lsr 31) lor (ph lsl 1)) land mask32);
  r.out_hi <- ph lxor (ph lsr 31)

let next r =
  advance r;
  Int64.logor
    (Int64.shift_left (Int64.of_int r.out_hi) 32)
    (Int64.of_int r.out_lo)

let split r =
  advance r;
  { hi = r.out_hi; lo = r.out_lo; out_hi = 0; out_lo = 0 }

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  advance r;
  (* Int64.to_int keeps the low 63 bits; land max_int then clears the
     native sign bit, leaving the draw's low 62 bits. *)
  (((r.out_hi land 0x3FFFFFFF) lsl 32) lor r.out_lo) mod bound

let float r x =
  advance r;
  (* (draw >>> 11) is a 53-bit integer; exact in a float either way. *)
  let v = float_of_int ((r.out_hi lsl 21) lor (r.out_lo lsr 11)) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool r =
  advance r;
  r.out_lo land 1 = 1

let int32 r =
  advance r;
  Int32.of_int r.out_lo

let exponential r ~mean =
  let u = float r 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let pick r a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty";
  a.(int r (Array.length a))
