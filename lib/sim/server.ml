(* Horizons and accumulators are native ints (picoseconds): this is the
   single hottest call in the simulation — every memory-unit operation
   and every instruction burst lands here — and int64 fields would box
   on every update. *)
type t = {
  name : string;
  mutable busy_until : int;
  mutable busy_time : int;
  mutable requests : int;
  mutable queue_delay_total : int;
}

let create ?(name = "server") () =
  { name; busy_until = 0; busy_time = 0; requests = 0; queue_delay_total = 0 }

let name s = s.name

(* Book an access issued at virtual time [now] (engine time + delays the
   requester has already booked) without waiting: returns the delay the
   requester experiences; callers accumulate a batch of charges and pay
   the sum with one wait.

   The busy horizon is packed by occupancy from engine time — NOT placed
   at the requester's virtual clock.  Booking at [now] would embed the
   requester's latency gaps (time the server is idle while the requester
   waits on the round trip) into the horizon, and a burst of bookings
   would then charge *other* requesters for those idle gaps as queueing:
   whole bursts would serialize end-to-end through every shared server.
   Packing by occupancy keeps the server work-conserving — the horizon
   grows exactly by the work served, later bookings backfill the gaps —
   while a requester still queues whenever the packed horizon passes its
   own clock (the server genuinely has more work than time). *)
let book_i s ~now ~occupancy ~latency =
  let floor = Engine.now_i () in
  let base = if s.busy_until > floor then s.busy_until else floor in
  let qdelay = if base > now then base - now else 0 in
  s.busy_until <- base + occupancy;
  s.busy_time <- s.busy_time + occupancy;
  s.requests <- s.requests + 1;
  s.queue_delay_total <- s.queue_delay_total + qdelay;
  let visible = if latency > occupancy then latency else occupancy in
  qdelay + visible

(* Stats-only booking: account the work in [busy_time]/[requests] without
   advancing the busy horizon.  For short sections executed while holding
   a shared token or lock, where queueing the charge behind other
   requesters' batch-granularity bookings would stretch the hold by whole
   foreign bursts (a convoy the per-operation path never forms). *)
let record_i s ~occupancy =
  s.busy_time <- s.busy_time + occupancy;
  s.requests <- s.requests + 1

let access_i s ~occupancy ~latency =
  Engine.wait_i (book_i s ~now:(Engine.now_i ()) ~occupancy ~latency)

let access s ~occupancy ~latency =
  access_i s ~occupancy:(Int64.to_int occupancy) ~latency:(Int64.to_int latency)

let busy_time s = Int64.of_int s.busy_time
let requests s = s.requests
let queue_delay_total s = Int64.of_int s.queue_delay_total

let utilization s ~total =
  if total = 0L then 0.
  else float_of_int s.busy_time /. Int64.to_float total

let reset_stats s =
  s.busy_time <- 0;
  s.requests <- 0;
  s.queue_delay_total <- 0
